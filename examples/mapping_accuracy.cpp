// Mapping-accuracy evaluation: simulate reads with a known origin, align
// with BOTH drivers, verify their SAM output is identical (the paper's
// like-for-like replacement property), and score accuracy vs truth at
// several error rates — the kind of validation study a pipeline team runs
// before swapping aligners.
//
// The paired-end section aligns the same simulated pairs single-end and
// paired and scores both against the per-mate truth: pairing must never
// lose accuracy, and once mates are damaged (periodic errors that defeat
// exact seeding) mate rescue should recover placements single-end mode
// cannot make at all.
//
//   ./examples/mapping_accuracy
#include <cstdio>
#include <cstdlib>

#include "align/aligner.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"

using namespace mem2;

namespace {

struct Score {
  int mapped = 0, correct = 0;
};

/// Score primary records of a run against the pair truth (mates identified
/// by the Read1/Read2 flags in paired mode, by record order single-end).
Score score_pairs(const std::vector<io::SamRecord>& sam, bool paired) {
  Score s;
  std::size_t read_idx = 0;
  for (const auto& rec : sam) {
    if (rec.flag & (io::kFlagSecondary | io::kFlagSupplementary)) continue;
    bool is_read2;
    if (paired) {
      is_read2 = rec.flag & io::kFlagRead2;
    } else {
      // Single-end keeps submission order: R1, R2, R1, R2, ...
      is_read2 = read_idx % 2 == 1;
      ++read_idx;
    }
    if (rec.flag & io::kFlagUnmapped) continue;
    ++s.mapped;
    const auto truth = seq::parse_pair_truth(rec.qname);
    if (!truth.valid) continue;
    const auto pos = is_read2 ? truth.pos2 : truth.pos1;
    const bool rev = is_read2 ? truth.reverse2 : truth.reverse1;
    if (rec.rname == truth.contig && std::llabs((rec.pos - 1) - pos) <= 25 &&
        ((rec.flag & io::kFlagReverse) != 0) == rev)
      ++s.correct;
  }
  return s;
}

}  // namespace

int main() {
  seq::GenomeConfig g;
  g.contig_lengths = {1500000, 500000};
  g.repeat_fraction = 0.3;
  g.repeat_divergence = 0.02;
  const auto index = index::Mem2Index::build(seq::simulate_genome(g));

  std::printf("%-12s %10s %10s %10s %10s %12s\n", "error-rate", "reads",
              "mapped", "correct", "mapq>=30", "identical?");

  for (const double err : {0.0, 0.005, 0.01, 0.02, 0.05}) {
    seq::ReadSimConfig rc;
    rc.num_reads = 2000;
    rc.read_length = 101;
    rc.substitution_rate = err;
    rc.insertion_rate = err / 10;
    rc.deletion_rate = err / 10;
    rc.seed = 42;
    const auto reads = seq::simulate_reads(index.ref(), rc);

    align::DriverOptions batch, baseline;
    batch.mode = align::Mode::kBatch;
    baseline.mode = align::Mode::kBaseline;
    align::CollectSamSink sink, sink_base;
    for (const auto& st : {align::Aligner(index, batch).align(reads, sink),
                           align::Aligner(index, baseline).align(reads, sink_base)}) {
      if (!st.ok()) {
        std::fprintf(stderr, "alignment failed: %s\n", st.message().c_str());
        return 1;
      }
    }
    const auto& sam = sink.records();
    const auto& sam_base = sink_base.records();

    bool identical = sam.size() == sam_base.size();
    for (std::size_t i = 0; identical && i < sam.size(); ++i)
      identical = sam[i].to_line() == sam_base[i].to_line();

    int mapped = 0, correct = 0, confident = 0;
    for (const auto& rec : sam) {
      if (rec.flag & (io::kFlagSecondary | io::kFlagSupplementary)) continue;
      if (rec.flag & io::kFlagUnmapped) continue;
      ++mapped;
      const auto truth = seq::parse_truth(rec.qname);
      const bool ok = truth.valid && rec.rname == truth.contig &&
                      std::llabs((rec.pos - 1) - truth.pos) <= 20 &&
                      ((rec.flag & io::kFlagReverse) != 0) == truth.reverse;
      correct += ok;
      confident += rec.mapq >= 30;
    }
    std::printf("%-12.3f %10zu %10d %10d %10d %12s\n", err, reads.size(),
                mapped, correct, confident, identical ? "yes" : "NO!");
  }

  // ---- Paired-end vs single-end on the same reads -----------------------
  std::printf("\n%-12s %8s | %9s %9s | %9s %9s %9s %9s\n", "damage-frac",
              "reads", "SE-mapped", "SE-corr", "PE-mapped", "PE-corr",
              "proper", "rescued");
  bool pe_never_worse = true;
  for (const double damage : {0.0, 0.1, 0.3}) {
    seq::PairSimConfig pc;
    pc.seed = 99;
    pc.num_pairs = 1000;
    pc.read_length = 101;
    pc.insert_mean = 380;
    pc.insert_std = 40;
    pc.substitution_rate = 0.005;
    pc.damage_fraction = damage;
    const auto reads = seq::simulate_pairs(index.ref(), pc);

    align::DriverOptions se, pe;
    se.mode = pe.mode = align::Mode::kBatch;
    pe.paired = true;
    align::CollectSamSink se_sink, pe_sink;
    align::DriverStats pe_stats;
    for (const auto& st :
         {align::Aligner(index, se).align(reads, se_sink),
          align::Aligner(index, pe).align(reads, pe_sink, &pe_stats)}) {
      if (!st.ok()) {
        std::fprintf(stderr, "alignment failed: %s\n", st.message().c_str());
        return 1;
      }
    }
    const Score s_se = score_pairs(se_sink.records(), /*paired=*/false);
    const Score s_pe = score_pairs(pe_sink.records(), /*paired=*/true);
    pe_never_worse &= s_pe.correct >= s_se.correct;
    std::printf("%-12.2f %8zu | %9d %9d | %9d %9d %9llu %9llu\n", damage,
                reads.size(), s_se.mapped, s_se.correct, s_pe.mapped,
                s_pe.correct,
                static_cast<unsigned long long>(pe_stats.counters.pe_proper_pairs),
                static_cast<unsigned long long>(pe_stats.counters.pe_rescued_pairs));
  }
  std::printf("\npaired accuracy >= single-end on every dataset: %s\n",
              pe_never_worse ? "yes" : "NO!");
  return pe_never_worse ? 0 : 1;
}
