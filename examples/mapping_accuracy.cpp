// Mapping-accuracy evaluation: simulate reads with a known origin, align
// with BOTH drivers, verify their SAM output is identical (the paper's
// like-for-like replacement property), and score accuracy vs truth at
// several error rates — the kind of validation study a pipeline team runs
// before swapping aligners.
//
//   ./examples/mapping_accuracy
#include <cstdio>

#include "align/aligner.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"

using namespace mem2;

int main() {
  seq::GenomeConfig g;
  g.contig_lengths = {1500000, 500000};
  g.repeat_fraction = 0.3;
  g.repeat_divergence = 0.02;
  const auto index = index::Mem2Index::build(seq::simulate_genome(g));

  std::printf("%-12s %10s %10s %10s %10s %12s\n", "error-rate", "reads",
              "mapped", "correct", "mapq>=30", "identical?");

  for (const double err : {0.0, 0.005, 0.01, 0.02, 0.05}) {
    seq::ReadSimConfig rc;
    rc.num_reads = 2000;
    rc.read_length = 101;
    rc.substitution_rate = err;
    rc.insertion_rate = err / 10;
    rc.deletion_rate = err / 10;
    rc.seed = 42;
    const auto reads = seq::simulate_reads(index.ref(), rc);

    align::DriverOptions batch, baseline;
    batch.mode = align::Mode::kBatch;
    baseline.mode = align::Mode::kBaseline;
    align::CollectSamSink sink, sink_base;
    for (const auto& st : {align::Aligner(index, batch).align(reads, sink),
                           align::Aligner(index, baseline).align(reads, sink_base)}) {
      if (!st.ok()) {
        std::fprintf(stderr, "alignment failed: %s\n", st.message().c_str());
        return 1;
      }
    }
    const auto& sam = sink.records();
    const auto& sam_base = sink_base.records();

    bool identical = sam.size() == sam_base.size();
    for (std::size_t i = 0; identical && i < sam.size(); ++i)
      identical = sam[i].to_line() == sam_base[i].to_line();

    int mapped = 0, correct = 0, confident = 0;
    for (const auto& rec : sam) {
      if (rec.flag & (io::kFlagSecondary | io::kFlagSupplementary)) continue;
      if (rec.flag & io::kFlagUnmapped) continue;
      ++mapped;
      const auto truth = seq::parse_truth(rec.qname);
      const bool ok = truth.valid && rec.rname == truth.contig &&
                      std::llabs((rec.pos - 1) - truth.pos) <= 20 &&
                      ((rec.flag & io::kFlagReverse) != 0) == truth.reverse;
      correct += ok;
      confident += rec.mapq >= 30;
    }
    std::printf("%-12.3f %10zu %10d %10d %10d %12s\n", err, reads.size(),
                mapped, correct, confident, identical ? "yes" : "NO!");
  }
  return 0;
}
