// mem2_cli — a bwa-mem2-style command-line aligner on the library API.
//
//   mem2_cli index [-t N] <ref.fasta> <out.m2i>
//   mem2_cli mem [options] <index.m2i> <reads.fastq>   (SAM on stdout)
//   mem2_cli simulate <out.fasta> <length> [seed]
//   mem2_cli wgsim <ref.fasta> <out.fastq> <n> <len> [seed]
//
// `mem` streams: reads are pulled from the FASTQ in batch-size chunks and
// fed to an Aligner session, so peak resident reads/records are bounded by
// the session's queue — the input file never needs to fit in memory.
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <climits>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>

#include "align/aligner.h"
#include "align/status.h"
#include "serve/align_service.h"
#include "io/fasta.h"
#include "io/fastq.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"
#include "util/big_alloc.h"
#include "util/cpu_features.h"
#include "util/fault_injector.h"
#include "util/metrics.h"
#include "util/perf_counters.h"
#include "util/trace.h"

using namespace mem2;

namespace {

int usage() {
  std::cerr <<
      "usage:\n"
      "  mem2_cli index [-t N] <ref.fasta> <out.m2i>\n"
      "      -t N              suffix-array build threads (default: all\n"
      "                        cores; the index is identical for any N);\n"
      "                        prints per-phase progress and peak RSS\n"
      "  mem2_cli mem [options] <index.m2i> <reads.fq> [mates.fq]\n"
      "      -t N              pipeline worker threads (default 1)\n"
      "      -b N              reads per batch (default 512)\n"
      "      --bsw-threads N   BSW-round threads (default: follow -t)\n"
      "      --baseline        original read-at-a-time driver\n"
      "      -p                paired interleaved input (single FASTQ)\n"
      "                        (two FASTQ files imply paired mode)\n"
      "      -k N              min seed length\n"
      "      -T N              min output score\n"
      "      --ingest strict|skip\n"
      "                        damaged-FASTQ policy: fail fast (default) or\n"
      "                        resync at the next '@' header and report counts\n"
      "      --fault site[:nth]\n"
      "                        arm the fault injector (testing; also MEM2_FAULT)\n"
      "      --trace FILE      write a Chrome trace (Perfetto-loadable) of the\n"
      "                        run's pipeline spans at exit\n"
      "      --metrics-out FILE\n"
      "                        write a Prometheus text metrics snapshot at exit\n"
      "  mem2_cli serve [options] <index.m2i> <stream>...\n"
      "      each <stream> is out.sam=reads.fq[,mates.fq][,skip] — one\n"
      "      client session per spec, all multiplexed over one index and\n"
      "      one shared worker pool (two FASTQs imply paired mode; a\n"
      "      trailing ,skip selects the resync ingest policy)\n"
      "      -w N              pooled worker threads (default: all cores)\n"
      "      -b N              reads per batch (default 512)\n"
      "      --max-streams N   admission: max concurrent sessions (default 8)\n"
      "      --max-inflight N  admission: global in-flight batch budget\n"
      "                        (default 64)\n"
      "      --admission-timeout-ms N\n"
      "                        queue over-capacity opens FIFO for up to N ms\n"
      "                        instead of failing fast (default 0: fail fast)\n"
      "      --max-pending N   bound on queued opens (default 16)\n"
      "      --batch-stall-ms N\n"
      "                        watchdog: cancel a session whose in-flight\n"
      "                        batch makes no progress for N ms (default 0:\n"
      "                        off); cancelled sessions exit with code 7\n"
      "      --shutdown-grace-ms N\n"
      "                        on SIGINT/SIGTERM, wait N ms for streams to\n"
      "                        drain before cancelling them (default 5000)\n"
      "      --cancel-after-ms N\n"
      "                        cancel every stream after N ms (testing the\n"
      "                        exit-8 contract; default 0: off)\n"
      "      --metrics-interval S\n"
      "                        print a service metrics snapshot to stderr\n"
      "                        every S seconds (default: off)\n"
      "      --trace FILE      write a Chrome trace of every stream's pipeline\n"
      "                        (pid = stream, tid = worker) at exit\n"
      "      --metrics-out FILE\n"
      "                        write a Prometheus text metrics snapshot,\n"
      "                        rewritten every --metrics-interval tick and at\n"
      "                        exit\n"
      "  mem2_cli simulate <out.fasta> <length> [seed]\n"
      "  mem2_cli wgsim <ref.fasta> <out.fastq> <n_reads> <read_len> [seed]\n"
      "  mem2_cli wgsim-pe <ref.fasta> <out1.fastq> <out2.fastq> <n_pairs>"
      " <read_len> [insert_mean] [insert_std] [seed]\n"
      "exit codes: 2 usage/invalid argument, 3 I/O error, 4 data corruption,"
      " 5 internal error, 6 resource exhausted (admission denied),"
      " 7 deadline exceeded (watchdog), 8 cancelled\n";
  return 2;
}

/// Exit code contract (documented in README "Failure modes & exit codes").
int exit_code(align::ErrorCode code) {
  switch (code) {
    case align::ErrorCode::kOk: return 0;
    case align::ErrorCode::kInvalidArgument: return 2;
    case align::ErrorCode::kIoError: return 3;
    case align::ErrorCode::kDataCorruption: return 4;
    case align::ErrorCode::kInternal: return 5;
    case align::ErrorCode::kResourceExhausted: return 6;
    case align::ErrorCode::kDeadlineExceeded: return 7;
    case align::ErrorCode::kCancelled: return 8;
  }
  return 5;
}

/// Set by the SIGINT/SIGTERM handler; cmd_serve's clients stop submitting
/// at their next chunk boundary and finish cleanly (valid SAM, exit 0).
std::atomic<int> g_signal{0};

extern "C" void handle_shutdown_signal(int sig) {
  g_signal.store(sig, std::memory_order_release);
}

int fail(const align::Status& st) {
  std::cerr << "mem2: error: " << st.to_string() << '\n';
  return exit_code(st.code());
}

/// strtoll with full-consumption and range checks: "12x", "", overflow and
/// an empty string all fail instead of silently truncating like atoi.
bool parse_i64(const char* s, long long& out) {
  if (!s || !*s) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  out = v;
  return true;
}

/// Parse an integer argument for `flag`, requiring min <= value <= max
/// (pass INT_MAX for int-typed destinations so huge values error instead
/// of truncating); prints a usage error naming the flag on garbage
/// (e.g. `-t foo`).
bool parse_arg(const char* flag, const char* s, long long min, long long max,
               long long& out) {
  if (!parse_i64(s, out) || out < min || out > max) {
    std::cerr << "mem2_cli: invalid value for " << flag << ": '"
              << (s ? s : "") << "' (integer in [" << min << ", " << max
              << "] expected)\n";
    return false;
  }
  return true;
}

// ------------------------------------------------------------ observability

std::string stage_label(util::Stage s) {
  std::string v(util::stage_name(s));
  for (char& ch : v)
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  return "stage=\"" + v + "\"";
}

/// Registry id for the snapshot counter — the one CLI-owned metric that
/// rides through MetricsRegistry exposition rather than PromWriter.
int snapshot_counter_id() {
  static const int id = util::MetricsRegistry::global().counter(
      "mem2_metrics_snapshots_total", "Prometheus snapshot files written");
  return id;
}

/// Families every run exposes: the full SwCounters table, per-span-name
/// exact aggregates from the tracer (empty unless --trace enabled it),
/// ring-drop accounting, and hardware counters when the container allows
/// perf_event_open (silently absent otherwise).
void write_common_obs(util::PromWriter& w, const util::SwCounters& c,
                      const util::PerfSample* hw) {
  util::write_sw_counters(w, c);
  const auto& tracer = util::Tracer::instance();
  for (const auto& agg : tracer.aggregate()) {
    const std::string label = "span=\"" + agg.name + "\"";
    w.counter("mem2_span_seconds_total", "Total seconds inside trace spans",
              agg.seconds(), label);
    w.counter("mem2_span_count_total", "Trace span invocations",
              static_cast<double>(agg.count), label);
  }
  w.counter("mem2_trace_recorded_spans_total", "Trace events recorded",
            static_cast<double>(tracer.recorded()));
  w.counter("mem2_trace_dropped_spans_total",
            "Trace events overwritten by ring wraparound",
            static_cast<double>(tracer.dropped()));
  if (hw != nullptr && hw->valid) {
    w.counter("mem2_hw_instructions_total",
              "Retired instructions (perf_event, whole process)",
              static_cast<double>(hw->instructions));
    w.counter("mem2_hw_cycles_total", "CPU cycles (perf_event, whole process)",
              static_cast<double>(hw->cycles));
    w.counter("mem2_hw_cache_references_total",
              "Cache references (perf_event, whole process)",
              static_cast<double>(hw->cache_references));
    w.counter("mem2_hw_cache_misses_total",
              "Cache misses (perf_event, whole process)",
              static_cast<double>(hw->cache_misses));
  }
}

/// Rewrite `path` atomically (tmp + rename) so a concurrent reader never
/// sees a torn snapshot.  The writer callback fills the PromWriter view;
/// registry-managed metrics are appended after it.
template <typename Fn>
bool write_prom_file(const std::string& path, Fn&& fill) {
  util::MetricsRegistry::global().add(snapshot_counter_id());
  const std::string tmp = path + ".tmp";
  std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  {
    util::PromWriter w(os);
    fill(w);
  }
  util::MetricsRegistry::global().write_prometheus(os);
  os.flush();
  if (!os) return false;
  os.close();
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool write_serve_metrics(const std::string& path,
                         const serve::ServiceMetrics& m,
                         const util::PerfSample* hw, double wall) {
  return write_prom_file(path, [&](util::PromWriter& w) {
    w.gauge("mem2_streams_active", "Live sessions", m.active_streams);
    w.gauge("mem2_streams_peak", "Peak concurrent sessions", m.peak_streams);
    w.gauge("mem2_pending_opens", "Opens waiting in the admission queue",
            m.pending_opens);
    w.gauge("mem2_wall_seconds", "Wall time since serve start", wall);
    w.counter("mem2_streams_opened_total", "Sessions admitted",
              static_cast<double>(m.streams_opened));
    w.counter("mem2_streams_rejected_total", "Admission denials",
              static_cast<double>(m.streams_rejected));
    w.counter("mem2_streams_queued_total",
              "Opens that waited in the admission queue",
              static_cast<double>(m.streams_queued));
    w.counter("mem2_streams_timed_out_total",
              "Queued opens that hit the admission deadline",
              static_cast<double>(m.streams_timed_out));
    w.counter("mem2_streams_cancelled_total",
              "Watchdog / shutdown cancellations",
              static_cast<double>(m.streams_cancelled));
    w.counter("mem2_streams_completed_total", "Sessions finished ok",
              static_cast<double>(m.streams_completed));
    w.counter("mem2_streams_failed_total",
              "Sessions finished with a sticky error",
              static_cast<double>(m.streams_failed));
    w.counter("mem2_reads_total", "Reads aligned",
              static_cast<double>(m.reads));
    w.counter("mem2_records_total", "SAM records written",
              static_cast<double>(m.records));
    w.counter("mem2_batches_total", "Batches processed",
              static_cast<double>(m.batches));
    w.counter("mem2_sink_write_retries_total",
              "Transient sink write retries absorbed",
              static_cast<double>(m.write_retries));
    w.histogram("mem2_admission_wait_seconds",
                "Admission queue wait per queued open", m.admission_wait);
    w.histogram("mem2_batch_latency_seconds",
                "Batch latency, enqueue to reassembled sink write",
                m.batch_latency);
    w.histogram("mem2_queue_wait_seconds",
                "Batch queue wait, enqueue to worker pickup", m.queue_wait);
    for (std::size_t s = 0; s < m.stage_seconds.size(); ++s)
      if (m.stage_seconds[s].count() > 0)
        w.histogram("mem2_stage_seconds",
                    "Per-batch pipeline stage seconds", m.stage_seconds[s],
                    stage_label(static_cast<util::Stage>(s)));
    write_common_obs(w, m.counters, hw);
  });
}

bool write_mem_metrics(const std::string& path, const align::StreamMetrics& sm,
                       const util::SwCounters& c, std::uint64_t reads,
                       const util::PerfSample* hw, double wall) {
  return write_prom_file(path, [&](util::PromWriter& w) {
    w.gauge("mem2_wall_seconds", "Wall time of the run", wall);
    w.gauge("mem2_queue_hwm", "Session queue high-water mark", sm.queue_hwm);
    w.counter("mem2_reads_total", "Reads aligned",
              static_cast<double>(reads));
    w.counter("mem2_records_total", "SAM records written",
              static_cast<double>(sm.records));
    w.counter("mem2_batches_total", "Batches processed",
              static_cast<double>(sm.batches));
    w.counter("mem2_sink_write_retries_total",
              "Transient sink write retries absorbed",
              static_cast<double>(sm.write_retries));
    w.histogram("mem2_batch_latency_seconds",
                "Batch latency, enqueue to reassembled sink write",
                sm.batch_latency);
    w.histogram("mem2_queue_wait_seconds",
                "Batch queue wait, enqueue to worker pickup", sm.queue_wait);
    for (std::size_t s = 0; s < sm.stage_seconds.size(); ++s)
      if (sm.stage_seconds[s].count() > 0)
        w.histogram("mem2_stage_seconds",
                    "Per-batch pipeline stage seconds", sm.stage_seconds[s],
                    stage_label(static_cast<util::Stage>(s)));
    write_common_obs(w, c, hw);
  });
}

/// Finish the tracer at end of run: disable, dump the Chrome JSON, report.
void finish_trace(const std::string& path) {
  auto& tracer = util::Tracer::instance();
  tracer.disable();
  if (!tracer.write_chrome_trace_file(path)) {
    std::cerr << "[mem2] warning: cannot write trace file " << path << '\n';
    return;
  }
  std::cerr << "[mem2] trace: " << tracer.recorded() << " event(s) ("
            << tracer.dropped() << " dropped) -> " << path << '\n';
}

int cmd_index(int argc, char** argv) {
  index::IndexBuildOptions bopt;
  long long v = 0;
  int i = 0;
  for (; i < argc && argv[i][0] == '-'; ++i) {
    if (!std::strcmp(argv[i], "-t") && i + 1 < argc) {
      if (!parse_arg("-t", argv[++i], 1, INT_MAX, v)) return usage();
      bopt.threads = static_cast<int>(v);
    } else {
      return usage();
    }
  }
  if (argc - i != 2) return usage();
  std::cerr << "[mem2] loading " << argv[i] << "...\n";
  auto ref = io::load_reference(argv[i]);
  std::cerr << "[mem2] building index over " << ref.length() << " bp...\n";
  bopt.progress = [](const char* phase, double seconds) {
    std::cerr << "[mem2]   " << phase << ": " << seconds << "s (rss "
              << util::current_rss_bytes() / (1 << 20) << " MiB)\n";
  };
  util::Timer t;
  const auto index = index::Mem2Index::build(std::move(ref), bopt);
  std::cerr << "[mem2] built in " << t.seconds() << "s ("
            << index.memory_bytes() / (1 << 20) << " MiB resident, peak rss "
            << util::peak_rss_bytes() / (1 << 20) << " MiB); writing "
            << argv[i + 1] << '\n';
  index::save_index(argv[i + 1], index);
  return 0;
}

int cmd_mem(int argc, char** argv) {
  align::DriverOptions opt;
  bool interleaved = false;
  io::FastqPolicy ingest = io::FastqPolicy::kStrict;
  std::string trace_path, metrics_path;
  long long v = 0;
  int i = 0;
  for (; i < argc && argv[i][0] == '-'; ++i) {
    if (!std::strcmp(argv[i], "-t") && i + 1 < argc) {
      if (!parse_arg("-t", argv[++i], 1, INT_MAX, v)) return usage();
      opt.threads = static_cast<int>(v);
    } else if (!std::strcmp(argv[i], "-b") && i + 1 < argc) {
      if (!parse_arg("-b", argv[++i], 1, INT_MAX, v)) return usage();
      opt.batch_size = static_cast<int>(v);
    } else if (!std::strcmp(argv[i], "--bsw-threads") && i + 1 < argc) {
      if (!parse_arg("--bsw-threads", argv[++i], 0, INT_MAX, v)) return usage();
      opt.bsw_threads = static_cast<int>(v);
    } else if (!std::strcmp(argv[i], "--baseline")) {
      opt.mode = align::Mode::kBaseline;
    } else if (!std::strcmp(argv[i], "-p")) {
      interleaved = true;
    } else if (!std::strcmp(argv[i], "-k") && i + 1 < argc) {
      if (!parse_arg("-k", argv[++i], 1, INT_MAX, v)) return usage();
      opt.mem.seeding.min_seed_len = static_cast<int>(v);
    } else if (!std::strcmp(argv[i], "-T") && i + 1 < argc) {
      if (!parse_arg("-T", argv[++i], 0, INT_MAX, v)) return usage();
      opt.mem.min_out_score = static_cast<int>(v);
    } else if (!std::strcmp(argv[i], "--ingest") && i + 1 < argc) {
      const std::string p = argv[++i];
      if (p == "strict") {
        ingest = io::FastqPolicy::kStrict;
      } else if (p == "skip") {
        ingest = io::FastqPolicy::kSkip;
      } else {
        std::cerr << "mem2_cli: --ingest expects 'strict' or 'skip', got '"
                  << p << "'\n";
        return usage();
      }
    } else if (!std::strcmp(argv[i], "--fault") && i + 1 < argc) {
      if (!util::FaultInjector::instance().arm(argv[++i])) {
        std::cerr << "mem2_cli: invalid --fault spec '" << argv[i]
                  << "' (expected site[:nth])\n";
        return usage();
      }
    } else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--metrics-out") && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::cerr << "mem2_cli: unknown option " << argv[i] << '\n';
      return usage();
    }
  }
  const int n_pos = argc - i;
  if (n_pos != 2 && n_pos != 3) return usage();
  const bool two_files = n_pos == 3;
  opt.paired = two_files || interleaved;
  if (opt.paired && opt.batch_size % 2 != 0) {
    ++opt.batch_size;
    std::cerr << "[mem2] paired mode needs an even batch size; using -b "
              << opt.batch_size << '\n';
  }

  std::cerr << "[mem2] loading index " << argv[i] << "...\n";
  const auto index = index::load_index(argv[i]);

  const align::Aligner aligner(index, opt);
  if (!aligner.ok()) return fail(aligner.status());

  std::cerr << "[mem2] streaming " << argv[i + 1]
            << (two_files ? std::string(" + ") + argv[i + 2] : std::string())
            << " (" << (opt.mode == align::Mode::kBaseline ? "baseline" : "batch")
            << (opt.paired ? ", paired" : "") << ", " << opt.effective_workers()
            << " worker(s), batch " << opt.batch_size << ")...\n";

  // Hardware counters must open (inherit=1) before the session spawns its
  // worker pool so the whole process is covered; tracing must be enabled
  // before the first span fires.
  std::unique_ptr<util::PerfCounters> perf;
  if (!metrics_path.empty()) {
    perf = std::make_unique<util::PerfCounters>(/*inherit=*/true);
    perf->start();
  }
  if (!trace_path.empty()) util::Tracer::instance().enable();

  util::Timer t;
  align::OstreamSamSink sink(std::cout);
  align::Stream stream = aligner.open(sink);

  // One batch is staged here, at most queue_depth + workers batches are in
  // flight inside the session: memory stays O(queue_depth × batch_size).
  align::Status submit_st;
  const auto submit = [&](std::vector<seq::Read>&& chunk) {
    submit_st = stream.submit(std::move(chunk));
    return submit_st.ok();
  };
  std::uint64_t records_skipped = 0, pairs_dropped = 0;
  std::vector<seq::Read> chunk;
  if (opt.paired) {
    auto paired = two_files
                      ? io::PairedFastqStream(argv[i + 1], argv[i + 2], ingest)
                      : io::PairedFastqStream(argv[i + 1], ingest);
    const auto pairs_per_chunk = static_cast<std::size_t>(opt.batch_size) / 2;
    while (paired.next_chunk(chunk, pairs_per_chunk) > 0) {
      if (!submit(std::move(chunk))) return fail(submit_st);
      chunk = {};
    }
    records_skipped = paired.records_skipped();
    pairs_dropped = paired.pairs_dropped();
  } else {
    io::FastqStream fastq(argv[i + 1], ingest);
    while (fastq.next_chunk(chunk, static_cast<std::size_t>(opt.batch_size)) > 0) {
      if (!submit(std::move(chunk))) return fail(submit_st);
      chunk = {};
    }
    records_skipped = fastq.records_skipped();
  }
  if (const auto st = stream.finish(); !st.ok()) return fail(st);
  if (ingest == io::FastqPolicy::kSkip && (records_skipped || pairs_dropped)) {
    std::cerr << "[mem2] ingest: skipped " << records_skipped
              << " damaged record(s)";
    if (opt.paired) std::cerr << ", dropped " << pairs_dropped << " pair(s)";
    std::cerr << '\n';
  }

  std::cerr << "[mem2] " << stream.stats().reads << " reads -> "
            << sink.records_written() << " records in " << t.seconds() << "s\n";
  if (opt.paired) {
    const auto& c = stream.stats().counters;
    std::cerr << "[mem2] insert stats: " << stream.pair_stats().summary() << '\n'
              << "[mem2] proper_pairs=" << c.pe_proper_pairs
              << " rescued_pairs=" << c.pe_rescued_pairs
              << " rescue_windows=" << c.pe_rescue_windows
              << " rescue_jobs=" << c.pe_rescue_jobs
              << " rescue_hits=" << c.pe_rescue_hits << '\n';
  }
  if (!trace_path.empty()) finish_trace(trace_path);
  if (!metrics_path.empty()) {
    util::PerfSample hw;
    if (perf) hw = perf->stop();
    if (!write_mem_metrics(metrics_path, stream.metrics(),
                           stream.stats().counters, stream.stats().reads,
                           hw.valid ? &hw : nullptr, t.seconds()))
      std::cerr << "[mem2] warning: cannot write metrics file " << metrics_path
                << '\n';
    else
      std::cerr << "[mem2] metrics -> " << metrics_path << '\n';
  }
  return 0;
}

/// One `out.sam=reads.fq[,mates.fq][,skip]` client spec.
struct StreamSpec {
  std::string out;
  std::string fq1, fq2;  // fq2 empty for single-end
  io::FastqPolicy ingest = io::FastqPolicy::kStrict;
};

bool parse_stream_spec(const std::string& arg, StreamSpec& spec) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == arg.size()) return false;
  spec.out = arg.substr(0, eq);
  std::vector<std::string> parts;
  for (std::size_t pos = eq + 1; pos <= arg.size();) {
    const auto comma = arg.find(',', pos);
    const auto end = comma == std::string::npos ? arg.size() : comma;
    parts.push_back(arg.substr(pos, end - pos));
    pos = end + 1;
  }
  if (!parts.empty() && parts.back() == "skip") {
    spec.ingest = io::FastqPolicy::kSkip;
    parts.pop_back();
  }
  if (parts.empty() || parts.size() > 2 || parts[0].empty()) return false;
  spec.fq1 = parts[0];
  if (parts.size() == 2) {
    if (parts[1].empty()) return false;
    spec.fq2 = parts[1];
  }
  return true;
}

/// Drive one client session: stream the FASTQ(s) through the service in
/// batch-size chunks, then finish.  Runs on its own thread.
align::Status run_client(serve::ServiceStream& stream, const StreamSpec& spec,
                         const align::DriverOptions& opt) {
  align::Status st;
  const auto submit = [&](std::vector<seq::Read>&& chunk) {
    st = stream.submit(std::move(chunk));
    return st.ok();
  };
  // SIGINT/SIGTERM: stop submitting at the next chunk boundary and fall
  // through to finish(), which drains and flushes — the SAM written is a
  // valid prefix and the process exits 0.
  const auto interrupted = [] {
    return g_signal.load(std::memory_order_acquire) != 0;
  };
  try {
    std::vector<seq::Read> chunk;
    if (!spec.fq2.empty()) {
      io::PairedFastqStream paired(spec.fq1, spec.fq2, spec.ingest);
      const auto per_chunk = static_cast<std::size_t>(opt.batch_size) / 2;
      while (!interrupted() && paired.next_chunk(chunk, per_chunk) > 0) {
        if (!submit(std::move(chunk))) return st;
        chunk = {};
      }
    } else {
      io::FastqStream fastq(spec.fq1, spec.ingest);
      while (!interrupted() &&
             fastq.next_chunk(chunk, static_cast<std::size_t>(opt.batch_size)) > 0) {
        if (!submit(std::move(chunk))) return st;
        chunk = {};
      }
    }
  } catch (const std::exception& e) {
    // Ingest failure (unreadable/damaged FASTQ under strict policy): this
    // client dies; the service and its siblings are untouched.
    stream.finish();
    return align::Status::from_exception(e).with_context("ingest");
  }
  return stream.finish();
}

int cmd_serve(int argc, char** argv) {
  serve::ServeOptions sopt;
  int batch_size = 512;
  std::string trace_path, metrics_path;
  long long metrics_interval = 0;
  long long shutdown_grace_ms = 5000;
  long long cancel_after_ms = 0;
  long long v = 0;
  int i = 0;
  for (; i < argc && argv[i][0] == '-'; ++i) {
    if (!std::strcmp(argv[i], "-w") && i + 1 < argc) {
      if (!parse_arg("-w", argv[++i], 0, INT_MAX, v)) return usage();
      sopt.workers = static_cast<int>(v);
    } else if (!std::strcmp(argv[i], "-b") && i + 1 < argc) {
      if (!parse_arg("-b", argv[++i], 1, INT_MAX, v)) return usage();
      batch_size = static_cast<int>(v);
    } else if (!std::strcmp(argv[i], "--max-streams") && i + 1 < argc) {
      if (!parse_arg("--max-streams", argv[++i], 1, INT_MAX, v)) return usage();
      sopt.max_streams = static_cast<int>(v);
    } else if (!std::strcmp(argv[i], "--max-inflight") && i + 1 < argc) {
      if (!parse_arg("--max-inflight", argv[++i], 1, INT_MAX, v)) return usage();
      sopt.max_inflight_batches = static_cast<int>(v);
    } else if (!std::strcmp(argv[i], "--admission-timeout-ms") && i + 1 < argc) {
      if (!parse_arg("--admission-timeout-ms", argv[++i], 0, INT_MAX, v))
        return usage();
      sopt.admission_timeout_ms = static_cast<int>(v);
    } else if (!std::strcmp(argv[i], "--max-pending") && i + 1 < argc) {
      if (!parse_arg("--max-pending", argv[++i], 0, INT_MAX, v)) return usage();
      sopt.max_pending_opens = static_cast<int>(v);
    } else if (!std::strcmp(argv[i], "--batch-stall-ms") && i + 1 < argc) {
      if (!parse_arg("--batch-stall-ms", argv[++i], 0, INT_MAX, v))
        return usage();
      sopt.batch_stall_ms = static_cast<int>(v);
    } else if (!std::strcmp(argv[i], "--shutdown-grace-ms") && i + 1 < argc) {
      if (!parse_arg("--shutdown-grace-ms", argv[++i], 0, INT_MAX, v))
        return usage();
      shutdown_grace_ms = v;
    } else if (!std::strcmp(argv[i], "--cancel-after-ms") && i + 1 < argc) {
      if (!parse_arg("--cancel-after-ms", argv[++i], 0, INT_MAX, v))
        return usage();
      cancel_after_ms = v;
    } else if (!std::strcmp(argv[i], "--metrics-interval") && i + 1 < argc) {
      if (!parse_arg("--metrics-interval", argv[++i], 1, 3600, v))
        return usage();
      metrics_interval = v;
    } else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--metrics-out") && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::cerr << "mem2_cli: unknown option " << argv[i] << '\n';
      return usage();
    }
  }
  if (argc - i < 2) return usage();
  std::vector<StreamSpec> specs;
  for (int s = i + 1; s < argc; ++s) {
    StreamSpec spec;
    if (!parse_stream_spec(argv[s], spec)) {
      std::cerr << "mem2_cli: bad stream spec '" << argv[s]
                << "' (expected out.sam=reads.fq[,mates.fq][,skip])\n";
      return usage();
    }
    specs.push_back(std::move(spec));
  }

  std::cerr << "[mem2] loading index " << argv[i] << "...\n";
  const auto index = index::load_index(argv[i]);
  // Open hw counters (inherit=1) and enable tracing before the service
  // spawns its pool: threads created after this point are covered.
  std::unique_ptr<util::PerfCounters> perf;
  if (!metrics_path.empty()) {
    perf = std::make_unique<util::PerfCounters>(/*inherit=*/true);
    perf->start();
  }
  if (!trace_path.empty()) util::Tracer::instance().enable();
  serve::AlignService service(index, sopt);
  if (!service.ok()) return fail(service.status());
  std::cerr << "[mem2] serving " << specs.size() << " stream(s), "
            << (sopt.workers ? std::to_string(sopt.workers) : "auto")
            << " pooled worker(s), max " << sopt.max_streams << " streams / "
            << sopt.max_inflight_batches << " in-flight batches\n";

  // Output files and per-stream options are prepared up front so file
  // errors surface before any alignment work; the streams themselves are
  // opened inside each client thread — that way a queued open (with
  // --admission-timeout-ms) is admitted when an earlier stream finishes
  // instead of waiting on sessions that cannot start yet.
  std::vector<std::ofstream> outs;
  outs.reserve(specs.size());  // sinks hold references: no reallocation
  std::vector<std::unique_ptr<align::OstreamSamSink>> sinks;
  std::vector<align::DriverOptions> opts;
  for (const StreamSpec& spec : specs) {
    align::DriverOptions opt;
    opt.batch_size = batch_size;
    opt.paired = !spec.fq2.empty();
    if (opt.paired && opt.batch_size % 2 != 0) ++opt.batch_size;
    outs.emplace_back(spec.out, std::ios::binary);
    if (!outs.back())
      return fail(align::Status::io("cannot open output file: " + spec.out));
    sinks.push_back(std::make_unique<align::OstreamSamSink>(outs.back()));
    opts.push_back(opt);
  }
  std::vector<std::unique_ptr<serve::ServiceStream>> streams(specs.size());
  std::mutex streams_mu;  // guards slot assignment vs the cancel hook

  util::Timer t;
  std::atomic<bool> done{false};
  std::thread reporter;
  if (metrics_interval > 0) {
    reporter = std::thread([&] {
      while (!done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::seconds(metrics_interval));
        if (done.load(std::memory_order_acquire)) break;
        const serve::ServiceMetrics m = service.metrics();
        std::cerr << "[mem2] " << m.summary() << '\n';
        // Live exposition: rewrite the snapshot each tick so a scraper
        // tailing the file sees fresh data (hw counters land at exit).
        if (!metrics_path.empty() &&
            !write_serve_metrics(metrics_path, m, nullptr, t.seconds()))
          std::cerr << "[mem2] warning: cannot write metrics file "
                    << metrics_path << '\n';
      }
    });
  }

  // Graceful SIGINT/SIGTERM: clients see g_signal and stop at a chunk
  // boundary; this watcher additionally runs service shutdown so a client
  // wedged in back-pressure is cancelled after the grace period instead of
  // hanging the process.
  std::signal(SIGINT, handle_shutdown_signal);
  std::signal(SIGTERM, handle_shutdown_signal);
  std::thread sigwatch([&] {
    while (!done.load(std::memory_order_acquire) &&
           g_signal.load(std::memory_order_acquire) == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (done.load(std::memory_order_acquire)) return;
    const int sig = g_signal.load(std::memory_order_acquire);
    std::cerr << "[mem2] caught signal " << sig << "; draining (grace "
              << shutdown_grace_ms << "ms)...\n";
    const align::Status st =
        service.shutdown(std::chrono::milliseconds(shutdown_grace_ms));
    if (!st.ok())
      std::cerr << "[mem2] shutdown: " << st.to_string() << '\n';
  });

  // Test hook for the exit-8 contract: cancel every stream after a delay.
  std::thread canceller;
  if (cancel_after_ms > 0)
    canceller = std::thread([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(cancel_after_ms));
      if (done.load(std::memory_order_acquire)) return;
      std::lock_guard<std::mutex> lk(streams_mu);
      for (auto& stream : streams)
        if (stream) stream->cancel();
    });

  std::vector<align::Status> results(specs.size());
  std::vector<std::thread> clients;
  clients.reserve(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s)
    clients.emplace_back([&, s] {
      auto stream = std::make_unique<serve::ServiceStream>(
          service.open(opts[s], *sinks[s]));
      serve::ServiceStream* raw = nullptr;
      {
        std::lock_guard<std::mutex> lk(streams_mu);
        raw = (streams[s] = std::move(stream)).get();
      }
      if (!raw->ok()) {
        results[s] = raw->status();
        return;
      }
      results[s] = run_client(*raw, specs[s], opts[s]);
    });
  for (auto& c : clients) c.join();
  done.store(true, std::memory_order_release);
  if (reporter.joinable()) reporter.join();
  if (sigwatch.joinable()) sigwatch.join();
  if (canceller.joinable()) canceller.join();

  align::Status first_error;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const auto& st = results[s];
    if (st.ok()) {
      std::cerr << "[mem2] stream '" << specs[s].out << "': "
                << streams[s]->stats().reads << " reads -> "
                << streams[s]->metrics().records << " records (queue hwm "
                << streams[s]->metrics().queue_hwm << ")\n";
    } else {
      std::cerr << "[mem2] stream '" << specs[s].out
                << "' failed: " << st.to_string() << '\n';
      if (first_error.ok()) first_error = st;
    }
  }
  std::cerr << "[mem2] " << service.metrics().summary() << " | wall "
            << t.seconds() << "s\n";
  if (!trace_path.empty()) finish_trace(trace_path);
  if (!metrics_path.empty()) {
    util::PerfSample hw;
    if (perf) hw = perf->stop();
    if (!write_serve_metrics(metrics_path, service.metrics(),
                             hw.valid ? &hw : nullptr, t.seconds()))
      std::cerr << "[mem2] warning: cannot write metrics file " << metrics_path
                << '\n';
    else
      std::cerr << "[mem2] metrics -> " << metrics_path << '\n';
  }
  if (!first_error.ok()) return exit_code(first_error.code());
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 2) return usage();
  long long v = 0;
  seq::GenomeConfig cfg;
  if (!parse_arg("<length>", argv[1], 1, LLONG_MAX, v)) return usage();
  cfg.contig_lengths = {v};
  if (argc > 2) {
    if (!parse_arg("[seed]", argv[2], 0, LLONG_MAX, v)) return usage();
    cfg.seed = static_cast<std::uint64_t>(v);
  }
  const auto ref = seq::simulate_genome(cfg);
  io::save_reference(argv[0], ref);
  std::cerr << "[mem2] wrote " << ref.length() << " bp to " << argv[0] << '\n';
  return 0;
}

int cmd_wgsim(int argc, char** argv) {
  if (argc < 4) return usage();
  long long v = 0;
  const auto ref = io::load_reference(argv[0]);
  seq::ReadSimConfig cfg;
  if (!parse_arg("<n_reads>", argv[2], 1, LLONG_MAX, v)) return usage();
  cfg.num_reads = v;
  if (!parse_arg("<read_len>", argv[3], 1, INT_MAX, v)) return usage();
  cfg.read_length = static_cast<int>(v);
  if (argc > 4) {
    if (!parse_arg("[seed]", argv[4], 0, LLONG_MAX, v)) return usage();
    cfg.seed = static_cast<std::uint64_t>(v);
  }
  io::write_fastq_file(argv[1], seq::simulate_reads(ref, cfg));
  std::cerr << "[mem2] wrote " << cfg.num_reads << " x " << cfg.read_length
            << " bp reads to " << argv[1] << '\n';
  return 0;
}

int cmd_wgsim_pe(int argc, char** argv) {
  if (argc < 5) return usage();
  long long v = 0;
  const auto ref = io::load_reference(argv[0]);
  seq::PairSimConfig cfg;
  if (!parse_arg("<n_pairs>", argv[3], 1, LLONG_MAX, v)) return usage();
  cfg.num_pairs = v;
  if (!parse_arg("<read_len>", argv[4], 1, INT_MAX, v)) return usage();
  cfg.read_length = static_cast<int>(v);
  if (argc > 5) {
    if (!parse_arg("[insert_mean]", argv[5], 1, INT_MAX, v)) return usage();
    cfg.insert_mean = static_cast<double>(v);
  }
  if (argc > 6) {
    if (!parse_arg("[insert_std]", argv[6], 0, INT_MAX, v)) return usage();
    cfg.insert_std = static_cast<double>(v);
  }
  if (argc > 7) {
    if (!parse_arg("[seed]", argv[7], 0, LLONG_MAX, v)) return usage();
    cfg.seed = static_cast<std::uint64_t>(v);
  }
  const auto pairs = seq::simulate_pairs(ref, cfg);
  std::vector<seq::Read> r1, r2;
  r1.reserve(pairs.size() / 2);
  r2.reserve(pairs.size() / 2);
  for (std::size_t p = 0; p + 1 < pairs.size(); p += 2) {
    r1.push_back(pairs[p]);
    r2.push_back(pairs[p + 1]);
  }
  io::write_fastq_file(argv[1], r1);
  io::write_fastq_file(argv[2], r2);
  std::cerr << "[mem2] wrote " << cfg.num_pairs << " x 2 x " << cfg.read_length
            << " bp pairs (insert " << cfg.insert_mean << " +/- "
            << cfg.insert_std << ") to " << argv[1] << " / " << argv[2] << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    // Resolve the ISA cap eagerly so a bad MEM2_FORCE_ISA value fails here
    // as a usage error (exit 2) instead of mid-alignment on a worker thread.
    util::dispatch_isa();
    if (cmd == "index") return cmd_index(argc - 2, argv + 2);
    if (cmd == "mem") return cmd_mem(argc - 2, argv + 2);
    if (cmd == "serve") return cmd_serve(argc - 2, argv + 2);
    if (cmd == "simulate") return cmd_simulate(argc - 2, argv + 2);
    if (cmd == "wgsim") return cmd_wgsim(argc - 2, argv + 2);
    if (cmd == "wgsim-pe") return cmd_wgsim_pe(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    // Every escaping exception maps onto the Status taxonomy and from
    // there onto the documented exit codes (2/3/4/5).
    return fail(align::Status::from_exception(e));
  }
  return usage();
}
