// mem2_cli — a bwa-mem2-style command-line aligner on the library API.
//
//   mem2_cli index <ref.fasta> <out.m2i>
//   mem2_cli mem [-t threads] [--baseline] [-k minseed] [-T minscore]
//                <index.m2i> <reads.fastq>            (SAM on stdout)
//   mem2_cli simulate <out.fasta> <length> [seed]
//   mem2_cli wgsim <ref.fasta> <out.fastq> <n> <len> [seed]
#include <cstring>
#include <fstream>
#include <iostream>

#include "align/driver.h"
#include "io/fasta.h"
#include "io/fastq.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"

using namespace mem2;

namespace {

int usage() {
  std::cerr <<
      "usage:\n"
      "  mem2_cli index <ref.fasta> <out.m2i>\n"
      "  mem2_cli mem [-t N] [--baseline] [-k minseed] [-T minscore] <index.m2i> <reads.fq>\n"
      "  mem2_cli simulate <out.fasta> <length> [seed]\n"
      "  mem2_cli wgsim <ref.fasta> <out.fastq> <n_reads> <read_len> [seed]\n";
  return 2;
}

int cmd_index(int argc, char** argv) {
  if (argc != 2) return usage();
  std::cerr << "[mem2] loading " << argv[0] << "...\n";
  auto ref = io::load_reference(argv[0]);
  std::cerr << "[mem2] building index over " << ref.length() << " bp...\n";
  util::Timer t;
  const auto index = index::Mem2Index::build(std::move(ref));
  std::cerr << "[mem2] built in " << t.seconds() << "s ("
            << index.memory_bytes() / (1 << 20) << " MiB); writing " << argv[1]
            << '\n';
  index::save_index(argv[1], index);
  return 0;
}

int cmd_mem(int argc, char** argv) {
  align::DriverOptions opt;
  int i = 0;
  for (; i < argc && argv[i][0] == '-'; ++i) {
    if (!std::strcmp(argv[i], "-t") && i + 1 < argc)
      opt.threads = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--baseline"))
      opt.mode = align::Mode::kBaseline;
    else if (!std::strcmp(argv[i], "-k") && i + 1 < argc)
      opt.mem.seeding.min_seed_len = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "-T") && i + 1 < argc)
      opt.mem.min_out_score = std::atoi(argv[++i]);
    else
      return usage();
  }
  if (argc - i != 2) return usage();

  std::cerr << "[mem2] loading index " << argv[i] << "...\n";
  const auto index = index::load_index(argv[i]);
  std::cerr << "[mem2] reading " << argv[i + 1] << "...\n";
  const auto reads = io::read_fastq_file(argv[i + 1]);
  std::cerr << "[mem2] aligning " << reads.size() << " reads ("
            << (opt.mode == align::Mode::kBaseline ? "baseline" : "batch")
            << ", " << opt.threads << " thread(s))...\n";

  util::Timer t;
  align::DriverStats stats;
  const auto records = align::align_reads(index, reads, opt, &stats);
  std::cerr << "[mem2] " << records.size() << " records in " << t.seconds()
            << "s\n";

  std::cout << align::sam_header_for(index, opt);
  for (const auto& rec : records) std::cout << rec.to_line() << '\n';
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 2) return usage();
  seq::GenomeConfig cfg;
  cfg.contig_lengths = {std::atoll(argv[1])};
  if (argc > 2) cfg.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
  const auto ref = seq::simulate_genome(cfg);
  io::save_reference(argv[0], ref);
  std::cerr << "[mem2] wrote " << ref.length() << " bp to " << argv[0] << '\n';
  return 0;
}

int cmd_wgsim(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto ref = io::load_reference(argv[0]);
  seq::ReadSimConfig cfg;
  cfg.num_reads = std::atoll(argv[2]);
  cfg.read_length = std::atoi(argv[3]);
  if (argc > 4) cfg.seed = static_cast<std::uint64_t>(std::atoll(argv[4]));
  io::write_fastq_file(argv[1], seq::simulate_reads(ref, cfg));
  std::cerr << "[mem2] wrote " << cfg.num_reads << " x " << cfg.read_length
            << " bp reads to " << argv[1] << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "index") return cmd_index(argc - 2, argv + 2);
    if (cmd == "mem") return cmd_mem(argc - 2, argv + 2);
    if (cmd == "simulate") return cmd_simulate(argc - 2, argv + 2);
    if (cmd == "wgsim") return cmd_wgsim(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::cerr << "mem2_cli: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
