// Quickstart: simulate a genome, index it, simulate reads, and stream them
// through an Aligner session — the whole public API in ~60 lines.
//
// The streaming core of it is 10 lines: build/load an index, construct an
// Aligner (options validated here, reported as a Status), open a stream
// onto a SamSink, submit read chunks, finish.  Records reach the sink in
// read order while only a bounded number of batches are in flight.
//
//   ./examples/quickstart
#include <iostream>

#include "align/aligner.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"

int main() {
  using namespace mem2;

  // 1. A reference genome.  Real users would load one with
  //    io::load_reference("ref.fasta"); here we simulate 1 Mbp with
  //    human-like repeat structure.
  seq::GenomeConfig genome_cfg;
  genome_cfg.contig_lengths = {800000, 200000};
  genome_cfg.repeat_fraction = 0.2;
  const seq::Reference ref = seq::simulate_genome(genome_cfg);

  // 2. Build the index (FM-indexes + suffix arrays, one SA-IS pass).
  const auto index = index::Mem2Index::build(ref);
  std::cerr << "index: " << index.seq_len() << " BW rows, "
            << index.memory_bytes() / (1 << 20) << " MiB\n";

  // 3. Some reads (or stream them with io::FastqStream("reads.fq")).
  seq::ReadSimConfig read_cfg;
  read_cfg.num_reads = 1000;
  read_cfg.read_length = 151;
  const auto reads = seq::simulate_reads(ref, read_cfg);

  // 4. The session: construct once, check the Status, stream chunks.
  align::DriverOptions opt;
  opt.mode = align::Mode::kBatch;
  opt.threads = 2;
  const align::Aligner aligner(index, opt);
  if (!aligner.ok()) {
    std::cerr << "bad options: " << aligner.status().message() << '\n';
    return 1;
  }

  // 5. SAM to stdout, in read order, as batches retire.
  align::OstreamSamSink sink(std::cout);
  align::Stream stream = aligner.open(sink);  // header written here
  for (std::size_t i = 0; i < reads.size(); i += 256) {
    // `reads` outlives finish(), so the zero-copy span submit is safe.
    const std::size_t n = std::min(reads.size() - i, std::size_t{256});
    stream.submit(std::span<const seq::Read>(reads.data() + i, n));
  }
  if (const auto st = stream.finish(); !st.ok()) {
    std::cerr << "alignment failed: " << st.message() << '\n';
    return 1;
  }

  std::cerr << stream.stats().reads << " reads -> " << sink.records_written()
            << " records\n";
  std::cerr << "stage seconds:";
  for (int s = 0; s < static_cast<int>(util::Stage::kCount); ++s)
    std::cerr << ' ' << util::stage_name(static_cast<util::Stage>(s)) << '='
              << stream.stats().stages[static_cast<util::Stage>(s)];
  std::cerr << '\n';
  return 0;
}
