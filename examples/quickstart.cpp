// Quickstart: simulate a genome, index it, simulate reads, align them, and
// print the SAM — the whole public API in ~60 lines.
//
//   ./examples/quickstart
#include <iostream>

#include "align/driver.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"

int main() {
  using namespace mem2;

  // 1. A reference genome.  Real users would load one with
  //    io::load_reference("ref.fasta"); here we simulate 1 Mbp with
  //    human-like repeat structure.
  seq::GenomeConfig genome_cfg;
  genome_cfg.contig_lengths = {800000, 200000};
  genome_cfg.repeat_fraction = 0.2;
  const seq::Reference ref = seq::simulate_genome(genome_cfg);

  // 2. Build the index (FM-indexes + suffix arrays, one SA-IS pass).
  const auto index = index::Mem2Index::build(ref);
  std::cerr << "index: " << index.seq_len() << " BW rows, "
            << index.memory_bytes() / (1 << 20) << " MiB\n";

  // 3. Some reads (or io::read_fastq_file("reads.fq")).
  seq::ReadSimConfig read_cfg;
  read_cfg.num_reads = 1000;
  read_cfg.read_length = 151;
  const auto reads = seq::simulate_reads(ref, read_cfg);

  // 4. Align, batch mode (the paper's optimized pipeline).
  align::DriverOptions opt;
  opt.mode = align::Mode::kBatch;
  align::DriverStats stats;
  const auto records = align::align_reads(index, reads, opt, &stats);

  // 5. SAM to stdout.
  std::cout << align::sam_header_for(index, opt);
  for (std::size_t i = 0; i < records.size() && i < 20; ++i)
    std::cout << records[i].to_line() << '\n';
  std::cerr << "... (" << records.size() << " records total)\n";

  std::cerr << "stage seconds:";
  for (int s = 0; s < static_cast<int>(util::Stage::kCount); ++s)
    std::cerr << ' ' << util::stage_name(static_cast<util::Stage>(s)) << '='
              << stats.stages[static_cast<util::Stage>(s)];
  std::cerr << '\n';
  return 0;
}
