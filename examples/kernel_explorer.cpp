// Kernel explorer: a didactic walk through the three kernels for one read —
// prints the SMEMs (with SA-interval sizes), the SAL-resolved seed
// positions, the chains that survive filtering, and the per-seed extension
// scores.  Useful for understanding what the paper's kernels actually do.
//
//   ./examples/kernel_explorer [read_length]
#include <cstdio>

#include "align/extend.h"
#include "chain/chain.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"
#include "smem/seeding.h"

using namespace mem2;

int main(int argc, char** argv) {
  const int read_len = argc > 1 ? std::atoi(argv[1]) : 101;

  seq::GenomeConfig g;
  g.contig_lengths = {500000};
  g.repeat_fraction = 0.3;
  g.repeat_divergence = 0.02;
  const auto index = index::Mem2Index::build(seq::simulate_genome(g));

  seq::ReadSimConfig rc;
  rc.num_reads = 1;
  rc.read_length = read_len;
  rc.substitution_rate = 0.02;
  const auto reads = seq::simulate_reads(index.ref(), rc);
  const auto& read = reads[0];
  std::printf("read %s\n%s\n\n", read.name.c_str(), read.bases.c_str());

  std::vector<seq::Code> q(read.bases.size());
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = seq::char_to_code(read.bases[i]);
  const std::vector<seq::Code> q_rev(q.rbegin(), q.rend());

  // --- SMEM kernel ---
  smem::SmemWorkspace ws;
  std::vector<smem::Smem> smems;
  align::MemOptions opt;
  smem::collect_smems(index.fm32(), q, opt.seeding, smems, ws,
                      util::PrefetchPolicy{true});
  std::printf("== SMEM: %zu seeding intervals ==\n", smems.size());
  for (const auto& m : smems)
    std::printf("  query[%3d,%3d) len %3d  SA rows [%lld, +%lld)\n", m.qb, m.qe,
                m.len(), static_cast<long long>(m.bi.k),
                static_cast<long long>(m.bi.s));

  // --- SAL kernel ---
  const auto seeds = chain::seeds_from_smems(
      smems, opt.chaining, [&](idx_t row) { return index.sa_lookup_flat(row); });
  std::printf("\n== SAL: %zu seeds (interval rows -> positions) ==\n", seeds.size());
  for (std::size_t i = 0; i < seeds.size() && i < 12; ++i) {
    const auto& s = seeds[i];
    const bool rev = s.rbeg >= index.l_pac();
    std::printf("  q%3d len %3d -> %s strand pos %lld\n", s.qbeg, s.len,
                rev ? "-" : "+",
                static_cast<long long>(rev ? 2 * index.l_pac() - s.rbeg - s.len
                                           : s.rbeg));
  }
  if (seeds.size() > 12) std::printf("  ... (%zu more)\n", seeds.size() - 12);

  // --- CHAIN ---
  const double frac_rep =
      chain::repetitive_fraction(smems, read_len, opt.chaining.max_occ);
  auto chains = chain::build_chains(index.ref(), index.l_pac(), seeds, read_len,
                                    opt.chaining, frac_rep);
  const std::size_t before = chains.size();
  chain::filter_chains(chains, opt.chaining);
  std::printf("\n== CHAIN: %zu chains built, %zu kept after filtering ==\n",
              before, chains.size());
  for (const auto& c : chains)
    std::printf("  chain @%lld rid %d: %zu seeds, weight %d, kept=%d\n",
                static_cast<long long>(c.pos), c.rid, c.seeds.size(), c.weight,
                c.kept);

  // --- BSW ---
  align::ExtendContext ctx{opt, index, q, q_rev};
  align::ScalarSource source(opt.ksw);
  std::vector<align::AlnReg> regs;
  align::process_chains(ctx, chains, source, regs);
  std::printf("\n== BSW: %zu regions ==\n", regs.size());
  for (const auto& r : regs)
    std::printf("  query[%3d,%3d) ref[%lld,%lld) score %d (w=%d, seedcov=%d)\n",
                r.qb, r.qe, static_cast<long long>(r.rb),
                static_cast<long long>(r.re), r.score, r.w, r.seedcov);
  return 0;
}
