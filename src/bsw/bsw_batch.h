// Batched BSW execution (paper §5.3): precision split, length sorting and
// chunked dispatch into the inter-task engines.
//
// Pipeline per batch:
//   1. split jobs into 8-bit-eligible and 16-bit sets (§5.4.1);
//   2. within each set, radix-sort indices by (qlen, tlen) so that pairs
//      sharing a SIMD register have similar lengths (§5.3.1 — the 1.5-1.7x
//      "sorting" rows of Table 6); optional, so the bench can measure both;
//   3. run the engine on chunks of engine.width jobs;
//   4. scatter results back to the original job order.
#pragma once

#include <vector>

#include "bsw/bsw_engine.h"

namespace mem2::bsw {

struct BswBatchOptions {
  bool sort_by_length = true;
  util::Isa isa = util::Isa::kAvx512;  // capped by the CPU at dispatch
  /// Force one precision for benchmarking; default: auto-split.
  bool force_16bit = false;
};

struct BswBatchStats {
  BswBreakdown breakdown;       // engine-internal phase times (Table 8)
  double sort_seconds = 0;
  std::uint64_t jobs_8bit = 0;
  std::uint64_t jobs_16bit = 0;
  std::uint64_t chunks = 0;

  BswBatchStats& operator+=(const BswBatchStats& o) {
    breakdown += o.breakdown;
    sort_seconds += o.sort_seconds;
    jobs_8bit += o.jobs_8bit;
    jobs_16bit += o.jobs_16bit;
    chunks += o.chunks;
    return *this;
  }
};

/// Run all jobs serially; results land in out[i] for jobs[i] regardless of
/// internal reordering.  Deterministic for a fixed job list and options.
/// Compat shim over a thread-local single-threaded BswExecutor
/// (bsw_executor.h) — new code that wants parallel dispatch or explicit
/// workspace ownership should hold a BswExecutor instead.
void extend_batch(const std::vector<ExtendJob>& jobs, std::vector<KswResult>& out,
                  const KswParams& params, const BswBatchOptions& options = {},
                  BswBatchStats* stats = nullptr);

}  // namespace mem2::bsw
