#include "bsw/bsw_engine.h"

namespace mem2::bsw {

bool fits_8bit(const ExtendJob& job, const KswParams& p) {
  // All intermediate values live in [0, h0 + qlen*a]; the bias trick adds
  // at most a+b before subtracting.  Lane-index tracking (mj) also needs
  // qlen to fit a byte.
  const int peak = job.h0 + job.qlen * p.a + p.a + std::max(p.b, 1);
  return peak <= 255 && job.qlen < 255 && job.tlen < 10000;
}

BswEngine get_engine(util::Isa isa, Precision precision) {
  const util::Isa capped = std::min(isa, util::detect_isa());
  switch (capped) {
    case util::Isa::kAvx512:
      return precision == Precision::k8bit ? kEngineAvx512U8 : kEngineAvx512U16;
    case util::Isa::kAvx2:
      return precision == Precision::k8bit ? kEngineAvx2U8 : kEngineAvx2U16;
    case util::Isa::kScalar:
      break;
  }
  return precision == Precision::k8bit ? kEngineScalarU8 : kEngineScalarU16;
}

}  // namespace mem2::bsw
