// AVX2 inter-task BSW engines: 32 pairs at 8-bit precision, 16 pairs at
// 16-bit (the paper's HSW configuration).  Compiled with -mavx2; reached
// only through runtime dispatch.
#include <immintrin.h>

#include "bsw/bsw_engine_impl.h"

namespace mem2::bsw {

namespace {

struct VecU8 {
  static constexpr int W = 32;
  using elem = std::uint8_t;
  __m256i v;

  static VecU8 wrap(__m256i x) { return VecU8{x}; }
  static VecU8 zero() { return wrap(_mm256_setzero_si256()); }
  static VecU8 set1(int x) { return wrap(_mm256_set1_epi8(static_cast<char>(x))); }
  static VecU8 load(const elem* p) {
    return wrap(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
  }
  void store(elem* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static VecU8 adds(VecU8 a, VecU8 b) { return wrap(_mm256_adds_epu8(a.v, b.v)); }
  static VecU8 subs(VecU8 a, VecU8 b) { return wrap(_mm256_subs_epu8(a.v, b.v)); }
  static VecU8 vmax(VecU8 a, VecU8 b) { return wrap(_mm256_max_epu8(a.v, b.v)); }
  static VecU8 cmpeq(VecU8 a, VecU8 b) { return wrap(_mm256_cmpeq_epi8(a.v, b.v)); }
  static VecU8 cmpgt_u(VecU8 a, VecU8 b) {
    // a > b (unsigned): max(a,b)==a and a!=b.
    const __m256i eq = _mm256_cmpeq_epi8(a.v, b.v);
    const __m256i amax = _mm256_cmpeq_epi8(_mm256_max_epu8(a.v, b.v), a.v);
    return wrap(_mm256_andnot_si256(eq, amax));
  }
  static VecU8 vand(VecU8 a, VecU8 b) { return wrap(_mm256_and_si256(a.v, b.v)); }
  static VecU8 vor(VecU8 a, VecU8 b) { return wrap(_mm256_or_si256(a.v, b.v)); }
  static VecU8 vandnot(VecU8 m, VecU8 a) { return wrap(_mm256_andnot_si256(m.v, a.v)); }
  static VecU8 blend(VecU8 m, VecU8 a, VecU8 b) {
    return wrap(_mm256_blendv_epi8(b.v, a.v, m.v));
  }
  static bool any(VecU8 m) { return !_mm256_testz_si256(m.v, m.v); }
};

struct VecU16 {
  static constexpr int W = 16;
  using elem = std::uint16_t;
  __m256i v;

  static VecU16 wrap(__m256i x) { return VecU16{x}; }
  static VecU16 zero() { return wrap(_mm256_setzero_si256()); }
  static VecU16 set1(int x) { return wrap(_mm256_set1_epi16(static_cast<short>(x))); }
  static VecU16 load(const elem* p) {
    return wrap(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
  }
  void store(elem* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static VecU16 adds(VecU16 a, VecU16 b) { return wrap(_mm256_adds_epu16(a.v, b.v)); }
  static VecU16 subs(VecU16 a, VecU16 b) { return wrap(_mm256_subs_epu16(a.v, b.v)); }
  static VecU16 vmax(VecU16 a, VecU16 b) { return wrap(_mm256_max_epu16(a.v, b.v)); }
  static VecU16 cmpeq(VecU16 a, VecU16 b) { return wrap(_mm256_cmpeq_epi16(a.v, b.v)); }
  static VecU16 cmpgt_u(VecU16 a, VecU16 b) {
    const __m256i eq = _mm256_cmpeq_epi16(a.v, b.v);
    const __m256i amax = _mm256_cmpeq_epi16(_mm256_max_epu16(a.v, b.v), a.v);
    return wrap(_mm256_andnot_si256(eq, amax));
  }
  static VecU16 vand(VecU16 a, VecU16 b) { return wrap(_mm256_and_si256(a.v, b.v)); }
  static VecU16 vor(VecU16 a, VecU16 b) { return wrap(_mm256_or_si256(a.v, b.v)); }
  static VecU16 vandnot(VecU16 m, VecU16 a) { return wrap(_mm256_andnot_si256(m.v, a.v)); }
  static VecU16 blend(VecU16 m, VecU16 a, VecU16 b) {
    return wrap(_mm256_blendv_epi8(b.v, a.v, m.v));  // mask is per-lane all-ones
  }
  static bool any(VecU16 m) { return !_mm256_testz_si256(m.v, m.v); }
};

void run_u8(const ExtendJob* jobs, KswResult* out, int n, const KswParams& p,
            BswBreakdown* bd) {
  detail::bsw_extend_inter_task<VecU8>(jobs, out, n, p, bd);
}
void run_u16(const ExtendJob* jobs, KswResult* out, int n, const KswParams& p,
             BswBreakdown* bd) {
  detail::bsw_extend_inter_task<VecU16>(jobs, out, n, p, bd);
}

}  // namespace

const BswEngine kEngineAvx2U8 = {&run_u8, 32, "avx2-8bit"};
const BswEngine kEngineAvx2U16 = {&run_u16, 16, "avx2-16bit"};

}  // namespace mem2::bsw
