// Scalar-emulated SIMD engine: plain arrays driven through the shared
// inter-task template.  W=8 keeps batching behaviour realistic while
// remaining portable; it also anchors the identical-output tests on hosts
// without AVX.
#include "bsw/bsw_engine_impl.h"

namespace mem2::bsw {

namespace {

template <typename T, int Width>
struct ScalarVec {
  static constexpr int W = Width;
  using elem = T;
  T v[W];

  static ScalarVec zero() { return set1(0); }
  static ScalarVec set1(int x) {
    ScalarVec r;
    for (int i = 0; i < W; ++i) r.v[i] = static_cast<T>(x);
    return r;
  }
  static ScalarVec load(const T* p) {
    ScalarVec r;
    std::memcpy(r.v, p, sizeof(r.v));
    return r;
  }
  void store(T* p) const { std::memcpy(p, v, sizeof(v)); }

  static ScalarVec adds(ScalarVec a, ScalarVec b) {
    ScalarVec r;
    for (int i = 0; i < W; ++i) {
      const unsigned s = static_cast<unsigned>(a.v[i]) + b.v[i];
      r.v[i] = s > std::numeric_limits<T>::max() ? std::numeric_limits<T>::max()
                                                 : static_cast<T>(s);
    }
    return r;
  }
  static ScalarVec subs(ScalarVec a, ScalarVec b) {
    ScalarVec r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] > b.v[i] ? static_cast<T>(a.v[i] - b.v[i]) : T{0};
    return r;
  }
  static ScalarVec vmax(ScalarVec a, ScalarVec b) {
    ScalarVec r;
    for (int i = 0; i < W; ++i) r.v[i] = std::max(a.v[i], b.v[i]);
    return r;
  }
  static ScalarVec cmpeq(ScalarVec a, ScalarVec b) {
    ScalarVec r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] == b.v[i] ? static_cast<T>(~T{0}) : T{0};
    return r;
  }
  static ScalarVec cmpgt_u(ScalarVec a, ScalarVec b) {
    ScalarVec r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] > b.v[i] ? static_cast<T>(~T{0}) : T{0};
    return r;
  }
  static ScalarVec vand(ScalarVec a, ScalarVec b) {
    ScalarVec r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] & b.v[i];
    return r;
  }
  static ScalarVec vor(ScalarVec a, ScalarVec b) {
    ScalarVec r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] | b.v[i];
    return r;
  }
  static ScalarVec vandnot(ScalarVec m, ScalarVec a) {
    ScalarVec r;
    for (int i = 0; i < W; ++i) r.v[i] = static_cast<T>(~m.v[i]) & a.v[i];
    return r;
  }
  static ScalarVec blend(ScalarVec m, ScalarVec a, ScalarVec b) {
    ScalarVec r;
    for (int i = 0; i < W; ++i) r.v[i] = m.v[i] ? a.v[i] : b.v[i];
    return r;
  }
  static bool any(ScalarVec m) {
    for (int i = 0; i < W; ++i)
      if (m.v[i]) return true;
    return false;
  }
};

void run_u8(const ExtendJob* jobs, KswResult* out, int n, const KswParams& p,
            BswBreakdown* bd) {
  detail::bsw_extend_inter_task<ScalarVec<std::uint8_t, 8>>(jobs, out, n, p, bd);
}
void run_u16(const ExtendJob* jobs, KswResult* out, int n, const KswParams& p,
             BswBreakdown* bd) {
  detail::bsw_extend_inter_task<ScalarVec<std::uint16_t, 8>>(jobs, out, n, p, bd);
}

}  // namespace

const BswEngine kEngineScalarU8 = {&run_u8, 8, "scalar-8bit"};
const BswEngine kEngineScalarU16 = {&run_u16, 8, "scalar-16bit"};

}  // namespace mem2::bsw
