#include "bsw/bsw_executor.h"

#include <omp.h>

#include <algorithm>

#include "util/radix_sort.h"
#include "util/timer.h"

namespace mem2::bsw {

void BswExecutor::set_threads(int threads) {
  threads_ = std::max(1, threads);
  if (slots_.size() < static_cast<std::size_t>(threads_))
    slots_.resize(static_cast<std::size_t>(threads_));
}

std::size_t BswExecutor::workspace_bytes() const {
  std::size_t bytes = (idx8_.capacity() + idx16_.capacity() + sort_keys_.capacity() +
                       sort_scratch_.capacity()) *
                      sizeof(std::uint32_t);
  for (const ThreadSlot& s : slots_)
    bytes += s.chunk.capacity() * sizeof(ExtendJob) +
             s.chunk_out.capacity() * sizeof(KswResult);
  return bytes;
}

void BswExecutor::run_group(const ExtendJob* jobs, KswResult* out,
                            std::vector<std::uint32_t>& order, const KswParams& params,
                            const BswBatchOptions& opt, const BswEngine& engine,
                            bool want_stats) {
  if (order.empty()) return;

  if (opt.sort_by_length) {
    util::Timer t;
    // Two stable passes: minor key tlen, then major key qlen.  The key
    // array is indexed by job id, so it can be refilled between passes.
    for (std::uint32_t i : order) sort_keys_[i] = static_cast<std::uint32_t>(jobs[i].tlen);
    util::radix_sort_indices(sort_keys_, order, sort_scratch_);
    for (std::uint32_t i : order) sort_keys_[i] = static_cast<std::uint32_t>(jobs[i].qlen);
    util::radix_sort_indices(sort_keys_, order, sort_scratch_);
    if (want_stats) slots_[0].stats.sort_seconds += t.seconds();
  }

  MEM2_REQUIRE(engine.width >= 1 && engine.width <= kMaxEngineWidth,
               "engine width exceeds executor chunk buffers");
  const std::size_t width = static_cast<std::size_t>(engine.width);
  const std::size_t n_chunks = chunk_count(order.size(), engine.width);
  const int team = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(threads_), n_chunks));

#pragma omp parallel num_threads(team)
  {
    const int tid = omp_get_thread_num();
    ThreadSlot& slot = slots_[static_cast<std::size_t>(tid)];
    if (slot.chunk.size() < static_cast<std::size_t>(kMaxEngineWidth)) {
      slot.chunk.resize(static_cast<std::size_t>(kMaxEngineWidth));
      slot.chunk_out.resize(static_cast<std::size_t>(kMaxEngineWidth));
    }
    // Worker threads bump their own TLS counter sink; park the caller's
    // accumulated counters so the reduction below can restore them plus the
    // per-thread deltas, leaving the TLS state exactly as a serial run would.
    const util::SwCounters saved = util::tls_counters();
    util::tls_counters().reset();

#pragma omp for schedule(dynamic, 1)
    for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(n_chunks); ++c) {
      const std::size_t pos = static_cast<std::size_t>(c) * width;
      const int n = static_cast<int>(std::min(width, order.size() - pos));
      for (int z = 0; z < n; ++z)
        slot.chunk[static_cast<std::size_t>(z)] = jobs[order[pos + static_cast<std::size_t>(z)]];
      engine.run(slot.chunk.data(), slot.chunk_out.data(), n, params,
                 want_stats ? &slot.stats.breakdown : nullptr);
      for (int z = 0; z < n; ++z)
        out[order[pos + static_cast<std::size_t>(z)]] = slot.chunk_out[static_cast<std::size_t>(z)];
      ++slot.stats.chunks;
    }

    slot.counters += util::tls_counters();
    util::tls_counters() = saved;
  }
}

void BswExecutor::run(const ExtendJob* jobs, std::size_t n_jobs, KswResult* out,
                      const KswParams& params, const BswBatchOptions& opt,
                      BswBatchStats* stats) {
  std::fill(out, out + n_jobs, KswResult{});
  if (n_jobs == 0) return;
  if (slots_.empty()) slots_.resize(1);
  for (ThreadSlot& s : slots_) s.stats = BswBatchStats{};

  idx8_.clear();
  idx16_.clear();
  idx8_.reserve(n_jobs);
  idx16_.reserve(n_jobs);
  for (std::uint32_t i = 0; i < n_jobs; ++i) {
    if (!opt.force_16bit && fits_8bit(jobs[i], params))
      idx8_.push_back(i);
    else
      idx16_.push_back(i);
  }
  if (sort_keys_.size() < n_jobs) sort_keys_.resize(n_jobs);
  if (stats) {
    stats->jobs_8bit += idx8_.size();
    stats->jobs_16bit += idx16_.size();
  }

  run_group(jobs, out, idx8_, params, opt, get_engine(opt.isa, Precision::k8bit),
            stats != nullptr);
  run_group(jobs, out, idx16_, params, opt, get_engine(opt.isa, Precision::k16bit),
            stats != nullptr);

  // Slot-order reduction keeps the aggregate deterministic for a fixed
  // thread count; the integer counters are thread-count invariant.
  for (ThreadSlot& s : slots_) {
    if (stats) *stats += s.stats;
    util::tls_counters() += s.counters;
    s.counters.reset();
  }
}

void BswExecutor::run(const std::vector<ExtendJob>& jobs, std::vector<KswResult>& out,
                      const KswParams& params, const BswBatchOptions& opt,
                      BswBatchStats* stats) {
  out.resize(jobs.size());
  run(jobs.data(), jobs.size(), out.data(), params, opt, stats);
}

}  // namespace mem2::bsw
