// Banded Smith-Waterman types shared by the scalar kernel, the inter-task
// SIMD engine and the global (CIGAR) aligner.
//
// Semantics follow BWA-MEM's ksw_extend2 (paper §5.1): seed extension from
// an initial score h0, band of width w around the diagonal, early abort when
// a row is all zero or the best score drops by more than zdrop, band
// adjustment from both row ends after every row.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "seq/dna.h"
#include "util/common.h"

namespace mem2::bsw {

/// Scoring parameters (bwa defaults: a=1, b=4, o=6, e=1, zdrop=100).
struct KswParams {
  int a = 1;        // match score
  int b = 4;        // mismatch penalty (positive)
  int o_del = 6;    // gap open (deletion)
  int e_del = 1;    // gap extend (deletion)
  int o_ins = 6;    // gap open (insertion)
  int e_ins = 1;    // gap extend (insertion)
  int zdrop = 100;  // Z-dropoff; <=0 disables
  int end_bonus = 5;

  /// 5x5 score matrix over {A,C,G,T,N}: match a, mismatch -b, anything
  /// against N scores -1 (bwa_fill_scmat).
  std::array<std::int8_t, 25> matrix() const {
    std::array<std::int8_t, 25> m{};
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j)
        m[static_cast<std::size_t>(i * 5 + j)] =
            i == j ? static_cast<std::int8_t>(a) : static_cast<std::int8_t>(-b);
    for (int i = 0; i < 5; ++i) {
      m[static_cast<std::size_t>(i * 5 + 4)] = -1;
      m[static_cast<std::size_t>(4 * 5 + i)] = -1;
    }
    return m;
  }
};

/// Result of one banded extension (bwa's out-params).
struct KswResult {
  int score = 0;    // best local score (>= h0)
  int qle = 0;      // query end of the best cell (exclusive)
  int tle = 0;      // target end of the best cell (exclusive)
  int gtle = 0;     // target end of the best end-to-end-of-query score
  int gscore = -1;  // best score reaching the end of the query, -1 if none
  int max_off = 0;  // max diagonal offset reached by the best cell

  bool operator==(const KswResult&) const = default;
};

/// One extension task (query/target already oriented; codes 0..4).
struct ExtendJob {
  const seq::Code* query = nullptr;
  int qlen = 0;
  const seq::Code* target = nullptr;
  int tlen = 0;
  int h0 = 0;  // initial score (seed score)
  int w = 0;   // band width
};

/// Scalar banded extension — faithful port of ksw_extend2.  This is both
/// the "Original scalar" BSW of the paper's Table 6 and the reference the
/// SIMD engines must match bit for bit.
KswResult ksw_extend_scalar(const ExtendJob& job, const KswParams& params);

/// CIGAR operation: op in {'M','I','D','S','H'}, len > 0.
struct CigarOp {
  char op;
  int len;
  bool operator==(const CigarOp&) const = default;
};
using Cigar = std::vector<CigarOp>;

std::string cigar_string(const Cigar& cigar);

/// Banded global (Needleman-Wunsch/Gotoh) alignment with traceback; used by
/// SAM-FORM to produce CIGARs (bwa's ksw_global2 role).  Returns the score;
/// fills `cigar` with M/I/D runs covering the full query and target.
int ksw_global(const seq::Code* query, int qlen, const seq::Code* target,
               int tlen, const KswParams& params, int w, Cigar& cigar);

}  // namespace mem2::bsw
