// Compat shim: the batched-BSW pipeline now lives in BswExecutor
// (bsw_executor.h).  extend_batch keeps its historical serial semantics by
// delegating to a thread-local single-threaded executor, whose workspace
// persists across calls — so even the shim is allocation-free in steady
// state, fixing the per-call churn the free function used to have.
#include "bsw/bsw_batch.h"

#include "bsw/bsw_executor.h"

namespace mem2::bsw {

void extend_batch(const std::vector<ExtendJob>& jobs, std::vector<KswResult>& out,
                  const KswParams& params, const BswBatchOptions& opt,
                  BswBatchStats* stats) {
  thread_local BswExecutor executor(1);
  executor.run(jobs, out, params, opt, stats);
}

}  // namespace mem2::bsw
