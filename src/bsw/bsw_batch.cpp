#include "bsw/bsw_batch.h"

#include <algorithm>

#include "util/radix_sort.h"
#include "util/timer.h"

namespace mem2::bsw {

namespace {

void run_group(const std::vector<ExtendJob>& jobs, std::vector<KswResult>& out,
               std::vector<std::uint32_t>& order, const KswParams& params,
               const BswBatchOptions& opt, const BswEngine& engine,
               BswBatchStats* stats) {
  if (order.empty()) return;

  if (opt.sort_by_length) {
    util::Timer t;
    // Two stable passes: minor key tlen, then major key qlen.
    std::vector<std::uint32_t> tkeys(jobs.size()), qkeys(jobs.size());
    for (std::uint32_t i : order) {
      tkeys[i] = static_cast<std::uint32_t>(jobs[i].tlen);
      qkeys[i] = static_cast<std::uint32_t>(jobs[i].qlen);
    }
    util::radix_sort_indices(tkeys, order);
    util::radix_sort_indices(qkeys, order);
    if (stats) stats->sort_seconds += t.seconds();
  }

  std::vector<ExtendJob> chunk(static_cast<std::size_t>(engine.width));
  std::vector<KswResult> chunk_out(static_cast<std::size_t>(engine.width));
  for (std::size_t pos = 0; pos < order.size(); pos += static_cast<std::size_t>(engine.width)) {
    const int n = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(engine.width), order.size() - pos));
    for (int z = 0; z < n; ++z) chunk[static_cast<std::size_t>(z)] = jobs[order[pos + static_cast<std::size_t>(z)]];
    engine.run(chunk.data(), chunk_out.data(), n, params,
               stats ? &stats->breakdown : nullptr);
    for (int z = 0; z < n; ++z) out[order[pos + static_cast<std::size_t>(z)]] = chunk_out[static_cast<std::size_t>(z)];
    if (stats) ++stats->chunks;
  }
}

}  // namespace

void extend_batch(const std::vector<ExtendJob>& jobs, std::vector<KswResult>& out,
                  const KswParams& params, const BswBatchOptions& opt,
                  BswBatchStats* stats) {
  out.assign(jobs.size(), KswResult{});
  if (jobs.empty()) return;

  std::vector<std::uint32_t> idx8, idx16;
  idx8.reserve(jobs.size());
  for (std::uint32_t i = 0; i < jobs.size(); ++i) {
    if (!opt.force_16bit && fits_8bit(jobs[i], params))
      idx8.push_back(i);
    else
      idx16.push_back(i);
  }
  if (stats) {
    stats->jobs_8bit += idx8.size();
    stats->jobs_16bit += idx16.size();
  }

  run_group(jobs, out, idx8, params, opt, get_engine(opt.isa, Precision::k8bit), stats);
  run_group(jobs, out, idx16, params, opt, get_engine(opt.isa, Precision::k16bit), stats);
}

}  // namespace mem2::bsw
