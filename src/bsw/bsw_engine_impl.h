// Shared template implementation of the inter-task BSW engine.
//
// Included ONLY by the per-ISA translation units (bsw_engine_scalar.cpp,
// bsw_engine_avx2.cpp, bsw_engine_avx512.cpp), each of which supplies a
// vector abstraction V:
//
//   struct V {
//     static constexpr int W;        // lane count
//     using elem;                    // uint8_t or uint16_t
//     static V zero(); set1(int); load(const elem*);
//     void store(elem*) const;
//     adds(a,b) subs(a,b)            // unsigned saturating
//     vmax(a,b) cmpeq(a,b) cmpgt_u(a,b)
//     vand vor vandnot(m,a)          // (~m) & a
//     blend(m,a,b)                   // m ? a : b, per lane
//     any(m)                         // any lane nonzero
//   };
//
// The algorithm mirrors ksw_extend_scalar lane for lane.  Unsigned
// saturating arithmetic replaces the scalar signed max(...,0) clamps; the
// bias trick (score + b stored, then subtracted) keeps the per-cell match
// score non-negative.  Band entry/shrink run with per-lane compares and
// blends, one cell at a time from both row ends, exactly as the paper
// describes in §5.4 — their cost is what Table 8 measures.  Scratch memory
// is thread-local and reused across chunks (the §3.2 allocation policy).
#pragma once

#include <algorithm>
#include <cstring>
#include <vector>

#include "bsw/bsw_engine.h"
#include "util/sw_counters.h"
#include "util/tsc.h"

namespace mem2::bsw::detail {

/// Per-thread scratch reused across engine invocations.  reserve() must be
/// called with the total requirement BEFORE slicing: slices alias the one
/// backing buffer, so growing it mid-call would invalidate earlier slices.
struct BswScratch {
  std::vector<std::uint8_t> bytes;
  std::size_t offset = 0;

  void reserve(std::size_t total) {
    if (bytes.size() < total) bytes.resize(total);
    offset = 0;
  }

  template <typename T>
  T* slice(std::size_t count) {
    offset = (offset + 63) & ~std::size_t{63};
    T* p = reinterpret_cast<T*>(bytes.data() + offset);
    offset += count * sizeof(T);
    MEM2_REQUIRE(offset <= bytes.size(), "BSW scratch overflow");
    return p;
  }
};

inline BswScratch& tls_scratch() {
  thread_local BswScratch scratch;
  return scratch;
}

template <class V>
void bsw_extend_inter_task(const ExtendJob* jobs, KswResult* out, int n,
                           const KswParams& p, BswBreakdown* bd) {
  using elem = typename V::elem;
  constexpr int W = V::W;
  MEM2_REQUIRE(n >= 1 && n <= W, "batch size exceeds engine width");

  std::uint64_t tick = bd ? util::tsc_now() : 0;
  auto phase_end = [&](double BswBreakdown::* slot) {
    if (!bd) return;
    const std::uint64_t now = util::tsc_now();
    bd->*slot += util::tsc_to_seconds(now - tick);
    tick = now;
  };

  // ---------------- pre-processing (Table 8 "Pre-processing") ------------
  int max_qlen = 0, max_tlen = 0;
  for (int z = 0; z < n; ++z) {
    MEM2_REQUIRE(jobs[z].qlen > 0 && jobs[z].tlen > 0, "empty BSW job");
    max_qlen = std::max(max_qlen, jobs[z].qlen);
    max_tlen = std::max(max_tlen, jobs[z].tlen);
  }

  const int oe_del = p.o_del + p.e_del, oe_ins = p.o_ins + p.e_ins;
  const int bias = std::max(p.b, 1);

  // Thread-local scratch: no allocations in steady state (§3.2).
  BswScratch& scratch = tls_scratch();
  const std::size_t q_elems = static_cast<std::size_t>(max_qlen) * W;
  const std::size_t t_elems = static_cast<std::size_t>(max_tlen) * W;
  const std::size_t eh_elems = static_cast<std::size_t>(max_qlen + 2) * W;
  scratch.reserve((q_elems + t_elems + 2 * eh_elems) * sizeof(elem) + 4 * 64);
  elem* q_soa = scratch.slice<elem>(q_elems);
  elem* t_soa = scratch.slice<elem>(t_elems);
  elem* eh_h = scratch.slice<elem>(eh_elems);
  elem* eh_e = scratch.slice<elem>(eh_elems);

  // AoS -> SoA (paper §5.3.3).  Lanes beyond n keep stale bytes: they are
  // masked inactive everywhere.
  for (int z = 0; z < n; ++z) {
    for (int j = 0; j < jobs[z].qlen; ++j)
      q_soa[static_cast<std::size_t>(j) * W + static_cast<std::size_t>(z)] =
          static_cast<elem>(jobs[z].query[j]);
    for (int i = 0; i < jobs[z].tlen; ++i)
      t_soa[static_cast<std::size_t>(i) * W + static_cast<std::size_t>(z)] =
          static_cast<elem>(jobs[z].target[i]);
  }
  std::memset(eh_h, 0, eh_elems * sizeof(elem));
  std::memset(eh_e, 0, eh_elems * sizeof(elem));

  // Per-lane scalar state (fixed arrays so the band-entry loop vectorizes).
  alignas(64) int qlen[W] = {}, tlen[W] = {}, wband[W] = {}, h0[W] = {};
  alignas(64) int beg[W] = {}, end[W] = {};
  int maxv[W] = {}, max_i[W], max_j[W], max_ie[W], gscore[W], max_off[W] = {};
  bool done[W];
  for (int z = 0; z < W; ++z) {
    max_i[z] = max_j[z] = max_ie[z] = -1;
    gscore[z] = -1;
    done[z] = z >= n;
  }
  auto& ctr = util::tls_counters();
  for (int z = 0; z < n; ++z) {
    const ExtendJob& job = jobs[z];
    qlen[z] = job.qlen;
    tlen[z] = job.tlen;
    h0[z] = job.h0;
    maxv[z] = job.h0;
    end[z] = job.qlen;
    ++ctr.bsw_pairs;

    // Per-lane band clamp (identical to the scalar kernel).
    int w = job.w;
    const int max_ins = std::max(
        1, static_cast<int>(
               static_cast<double>(job.qlen * p.a + p.end_bonus - p.o_ins) / p.e_ins + 1.0));
    w = std::min(w, max_ins);
    const int max_del = std::max(
        1, static_cast<int>(
               static_cast<double>(job.qlen * p.a + p.end_bonus - p.o_del) / p.e_del + 1.0));
    wband[z] = std::min(w, max_del);

    // First row: h0, h0-oe_ins, then -e_ins steps while > e_ins.
    eh_h[static_cast<std::size_t>(0) * W + static_cast<std::size_t>(z)] = static_cast<elem>(job.h0);
    const int h01 = job.h0 > oe_ins ? job.h0 - oe_ins : 0;
    eh_h[static_cast<std::size_t>(1) * W + static_cast<std::size_t>(z)] = static_cast<elem>(h01);
    int prev = h01;
    for (int j = 2; j <= job.qlen && prev > p.e_ins; ++j) {
      prev -= p.e_ins;
      eh_h[static_cast<std::size_t>(j) * W + static_cast<std::size_t>(z)] = static_cast<elem>(prev);
    }
  }

  const V v_zero = V::zero();
  const V v_bias = V::set1(bias);
  const V v_match = V::set1(bias + p.a);
  const V v_amb = V::set1(bias - 1);  // score -1 vs ambiguous bases
  const V v_n = V::set1(4);
  const V v_oe_del = V::set1(oe_del);
  const V v_e_del = V::set1(p.e_del);
  const V v_oe_ins = V::set1(oe_ins);
  const V v_e_ins = V::set1(p.e_ins);
  const V v_ones = V::cmpeq(v_zero, v_zero);

  phase_end(&BswBreakdown::pre);

  alignas(64) elem begv_arr[W], endv_arr[W], h1_arr[W], active_arr[W];
  alignas(64) elem m_arr[W], mj_arr[W], h1_out[W];

  // ---------------- row loop ---------------------------------------------
  for (int i = 0; i < max_tlen; ++i) {
    // --- band entry (Table 8 "Band adjustment I") ---
    // Branchless per-lane updates over contiguous int arrays: the compiler
    // vectorizes these loops, so the entry cost stays small even at W=64.
    const int row_gap_pen = p.o_del + p.e_del * (i + 1);
    for (int z = 0; z < W; ++z) {
      const int b = std::max(beg[z], i - wband[z]);
      const int e = std::min(std::min(end[z], i + wband[z] + 1), qlen[z]);
      beg[z] = b;
      end[z] = e;
      // Clamp the lane-width copies: b can exceed the elem range once the
      // band has slid past the query end (empty band; the lane dies this
      // row).  min(b, qlen) keeps the in-band mask empty without wrapping.
      begv_arr[z] = static_cast<elem>(std::min(b, qlen[z]));
      endv_arr[z] = static_cast<elem>(e);
      const int h1 = b == 0 ? std::max(h0[z] - row_gap_pen, 0) : 0;
      h1_arr[z] = static_cast<elem>(h1);
    }
    int row_beg = max_qlen, row_end = 0;
    bool any_active = false;
    for (int z = 0; z < W; ++z) {
      const bool act = !done[z] && i < tlen[z];
      active_arr[z] = act ? static_cast<elem>(~elem{0}) : elem{0};
      any_active |= act;
      row_beg = std::min(row_beg, act ? beg[z] : max_qlen);
      row_end = std::max(row_end, act ? end[z] : 0);
    }
    if (!any_active) {
      phase_end(&BswBreakdown::band1);
      break;
    }

    const V begv = V::load(begv_arr);
    const V endv = V::load(endv_arr);
    const V active = V::load(active_arr);
    const V t_i = V::load(&t_soa[static_cast<std::size_t>(i) * W]);
    V h1 = V::load(h1_arr);
    V f = v_zero;
    V m = v_zero;
    V mj = v_zero;
    phase_end(&BswBreakdown::band1);

    // ---------------- cell loop (Table 8 "Cell computations") ------------
    for (int j = row_beg; j < row_end; ++j) {
      const V j_vec = V::set1(j);
      // in-band: beg <= j < end, lane active.
      V in = V::vandnot(V::cmpgt_u(begv, j_vec), V::cmpgt_u(endv, j_vec));
      in = V::vand(in, active);

      elem* ph = &eh_h[static_cast<std::size_t>(j) * W];
      elem* pe = &eh_e[static_cast<std::size_t>(j) * W];
      const V Hdiag = V::load(ph);  // H(i-1, j-1)
      const V E = V::load(pe);      // E(i, j)

      // p->h = h1 (store H(i, j-1) for the next row), masked.
      V::blend(in, h1, Hdiag).store(ph);

      // M = Hdiag ? Hdiag + s(q,t) : 0, via the bias trick.
      const V q_j = V::load(&q_soa[static_cast<std::size_t>(j) * W]);
      const V eq = V::cmpeq(q_j, t_i);
      const V amb = V::vor(V::cmpeq(q_j, v_n), V::cmpeq(t_i, v_n));
      V sbias = V::blend(eq, v_match, v_zero);       // match: a+bias, mismatch: 0 (= bias-b)
      sbias = V::blend(amb, v_amb, sbias);           // N anywhere: bias-1
      V M = V::subs(V::adds(Hdiag, sbias), v_bias);
      M = V::vandnot(V::cmpeq(Hdiag, v_zero), M);

      V h = V::vmax(M, E);
      h = V::vmax(h, f);
      h1 = V::blend(in, h, h1);

      // mj = (m > h) ? mj : j ; m = max(m, h)   (in-band lanes only)
      const V keep = V::cmpgt_u(m, h);
      mj = V::blend(V::vandnot(keep, in), j_vec, mj);
      m = V::blend(in, V::vmax(m, h), m);

      // E(i+1, j) and F(i, j+1).
      const V t_del = V::subs(M, v_oe_del);
      const V e_new = V::vmax(V::subs(E, v_e_del), t_del);
      V::blend(in, e_new, E).store(pe);
      const V t_ins = V::subs(M, v_oe_ins);
      f = V::blend(in, V::vmax(V::subs(f, v_e_ins), t_ins), f);
    }
    phase_end(&BswBreakdown::cells);

    // ---------------- row epilogue (Table 8 "Band adjustment II") --------
    {
      // Wasted-work accounting (paper §6.2.3: "useful cells are roughly
      // half of the total cells computed").
      ctr.bsw_cells_total += static_cast<std::uint64_t>(row_end - row_beg) * W;
      std::uint64_t useful = 0;
      for (int z = 0; z < W; ++z)
        if (active_arr[z]) useful += static_cast<std::uint64_t>(end[z] - beg[z]);
      ctr.bsw_cells_useful += useful;
    }
    h1.store(h1_out);
    m.store(m_arr);
    mj.store(mj_arr);
    bool any_survivor = false;
    for (int z = 0; z < W; ++z) {
      if (!active_arr[z]) continue;
      // eh[end].h = h1; eh[end].e = 0;
      eh_h[static_cast<std::size_t>(end[z]) * W + static_cast<std::size_t>(z)] = h1_out[z];
      eh_e[static_cast<std::size_t>(end[z]) * W + static_cast<std::size_t>(z)] = 0;

      const int m_z = static_cast<int>(m_arr[z]);
      const int mj_z = end[z] > beg[z] ? static_cast<int>(mj_arr[z]) : -1;
      if (end[z] == qlen[z]) {
        // Ties update max_ie to the later row (scalar: gscore > h1 ? keep).
        const int h1_z = static_cast<int>(h1_out[z]);
        if (!(gscore[z] > h1_z)) {
          max_ie[z] = i;
          gscore[z] = h1_z;
        }
      }
      if (m_z == 0) {
        done[z] = true;
        active_arr[z] = 0;
        ++ctr.bsw_aborted_pairs;
        continue;
      }
      if (m_z > maxv[z]) {
        maxv[z] = m_z;
        max_i[z] = i;
        max_j[z] = mj_z;
        max_off[z] = std::max(max_off[z], std::abs(mj_z - i));
      } else if (p.zdrop > 0) {
        const int di = i - max_i[z], dj = mj_z - max_j[z];
        const bool drop =
            di > dj ? maxv[z] - m_z - (di - dj) * p.e_del > p.zdrop
                    : maxv[z] - m_z - (dj - di) * p.e_ins > p.zdrop;
        if (drop) {
          done[z] = true;
          active_arr[z] = 0;
          ++ctr.bsw_aborted_pairs;
          continue;
        }
      }
      any_survivor = true;
    }

    if (any_survivor) {
      // Band shrink, vectorized one cell at a time from both row ends
      // (paper §5.4(c)): find per lane the first/last column in
      // [beg, end] whose H and E are both zero-free.
      const V survivors = V::load(active_arr);
      const V begv2 = V::load(begv_arr);  // row-entry beg values (elem)
      // endv_arr still holds end (exclusive); the backward scan is
      // inclusive of eh[end], so compare against end directly.
      const V endv2 = V::load(endv_arr);

      // Forward: first nonzero column -> new beg.
      V fixed = V::vandnot(survivors, v_ones);  // ~survivors
      V new_beg = begv2;
      for (int j = row_beg; j <= row_end; ++j) {
        V unfixed = V::vandnot(fixed, survivors);
        if (!V::any(unfixed)) break;
        const V j_vec = V::set1(j);
        const V h = V::load(&eh_h[static_cast<std::size_t>(j) * W]);
        const V e = V::load(&eh_e[static_cast<std::size_t>(j) * W]);
        const V nz = V::vandnot(V::vand(V::cmpeq(h, v_zero), V::cmpeq(e, v_zero)),
                                v_ones);
        // in-range: beg <= j <= end (the backward/forward scans include
        // eh[end], which the cell loop just wrote as (h1, 0))
        V in = V::vandnot(V::cmpgt_u(begv2, j_vec),
                          V::vandnot(V::cmpgt_u(j_vec, endv2), v_ones));
        const V fix = V::vand(unfixed, V::vand(in, nz));
        new_beg = V::blend(fix, j_vec, new_beg);
        fixed = V::vor(fixed, fix);
      }
      // Backward: last nonzero column -> new end = that column + 2.
      V fixed2 = V::vandnot(survivors, v_ones);
      V new_end = endv2;
      for (int j = row_end; j >= row_beg; --j) {
        V unfixed = V::vandnot(fixed2, survivors);
        if (!V::any(unfixed)) break;
        const V j_vec = V::set1(j);
        const V h = V::load(&eh_h[static_cast<std::size_t>(j) * W]);
        const V e = V::load(&eh_e[static_cast<std::size_t>(j) * W]);
        const V nz = V::vandnot(V::vand(V::cmpeq(h, v_zero), V::cmpeq(e, v_zero)),
                                v_ones);
        V in = V::vandnot(V::cmpgt_u(begv2, j_vec),
                          V::vandnot(V::cmpgt_u(j_vec, endv2), v_ones));
        const V fix = V::vand(unfixed, V::vand(in, nz));
        new_end = V::blend(fix, j_vec, new_end);
        fixed2 = V::vor(fixed2, fix);
      }
      new_beg.store(begv_arr);
      new_end.store(endv_arr);
      for (int z = 0; z < W; ++z) {
        if (!active_arr[z]) continue;
        beg[z] = static_cast<int>(begv_arr[z]);
        const int j2 = static_cast<int>(endv_arr[z]);
        end[z] = j2 + 2 < qlen[z] ? j2 + 2 : qlen[z];
      }
    }
    if (bd) phase_end(&BswBreakdown::band2);
  }

  for (int z = 0; z < n; ++z) {
    out[z].score = maxv[z];
    out[z].qle = max_j[z] + 1;
    out[z].tle = max_i[z] + 1;
    out[z].gtle = max_ie[z] + 1;
    out[z].gscore = gscore[z];
    out[z].max_off = max_off[z];
  }
}

}  // namespace mem2::bsw::detail
