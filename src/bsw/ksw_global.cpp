// Banded global alignment with traceback (Gotoh affine gaps) — fills the
// role of bwa's ksw_global2 in SAM formation: once a region's endpoints are
// fixed by the extension kernel, the CIGAR comes from a global alignment of
// the clipped query segment against the reference segment.
#include <algorithm>
#include <limits>

#include "bsw/ksw.h"

namespace mem2::bsw {

namespace {

constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 2;

// Traceback codes for H, plus extension flags for E/D and F/I chains.
enum : std::uint8_t {
  kFromDiag = 0,
  kFromDel = 1,  // H came from E (gap in query / deletion)
  kFromIns = 2,  // H came from F (gap in target / insertion)
  kHMask = 3,
  kDelExt = 4,  // E extended (stay in deletion state)
  kInsExt = 8,  // F extended (stay in insertion state)
};

void push_op(Cigar& cigar, char op, int len) {
  if (len <= 0) return;
  if (!cigar.empty() && cigar.back().op == op)
    cigar.back().len += len;
  else
    cigar.push_back({op, len});
}

}  // namespace

int ksw_global(const seq::Code* query, int qlen, const seq::Code* target,
               int tlen, const KswParams& p, int w, Cigar& cigar) {
  cigar.clear();
  if (qlen == 0 && tlen == 0) return 0;
  if (qlen == 0) {
    push_op(cigar, 'D', tlen);
    return -(p.o_del + p.e_del * tlen);
  }
  if (tlen == 0) {
    push_op(cigar, 'I', qlen);
    return -(p.o_ins + p.e_ins * qlen);
  }

  // The band must cover the length difference or no global path exists.
  w = std::max(w, std::abs(tlen - qlen) + 1);
  const auto mat = p.matrix();
  const int oe_del = p.o_del + p.e_del, oe_ins = p.o_ins + p.e_ins;

  const std::size_t width = static_cast<std::size_t>(qlen) + 1;
  std::vector<std::int32_t> h(width), e(width);
  std::vector<std::uint8_t> tb(static_cast<std::size_t>(tlen + 1) * width, 0);

  // Row 0: only insertions.
  h[0] = 0;
  e[0] = kNegInf;
  for (int j = 1; j <= qlen; ++j) {
    h[static_cast<std::size_t>(j)] = j <= w ? -(p.o_ins + p.e_ins * j) : kNegInf;
    e[static_cast<std::size_t>(j)] = kNegInf;
    tb[static_cast<std::size_t>(j)] = kFromIns | kInsExt;
  }

  for (int i = 1; i <= tlen; ++i) {
    const int beg = std::max(1, i - w);
    const int end = std::min(qlen, i + w);
    std::int32_t h_diag = h[static_cast<std::size_t>(beg - 1)];  // H(i-1, beg-1)
    // Column beg-1 of this row.
    std::int32_t h_left;
    if (beg == 1) {
      h_left = -(p.o_del + p.e_del * i);
      tb[static_cast<std::size_t>(i) * width] = kFromDel | kDelExt;
    } else {
      h_left = kNegInf;
    }
    h[static_cast<std::size_t>(beg - 1)] = h_left;
    std::int32_t f = kNegInf;

    for (int j = beg; j <= end; ++j) {
      std::uint8_t dir = 0;
      // E (deletion, vertical): from H(i-1, j) or E(i-1, j).
      const std::int32_t h_up = h[static_cast<std::size_t>(j)];
      std::int32_t e_open = h_up - oe_del;
      std::int32_t e_ext = e[static_cast<std::size_t>(j)] - p.e_del;
      if (e_ext > e_open) dir |= kDelExt;
      const std::int32_t e_cur = std::max(e_open, e_ext);

      // F (insertion, horizontal): from H(i, j-1) or F(i, j-1).
      std::int32_t f_open = h_left - oe_ins;
      std::int32_t f_ext = f - p.e_ins;
      if (f_ext > f_open) dir |= kInsExt;
      const std::int32_t f_cur = std::max(f_open, f_ext);

      // H: diagonal vs E vs F (prefer diagonal on ties, then deletion —
      // matches ksw_global's choice order).
      const std::int32_t diag =
          h_diag + mat[static_cast<std::size_t>(target[i - 1] * 5 + query[j - 1])];
      std::int32_t best = diag;
      std::uint8_t from = kFromDiag;
      if (e_cur > best) {
        best = e_cur;
        from = kFromDel;
      }
      if (f_cur > best) {
        best = f_cur;
        from = kFromIns;
      }
      dir |= from;
      tb[static_cast<std::size_t>(i) * width + static_cast<std::size_t>(j)] = dir;

      h_diag = h_up;
      h[static_cast<std::size_t>(j)] = best;
      e[static_cast<std::size_t>(j)] = e_cur;
      f = f_cur;
      h_left = best;
    }
    // Kill columns outside the band for the next row.
    if (end < qlen) h[static_cast<std::size_t>(end + 1)] = kNegInf;
    if (beg > 1) e[static_cast<std::size_t>(beg - 1)] = kNegInf;
  }

  const int score = h[static_cast<std::size_t>(qlen)];

  // Traceback from (tlen, qlen): a three-state machine (H, deletion run,
  // insertion run); extension flags decide whether a gap run continues.
  Cigar rev;
  int i = tlen, j = qlen;
  int state = 0;  // 0 = H, 1 = in deletion (E), 2 = in insertion (F)
  while (i > 0 || j > 0) {
    const std::uint8_t dir =
        tb[static_cast<std::size_t>(i) * width + static_cast<std::size_t>(j)];
    if (state == 0) {
      const std::uint8_t from = dir & kHMask;
      if (from == kFromDiag) {
        MEM2_REQUIRE(i > 0 && j > 0, "global traceback escaped the matrix");
        push_op(rev, 'M', 1);
        --i;
        --j;
      } else if (from == kFromDel) {
        state = 1;  // re-read this cell in deletion state
      } else {
        state = 2;
      }
    } else if (state == 1) {
      push_op(rev, 'D', 1);
      state = (dir & kDelExt) != 0 ? 1 : 0;
      --i;
    } else {
      push_op(rev, 'I', 1);
      state = (dir & kInsExt) != 0 ? 2 : 0;
      --j;
    }
  }
  // Reverse and merge adjacent runs of the same op.
  cigar.clear();
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) push_op(cigar, it->op, it->len);
  return score;
}

}  // namespace mem2::bsw
