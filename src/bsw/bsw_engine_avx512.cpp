// AVX512BW inter-task BSW engines: 64 pairs at 8-bit precision, 32 pairs at
// 16-bit (the paper's SKX configuration, SIMD widths 64/32).  Mask registers
// are materialized as byte masks so the shared template stays ISA-agnostic.
// Compiled with -mavx512f -mavx512bw -mavx512vl; reached only via dispatch.
#include <immintrin.h>

#include "bsw/bsw_engine_impl.h"

namespace mem2::bsw {

namespace {

struct VecU8 {
  static constexpr int W = 64;
  using elem = std::uint8_t;
  __m512i v;

  static VecU8 wrap(__m512i x) { return VecU8{x}; }
  static VecU8 zero() { return wrap(_mm512_setzero_si512()); }
  static VecU8 set1(int x) { return wrap(_mm512_set1_epi8(static_cast<char>(x))); }
  static VecU8 load(const elem* p) { return wrap(_mm512_loadu_si512(p)); }
  void store(elem* p) const { _mm512_storeu_si512(p, v); }
  static VecU8 adds(VecU8 a, VecU8 b) { return wrap(_mm512_adds_epu8(a.v, b.v)); }
  static VecU8 subs(VecU8 a, VecU8 b) { return wrap(_mm512_subs_epu8(a.v, b.v)); }
  static VecU8 vmax(VecU8 a, VecU8 b) { return wrap(_mm512_max_epu8(a.v, b.v)); }
  static VecU8 cmpeq(VecU8 a, VecU8 b) {
    return wrap(_mm512_movm_epi8(_mm512_cmpeq_epu8_mask(a.v, b.v)));
  }
  static VecU8 cmpgt_u(VecU8 a, VecU8 b) {
    return wrap(_mm512_movm_epi8(_mm512_cmpgt_epu8_mask(a.v, b.v)));
  }
  static VecU8 vand(VecU8 a, VecU8 b) { return wrap(_mm512_and_si512(a.v, b.v)); }
  static VecU8 vor(VecU8 a, VecU8 b) { return wrap(_mm512_or_si512(a.v, b.v)); }
  static VecU8 vandnot(VecU8 m, VecU8 a) { return wrap(_mm512_andnot_si512(m.v, a.v)); }
  static VecU8 blend(VecU8 m, VecU8 a, VecU8 b) {
    const __mmask64 k = _mm512_movepi8_mask(m.v);
    return wrap(_mm512_mask_blend_epi8(k, b.v, a.v));
  }
  static bool any(VecU8 m) { return _mm512_test_epi64_mask(m.v, m.v) != 0; }
};

struct VecU16 {
  static constexpr int W = 32;
  using elem = std::uint16_t;
  __m512i v;

  static VecU16 wrap(__m512i x) { return VecU16{x}; }
  static VecU16 zero() { return wrap(_mm512_setzero_si512()); }
  static VecU16 set1(int x) { return wrap(_mm512_set1_epi16(static_cast<short>(x))); }
  static VecU16 load(const elem* p) { return wrap(_mm512_loadu_si512(p)); }
  void store(elem* p) const { _mm512_storeu_si512(p, v); }
  static VecU16 adds(VecU16 a, VecU16 b) { return wrap(_mm512_adds_epu16(a.v, b.v)); }
  static VecU16 subs(VecU16 a, VecU16 b) { return wrap(_mm512_subs_epu16(a.v, b.v)); }
  static VecU16 vmax(VecU16 a, VecU16 b) { return wrap(_mm512_max_epu16(a.v, b.v)); }
  static VecU16 cmpeq(VecU16 a, VecU16 b) {
    return wrap(_mm512_movm_epi16(_mm512_cmpeq_epu16_mask(a.v, b.v)));
  }
  static VecU16 cmpgt_u(VecU16 a, VecU16 b) {
    return wrap(_mm512_movm_epi16(_mm512_cmpgt_epu16_mask(a.v, b.v)));
  }
  static VecU16 vand(VecU16 a, VecU16 b) { return wrap(_mm512_and_si512(a.v, b.v)); }
  static VecU16 vor(VecU16 a, VecU16 b) { return wrap(_mm512_or_si512(a.v, b.v)); }
  static VecU16 vandnot(VecU16 m, VecU16 a) { return wrap(_mm512_andnot_si512(m.v, a.v)); }
  static VecU16 blend(VecU16 m, VecU16 a, VecU16 b) {
    const __mmask32 k = _mm512_movepi16_mask(m.v);
    return wrap(_mm512_mask_blend_epi16(k, b.v, a.v));
  }
  static bool any(VecU16 m) { return _mm512_test_epi64_mask(m.v, m.v) != 0; }
};

void run_u8(const ExtendJob* jobs, KswResult* out, int n, const KswParams& p,
            BswBreakdown* bd) {
  detail::bsw_extend_inter_task<VecU8>(jobs, out, n, p, bd);
}
void run_u16(const ExtendJob* jobs, KswResult* out, int n, const KswParams& p,
             BswBreakdown* bd) {
  detail::bsw_extend_inter_task<VecU16>(jobs, out, n, p, bd);
}

}  // namespace

const BswEngine kEngineAvx512U8 = {&run_u8, 64, "avx512-8bit"};
const BswEngine kEngineAvx512U16 = {&run_u16, 32, "avx512-16bit"};

}  // namespace mem2::bsw
