// Inter-task vectorized banded Smith-Waterman (paper §5.3).
//
// W sequence pairs occupy the W lanes of one SIMD register; every computed
// cell (i, j) is computed for all pairs at once, with per-lane masks
// handling differing bands, lengths and aborted pairs.  8-bit lanes give
// W=64 on AVX512 / 32 on AVX2; 16-bit lanes half that.  A scalar-emulated
// engine (plain arrays, same template) runs everywhere and anchors the
// identical-output tests.
//
// Every engine must return bit-identical KswResults to ksw_extend_scalar —
// that is the paper's correctness contract and is enforced by
// tests/test_bsw_simd.cpp.
#pragma once

#include "bsw/ksw.h"
#include "util/cpu_features.h"

namespace mem2::bsw {

/// Lane precision of the vectorized kernel (paper §5.4.1).
enum class Precision { k8bit, k16bit };

/// Wall-time breakdown of one engine invocation (paper Table 8).
struct BswBreakdown {
  double pre = 0;     // AoS->SoA conversion, first-row fill, lane setup
  double band1 = 0;   // per-row band entry computation (adjustment I)
  double cells = 0;   // DP cell computation
  double band2 = 0;   // post-row band shrink scans (adjustment II)

  double total() const { return pre + band1 + cells + band2; }
  BswBreakdown& operator+=(const BswBreakdown& o) {
    pre += o.pre;
    band1 += o.band1;
    cells += o.cells;
    band2 += o.band2;
    return *this;
  }
};

/// An engine processes up to width() jobs per call.
struct BswEngine {
  using Fn = void (*)(const ExtendJob* jobs, KswResult* out, int n,
                      const KswParams& params, BswBreakdown* breakdown);
  Fn run = nullptr;
  int width = 0;  // lanes per invocation
  const char* name = "";
};

/// Widest lane count over all engines (AVX512 at 8-bit precision).  Lets
/// executors size per-thread chunk buffers before engine selection.
inline constexpr int kMaxEngineWidth = 64;

/// Number of width-sized chunks a job group occupies.
inline std::size_t chunk_count(std::size_t n_jobs, int width) {
  return (n_jobs + static_cast<std::size_t>(width) - 1) / static_cast<std::size_t>(width);
}

/// True if the job's score range fits the 8-bit engine without saturation.
bool fits_8bit(const ExtendJob& job, const KswParams& params);

/// Engine lookup; isa is capped by what the CPU supports.
BswEngine get_engine(util::Isa isa, Precision precision);

// Concrete engines (defined in the per-ISA TUs).
extern const BswEngine kEngineScalarU8;
extern const BswEngine kEngineScalarU16;
extern const BswEngine kEngineAvx2U8;
extern const BswEngine kEngineAvx2U16;
extern const BswEngine kEngineAvx512U8;
extern const BswEngine kEngineAvx512U16;

}  // namespace mem2::bsw
