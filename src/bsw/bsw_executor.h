// Parallel, allocation-free BSW execution (paper §5.3 + §3.2).
//
// BswExecutor owns the batched-BSW pipeline that extend_batch used to run
// with per-call temporaries: precision split (§5.4.1), stable length sort
// (§5.3.1), chunked dispatch into the inter-task engines, and scatter back
// to the original job order.  Two things distinguish it from the old free
// function:
//
//   1. Persistent workspace.  Split index vectors, radix-sort key/scratch
//      arrays and per-thread chunk buffers live in the executor, so after
//      the first batch a steady-state run() performs no heap allocations —
//      the paper's §3.2 memory discipline extended to the batch layer.
//
//   2. OpenMP-parallel chunk dispatch.  After the split and sort, the
//      ordered job list is cut into width-aligned chunks executed
//      concurrently, each thread running the SIMD engine on its own chunk
//      buffers.  Chunk boundaries depend only on the job list, never on the
//      thread count, and every chunk scatters to disjoint output slots, so
//      results are bit-identical to the serial path for any thread count
//      (tests/test_bsw_executor.cpp proves it).
//
// Stats and software counters are accumulated per thread and reduced in
// slot order; counters land on the calling thread's TLS sink exactly as the
// serial path would have left them.
#pragma once

#include <vector>

#include "bsw/bsw_batch.h"
#include "util/sw_counters.h"

namespace mem2::bsw {

class BswExecutor {
 public:
  BswExecutor() = default;
  explicit BswExecutor(int threads) { set_threads(threads); }

  /// Number of OpenMP threads chunk dispatch may use (clamped to >= 1).
  void set_threads(int threads);
  int threads() const { return threads_; }

  /// Run all jobs; out[i] holds the result for jobs[i] regardless of
  /// internal reordering.  Deterministic for a fixed job list and options,
  /// and invariant across thread counts.
  void run(const ExtendJob* jobs, std::size_t n_jobs, KswResult* out,
           const KswParams& params, const BswBatchOptions& options = {},
           BswBatchStats* stats = nullptr);
  void run(const std::vector<ExtendJob>& jobs, std::vector<KswResult>& out,
           const KswParams& params, const BswBatchOptions& options = {},
           BswBatchStats* stats = nullptr);

  /// Bytes of persistent workspace currently held (diagnostics/tests).
  std::size_t workspace_bytes() const;

 private:
  struct ThreadSlot {
    std::vector<ExtendJob> chunk;      // AoS gather buffer, kMaxEngineWidth
    std::vector<KswResult> chunk_out;  // engine output before scatter
    BswBatchStats stats;               // reduced in slot order after a run
    util::SwCounters counters;         // ditto, onto the caller's TLS sink
  };

  void run_group(const ExtendJob* jobs, KswResult* out,
                 std::vector<std::uint32_t>& order, const KswParams& params,
                 const BswBatchOptions& options, const BswEngine& engine,
                 bool want_stats);

  int threads_ = 1;
  std::vector<std::uint32_t> idx8_, idx16_;    // precision-split job indices
  std::vector<std::uint32_t> sort_keys_;       // radix key array (per pass)
  std::vector<std::uint32_t> sort_scratch_;    // radix ping-pong buffer
  std::vector<ThreadSlot> slots_;
};

}  // namespace mem2::bsw
