// Scalar banded extension — port of BWA-MEM's ksw_extend2 (ksw.c).
//
// The control flow, banding and tie-breaking reproduce the original line by
// line: any deviation would break the identical-output contract that the
// SIMD engines are tested against.
#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "bsw/ksw.h"
#include "util/sw_counters.h"

namespace mem2::bsw {

KswResult ksw_extend_scalar(const ExtendJob& job, const KswParams& p) {
  MEM2_REQUIRE(job.qlen > 0 && job.tlen > 0, "ksw_extend needs non-empty sequences");
  MEM2_REQUIRE(job.h0 > 0, "ksw_extend needs a positive initial score");

  const auto mat = p.matrix();
  const int qlen = job.qlen, tlen = job.tlen;
  const int oe_del = p.o_del + p.e_del;
  const int oe_ins = p.o_ins + p.e_ins;

  // Query profile: qp[c][j] = score of target base c vs query[j].
  std::vector<std::int8_t> qp(static_cast<std::size_t>(qlen) * 5);
  for (int c = 0; c < 5; ++c)
    for (int j = 0; j < qlen; ++j)
      qp[static_cast<std::size_t>(c * qlen + j)] =
          mat[static_cast<std::size_t>(c * 5 + job.query[j])];

  struct Eh {
    std::int32_t h = 0, e = 0;
  };
  std::vector<Eh> eh(static_cast<std::size_t>(qlen) + 1);

  // First row.
  eh[0].h = job.h0;
  eh[1].h = job.h0 > oe_ins ? job.h0 - oe_ins : 0;
  int j;
  for (j = 2; j <= qlen && eh[static_cast<std::size_t>(j - 1)].h > p.e_ins; ++j)
    eh[static_cast<std::size_t>(j)].h = eh[static_cast<std::size_t>(j - 1)].h - p.e_ins;

  // Clamp the band width by the maximum possible gap lengths.
  int w = job.w;
  {
    const int max_ins = std::max(
        1, static_cast<int>(static_cast<double>(qlen * p.a + p.end_bonus - p.o_ins) /
                                p.e_ins +
                            1.0));
    w = std::min(w, max_ins);
    const int max_del = std::max(
        1, static_cast<int>(static_cast<double>(qlen * p.a + p.end_bonus - p.o_del) /
                                p.e_del +
                            1.0));
    w = std::min(w, max_del);
  }

  int max = job.h0, max_i = -1, max_j = -1, max_ie = -1, gscore = -1, max_off = 0;
  int beg = 0, end = qlen;
  auto& ctr = util::tls_counters();
  ++ctr.bsw_pairs;

  for (int i = 0; i < tlen; ++i) {
    int f = 0, h1, m = 0, mj = -1;
    const std::int8_t* q = &qp[static_cast<std::size_t>(job.target[i]) * static_cast<std::size_t>(qlen)];
    // Apply the band.
    if (beg < i - w) beg = i - w;
    if (end > i + w + 1) end = i + w + 1;
    if (end > qlen) end = qlen;
    // First column of this row.
    if (beg == 0) {
      h1 = job.h0 - (p.o_del + p.e_del * (i + 1));
      if (h1 < 0) h1 = 0;
    } else {
      h1 = 0;
    }
    for (j = beg; j < end; ++j) {
      // Loop invariant: eh[j] = {H(i-1,j-1), E(i,j)}, f = F(i,j),
      // h1 = H(i,j-1).
      Eh* cell = &eh[static_cast<std::size_t>(j)];
      int h, M = cell->h, e = cell->e;
      cell->h = h1;
      M = M ? M + q[j] : 0;  // separating H and M disallows M-I-D-M cigars
      h = M > e ? M : e;
      h = h > f ? h : f;
      h1 = h;
      mj = m > h ? mj : j;
      m = m > h ? m : h;
      int t = M - oe_del;
      t = t > 0 ? t : 0;
      e -= p.e_del;
      e = e > t ? e : t;
      cell->e = e;
      t = M - oe_ins;
      t = t > 0 ? t : 0;
      f -= p.e_ins;
      f = f > t ? f : t;
    }
    eh[static_cast<std::size_t>(end)].h = h1;
    eh[static_cast<std::size_t>(end)].e = 0;
    ctr.bsw_cells_total += static_cast<std::uint64_t>(end - beg);
    ctr.bsw_cells_useful += static_cast<std::uint64_t>(end - beg);
    if (j == qlen) {
      max_ie = gscore > h1 ? max_ie : i;
      gscore = gscore > h1 ? gscore : h1;
    }
    if (m == 0) {
      ++ctr.bsw_aborted_pairs;
      break;
    }
    if (m > max) {
      max = m;
      max_i = i;
      max_j = mj;
      max_off = max_off > std::abs(mj - i) ? max_off : std::abs(mj - i);
    } else if (p.zdrop > 0) {
      if (i - max_i > mj - max_j) {
        if (max - m - ((i - max_i) - (mj - max_j)) * p.e_del > p.zdrop) {
          ++ctr.bsw_aborted_pairs;
          break;
        }
      } else {
        if (max - m - ((mj - max_j) - (i - max_i)) * p.e_ins > p.zdrop) {
          ++ctr.bsw_aborted_pairs;
          break;
        }
      }
    }
    // Band adjustment for the next row (shrink from both ends).
    for (j = beg; j < end && eh[static_cast<std::size_t>(j)].h == 0 && eh[static_cast<std::size_t>(j)].e == 0; ++j) {
    }
    beg = j;
    for (j = end; j >= beg && eh[static_cast<std::size_t>(j)].h == 0 && eh[static_cast<std::size_t>(j)].e == 0; --j) {
    }
    end = j + 2 < qlen ? j + 2 : qlen;
  }

  KswResult r;
  r.score = max;
  r.qle = max_j + 1;
  r.tle = max_i + 1;
  r.gtle = max_ie + 1;
  r.gscore = gscore;
  r.max_off = max_off;
  return r;
}

std::string cigar_string(const Cigar& cigar) {
  if (cigar.empty()) return "*";
  std::string s;
  for (const auto& op : cigar) {
    s += std::to_string(op.len);
    s += op.op;
  }
  return s;
}

}  // namespace mem2::bsw
