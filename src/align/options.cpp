// Option validation shared by both drivers: fail fast on combinations the
// kernels cannot represent instead of mis-scoring silently.
#include "align/options.h"

#include "util/common.h"

namespace mem2::align {

void validate_options(const MemOptions& opt) {
  MEM2_REQUIRE(opt.ksw.a > 0, "match score must be positive");
  MEM2_REQUIRE(opt.ksw.b > 0, "mismatch penalty must be positive");
  MEM2_REQUIRE(opt.ksw.e_del > 0 && opt.ksw.e_ins > 0,
               "gap extension penalties must be positive");
  MEM2_REQUIRE(opt.ksw.o_del >= 0 && opt.ksw.o_ins >= 0,
               "gap open penalties must be non-negative");
  MEM2_REQUIRE(opt.w > 0, "band width must be positive");
  MEM2_REQUIRE(opt.max_band_try >= 1 && opt.max_band_try <= 2,
               "band tries limited to bwa's MAX_BAND_TRY (2)");
  MEM2_REQUIRE(opt.seeding.min_seed_len > 0, "min seed length must be positive");
}

}  // namespace mem2::align
