// Option validation shared by both drivers: fail fast on combinations the
// kernels cannot represent instead of mis-scoring silently.  Validation
// runs once per Aligner session (aligner.h), not once per call.
#include "align/options.h"

#include "align/driver.h"
#include "pair/mate_rescue.h"
#include "smem/smem_executor.h"

namespace mem2::align {

namespace {

Status check(bool cond, const char* message) {
  return cond ? Status() : Status::invalid(message);
}

template <typename... Rest>
Status check(bool cond, const char* message, Rest&&... rest) {
  if (!cond) return Status::invalid(message);
  return check(std::forward<Rest>(rest)...);
}

}  // namespace

Status validate_options(const MemOptions& opt) {
  return check(opt.ksw.a > 0, "match score must be positive",
               opt.ksw.b > 0, "mismatch penalty must be positive",
               opt.ksw.e_del > 0 && opt.ksw.e_ins > 0,
               "gap extension penalties must be positive",
               opt.ksw.o_del >= 0 && opt.ksw.o_ins >= 0,
               "gap open penalties must be non-negative",
               opt.w > 0, "band width must be positive",
               opt.max_band_try >= 1 && opt.max_band_try <= 2,
               "band tries limited to bwa's MAX_BAND_TRY (2)",
               opt.seeding.min_seed_len > 0, "min seed length must be positive");
}

Status validate_driver_options(const DriverOptions& options) {
  static_assert(smem::SmemExecutor::kMaxInflight == 64,
                "update the smem_inflight validation message");
  if (Status st = validate_options(options.mem); !st.ok()) return st;
  if (Status st = check(
          options.threads >= 1, "thread count must be >= 1",
          options.batch_size >= 1, "batch size must be >= 1",
          options.smem_inflight >= 1 &&
              options.smem_inflight <= smem::SmemExecutor::kMaxInflight,
          "smem_inflight must be in [1, 64]",
          options.bsw_threads >= 0,
          "bsw_threads must be >= 0 (0 follows threads)",
          options.pipeline_workers >= 0,
          "pipeline_workers must be >= 0 (0 follows threads)",
          options.queue_depth >= 1, "queue depth must be >= 1",
          options.sink_retry.max_attempts >= 1,
          "sink_retry.max_attempts must be >= 1 (1 = no retry)",
          options.sink_retry.initial_backoff.count() >= 0 &&
              options.sink_retry.max_backoff.count() >= 0,
          "sink_retry backoffs must be >= 0",
          options.sink_retry.backoff_multiplier >= 1.0,
          "sink_retry.backoff_multiplier must be >= 1");
      !st.ok())
    return st;
  if (!options.paired) return Status();
  return check(options.mode == Mode::kBatch,
               "paired mode requires the batch driver",
               options.batch_size % 2 == 0,
               "paired mode requires an even batch size (pairs stay adjacent)",
               options.pe.stat_pairs >= 1, "pe.stat_pairs must be >= 1",
               options.pe.min_dir_count >= 1, "pe.min_dir_count must be >= 1",
               options.pe.max_ins >= 1, "pe.max_ins must be >= 1",
               options.pe.max_matesw >= 0, "pe.max_matesw must be >= 0",
               options.pe.rescue_seed_len >= 4,
               "pe.rescue_seed_len must be >= 4",
               options.pe.max_rescue_anchors >= 1 &&
                   options.pe.max_rescue_anchors <= pair::kMaxRescueAnchors,
               "pe.max_rescue_anchors must be in [1, 8]",
               options.pe.rescue_hash_bits >= 1 &&
                   options.pe.rescue_hash_bits <= pair::kMaxRescueHashBits,
               "pe.rescue_hash_bits must be in [1, 10]");
}

}  // namespace mem2::align
