// MemOptions is header-only; this TU anchors the module in the build and
// will host option parsing/validation helpers as they grow.
#include "align/options.h"
