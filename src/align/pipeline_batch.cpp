// Batch driver: the paper's reorganized workflow (Fig. 2).
//
// Reads are processed in batches; each stage runs across the whole batch
// before the next stage starts.  SMEM uses the CP32 index with software
// prefetching; SAL is a flat-array load; BSW jobs from *all* reads of the
// batch are pooled (enumerated in parallel, spliced in read order) and
// executed by the OpenMP-parallel BswExecutor in four rounds (left try-1,
// left try-2, right try-1, right try-2 — the band-doubling retries of
// mem_chain2aln).  Because which seeds deserve
// extension only becomes known when earlier seeds' regions exist, the batch
// driver extends every seed and lets process_chains() replay the original
// decision logic against the precomputed results — the paper's
// "extend all the seeds of a read, then post process" strategy (§5.3.2),
// which buys SIMD parallelism for ~14% extra extensions.
//
// Paired mode adds a PAIR stage after the single-end regions exist: mate
// rescue harvests banded-SW jobs against the windows implied by each
// mapped mate (pair/mate_rescue.h) and dispatches them through the same
// BswExecutor in two more pooled rounds (left anchors, then right anchors
// seeded with the left scores) — enumerated in parallel blocks and spliced
// in pair order, so the pool and every result are invariant across thread
// counts, exactly like the four extension rounds.  Pair scoring and the
// paired SAM emission (pair/pairing.h) then run read-parallel per pair.
//
// Cross-batch buffers live in containers owned by BatchWorkspace whose
// capacity persists, plus an Arena for the per-read code buffers: after the
// first batch the steady state performs no system allocations (§3.2) —
// except the per-batch reference-window fetches (ChainRef rseq and, in
// paired mode, the rescue windows), which allocate like bwa's own
// bns_fetch_seq does.  The
// workspace is caller-owned so the streaming Aligner session can keep one
// per worker across many chunks; align_reads_batch wraps a throwaway one.
#include <omp.h>

#include <algorithm>

#include "align/cancel.h"
#include "align/driver.h"
#include "align/sam_format.h"
#include "bsw/bsw_executor.h"
#include "pair/mate_rescue.h"
#include "pair/pairing.h"
#include "smem/smem_executor.h"
#include "util/arena.h"
#include "util/fault_injector.h"
#include "util/omp_guard.h"
#include "util/trace.h"

namespace mem2::align {

namespace {

struct SeedJobResults {
  bsw::KswResult res[2][2];  // [side][band_try]
  bool have[2][2] = {{false, false}, {false, false}};
};

struct ReadState {
  std::span<seq::Code> query, query_rev;  // query_rev filled lazily (BSW-pre)
  // Paired mode only: reverse complement and complement of the query (the
  // rescue jobs' forward and reversed views of the opposite-strand mate);
  // filled lazily in the rescue harvest.
  std::span<seq::Code> query_rc, query_comp;
  bool aux_filled = false;
  std::vector<smem::Smem> smems;
  std::vector<chain::Seed> seeds;
  std::vector<chain::Chain> chains;
  double frac_rep = 0;
  std::vector<ChainRef> crefs;
  std::vector<std::vector<SeedJobResults>> table;  // [chain][seed]
  std::vector<AlnReg> regs;  // post-processed regions (sort_dedup + mark)
  std::uint64_t used = 0;

  void clear() {
    aux_filled = false;
    smems.clear();
    seeds.clear();
    chains.clear();
    crefs.clear();
    table.clear();
    regs.clear();
    used = 0;
  }
};

struct JobRef {
  std::uint32_t read;
  std::uint32_t chain;
  std::uint32_t seed;
  std::uint8_t side;
  std::uint8_t bt;
};

/// Per-block output of parallel job enumeration; capacity persists across
/// rounds and batches (§3.2).
struct JobBlock {
  std::vector<bsw::ExtendJob> jobs;
  std::vector<JobRef> refs;
};

/// Per-block output of the parallel rescue harvest (paired mode).
struct PairBlock {
  std::vector<pair::RescueAttempt> attempts;
  std::uint64_t windows = 0;      // rescue windows anchor-scanned
  std::uint64_t win_skipped = 0;  // skipped: (mate, orientation) already satisfied
  std::uint64_t win_deduped = 0;  // content-identical to an earlier window
};

/// One window already seen for the (pair, mate) being harvested — the
/// dedup key plus where its content lives (a stored attempt, or the
/// anchor-less side list).
struct SeenWindow {
  std::uint64_t fp = 0;
  std::uint32_t len = 0;
  bool is_rev = false;
  std::int32_t attempt = -1;  // index into PairBlock::attempts, or -1
  std::int32_t zero = -1;     // index into the anchor-less content list
};

/// (attempt, anchor) a rescue-round job scatters back to.
struct RescueRef {
  std::uint32_t attempt;
  std::uint32_t anchor;
};

/// Replays extensions out of the per-read table.
class TableSource final : public SeedExtendSource {
 public:
  explicit TableSource(ReadState& state) : state_(state) {}

  bsw::KswResult extend(int chain_idx, int seed_idx, int side, int band_try,
                        const bsw::ExtendJob&) override {
    const auto& entry =
        state_.table[static_cast<std::size_t>(chain_idx)][static_cast<std::size_t>(seed_idx)];
    MEM2_REQUIRE(entry.have[side][band_try], "missing precomputed extension");
    ++state_.used;
    return entry.res[side][band_try];
  }

  const ChainRef* chain_ref(int chain_idx) override {
    return &state_.crefs[static_cast<std::size_t>(chain_idx)];
  }

 private:
  ReadState& state_;
};

int left_final_score(const SeedJobResults& e, const chain::Seed& s, int a) {
  if (s.qbeg == 0) return s.len * a;
  if (e.have[0][1]) return e.res[0][1].score;
  if (e.have[0][0]) return e.res[0][0].score;
  return s.len * a;  // empty-target left flank
}

/// The degenerate extension result of an empty target flank: ksw on zero
/// target bases trivially keeps the initial score.
bsw::KswResult empty_flank_result(int h0) {
  bsw::KswResult r;
  r.score = h0;
  return r;
}

}  // namespace

struct BatchWorkspace::Impl {
  std::vector<ReadState> states;
  util::Arena arena;
  std::vector<bsw::ExtendJob> jobs;
  std::vector<JobRef> refs;
  std::vector<JobRef> prev_refs;
  std::vector<bsw::KswResult> results;
  std::vector<smem::SmemExecutor> smem_executors;
  std::vector<JobBlock> blocks;
  bsw::BswExecutor executor;
  std::vector<util::StageTimes> thread_stages;
  std::vector<util::SwCounters> thread_counters;
  // Paired mode: rescue attempts (spliced in pair order), their job refs,
  // and per-pair offsets into the spliced list.
  std::vector<PairBlock> pair_blocks;
  std::vector<pair::RescueAttempt> attempts;
  std::vector<RescueRef> rrefs;
  std::vector<std::uint32_t> pair_offsets;
};

BatchWorkspace::BatchWorkspace() : impl_(std::make_unique<Impl>()) {}
BatchWorkspace::~BatchWorkspace() = default;
BatchWorkspace::BatchWorkspace(BatchWorkspace&&) noexcept = default;
BatchWorkspace& BatchWorkspace::operator=(BatchWorkspace&&) noexcept = default;

namespace {

/// Stage-boundary cancellation hook: heartbeat + cooperative abort.  Never
/// called from inside an OpenMP region — always between stages on the
/// orchestrating thread, so an abort unwinds cleanly past joined regions.
inline void stage_checkpoint(CancelToken* cancel) {
  if (cancel) cancel->checkpoint();
}

/// The single-end stages over one batch [batch_beg, batch_beg + nb):
/// encode, SMEM, SAL, CHAIN, the four pooled BSW rounds, and the replayed
/// decision logic, leaving each read's post-processed region list in
/// states[i].regs.  When emit_sam is set the single-end SAM records are
/// formatted in the same pass (the non-paired driver path).
void batch_regions(const index::Mem2Index& index, std::span<const seq::Read> reads,
                   std::size_t batch_beg, int nb, const DriverOptions& options,
                   BatchWorkspace::Impl& ws, bool emit_sam,
                   std::vector<std::vector<io::SamRecord>>* per_read,
                   DriverStats* stats, CancelToken* cancel = nullptr) {
  const util::PrefetchPolicy prefetch{options.prefetch};
  const int n_threads = options.threads;
  std::vector<util::StageTimes>& thread_stages = ws.thread_stages;
  std::vector<util::SwCounters>& thread_counters = ws.thread_counters;
  std::vector<ReadState>& states = ws.states;
  util::Arena& arena = ws.arena;
  std::vector<bsw::ExtendJob>& jobs = ws.jobs;
  std::vector<JobRef>& refs = ws.refs;
  std::vector<JobRef>& prev_refs = ws.prev_refs;
  std::vector<bsw::KswResult>& results = ws.results;
  std::vector<smem::SmemExecutor>& smem_executors = ws.smem_executors;
  std::vector<JobBlock>& blocks = ws.blocks;
  bsw::BswExecutor& executor = ws.executor;
  const int bsw_threads = executor.threads();
  util::StageTimes& st0 = thread_stages[0];  // serial-section accounting
  // Stream id for span attribution: OpenMP spawns fresh threads whose
  // thread-local trace context is empty, so each parallel region below
  // re-seeds it from the orchestrating thread's value.
  const std::uint32_t trace_pid = util::trace_stream_id();
  // Exceptions thrown inside the parallel regions below (index invariant
  // violations, bad_alloc, injected faults) are captured per-iteration and
  // rethrown on this thread after each region joins, so they reach the
  // session worker's Status boundary instead of terminating the process.
  util::OmpExceptionGuard guard;

  arena.reset();

  // Encode queries into arena memory (contiguous, reused across batches).
  // The bump-pointer allocation stays serial (it is not thread-safe and
  // costs nanoseconds); the O(len) encode fills run across threads, and
  // query_rev is deferred to the BSW pre-processing stage — reads whose
  // chains all filter out never pay for the reversal.  Paired mode
  // additionally reserves the reverse-complement and complement buffers the
  // rescue jobs view; they are filled lazily in the rescue harvest.
  {
    util::TraceSpan encode_span("encode");
    util::ScopedStage s(st0, util::Stage::kMisc);
    for (int i = 0; i < nb; ++i) {
      ReadState& rs = states[static_cast<std::size_t>(i)];
      rs.clear();
      const std::size_t len =
          reads[batch_beg + static_cast<std::size_t>(i)].bases.size();
      rs.query = {arena.allocate_array<seq::Code>(len), len};
      rs.query_rev = {arena.allocate_array<seq::Code>(len), len};
      if (options.paired) {
        rs.query_rc = {arena.allocate_array<seq::Code>(len), len};
        rs.query_comp = {arena.allocate_array<seq::Code>(len), len};
      }
    }
#pragma omp parallel for schedule(static) num_threads(n_threads)
    for (int i = 0; i < nb; ++i) {
      guard.run([&] {
        ReadState& rs = states[static_cast<std::size_t>(i)];
        const std::string& bases = reads[batch_beg + static_cast<std::size_t>(i)].bases;
        for (std::size_t j = 0; j < bases.size(); ++j)
          rs.query[j] = seq::char_to_code(bases[j]);
      });
    }
    guard.rethrow();
  }
  stage_checkpoint(cancel);

  // --- SMEM stage (whole batch): each thread takes a group of reads and
  // runs smem_inflight walks in lockstep on its SmemExecutor, so one
  // read's Occ misses overlap the other in-flight reads' work.  Group
  // size balances lane refill (>= inflight) against work units for the
  // dynamic schedule (>= ~4 groups per thread when the batch allows). ---
  constexpr int kSmemGroup = 64;  // upper bound (qrefs stack array below)
  static_assert(kSmemGroup >= smem::SmemExecutor::kMaxInflight,
                "groups must be able to fill every lane");
  const int group = std::clamp(nb / (4 * n_threads), options.smem_inflight,
                               kSmemGroup);
  const int n_groups = (nb + group - 1) / group;
#pragma omp parallel num_threads(n_threads)
  {
    const int tid = omp_get_thread_num();
    util::TraceStreamScope trace_ctx(trace_pid);
    util::CounterCapture capture;  // per-session delta, not a TLS reset
    util::StageTimes& st = thread_stages[static_cast<std::size_t>(tid)];
    util::TraceSpan smem_span("smem");
    util::Timer timer;
#pragma omp for schedule(dynamic, 1)
    for (int g = 0; g < n_groups; ++g) {
      guard.run([&] {
        const int beg = g * group;
        const int end = std::min(nb, beg + group);
        smem::QueryRef qrefs[kSmemGroup];
        for (int i = beg; i < end; ++i) {
          ReadState& rs = states[static_cast<std::size_t>(i)];
          qrefs[i - beg] = smem::QueryRef{rs.query, &rs.smems};
        }
        smem_executors[static_cast<std::size_t>(tid)].collect(
            index.fm32(), std::span(qrefs, static_cast<std::size_t>(end - beg)),
            options.mem.seeding, prefetch);
      });
    }
    st[util::Stage::kSmem] += timer.seconds();
    smem_span.finish();

    // --- SAL stage: batched gather, SA lines prefetched in waves ---
    util::TraceSpan sal_span("sal");
    timer.restart();
#pragma omp for schedule(dynamic, 8)
    for (int i = 0; i < nb; ++i) {
      guard.run([&] {
        ReadState& rs = states[static_cast<std::size_t>(i)];
        smem_executors[static_cast<std::size_t>(tid)].gather_seeds(
            rs.smems, options.mem.chaining, index.flat_sa(), rs.seeds);
      });
    }
    st[util::Stage::kSal] += timer.seconds();
    sal_span.finish();

    // --- CHAIN stage ---
    util::TraceSpan chain_span("chain");
    timer.restart();
#pragma omp for schedule(dynamic, 8)
    for (int i = 0; i < nb; ++i) {
      guard.run([&] {
        ReadState& rs = states[static_cast<std::size_t>(i)];
        rs.frac_rep = chain::repetitive_fraction(
            rs.smems, static_cast<int>(rs.query.size()), options.mem.chaining.max_occ);
        rs.chains = chain::build_chains(index.ref(), index.l_pac(), rs.seeds,
                                        static_cast<int>(rs.query.size()),
                                        options.mem.chaining, rs.frac_rep);
        chain::filter_chains(rs.chains, options.mem.chaining);
      });
    }
    st[util::Stage::kChain] += timer.seconds();
    chain_span.finish();

    // --- BSW pre-processing: chain windows + table layout ---
    util::TraceSpan pre_span("bsw-pre");
    timer.restart();
#pragma omp for schedule(dynamic, 8)
    for (int i = 0; i < nb; ++i) {
      guard.run([&] {
        ReadState& rs = states[static_cast<std::size_t>(i)];
        if (rs.chains.empty()) return;  // query_rev never needed
        // Deferred from encoding: the reversed query's first reader is job
        // construction below, so only reads that reach extension pay for it.
        for (std::size_t j = 0; j < rs.query.size(); ++j)
          rs.query_rev[rs.query.size() - 1 - j] = rs.query[j];
        ExtendContext ctx{options.mem, index, rs.query, rs.query_rev};
        rs.crefs.reserve(rs.chains.size());
        rs.table.resize(rs.chains.size());
        for (std::size_t ci = 0; ci < rs.chains.size(); ++ci) {
          rs.crefs.push_back(make_chain_ref(ctx, rs.chains[ci]));
          rs.table[ci].assign(rs.chains[ci].seeds.size(), SeedJobResults{});
        }
      });
    }
    st[util::Stage::kBswPre] += timer.seconds();
    pre_span.finish();
    thread_counters[static_cast<std::size_t>(tid)] += capture.take();
  }
  guard.rethrow();
  stage_checkpoint(cancel);

  // --- BSW stage: four pooled SIMD rounds.  Both halves run parallel:
  // job enumeration builds contiguous per-block lists spliced in read
  // order, and the executor dispatches width-aligned chunks across
  // threads.  The pooled list and every result are bit-identical to the
  // serial path for any thread count. ---
  {
    util::TraceSpan bsw_span("bsw");
    util::Timer bsw_timer;
    util::CounterCapture capture;  // banks the executor's reduced counters
    // Enumerate items [0, n_items) into per-block job lists built
    // concurrently, then splice in block order.  Blocks are contiguous
    // item ranges, so the spliced pool preserves read order exactly.
    auto enumerate = [&](int n_items, auto&& body) {
      const int n_blocks = static_cast<int>(blocks.size());
#pragma omp parallel for schedule(static, 1) num_threads(bsw_threads)
      for (int b = 0; b < n_blocks; ++b) {
        guard.run([&] {
          JobBlock& jb = blocks[static_cast<std::size_t>(b)];
          jb.jobs.clear();
          jb.refs.clear();
          const int beg = static_cast<int>(
              static_cast<std::int64_t>(n_items) * b / n_blocks);
          const int end = static_cast<int>(
              static_cast<std::int64_t>(n_items) * (b + 1) / n_blocks);
          for (int k = beg; k < end; ++k) body(k, jb);
        });
      }
      guard.rethrow();
      jobs.clear();
      refs.clear();
      for (const JobBlock& jb : blocks) {
        jobs.insert(jobs.end(), jb.jobs.begin(), jb.jobs.end());
        refs.insert(refs.end(), jb.refs.begin(), jb.refs.end());
      }
    };

    auto run_round = [&]() {
      util::TraceSpan round_span("bsw-round");
      executor.run(jobs, results, options.mem.ksw, options.bsw,
                   stats ? &stats->bsw_batch : nullptr);
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        const JobRef& ref = refs[j];
        auto& entry = states[ref.read].table[ref.chain][ref.seed];
        entry.res[ref.side][ref.bt] = results[j];
        entry.have[ref.side][ref.bt] = true;
      }
      if (stats) stats->extensions_computed += jobs.size();
      stage_checkpoint(cancel);  // between pooled rounds
    };

    // Round L1.
    enumerate(nb, [&](int i, JobBlock& jb) {
      ReadState& rs = states[static_cast<std::size_t>(i)];
      ExtendContext ctx{options.mem, index, rs.query, rs.query_rev};
      for (std::size_t ci = 0; ci < rs.chains.size(); ++ci)
        for (std::size_t si = 0; si < rs.chains[ci].seeds.size(); ++si) {
          const chain::Seed& s = rs.chains[ci].seeds[si];
          if (s.qbeg == 0) continue;
          const auto job = make_left_job(ctx, rs.crefs[ci], s, options.mem.w);
          if (job.tlen == 0) continue;
          jb.jobs.push_back(job);
          jb.refs.push_back({static_cast<std::uint32_t>(i),
                             static_cast<std::uint32_t>(ci),
                             static_cast<std::uint32_t>(si), 0, 0});
        }
    });
    run_round();

    // Round L2: band-doubling retries.
    prev_refs.swap(refs);
    enumerate(static_cast<int>(prev_refs.size()), [&](int k, JobBlock& jb) {
      const JobRef& ref = prev_refs[static_cast<std::size_t>(k)];
      ReadState& rs = states[ref.read];
      const auto& e = rs.table[ref.chain][ref.seed];
      const auto& r1 = e.res[0][0];
      if (!band_retry_needed(r1.score, -1, r1.max_off, options.mem.w)) return;
      ExtendContext ctx{options.mem, index, rs.query, rs.query_rev};
      const chain::Seed& s = rs.chains[ref.chain].seeds[ref.seed];
      jb.jobs.push_back(make_left_job(ctx, rs.crefs[ref.chain], s, options.mem.w << 1));
      jb.refs.push_back({ref.read, ref.chain, ref.seed, 0, 1});
    });
    run_round();

    // Round R1.
    enumerate(nb, [&](int i, JobBlock& jb) {
      ReadState& rs = states[static_cast<std::size_t>(i)];
      ExtendContext ctx{options.mem, index, rs.query, rs.query_rev};
      const int l_query = static_cast<int>(rs.query.size());
      for (std::size_t ci = 0; ci < rs.chains.size(); ++ci)
        for (std::size_t si = 0; si < rs.chains[ci].seeds.size(); ++si) {
          const chain::Seed& s = rs.chains[ci].seeds[si];
          if (s.qbeg + s.len == l_query) continue;
          const int sc0 =
              left_final_score(rs.table[ci][si], s, options.mem.ksw.a);
          const auto job = make_right_job(ctx, rs.crefs[ci], s, options.mem.w, sc0);
          if (job.tlen == 0) continue;
          jb.jobs.push_back(job);
          jb.refs.push_back({static_cast<std::uint32_t>(i),
                             static_cast<std::uint32_t>(ci),
                             static_cast<std::uint32_t>(si), 1, 0});
        }
    });
    run_round();

    // Round R2.
    prev_refs.swap(refs);
    enumerate(static_cast<int>(prev_refs.size()), [&](int k, JobBlock& jb) {
      const JobRef& ref = prev_refs[static_cast<std::size_t>(k)];
      ReadState& rs = states[ref.read];
      const chain::Seed& s = rs.chains[ref.chain].seeds[ref.seed];
      const auto& e = rs.table[ref.chain][ref.seed];
      const int sc0 = left_final_score(e, s, options.mem.ksw.a);
      const auto& r1 = e.res[1][0];
      if (!band_retry_needed(r1.score, sc0, r1.max_off, options.mem.w)) return;
      ExtendContext ctx{options.mem, index, rs.query, rs.query_rev};
      jb.jobs.push_back(
          make_right_job(ctx, rs.crefs[ref.chain], s, options.mem.w << 1, sc0));
      jb.refs.push_back({ref.read, ref.chain, ref.seed, 1, 1});
    });
    run_round();

    st0[util::Stage::kBsw] += bsw_timer.seconds();
    // The executor reduces worker-thread counters onto this (master)
    // thread's TLS sink; the capture banks exactly this session's share.
    thread_counters[0] += capture.take();
  }

  // --- Replay the decision logic into per-read region lists, then
  // (single-end) SAM ---
#pragma omp parallel num_threads(n_threads)
  {
    const int tid = omp_get_thread_num();
    util::TraceStreamScope trace_ctx(trace_pid);
    util::TraceSpan sam_span("sam-emit");
    util::CounterCapture capture;
    util::StageTimes& st = thread_stages[static_cast<std::size_t>(tid)];
#pragma omp for schedule(dynamic, 8)
    for (int i = 0; i < nb; ++i) {
      guard.run([&] {
        if (util::fault_point("align.batch"))
          throw invariant_error("injected fault: align.batch");
        ReadState& rs = states[static_cast<std::size_t>(i)];
        ExtendContext ctx{options.mem, index, rs.query, rs.query_rev};
        TableSource source(rs);
        rs.regs.clear();
        {
          util::ScopedStage s(st, util::Stage::kBswPre);
          process_chains(ctx, rs.chains, source, rs.regs);
        }
        {
          util::ScopedStage s(st, util::Stage::kSamForm);
          sort_dedup_regions(rs.regs, options.mem);
          mark_primary(rs.regs, options.mem);
          if (emit_sam)
            (*per_read)[batch_beg + static_cast<std::size_t>(i)] =
                regions_to_sam(ctx, reads[batch_beg + static_cast<std::size_t>(i)], rs.regs);
        }
      });
    }
    thread_counters[static_cast<std::size_t>(tid)] += capture.take();
  }
  guard.rethrow();
  stage_checkpoint(cancel);

  if (stats) {
    std::uint64_t used = 0;
    for (int i = 0; i < nb; ++i) used += states[static_cast<std::size_t>(i)].used;
    stats->extensions_used += used;
  }
}

/// The PAIR stage over one batch (paired mode): mate-rescue rounds through
/// the shared BswExecutor, then pair scoring and paired SAM emission.
void batch_pair_stage(const index::Mem2Index& index, std::span<const seq::Read> reads,
                      std::size_t batch_beg, int nb, const DriverOptions& options,
                      const pair::InsertStats& pes, BatchWorkspace::Impl& ws,
                      std::vector<std::vector<io::SamRecord>>& per_read,
                      DriverStats* stats, CancelToken* cancel = nullptr) {
  const pair::PairOptions& popt = options.pe;
  const MemOptions& mopt = options.mem;
  const idx_t l_pac = index.l_pac();
  const int n_threads = options.threads;
  const int n_pairs = nb / 2;
  std::vector<ReadState>& states = ws.states;
  util::StageTimes& st0 = ws.thread_stages[0];
  const std::uint32_t trace_pid = util::trace_stream_id();
  util::TraceSpan pair_span("pair");
  util::Timer pair_timer;
  util::CounterCapture capture;  // banks the serial rescue rounds' counters
  util::OmpExceptionGuard guard;  // see batch_regions

  // --- Rescue harvest: parallel blocks over contiguous pair ranges,
  // spliced in pair order (same discipline as the extension rounds).
  // Per (pair, mate), windows are visited in a fixed canonical order
  // (anchor region rank, then orientation class) and run through three
  // layers, all of whose state is local to the pair — so the harvest stays
  // invariant across threads, chunkings and batch sizes:
  //   1. skip (popt.rescue_skip): once a window's anchor carries an exact
  //      match run >= min_seed_len, an accepted rescue for this (mate,
  //      orientation) is guaranteed, and later windows of the same class
  //      are skipped before the reference fetch (bwa mem_matesw's
  //      sequential stop-when-satisfied, made order-canonical);
  //   2. dedup: a window byte-identical to an earlier window of the same
  //      mate (repeat copies; verified by fingerprint + full compare)
  //      reuses the earlier anchor scan and BSW results instead of
  //      rescanning and re-extending — output-identical, work-free;
  //   3. scan: the rolling-hash RescueScanner, built once per mate
  //      orientation and slid across each surviving window. ---
  if (ws.pair_blocks.size() != ws.blocks.size())
    ws.pair_blocks.resize(ws.blocks.size());
  const int n_blocks = static_cast<int>(ws.pair_blocks.size());
  const int rescue_k = popt.rescue_seed_len;
#pragma omp parallel for schedule(static, 1) num_threads(static_cast<int>(ws.blocks.size()))
  for (int b = 0; b < n_blocks; ++b) {
    guard.run([&] {
    util::TraceStreamScope trace_ctx(trace_pid);
    util::TraceSpan harvest_span("pair-harvest");
    PairBlock& pb = ws.pair_blocks[static_cast<std::size_t>(b)];
    pb.attempts.clear();
    pb.windows = pb.win_skipped = pb.win_deduped = 0;
    // Per-mate scratch; capacity reused across the block's pairs.
    std::vector<SeenWindow> seen;
    std::vector<std::vector<seq::Code>> zero_wins;  // anchor-less contents
    const int beg = static_cast<int>(
        static_cast<std::int64_t>(n_pairs) * b / n_blocks);
    const int end = static_cast<int>(
        static_cast<std::int64_t>(n_pairs) * (b + 1) / n_blocks);
    for (int p = beg; p < end; ++p) {
      for (int e = 0; e < 2; ++e) {
        ReadState& ra = states[static_cast<std::size_t>(2 * p + e)];
        ReadState& rm = states[static_cast<std::size_t>(2 * p + (e ^ 1))];
        if (ra.regs.empty()) continue;
        const int l_ms = static_cast<int>(rm.query.size());
        pair::RescueScanner scanners[2];  // [is_rev], built on first window
        bool scanner_built[2] = {false, false};
        bool satisfied[4] = {false, false, false, false};
        seen.clear();
        zero_wins.clear();
        // Anchor regions: near-ties of the best (within pen_unpaired, as in
        // bwa mem_sam_pe's rescue list), capped at max_matesw.
        int tried = 0;
        for (const AlnReg& a : ra.regs) {
          if (tried >= popt.max_matesw) break;
          if (a.score < ra.regs[0].score - popt.pen_unpaired) break;  // score-sorted
          ++tried;
          // Orientation classes not already satisfied by an existing
          // region of the mate (bwa mem_matesw's skip[] pass).
          bool skip[4];
          for (int d = 0; d < 4; ++d) skip[d] = pes.dir[d].failed;
          for (const AlnReg& m : rm.regs) {
            idx_t dist = 0;
            const int d = pair::infer_dir(l_pac, a.rb, m.rb, &dist);
            if (dist >= pes.dir[d].low && dist <= pes.dir[d].high) skip[d] = true;
          }
          if (skip[0] && skip[1] && skip[2] && skip[3]) continue;
          // Fill the mate's auxiliary code views on first use.  Each read
          // belongs to exactly one pair, so this races with nobody.
          if (!rm.aux_filled) {
            const std::size_t L = rm.query.size();
            for (std::size_t j = 0; j < L; ++j) {
              rm.query_rev[L - 1 - j] = rm.query[j];
              rm.query_comp[j] = seq::complement(rm.query[j]);
              rm.query_rc[L - 1 - j] = seq::complement(rm.query[j]);
            }
            rm.aux_filled = true;
          }
          for (int d = 0; d < 4; ++d) {
            if (skip[d]) continue;
            pair::RescueWindow w;
            if (!pair::rescue_window(index.ref(), l_pac, a, pes.dir[d], d, l_ms,
                                     mopt.seeding.min_seed_len, &w))
              continue;
            if (popt.rescue_skip && satisfied[d]) {
              ++pb.win_skipped;
              continue;
            }
            pair::RescueAttempt at;
            at.pair = static_cast<std::uint32_t>(p);
            at.mate = static_cast<std::uint8_t>(e ^ 1);
            at.is_rev = w.is_rev;
            at.rid = a.rid;
            at.win_rb = w.rb;
            at.win = index.fetch(w.rb, w.re);
            at.fp = pair::window_fingerprint(at.win);
            // Dedup against this mate's earlier windows.
            bool is_dup = false;
            std::int32_t canon = -1;
            for (const SeenWindow& sw : seen) {
              if (sw.fp != at.fp || sw.is_rev != w.is_rev ||
                  sw.len != static_cast<std::uint32_t>(at.win.size()))
                continue;
              const std::vector<seq::Code>& prev =
                  sw.attempt >= 0
                      ? pb.attempts[static_cast<std::size_t>(sw.attempt)].win
                      : zero_wins[static_cast<std::size_t>(sw.zero)];
              if (!std::equal(at.win.begin(), at.win.end(), prev.begin()))
                continue;
              is_dup = true;
              canon = sw.attempt;
              break;
            }
            if (is_dup) {
              ++pb.win_deduped;
              if (canon < 0) continue;  // repeated anchor-less window
              const pair::RescueAttempt& src =
                  pb.attempts[static_cast<std::size_t>(canon)];
              at.n_anchors = src.n_anchors;
              at.anchors = src.anchors;  // geometry now; results replayed later
              at.dup_of = canon;         // block-local; rebased at splice
              if (popt.rescue_skip)
                for (int an = 0; an < at.n_anchors; ++an)
                  if (at.anchors[static_cast<std::size_t>(an)].exact_run >=
                      mopt.seeding.min_seed_len)
                    satisfied[d] = true;
              pb.attempts.push_back(std::move(at));
              continue;
            }
            ++pb.windows;
            const std::span<const seq::Code> seq =
                w.is_rev ? rm.query_rc : rm.query;
            pair::RescueScanner& scanner = scanners[w.is_rev ? 1 : 0];
            if (!scanner_built[w.is_rev ? 1 : 0]) {
              scanner.build(seq, rescue_k, popt.rescue_hash_bits);
              scanner_built[w.is_rev ? 1 : 0] = true;
            }
            at.n_anchors =
                scanner.scan(at.win, popt.max_rescue_anchors, at.anchors.data());
            if (at.n_anchors == 0) {
              seen.push_back({at.fp, static_cast<std::uint32_t>(at.win.size()),
                              w.is_rev, -1,
                              static_cast<std::int32_t>(zero_wins.size())});
              zero_wins.push_back(std::move(at.win));
              continue;
            }
            if (popt.rescue_skip)
              for (int an = 0; an < at.n_anchors; ++an)
                if (at.anchors[static_cast<std::size_t>(an)].exact_run >=
                    mopt.seeding.min_seed_len)
                  satisfied[d] = true;
            at.win_rev.assign(at.win.rbegin(), at.win.rend());
            seen.push_back({at.fp, static_cast<std::uint32_t>(at.win.size()),
                            w.is_rev,
                            static_cast<std::int32_t>(pb.attempts.size()), -1});
            pb.attempts.push_back(std::move(at));
          }
        }
      }
    }
    });
  }
  guard.rethrow();
  stage_checkpoint(cancel);

  // Splice attempts in block (= pair) order, rebasing intra-block dup_of
  // references onto the spliced list; build per-pair offsets.
  std::vector<pair::RescueAttempt>& attempts = ws.attempts;
  attempts.clear();
  for (PairBlock& pb : ws.pair_blocks) {
    const std::int32_t base = static_cast<std::int32_t>(attempts.size());
    for (auto& at : pb.attempts) {
      if (at.dup_of >= 0) at.dup_of += base;
      attempts.push_back(std::move(at));
    }
    ws.thread_counters[0].pe_rescue_windows += pb.windows;
    ws.thread_counters[0].pe_rescue_win_skipped += pb.win_skipped;
    ws.thread_counters[0].pe_rescue_win_deduped += pb.win_deduped;
    pb.attempts.clear();
  }
  ws.pair_offsets.assign(static_cast<std::size_t>(n_pairs) + 1, 0);
  for (const auto& at : attempts)
    ++ws.pair_offsets[static_cast<std::size_t>(at.pair) + 1];
  for (int p = 0; p < n_pairs; ++p)
    ws.pair_offsets[static_cast<std::size_t>(p) + 1] +=
        ws.pair_offsets[static_cast<std::size_t>(p)];

  // --- Rescue rounds: left extensions, then right extensions seeded with
  // the left scores, both through the shared executor. ---
  auto mate_state = [&](const pair::RescueAttempt& at) -> ReadState& {
    return states[static_cast<std::size_t>(2 * at.pair + at.mate)];
  };
  auto oriented = [&](const pair::RescueAttempt& at, bool reversed)
      -> std::span<const seq::Code> {
    ReadState& rm = mate_state(at);
    if (!at.is_rev) return reversed ? rm.query_rev : rm.query;
    return reversed ? rm.query_comp : rm.query_rc;
  };

  std::vector<bsw::ExtendJob>& jobs = ws.jobs;
  std::vector<bsw::KswResult>& results = ws.results;
  std::vector<RescueRef>& rrefs = ws.rrefs;
  std::uint64_t rescue_jobs = 0;

  jobs.clear();
  rrefs.clear();
  for (std::uint32_t ai = 0; ai < attempts.size(); ++ai) {
    pair::RescueAttempt& at = attempts[ai];
    if (at.dup_of >= 0) continue;  // replayed from the canonical attempt
    const auto seq_rev = oriented(at, /*reversed=*/true);
    const int l_ms = static_cast<int>(seq_rev.size());
    for (int an = 0; an < at.n_anchors; ++an) {
      pair::RescueAnchor& anchor = at.anchors[static_cast<std::size_t>(an)];
      if (anchor.qbeg == 0) continue;  // no left flank
      const int h0 = anchor.len * mopt.ksw.a;
      if (anchor.tbeg == 0) {  // empty target flank
        anchor.left = empty_flank_result(h0);
        anchor.have_left = true;
        continue;
      }
      bsw::ExtendJob job;
      job.query = seq_rev.data() + (l_ms - anchor.qbeg);
      job.qlen = anchor.qbeg;
      job.target = at.win_rev.data() +
                   (static_cast<idx_t>(at.win_rev.size()) - anchor.tbeg);
      job.tlen = anchor.tbeg;
      job.h0 = h0;
      job.w = mopt.w;
      jobs.push_back(job);
      rrefs.push_back({ai, static_cast<std::uint32_t>(an)});
    }
  }
  rescue_jobs += jobs.size();
  ws.executor.run(jobs, results, mopt.ksw, options.bsw,
                  stats ? &stats->bsw_batch : nullptr);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    pair::RescueAnchor& anchor =
        attempts[rrefs[j].attempt].anchors[rrefs[j].anchor];
    anchor.left = results[j];
    anchor.have_left = true;
  }

  jobs.clear();
  rrefs.clear();
  for (std::uint32_t ai = 0; ai < attempts.size(); ++ai) {
    pair::RescueAttempt& at = attempts[ai];
    if (at.dup_of >= 0) continue;  // replayed from the canonical attempt
    const auto seq = oriented(at, /*reversed=*/false);
    const int l_ms = static_cast<int>(seq.size());
    const int l_win = static_cast<int>(at.win.size());
    for (int an = 0; an < at.n_anchors; ++an) {
      pair::RescueAnchor& anchor = at.anchors[static_cast<std::size_t>(an)];
      if (anchor.qbeg + anchor.len == l_ms) continue;  // no right flank
      const int sc0 =
          anchor.qbeg > 0 ? anchor.left.score : anchor.len * mopt.ksw.a;
      if (anchor.tbeg + anchor.len == l_win) {  // empty target flank
        anchor.right = empty_flank_result(sc0);
        anchor.have_right = true;
        continue;
      }
      bsw::ExtendJob job;
      job.query = seq.data() + anchor.qbeg + anchor.len;
      job.qlen = l_ms - anchor.qbeg - anchor.len;
      job.target = at.win.data() + anchor.tbeg + anchor.len;
      job.tlen = l_win - anchor.tbeg - anchor.len;
      job.h0 = sc0;
      job.w = mopt.w;
      jobs.push_back(job);
      rrefs.push_back({ai, static_cast<std::uint32_t>(an)});
    }
  }
  rescue_jobs += jobs.size();
  ws.executor.run(jobs, results, mopt.ksw, options.bsw,
                  stats ? &stats->bsw_batch : nullptr);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    pair::RescueAnchor& anchor =
        attempts[rrefs[j].attempt].anchors[rrefs[j].anchor];
    anchor.right = results[j];
    anchor.have_right = true;
  }
  // Replay extension results into deduped attempts: identical window
  // content + identical oriented mate => identical jobs => identical
  // results, so copying is exact, and finalize still maps each duplicate
  // through its own (win_rb, is_rev, rid).
  for (pair::RescueAttempt& at : attempts)
    if (at.dup_of >= 0)
      at.anchors = attempts[static_cast<std::size_t>(at.dup_of)].anchors;
  ws.thread_counters[0].pe_rescue_jobs += rescue_jobs;
  // The executor reduced its worker counters onto this thread's TLS sink.
  ws.thread_counters[0] += capture.take();
  st0[util::Stage::kPair] += pair_timer.seconds();
  stage_checkpoint(cancel);

  // --- Finalize: splice rescue hits into the mates' region lists, pair,
  // and emit paired SAM — read-parallel per pair. ---
#pragma omp parallel num_threads(n_threads)
  {
    const int tid = omp_get_thread_num();
    util::TraceStreamScope trace_ctx(trace_pid);
    util::TraceSpan finalize_span("pair-finalize");
    util::CounterCapture finalize_capture;
    util::StageTimes& st = ws.thread_stages[static_cast<std::size_t>(tid)];
    util::Timer timer;
#pragma omp for schedule(dynamic, 8)
    for (int p = 0; p < n_pairs; ++p) {
      guard.run([&] {
      ReadState& r1 = states[static_cast<std::size_t>(2 * p)];
      ReadState& r2 = states[static_cast<std::size_t>(2 * p + 1)];
      ReadState* rs[2] = {&r1, &r2};
      bool gained[2] = {false, false};
      for (std::uint32_t ai = ws.pair_offsets[static_cast<std::size_t>(p)];
           ai < ws.pair_offsets[static_cast<std::size_t>(p) + 1]; ++ai) {
        const pair::RescueAttempt& at = attempts[ai];
        ReadState& rm = *rs[at.mate];
        AlnReg reg;
        if (pair::finalize_rescue(mopt, l_pac, at,
                                  static_cast<int>(rm.query.size()),
                                  static_cast<float>(rm.frac_rep), &reg)) {
          rm.regs.push_back(reg);
          gained[at.mate] = true;
          ++util::tls_counters().pe_rescue_hits;
        }
      }
      for (int e = 0; e < 2; ++e)
        if (gained[e]) {
          sort_dedup_regions(rs[e]->regs, mopt);
          mark_primary(rs[e]->regs, mopt);
        }

      const auto decision = pair::pair_and_score(mopt, popt, l_pac, pes,
                                                 r1.regs, r2.regs);
      if (decision.proper) {
        ++util::tls_counters().pe_proper_pairs;
        const bool used_rescued =
            (decision.z[0] >= 0 &&
             r1.regs[static_cast<std::size_t>(decision.z[0])].rescued) ||
            (decision.z[1] >= 0 &&
             r2.regs[static_cast<std::size_t>(decision.z[1])].rescued);
        if (used_rescued) ++util::tls_counters().pe_rescued_pairs;
      }

      ExtendContext ctx1{mopt, index, r1.query, r1.query_rev};
      ExtendContext ctx2{mopt, index, r2.query, r2.query_rev};
      const std::size_t g1 = batch_beg + static_cast<std::size_t>(2 * p);
      pair::pair_to_sam(ctx1, ctx2, reads[g1], reads[g1 + 1], r1.regs, r2.regs,
                        decision, per_read[g1], per_read[g1 + 1]);
      });
    }
    st[util::Stage::kPair] += timer.seconds();
    ws.thread_counters[static_cast<std::size_t>(tid)] += finalize_capture.take();
  }
  guard.rethrow();
}

/// Workspace configuration + batch slicing shared by align_chunk and
/// collect_regions: sizes the per-thread accounting, SMEM executors and BSW
/// blocks/executor for this chunk's options, then invokes
/// body(batch_beg, nb) per batch_size slice with ws.states grown to fit.
template <class Body>
void for_each_batch(std::span<const seq::Read> reads, const DriverOptions& options,
                    BatchWorkspace::Impl& ws, Body&& body) {
  const int n_threads = options.threads;
  ws.thread_stages.assign(static_cast<std::size_t>(n_threads), {});
  ws.thread_counters.assign(static_cast<std::size_t>(n_threads), {});
  if (ws.smem_executors.size() < static_cast<std::size_t>(n_threads))
    ws.smem_executors.resize(static_cast<std::size_t>(n_threads));
  for (auto& ex : ws.smem_executors) ex.set_inflight(options.smem_inflight);
  const int bsw_threads = std::max(1, options.effective_bsw_threads());
  if (ws.blocks.size() != static_cast<std::size_t>(bsw_threads))
    ws.blocks.resize(static_cast<std::size_t>(bsw_threads));
  ws.executor.set_threads(bsw_threads);

  for (std::size_t batch_beg = 0; batch_beg < reads.size();
       batch_beg += static_cast<std::size_t>(options.batch_size)) {
    const std::size_t batch_end =
        std::min(reads.size(), batch_beg + static_cast<std::size_t>(options.batch_size));
    const int nb = static_cast<int>(batch_end - batch_beg);
    if (ws.states.size() < static_cast<std::size_t>(nb))
      ws.states.resize(static_cast<std::size_t>(nb));
    body(batch_beg, nb);
  }
}

}  // namespace

void align_chunk(const index::Mem2Index& index, std::span<const seq::Read> reads,
                 const DriverOptions& options, const pair::InsertStats* pe_stats,
                 BatchWorkspace& workspace,
                 std::vector<std::vector<io::SamRecord>>& per_read,
                 DriverStats* stats, CancelToken* cancel) {
  stage_checkpoint(cancel);
  if (options.mode == Mode::kBaseline) {
    align_reads_baseline(index, reads, options, per_read, stats);
    return;
  }
  MEM2_REQUIRE(index.has_cp32(), "batch driver needs the CP32 index");
  MEM2_REQUIRE(index.has_flat_sa(), "batch driver needs the flat SA");
  MEM2_REQUIRE(options.mem.max_band_try <= 2,
               "batch enumeration supports at most 2 band tries (bwa's MAX_BAND_TRY)");
  if (options.paired) {
    MEM2_REQUIRE(reads.size() % 2 == 0, "paired mode needs an even read count");
    MEM2_REQUIRE(options.batch_size % 2 == 0, "paired mode needs an even batch size");
    MEM2_REQUIRE(pe_stats != nullptr, "paired mode needs insert-size stats");
  }
  per_read.assign(reads.size(), {});

  BatchWorkspace::Impl& ws = workspace.impl();
  for_each_batch(reads, options, ws, [&](std::size_t batch_beg, int nb) {
    stage_checkpoint(cancel);  // batch boundary
    batch_regions(index, reads, batch_beg, nb, options, ws,
                  /*emit_sam=*/!options.paired, &per_read, stats, cancel);
    if (options.paired)
      batch_pair_stage(index, reads, batch_beg, nb, options, *pe_stats, ws,
                       per_read, stats, cancel);
  });

  if (stats) {
    for (const auto& t : ws.thread_stages) stats->stages += t;
    for (const auto& c : ws.thread_counters) stats->counters += c;
  }
}

void collect_regions(const index::Mem2Index& index, std::span<const seq::Read> reads,
                     const DriverOptions& options, BatchWorkspace& workspace,
                     std::vector<std::vector<AlnReg>>& per_read_regs) {
  MEM2_REQUIRE(index.has_cp32(), "batch driver needs the CP32 index");
  MEM2_REQUIRE(index.has_flat_sa(), "batch driver needs the flat SA");
  per_read_regs.assign(reads.size(), {});

  DriverOptions opt = options;
  opt.mode = Mode::kBatch;
  opt.paired = false;
  BatchWorkspace::Impl& ws = workspace.impl();
  for_each_batch(reads, opt, ws, [&](std::size_t batch_beg, int nb) {
    batch_regions(index, reads, batch_beg, nb, opt, ws, /*emit_sam=*/false,
                  nullptr, nullptr);
    for (int i = 0; i < nb; ++i)
      per_read_regs[batch_beg + static_cast<std::size_t>(i)] =
          ws.states[static_cast<std::size_t>(i)].regs;
  });
}

void align_reads_batch(const index::Mem2Index& index,
                       std::span<const seq::Read> reads,
                       const DriverOptions& options,
                       std::vector<std::vector<io::SamRecord>>& per_read,
                       DriverStats* stats) {
  DriverOptions opt = options;
  opt.mode = Mode::kBatch;
  BatchWorkspace workspace;
  align_chunk(index, reads, opt, nullptr, workspace, per_read, stats);
}

}  // namespace mem2::align
