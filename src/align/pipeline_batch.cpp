// Batch driver: the paper's reorganized workflow (Fig. 2).
//
// Reads are processed in batches; each stage runs across the whole batch
// before the next stage starts.  SMEM uses the CP32 index with software
// prefetching; SAL is a flat-array load; BSW jobs from *all* reads of the
// batch are pooled (enumerated in parallel, spliced in read order) and
// executed by the OpenMP-parallel BswExecutor in four rounds (left try-1,
// left try-2, right try-1, right try-2 — the band-doubling retries of
// mem_chain2aln).  Because which seeds deserve
// extension only becomes known when earlier seeds' regions exist, the batch
// driver extends every seed and lets process_chains() replay the original
// decision logic against the precomputed results — the paper's
// "extend all the seeds of a read, then post process" strategy (§5.3.2),
// which buys SIMD parallelism for ~14% extra extensions.
//
// Cross-batch buffers live in containers owned by BatchWorkspace whose
// capacity persists, plus an Arena for the per-read code buffers: after the
// first batch the steady state performs no system allocations (§3.2).  The
// workspace is caller-owned so the streaming Aligner session can keep one
// per worker across many chunks; align_reads_batch wraps a throwaway one.
#include <omp.h>

#include <algorithm>

#include "align/driver.h"
#include "align/sam_format.h"
#include "bsw/bsw_executor.h"
#include "smem/smem_executor.h"
#include "util/arena.h"

namespace mem2::align {

namespace {

struct SeedJobResults {
  bsw::KswResult res[2][2];  // [side][band_try]
  bool have[2][2] = {{false, false}, {false, false}};
};

struct ReadState {
  std::span<seq::Code> query, query_rev;  // query_rev filled lazily (BSW-pre)
  std::vector<smem::Smem> smems;
  std::vector<chain::Seed> seeds;
  std::vector<chain::Chain> chains;
  double frac_rep = 0;
  std::vector<ChainRef> crefs;
  std::vector<std::vector<SeedJobResults>> table;  // [chain][seed]
  std::uint64_t used = 0;

  void clear() {
    smems.clear();
    seeds.clear();
    chains.clear();
    crefs.clear();
    table.clear();
    used = 0;
  }
};

struct JobRef {
  std::uint32_t read;
  std::uint32_t chain;
  std::uint32_t seed;
  std::uint8_t side;
  std::uint8_t bt;
};

/// Per-block output of parallel job enumeration; capacity persists across
/// rounds and batches (§3.2).
struct JobBlock {
  std::vector<bsw::ExtendJob> jobs;
  std::vector<JobRef> refs;
};

/// Replays extensions out of the per-read table.
class TableSource final : public SeedExtendSource {
 public:
  explicit TableSource(ReadState& state) : state_(state) {}

  bsw::KswResult extend(int chain_idx, int seed_idx, int side, int band_try,
                        const bsw::ExtendJob&) override {
    const auto& entry =
        state_.table[static_cast<std::size_t>(chain_idx)][static_cast<std::size_t>(seed_idx)];
    MEM2_REQUIRE(entry.have[side][band_try], "missing precomputed extension");
    ++state_.used;
    return entry.res[side][band_try];
  }

  const ChainRef* chain_ref(int chain_idx) override {
    return &state_.crefs[static_cast<std::size_t>(chain_idx)];
  }

 private:
  ReadState& state_;
};

int left_final_score(const SeedJobResults& e, const chain::Seed& s, int a) {
  if (s.qbeg == 0) return s.len * a;
  if (e.have[0][1]) return e.res[0][1].score;
  if (e.have[0][0]) return e.res[0][0].score;
  return s.len * a;  // empty-target left flank
}

}  // namespace

struct BatchWorkspace::Impl {
  std::vector<ReadState> states;
  util::Arena arena;
  std::vector<bsw::ExtendJob> jobs;
  std::vector<JobRef> refs;
  std::vector<JobRef> prev_refs;
  std::vector<bsw::KswResult> results;
  std::vector<smem::SmemExecutor> smem_executors;
  std::vector<JobBlock> blocks;
  bsw::BswExecutor executor;
  std::vector<util::StageTimes> thread_stages;
  std::vector<util::SwCounters> thread_counters;
};

BatchWorkspace::BatchWorkspace() : impl_(std::make_unique<Impl>()) {}
BatchWorkspace::~BatchWorkspace() = default;
BatchWorkspace::BatchWorkspace(BatchWorkspace&&) noexcept = default;
BatchWorkspace& BatchWorkspace::operator=(BatchWorkspace&&) noexcept = default;

void align_chunk(const index::Mem2Index& index, std::span<const seq::Read> reads,
                 const DriverOptions& options, BatchWorkspace& workspace,
                 std::vector<std::vector<io::SamRecord>>& per_read,
                 DriverStats* stats) {
  if (options.mode == Mode::kBaseline) {
    align_reads_baseline(index, reads, options, per_read, stats);
    return;
  }
  MEM2_REQUIRE(index.has_cp32(), "batch driver needs the CP32 index");
  MEM2_REQUIRE(index.has_flat_sa(), "batch driver needs the flat SA");
  MEM2_REQUIRE(options.mem.max_band_try <= 2,
               "batch enumeration supports at most 2 band tries (bwa's MAX_BAND_TRY)");
  per_read.assign(reads.size(), {});

  const util::PrefetchPolicy prefetch{options.prefetch};
  const int n_threads = options.threads;
  BatchWorkspace::Impl& ws = workspace.impl();
  ws.thread_stages.assign(static_cast<std::size_t>(n_threads), {});
  ws.thread_counters.assign(static_cast<std::size_t>(n_threads), {});
  std::vector<util::StageTimes>& thread_stages = ws.thread_stages;
  std::vector<util::SwCounters>& thread_counters = ws.thread_counters;

  // Chunk-lifetime containers live in the workspace: capacity survives
  // across batches AND across chunks.
  std::vector<ReadState>& states = ws.states;
  util::Arena& arena = ws.arena;
  std::vector<bsw::ExtendJob>& jobs = ws.jobs;
  std::vector<JobRef>& refs = ws.refs;
  std::vector<JobRef>& prev_refs = ws.prev_refs;
  std::vector<bsw::KswResult>& results = ws.results;
  if (ws.smem_executors.size() < static_cast<std::size_t>(n_threads))
    ws.smem_executors.resize(static_cast<std::size_t>(n_threads));
  std::vector<smem::SmemExecutor>& smem_executors = ws.smem_executors;
  for (auto& ex : smem_executors) ex.set_inflight(options.smem_inflight);

  const int bsw_threads = std::max(1, options.effective_bsw_threads());
  if (ws.blocks.size() != static_cast<std::size_t>(bsw_threads))
    ws.blocks.resize(static_cast<std::size_t>(bsw_threads));
  std::vector<JobBlock>& blocks = ws.blocks;
  ws.executor.set_threads(bsw_threads);
  bsw::BswExecutor& executor = ws.executor;

  util::StageTimes& st0 = thread_stages[0];  // serial-section accounting

  for (std::size_t batch_beg = 0; batch_beg < reads.size();
       batch_beg += static_cast<std::size_t>(options.batch_size)) {
    const std::size_t batch_end =
        std::min(reads.size(), batch_beg + static_cast<std::size_t>(options.batch_size));
    const int nb = static_cast<int>(batch_end - batch_beg);
    if (states.size() < static_cast<std::size_t>(nb)) states.resize(static_cast<std::size_t>(nb));
    arena.reset();

    // Encode queries into arena memory (contiguous, reused across batches).
    // The bump-pointer allocation stays serial (it is not thread-safe and
    // costs nanoseconds); the O(len) encode fills run across threads, and
    // query_rev is deferred to the BSW pre-processing stage — reads whose
    // chains all filter out never pay for the reversal.
    {
      util::ScopedStage s(st0, util::Stage::kMisc);
      for (int i = 0; i < nb; ++i) {
        ReadState& rs = states[static_cast<std::size_t>(i)];
        rs.clear();
        const std::size_t len =
            reads[batch_beg + static_cast<std::size_t>(i)].bases.size();
        rs.query = {arena.allocate_array<seq::Code>(len), len};
        rs.query_rev = {arena.allocate_array<seq::Code>(len), len};
      }
#pragma omp parallel for schedule(static) num_threads(n_threads)
      for (int i = 0; i < nb; ++i) {
        ReadState& rs = states[static_cast<std::size_t>(i)];
        const std::string& bases = reads[batch_beg + static_cast<std::size_t>(i)].bases;
        for (std::size_t j = 0; j < bases.size(); ++j)
          rs.query[j] = seq::char_to_code(bases[j]);
      }
    }

    // --- SMEM stage (whole batch): each thread takes a group of reads and
    // runs smem_inflight walks in lockstep on its SmemExecutor, so one
    // read's Occ misses overlap the other in-flight reads' work.  Group
    // size balances lane refill (>= inflight) against work units for the
    // dynamic schedule (>= ~4 groups per thread when the batch allows). ---
    constexpr int kSmemGroup = 64;  // upper bound (qrefs stack array below)
    static_assert(kSmemGroup >= smem::SmemExecutor::kMaxInflight,
                  "groups must be able to fill every lane");
    const int group = std::clamp(nb / (4 * n_threads), options.smem_inflight,
                                 kSmemGroup);
    const int n_groups = (nb + group - 1) / group;
#pragma omp parallel num_threads(n_threads)
    {
      const int tid = omp_get_thread_num();
      util::tls_counters().reset();
      util::StageTimes& st = thread_stages[static_cast<std::size_t>(tid)];
      util::Timer timer;
#pragma omp for schedule(dynamic, 1)
      for (int g = 0; g < n_groups; ++g) {
        const int beg = g * group;
        const int end = std::min(nb, beg + group);
        smem::QueryRef qrefs[kSmemGroup];
        for (int i = beg; i < end; ++i) {
          ReadState& rs = states[static_cast<std::size_t>(i)];
          qrefs[i - beg] = smem::QueryRef{rs.query, &rs.smems};
        }
        smem_executors[static_cast<std::size_t>(tid)].collect(
            index.fm32(), std::span(qrefs, static_cast<std::size_t>(end - beg)),
            options.mem.seeding, prefetch);
      }
      st[util::Stage::kSmem] += timer.seconds();

      // --- SAL stage: batched gather, SA lines prefetched in waves ---
      timer.restart();
#pragma omp for schedule(dynamic, 8)
      for (int i = 0; i < nb; ++i) {
        ReadState& rs = states[static_cast<std::size_t>(i)];
        smem_executors[static_cast<std::size_t>(tid)].gather_seeds(
            rs.smems, options.mem.chaining, index.flat_sa(), rs.seeds);
      }
      st[util::Stage::kSal] += timer.seconds();

      // --- CHAIN stage ---
      timer.restart();
#pragma omp for schedule(dynamic, 8)
      for (int i = 0; i < nb; ++i) {
        ReadState& rs = states[static_cast<std::size_t>(i)];
        rs.frac_rep = chain::repetitive_fraction(
            rs.smems, static_cast<int>(rs.query.size()), options.mem.chaining.max_occ);
        rs.chains = chain::build_chains(index.ref(), index.l_pac(), rs.seeds,
                                        static_cast<int>(rs.query.size()),
                                        options.mem.chaining, rs.frac_rep);
        chain::filter_chains(rs.chains, options.mem.chaining);
      }
      st[util::Stage::kChain] += timer.seconds();

      // --- BSW pre-processing: chain windows + table layout ---
      timer.restart();
#pragma omp for schedule(dynamic, 8)
      for (int i = 0; i < nb; ++i) {
        ReadState& rs = states[static_cast<std::size_t>(i)];
        if (rs.chains.empty()) continue;  // query_rev never needed
        // Deferred from encoding: the reversed query's first reader is job
        // construction below, so only reads that reach extension pay for it.
        for (std::size_t j = 0; j < rs.query.size(); ++j)
          rs.query_rev[rs.query.size() - 1 - j] = rs.query[j];
        ExtendContext ctx{options.mem, index, rs.query, rs.query_rev};
        rs.crefs.reserve(rs.chains.size());
        rs.table.resize(rs.chains.size());
        for (std::size_t ci = 0; ci < rs.chains.size(); ++ci) {
          rs.crefs.push_back(make_chain_ref(ctx, rs.chains[ci]));
          rs.table[ci].assign(rs.chains[ci].seeds.size(), SeedJobResults{});
        }
      }
      st[util::Stage::kBswPre] += timer.seconds();
      thread_counters[static_cast<std::size_t>(tid)] += util::tls_counters();
      util::tls_counters().reset();
    }

    // --- BSW stage: four pooled SIMD rounds.  Both halves run parallel:
    // job enumeration builds contiguous per-block lists spliced in read
    // order, and the executor dispatches width-aligned chunks across
    // threads.  The pooled list and every result are bit-identical to the
    // serial path for any thread count. ---
    {
      util::Timer bsw_timer;
      // Enumerate items [0, n_items) into per-block job lists built
      // concurrently, then splice in block order.  Blocks are contiguous
      // item ranges, so the spliced pool preserves read order exactly.
      auto enumerate = [&](int n_items, auto&& body) {
        const int n_blocks = static_cast<int>(blocks.size());
#pragma omp parallel for schedule(static, 1) num_threads(bsw_threads)
        for (int b = 0; b < n_blocks; ++b) {
          JobBlock& jb = blocks[static_cast<std::size_t>(b)];
          jb.jobs.clear();
          jb.refs.clear();
          const int beg = static_cast<int>(
              static_cast<std::int64_t>(n_items) * b / n_blocks);
          const int end = static_cast<int>(
              static_cast<std::int64_t>(n_items) * (b + 1) / n_blocks);
          for (int k = beg; k < end; ++k) body(k, jb);
        }
        jobs.clear();
        refs.clear();
        for (const JobBlock& jb : blocks) {
          jobs.insert(jobs.end(), jb.jobs.begin(), jb.jobs.end());
          refs.insert(refs.end(), jb.refs.begin(), jb.refs.end());
        }
      };

      auto run_round = [&]() {
        executor.run(jobs, results, options.mem.ksw, options.bsw,
                     stats ? &stats->bsw_batch : nullptr);
        for (std::size_t j = 0; j < jobs.size(); ++j) {
          const JobRef& ref = refs[j];
          auto& entry = states[ref.read].table[ref.chain][ref.seed];
          entry.res[ref.side][ref.bt] = results[j];
          entry.have[ref.side][ref.bt] = true;
        }
        if (stats) stats->extensions_computed += jobs.size();
      };

      // Round L1.
      enumerate(nb, [&](int i, JobBlock& jb) {
        ReadState& rs = states[static_cast<std::size_t>(i)];
        ExtendContext ctx{options.mem, index, rs.query, rs.query_rev};
        for (std::size_t ci = 0; ci < rs.chains.size(); ++ci)
          for (std::size_t si = 0; si < rs.chains[ci].seeds.size(); ++si) {
            const chain::Seed& s = rs.chains[ci].seeds[si];
            if (s.qbeg == 0) continue;
            const auto job = make_left_job(ctx, rs.crefs[ci], s, options.mem.w);
            if (job.tlen == 0) continue;
            jb.jobs.push_back(job);
            jb.refs.push_back({static_cast<std::uint32_t>(i),
                               static_cast<std::uint32_t>(ci),
                               static_cast<std::uint32_t>(si), 0, 0});
          }
      });
      run_round();

      // Round L2: band-doubling retries.
      prev_refs.swap(refs);
      enumerate(static_cast<int>(prev_refs.size()), [&](int k, JobBlock& jb) {
        const JobRef& ref = prev_refs[static_cast<std::size_t>(k)];
        ReadState& rs = states[ref.read];
        const auto& e = rs.table[ref.chain][ref.seed];
        const auto& r1 = e.res[0][0];
        if (!band_retry_needed(r1.score, -1, r1.max_off, options.mem.w)) return;
        ExtendContext ctx{options.mem, index, rs.query, rs.query_rev};
        const chain::Seed& s = rs.chains[ref.chain].seeds[ref.seed];
        jb.jobs.push_back(make_left_job(ctx, rs.crefs[ref.chain], s, options.mem.w << 1));
        jb.refs.push_back({ref.read, ref.chain, ref.seed, 0, 1});
      });
      run_round();

      // Round R1.
      enumerate(nb, [&](int i, JobBlock& jb) {
        ReadState& rs = states[static_cast<std::size_t>(i)];
        ExtendContext ctx{options.mem, index, rs.query, rs.query_rev};
        const int l_query = static_cast<int>(rs.query.size());
        for (std::size_t ci = 0; ci < rs.chains.size(); ++ci)
          for (std::size_t si = 0; si < rs.chains[ci].seeds.size(); ++si) {
            const chain::Seed& s = rs.chains[ci].seeds[si];
            if (s.qbeg + s.len == l_query) continue;
            const int sc0 =
                left_final_score(rs.table[ci][si], s, options.mem.ksw.a);
            const auto job = make_right_job(ctx, rs.crefs[ci], s, options.mem.w, sc0);
            if (job.tlen == 0) continue;
            jb.jobs.push_back(job);
            jb.refs.push_back({static_cast<std::uint32_t>(i),
                               static_cast<std::uint32_t>(ci),
                               static_cast<std::uint32_t>(si), 1, 0});
          }
      });
      run_round();

      // Round R2.
      prev_refs.swap(refs);
      enumerate(static_cast<int>(prev_refs.size()), [&](int k, JobBlock& jb) {
        const JobRef& ref = prev_refs[static_cast<std::size_t>(k)];
        ReadState& rs = states[ref.read];
        const chain::Seed& s = rs.chains[ref.chain].seeds[ref.seed];
        const auto& e = rs.table[ref.chain][ref.seed];
        const int sc0 = left_final_score(e, s, options.mem.ksw.a);
        const auto& r1 = e.res[1][0];
        if (!band_retry_needed(r1.score, sc0, r1.max_off, options.mem.w)) return;
        ExtendContext ctx{options.mem, index, rs.query, rs.query_rev};
        jb.jobs.push_back(
            make_right_job(ctx, rs.crefs[ref.chain], s, options.mem.w << 1, sc0));
        jb.refs.push_back({ref.read, ref.chain, ref.seed, 1, 1});
      });
      run_round();

      st0[util::Stage::kBsw] += bsw_timer.seconds();
      // The executor reduces worker-thread counters onto this (master)
      // thread's TLS sink; bank them before the next parallel region
      // resets thread-local state.
      thread_counters[0] += util::tls_counters();
      util::tls_counters().reset();
    }

    // --- Replay the decision logic, then SAM ---
#pragma omp parallel num_threads(n_threads)
    {
      const int tid = omp_get_thread_num();
      util::tls_counters().reset();
      util::StageTimes& st = thread_stages[static_cast<std::size_t>(tid)];
      util::Timer timer;
      std::vector<AlnReg> regs;
#pragma omp for schedule(dynamic, 8)
      for (int i = 0; i < nb; ++i) {
        ReadState& rs = states[static_cast<std::size_t>(i)];
        ExtendContext ctx{options.mem, index, rs.query, rs.query_rev};
        TableSource source(rs);
        regs.clear();
        {
          util::ScopedStage s(st, util::Stage::kBswPre);
          process_chains(ctx, rs.chains, source, regs);
        }
        {
          util::ScopedStage s(st, util::Stage::kSamForm);
          sort_dedup_regions(regs, options.mem);
          mark_primary(regs, options.mem);
          per_read[batch_beg + static_cast<std::size_t>(i)] =
              regions_to_sam(ctx, reads[batch_beg + static_cast<std::size_t>(i)], regs);
        }
      }
      (void)timer;
      thread_counters[static_cast<std::size_t>(tid)] += util::tls_counters();
    }

    if (stats) {
      std::uint64_t used = 0;
      for (int i = 0; i < nb; ++i) used += states[static_cast<std::size_t>(i)].used;
      stats->extensions_used += used;
    }
  }

  if (stats) {
    for (const auto& t : thread_stages) stats->stages += t;
    for (const auto& c : thread_counters) stats->counters += c;
  }
}

void align_reads_batch(const index::Mem2Index& index,
                       std::span<const seq::Read> reads,
                       const DriverOptions& options,
                       std::vector<std::vector<io::SamRecord>>& per_read,
                       DriverStats* stats) {
  DriverOptions opt = options;
  opt.mode = Mode::kBatch;
  BatchWorkspace workspace;
  align_chunk(index, reads, opt, workspace, per_read, stats);
}

}  // namespace mem2::align
