// SessionCore — the per-stream session engine behind both front doors.
//
// A core owns everything one streaming session needs except the worker
// threads: the bounded batch queue with back-pressure, paired-mode
// calibration, ordered reassembly into the session's SamSink, the sticky
// Status, per-session DriverStats and the StreamMetrics observability
// block.  Who supplies the threads is the only difference between the two
// deployment shapes:
//
//   - Stream (aligner.h): a dedicated pool per session.  The core owns its
//     queue mutex and work condition variable; workers block on them.
//   - serve::AlignService: one global pool multiplexed over many cores.
//     Every core is constructed with the service's shared mutex + work cv,
//     so a pooled worker can scan all sessions' queues under one lock and
//     pick fairly.
//
// Producer calls (submit/close/wait_drained/finalize) are single-threaded
// per core, exactly like Stream.  Worker calls come from any thread: hold a
// lock on mu() around the *_locked accessors, then run process() unlocked.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "align/cancel.h"
#include "align/driver.h"
#include "align/sam_sink.h"
#include "align/status.h"
#include "util/clock.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace mem2::align {

/// One queued batch.  `reads` views `owned` (copying ingest) or caller
/// memory (zero-copy span submit).
struct SessionWorkItem {
  std::uint64_t seq = 0;
  std::vector<seq::Read> owned;
  std::span<const seq::Read> reads;
  std::chrono::steady_clock::time_point enqueued{};
  std::uint64_t enqueued_tsc = 0;  // queue-wait span start (tracer timeline)
};

/// Per-stream observability: batch/record counts, queue-depth high-water
/// mark, and log2-bucket histograms (util::Histogram) of end-to-end batch
/// latency (enqueue -> records emitted), queue wait (enqueue -> dequeue)
/// and per-stage batch seconds.  Histograms replace the old bounded
/// latency-sample vector: constant memory, mergeable across streams, one
/// percentile implementation shared with the serve layer.  The per-stage
/// histograms are the cost signal ROADMAP item 2's latency-aware
/// scheduling consumes (where does each stream's batch time go).
struct StreamMetrics {
  static constexpr std::size_t kStages =
      static_cast<std::size_t>(util::Stage::kCount);

  std::uint64_t batches = 0;        // batches fully processed
  std::uint64_t records = 0;        // SAM records written to the sink
  std::uint64_t write_retries = 0;  // transient sink-write retries absorbed
  std::size_t queue_hwm = 0;        // max batches ever waiting in the queue
  util::Histogram batch_latency;    // seconds, enqueue -> emitted
  util::Histogram queue_wait;       // seconds, enqueue -> dequeued
  std::array<util::Histogram, kStages> stage_seconds;  // per-batch stage cost

  double p50() const { return batch_latency.p50(); }
  double p99() const { return batch_latency.p99(); }

  /// Fold another stream's metrics in (service-wide aggregation).
  StreamMetrics& operator+=(const StreamMetrics& o);
};

/// Validate a session configuration against an index: driver options plus
/// the index capabilities the chosen mode needs.  Shared by Aligner's
/// constructor and AlignService::open().
Status validate_session(const index::Mem2Index& index,
                        const DriverOptions& options);

class SessionCore {
 public:
  /// `pool_size` is how many workers may run this core's batches
  /// concurrently (it decides whether a batch parallelizes internally, as
  /// in the single-worker Stream, or stays serial per batch).  Standalone
  /// cores pass null `shared_mu`/`shared_work_cv` and own both; service
  /// cores receive the pool's.  `keep_alive` pins whatever owns the shared
  /// mutex (the service Impl) so a handle outliving the service stays safe.
  /// `clock` (null = real) drives batch latency timestamps and the cancel
  /// token's heartbeats, so deadline behavior is testable with a FakeClock.
  SessionCore(const index::Mem2Index& index, DriverOptions options,
              SamSink& sink, int pool_size, std::mutex* shared_mu = nullptr,
              std::condition_variable* shared_work_cv = nullptr,
              std::shared_ptr<void> keep_alive = nullptr,
              util::Clock* clock = nullptr);

  SessionCore(const SessionCore&) = delete;
  SessionCore& operator=(const SessionCore&) = delete;

  // --- Producer side (one thread per core, like Stream) ---

  /// Carve a chunk into batches, blocking on back-pressure.  Owned variant
  /// moves the reads in; view variant enqueues full batches as views into
  /// caller memory that must stay alive until finalize() returns.
  Status submit_owned(std::vector<seq::Read> chunk);
  Status submit_view(std::span<const seq::Read> chunk);

  /// No more submissions: runs tail calibration (paired), flushes the
  /// staging buffer, marks the queue closed and wakes all workers.
  void close();

  /// Block until every queued batch has been popped *and* processed.
  void wait_drained();

  /// Final bookkeeping after the pipeline drained: folds the submitted-read
  /// count into stats and flushes the sink (unless failed).  Returns the
  /// final session status.
  void finalize();

  // --- Shared state ---

  void fail(Status st);
  /// Cooperative cancellation: records `reason` as the sticky status (first
  /// error wins), marks the cancel token so the in-flight batch aborts at
  /// its next stage checkpoint, and wakes a producer blocked in submit().
  /// Queued batches are drained unprocessed; the sink stays at a batch
  /// boundary.  Safe from any thread, idempotent.
  void cancel(Status reason);
  CancelToken& cancel_token() { return cancel_token_; }
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  Status snapshot_status() const;
  /// Stable reference once finalize() has run (Stream::stats contract).
  const DriverStats& stats() const { return stats_; }
  /// Thread-safe copy for live service-wide metrics aggregation.
  DriverStats stats_snapshot() const;
  const pair::InsertStats& pair_stats() const { return pe_stats_; }
  StreamMetrics metrics_snapshot() const;
  const DriverOptions& options() const { return options_; }
  /// Process-unique stream id; the tracer's Chrome `pid` lane for every
  /// span this session's batches emit.
  std::uint32_t trace_id() const { return trace_id_; }

  // --- Worker side: lock mu() around the *_locked calls ---

  std::mutex& mu() { return *q_mu_; }
  std::condition_variable& work_cv() { return *work_cv_; }
  bool has_work_locked() const { return !queue_.empty(); }
  bool closed_locked() const { return closed_; }
  /// Nothing queued and nothing being processed.
  bool idle_locked() const { return queue_.empty() && in_flight_ == 0; }
  /// Batches currently being processed (the watchdog only monitors
  /// sessions with work actually running).
  int in_flight_locked() const { return in_flight_; }
  SessionWorkItem pop_locked();
  /// Align one popped batch with `workspace` and emit it in order.  Runs
  /// without any lock held; failures land in the sticky status.
  void process(SessionWorkItem item, BatchWorkspace& workspace);

 private:
  Status enqueue(SessionWorkItem item);
  Status enqueue_owned(std::vector<seq::Read> reads);
  Status ingest(std::vector<seq::Read>&& chunk);
  Status run_calibration();
  void retire_locked();

  const index::Mem2Index& index_;
  const std::uint32_t trace_id_;
  const DriverOptions options_;
  DriverOptions worker_options_;  // threads=1 when the pool supplies >1
  SamSink& sink_;
  std::shared_ptr<void> keep_alive_;
  util::Clock* clock_;        // before cancel_token_: the token borrows it
  CancelToken cancel_token_;  // cancellation + per-batch progress heartbeats

  // Producer-side state.
  std::vector<seq::Read> staging_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t reads_submitted_ = 0;

  // Paired-mode calibration (producer thread only until pe_ready_).
  std::vector<seq::Read> calib_;
  pair::InsertStats pe_stats_;
  bool pe_ready_ = false;

  // Bounded batch queue.  q_mu_/work_cv_ point at own_* or the service's.
  std::mutex own_mu_;
  std::condition_variable own_work_cv_;
  std::mutex* q_mu_;
  std::condition_variable* work_cv_;
  std::condition_variable q_not_full_;
  std::condition_variable drained_cv_;
  std::deque<SessionWorkItem> queue_;
  int in_flight_ = 0;
  // Written under q_mu_ but atomic so metrics_snapshot() can read it
  // without the queue mutex — which may be the service's shared mutex,
  // already held by a metrics() caller.
  std::atomic<std::size_t> queue_hwm_{0};
  bool closed_ = false;

  // Ordered reassembly.
  mutable std::mutex emit_mu_;
  std::map<std::uint64_t, std::vector<io::SamRecord>> pending_;
  std::uint64_t next_emit_ = 0;
  std::uint64_t records_written_ = 0;

  // Sticky error + per-session stats/metrics.
  mutable std::mutex state_mu_;
  std::atomic<bool> failed_{false};
  Status status_;
  DriverStats stats_;
  StreamMetrics metrics_;
};

}  // namespace mem2::align
