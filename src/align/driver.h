// End-to-end alignment drivers.
//
// BaselineDriver models original BWA-MEM's organization: each read flows
// through SMEM -> SAL -> CHAIN -> BSW -> SAM before the next read starts;
// the compressed FM-index (CP128) and LF-walk SAL are used; BSW is scalar;
// buffers are allocated per read.
//
// BatchDriver models the paper's reorganization (Fig. 2): reads are split
// into batches and every stage runs over the whole batch before the next
// stage starts; the CP32 index with software prefetching and the flat SA
// are used; extensions from all reads of the batch are pooled, sorted and
// fed to the inter-task SIMD BSW; buffers come from per-thread arenas
// reused across batches.
//
// Both produce identical SAM bodies — tests/test_pipeline.cpp enforces it.
#pragma once

#include <string>
#include <vector>

#include "align/options.h"
#include "index/mem2_index.h"
#include "io/sam.h"
#include "seq/read_sim.h"
#include "util/sw_counters.h"
#include "util/timer.h"

namespace mem2::align {

enum class Mode { kBaseline, kBatch };

struct DriverOptions {
  MemOptions mem;
  Mode mode = Mode::kBatch;
  int threads = 1;
  int batch_size = 512;  // reads per batch (batch mode)
  bool prefetch = true;  // software prefetch in SMEM (batch mode)
  bsw::BswBatchOptions bsw;  // sorting / ISA for the SIMD engine
  /// OpenMP threads for the pooled BSW rounds (enumeration + chunk
  /// dispatch); 0 follows `threads`.  Output is invariant across values.
  int bsw_threads = 0;

  int effective_bsw_threads() const {
    return bsw_threads > 0 ? bsw_threads : threads;
  }
};

struct DriverStats {
  util::StageTimes stages;
  util::SwCounters counters;
  bsw::BswBatchStats bsw_batch;     // batch mode only
  std::uint64_t reads = 0;
  std::uint64_t extensions_computed = 0;  // BSW jobs executed
  std::uint64_t extensions_used = 0;      // jobs the decision logic consumed

  /// The paper's §6.3.2 metric: extra seed pairs extended by the batch
  /// reorganization (≈14% on their data).
  double extra_extension_fraction() const {
    return extensions_used
               ? static_cast<double>(extensions_computed - extensions_used) /
                     static_cast<double>(extensions_used)
               : 0.0;
  }
};

/// Align reads single-end; returns SAM records in read order (each read may
/// produce several records: primary + supplementary/secondary).
std::vector<io::SamRecord> align_reads(const index::Mem2Index& index,
                                       const std::vector<seq::Read>& reads,
                                       const DriverOptions& options,
                                       DriverStats* stats = nullptr);

/// The @PG-bearing SAM header for this aligner.
std::string sam_header_for(const index::Mem2Index& index, const DriverOptions& options);

// Internal entry points (one per mode), exposed for the benches.
void align_reads_baseline(const index::Mem2Index& index,
                          const std::vector<seq::Read>& reads,
                          const DriverOptions& options,
                          std::vector<std::vector<io::SamRecord>>& per_read,
                          DriverStats* stats);
void align_reads_batch(const index::Mem2Index& index,
                       const std::vector<seq::Read>& reads,
                       const DriverOptions& options,
                       std::vector<std::vector<io::SamRecord>>& per_read,
                       DriverStats* stats);

}  // namespace mem2::align
