// End-to-end alignment drivers.
//
// BaselineDriver models original BWA-MEM's organization: each read flows
// through SMEM -> SAL -> CHAIN -> BSW -> SAM before the next read starts;
// the compressed FM-index (CP128) and LF-walk SAL are used; BSW is scalar;
// buffers are allocated per read.
//
// BatchDriver models the paper's reorganization (Fig. 2): reads are split
// into batches and every stage runs over the whole batch before the next
// stage starts; the CP32 index with software prefetching and the flat SA
// are used; extensions from all reads of the batch are pooled, sorted and
// fed to the inter-task SIMD BSW; buffers come from per-thread arenas
// reused across batches.
//
// Both produce identical SAM bodies — tests/test_pipeline.cpp enforces it.
//
// The chunk-level entry points (BatchWorkspace + align_chunk) let a caller
// own the cross-batch buffers and feed reads incrementally — the streaming
// Aligner session (aligner.h) is built on them; align_reads() is a one-shot
// convenience over that session.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "align/options.h"
#include "align/region.h"
#include "align/status.h"
#include "index/mem2_index.h"
#include "io/sam.h"
#include "pair/insert_stats.h"
#include "seq/read_sim.h"
#include "util/retry.h"
#include "util/sw_counters.h"
#include "util/timer.h"

namespace mem2::align {

class CancelToken;  // align/cancel.h

enum class Mode { kBaseline, kBatch };

struct DriverOptions {
  MemOptions mem;
  Mode mode = Mode::kBatch;
  int threads = 1;
  int batch_size = 512;  // reads per batch (batch mode)
  bool prefetch = true;  // software prefetch in SMEM (batch mode)
  /// In-flight FM-index walks per thread in the seeding stage (batch mode):
  /// the SmemExecutor runs this many reads' SMEM state machines in lockstep
  /// so one walk's Occ-line misses overlap useful work on the others
  /// (paper §4.3).  1 degenerates to the scalar walk order; output is
  /// invariant across values (tests/test_smem_executor.cpp).
  int smem_inflight = 8;
  bsw::BswBatchOptions bsw;  // sorting / ISA for the SIMD engine
  /// OpenMP threads for the pooled BSW rounds (enumeration + chunk
  /// dispatch); 0 follows `threads`.  Output is invariant across values.
  int bsw_threads = 0;
  /// Streaming session (aligner.h): worker threads running whole batches
  /// concurrently; 0 follows `threads`.  Output is invariant across values.
  int pipeline_workers = 0;
  /// Streaming session: bounded depth of the batch queue between submit()
  /// and the workers — at most (queue_depth + workers) batches are in
  /// flight, which bounds resident reads/records to
  /// O((queue_depth + workers) × batch_size).
  int queue_depth = 4;
  /// Paired-end mode (batch driver only): reads arrive as adjacent mate
  /// pairs (R1 at even indices, R2 at odd); batch_size must be even so a
  /// batch never splits a pair.  The session estimates the insert-size
  /// distribution once from the first pe.stat_pairs pairs, then scores
  /// pairs and runs BSW-powered mate rescue per batch.  Output stays
  /// deterministic across thread counts, chunkings and batch sizes.
  bool paired = false;
  /// Paired-end subsystem knobs (pair/insert_stats.h), including the
  /// rescue-scan tuning surface: pe.rescue_seed_len (probe k),
  /// pe.rescue_hash_bits (rolling-hash table size) and pe.rescue_skip
  /// (determinism-preserving window skipping; disable for an A/B against
  /// the scan-everything behavior — output with skipping off is
  /// byte-identical to the pre-skip driver).
  pair::PairOptions pe;
  /// Transient-failure policy for sink writes (util/retry.h): with
  /// max_attempts > 1 the session's ordered writer re-drives a failed bulk
  /// write (OstreamSamSink rewrites the same formatted batch after clearing
  /// the stream state) with bounded exponential backoff before surfacing
  /// kIoError.  Default is 1 = no retry, today's fail-stop behavior.
  util::RetryPolicy sink_retry;

  int effective_bsw_threads() const {
    return bsw_threads > 0 ? bsw_threads : threads;
  }
  int effective_workers() const {
    return pipeline_workers > 0 ? pipeline_workers : std::max(1, threads);
  }
};

struct DriverStats {
  util::StageTimes stages;
  util::SwCounters counters;
  bsw::BswBatchStats bsw_batch;     // batch mode only
  std::uint64_t reads = 0;
  std::uint64_t extensions_computed = 0;  // BSW jobs executed
  std::uint64_t extensions_used = 0;      // jobs the decision logic consumed

  /// The paper's §6.3.2 metric: extra seed pairs extended by the batch
  /// reorganization (≈14% on their data).
  double extra_extension_fraction() const {
    return extensions_used
               ? static_cast<double>(extensions_computed - extensions_used) /
                     static_cast<double>(extensions_used)
               : 0.0;
  }

  DriverStats& operator+=(const DriverStats& o) {
    stages += o.stages;
    counters += o.counters;
    bsw_batch += o.bsw_batch;
    reads += o.reads;
    extensions_computed += o.extensions_computed;
    extensions_used += o.extensions_used;
    return *this;
  }
};

/// Validates the full driver configuration (MemOptions + threading/batching
/// knobs).  Returns the first problem found; never throws.
Status validate_driver_options(const DriverOptions& options);

/// Cross-batch scratch state of the batch driver (read states, arenas, job
/// pools, the BswExecutor).  Capacity persists across align_chunk() calls,
/// so a long-lived workspace performs no steady-state allocations; one
/// workspace serves one thread of chunk execution at a time.
class BatchWorkspace {
 public:
  BatchWorkspace();
  ~BatchWorkspace();
  BatchWorkspace(BatchWorkspace&&) noexcept;
  BatchWorkspace& operator=(BatchWorkspace&&) noexcept;

  struct Impl;
  Impl& impl() { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

/// Align one chunk of reads (any size; split internally into
/// options.batch_size batches in batch mode) using caller-owned scratch.
/// per_read is resized to reads.size(); output is independent of how reads
/// are split into chunks and batches.  Options are assumed pre-validated
/// (validate_driver_options) — the Aligner session does this once.
/// In paired mode pe_stats (the session-wide insert-size prior) is
/// required and reads.size() must be even.
/// `cancel`, when non-null, is checked at batch and stage boundaries
/// (heartbeat + cooperative abort): once the token is cancelled the call
/// throws cancelled_error without starting another stage, so at most the
/// current stage of the current batch runs to completion.
void align_chunk(const index::Mem2Index& index, std::span<const seq::Read> reads,
                 const DriverOptions& options, const pair::InsertStats* pe_stats,
                 BatchWorkspace& workspace,
                 std::vector<std::vector<io::SamRecord>>& per_read,
                 DriverStats* stats, CancelToken* cancel = nullptr);
inline void align_chunk(const index::Mem2Index& index,
                        std::span<const seq::Read> reads,
                        const DriverOptions& options, BatchWorkspace& workspace,
                        std::vector<std::vector<io::SamRecord>>& per_read,
                        DriverStats* stats) {
  align_chunk(index, reads, options, nullptr, workspace, per_read, stats);
}

/// Run the batch pipeline's single-end stages only and return each read's
/// post-processed region list (sort_dedup + mark_primary applied) — the
/// input the paired-end calibration (pair::estimate_insert_stats) needs.
/// Batch mode only; ignores options.paired.
void collect_regions(const index::Mem2Index& index, std::span<const seq::Read> reads,
                     const DriverOptions& options, BatchWorkspace& workspace,
                     std::vector<std::vector<AlnReg>>& per_read_regs);

/// Align reads single-end; returns SAM records in read order (each read may
/// produce several records: primary + supplementary/secondary).  Thin
/// compatibility shim over the streaming Aligner session (open -> submit
/// once -> finish); throws invariant_error if the options fail validation.
std::vector<io::SamRecord> align_reads(const index::Mem2Index& index,
                                       const std::vector<seq::Read>& reads,
                                       const DriverOptions& options,
                                       DriverStats* stats = nullptr);

/// The @PG-bearing SAM header for this aligner.
std::string sam_header_for(const index::Mem2Index& index, const DriverOptions& options);

// Internal entry points (one per mode), exposed for the benches.
void align_reads_baseline(const index::Mem2Index& index,
                          std::span<const seq::Read> reads,
                          const DriverOptions& options,
                          std::vector<std::vector<io::SamRecord>>& per_read,
                          DriverStats* stats);
void align_reads_batch(const index::Mem2Index& index,
                       std::span<const seq::Read> reads,
                       const DriverOptions& options,
                       std::vector<std::vector<io::SamRecord>>& per_read,
                       DriverStats* stats);

}  // namespace mem2::align
