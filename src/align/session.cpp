// SessionCore implementation — the queueing/calibration/reassembly engine
// previously embedded in Stream::Impl (see session.h for the split).
//
// Concurrency design (unchanged from the original Stream):
//   - The producer carves reads into batch_size batches and enqueues them;
//     the queue holds at most queue_depth batches, so the producer blocks
//     instead of buffering unbounded input.
//   - A worker (dedicated or pooled) pops one batch, aligns it with its own
//     BatchWorkspace, then inserts the flattened records into a reorder
//     buffer keyed by batch sequence number.  Whichever worker completes
//     the next-in-order batch drains the buffer to the sink under emit_mu_,
//     so records always reach the sink in read order.
//   - Errors are sticky: the first failure is recorded, wakes any blocked
//     producer, and suppresses all further sink writes.  Workers keep
//     draining the queue after a failure so back-pressure never deadlocks,
//     and the ordered writer stops at the first missing batch, leaving the
//     sink at a batch boundary.  Failure is per-session: siblings sharing
//     the pool (serve::AlignService) never observe it.
#include "align/session.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "pair/pairing.h"
#include "util/common.h"
#include "util/fault_injector.h"
#include "util/retry.h"
#include "util/trace.h"
#include "util/tsc.h"

namespace mem2::align {

namespace {
/// Process-unique stream ids for trace attribution; 0 is reserved for
/// non-stream (process-scope) work.
std::atomic<std::uint32_t> g_next_trace_id{1};
}  // namespace

StreamMetrics& StreamMetrics::operator+=(const StreamMetrics& o) {
  batches += o.batches;
  records += o.records;
  write_retries += o.write_retries;
  queue_hwm = std::max(queue_hwm, o.queue_hwm);
  batch_latency += o.batch_latency;
  queue_wait += o.queue_wait;
  for (std::size_t s = 0; s < kStages; ++s) stage_seconds[s] += o.stage_seconds[s];
  return *this;
}

Status validate_session(const index::Mem2Index& index,
                        const DriverOptions& options) {
  if (Status st = validate_driver_options(options); !st.ok()) return st;
  // Index capability checks, surfaced at session setup instead of from a
  // worker thread mid-stream.
  if (options.mode == Mode::kBatch) {
    if (!index.has_cp32())
      return Status::invalid("batch driver needs the CP32 index");
    if (!index.has_flat_sa())
      return Status::invalid("batch driver needs the flat SA");
  } else if (!index.has_cp128()) {
    return Status::invalid("baseline driver needs the CP128 index");
  }
  return Status();
}

SessionCore::SessionCore(const index::Mem2Index& index, DriverOptions options,
                         SamSink& sink, int pool_size, std::mutex* shared_mu,
                         std::condition_variable* shared_work_cv,
                         std::shared_ptr<void> keep_alive, util::Clock* clock)
    : index_(index),
      trace_id_(g_next_trace_id.fetch_add(1, std::memory_order_relaxed)),
      options_(std::move(options)),
      worker_options_(options_),
      sink_(sink),
      keep_alive_(std::move(keep_alive)),
      clock_(clock ? clock : &util::Clock::real()),
      cancel_token_(clock_),
      q_mu_(shared_mu ? shared_mu : &own_mu_),
      work_cv_(shared_work_cv ? shared_work_cv : &own_work_cv_) {
  // With several workers available the parallelism comes from concurrent
  // batches: each batch runs serially inside.  An explicit bsw_threads
  // request is still honoured.  With one worker, behave exactly like the
  // one-shot driver.
  if (pool_size > 1) worker_options_.threads = 1;
}

void SessionCore::fail(Status st) {
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (status_.ok()) status_ = std::move(st);
  }
  failed_.store(true, std::memory_order_release);
  q_not_full_.notify_all();
}

void SessionCore::cancel(Status reason) {
  // Order matters: the sticky status must be set before the token fires so
  // a checkpoint-aborted worker that calls fail(from_exception) can never
  // overwrite the cancel reason with the generic cancelled_error mapping.
  fail(reason);
  cancel_token_.cancel(std::move(reason));
  util::trace_instant("cancel", trace_id_);
}

Status SessionCore::snapshot_status() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return status_;
}

DriverStats SessionCore::stats_snapshot() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return stats_;
}

StreamMetrics SessionCore::metrics_snapshot() const {
  StreamMetrics m;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    m = metrics_;
  }
  m.queue_hwm = queue_hwm_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(emit_mu_);
    m.records = records_written_;
  }
  return m;
}

Status SessionCore::enqueue(SessionWorkItem item) {
  std::unique_lock<std::mutex> lk(*q_mu_);
  q_not_full_.wait(lk, [&] {
    return static_cast<int>(queue_.size()) < options_.queue_depth ||
           failed_.load(std::memory_order_acquire);
  });
  if (failed_.load(std::memory_order_acquire)) return snapshot_status();
  item.seq = next_seq_++;
  item.enqueued = clock_->now();
  item.enqueued_tsc = util::tsc_now();
  queue_.push_back(std::move(item));
  if (queue_.size() > queue_hwm_.load(std::memory_order_relaxed))
    queue_hwm_.store(queue_.size(), std::memory_order_relaxed);
  lk.unlock();
  work_cv_->notify_one();
  return Status();
}

Status SessionCore::enqueue_owned(std::vector<seq::Read> reads) {
  SessionWorkItem item;
  item.owned = std::move(reads);
  item.reads = item.owned;
  return enqueue(std::move(item));
}

Status SessionCore::ingest(std::vector<seq::Read>&& chunk) {
  const auto batch = static_cast<std::size_t>(options_.batch_size);
  if (staging_.capacity() < batch) staging_.reserve(batch);
  for (auto& r : chunk) {
    staging_.push_back(std::move(r));
    if (staging_.size() == batch) {
      std::vector<seq::Read> full;
      full.reserve(batch);
      full.swap(staging_);
      if (Status st = enqueue_owned(std::move(full)); !st.ok()) return st;
    }
  }
  return Status();
}

Status SessionCore::run_calibration() {
  try {
    const std::size_t n_pairs = std::min<std::size_t>(
        static_cast<std::size_t>(options_.pe.stat_pairs), calib_.size() / 2);
    if (n_pairs > 0) {
      DriverOptions copt = options_;
      copt.paired = false;
      BatchWorkspace cws;
      std::vector<std::vector<AlnReg>> regs;
      collect_regions(index_, std::span(calib_.data(), 2 * n_pairs), copt, cws,
                      regs);
      std::vector<pair::InsertSample> samples;
      samples.reserve(n_pairs);
      for (std::size_t p = 0; p < n_pairs; ++p) {
        pair::InsertSample s;
        if (pair::pair_sample(options_.mem, options_.pe, index_.l_pac(),
                              regs[2 * p], regs[2 * p + 1], &s))
          samples.push_back(s);
      }
      pe_stats_ = pair::estimate_insert_stats(samples, options_.pe);
    }
  } catch (const std::exception& e) {
    fail(Status::from_exception(e).with_context(
        "calibration", calib_.empty() ? std::string() : calib_.front().name));
    return snapshot_status();
  }
  pe_ready_ = true;
  std::vector<seq::Read> buffered;
  buffered.swap(calib_);
  return ingest(std::move(buffered));
}

Status SessionCore::submit_owned(std::vector<seq::Read> chunk) {
  // `failed_` is set (release) only after `status_` is written under
  // state_mu_, so it is the lock-free guard for the sticky error.
  if (failed_.load(std::memory_order_acquire)) return snapshot_status();

  reads_submitted_ += chunk.size();
  if (options_.paired && !pe_ready_) {
    // Buffer until the calibration prefix is complete; nothing reaches the
    // workers before the insert-size prior is fixed.
    for (auto& r : chunk) calib_.push_back(std::move(r));
    if (calib_.size() >= 2 * static_cast<std::size_t>(options_.pe.stat_pairs))
      return run_calibration();
    return Status();
  }
  return ingest(std::move(chunk));
}

Status SessionCore::submit_view(std::span<const seq::Read> chunk) {
  if (failed_.load(std::memory_order_acquire)) return snapshot_status();

  reads_submitted_ += chunk.size();
  if (options_.paired && !pe_ready_) {
    // Calibration buffers by copy; zero-copy resumes once the prior is set.
    calib_.insert(calib_.end(), chunk.begin(), chunk.end());
    if (calib_.size() >= 2 * static_cast<std::size_t>(options_.pe.stat_pairs))
      return run_calibration();
    return Status();
  }
  const auto batch = static_cast<std::size_t>(options_.batch_size);

  // Top up a partially staged batch first (copying) to preserve order.
  while (!staging_.empty() && !chunk.empty()) {
    staging_.push_back(chunk.front());
    chunk = chunk.subspan(1);
    if (staging_.size() == batch) {
      std::vector<seq::Read> full;
      full.reserve(batch);
      full.swap(staging_);
      if (Status st = enqueue_owned(std::move(full)); !st.ok()) return st;
    }
  }
  // Full batches go in as views of the caller's memory — no copy.
  while (chunk.size() >= batch) {
    SessionWorkItem item;
    item.reads = chunk.first(batch);
    chunk = chunk.subspan(batch);
    if (Status st = enqueue(std::move(item)); !st.ok()) return st;
  }
  // Stage the tail (< batch_size) until more reads arrive or close().
  if (!chunk.empty()) {
    if (staging_.capacity() < batch) staging_.reserve(batch);
    staging_.insert(staging_.end(), chunk.begin(), chunk.end());
  }
  return Status();
}

void SessionCore::close() {
  if (options_.paired && !failed_.load(std::memory_order_acquire)) {
    if (reads_submitted_ % 2 != 0)
      fail(Status::invalid(
          "paired input requires an even number of reads (adjacent R1/R2 mates)"));
    else if (!pe_ready_)
      run_calibration();  // short input: calibrate on what we have
  }
  if (!failed_.load(std::memory_order_acquire) && !staging_.empty())
    enqueue_owned(std::move(staging_));
  staging_.clear();
  calib_.clear();

  {
    std::lock_guard<std::mutex> lk(*q_mu_);
    closed_ = true;
  }
  work_cv_->notify_all();
}

void SessionCore::wait_drained() {
  std::unique_lock<std::mutex> lk(*q_mu_);
  drained_cv_.wait(lk, [&] { return queue_.empty() && in_flight_ == 0; });
}

void SessionCore::finalize() {
  stats_.reads += reads_submitted_;
  if (!failed_.load(std::memory_order_acquire)) {
    try {
      sink_.flush();
    } catch (const std::exception& e) {
      fail(Status::from_exception(e).with_context("sam-flush"));
    } catch (...) {
      fail(Status::internal("unknown error flushing SAM output")
               .with_context("sam-flush"));
    }
  }
}

SessionWorkItem SessionCore::pop_locked() {
  SessionWorkItem item = std::move(queue_.front());
  queue_.pop_front();
  ++in_flight_;
  cancel_token_.beat();  // the watchdog's "work started" heartbeat
  q_not_full_.notify_one();
  return item;
}

void SessionCore::retire_locked() {
  --in_flight_;
  if (queue_.empty() && in_flight_ == 0) drained_cv_.notify_all();
}

void SessionCore::process(SessionWorkItem item, BatchWorkspace& workspace) {
  // All spans this batch emits (including those from OpenMP threads the
  // pipeline re-seeds) land in this stream's Chrome lane.
  util::TraceStreamScope trace_scope(trace_id_);
  const double queue_wait =
      std::chrono::duration<double>(clock_->now() - item.enqueued).count();
  util::trace_interval("queue-wait", item.enqueued_tsc, util::tsc_now(),
                       trace_id_);
  if (!failed_.load(std::memory_order_acquire)) {
    util::TraceSpan batch_span("batch");
    const std::string first_read =
        item.reads.empty() ? std::string() : item.reads.front().name;
    std::vector<io::SamRecord> flat;
    DriverStats batch_stats;
    bool aligned = false;
    try {
      if (util::fault_point("align.worker"))
        throw invariant_error("injected fault: align.worker");
      if (util::fault_point("align.worker.stall")) {
        // Models a wedged batch: block until the session is cancelled (by
        // Stream::cancel(), the serve watchdog, or shutdown), then abort
        // cooperatively — the stall stays cancellable, never un-joinable.
        cancel_token_.wait_cancelled();
        throw cancelled_error("injected stall: align.worker.stall");
      }
      std::vector<std::vector<io::SamRecord>> per_read;
      align_chunk(index_, item.reads, worker_options_,
                  options_.paired ? &pe_stats_ : nullptr, workspace, per_read,
                  &batch_stats, &cancel_token_);

      std::size_t total = 0;
      for (const auto& v : per_read) total += v.size();
      flat.reserve(total);
      for (auto& v : per_read)
        for (auto& rec : v) flat.push_back(std::move(rec));
      aligned = true;
    } catch (const std::exception& e) {
      fail(Status::from_exception(e).with_context(
          "align-worker batch " + std::to_string(item.seq), first_read));
    } catch (...) {
      fail(Status::internal("unknown error in alignment worker")
               .with_context("align-worker batch " + std::to_string(item.seq),
                             first_read));
    }

    std::uint64_t write_retries = 0;
    if (aligned) {
      try {
        // Ordered emit: park the batch, then drain every consecutive
        // ready batch starting at next_emit_.  A failed batch never parks,
        // so output stays at a batch boundary behind the failure point.
        std::lock_guard<std::mutex> lk(emit_mu_);
        pending_.emplace(item.seq, std::move(flat));
        for (auto it = pending_.find(next_emit_); it != pending_.end();
             it = pending_.find(next_emit_)) {
          if (!failed_.load(std::memory_order_acquire)) {
            const std::size_t n = it->second.size();
            // Transient write failures (io_error only) are re-driven with
            // bounded backoff when the policy and the sink allow it; the
            // sink rewrites its retained batch buffer, so a retried batch
            // reaches the output exactly once.  Exhausted retries rethrow
            // the last io_error into the sam-emit failure path below.
            util::RetryPolicy policy = options_.sink_retry;
            if (!sink_.can_retry_writes()) policy.max_attempts = 1;
            auto& sink = sink_;
            auto& records = it->second;
            util::TraceSpan write_span("sink-write");
            const int attempts = util::with_retry(
                policy,
                [&](int attempt) {
                  if (attempt == 1)
                    sink.write_records(std::move(records));
                  else {
                    util::trace_instant("sink-retry", trace_id_);
                    sink.retry_write();
                  }
                },
                [](const std::exception& e) {
                  return dynamic_cast<const io_error*>(&e) != nullptr;
                });
            write_span.finish();
            write_retries += static_cast<std::uint64_t>(attempts - 1);
            records_written_ += n;
          }
          pending_.erase(it);
          ++next_emit_;
        }
      } catch (const std::exception& e) {
        fail(Status::from_exception(e).with_context("sam-emit", first_read));
      } catch (...) {
        fail(Status::internal("unknown error writing SAM output")
                 .with_context("sam-emit", first_read));
      }
    }

    const double latency =
        std::chrono::duration<double>(clock_->now() - item.enqueued).count();
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      stats_ += batch_stats;
      ++metrics_.batches;
      metrics_.write_retries += write_retries;
      metrics_.batch_latency.record(latency);
      metrics_.queue_wait.record(queue_wait);
      for (std::size_t s = 0; s < StreamMetrics::kStages; ++s) {
        const double sec = batch_stats.stages.seconds[s];
        if (sec > 0) metrics_.stage_seconds[s].record(sec);
      }
    }
  }

  std::lock_guard<std::mutex> lk(*q_mu_);
  retire_locked();
}

}  // namespace mem2::align
