// Streaming Aligner session API — the library's front door.
//
// An Aligner is constructed once per (index, options) pair; option
// validation happens eagerly here and is reported as a Status instead of a
// mid-run throw.  open() starts a bounded-memory pipelined session:
//
//   submit(chunk) ─► [bounded batch queue] ─► worker pool ─► ordered writer ─► SamSink
//                     back-pressure           one persistent    emits batches
//                     (queue_depth)           BatchWorkspace    in read order
//                                             per worker
//
// submit() carves incoming reads into batch_size batches and blocks once
// queue_depth batches are waiting, so at most
// (queue_depth + workers) × batch_size reads (plus their SAM records) are
// resident regardless of input size — feed it from io::FastqStream and a
// whole flow-cell streams through a fixed footprint.  Workers run the
// existing batch stages (driver.h) over chunks; completed batches pass
// through a reorder buffer so records reach the sink in read order.  Output
// is byte-identical to align_reads() for any chunking, queue depth and
// worker count (tests/test_stream_api.cpp).
//
// Paired mode (options.paired): submit() takes mates adjacent (R1, R2, R1,
// R2, ...).  The session first buffers a calibration prefix (the first
// options.pe.stat_pairs pairs), aligns it single-end on the producer
// thread to estimate the insert-size distribution, then releases the
// prefix and everything after it to the workers, which score pairs and run
// mate rescue per batch against that fixed prior.  Because the prior
// depends only on submission order — never on chunking, batching or thread
// count — paired output keeps the same determinism guarantees as
// single-end.  batch_size must be even so mates never split across
// batches, and the ordered writer keeps each pair's records adjacent.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "align/driver.h"
#include "align/sam_sink.h"
#include "align/session.h"
#include "align/status.h"

namespace mem2::align {

/// One in-flight streaming session.  Move-only; created by Aligner::open().
/// Not thread-safe: one producer thread drives submit()/finish() (the
/// internal worker pool supplies the parallelism).
class Stream {
 public:
  Stream(Stream&&) noexcept;
  Stream& operator=(Stream&&) noexcept;
  /// Implicitly finishes; call finish() explicitly to observe errors.
  ~Stream();

  /// Enqueue a chunk of reads (any size — batches are carved internally).
  /// Blocks when the pipeline is full (back-pressure).  Returns the sticky
  /// session status: once an error occurs, every later call reports it.
  Status submit(std::vector<seq::Read> chunk);

  /// Zero-copy variant: full batches are enqueued as views into the
  /// caller's memory, so the reads must stay alive and unmodified until
  /// finish() returns.  Only a trailing partial batch is copied (staged
  /// until more reads arrive).  Used by Aligner::align().
  Status submit(std::span<const seq::Read> chunk);

  /// Flush the final partial batch, drain the pipeline, join the workers
  /// and flush the sink.  Idempotent; returns the final session status.
  Status finish();

  /// Cooperatively cancel the session: the sticky status becomes kCancelled,
  /// a submit() blocked on back-pressure returns immediately, queued batches
  /// are discarded, and the in-flight batch aborts at its next stage
  /// boundary — so the sink is left at a batch boundary (the SAM written so
  /// far is a byte-identical prefix of the full run).  Safe from any thread,
  /// idempotent; call finish() afterwards to join the workers as usual.
  void cancel();

  /// Current session status (sticky first error).
  Status status() const;

  /// Aggregated driver stats across all workers; complete after finish().
  const DriverStats& stats() const;

  /// Paired mode: the session's insert-size distribution, estimated once
  /// from the first options.pe.stat_pairs pairs in submission order (or at
  /// finish() for shorter inputs).  Zero-valued (all classes failed) until
  /// calibration has run; stable afterwards.
  const pair::InsertStats& pair_stats() const;

  /// Observability snapshot: batches/records processed so far, queue-depth
  /// high-water mark and batch-latency quantiles.  Thread-safe; callable
  /// mid-stream.
  StreamMetrics metrics() const;

 private:
  friend class Aligner;
  struct Impl;
  explicit Stream(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// A validated (index, options) session factory.  Construction never
/// throws: check ok()/status() before use; open()/align() on a failed
/// Aligner return streams/statuses carrying the construction error.
class Aligner {
 public:
  Aligner(const index::Mem2Index& index, DriverOptions options);

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const DriverOptions& options() const { return options_; }
  const index::Mem2Index& index() const { return index_; }

  /// The @PG-bearing SAM header this session emits.
  std::string sam_header() const;

  /// Open a streaming session writing to `sink`.  Writes the header
  /// immediately, then spawns options.effective_workers() workers.  The
  /// sink must outlive the stream.
  Stream open(SamSink& sink) const;

  /// One-shot convenience: open -> submit(reads) -> finish.
  Status align(const std::vector<seq::Read>& reads, SamSink& sink,
               DriverStats* stats = nullptr) const;

 private:
  const index::Mem2Index& index_;
  DriverOptions options_;
  Status status_;
};

}  // namespace mem2::align
