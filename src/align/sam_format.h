// SAM-FORM stage: convert alignment regions to SAM records
// (bwa mem_reg2aln + mem_aln2sam, single-end).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "align/extend.h"
#include "io/sam.h"
#include "seq/read_sim.h"

namespace mem2::align {

/// Convert one read's post-processed regions into SAM records.  Emits the
/// best region as the primary record, other non-secondary regions as
/// supplementary (0x800), and (optionally) secondaries (0x100).  Regions
/// scoring below opt.min_out_score are suppressed; a read with no survivor
/// gets one unmapped record.  Soft clips are used throughout (bwa hard-clips
/// supplementaries by default; we document this deviation in DESIGN.md).
std::vector<io::SamRecord> regions_to_sam(const ExtendContext& ctx,
                                          const seq::Read& read,
                                          std::span<const AlnReg> regs);

/// A region fixed into a concrete alignment (bwa mem_aln_t): contig-local
/// position, strand, CIGAR and edit distance.  Shared between the
/// single-end formatter and the paired-end emitter (src/pair/).
struct SamAln {
  int rid = -1;
  idx_t pos = 0;  // 0-based within contig
  bool rev = false;
  bsw::Cigar cigar;          // without clips
  int clip5 = 0, clip3 = 0;  // query-order soft clips (after strand flip)
  int score = 0;
  int nm = 0;
  int mapq = 0;

  /// Reference bases consumed (M+D) — the span SAM TLEN arithmetic needs.
  idx_t ref_len() const;
};

/// bwa mem_reg2aln: fix the region endpoints into a concrete alignment
/// (global re-alignment with an inferred band produces the CIGAR).
SamAln region_to_aln(const ExtendContext& ctx, const AlnReg& reg);

/// CIGAR string with the soft clips attached.
std::string cigar_with_clips(const SamAln& aln);

/// The record emitted for a read with no surviving region.
io::SamRecord unmapped_record(const seq::Read& read);

/// Fill SEQ/QUAL (strand-oriented) of a mapped record.
void fill_seq_qual(const seq::Read& read, bool rev, io::SamRecord& rec);

/// NM (edit distance) of an alignment path: walks the CIGAR comparing
/// query and target codes; exposed for tests.
int edit_distance(const bsw::Cigar& cigar, const seq::Code* query,
                  const seq::Code* target);

}  // namespace mem2::align
