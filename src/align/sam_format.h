// SAM-FORM stage: convert alignment regions to SAM records
// (bwa mem_reg2aln + mem_aln2sam, single-end).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "align/extend.h"
#include "io/sam.h"
#include "seq/read_sim.h"

namespace mem2::align {

/// Convert one read's post-processed regions into SAM records.  Emits the
/// best region as the primary record, other non-secondary regions as
/// supplementary (0x800), and (optionally) secondaries (0x100).  Regions
/// scoring below opt.min_out_score are suppressed; a read with no survivor
/// gets one unmapped record.  Soft clips are used throughout (bwa hard-clips
/// supplementaries by default; we document this deviation in DESIGN.md).
std::vector<io::SamRecord> regions_to_sam(const ExtendContext& ctx,
                                          const seq::Read& read,
                                          std::span<const AlnReg> regs);

/// NM (edit distance) of an alignment path: walks the CIGAR comparing
/// query and target codes; exposed for tests.
int edit_distance(const bsw::Cigar& cigar, const seq::Code* query,
                  const seq::Code* target);

}  // namespace mem2::align
