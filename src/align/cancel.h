// Cooperative cancellation for streaming sessions.
//
// One CancelToken lives inside each SessionCore.  Cancellation is
// level-triggered and carries a reason Status (kCancelled from
// Stream::cancel(), kDeadlineExceeded from the serve watchdog / shutdown):
// the canceller sets the token *and* the session's sticky Status, which
// unblocks a producer parked in submit() and makes workers skip queued
// batches.  The token's own job is the in-flight batch: pipeline_batch.cpp
// calls checkpoint() at stage boundaries, which doubles as the watchdog's
// progress heartbeat and throws cancelled_error once the token is set — so
// a long batch aborts within one stage instead of running to completion,
// and the ordered writer (which never parks a failed batch) keeps the sink
// at a batch boundary.
//
// Heartbeats are monotonic-clock timestamps through the injectable
// util::Clock, so watchdog tests drive "the batch stalled" with a FakeClock
// instead of real sleeps.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <utility>

#include "align/status.h"
#include "util/clock.h"

namespace mem2::align {

class CancelToken {
 public:
  explicit CancelToken(util::Clock* clock = nullptr)
      : clock_(clock ? clock : &util::Clock::real()) {
    beat();
  }

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// First reason wins; wakes anyone parked in wait_cancelled().
  void cancel(Status reason) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!cancelled_.load(std::memory_order_relaxed))
        reason_ = std::move(reason);
      cancelled_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
  }

  /// The cancel reason; a generic kCancelled when not (yet) cancelled.
  Status reason() const {
    std::lock_guard<std::mutex> lk(mu_);
    return cancelled_.load(std::memory_order_relaxed)
               ? reason_
               : Status::cancelled("not cancelled");
  }

  /// Record batch progress (the watchdog's liveness signal).
  void beat() {
    last_beat_ns_.store(clock_->now().time_since_epoch().count(),
                        std::memory_order_release);
  }

  util::Clock::time_point last_beat() const {
    return util::Clock::time_point(std::chrono::steady_clock::duration(
        last_beat_ns_.load(std::memory_order_acquire)));
  }

  /// Stage-boundary check: heartbeat, then abort the batch if cancelled.
  void checkpoint() {
    beat();
    if (MEM2_UNLIKELY(cancelled())) throw cancelled_error("batch cancelled");
  }

  /// Block until cancelled — used by the injected align.worker.stall fault
  /// to model a wedged batch that stays cancellable.
  void wait_cancelled() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return cancelled_.load(std::memory_order_acquire); });
  }

 private:
  util::Clock* clock_;
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> last_beat_ns_{0};
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Status reason_;
};

}  // namespace mem2::align
