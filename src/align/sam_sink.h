// SAM output sinks for the streaming session API (aligner.h).
//
// The Stream's ordered reassembly writer serializes all sink calls under
// one lock, in read order: write_header() once at open(), then
// write_record() per record, then flush() at finish().  Implementations
// therefore do not need to be thread-safe; they do need to be cheap, since
// they run inside the emit critical section.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "io/sam.h"
#include "util/common.h"
#include "util/fault_injector.h"

namespace mem2::align {

class SamSink {
 public:
  virtual ~SamSink() = default;
  virtual void write_header(const std::string& header) = 0;
  virtual void write_record(const io::SamRecord& record) = 0;
  /// Bulk hook the ordered writer uses per retired batch; the records are
  /// dead after the call, so collecting sinks may steal instead of copy.
  virtual void write_records(std::vector<io::SamRecord>&& records) {
    for (const auto& rec : records) write_record(rec);
  }
  virtual void flush() {}

  /// Transient-failure support for the session's retry policy
  /// (DriverOptions::sink_retry).  A sink that can re-drive its last failed
  /// bulk write — atomically, from a retained buffer — returns true here
  /// and implements retry_write(); the session then retries a failed
  /// write_records() with bounded backoff instead of failing the stream.
  virtual bool can_retry_writes() const { return false; }
  /// Re-attempt the last failed write_records() batch; throws (the same
  /// error family as write_records) if the attempt fails again.  Only
  /// called after write_records() threw and can_retry_writes() is true.
  virtual void retry_write() {}
};

/// Formats records as SAM text lines onto an ostream (e.g. std::cout).
///
/// Every write checks the stream state afterwards and throws io_error on
/// failure, so a full disk or closed pipe surfaces as Status kIoError at
/// the session layer instead of silently truncating the SAM output.  The
/// per-batch bulk write formats the whole batch into one buffer first, so
/// at this API's level a failing batch is all-or-nothing — combined with
/// the ordered writer suppressing output after the first failure, the SAM
/// text always ends at a batch boundary.
class OstreamSamSink final : public SamSink {
 public:
  explicit OstreamSamSink(std::ostream& out) : out_(out) {}

  void write_header(const std::string& header) override {
    out_ << header;
    check();
  }
  void write_record(const io::SamRecord& record) override {
    out_ << record.to_line() << '\n';
    ++records_written_;
    check();
  }
  void write_records(std::vector<io::SamRecord>&& records) override {
    buf_.clear();
    for (const auto& rec : records) {
      buf_ += rec.to_line();
      buf_ += '\n';
    }
    buf_records_ = records.size();
    commit_buf();
  }
  void flush() override {
    out_.flush();
    check();
  }

  /// The formatted batch is retained in buf_ across a failed commit, and a
  /// bad stream discards the whole write, so re-driving it after clearing
  /// the error state is atomic at this API's all-or-nothing granularity.
  bool can_retry_writes() const override { return true; }
  void retry_write() override {
    out_.clear();  // drop the failed attempt's badbit/failbit
    commit_buf();
  }

  std::uint64_t records_written() const { return records_written_; }

 private:
  void check() const {
    if (!out_)
      throw io_error(
          "SAM output stream write failed (disk full or closed pipe?)");
  }

  /// Write the retained batch buffer; counts records only on success so a
  /// failed-then-retried batch is never double-counted.
  void commit_buf() {
    if (util::fault_point("sam.write")) out_.setstate(std::ios::badbit);
    out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    check();
    records_written_ += buf_records_;
  }

  std::ostream& out_;
  std::string buf_;  // batch formatting buffer, capacity reused
  std::size_t buf_records_ = 0;
  std::uint64_t records_written_ = 0;
};

/// Collects records in memory — the align_reads() compatibility shim and
/// tests that want structured output rather than text.
class CollectSamSink final : public SamSink {
 public:
  void write_header(const std::string& header) override { header_ = header; }
  void write_record(const io::SamRecord& record) override {
    records_.push_back(record);
  }
  void write_records(std::vector<io::SamRecord>&& records) override {
    if (records_.empty()) {
      records_ = std::move(records);
    } else {
      records_.insert(records_.end(),
                      std::make_move_iterator(records.begin()),
                      std::make_move_iterator(records.end()));
    }
  }

  const std::string& header() const { return header_; }
  const std::vector<io::SamRecord>& records() const { return records_; }
  std::vector<io::SamRecord> take_records() { return std::move(records_); }

 private:
  std::string header_;
  std::vector<io::SamRecord> records_;
};

}  // namespace mem2::align
