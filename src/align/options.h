// Aligner options — the subset of bwa's mem_opt_t our pipeline honours,
// with bwa 0.7.x defaults.
#pragma once

#include <cmath>

#include "align/status.h"
#include "bsw/bsw_batch.h"
#include "bsw/ksw.h"
#include "chain/chain.h"
#include "smem/seeding.h"

namespace mem2::align {

struct MemOptions {
  bsw::KswParams ksw;              // a=1 b=4 o=6 e=1 zdrop=100 end_bonus=5
  smem::SeedingOptions seeding;    // min_seed_len=19, reseeding, round 3
  chain::ChainOptions chaining;    // w=100, max_occ=500, mask_level=.5 ...
  int w = 100;                     // extension band width (bwa -w)
  int max_band_try = 2;            // band-doubling retries (bwa MAX_BAND_TRY)
  int min_out_score = 30;          // bwa -T
  float mask_level_redun = 0.95f;  // dedup overlap threshold
  int mapq_coef_len = 50;
  double mapq_coef_fac = std::log(50.0);
  bool output_secondary = false;   // bwa -a

  /// Maximum gap length extension can bridge for a flank of length qlen
  /// (bwa cal_max_gap).
  int cal_max_gap(int qlen) const {
    const int l_del =
        static_cast<int>((static_cast<double>(qlen) * ksw.a - ksw.o_del) / ksw.e_del + 1.0);
    const int l_ins =
        static_cast<int>((static_cast<double>(qlen) * ksw.a - ksw.o_ins) / ksw.e_ins + 1.0);
    int l = l_del > l_ins ? l_del : l_ins;
    l = l > 1 ? l : 1;
    return l < w * 2 ? l : w * 2;
  }
};

/// Rejects option combinations the pipeline cannot honour.  Returns the
/// first problem found; validated exactly once per session, at Aligner
/// construction (the align_reads shim inherits that check).
Status validate_options(const MemOptions& opt);

}  // namespace mem2::align
