// Rich, non-throwing error reporting for the session API (aligner.h).
//
// Construction-time validation and streaming-time failures surface as a
// Status instead of an exception, so a server embedding the aligner can
// reject a bad configuration per-session without unwinding.  The legacy
// align_reads() shim converts a non-ok Status back into invariant_error.
#pragma once

#include <string>
#include <utility>

namespace mem2::align {

class Status {
 public:
  /// Default-constructed Status is success.
  Status() = default;

  static Status invalid(std::string message) { return Status(std::move(message)); }

  bool ok() const { return message_.empty(); }
  explicit operator bool() const { return ok(); }

  /// Empty for success; the first failure description otherwise.
  const std::string& message() const { return message_; }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}
  std::string message_;
};

}  // namespace mem2::align
