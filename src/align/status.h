// Rich, non-throwing error reporting for the session API (aligner.h).
//
// Construction-time validation and streaming-time failures surface as a
// Status instead of an exception, so a server embedding the aligner can
// reject a bad configuration per-session without unwinding.  A Status
// carries a machine-checkable ErrorCode (so callers can choose exit codes
// or retry policies without parsing messages) plus the pipeline context of
// the first failure: the stage that recorded it and, when known, the name
// of the first read of the failing batch.  The legacy align_reads() shim
// converts a non-ok Status back into the matching exception type.
#pragma once

#include <string>
#include <utility>

#include "util/common.h"

namespace mem2::align {

/// Failure classification for session errors.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,  // bad options / misuse of the API (caller error)
  kIoError,          // the outside world failed: unreadable input, full disk
  kDataCorruption,   // persisted data failed integrity validation
  kInternal,         // an invariant broke inside the pipeline
  kResourceExhausted,  // admission denied: service at capacity, retry later
  kDeadlineExceeded,   // a time budget expired (watchdog stall, shutdown grace)
  kCancelled,          // the caller (or service lifecycle) cancelled the work
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kIoError: return "io-error";
    case ErrorCode::kDataCorruption: return "data-corruption";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kResourceExhausted: return "resource-exhausted";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kCancelled: return "cancelled";
  }
  return "unknown";
}

class Status {
 public:
  /// Default-constructed Status is success.
  Status() = default;

  static Status invalid(std::string message) {
    return Status(ErrorCode::kInvalidArgument, std::move(message));
  }
  static Status io(std::string message) {
    return Status(ErrorCode::kIoError, std::move(message));
  }
  static Status corruption(std::string message) {
    return Status(ErrorCode::kDataCorruption, std::move(message));
  }
  static Status internal(std::string message) {
    return Status(ErrorCode::kInternal, std::move(message));
  }
  static Status resource_exhausted(std::string message) {
    return Status(ErrorCode::kResourceExhausted, std::move(message));
  }
  static Status deadline_exceeded(std::string message) {
    return Status(ErrorCode::kDeadlineExceeded, std::move(message));
  }
  static Status cancelled(std::string message) {
    return Status(ErrorCode::kCancelled, std::move(message));
  }

  /// Classify a caught exception by its concrete type: io_error -> kIoError,
  /// corruption_error -> kDataCorruption, cancelled_error -> kCancelled,
  /// std::invalid_argument -> kInvalidArgument, everything else (incl.
  /// invariant_error) -> kInternal.
  static Status from_exception(const std::exception& e) {
    if (dynamic_cast<const io_error*>(&e)) return io(e.what());
    if (dynamic_cast<const corruption_error*>(&e)) return corruption(e.what());
    if (dynamic_cast<const cancelled_error*>(&e)) return cancelled(e.what());
    if (dynamic_cast<const std::invalid_argument*>(&e)) return invalid(e.what());
    return internal(e.what());
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return ok(); }

  ErrorCode code() const { return code_; }

  /// Empty for success; the first failure description otherwise.
  const std::string& message() const { return message_; }

  /// Pipeline stage that recorded the failure (e.g. "align-worker",
  /// "sam-emit", "calibration"); empty when not a pipeline error.
  const std::string& stage() const { return stage_; }

  /// Name of the first read of the failing batch, when known.
  const std::string& read() const { return read_; }

  /// Attach pipeline context; returns *this for chaining at the fail site.
  Status& with_context(std::string stage, std::string read = {}) {
    stage_ = std::move(stage);
    read_ = std::move(read);
    return *this;
  }

  /// One-line rendering: "[io-error] stage=sam-emit read=r17: disk full".
  std::string to_string() const {
    if (ok()) return "ok";
    std::string s = "[";
    s += error_code_name(code_);
    s += ']';
    if (!stage_.empty()) s += " stage=" + stage_;
    if (!read_.empty()) s += " read=" + read_;
    s += ": ";
    s += message_;
    return s;
  }

 private:
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    if (message_.empty()) message_ = error_code_name(code_);
  }
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
  std::string stage_;
  std::string read_;
};

/// Convert a non-ok Status back into the exception family it came from —
/// the inverse of Status::from_exception, used by throwing compatibility
/// shims (align_reads).
[[noreturn]] inline void throw_status(const Status& status) {
  switch (status.code()) {
    case ErrorCode::kIoError: throw io_error(status.to_string());
    case ErrorCode::kDataCorruption: throw corruption_error(status.to_string());
    case ErrorCode::kCancelled: throw cancelled_error(status.to_string());
    default: throw invariant_error(status.to_string());
  }
}

}  // namespace mem2::align
