// Streaming session front door: a dedicated worker pool per Stream over a
// shared SessionCore (session.h), which owns the bounded batch queue,
// back-pressure, paired calibration, ordered reassembly and the sticky
// Status.  serve::AlignService drives the same core from a global pool —
// the concurrency design lives in session.cpp; this file only supplies the
// threads and the public Stream/Aligner surface.
//
// Output is byte-identical to the one-shot path because batch results are
// independent of chunking (batch-size and thread-count invariance of the
// drivers, enforced by tests/test_pipeline.cpp).
#include "align/aligner.h"

#include <memory>
#include <thread>

#include "align/session.h"

namespace mem2::align {

struct Stream::Impl {
  Impl(const index::Mem2Index& index, const DriverOptions& options,
       SamSink& sink, int pool_size)
      : core(std::make_shared<SessionCore>(index, options, sink, pool_size)) {}

  std::shared_ptr<SessionCore> core;
  std::vector<std::thread> workers;
  bool finished = false;

  void worker_main() {
    BatchWorkspace workspace;
    for (;;) {
      SessionWorkItem item;
      {
        std::unique_lock<std::mutex> lk(core->mu());
        core->work_cv().wait(lk, [&] {
          return core->has_work_locked() || core->closed_locked();
        });
        if (!core->has_work_locked()) break;
        item = core->pop_locked();
      }
      core->process(std::move(item), workspace);
    }
  }
};

Stream::Stream(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Stream::Stream(Stream&&) noexcept = default;
Stream& Stream::operator=(Stream&&) noexcept = default;

Stream::~Stream() {
  if (impl_ && !impl_->finished) finish();
}

Status Stream::submit(std::vector<seq::Read> chunk) {
  if (impl_->finished) return Status::invalid("submit() after finish()");
  return impl_->core->submit_owned(std::move(chunk));
}

Status Stream::submit(std::span<const seq::Read> chunk) {
  if (impl_->finished) return Status::invalid("submit() after finish()");
  return impl_->core->submit_view(chunk);
}

Status Stream::finish() {
  Impl& im = *impl_;
  if (im.finished) return im.core->snapshot_status();
  im.finished = true;

  im.core->close();
  for (auto& t : im.workers)
    if (t.joinable()) t.join();
  im.workers.clear();
  im.core->wait_drained();
  im.core->finalize();
  return im.core->snapshot_status();
}

void Stream::cancel() {
  impl_->core->cancel(
      Status::cancelled("stream cancelled by caller").with_context("cancel"));
}

Status Stream::status() const { return impl_->core->snapshot_status(); }

const DriverStats& Stream::stats() const { return impl_->core->stats(); }

const pair::InsertStats& Stream::pair_stats() const {
  return impl_->core->pair_stats();
}

StreamMetrics Stream::metrics() const { return impl_->core->metrics_snapshot(); }

Aligner::Aligner(const index::Mem2Index& index, DriverOptions options)
    : index_(index), options_(options) {
  status_ = validate_session(index_, options_);
}

std::string Aligner::sam_header() const { return sam_header_for(index_, options_); }

Stream Aligner::open(SamSink& sink) const {
  const int workers = options_.effective_workers();
  auto impl = std::make_unique<Stream::Impl>(index_, options_, sink, workers);
  if (status_.ok()) {
    sink.write_header(sam_header());
    impl->workers.reserve(static_cast<std::size_t>(workers));
    Stream::Impl& im = *impl;
    for (int w = 0; w < workers; ++w)
      impl->workers.emplace_back([&im] { im.worker_main(); });
  } else {
    impl->core->fail(status_);
  }
  return Stream(std::move(impl));
}

Status Aligner::align(const std::vector<seq::Read>& reads, SamSink& sink,
                      DriverStats* stats) const {
  Stream stream = open(sink);
  // Zero-copy: `reads` outlives finish() below, so views are safe.
  const Status submitted = stream.submit(std::span<const seq::Read>(reads));
  const Status finished = stream.finish();
  if (stats) *stats += stream.stats();
  return submitted.ok() ? finished : submitted;
}

}  // namespace mem2::align
