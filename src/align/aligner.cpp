// Streaming session implementation: bounded batch queue with back-pressure,
// worker pool over persistent BatchWorkspaces, ordered reassembly writer.
//
// Concurrency design:
//   - submit() (producer thread) carves reads into batch_size batches and
//     enqueues them; the queue holds at most queue_depth batches, so the
//     producer blocks instead of buffering unbounded input.
//   - Each worker pops one batch, runs the whole batched pipeline on it via
//     align_chunk() with its own BatchWorkspace (allocation-free in steady
//     state), then inserts the flattened records into a reorder buffer
//     keyed by batch sequence number.  Whichever worker completes the
//     next-in-order batch drains the buffer to the sink under emit_mu_, so
//     records always reach the sink in read order and the buffer never
//     holds more than (queue_depth + workers) batches.
//   - Errors are sticky: the first failure is recorded — as a Status
//     carrying the ErrorCode, failing stage and the first read of the
//     failing batch — wakes any blocked producer, and suppresses all
//     further sink writes; submit()/finish() report it fast.  Workers keep
//     draining the queue after a failure so back-pressure never deadlocks,
//     and because the ordered writer stops at the first missing batch the
//     sink is always left at a batch boundary (no torn records).  A failed
//     Stream stays safe to call (submit/finish return the sticky error)
//     and the Aligner can open() a fresh Stream immediately — failure is
//     per-session, not per-process.
//
// Output is byte-identical to the one-shot path because batch results are
// independent of chunking (batch-size and thread-count invariance of the
// drivers, enforced by tests/test_pipeline.cpp).
#include "align/aligner.h"

#include "pair/pairing.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <map>
#include <mutex>
#include <thread>

#include "util/common.h"
#include "util/fault_injector.h"

namespace mem2::align {

namespace {

struct WorkItem {
  std::uint64_t seq = 0;
  std::vector<seq::Read> owned;        // empty for borrowed (zero-copy) batches
  std::span<const seq::Read> reads;    // the batch to align; views `owned`
                                       // or caller memory (span submit)
};

}  // namespace

struct Stream::Impl {
  Impl(const index::Mem2Index& index, const DriverOptions& options, SamSink& sink)
      : index(index), options(options), sink(sink) {}

  const index::Mem2Index& index;
  const DriverOptions options;
  SamSink& sink;

  // Producer-side state (submit/finish thread only).
  std::vector<seq::Read> staging;
  std::uint64_t next_seq = 0;
  std::uint64_t reads_submitted = 0;
  bool finished = false;

  // Paired-mode calibration (producer thread only until pe_ready; workers
  // read pe_stats only via batches enqueued after it is final, so the
  // queue mutex provides the ordering).
  std::vector<seq::Read> calib;
  pair::InsertStats pe_stats;
  bool pe_ready = false;

  // Bounded batch queue.
  std::mutex q_mu;
  std::condition_variable q_not_full;
  std::condition_variable q_not_empty;
  std::deque<WorkItem> queue;
  bool closed = false;

  // Ordered reassembly.
  std::mutex emit_mu;
  std::map<std::uint64_t, std::vector<io::SamRecord>> pending;
  std::uint64_t next_emit = 0;

  // Sticky error + aggregated stats.
  mutable std::mutex state_mu;
  std::atomic<bool> failed{false};
  Status status;
  DriverStats stats;

  std::vector<std::thread> workers;

  void fail(Status st) {
    {
      std::lock_guard<std::mutex> lk(state_mu);
      if (status.ok()) status = std::move(st);
    }
    failed.store(true, std::memory_order_release);
    q_not_full.notify_all();
  }

  Status snapshot_status() const {
    std::lock_guard<std::mutex> lk(state_mu);
    return status;
  }

  /// Blocks while the queue is full; refuses once the session has failed.
  Status enqueue(WorkItem item) {
    std::unique_lock<std::mutex> lk(q_mu);
    q_not_full.wait(lk, [&] {
      return static_cast<int>(queue.size()) < options.queue_depth ||
             failed.load(std::memory_order_acquire);
    });
    if (failed.load(std::memory_order_acquire)) return snapshot_status();
    item.seq = next_seq++;
    queue.push_back(std::move(item));
    lk.unlock();
    q_not_empty.notify_one();
    return Status();
  }

  Status enqueue_owned(std::vector<seq::Read> reads) {
    WorkItem item;
    item.owned = std::move(reads);
    item.reads = item.owned;
    return enqueue(std::move(item));
  }

  /// Carve owned reads into staging/batches (the copying ingest path).
  Status ingest(std::vector<seq::Read>&& chunk) {
    const auto batch = static_cast<std::size_t>(options.batch_size);
    if (staging.capacity() < batch) staging.reserve(batch);
    for (auto& r : chunk) {
      staging.push_back(std::move(r));
      if (staging.size() == batch) {
        std::vector<seq::Read> full;
        full.reserve(batch);
        full.swap(staging);
        if (Status st = enqueue_owned(std::move(full)); !st.ok()) return st;
      }
    }
    return Status();
  }

  /// Estimate the insert-size prior from the buffered calibration prefix,
  /// then release the buffered reads into the normal batch flow.  Runs on
  /// the producer thread; deterministic (depends only on submission order).
  Status run_calibration() {
    try {
      const std::size_t n_pairs = std::min<std::size_t>(
          static_cast<std::size_t>(options.pe.stat_pairs), calib.size() / 2);
      if (n_pairs > 0) {
        DriverOptions copt = options;
        copt.paired = false;
        BatchWorkspace cws;
        std::vector<std::vector<AlnReg>> regs;
        collect_regions(index, std::span(calib.data(), 2 * n_pairs), copt, cws,
                        regs);
        std::vector<pair::InsertSample> samples;
        samples.reserve(n_pairs);
        for (std::size_t p = 0; p < n_pairs; ++p) {
          pair::InsertSample s;
          if (pair::pair_sample(options.mem, options.pe, index.l_pac(),
                                regs[2 * p], regs[2 * p + 1], &s))
            samples.push_back(s);
        }
        pe_stats = pair::estimate_insert_stats(samples, options.pe);
      }
    } catch (const std::exception& e) {
      fail(Status::from_exception(e).with_context(
          "calibration", calib.empty() ? std::string() : calib.front().name));
      return snapshot_status();
    }
    pe_ready = true;
    std::vector<seq::Read> buffered;
    buffered.swap(calib);
    return ingest(std::move(buffered));
  }

  void worker_main() {
    BatchWorkspace workspace;
    DriverOptions wopt = options;
    // With several workers the parallelism comes from concurrent batches:
    // each worker runs its batch serially inside.  An explicit bsw_threads
    // request is still honoured.  With one worker, behave exactly like the
    // one-shot driver.
    if (options.effective_workers() > 1) wopt.threads = 1;
    DriverStats local_stats;
    std::vector<std::vector<io::SamRecord>> per_read;

    for (;;) {
      WorkItem item;
      {
        std::unique_lock<std::mutex> lk(q_mu);
        q_not_empty.wait(lk, [&] { return !queue.empty() || closed; });
        if (queue.empty()) break;
        item = std::move(queue.front());
        queue.pop_front();
      }
      q_not_full.notify_one();
      if (failed.load(std::memory_order_acquire)) continue;  // drain only

      const std::string first_read =
          item.reads.empty() ? std::string() : item.reads.front().name;
      std::vector<io::SamRecord> flat;
      bool aligned = false;
      try {
        if (util::fault_point("align.worker"))
          throw invariant_error("injected fault: align.worker");
        per_read.clear();
        align_chunk(index, item.reads, wopt, options.paired ? &pe_stats : nullptr,
                    workspace, per_read, &local_stats);

        std::size_t total = 0;
        for (const auto& v : per_read) total += v.size();
        flat.reserve(total);
        for (auto& v : per_read)
          for (auto& rec : v) flat.push_back(std::move(rec));
        aligned = true;
      } catch (const std::exception& e) {
        fail(Status::from_exception(e).with_context(
            "align-worker batch " + std::to_string(item.seq), first_read));
      } catch (...) {
        fail(Status::internal("unknown error in alignment worker")
                 .with_context("align-worker batch " + std::to_string(item.seq),
                               first_read));
      }
      if (!aligned) continue;  // the batch never parks: output stays at a
                               // batch boundary behind the failure point

      try {
        // Ordered emit: park the batch, then drain every consecutive
        // ready batch starting at next_emit.
        std::lock_guard<std::mutex> lk(emit_mu);
        pending.emplace(item.seq, std::move(flat));
        for (auto it = pending.find(next_emit); it != pending.end();
             it = pending.find(next_emit)) {
          if (!failed.load(std::memory_order_acquire))
            sink.write_records(std::move(it->second));
          pending.erase(it);
          ++next_emit;
        }
      } catch (const std::exception& e) {
        fail(Status::from_exception(e).with_context("sam-emit", first_read));
      } catch (...) {
        fail(Status::internal("unknown error writing SAM output")
                 .with_context("sam-emit", first_read));
      }
    }

    std::lock_guard<std::mutex> lk(state_mu);
    stats += local_stats;
  }
};

Stream::Stream(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Stream::Stream(Stream&&) noexcept = default;
Stream& Stream::operator=(Stream&&) noexcept = default;

Stream::~Stream() {
  if (impl_ && !impl_->finished) finish();
}

Status Stream::submit(std::vector<seq::Read> chunk) {
  Impl& im = *impl_;
  if (im.finished) return Status::invalid("submit() after finish()");
  // `failed` is set (release) only after `status` is written under
  // state_mu, so it is the lock-free guard for the sticky error.
  if (im.failed.load(std::memory_order_acquire)) return im.snapshot_status();

  im.reads_submitted += chunk.size();
  if (im.options.paired && !im.pe_ready) {
    // Buffer until the calibration prefix is complete; nothing reaches the
    // workers before the insert-size prior is fixed.
    for (auto& r : chunk) im.calib.push_back(std::move(r));
    if (im.calib.size() >=
        2 * static_cast<std::size_t>(im.options.pe.stat_pairs))
      return im.run_calibration();
    return Status();
  }
  return im.ingest(std::move(chunk));
}

Status Stream::submit(std::span<const seq::Read> chunk) {
  Impl& im = *impl_;
  if (im.finished) return Status::invalid("submit() after finish()");
  if (im.failed.load(std::memory_order_acquire)) return im.snapshot_status();

  im.reads_submitted += chunk.size();
  if (im.options.paired && !im.pe_ready) {
    // Calibration buffers by copy; zero-copy resumes once the prior is set.
    im.calib.insert(im.calib.end(), chunk.begin(), chunk.end());
    if (im.calib.size() >=
        2 * static_cast<std::size_t>(im.options.pe.stat_pairs))
      return im.run_calibration();
    return Status();
  }
  const auto batch = static_cast<std::size_t>(im.options.batch_size);

  // Top up a partially staged batch first (copying) to preserve order.
  while (!im.staging.empty() && !chunk.empty()) {
    im.staging.push_back(chunk.front());
    chunk = chunk.subspan(1);
    if (im.staging.size() == batch) {
      std::vector<seq::Read> full;
      full.reserve(batch);
      full.swap(im.staging);
      if (Status st = im.enqueue_owned(std::move(full)); !st.ok()) return st;
    }
  }
  // Full batches go in as views of the caller's memory — no copy.
  while (chunk.size() >= batch) {
    WorkItem item;
    item.reads = chunk.first(batch);
    chunk = chunk.subspan(batch);
    if (Status st = im.enqueue(std::move(item)); !st.ok()) return st;
  }
  // Stage the tail (< batch_size) until more reads arrive or finish().
  if (!chunk.empty()) {
    if (im.staging.capacity() < batch) im.staging.reserve(batch);
    im.staging.insert(im.staging.end(), chunk.begin(), chunk.end());
  }
  return Status();
}

Status Stream::finish() {
  Impl& im = *impl_;
  if (im.finished) return im.snapshot_status();
  im.finished = true;

  if (im.options.paired && !im.failed.load(std::memory_order_acquire)) {
    if (im.reads_submitted % 2 != 0)
      im.fail(Status::invalid(
          "paired input requires an even number of reads (adjacent R1/R2 mates)"));
    else if (!im.pe_ready)
      im.run_calibration();  // short input: calibrate on what we have
  }
  if (!im.failed.load(std::memory_order_acquire) && !im.staging.empty())
    im.enqueue_owned(std::move(im.staging));
  im.staging.clear();
  im.calib.clear();

  {
    std::lock_guard<std::mutex> lk(im.q_mu);
    im.closed = true;
  }
  im.q_not_empty.notify_all();
  for (auto& t : im.workers)
    if (t.joinable()) t.join();
  im.workers.clear();

  im.stats.reads += im.reads_submitted;
  if (!im.failed.load(std::memory_order_acquire)) im.sink.flush();
  return im.snapshot_status();
}

Status Stream::status() const { return impl_->snapshot_status(); }

const DriverStats& Stream::stats() const { return impl_->stats; }

const pair::InsertStats& Stream::pair_stats() const { return impl_->pe_stats; }

Aligner::Aligner(const index::Mem2Index& index, DriverOptions options)
    : index_(index), options_(options) {
  status_ = validate_driver_options(options_);
  if (!status_.ok()) return;
  // Index capability checks, surfaced at construction instead of from a
  // worker thread mid-stream.
  if (options_.mode == Mode::kBatch) {
    if (!index.has_cp32())
      status_ = Status::invalid("batch driver needs the CP32 index");
    else if (!index.has_flat_sa())
      status_ = Status::invalid("batch driver needs the flat SA");
  } else if (!index.has_cp128()) {
    status_ = Status::invalid("baseline driver needs the CP128 index");
  }
}

std::string Aligner::sam_header() const { return sam_header_for(index_, options_); }

Stream Aligner::open(SamSink& sink) const {
  auto impl = std::make_unique<Stream::Impl>(index_, options_, sink);
  impl->status = status_;
  if (status_.ok()) {
    sink.write_header(sam_header());
    const int workers = options_.effective_workers();
    impl->workers.reserve(static_cast<std::size_t>(workers));
    Stream::Impl& im = *impl;
    for (int w = 0; w < workers; ++w)
      impl->workers.emplace_back([&im] { im.worker_main(); });
  } else {
    impl->failed.store(true, std::memory_order_release);
  }
  return Stream(std::move(impl));
}

Status Aligner::align(const std::vector<seq::Read>& reads, SamSink& sink,
                      DriverStats* stats) const {
  Stream stream = open(sink);
  // Zero-copy: `reads` outlives finish() below, so views are safe.
  const Status submitted = stream.submit(std::span<const seq::Read>(reads));
  const Status finished = stream.finish();
  if (stats) *stats += stream.stats();
  return submitted.ok() ? finished : submitted;
}

}  // namespace mem2::align
