// Seed extension core (bwa mem_chain2aln) with a pluggable BSW source.
//
// The decision of WHICH seeds to extend depends on the regions produced by
// previously extended seeds of the same read (paper §5.3.2).  The baseline
// driver therefore computes extensions on demand (ScalarSource); the batch
// driver extends *every* seed up front with the SIMD engine and replays the
// same decision logic against the precomputed table (PrecomputedSource) —
// the paper's "extend all, post-process to filter" reorganization, which
// costs ~14% extra extensions but preserves identical output.
//
// process_chains() is the single implementation of the decision logic; the
// two drivers differ only in the SeedExtendSource they plug in, which is
// what makes the identical-output property true by construction.
#pragma once

#include <span>

#include "align/region.h"
#include "index/mem2_index.h"

namespace mem2::align {

/// Reference window of one chain (bwa's rmax + fetched rseq), plus its
/// reversal for left extensions.
struct ChainRef {
  idx_t rmax0 = 0, rmax1 = 0;  // doubled coordinates, [rmax0, rmax1)
  std::vector<seq::Code> rseq;
  std::vector<seq::Code> rseq_rev;  // plain reversal (not complemented)
};

struct ExtendContext {
  const MemOptions& opt;
  const index::Mem2Index& index;
  std::span<const seq::Code> query;      // read codes (0..4)
  std::span<const seq::Code> query_rev;  // plain reversal of query
};

ChainRef make_chain_ref(const ExtendContext& ctx, const chain::Chain& chain);

/// Left/right extension job construction (shared between the on-demand and
/// the batch-enumeration paths so both produce byte-identical jobs).
bsw::ExtendJob make_left_job(const ExtendContext& ctx, const ChainRef& cref,
                             const chain::Seed& s, int band);
bsw::ExtendJob make_right_job(const ExtendContext& ctx, const ChainRef& cref,
                              const chain::Seed& s, int band, int h0);

/// bwa's band-doubling retry test: after a try at band aw returned (score,
/// max_off), retry with a doubled band iff the score changed and the best
/// cell wandered at least 3/4 of the band away from the diagonal.
inline bool band_retry_needed(int score, int prev_score, int max_off, int aw) {
  return !(score == prev_score || max_off < (aw >> 1) + (aw >> 2));
}

/// BSW computation provider.  side: 0 = left, 1 = right.  band_try: 0 or 1
/// (bwa MAX_BAND_TRY = 2).  The job passed is fully specified so table
/// implementations can sanity-check key collisions.
class SeedExtendSource {
 public:
  virtual ~SeedExtendSource() = default;
  virtual bsw::KswResult extend(int chain_idx, int seed_idx, int side,
                                int band_try, const bsw::ExtendJob& job) = 0;
  /// Optional pre-fetched chain window (batch mode reuses phase-A fetches).
  virtual const ChainRef* chain_ref(int chain_idx) {
    (void)chain_idx;
    return nullptr;
  }
};

/// On-demand scalar computation (models original BWA-MEM).
class ScalarSource final : public SeedExtendSource {
 public:
  explicit ScalarSource(const bsw::KswParams& params) : params_(params) {}
  bsw::KswResult extend(int, int, int, int, const bsw::ExtendJob& job) override {
    return bsw::ksw_extend_scalar(job, params_);
  }

 private:
  bsw::KswParams params_;
};

/// Run the full chain-to-region logic for one read.  Appends to `regs`
/// (regions accumulate across chains, as the seed-skip test requires).
void process_chains(const ExtendContext& ctx,
                    std::span<const chain::Chain> chains,
                    SeedExtendSource& source, std::vector<AlnReg>& regs);

}  // namespace mem2::align
