#include "align/extend.h"

#include <algorithm>

namespace mem2::align {

ChainRef make_chain_ref(const ExtendContext& ctx, const chain::Chain& chain) {
  const MemOptions& opt = ctx.opt;
  const idx_t l_pac = ctx.index.l_pac();
  const int l_query = static_cast<int>(ctx.query.size());

  ChainRef cref;
  cref.rmax0 = l_pac * 2;
  cref.rmax1 = 0;
  for (const auto& t : chain.seeds) {
    const idx_t b = t.rbeg - (t.qbeg + opt.cal_max_gap(t.qbeg));
    const idx_t e = t.rbeg + t.len +
                    ((l_query - t.qbeg - t.len) + opt.cal_max_gap(l_query - t.qbeg - t.len));
    cref.rmax0 = std::min(cref.rmax0, b);
    cref.rmax1 = std::max(cref.rmax1, e);
  }
  cref.rmax0 = std::max<idx_t>(cref.rmax0, 0);
  cref.rmax1 = std::min<idx_t>(cref.rmax1, l_pac * 2);
  if (cref.rmax0 < l_pac && l_pac < cref.rmax1) {
    // Crossing the strand boundary: keep the side of the first seed.
    if (chain.seeds.front().rbeg < l_pac)
      cref.rmax1 = l_pac;
    else
      cref.rmax0 = l_pac;
  }
  // Truncate to the contig of the first seed (bns_fetch_seq semantics).
  {
    const idx_t mid = chain.seeds.front().rbeg;
    const bool rev = mid >= l_pac;
    const idx_t fwd_mid = rev ? 2 * l_pac - 1 - mid : mid;
    const auto [rid, off] = ctx.index.ref().locate(fwd_mid);
    (void)off;
    const auto& contig = ctx.index.ref().contigs()[static_cast<std::size_t>(rid)];
    if (!rev) {
      cref.rmax0 = std::max(cref.rmax0, contig.offset);
      cref.rmax1 = std::min(cref.rmax1, contig.offset + contig.length);
    } else {
      cref.rmax0 = std::max(cref.rmax0, 2 * l_pac - (contig.offset + contig.length));
      cref.rmax1 = std::min(cref.rmax1, 2 * l_pac - contig.offset);
    }
  }
  cref.rseq = ctx.index.fetch(cref.rmax0, cref.rmax1);
  cref.rseq_rev.assign(cref.rseq.rbegin(), cref.rseq.rend());
  return cref;
}

bsw::ExtendJob make_left_job(const ExtendContext& ctx, const ChainRef& cref,
                             const chain::Seed& s, int band) {
  const int l_query = static_cast<int>(ctx.query.size());
  const idx_t tmp = s.rbeg - cref.rmax0;
  bsw::ExtendJob job;
  job.query = ctx.query_rev.data() + (l_query - s.qbeg);  // rev(query[0,qbeg))
  job.qlen = s.qbeg;
  job.target = cref.rseq_rev.data() +
               (static_cast<idx_t>(cref.rseq_rev.size()) - tmp);  // rev(rseq[0,tmp))
  job.tlen = static_cast<int>(tmp);
  job.h0 = s.len * ctx.opt.ksw.a;
  job.w = band;
  return job;
}

bsw::ExtendJob make_right_job(const ExtendContext& ctx, const ChainRef& cref,
                              const chain::Seed& s, int band, int h0) {
  const int l_query = static_cast<int>(ctx.query.size());
  const int qe = s.qbeg + s.len;
  const idx_t re = s.rbeg + s.len - cref.rmax0;
  bsw::ExtendJob job;
  job.query = ctx.query.data() + qe;
  job.qlen = l_query - qe;
  job.target = cref.rseq.data() + re;
  job.tlen = static_cast<int>(cref.rmax1 - cref.rmax0 - re);
  job.h0 = h0;
  job.w = band;
  return job;
}

void process_chains(const ExtendContext& ctx,
                    std::span<const chain::Chain> chains,
                    SeedExtendSource& source, std::vector<AlnReg>& regs) {
  const MemOptions& opt = ctx.opt;
  const int l_query = static_cast<int>(ctx.query.size());

  for (int chain_idx = 0; chain_idx < static_cast<int>(chains.size()); ++chain_idx) {
    const chain::Chain& c = chains[static_cast<std::size_t>(chain_idx)];
    if (c.seeds.empty()) continue;

    const ChainRef* cref = source.chain_ref(chain_idx);
    ChainRef local;
    if (!cref) {
      local = make_chain_ref(ctx, c);
      cref = &local;
    }

    // Seeds by ascending score; visited from the back (best first).
    const int n = static_cast<int>(c.seeds.size());
    std::vector<std::uint64_t> srt(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      srt[static_cast<std::size_t>(i)] =
          static_cast<std::uint64_t>(c.seeds[static_cast<std::size_t>(i)].score) << 32 |
          static_cast<std::uint32_t>(i);
    std::sort(srt.begin(), srt.end());

    for (int k = n - 1; k >= 0; --k) {
      const int seed_idx = static_cast<int>(static_cast<std::uint32_t>(srt[static_cast<std::size_t>(k)]));
      const chain::Seed& s = c.seeds[static_cast<std::size_t>(seed_idx)];

      // --- test whether this seed is contained in an existing region ---
      std::size_t i;
      for (i = 0; i < regs.size(); ++i) {
        const AlnReg& p = regs[i];
        if (s.rbeg < p.rb || s.rbeg + s.len > p.re || s.qbeg < p.qb ||
            s.qbeg + s.len > p.qe)
          continue;  // not fully contained
        if (s.len - p.seedlen0 > .1 * l_query) continue;  // may yield a better aln
        // Region ahead of the seed.
        int qd = s.qbeg - p.qb;
        idx_t rd = s.rbeg - p.rb;
        int max_gap = opt.cal_max_gap(static_cast<int>(std::min<idx_t>(qd, rd)));
        int w = std::min(max_gap, p.w);
        if (qd - rd < w && rd - qd < w) break;  // seed is around the hit
        // Region behind the seed.
        qd = p.qe - (s.qbeg + s.len);
        rd = p.re - (s.rbeg + s.len);
        max_gap = opt.cal_max_gap(static_cast<int>(std::min<idx_t>(qd, rd)));
        w = std::min(max_gap, p.w);
        if (qd - rd < w && rd - qd < w) break;
      }
      if (i < regs.size()) {
        // Contained: extend anyway only if a similar-length overlapping seed
        // with a different diagonal exists in this chain.
        int t;
        for (t = k + 1; t < n; ++t) {
          if (srt[static_cast<std::size_t>(t)] == 0) continue;
          const chain::Seed& o =
              c.seeds[static_cast<std::size_t>(static_cast<std::uint32_t>(srt[static_cast<std::size_t>(t)]))];
          if (o.len < s.len * .95) continue;
          if (s.qbeg <= o.qbeg && s.qbeg + s.len - o.qbeg >= s.len >> 2 &&
              o.qbeg - s.qbeg != o.rbeg - s.rbeg)
            break;
          if (o.qbeg <= s.qbeg && o.qbeg + o.len - s.qbeg >= s.len >> 2 &&
              s.qbeg - o.qbeg != s.rbeg - o.rbeg)
            break;
        }
        if (t == n) {           // no such seed: skip the extension
          srt[static_cast<std::size_t>(k)] = 0;  // mark not-extended
          continue;
        }
      }

      // --- extension ---
      AlnReg a;
      int aw0 = opt.w, aw1 = opt.w;
      a.w = opt.w;
      a.score = a.truesc = -1;
      a.rid = c.rid;

      // Degenerate flank (clamped reference window leaves no target bases):
      // ksw on an empty target trivially returns (h0, 0, 0, 0, -1, 0).
      const auto run_side = [&](int side, int bt, const bsw::ExtendJob& job) {
        if (job.tlen == 0) {
          bsw::KswResult r;
          r.score = job.h0;
          return r;
        }
        return source.extend(chain_idx, seed_idx, side, bt, job);
      };

      if (s.qbeg) {  // left extension
        bsw::KswResult r;
        for (int bt = 0; bt < opt.max_band_try; ++bt) {
          const int prev = a.score;
          aw0 = opt.w << bt;
          const auto job = make_left_job(ctx, *cref, s, aw0);
          r = run_side(/*side=*/0, bt, job);
          a.score = r.score;
          if (!band_retry_needed(a.score, prev, r.max_off, aw0)) break;
        }
        if (r.gscore <= 0 || r.gscore <= a.score - opt.ksw.end_bonus) {
          a.qb = s.qbeg - r.qle;
          a.rb = s.rbeg - r.tle;
          a.truesc = a.score;
        } else {  // reaching the query start is preferred
          a.qb = 0;
          a.rb = s.rbeg - r.gtle;
          a.truesc = r.gscore;
        }
      } else {
        a.score = a.truesc = s.len * opt.ksw.a;
        a.qb = 0;
        a.rb = s.rbeg;
      }

      if (s.qbeg + s.len != l_query) {  // right extension
        const int sc0 = a.score;
        const idx_t re_off = s.rbeg + s.len - cref->rmax0;
        bsw::KswResult r;
        for (int bt = 0; bt < opt.max_band_try; ++bt) {
          const int prev = a.score;
          aw1 = opt.w << bt;
          const auto job = make_right_job(ctx, *cref, s, aw1, sc0);
          r = run_side(/*side=*/1, bt, job);
          a.score = r.score;
          if (!band_retry_needed(a.score, prev, r.max_off, aw1)) break;
        }
        if (r.gscore <= 0 || r.gscore <= a.score - opt.ksw.end_bonus) {
          a.qe = (s.qbeg + s.len) + r.qle;
          a.re = cref->rmax0 + re_off + r.tle;
          a.truesc += a.score - sc0;
        } else {
          a.qe = l_query;
          a.re = cref->rmax0 + re_off + r.gtle;
          a.truesc += r.gscore - sc0;
        }
      } else {
        a.qe = l_query;
        a.re = s.rbeg + s.len;
      }

      // Seed coverage of the region.
      a.seedcov = 0;
      for (const auto& t2 : c.seeds)
        if (t2.qbeg >= a.qb && t2.qbeg + t2.len <= a.qe && t2.rbeg >= a.rb &&
            t2.rbeg + t2.len <= a.re)
          a.seedcov += t2.len;
      a.w = std::max(aw0, aw1);
      a.seedlen0 = s.len;
      a.frac_rep = c.frac_rep;
      regs.push_back(a);
    }
  }
}

}  // namespace mem2::align
