// Baseline driver: read-at-a-time processing with the compressed index —
// the model of original BWA-MEM the paper measures against.
//
// Per read: SMEM search on the CP128 FM-index (no software prefetch), SAL
// via sampled-SA LF walks, chaining, scalar BSW extension on demand, SAM
// formation.  Fresh std containers per read reproduce the original's
// fragmented allocation pattern (§3.2).  Threading distributes whole reads
// dynamically, like the original's pthread worker loop.
#include <omp.h>

#include "align/driver.h"
#include "align/sam_format.h"
#include "util/trace.h"

namespace mem2::align {

namespace {

std::vector<seq::Code> encode_read(const std::string& bases) {
  std::vector<seq::Code> q(bases.size());
  for (std::size_t i = 0; i < bases.size(); ++i)
    q[i] = seq::char_to_code(bases[i]);
  return q;
}

}  // namespace

void align_reads_baseline(const index::Mem2Index& index,
                          std::span<const seq::Read> reads,
                          const DriverOptions& options,
                          std::vector<std::vector<io::SamRecord>>& per_read,
                          DriverStats* stats) {
  MEM2_REQUIRE(index.has_cp128(), "baseline driver needs the CP128 index");
  per_read.assign(reads.size(), {});

  const util::PrefetchPolicy no_prefetch{false};
  std::vector<util::StageTimes> thread_stages(static_cast<std::size_t>(options.threads));
  std::vector<util::SwCounters> thread_counters(static_cast<std::size_t>(options.threads));
  std::vector<std::uint64_t> thread_ext(static_cast<std::size_t>(options.threads), 0);
  const std::uint32_t trace_pid = util::trace_stream_id();

#pragma omp parallel num_threads(options.threads)
  {
    const int tid = omp_get_thread_num();
    util::TraceStreamScope trace_ctx(trace_pid);
    util::StageTimes& st = thread_stages[static_cast<std::size_t>(tid)];
    util::CounterCapture capture;
    smem::SmemWorkspace ws;
    std::vector<smem::Smem> smems;

#pragma omp for schedule(dynamic, 16)
    for (std::int64_t r = 0; r < static_cast<std::int64_t>(reads.size()); ++r) {
      const seq::Read& read = reads[static_cast<std::size_t>(r)];
      const std::vector<seq::Code> query = encode_read(read.bases);
      const std::vector<seq::Code> query_rev(query.rbegin(), query.rend());
      ExtendContext ctx{options.mem, index, query, query_rev};

      // SMEM.
      {
        util::TraceSpan span("smem");
        util::ScopedStage s(st, util::Stage::kSmem);
        smem::collect_smems(index.fm128(), query, options.mem.seeding, smems, ws,
                            no_prefetch);
      }
      // SAL (concrete lambda: the LF-walk lookup inlines, no std::function).
      std::vector<chain::Seed> seeds;
      {
        util::TraceSpan span("sal");
        util::ScopedStage s(st, util::Stage::kSal);
        chain::seeds_from_smems(
            smems, options.mem.chaining,
            [&](idx_t row) { return index.sa_lookup_baseline(row); }, seeds);
      }
      // CHAIN.
      std::vector<chain::Chain> chains;
      double frac_rep;
      {
        util::TraceSpan span("chain");
        util::ScopedStage s(st, util::Stage::kChain);
        frac_rep = chain::repetitive_fraction(
            smems, static_cast<int>(query.size()), options.mem.chaining.max_occ);
        chains = chain::build_chains(index.ref(), index.l_pac(), seeds,
                                     static_cast<int>(query.size()),
                                     options.mem.chaining, frac_rep);
        chain::filter_chains(chains, options.mem.chaining);
      }
      // BSW (on-demand scalar; extension bookkeeping counted as BSW-PRE).
      std::vector<AlnReg> regs;
      {
        // Count the scalar kernel invocations for the extra-work metric.
        class CountingScalarSource final : public SeedExtendSource {
         public:
          CountingScalarSource(const bsw::KswParams& p, util::StageTimes& st)
              : params_(p), st_(st) {}
          bsw::KswResult extend(int, int, int, int, const bsw::ExtendJob& job) override {
            ++calls;
            util::TraceSpan span("bsw");
            util::ScopedStage s(st_, util::Stage::kBsw);
            return bsw::ksw_extend_scalar(job, params_);
          }
          std::uint64_t calls = 0;

         private:
          bsw::KswParams params_;
          util::StageTimes& st_;
        };
        const double bsw_before = st[util::Stage::kBsw];
        {
          util::TraceSpan span("bsw-pre");
          util::ScopedStage pre(st, util::Stage::kBswPre);
          CountingScalarSource source(options.mem.ksw, st);
          process_chains(ctx, chains, source, regs);
          thread_ext[static_cast<std::size_t>(tid)] += source.calls;
        }
        // The ksw time inside the scope was accounted to kBsw; remove this
        // read's share from the surrounding pre-processing bucket.
        st[util::Stage::kBswPre] -= st[util::Stage::kBsw] - bsw_before;
      }
      // SAM.
      {
        util::TraceSpan span("sam-emit");
        util::ScopedStage s(st, util::Stage::kSamForm);
        sort_dedup_regions(regs, options.mem);
        mark_primary(regs, options.mem);
        per_read[static_cast<std::size_t>(r)] = regions_to_sam(ctx, read, regs);
      }
    }
    thread_counters[static_cast<std::size_t>(tid)] = capture.take();
  }

  if (stats) {
    for (const auto& st : thread_stages) stats->stages += st;
    for (const auto& c : thread_counters) stats->counters += c;
    for (const auto e : thread_ext) {
      stats->extensions_computed += e;
      stats->extensions_used += e;  // baseline never computes unused jobs
    }
  }
}

}  // namespace mem2::align
