// Alignment regions (bwa mem_alnreg_t) and their post-processing:
// dedup, primary marking, approximate single-end mapq.
#pragma once

#include <span>
#include <vector>

#include "align/options.h"
#include "util/common.h"

namespace mem2::align {

struct AlnReg {
  idx_t rb = 0, re = 0;  // reference interval, doubled coordinates
  int qb = 0, qe = 0;    // query interval
  int rid = -1;
  int score = 0;         // best local score
  int truesc = 0;        // score excluding clipping bonus decisions
  int sub = 0;           // best competing (overlapping secondary) score
  int csub = 0;          // second-best score within the same region class
  int sub_n = 0;         // number of near-equal suboptimal hits
  int w = 0;             // band width actually used
  int seedcov = 0;       // bases covered by seeds inside the region
  int seedlen0 = 0;      // length of the seed that generated the region
  int secondary = -1;    // index of the primary region, or -1 if primary
  float frac_rep = 0;
  bool rescued = false;  // region produced by paired-end mate rescue

  bool operator==(const AlnReg&) const = default;
};

/// Sort by (rb, qb) and remove near-duplicate regions (bwa
/// mem_sort_dedup_patch without the rarely-taken patch step; both drivers
/// share this code so their outputs stay identical).
void sort_dedup_regions(std::vector<AlnReg>& regs, const MemOptions& opt);

/// Sort by score (desc) and mark secondary regions; fills sub/sub_n
/// (bwa mem_mark_primary_se).
void mark_primary(std::vector<AlnReg>& regs, const MemOptions& opt);

/// Approximate single-end mapping quality (bwa mem_approx_mapq_se).
int approx_mapq(const AlnReg& reg, const MemOptions& opt);

}  // namespace mem2::align
