#include "align/region.h"

#include <algorithm>
#include <cmath>

namespace mem2::align {

void sort_dedup_regions(std::vector<AlnReg>& regs, const MemOptions& opt) {
  if (regs.size() <= 1) return;
  std::stable_sort(regs.begin(), regs.end(), [](const AlnReg& a, const AlnReg& b) {
    if (a.rb != b.rb) return a.rb < b.rb;
    if (a.re != b.re) return a.re < b.re;
    if (a.qb != b.qb) return a.qb < b.qb;
    return a.qe < b.qe;
  });
  // Drop a region when a neighbour covers (mask_level_redun) of it on both
  // query and reference with a better-or-equal score.
  std::vector<AlnReg> kept;
  kept.reserve(regs.size());
  for (const auto& r : regs) {
    bool redundant = false;
    for (auto& k : kept) {
      if (k.rid != r.rid) continue;
      const idx_t rb_max = std::max(k.rb, r.rb);
      const idx_t re_min = std::min(k.re, r.re);
      const int qb_max = std::max(k.qb, r.qb);
      const int qe_min = std::min(k.qe, r.qe);
      if (re_min <= rb_max || qe_min <= qb_max) continue;
      const double r_span = static_cast<double>(std::min(r.re - r.rb,
                                                         static_cast<idx_t>(r.qe - r.qb)));
      const double ovlp = std::min(static_cast<double>(re_min - rb_max),
                                   static_cast<double>(qe_min - qb_max));
      if (ovlp >= r_span * opt.mask_level_redun) {
        if (r.score > k.score) k = r;  // keep the better of the two
        redundant = true;
        break;
      }
    }
    if (!redundant) kept.push_back(r);
  }
  regs = std::move(kept);
}

void mark_primary(std::vector<AlnReg>& regs, const MemOptions& opt) {
  if (regs.empty()) return;
  std::stable_sort(regs.begin(), regs.end(), [](const AlnReg& a, const AlnReg& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.rb != b.rb) return a.rb < b.rb;
    return a.qb < b.qb;
  });

  const int tmp = std::max({opt.ksw.a + opt.ksw.b, opt.ksw.o_del + opt.ksw.e_del,
                            opt.ksw.o_ins + opt.ksw.e_ins});
  std::vector<std::size_t> primaries = {0};
  regs[0].secondary = -1;
  for (std::size_t i = 1; i < regs.size(); ++i) {
    regs[i].secondary = -1;
    std::size_t k = 0;
    for (; k < primaries.size(); ++k) {
      AlnReg& p = regs[primaries[k]];
      const int b_max = std::max(p.qb, regs[i].qb);
      const int e_min = std::min(p.qe, regs[i].qe);
      if (e_min > b_max) {
        const int min_l = std::min(p.qe - p.qb, regs[i].qe - regs[i].qb);
        if (e_min - b_max >= min_l * opt.chaining.mask_level) {
          if (p.sub == 0) p.sub = regs[i].score;
          if (p.score - regs[i].score <= tmp) ++p.sub_n;
          break;
        }
      }
    }
    if (k == primaries.size())
      primaries.push_back(i);
    else
      regs[i].secondary = static_cast<int>(primaries[k]);
  }
}

int approx_mapq(const AlnReg& a, const MemOptions& opt) {
  int sub = a.sub ? a.sub : opt.seeding.min_seed_len * opt.ksw.a;
  sub = std::max(sub, a.csub);
  if (sub >= a.score) return 0;
  const int l = std::max(a.qe - a.qb, static_cast<int>(a.re - a.rb));
  const double identity =
      1.0 - static_cast<double>(l * opt.ksw.a - a.score) / (opt.ksw.a + opt.ksw.b) / l;
  int mapq;
  if (a.score == 0) {
    mapq = 0;
  } else {
    double t = l < opt.mapq_coef_len ? 1.0 : opt.mapq_coef_fac / std::log(l);
    t *= identity * identity;
    mapq = static_cast<int>(6.02 * (a.score - sub) / opt.ksw.a * t * t + .499);
  }
  if (a.sub_n > 0) mapq -= static_cast<int>(4.343 * std::log(a.sub_n + 1) + .499);
  mapq = std::clamp(mapq, 0, 60);
  mapq = static_cast<int>(mapq * (1.0 - a.frac_rep) * .999);
  return mapq;
}

}  // namespace mem2::align
