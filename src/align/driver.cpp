#include "align/driver.h"

namespace mem2::align {

std::vector<io::SamRecord> align_reads(const index::Mem2Index& index,
                                       const std::vector<seq::Read>& reads,
                                       const DriverOptions& options,
                                       DriverStats* stats) {
  validate_options(options.mem);
  std::vector<std::vector<io::SamRecord>> per_read;
  if (options.mode == Mode::kBaseline)
    align_reads_baseline(index, reads, options, per_read, stats);
  else
    align_reads_batch(index, reads, options, per_read, stats);

  std::vector<io::SamRecord> flat;
  std::size_t total = 0;
  for (const auto& v : per_read) total += v.size();
  flat.reserve(total);
  for (auto& v : per_read)
    for (auto& rec : v) flat.push_back(std::move(rec));
  if (stats) stats->reads += reads.size();
  return flat;
}

std::string sam_header_for(const index::Mem2Index& index, const DriverOptions& options) {
  const std::string pg =
      std::string("@PG\tID:mem2\tPN:mem2\tVN:1.0\tCL:mem2 ") +
      (options.mode == Mode::kBaseline ? "--baseline" : "--batch");
  return io::sam_header(index.ref(), pg);
}

}  // namespace mem2::align
