#include "align/driver.h"

#include "align/aligner.h"
#include "util/common.h"

namespace mem2::align {

// Compatibility shim over the streaming session: open -> submit once ->
// finish, collecting into memory.  Validation therefore runs exactly once,
// at Aligner construction; a non-ok Status is converted back into the
// exception type matching its error code (throw_status), so callers that
// predate Status still see io_error / corruption_error / invalid_argument
// rather than a flattened invariant failure.
std::vector<io::SamRecord> align_reads(const index::Mem2Index& index,
                                       const std::vector<seq::Read>& reads,
                                       const DriverOptions& options,
                                       DriverStats* stats) {
  Aligner aligner(index, options);
  if (!aligner.ok()) throw_status(aligner.status());
  CollectSamSink sink;
  const Status st = aligner.align(reads, sink, stats);
  if (!st.ok()) throw_status(st);
  return sink.take_records();
}

std::string sam_header_for(const index::Mem2Index& index, const DriverOptions& options) {
  const std::string pg =
      std::string("@PG\tID:mem2\tPN:mem2\tVN:1.0\tCL:mem2 ") +
      (options.mode == Mode::kBaseline ? "--baseline" : "--batch") +
      (options.paired ? " --paired" : "");
  return io::sam_header(index.ref(), pg);
}

}  // namespace mem2::align
