#include "align/sam_format.h"

#include <algorithm>

namespace mem2::align {

int edit_distance(const bsw::Cigar& cigar, const seq::Code* query,
                  const seq::Code* target) {
  int nm = 0, qi = 0, ti = 0;
  for (const auto& op : cigar) {
    if (op.op == 'M') {
      for (int k = 0; k < op.len; ++k, ++qi, ++ti)
        nm += query[qi] != target[ti] || query[qi] > 3;
    } else if (op.op == 'I') {
      nm += op.len;
      qi += op.len;
    } else if (op.op == 'D') {
      nm += op.len;
      ti += op.len;
    }
  }
  return nm;
}

idx_t SamAln::ref_len() const {
  idx_t len = 0;
  for (const auto& op : cigar)
    if (op.op == 'M' || op.op == 'D') len += op.len;
  return len;
}

// bwa mem_reg2aln: fix the region endpoints into a concrete alignment.
SamAln region_to_aln(const ExtendContext& ctx, const AlnReg& reg) {
  const idx_t l_pac = ctx.index.l_pac();
  const int l_query = static_cast<int>(ctx.query.size());

  SamAln aln;
  aln.rev = reg.rb >= l_pac;
  aln.score = reg.score;

  // Orient everything to the reference-forward strand.
  int qb = reg.qb, qe = reg.qe;
  idx_t rb = reg.rb, re = reg.re;
  std::vector<seq::Code> qseg;
  if (!aln.rev) {
    qseg.assign(ctx.query.begin() + qb, ctx.query.begin() + qe);
  } else {
    // Reverse-complement the query segment; coordinates flip.
    std::vector<seq::Code> tmp(ctx.query.begin() + qb, ctx.query.begin() + qe);
    seq::reverse_complement_inplace(tmp);
    qseg = std::move(tmp);
    const int nqb = l_query - qe, nqe = l_query - qb;
    qb = nqb;
    qe = nqe;
    const idx_t nrb = 2 * l_pac - re, nre = 2 * l_pac - rb;
    rb = nrb;
    re = nre;
  }
  auto target = ctx.index.fetch(rb, re);

  // Infer the band from the achieved score (bwa infer_bw): a near-perfect
  // region needs almost no band, which keeps SAM-FORM at the paper's ~2.5%
  // share instead of paying the full extension band here.
  const auto& ksw = ctx.opt.ksw;
  auto infer_bw = [&](int l1, int l2, int score, int q_pen, int r_pen) {
    if (l1 == l2 && l1 * ksw.a - score < (q_pen + r_pen - ksw.a) * 2) return 0;
    int w = static_cast<int>(
        (static_cast<double>(std::min(l1, l2)) * ksw.a - score - q_pen) / r_pen + 2.0);
    return std::max(w, std::abs(l1 - l2));
  };
  const int l1 = qe - qb, l2 = static_cast<int>(re - rb);
  int band = std::max(infer_bw(l1, l2, reg.truesc, ksw.o_del, ksw.e_del),
                      infer_bw(l1, l2, reg.truesc, ksw.o_ins, ksw.e_ins));
  band = std::min(band, ctx.opt.w * 4);
  // Retry with a doubled band while the global score falls short of what
  // the extension achieved (bwa mem_reg2aln loop).
  int score = bsw::ksw_global(qseg.data(), static_cast<int>(qseg.size()),
                              target.data(), static_cast<int>(target.size()),
                              ksw, band, aln.cigar);
  while (score < reg.truesc && band < ctx.opt.w * 4) {
    band = std::min(band * 2 + 1, ctx.opt.w * 4);
    score = bsw::ksw_global(qseg.data(), static_cast<int>(qseg.size()),
                            target.data(), static_cast<int>(target.size()),
                            ksw, band, aln.cigar);
  }
  aln.nm = edit_distance(aln.cigar, qseg.data(), target.data());

  const auto [rid, off] = ctx.index.ref().locate(rb);
  aln.rid = rid;
  aln.pos = off;
  aln.clip5 = qb;
  aln.clip3 = l_query - qe;
  return aln;
}

std::string cigar_with_clips(const SamAln& aln) {
  std::string s;
  if (aln.clip5) s += std::to_string(aln.clip5) + 'S';
  s += bsw::cigar_string(aln.cigar);
  if (aln.clip3) s += std::to_string(aln.clip3) + 'S';
  return s;
}

io::SamRecord unmapped_record(const seq::Read& read) {
  io::SamRecord rec;
  rec.qname = read.name;
  rec.flag = io::kFlagUnmapped;
  rec.seq = read.bases;
  rec.qual = read.qual;
  rec.tags = {"AS:i:0"};
  return rec;
}

void fill_seq_qual(const seq::Read& read, bool rev, io::SamRecord& rec) {
  if (!rev) {
    rec.seq = read.bases;
    rec.qual = read.qual;
  } else {
    rec.seq = seq::reverse_complement_ascii(read.bases);
    rec.qual.assign(read.qual.rbegin(), read.qual.rend());
  }
}

std::vector<io::SamRecord> regions_to_sam(const ExtendContext& ctx,
                                          const seq::Read& read,
                                          std::span<const AlnReg> regs) {
  std::vector<io::SamRecord> out;

  // Survivors: ordered by the mark_primary sort (score desc).
  bool first = true;
  for (const auto& reg : regs) {
    if (reg.score < ctx.opt.min_out_score) continue;
    if (reg.secondary >= 0 && !ctx.opt.output_secondary) continue;

    const SamAln aln = region_to_aln(ctx, reg);
    io::SamRecord rec;
    rec.qname = read.name;
    rec.flag = 0;
    if (aln.rev) rec.flag |= io::kFlagReverse;
    if (reg.secondary >= 0)
      rec.flag |= io::kFlagSecondary;
    else if (!first)
      rec.flag |= io::kFlagSupplementary;
    rec.rname = ctx.index.ref().contigs()[static_cast<std::size_t>(aln.rid)].name;
    rec.pos = aln.pos + 1;  // SAM is 1-based
    rec.mapq = reg.secondary >= 0 ? 0 : approx_mapq(reg, ctx.opt);
    rec.cigar = cigar_with_clips(aln);
    fill_seq_qual(read, aln.rev, rec);
    rec.tags = {"NM:i:" + std::to_string(aln.nm),
                "AS:i:" + std::to_string(reg.score),
                "XS:i:" + std::to_string(reg.sub)};
    out.push_back(std::move(rec));
    if (reg.secondary < 0) first = false;
  }

  if (out.empty()) out.push_back(unmapped_record(read));
  return out;
}

}  // namespace mem2::align
