// Baseline occurrence table — BWA-MEM's layout (paper §2.5.1, §4.4).
//
// Checkpoints every η=128 BWT positions.  Each bucket stores four 64-bit
// cumulative counts plus the 128 bases of its window packed 2 bits each into
// four 64-bit words (32+32 = 64 bytes of payload, like bwa's interleaved
// `bwt_t`).  Computing Occ(c, j) therefore requires unpacking up to four
// words with the XOR/mask/popcount trick — the "large number of
// instructions" the paper measures (Table 4 "Original" column).
#pragma once

#include <cstdint>
#include <vector>

#include "index/bwt.h"
#include "util/big_alloc.h"
#include "util/prefetch.h"

namespace mem2::index {

class OccCp128 {
 public:
  static constexpr int kBucketShift = 7;  // η = 128
  static constexpr int kBucket = 1 << kBucketShift;

  struct Bucket {
    std::uint64_t count[4];  // occurrences of each base before this bucket
    std::uint64_t packed[4]; // 128 bases, 2 bits each, little-endian in word
  };
  static_assert(sizeof(Bucket) == 64, "CP128 bucket must be one cache line");

  OccCp128() = default;
  explicit OccCp128(const std::vector<seq::Code>& bwt) { build(bwt); }
  void build(const std::vector<seq::Code>& bwt);

  /// Count of base c among the first j BWT positions (sentinel-free array).
  idx_t occ(int c, idx_t j) const;

  /// occ for all four bases at once (shares the bucket decode).
  void occ4(idx_t j, idx_t out[4]) const;

  /// Prefetch the bucket containing position j.
  void prefetch(idx_t j) const {
    util::prefetch_r(&buckets_[static_cast<std::size_t>(j >> kBucketShift)]);
  }

  idx_t size() const { return size_; }
  std::size_t memory_bytes() const { return buckets_.size() * sizeof(Bucket); }

  const util::BigVector<Bucket>& buckets() const { return buckets_; }
  void set_buckets(util::BigVector<Bucket> b, idx_t n) {
    buckets_ = std::move(b);
    size_ = n;
  }

  static constexpr const char* name() { return "cp128"; }

 private:
  util::BigVector<Bucket> buckets_;
  idx_t size_ = 0;
};

}  // namespace mem2::index
