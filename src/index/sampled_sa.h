// Baseline suffix-array lookup (paper §2.5.2, §4.5 "Original").
//
// BWA stores SA values only for rows divisible by the sampling interval d;
// SAL for any other row walks the LF mapping until it hits a sampled row and
// adds the step count.  Each step costs an Occ computation plus a BWT load —
// the ~5000 instructions per lookup the paper measures.  The optimized SAL
// (FlatSA) is in flat_sa.h.
#pragma once

#include <cstdint>
#include <vector>

#include "index/fm_index.h"
#include "util/sw_counters.h"

namespace mem2::index {

template <class Fm>
class SampledSAT {
 public:
  SampledSAT() = default;

  /// @param sa full suffix array (length N+1, sa[0] == N); any random-access
  ///        container of integer values (idx_t or the build's uint32 SA)
  /// @param interval sampling interval d (power of two)
  template <class SaVec>
  void build(const SaVec& sa, int interval) {
    MEM2_REQUIRE(interval > 0 && (interval & (interval - 1)) == 0,
                 "SA sampling interval must be a power of two");
    interval_ = interval;
    samples_.clear();
    samples_.reserve(sa.size() / static_cast<std::size_t>(interval) + 1);
    for (std::size_t r = 0; r < sa.size(); r += static_cast<std::size_t>(interval))
      samples_.push_back(sa[r]);
  }

  /// SA[r]: walk LF until a sampled row.  The FM-index must have its raw
  /// BWT stored (Fm::store_raw_bwt) for lf_step.
  idx_t lookup(const Fm& fm, idx_t r) const {
    auto& ctr = util::tls_counters();
    ++ctr.sa_lookups;
    const idx_t mask = interval_ - 1;
    idx_t steps = 0;
    while (r & mask) {
      r = fm.lf_step(r);
      ++steps;
      ++ctr.sa_lf_steps;
      ctr.sa_memory_loads += 2;  // occ bucket + bwt byte
    }
    const idx_t n_rows = fm.seq_len() + 1;
    ++ctr.sa_memory_loads;  // the sample itself
    return (samples_[static_cast<std::size_t>(r / interval_)] + steps) % n_rows;
  }

  int interval() const { return interval_; }
  std::size_t memory_bytes() const { return samples_.size() * sizeof(idx_t); }

  const std::vector<idx_t>& samples() const { return samples_; }
  void set_samples(std::vector<idx_t> s, int interval) {
    samples_ = std::move(s);
    interval_ = interval;
  }

 private:
  std::vector<idx_t> samples_;
  int interval_ = 32;
};

using SampledSA128 = SampledSAT<FmIndexCp128>;
using SampledSA32 = SampledSAT<FmIndexCp32>;

}  // namespace mem2::index
