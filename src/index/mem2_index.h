// The complete alignment index: reference + both FM-index flavours + both
// SAL structures, built from one suffix-array pass.
//
// Baseline components (CP128 occ table, sampled SA) model original BWA-MEM;
// optimized components (CP32 occ table, flat SA) model the paper's design.
// Building both from the same BWT is what lets every test and bench compare
// like for like.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "index/flat_sa.h"
#include "index/fm_index.h"
#include "index/sampled_sa.h"
#include "seq/pack.h"

namespace mem2::index {

struct IndexBuildOptions {
  bool build_cp128 = true;
  bool build_cp32 = true;
  bool build_sampled_sa = true;
  bool build_flat_sa = true;
  /// Baseline SAL sampling interval (power of two).  BWA indexes with 32;
  /// the SAL bench sweeps this up to the paper's quoted 128.
  int sampled_interval = 32;
  /// Threads for the parallel SA-IS passes (<= 0: OpenMP default).  The
  /// suffix array — and therefore the whole index — is byte-identical for
  /// every thread count.
  int threads = 0;
  /// Called after each build phase completes with the phase name and its
  /// wall time; the CLI and the index-build bench hang progress/peak-RSS
  /// reporting off this.  May be empty.
  std::function<void(const char* phase, double seconds)> progress;
};

class Mem2Index {
 public:
  Mem2Index() = default;

  /// Build from a reference (computes SA over R·revcomp(R) once and derives
  /// everything).  The reference is copied into the index.
  static Mem2Index build(seq::Reference ref, const IndexBuildOptions& opt = {});

  const seq::Reference& ref() const { return ref_; }
  /// L: forward-strand length.  BW coordinates in [L, 2L) are the reverse
  /// strand, exactly like bwa's l_pac convention.
  idx_t l_pac() const { return ref_.length(); }
  idx_t seq_len() const { return 2 * ref_.length(); }

  const FmIndexCp128& fm128() const { return fm128_; }
  const FmIndexCp32& fm32() const { return fm32_; }
  const SampledSA128& sampled_sa() const { return sampled_sa_; }
  const FlatSA& flat_sa() const { return flat_sa_; }

  bool has_cp128() const { return fm128_.seq_len() > 0; }
  bool has_cp32() const { return fm32_.seq_len() > 0; }
  bool has_flat_sa() const { return flat_sa_.size() > 0; }

  /// Baseline SAL: LF-walk on the compressed structures.
  idx_t sa_lookup_baseline(idx_t row) const { return sampled_sa_.lookup(fm128_, row); }
  /// Optimized SAL: direct load.
  idx_t sa_lookup_flat(idx_t row) const { return flat_sa_.lookup(row); }

  /// Fetch reference bases for the BW coordinate range [rb, re) in the
  /// doubled coordinate space: positions >= l_pac read from the reverse
  /// complement strand (bwa's bns_get_seq semantics).
  std::vector<seq::Code> fetch(idx_t rb, idx_t re) const;

  std::size_t memory_bytes() const {
    return fm128_.memory_bytes() + fm32_.memory_bytes() +
           sampled_sa_.memory_bytes() + flat_sa_.memory_bytes();
  }

  // Mutable access for index_io deserialization.
  seq::Reference& mutable_ref() { return ref_; }
  FmIndexCp128& mutable_fm128() { return fm128_; }
  FmIndexCp32& mutable_fm32() { return fm32_; }
  SampledSA128& mutable_sampled_sa() { return sampled_sa_; }
  FlatSA& mutable_flat_sa() { return flat_sa_; }

 private:
  seq::Reference ref_;
  FmIndexCp128 fm128_;
  FmIndexCp32 fm32_;
  SampledSA128 sampled_sa_;
  FlatSA flat_sa_;
};

/// Binary serialization (index/<name>.m2i).  Writes the v2 container:
/// named sections, each with a xxhash64 checksum footer, verified on load
/// so bit flips and truncation surface as corruption_error naming the
/// damaged section.  version=1 writes the deprecated unchecksummed format
/// (transition tooling only); load_index accepts both, warning on v1.
void save_index(const std::string& path, const Mem2Index& index, int version = 2);
Mem2Index load_index(const std::string& path);

}  // namespace mem2::index
