#include "index/occ_cp128.h"

#include <bit>

namespace mem2::index {

namespace {

// Count occurrences of 2-bit value c within the low `bases` bases of a
// packed word (bwa's __occ_aux technique).  For each base slot the XOR with
// a replicated pattern turns matches into 00; ~(x|x>>1) & 0x5555... marks
// them; popcount finishes the job.
inline int count_in_word(std::uint64_t word, int c, int bases) {
  if (bases <= 0) return 0;
  const std::uint64_t pattern = 0x5555555555555555ULL * static_cast<std::uint64_t>(c);
  std::uint64_t x = word ^ pattern;
  std::uint64_t match = ~(x | (x >> 1)) & 0x5555555555555555ULL;
  if (bases < 32) match &= (std::uint64_t{1} << (2 * bases)) - 1;
  return std::popcount(match);
}

}  // namespace

void OccCp128::build(const std::vector<seq::Code>& bwt) {
  size_ = static_cast<idx_t>(bwt.size());
  const std::size_t n_buckets = (bwt.size() + kBucket - 1) / kBucket + 1;
  buckets_.assign(n_buckets, Bucket{});

  std::uint64_t running[4] = {0, 0, 0, 0};
  for (std::size_t b = 0; b < n_buckets; ++b) {
    for (int c = 0; c < 4; ++c) buckets_[b].count[c] = running[c];
    for (int r = 0; r < kBucket; ++r) {
      const std::size_t pos = b * kBucket + static_cast<std::size_t>(r);
      if (pos >= bwt.size()) break;
      const seq::Code code = bwt[pos];
      ++running[code];
      buckets_[b].packed[r >> 5] |= static_cast<std::uint64_t>(code) << ((r & 31) << 1);
    }
  }
}

idx_t OccCp128::occ(int c, idx_t j) const {
  const Bucket& bkt = buckets_[static_cast<std::size_t>(j >> kBucketShift)];
  int rem = static_cast<int>(j & (kBucket - 1));
  idx_t n = static_cast<idx_t>(bkt.count[c]);
  for (int w = 0; w < 4 && rem > 0; ++w) {
    n += count_in_word(bkt.packed[w], c, rem);
    rem -= 32;
  }
  return n;
}

void OccCp128::occ4(idx_t j, idx_t out[4]) const {
  const Bucket& bkt = buckets_[static_cast<std::size_t>(j >> kBucketShift)];
  const int rem = static_cast<int>(j & (kBucket - 1));
  for (int c = 0; c < 4; ++c) {
    int left = rem;
    idx_t n = static_cast<idx_t>(bkt.count[c]);
    for (int w = 0; w < 4 && left > 0; ++w) {
      n += count_in_word(bkt.packed[w], c, left);
      left -= 32;
    }
    out[c] = n;
  }
}

}  // namespace mem2::index
