// Bidirectional FM-index over T = R · revcomp(R) · $ (paper §2.2, §4.1-4.2).
//
// Coordinates: BW-matrix rows r ∈ [0, N] where N = |T| = 2L; row 0 is the
// sentinel rotation.  A bi-interval (k, l, s) describes the matches of a
// string X: k is the first row of X's SA interval, l the first row of
// revcomp(X)'s interval, s the interval size (Algorithm 2's notation).
//
// The class is templated over the occurrence backend so the SMEM kernel can
// run unchanged on the baseline CP128 table and the optimized CP32 table —
// that is exactly the paper's "identical output" requirement: the backend
// changes the instruction/cache profile, never the search result.
#pragma once

#include <array>
#include <cstdint>

#include "index/bwt.h"
#include "index/occ_cp128.h"
#include "index/occ_cp32.h"
#include "util/sw_counters.h"

namespace mem2::index {

struct BiInterval {
  idx_t k = 0;  // start row of X's SA interval
  idx_t l = 0;  // start row of revcomp(X)'s SA interval
  idx_t s = 0;  // interval size

  bool operator==(const BiInterval&) const = default;
};

template <class Occ>
class FmIndexT {
 public:
  using occ_type = Occ;

  FmIndexT() = default;
  explicit FmIndexT(const BwtData& data) { build(data); }

  void build(const BwtData& data) {
    seq_len_ = data.seq_len;
    primary_ = data.primary;
    cum_ = data.cum;
    occ_.build(data.bwt);
  }

  idx_t seq_len() const { return seq_len_; }
  idx_t primary() const { return primary_; }
  /// Row of the first rotation starting with base c (c in 0..3); cum(4) is
  /// one past the last row.
  idx_t cum(int c) const { return cum_[static_cast<std::size_t>(c)]; }
  const Occ& occ_table() const { return occ_; }
  std::size_t memory_bytes() const { return occ_.memory_bytes(); }

  /// Count of base c in BWT rows [0, r] (sentinel row contributes nothing).
  /// r may be -1 (empty prefix) up to seq_len().
  idx_t occ_row(int c, idx_t r) const {
    if (r < 0) return 0;
    const idx_t j = r + 1 - (r >= primary_ ? 1 : 0);
    ++util::tls_counters().occ_bucket_loads;
    return occ_.occ(c, j);
  }

  /// occ_row for all four bases.
  void occ_row4(idx_t r, idx_t out[4]) const {
    if (r < 0) {
      out[0] = out[1] = out[2] = out[3] = 0;
      return;
    }
    const idx_t j = r + 1 - (r >= primary_ ? 1 : 0);
    ++util::tls_counters().occ_bucket_loads;
    occ_.occ4(j, out);
  }

  /// Bi-interval of the single-base string c (Algorithm 4, line 2).
  BiInterval set_intv(int c) const {
    BiInterval bi;
    bi.k = cum(c);
    bi.l = cum(3 - c);
    bi.s = cum(c + 1) - cum(c);
    return bi;
  }

  /// Bi-interval of the whole (empty-string) range: every row.
  BiInterval full_interval() const { return BiInterval{0, 0, seq_len_ + 1}; }

  /// Backward extension (Algorithm 2): out[b] is the bi-interval of bX for
  /// each base b.  Sizes may be zero (no occurrence).
  void backward_ext(const BiInterval& in, BiInterval out[4]) const {
    ++util::tls_counters().backward_exts;
    idx_t tk[4], tl[4];
    occ_row4(in.k - 1, tk);
    occ_row4(in.k + in.s - 1, tl);
    for (int c = 0; c < 4; ++c) {
      out[c].k = cum(c) + tk[c];
      out[c].s = tl[c] - tk[c];
    }
    // Sentinel occurrences within rows [k, k+s-1] shift the l side
    // (Algorithm 2's f); then l values stack in complement order T,G,C,A.
    const idx_t sentinel =
        (in.k <= primary_ && primary_ <= in.k + in.s - 1) ? 1 : 0;
    out[3].l = in.l + sentinel;
    out[2].l = out[3].l + out[3].s;
    out[1].l = out[2].l + out[2].s;
    out[0].l = out[1].l + out[1].s;
  }

  /// Forward extension (Algorithm 3): out[b] is the bi-interval of Xb.
  /// Implemented as a backward extension of the complement on the l side.
  void forward_ext(const BiInterval& in, BiInterval out[4]) const {
    ++util::tls_counters().forward_exts;
    BiInterval swapped{in.l, in.k, in.s};
    BiInterval tmp[4];
    backward_ext(swapped, tmp);
    --util::tls_counters().backward_exts;  // counted as forward instead
    for (int b = 0; b < 4; ++b) {
      out[b].k = tmp[3 - b].l;
      out[b].l = tmp[3 - b].k;
      out[b].s = tmp[3 - b].s;
    }
  }

  /// Single-base backward step for LF-walks (SampledSA): given row r (not
  /// the primary row), returns the row of the suffix starting one position
  /// earlier, reading base c = BWT[r].
  idx_t lf_step(idx_t r) const {
    if (r == primary_) return 0;
    const int c = bwt_at(r);
    return cum(c) + occ_row(c, r - 1);
  }

  /// BWT character at row r (r != primary).
  int bwt_at(idx_t r) const {
    const idx_t j = r - (r > primary_ ? 1 : 0);
    // One byte/2-bit load; route through occ backend-independent storage.
    return bwt_char_(j);
  }

  /// Prefetch the occ bucket(s) that a future backward extension of this
  /// interval will touch (paper §4.3): the lines holding rows k-1 and
  /// k+s-1.
  void prefetch_interval(const BiInterval& bi) const {
    occ_.prefetch(bi.k >= 1 ? bi.k - 1 : 0);
    occ_.prefetch(bi.k + bi.s - 1);
    util::tls_counters().prefetches += 2;
  }

  /// Prefetch for a future *forward* extension, which reads the l side
  /// (Algorithm 4 lines 11-12: Prefetch(Oc, l-1), Prefetch(Oc, l+s-1)).
  void prefetch_forward(const BiInterval& bi) const {
    occ_.prefetch(bi.l >= 1 ? bi.l - 1 : 0);
    occ_.prefetch(bi.l + bi.s - 1);
    util::tls_counters().prefetches += 2;
  }

  /// Keep a copy of the raw BWT for lf_step (SampledSA path).  Optional:
  /// only built when store_bwt is requested.
  void store_raw_bwt(const BwtData& data) { raw_bwt_ = data.bwt; }
  bool has_raw_bwt() const { return !raw_bwt_.empty(); }
  /// The stored sentinel-free BWT rows (requires has_raw_bwt()); the
  /// streaming index writer serializes the bwt section from this without
  /// materializing an intermediate copy.
  const std::vector<seq::Code>& raw_bwt() const { return raw_bwt_; }

 private:
  int bwt_char_(idx_t j) const { return raw_bwt_[static_cast<std::size_t>(j)]; }

  idx_t seq_len_ = 0;
  idx_t primary_ = 0;
  std::array<idx_t, 5> cum_{};
  Occ occ_;
  std::vector<seq::Code> raw_bwt_;  // only for LF walks (baseline SAL)
};

using FmIndexCp128 = FmIndexT<OccCp128>;
using FmIndexCp32 = FmIndexT<OccCp32>;

}  // namespace mem2::index
