// Binary index serialization.  Current format (.m2i, v2):
//   magic "M2I\2", then named sections in fixed order, each framed as
//     name (u64 length + bytes) | payload length (u64) | payload |
//     xxhash64(payload) footer (u64)
//   Integers little-endian, sizes as uint64.  The occ tables are rebuilt
//   from the stored BWT on load (cheap, and keeps the file format
//   independent of bucket layout).
//
// Integrity: every load verifies each section's checksum and bounds before
// any field is used, so a bit-flipped or truncated file surfaces as
// corruption_error naming the offending section (Status kDataCorruption at
// the session layer / exit code 4 in mem2_cli) instead of undefined
// behavior.  The v1 format (no checksums) still loads with a one-release
// deprecation warning; save_index can emit it for transition tooling.
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>

#include "index/mem2_index.h"
#include "util/checksum.h"
#include "util/fault_injector.h"

namespace mem2::index {

namespace {

constexpr char kMagicV1[4] = {'M', '2', 'I', '\1'};
constexpr char kMagicV2[4] = {'M', '2', 'I', '\2'};

/// Fixed section order of the v2 container.
constexpr const char* kSectionNames[] = {"contigs", "pac",        "ambig",
                                         "bwt",     "sampled_sa", "flat_sa"};

template <typename T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw io_error("index file truncated");
  return v;
}

void put_string(std::ostream& out, const std::string& s) {
  put<std::uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& in) {
  const auto n = get<std::uint64_t>(in);
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (!in) throw io_error("index file truncated (string)");
  return s;
}

template <typename T>
void put_vector(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> get_vector(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = get<std::uint64_t>(in);
  std::vector<T> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!in) throw io_error("index file truncated (vector)");
  return v;
}

// ---------------------------------------------------------------- v2 frame

/// Bounds-checked reader over one verified section payload.  Every overrun
/// is a corruption_error naming the section, so a malformed length field
/// can never read past the section or allocate from garbage.
class SectionReader {
 public:
  SectionReader(std::string name, std::string bytes)
      : name_(std::move(name)), bytes_(std::move(bytes)) {}

  const std::string& name() const { return name_; }

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    take(reinterpret_cast<char*>(&v), sizeof(T), "field");
    return v;
  }

  std::string get_string() {
    const auto n = get<std::uint64_t>();
    check_count(n, 1, "string");
    std::string s(static_cast<std::size_t>(n), '\0');
    take(s.data(), s.size(), "string");
    return s;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = get<std::uint64_t>();
    check_count(n, sizeof(T), "vector");
    std::vector<T> v(static_cast<std::size_t>(n));
    take(reinterpret_cast<char*>(v.data()), v.size() * sizeof(T), "vector");
    return v;
  }

  /// Semantic range check: fields that passed the checksum can still be
  /// inconsistent with each other only if the writer was broken — treat as
  /// corruption all the same, with a field-level message.
  void require(bool cond, const std::string& what) const {
    if (!cond) fail(what);
  }

  void expect_done() const {
    if (pos_ != bytes_.size()) fail("trailing bytes after last field");
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw corruption_error("index section '" + name_ + "' is corrupt: " + what);
  }

 private:
  void take(char* dst, std::size_t n, const char* what) {
    if (n > bytes_.size() - pos_)
      fail(std::string(what) + " extends past the section payload");
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
  }

  void check_count(std::uint64_t n, std::size_t elem_size, const char* what) const {
    // An element count can never exceed the remaining payload bytes; this
    // rejects absurd lengths before the allocation, not after.
    if (n > (bytes_.size() - pos_) / elem_size)
      fail(std::string(what) + " length field exceeds the section payload");
  }

  std::string name_;
  std::string bytes_;
  std::size_t pos_ = 0;
};

void write_section(std::ostream& out, const char* name,
                   const std::string& payload) {
  put_string(out, name);
  put<std::uint64_t>(out, payload.size());
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  put<std::uint64_t>(out, util::xxhash64(payload.data(), payload.size()));
}

/// Read and verify the next section, which must be `expected`.  All frame
/// errors (short reads, oversized lengths, checksum mismatch) are
/// corruption_error mentioning the section, per the contract above.
SectionReader read_section(std::istream& in, const char* expected,
                           std::uint64_t bytes_left) {
  auto fail = [&](const std::string& what) -> void {
    throw corruption_error("index section '" + std::string(expected) +
                           "' is corrupt: " + what);
  };
  auto get_u64 = [&]() {
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!in) fail("file truncated in section frame");
    return v;
  };

  const std::uint64_t name_len = get_u64();
  if (name_len > 256 || name_len > bytes_left) fail("implausible section name");
  std::string name(static_cast<std::size_t>(name_len), '\0');
  in.read(name.data(), static_cast<std::streamsize>(name.size()));
  if (!in) fail("file truncated in section name");
  if (name != expected) fail("expected this section, found '" + name + "'");

  const std::uint64_t payload_len = get_u64();
  if (payload_len > bytes_left) fail("payload length exceeds the file size");
  std::string payload(static_cast<std::size_t>(payload_len), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!in) fail("file truncated in section payload");
  const std::uint64_t stored = get_u64();
  const std::uint64_t computed = util::xxhash64(payload.data(), payload.size());
  if (stored != computed) fail("checksum mismatch (bit flip or truncation)");
  return SectionReader(expected, std::move(payload));
}

// ------------------------------------------------------- section payloads

std::string pack_contigs(const Mem2Index& index) {
  std::ostringstream os(std::ios::binary);
  const auto& ref = index.ref();
  put<std::uint64_t>(os, ref.contigs().size());
  for (const auto& c : ref.contigs()) {
    put_string(os, c.name);
    put<idx_t>(os, c.offset);
    put<idx_t>(os, c.length);
  }
  return std::move(os).str();
}

std::string pack_pac(const Mem2Index& index) {
  std::ostringstream os(std::ios::binary);
  put<std::uint64_t>(os, static_cast<std::uint64_t>(index.ref().pac().size()));
  put_vector(os, index.ref().pac().raw());
  return std::move(os).str();
}

std::string pack_ambig(const Mem2Index& index) {
  std::ostringstream os(std::ios::binary);
  put<std::uint64_t>(os, index.ref().ambiguous().size());
  for (const auto& a : index.ref().ambiguous()) {
    put<idx_t>(os, a.begin);
    put<idx_t>(os, a.end);
  }
  return std::move(os).str();
}

std::string pack_bwt(const Mem2Index& index) {
  std::ostringstream os(std::ios::binary);
  const auto& fm = index.fm128();
  put<idx_t>(os, fm.seq_len());
  put<idx_t>(os, fm.primary());
  // Recovering the BWT codes through the occ table is awkward; serialize
  // via the raw-BWT accessor like the v1 writer did.
  std::vector<seq::Code> bwt(static_cast<std::size_t>(fm.seq_len()));
  for (idx_t j = 0; j < fm.seq_len(); ++j) {
    const idx_t row = j + (j >= fm.primary() ? 1 : 0);
    bwt[static_cast<std::size_t>(j)] = static_cast<seq::Code>(fm.bwt_at(row));
  }
  put_vector(os, bwt);
  return std::move(os).str();
}

std::string pack_sampled_sa(const Mem2Index& index) {
  std::ostringstream os(std::ios::binary);
  put<std::int32_t>(os, index.sampled_sa().interval());
  put_vector(os, index.sampled_sa().samples());
  return std::move(os).str();
}

std::string pack_flat_sa(const Mem2Index& index) {
  std::ostringstream os(std::ios::binary);
  put<std::uint8_t>(os, index.has_flat_sa() ? 1 : 0);
  if (index.has_flat_sa()) put_vector(os, index.flat_sa().values());
  return std::move(os).str();
}

// --------------------------------------------------------------- v1 loader

Mem2Index load_index_v1(std::istream& in) {
  Mem2Index index;

  // Reference.
  const auto n_contigs = get<std::uint64_t>(in);
  std::vector<seq::Contig> contigs(n_contigs);
  for (auto& c : contigs) {
    c.name = get_string(in);
    c.offset = get<idx_t>(in);
    c.length = get<idx_t>(in);
  }
  const auto pac_len = get<std::uint64_t>(in);
  auto pac_raw = get_vector<std::uint8_t>(in);
  const auto n_ambig = get<std::uint64_t>(in);
  std::vector<seq::AmbigInterval> ambig(n_ambig);
  for (auto& a : ambig) {
    a.begin = get<idx_t>(in);
    a.end = get<idx_t>(in);
  }
  // Rebuild the Reference from raw parts: decode the packed sequence per
  // contig and re-add (N runs were already replaced at build time).
  seq::PackedSequence pac;
  pac.assign_raw(std::move(pac_raw), pac_len);
  for (const auto& c : contigs) {
    auto codes = pac.extract(static_cast<std::size_t>(c.offset),
                             static_cast<std::size_t>(c.offset + c.length));
    index.mutable_ref().add_contig_codes(c.name, codes);
  }

  // BWT + occ tables.
  BwtData bwt;
  bwt.seq_len = get<idx_t>(in);
  bwt.primary = get<idx_t>(in);
  bwt.bwt = get_vector<seq::Code>(in);
  MEM2_REQUIRE(static_cast<idx_t>(bwt.bwt.size()) == bwt.seq_len,
               "index file BWT length mismatch");
  std::array<idx_t, 4> counts{};
  for (seq::Code c : bwt.bwt) ++counts[c];
  bwt.cum[0] = 1;
  for (int c = 0; c < 4; ++c) bwt.cum[static_cast<std::size_t>(c) + 1] = bwt.cum[static_cast<std::size_t>(c)] + counts[static_cast<std::size_t>(c)];

  index.mutable_fm128().build(bwt);
  index.mutable_fm128().store_raw_bwt(bwt);
  index.mutable_fm32().build(bwt);

  // SAL.
  const auto interval = get<std::int32_t>(in);
  index.mutable_sampled_sa().set_samples(get_vector<idx_t>(in), interval);
  const auto has_flat = get<std::uint8_t>(in);
  if (has_flat) index.mutable_flat_sa().build(get_vector<idx_t>(in));

  return index;
}

// --------------------------------------------------------------- v2 loader

Mem2Index load_index_v2(std::istream& in, std::uint64_t bytes_left) {
  Mem2Index index;

  // Contigs + pac + ambig: verify all three before rebuilding the
  // Reference, since contig geometry indexes into the pac payload.
  SectionReader contigs_sec = read_section(in, "contigs", bytes_left);
  const auto n_contigs = contigs_sec.get<std::uint64_t>();
  contigs_sec.require(n_contigs >= 1, "index has no contigs");
  std::vector<seq::Contig> contigs(static_cast<std::size_t>(n_contigs));
  for (auto& c : contigs) {
    c.name = contigs_sec.get_string();
    c.offset = contigs_sec.get<idx_t>();
    c.length = contigs_sec.get<idx_t>();
    contigs_sec.require(!c.name.empty(), "empty contig name");
    contigs_sec.require(c.offset >= 0 && c.length >= 1,
                        "contig offset/length out of range");
  }
  contigs_sec.expect_done();

  SectionReader pac_sec = read_section(in, "pac", bytes_left);
  const auto pac_len = pac_sec.get<std::uint64_t>();
  auto pac_raw = pac_sec.get_vector<std::uint8_t>();
  pac_sec.require(pac_raw.size() == (static_cast<std::size_t>(pac_len) + 3) / 4,
                  "packed length does not match the stored base count");
  pac_sec.expect_done();
  for (const auto& c : contigs)
    contigs_sec.require(static_cast<std::uint64_t>(c.offset) + static_cast<std::uint64_t>(c.length) <= pac_len,
                        "contig '" + c.name + "' extends past the packed sequence");

  SectionReader ambig_sec = read_section(in, "ambig", bytes_left);
  const auto n_ambig = ambig_sec.get<std::uint64_t>();
  std::vector<seq::AmbigInterval> ambig(static_cast<std::size_t>(n_ambig));
  for (auto& a : ambig) {
    a.begin = ambig_sec.get<idx_t>();
    a.end = ambig_sec.get<idx_t>();
    ambig_sec.require(a.begin >= 0 && a.begin <= a.end &&
                          static_cast<std::uint64_t>(a.end) <= pac_len,
                      "ambiguous interval out of range");
  }
  ambig_sec.expect_done();

  seq::PackedSequence pac;
  pac.assign_raw(std::move(pac_raw), pac_len);
  for (const auto& c : contigs) {
    auto codes = pac.extract(static_cast<std::size_t>(c.offset),
                             static_cast<std::size_t>(c.offset + c.length));
    index.mutable_ref().add_contig_codes(c.name, codes);
  }

  // BWT + occ tables.
  SectionReader bwt_sec = read_section(in, "bwt", bytes_left);
  BwtData bwt;
  bwt.seq_len = bwt_sec.get<idx_t>();
  bwt.primary = bwt_sec.get<idx_t>();
  bwt_sec.require(bwt.seq_len == static_cast<idx_t>(2 * pac_len),
                  "BW matrix length != 2 x reference length");
  bwt_sec.require(bwt.primary >= 0 && bwt.primary <= bwt.seq_len,
                  "primary row out of range");
  bwt.bwt = bwt_sec.get_vector<seq::Code>();
  bwt_sec.require(static_cast<idx_t>(bwt.bwt.size()) == bwt.seq_len,
                  "BWT length mismatch");
  for (seq::Code c : bwt.bwt)
    bwt_sec.require(c < 4, "BWT code out of the DNA alphabet");
  bwt_sec.expect_done();
  std::array<idx_t, 4> counts{};
  for (seq::Code c : bwt.bwt) ++counts[c];
  bwt.cum[0] = 1;
  for (int c = 0; c < 4; ++c)
    bwt.cum[static_cast<std::size_t>(c) + 1] =
        bwt.cum[static_cast<std::size_t>(c)] + counts[static_cast<std::size_t>(c)];

  index.mutable_fm128().build(bwt);
  index.mutable_fm128().store_raw_bwt(bwt);
  index.mutable_fm32().build(bwt);

  // SAL structures.
  SectionReader ssa_sec = read_section(in, "sampled_sa", bytes_left);
  const auto interval = ssa_sec.get<std::int32_t>();
  ssa_sec.require(interval >= 1 && (interval & (interval - 1)) == 0,
                  "sampling interval is not a positive power of two");
  auto samples = ssa_sec.get_vector<idx_t>();
  ssa_sec.require(static_cast<idx_t>(samples.size()) ==
                      (bwt.seq_len + interval) / interval,
                  "sample count does not match the interval");
  for (idx_t s : samples)
    ssa_sec.require(s >= 0 && s <= bwt.seq_len, "SA sample out of range");
  ssa_sec.expect_done();
  index.mutable_sampled_sa().set_samples(std::move(samples), interval);

  SectionReader fsa_sec = read_section(in, "flat_sa", bytes_left);
  const auto has_flat = fsa_sec.get<std::uint8_t>();
  fsa_sec.require(has_flat <= 1, "flat-SA presence flag is not 0/1");
  if (has_flat) {
    auto values = fsa_sec.get_vector<idx_t>();
    fsa_sec.require(static_cast<idx_t>(values.size()) == bwt.seq_len + 1,
                    "flat SA size != seq_len + 1");
    for (idx_t v : values)
      fsa_sec.require(v >= 0 && v <= bwt.seq_len, "flat SA value out of range");
    index.mutable_flat_sa().build(std::move(values));
  }
  fsa_sec.expect_done();

  return index;
}

}  // namespace

void save_index(const std::string& path, const Mem2Index& index, int version) {
  MEM2_REQUIRE(version == 1 || version == 2, "unsupported index format version");
  MEM2_REQUIRE(index.has_cp128(), "save_index requires the CP128 component");
  MEM2_REQUIRE(index.fm128().has_raw_bwt(), "save_index requires raw BWT");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw io_error("cannot open index file for writing: " + path);

  if (version == 1) {
    // Transition writer for the deprecated unchecksummed format.
    out.write(kMagicV1, 4);
    const auto& ref = index.ref();
    put<std::uint64_t>(out, ref.contigs().size());
    for (const auto& c : ref.contigs()) {
      put_string(out, c.name);
      put<idx_t>(out, c.offset);
      put<idx_t>(out, c.length);
    }
    put<std::uint64_t>(out, static_cast<std::uint64_t>(ref.pac().size()));
    put_vector(out, ref.pac().raw());
    put<std::uint64_t>(out, ref.ambiguous().size());
    for (const auto& a : ref.ambiguous()) {
      put<idx_t>(out, a.begin);
      put<idx_t>(out, a.end);
    }
    const auto& fm = index.fm128();
    put<idx_t>(out, fm.seq_len());
    put<idx_t>(out, fm.primary());
    std::vector<seq::Code> bwt(static_cast<std::size_t>(fm.seq_len()));
    for (idx_t j = 0; j < fm.seq_len(); ++j) {
      const idx_t row = j + (j >= fm.primary() ? 1 : 0);
      bwt[static_cast<std::size_t>(j)] = static_cast<seq::Code>(fm.bwt_at(row));
    }
    put_vector(out, bwt);
    put<std::int32_t>(out, index.sampled_sa().interval());
    put_vector(out, index.sampled_sa().samples());
    put<std::uint8_t>(out, index.has_flat_sa() ? 1 : 0);
    if (index.has_flat_sa()) put_vector(out, index.flat_sa().values());
  } else {
    out.write(kMagicV2, 4);
    write_section(out, "contigs", pack_contigs(index));
    write_section(out, "pac", pack_pac(index));
    write_section(out, "ambig", pack_ambig(index));
    write_section(out, "bwt", pack_bwt(index));
    write_section(out, "sampled_sa", pack_sampled_sa(index));
    write_section(out, "flat_sa", pack_flat_sa(index));
  }

  if (!out) throw io_error("error writing index file: " + path);
}

Mem2Index load_index(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw io_error("cannot open index file: " + path);
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagicV2, 3) != 0)
    throw io_error("not a mem2 index file: " + path);
  if (util::fault_point("index.load"))
    throw corruption_error("injected fault: index.load (" + path + ")");
  if (magic[3] == kMagicV1[3]) {
    std::cerr << "[mem2] warning: '" << path
              << "' uses the deprecated v1 index format (no integrity "
                 "checksums); re-run `mem2_cli index` — v1 support will be "
                 "removed in the next release\n";
    return load_index_v1(in);
  }
  if (magic[3] != kMagicV2[3])
    throw io_error("unsupported index format version in: " + path);
  return load_index_v2(in, file_size - 4);
}

}  // namespace mem2::index
