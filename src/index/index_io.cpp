// Binary index serialization.  Current format (.m2i, v2):
//   magic "M2I\2", then named sections in fixed order, each framed as
//     name (u64 length + bytes) | payload length (u64) | payload |
//     xxhash64(payload) footer (u64)
//   Integers little-endian, sizes as uint64.  The occ tables are rebuilt
//   from the stored BWT on load (cheap, and keeps the file format
//   independent of bucket layout).
//
// Both directions stream: the writer emits each section write-through with
// an analytically precomputed payload length and an incremental xxhash64,
// and the reader consumes fields straight from the file in bounded chunks —
// neither side ever holds a section payload AND its in-memory structure at
// the same time, which is what keeps chromosome-scale save/load inside the
// build's own memory budget.  The flat SA is stored as i64 on disk (format
// compatibility) but held as u32 in memory; the widening/narrowing runs
// through a small chunk buffer.
//
// Integrity: every length field is clamped against the bytes actually
// remaining in its section (or file) BEFORE any allocation, and each
// section checksum is verified once its payload has been consumed, so a
// bit-flipped or truncated file surfaces as corruption_error naming the
// offending section (Status kDataCorruption at the session layer / exit
// code 4 in mem2_cli) instead of undefined behavior or an absurd
// allocation.  The v1 format (no checksums) still loads with a one-release
// deprecation warning; save_index can emit it for transition tooling.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>

#include "index/mem2_index.h"
#include "util/big_alloc.h"
#include "util/checksum.h"
#include "util/fault_injector.h"

namespace mem2::index {

namespace {

static_assert(sizeof(seq::Code) == 1, "BWT sections assume 1-byte codes");

constexpr char kMagicV1[4] = {'M', '2', 'I', '\1'};
constexpr char kMagicV2[4] = {'M', '2', 'I', '\2'};

/// Chunk size for streaming payload reads/writes: big enough to amortize
/// stream overhead, small enough to be memory-invisible.
constexpr std::size_t kIoChunkBytes = std::size_t{8} << 20;

template <typename T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

void put_string(std::ostream& out, const std::string& s) {
  put<std::uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

template <typename T>
void put_vector(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

/// Feed each chunk of the u32 flat SA, widened to the on-disk i64 layout,
/// to `emit(ptr, bytes)`.  Only one small chunk buffer is ever live.
template <class Emit>
void for_each_widened_chunk(const util::BigVector<std::uint32_t>& v,
                            Emit&& emit) {
  constexpr std::size_t kChunk = std::size_t{1} << 16;
  std::vector<idx_t> buf(std::min(v.size(), kChunk));
  for (std::size_t off = 0; off < v.size(); off += kChunk) {
    const std::size_t m = std::min(kChunk, v.size() - off);
    for (std::size_t i = 0; i < m; ++i)
      buf[i] = static_cast<idx_t>(v[off + i]);
    emit(buf.data(), m * sizeof(idx_t));
  }
}

// ---------------------------------------------------------------- v2 frame

/// Streaming section writer: the frame header carries an analytically
/// precomputed payload length, fields are written straight through while an
/// incremental xxhash64 runs alongside, and finish() checks the promise and
/// appends the checksum footer.  No payload copy is ever materialized.
class SectionSink {
 public:
  SectionSink(std::ostream& out, const char* name, std::uint64_t payload_len)
      : out_(out), declared_(payload_len) {
    put_string(out_, name);
    put<std::uint64_t>(out_, payload_len);
  }

  void bytes(const void* p, std::size_t n) {
    if (n == 0) return;
    hash_.update(p, n);
    out_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    written_ += n;
  }

  template <typename T>
  void put_field(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof(T));
  }

  void put_str(const std::string& s) {
    put_field<std::uint64_t>(s.size());
    bytes(s.data(), s.size());
  }

  template <typename T>
  void put_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_field<std::uint64_t>(v.size());
    bytes(v.data(), v.size() * sizeof(T));
  }

  void finish() {
    MEM2_REQUIRE(written_ == declared_,
                 "index writer: section payload length mismatch");
    put<std::uint64_t>(out_, hash_.digest());
  }

 private:
  std::ostream& out_;
  std::uint64_t declared_;
  std::uint64_t written_ = 0;
  util::Xxh64Stream hash_;
};

/// Streaming section reader.  Fields are consumed straight from the file;
/// every length field is clamped against the bytes remaining in the
/// section before the corresponding allocation, and the checksum footer is
/// verified in finish() once the payload has been fully consumed.  Every
/// failure is a corruption_error naming the section, so a malformed length
/// can never read past the section or allocate from garbage.
class SectionSource {
 public:
  SectionSource(std::istream& in, const char* expected,
                std::uint64_t& bytes_left)
      : in_(in), name_(expected) {
    const std::uint64_t name_len = frame_u64(bytes_left);
    if (name_len > 256 || name_len > bytes_left)
      fail("implausible section name");
    std::string name(static_cast<std::size_t>(name_len), '\0');
    in_.read(name.data(), static_cast<std::streamsize>(name.size()));
    if (!in_) fail("file truncated in section name");
    bytes_left -= name_len;
    if (name != name_) fail("expected this section, found '" + name + "'");
    payload_len_ = frame_u64(bytes_left);
    if (payload_len_ > bytes_left) fail("payload length exceeds the file size");
    bytes_left -= payload_len_;
  }

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    read_raw(&v, sizeof(T), "field");
    return v;
  }

  /// Read a u64 element count and clamp it: a count can never exceed the
  /// remaining payload bytes, so absurd lengths die before the allocation.
  std::uint64_t get_count(std::size_t elem_size, const char* what) {
    const auto n = get<std::uint64_t>();
    if (n > remaining() / elem_size)
      fail(std::string(what) + " length field exceeds the section payload");
    return n;
  }

  std::string get_string() {
    const auto n = get_count(1, "string");
    std::string s(static_cast<std::size_t>(n), '\0');
    read_raw(s.data(), s.size(), "string");
    return s;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = get_count(sizeof(T), "vector");
    std::vector<T> v(static_cast<std::size_t>(n));
    read_chunked(v.data(), v.size() * sizeof(T), "vector");
    return v;
  }

  /// Raw payload read (bounds-checked + hashed); building block for the
  /// chunked big-array paths.
  void read_raw(void* dst, std::size_t n, const char* what) {
    if (n > remaining())
      fail(std::string(what) + " extends past the section payload");
    in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (!in_) fail("file truncated in section payload");
    hash_.update(dst, n);
    consumed_ += n;
  }

  void read_chunked(void* dst, std::size_t n, const char* what) {
    char* p = static_cast<char*>(dst);
    while (n > 0) {
      const std::size_t m = std::min(n, kIoChunkBytes);
      read_raw(p, m, what);
      p += m;
      n -= m;
    }
  }

  std::uint64_t remaining() const { return payload_len_ - consumed_; }

  /// Semantic range check: fields that passed the checksum can still be
  /// inconsistent with each other only if the writer was broken — treat as
  /// corruption all the same, with a field-level message.
  void require(bool cond, const std::string& what) const {
    if (!cond) fail(what);
  }

  /// Expects the payload fully consumed, then verifies the checksum footer.
  void finish() {
    if (consumed_ != payload_len_) fail("trailing bytes after last field");
    std::uint64_t stored = 0;
    in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    if (!in_) fail("file truncated in section frame");
    if (stored != hash_.digest())
      fail("checksum mismatch (bit flip or truncation)");
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw corruption_error("index section '" + std::string(name_) +
                           "' is corrupt: " + what);
  }

 private:
  std::uint64_t frame_u64(std::uint64_t& bytes_left) {
    std::uint64_t v = 0;
    in_.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!in_) fail("file truncated in section frame");
    bytes_left -= std::min<std::uint64_t>(bytes_left, sizeof(v));
    return v;
  }

  std::istream& in_;
  const char* name_;
  std::uint64_t payload_len_ = 0;
  std::uint64_t consumed_ = 0;
  util::Xxh64Stream hash_;
};

// ------------------------------------------------------- section writers

void write_contigs(std::ostream& out, const Mem2Index& index) {
  const auto& contigs = index.ref().contigs();
  std::uint64_t len = 8;
  for (const auto& c : contigs) len += 8 + c.name.size() + 2 * sizeof(idx_t);
  SectionSink s(out, "contigs", len);
  s.put_field<std::uint64_t>(contigs.size());
  for (const auto& c : contigs) {
    s.put_str(c.name);
    s.put_field<idx_t>(c.offset);
    s.put_field<idx_t>(c.length);
  }
  s.finish();
}

void write_pac(std::ostream& out, const Mem2Index& index) {
  const auto& raw = index.ref().pac().raw();
  SectionSink s(out, "pac", 16 + raw.size());
  s.put_field<std::uint64_t>(static_cast<std::uint64_t>(index.ref().pac().size()));
  s.put_vec(raw);
  s.finish();
}

void write_ambig(std::ostream& out, const Mem2Index& index) {
  const auto& ambig = index.ref().ambiguous();
  SectionSink s(out, "ambig", 8 + ambig.size() * 2 * sizeof(idx_t));
  s.put_field<std::uint64_t>(ambig.size());
  for (const auto& a : ambig) {
    s.put_field<idx_t>(a.begin);
    s.put_field<idx_t>(a.end);
  }
  s.finish();
}

void write_bwt(std::ostream& out, const Mem2Index& index) {
  const auto& fm = index.fm128();
  // raw_bwt() IS the sentinel-free last column in file order (the old
  // row-translation loop reproduced it element for element), so the
  // section streams straight from the live structure.
  const auto& raw = fm.raw_bwt();
  SectionSink s(out, "bwt", 2 * sizeof(idx_t) + 8 + raw.size());
  s.put_field<idx_t>(fm.seq_len());
  s.put_field<idx_t>(fm.primary());
  s.put_vec(raw);
  s.finish();
}

void write_sampled_sa(std::ostream& out, const Mem2Index& index) {
  const auto& samples = index.sampled_sa().samples();
  SectionSink s(out, "sampled_sa", 4 + 8 + samples.size() * sizeof(idx_t));
  s.put_field<std::int32_t>(index.sampled_sa().interval());
  s.put_vec(samples);
  s.finish();
}

void write_flat_sa(std::ostream& out, const Mem2Index& index) {
  const bool has = index.has_flat_sa();
  std::uint64_t len = 1;
  if (has) len += 8 + index.flat_sa().size() * sizeof(idx_t);
  SectionSink s(out, "flat_sa", len);
  s.put_field<std::uint8_t>(has ? 1 : 0);
  if (has) {
    const auto& v = index.flat_sa().values_u32();
    s.put_field<std::uint64_t>(v.size());
    for_each_widened_chunk(
        v, [&](const void* p, std::size_t n) { s.bytes(p, n); });
  }
  s.finish();
}

// --------------------------------------------------------------- v1 loader

/// Reader for the deprecated unchecksummed format, tracking the bytes that
/// actually remain in the file so a corrupt length field throws io_error
/// before it can drive an absurd allocation.
class V1Reader {
 public:
  V1Reader(std::istream& in, std::uint64_t remaining)
      : in_(in), remaining_(remaining) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    read(&v, sizeof(T), "field");
    return v;
  }

  std::uint64_t get_count(std::size_t elem_size, const char* what) {
    const auto n = get<std::uint64_t>();
    if (n > remaining_ / elem_size)
      throw io_error(std::string("index file corrupt: ") + what +
                     " length field exceeds the file size");
    return n;
  }

  std::string get_string() {
    const auto n = get_count(1, "string");
    std::string s(static_cast<std::size_t>(n), '\0');
    read(s.data(), s.size(), "string");
    return s;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = get_count(sizeof(T), "vector");
    std::vector<T> v(static_cast<std::size_t>(n));
    read(v.data(), v.size() * sizeof(T), "vector");
    return v;
  }

 private:
  void read(void* dst, std::size_t n, const char* what) {
    if (n > remaining_)
      throw io_error(std::string("index file truncated (") + what + ")");
    in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (!in_) throw io_error(std::string("index file truncated (") + what + ")");
    remaining_ -= n;
  }

  std::istream& in_;
  std::uint64_t remaining_;
};

Mem2Index load_index_v1(std::istream& in, std::uint64_t bytes_left) {
  Mem2Index index;
  V1Reader r(in, bytes_left);

  // Reference.  Each contig costs at least 24 bytes (name length + offset +
  // length), which clamps the table size before the vector allocation.
  const auto n_contigs = r.get_count(24, "contig table");
  std::vector<seq::Contig> contigs(static_cast<std::size_t>(n_contigs));
  for (auto& c : contigs) {
    c.name = r.get_string();
    c.offset = r.get<idx_t>();
    c.length = r.get<idx_t>();
  }
  const auto pac_len = r.get<std::uint64_t>();
  auto pac_raw = r.get_vector<std::uint8_t>();
  const auto n_ambig = r.get_count(2 * sizeof(idx_t), "ambig table");
  std::vector<seq::AmbigInterval> ambig(static_cast<std::size_t>(n_ambig));
  for (auto& a : ambig) {
    a.begin = r.get<idx_t>();
    a.end = r.get<idx_t>();
  }
  // Rebuild the Reference from raw parts: decode the packed sequence per
  // contig and re-add (N runs were already replaced at build time).
  seq::PackedSequence pac;
  pac.assign_raw(std::move(pac_raw), pac_len);
  for (const auto& c : contigs) {
    auto codes = pac.extract(static_cast<std::size_t>(c.offset),
                             static_cast<std::size_t>(c.offset + c.length));
    index.mutable_ref().add_contig_codes(c.name, codes);
  }

  // BWT + occ tables.
  BwtData bwt;
  bwt.seq_len = r.get<idx_t>();
  bwt.primary = r.get<idx_t>();
  bwt.bwt = r.get_vector<seq::Code>();
  MEM2_REQUIRE(static_cast<idx_t>(bwt.bwt.size()) == bwt.seq_len,
               "index file BWT length mismatch");
  std::array<idx_t, 4> counts{};
  for (seq::Code c : bwt.bwt) ++counts[c];
  bwt.cum[0] = 1;
  for (int c = 0; c < 4; ++c) bwt.cum[static_cast<std::size_t>(c) + 1] = bwt.cum[static_cast<std::size_t>(c)] + counts[static_cast<std::size_t>(c)];

  index.mutable_fm128().build(bwt);
  index.mutable_fm128().store_raw_bwt(bwt);
  index.mutable_fm32().build(bwt);

  // SAL.
  const auto interval = r.get<std::int32_t>();
  index.mutable_sampled_sa().set_samples(r.get_vector<idx_t>(), interval);
  const auto has_flat = r.get<std::uint8_t>();
  if (has_flat) index.mutable_flat_sa().build(r.get_vector<idx_t>());

  return index;
}

// --------------------------------------------------------------- v2 loader

Mem2Index load_index_v2(std::istream& in, std::uint64_t bytes_left) {
  Mem2Index index;

  // Contigs + pac + ambig: verify all three before rebuilding the
  // Reference, since contig geometry indexes into the pac payload.
  std::vector<seq::Contig> contigs;
  {
    SectionSource sec(in, "contigs", bytes_left);
    // Each contig costs at least 24 payload bytes (name length field +
    // offset + length); this clamps the table before the allocation.
    const auto n_contigs = sec.get_count(24, "contig table");
    sec.require(n_contigs >= 1, "index has no contigs");
    contigs.resize(static_cast<std::size_t>(n_contigs));
    for (auto& c : contigs) {
      c.name = sec.get_string();
      c.offset = sec.get<idx_t>();
      c.length = sec.get<idx_t>();
      sec.require(!c.name.empty(), "empty contig name");
      sec.require(c.offset >= 0 && c.length >= 1,
                  "contig offset/length out of range");
    }
    sec.finish();
  }

  std::uint64_t pac_len = 0;
  std::vector<std::uint8_t> pac_raw;
  {
    SectionSource sec(in, "pac", bytes_left);
    pac_len = sec.get<std::uint64_t>();
    pac_raw = sec.get_vector<std::uint8_t>();
    sec.require(pac_raw.size() == (static_cast<std::size_t>(pac_len) + 3) / 4,
                "packed length does not match the stored base count");
    sec.finish();
  }
  for (const auto& c : contigs) {
    if (static_cast<std::uint64_t>(c.offset) +
            static_cast<std::uint64_t>(c.length) >
        pac_len)
      throw corruption_error("index section 'contigs' is corrupt: contig '" +
                             c.name + "' extends past the packed sequence");
  }

  {
    SectionSource sec(in, "ambig", bytes_left);
    const auto n_ambig = sec.get_count(2 * sizeof(idx_t), "ambig table");
    std::vector<seq::AmbigInterval> ambig(static_cast<std::size_t>(n_ambig));
    for (auto& a : ambig) {
      a.begin = sec.get<idx_t>();
      a.end = sec.get<idx_t>();
      sec.require(a.begin >= 0 && a.begin <= a.end &&
                      static_cast<std::uint64_t>(a.end) <= pac_len,
                  "ambiguous interval out of range");
    }
    sec.finish();
  }

  seq::PackedSequence pac;
  pac.assign_raw(std::move(pac_raw), pac_len);
  for (const auto& c : contigs) {
    auto codes = pac.extract(static_cast<std::size_t>(c.offset),
                             static_cast<std::size_t>(c.offset + c.length));
    index.mutable_ref().add_contig_codes(c.name, codes);
  }

  // BWT + occ tables.
  BwtData bwt;
  {
    SectionSource sec(in, "bwt", bytes_left);
    bwt.seq_len = sec.get<idx_t>();
    bwt.primary = sec.get<idx_t>();
    sec.require(bwt.seq_len == static_cast<idx_t>(2 * pac_len),
                "BW matrix length != 2 x reference length");
    sec.require(bwt.primary >= 0 && bwt.primary <= bwt.seq_len,
                "primary row out of range");
    // The 32-bit occ/SA components rebuilt below cap the text length; an
    // oversized file must die here (invariant_error naming the limit), not
    // wrap counters during the rebuild.
    OccCp32::check_text_length(bwt.seq_len);
    const auto n = sec.get_count(sizeof(seq::Code), "vector");
    sec.require(static_cast<idx_t>(n) == bwt.seq_len, "BWT length mismatch");
    bwt.bwt.resize(static_cast<std::size_t>(n));
    util::prefault_pages(bwt.bwt.data(), bwt.bwt.size());
    sec.read_chunked(bwt.bwt.data(), bwt.bwt.size(), "vector");
    sec.finish();
    // Alphabet check + cumulative counts in one checksum-verified pass.
    std::array<idx_t, 4> counts{};
    for (seq::Code c : bwt.bwt) {
      sec.require(c < 4, "BWT code out of the DNA alphabet");
      ++counts[c];
    }
    bwt.cum[0] = 1;
    for (int c = 0; c < 4; ++c)
      bwt.cum[static_cast<std::size_t>(c) + 1] =
          bwt.cum[static_cast<std::size_t>(c)] + counts[static_cast<std::size_t>(c)];
  }

  index.mutable_fm128().build(bwt);
  index.mutable_fm128().store_raw_bwt(bwt);
  index.mutable_fm32().build(bwt);

  // SAL structures.
  {
    SectionSource sec(in, "sampled_sa", bytes_left);
    const auto interval = sec.get<std::int32_t>();
    sec.require(interval >= 1 && (interval & (interval - 1)) == 0,
                "sampling interval is not a positive power of two");
    auto samples = sec.get_vector<idx_t>();
    sec.require(static_cast<idx_t>(samples.size()) ==
                    (bwt.seq_len + interval) / interval,
                "sample count does not match the interval");
    for (idx_t s : samples)
      sec.require(s >= 0 && s <= bwt.seq_len, "SA sample out of range");
    sec.finish();
    index.mutable_sampled_sa().set_samples(std::move(samples), interval);
  }

  {
    SectionSource sec(in, "flat_sa", bytes_left);
    const auto has_flat = sec.get<std::uint8_t>();
    sec.require(has_flat <= 1, "flat-SA presence flag is not 0/1");
    if (has_flat) {
      const auto n = sec.get_count(sizeof(idx_t), "vector");
      sec.require(static_cast<idx_t>(n) == bwt.seq_len + 1,
                  "flat SA size != seq_len + 1");
      // Narrow the on-disk i64 values to the u32 in-memory layout through a
      // chunk buffer; the 32-bit fit is implied by the range check because
      // seq_len passed check_text_length above.
      util::BigVector<std::uint32_t> values(static_cast<std::size_t>(n));
      util::prefault_pages(values.data(), values.size() * sizeof(std::uint32_t));
      std::vector<idx_t> chunk(
          std::min<std::size_t>(static_cast<std::size_t>(n), std::size_t{1} << 16));
      for (std::size_t off = 0; off < static_cast<std::size_t>(n);) {
        const std::size_t m =
            std::min(chunk.size(), static_cast<std::size_t>(n) - off);
        sec.read_raw(chunk.data(), m * sizeof(idx_t), "vector");
        for (std::size_t i = 0; i < m; ++i) {
          const idx_t v = chunk[i];
          sec.require(v >= 0 && v <= bwt.seq_len, "flat SA value out of range");
          values[off + i] = static_cast<std::uint32_t>(v);
        }
        off += m;
      }
      sec.finish();
      index.mutable_flat_sa().build(std::move(values));
    } else {
      sec.finish();
    }
  }

  return index;
}

}  // namespace

void save_index(const std::string& path, const Mem2Index& index, int version) {
  MEM2_REQUIRE(version == 1 || version == 2, "unsupported index format version");
  MEM2_REQUIRE(index.has_cp128(), "save_index requires the CP128 component");
  MEM2_REQUIRE(index.fm128().has_raw_bwt(), "save_index requires raw BWT");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw io_error("cannot open index file for writing: " + path);

  if (version == 1) {
    // Transition writer for the deprecated unchecksummed format.
    out.write(kMagicV1, 4);
    const auto& ref = index.ref();
    put<std::uint64_t>(out, ref.contigs().size());
    for (const auto& c : ref.contigs()) {
      put_string(out, c.name);
      put<idx_t>(out, c.offset);
      put<idx_t>(out, c.length);
    }
    put<std::uint64_t>(out, static_cast<std::uint64_t>(ref.pac().size()));
    put_vector(out, ref.pac().raw());
    put<std::uint64_t>(out, ref.ambiguous().size());
    for (const auto& a : ref.ambiguous()) {
      put<idx_t>(out, a.begin);
      put<idx_t>(out, a.end);
    }
    const auto& fm = index.fm128();
    put<idx_t>(out, fm.seq_len());
    put<idx_t>(out, fm.primary());
    put_vector(out, fm.raw_bwt());
    put<std::int32_t>(out, index.sampled_sa().interval());
    put_vector(out, index.sampled_sa().samples());
    put<std::uint8_t>(out, index.has_flat_sa() ? 1 : 0);
    if (index.has_flat_sa()) {
      const auto& v = index.flat_sa().values_u32();
      put<std::uint64_t>(out, v.size());
      for_each_widened_chunk(v, [&](const void* p, std::size_t n) {
        out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
      });
    }
  } else {
    out.write(kMagicV2, 4);
    write_contigs(out, index);
    write_pac(out, index);
    write_ambig(out, index);
    write_bwt(out, index);
    write_sampled_sa(out, index);
    write_flat_sa(out, index);
  }

  if (!out) throw io_error("error writing index file: " + path);
}

Mem2Index load_index(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw io_error("cannot open index file: " + path);
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagicV2, 3) != 0)
    throw io_error("not a mem2 index file: " + path);
  if (util::fault_point("index.load"))
    throw corruption_error("injected fault: index.load (" + path + ")");
  if (magic[3] == kMagicV1[3]) {
    std::cerr << "[mem2] warning: '" << path
              << "' uses the deprecated v1 index format (no integrity "
                 "checksums); re-run `mem2_cli index` — v1 support will be "
                 "removed in the next release\n";
    return load_index_v1(in, file_size - 4);
  }
  if (magic[3] != kMagicV2[3])
    throw io_error("unsupported index format version in: " + path);
  return load_index_v2(in, file_size - 4);
}

}  // namespace mem2::index
