// Binary index serialization.  Format (.m2i):
//   magic "M2I\1", then sections in fixed order.  Integers little-endian,
//   sizes as uint64.  The occ tables are rebuilt from the stored BWT on
//   load (cheap, and keeps the file format independent of bucket layout).
#include <cstring>
#include <fstream>

#include "index/mem2_index.h"

namespace mem2::index {

namespace {

constexpr char kMagic[4] = {'M', '2', 'I', '\1'};

template <typename T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw io_error("index file truncated");
  return v;
}

void put_string(std::ostream& out, const std::string& s) {
  put<std::uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& in) {
  const auto n = get<std::uint64_t>(in);
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  if (!in) throw io_error("index file truncated (string)");
  return s;
}

template <typename T>
void put_vector(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> get_vector(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = get<std::uint64_t>(in);
  std::vector<T> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  if (!in) throw io_error("index file truncated (vector)");
  return v;
}

}  // namespace

void save_index(const std::string& path, const Mem2Index& index) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw io_error("cannot open index file for writing: " + path);
  out.write(kMagic, 4);

  // Reference.
  const auto& ref = index.ref();
  put<std::uint64_t>(out, ref.contigs().size());
  for (const auto& c : ref.contigs()) {
    put_string(out, c.name);
    put<idx_t>(out, c.offset);
    put<idx_t>(out, c.length);
  }
  put<std::uint64_t>(out, static_cast<std::uint64_t>(ref.pac().size()));
  put_vector(out, ref.pac().raw());
  put<std::uint64_t>(out, ref.ambiguous().size());
  for (const auto& a : ref.ambiguous()) {
    put<idx_t>(out, a.begin);
    put<idx_t>(out, a.end);
  }

  // BWT (primary, seq_len, codes) — shared by both occ flavours.
  MEM2_REQUIRE(index.has_cp128(), "save_index requires the CP128 component");
  MEM2_REQUIRE(index.fm128().has_raw_bwt(), "save_index requires raw BWT");
  const auto& fm = index.fm128();
  put<idx_t>(out, fm.seq_len());
  put<idx_t>(out, fm.primary());
  // Recover the BWT codes through the occ table is awkward; serialize via a
  // dedicated accessor below.
  std::vector<seq::Code> bwt(static_cast<std::size_t>(fm.seq_len()));
  for (idx_t j = 0; j < fm.seq_len(); ++j) {
    const idx_t row = j + (j >= fm.primary() ? 1 : 0);
    bwt[static_cast<std::size_t>(j)] = static_cast<seq::Code>(fm.bwt_at(row));
  }
  put_vector(out, bwt);

  // SAL structures.
  put<std::int32_t>(out, index.sampled_sa().interval());
  put_vector(out, index.sampled_sa().samples());
  put<std::uint8_t>(out, index.has_flat_sa() ? 1 : 0);
  if (index.has_flat_sa()) put_vector(out, index.flat_sa().values());

  if (!out) throw io_error("error writing index file: " + path);
}

Mem2Index load_index(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw io_error("cannot open index file: " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0)
    throw io_error("not a mem2 index file: " + path);

  Mem2Index index;

  // Reference.
  const auto n_contigs = get<std::uint64_t>(in);
  std::vector<seq::Contig> contigs(n_contigs);
  for (auto& c : contigs) {
    c.name = get_string(in);
    c.offset = get<idx_t>(in);
    c.length = get<idx_t>(in);
  }
  const auto pac_len = get<std::uint64_t>(in);
  auto pac_raw = get_vector<std::uint8_t>(in);
  const auto n_ambig = get<std::uint64_t>(in);
  std::vector<seq::AmbigInterval> ambig(n_ambig);
  for (auto& a : ambig) {
    a.begin = get<idx_t>(in);
    a.end = get<idx_t>(in);
  }
  // Rebuild the Reference from raw parts: decode the packed sequence per
  // contig and re-add (N runs were already replaced at build time).
  seq::PackedSequence pac;
  pac.assign_raw(std::move(pac_raw), pac_len);
  for (const auto& c : contigs) {
    auto codes = pac.extract(static_cast<std::size_t>(c.offset),
                             static_cast<std::size_t>(c.offset + c.length));
    index.mutable_ref().add_contig_codes(c.name, codes);
  }

  // BWT + occ tables.
  BwtData bwt;
  bwt.seq_len = get<idx_t>(in);
  bwt.primary = get<idx_t>(in);
  bwt.bwt = get_vector<seq::Code>(in);
  MEM2_REQUIRE(static_cast<idx_t>(bwt.bwt.size()) == bwt.seq_len,
               "index file BWT length mismatch");
  std::array<idx_t, 4> counts{};
  for (seq::Code c : bwt.bwt) ++counts[c];
  bwt.cum[0] = 1;
  for (int c = 0; c < 4; ++c) bwt.cum[static_cast<std::size_t>(c) + 1] = bwt.cum[static_cast<std::size_t>(c)] + counts[static_cast<std::size_t>(c)];

  index.mutable_fm128().build(bwt);
  index.mutable_fm128().store_raw_bwt(bwt);
  index.mutable_fm32().build(bwt);

  // SAL.
  const auto interval = get<std::int32_t>(in);
  index.mutable_sampled_sa().set_samples(get_vector<idx_t>(in), interval);
  const auto has_flat = get<std::uint8_t>(in);
  if (has_flat) index.mutable_flat_sa().build(get_vector<idx_t>(in));

  return index;
}

}  // namespace mem2::index
