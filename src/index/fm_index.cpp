#include "index/mem2_index.h"

#include "index/sais.h"

namespace mem2::index {

Mem2Index Mem2Index::build(seq::Reference ref, const IndexBuildOptions& opt) {
  Mem2Index idx;
  idx.ref_ = std::move(ref);
  MEM2_REQUIRE(idx.ref_.length() > 0, "cannot index an empty reference");

  // Text over both strands; one SA pass feeds every component.
  std::vector<seq::Code> fwd(static_cast<std::size_t>(idx.ref_.length()));
  idx.ref_.pac().extract(0, fwd.size(), fwd.data());
  const std::vector<seq::Code> text = with_reverse_complement(fwd);
  fwd.clear();
  fwd.shrink_to_fit();

  const std::vector<idx_t> sa = build_suffix_array(text);
  const BwtData bwt = derive_bwt(text, sa);

  if (opt.build_cp128) {
    idx.fm128_.build(bwt);
    idx.fm128_.store_raw_bwt(bwt);  // needed for baseline SAL LF-walks
  }
  if (opt.build_cp32) idx.fm32_.build(bwt);
  if (opt.build_sampled_sa) idx.sampled_sa_.build(sa, opt.sampled_interval);
  if (opt.build_flat_sa) idx.flat_sa_.build(sa);
  return idx;
}

std::vector<seq::Code> Mem2Index::fetch(idx_t rb, idx_t re) const {
  MEM2_REQUIRE(rb >= 0 && rb <= re && re <= seq_len(), "fetch out of range");
  const idx_t L = l_pac();
  std::vector<seq::Code> out;
  out.reserve(static_cast<std::size_t>(re - rb));
  if (re <= L) {
    for (idx_t p = rb; p < re; ++p) out.push_back(ref_.base(p));
  } else if (rb >= L) {
    // Entirely on the reverse strand: position p maps to forward
    // coordinate 2L-1-p, complemented, read in increasing p order.
    for (idx_t p = rb; p < re; ++p)
      out.push_back(seq::complement(ref_.base(2 * L - 1 - p)));
  } else {
    MEM2_REQUIRE(false, "fetch range must not cross the strand boundary");
  }
  return out;
}

}  // namespace mem2::index
