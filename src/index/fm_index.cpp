#include <chrono>

#include "index/mem2_index.h"
#include "index/sais.h"

namespace mem2::index {

namespace {

// Phase-timing shim around the optional progress callback.
class BuildPhases {
 public:
  explicit BuildPhases(const IndexBuildOptions& opt) : opt_(opt) {}

  template <class Fn>
  void run(const char* name, Fn&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    if (opt_.progress) {
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      opt_.progress(name, dt.count());
    }
  }

 private:
  const IndexBuildOptions& opt_;
};

}  // namespace

Mem2Index Mem2Index::build(seq::Reference ref, const IndexBuildOptions& opt) {
  Mem2Index idx;
  idx.ref_ = std::move(ref);
  MEM2_REQUIRE(idx.ref_.length() > 0, "cannot index an empty reference");

  const idx_t n2 = 2 * idx.ref_.length();
  // Fail before the expensive suffix-array pass: the 32-bit components
  // (CP32 counts, flat SA entries) cap the doubled length at 2^32-1.
  if (opt.build_cp32 || opt.build_flat_sa) OccCp32::check_text_length(n2);

  BuildPhases phases(opt);

  // Text over both strands; one SA pass feeds every component.
  std::vector<seq::Code> text;
  phases.run("pack-text", [&] {
    std::vector<seq::Code> fwd(static_cast<std::size_t>(idx.ref_.length()));
    idx.ref_.pac().extract(0, fwd.size(), fwd.data());
    text = with_reverse_complement(fwd);
  });

  // 32-bit SA whenever it fits (always, given the check above, unless only
  // baseline components of a >2G reference are requested): the SA-IS core
  // runs in the flat SA's own buffer, and the 64-bit path exists solely
  // for such oversized baseline-only builds.
  const bool narrow = static_cast<std::size_t>(n2) + 1 <=
                      static_cast<std::size_t>(0x7ffffffe);
  if (narrow) {
    util::BigVector<std::uint32_t> sa;
    phases.run("suffix-array",
               [&] { sa = build_suffix_array_u32(text, opt.threads); });
    BwtData bwt;
    phases.run("bwt", [&] {
      bwt = derive_bwt(text, sa);
      text.clear();
      text.shrink_to_fit();
    });
    if (opt.build_cp128) {
      phases.run("occ-cp128", [&] {
        idx.fm128_.build(bwt);
        idx.fm128_.store_raw_bwt(bwt);  // needed for baseline SAL LF-walks
      });
    }
    if (opt.build_cp32)
      phases.run("occ-cp32", [&] { idx.fm32_.build(bwt); });
    bwt.bwt.clear();
    bwt.bwt.shrink_to_fit();
    if (opt.build_sampled_sa) {
      phases.run("sampled-sa",
                 [&] { idx.sampled_sa_.build(sa, opt.sampled_interval); });
    }
    if (opt.build_flat_sa) {
      // Move, not copy: the SA buffer becomes the flat SA.
      phases.run("flat-sa", [&] { idx.flat_sa_.build(std::move(sa)); });
    }
  } else {
    std::vector<idx_t> sa;
    phases.run("suffix-array",
               [&] { sa = build_suffix_array(text, opt.threads); });
    BwtData bwt;
    phases.run("bwt", [&] {
      bwt = derive_bwt(text, sa);
      text.clear();
      text.shrink_to_fit();
    });
    if (opt.build_cp128) {
      phases.run("occ-cp128", [&] {
        idx.fm128_.build(bwt);
        idx.fm128_.store_raw_bwt(bwt);
      });
    }
    if (opt.build_cp32)
      phases.run("occ-cp32", [&] { idx.fm32_.build(bwt); });
    bwt.bwt.clear();
    bwt.bwt.shrink_to_fit();
    if (opt.build_sampled_sa) {
      phases.run("sampled-sa",
                 [&] { idx.sampled_sa_.build(sa, opt.sampled_interval); });
    }
    if (opt.build_flat_sa)
      phases.run("flat-sa", [&] { idx.flat_sa_.build(sa); });
  }
  return idx;
}

std::vector<seq::Code> Mem2Index::fetch(idx_t rb, idx_t re) const {
  MEM2_REQUIRE(rb >= 0 && rb <= re && re <= seq_len(), "fetch out of range");
  const idx_t L = l_pac();
  std::vector<seq::Code> out;
  out.reserve(static_cast<std::size_t>(re - rb));
  if (re <= L) {
    for (idx_t p = rb; p < re; ++p) out.push_back(ref_.base(p));
  } else if (rb >= L) {
    // Entirely on the reverse strand: position p maps to forward
    // coordinate 2L-1-p, complemented, read in increasing p order.
    for (idx_t p = rb; p < re; ++p)
      out.push_back(seq::complement(ref_.base(2 * L - 1 - p)));
  } else {
    MEM2_REQUIRE(false, "fetch range must not cross the strand boundary");
  }
  return out;
}

}  // namespace mem2::index
