// AVX2 kernels for the CP32 occurrence table (paper §4.4): byte-level
// compare of the 32-base bucket against the query base, movemask to a
// 32-bit mask, mask off positions >= y, popcount.
//
// This TU is compiled with -mavx2 -mpopcnt; callers reach it only through
// OccCp32's runtime-dispatched function pointers.
#include <immintrin.h>

#include "index/occ_cp32.h"

namespace mem2::index {

namespace {

inline std::uint32_t match_mask(const OccCp32::Bucket* bkt, int c) {
  const __m256i bases =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bkt->bases));
  const __m256i needle = _mm256_set1_epi8(static_cast<char>(c));
  const __m256i eq = _mm256_cmpeq_epi8(bases, needle);
  return static_cast<std::uint32_t>(_mm256_movemask_epi8(eq));
}

inline std::uint32_t below_y(int y) {
  // Bits [0, y); y in [0, 32].
  return y >= 32 ? 0xffffffffu : ((std::uint32_t{1} << y) - 1);
}

}  // namespace

int OccCp32::occ_in_bucket_avx2(const Bucket* bkt, int c, int y) {
  return __builtin_popcount(match_mask(bkt, c) & below_y(y));
}

void OccCp32::occ4_in_bucket_avx2(const Bucket* bkt, int y, idx_t out[4]) {
  const __m256i bases =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bkt->bases));
  const std::uint32_t lim = below_y(y);
  for (int c = 0; c < 4; ++c) {
    const __m256i eq = _mm256_cmpeq_epi8(bases, _mm256_set1_epi8(static_cast<char>(c)));
    const std::uint32_t m = static_cast<std::uint32_t>(_mm256_movemask_epi8(eq)) & lim;
    out[c] = static_cast<idx_t>(bkt->count[c]) + __builtin_popcount(m);
  }
}

}  // namespace mem2::index
