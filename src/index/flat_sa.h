// Optimized suffix-array lookup (paper §4.5): keep the SA uncompressed and
// answer SAL with a single array load — Equation (1), j = S[i].  Memory
// cost: 8 bytes/row (the paper's 48 GB for the human genome; megabytes at
// our scales).
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.h"
#include "util/prefetch.h"
#include "util/sw_counters.h"

namespace mem2::index {

class FlatSA {
 public:
  FlatSA() = default;

  void build(std::vector<idx_t> sa) { sa_ = std::move(sa); }

  idx_t lookup(idx_t r) const {
    auto& ctr = util::tls_counters();
    ++ctr.sa_lookups;
    ++ctr.sa_memory_loads;
    return sa_[static_cast<std::size_t>(r)];
  }

  /// Request the SA line holding row r ahead of a lookup (§4.3 discipline;
  /// the batched SAL gather issues these in waves running ahead of the
  /// loads so the random-line misses overlap).
  void prefetch(idx_t r) const {
    util::prefetch_r(&sa_[static_cast<std::size_t>(r)]);
    ++util::tls_counters().prefetches;
  }

  std::size_t size() const { return sa_.size(); }
  std::size_t memory_bytes() const { return sa_.size() * sizeof(idx_t); }
  const std::vector<idx_t>& values() const { return sa_; }

 private:
  std::vector<idx_t> sa_;
};

}  // namespace mem2::index
