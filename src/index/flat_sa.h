// Optimized suffix-array lookup (paper §4.5): keep the SA uncompressed and
// answer SAL with a single array load — Equation (1), j = S[i].
//
// Storage is uint32_t per row (not idx_t): the CP32 occ table already caps
// references below 2^32 doubled chars, so every SA value fits, which halves
// the resident table (4 bytes/row) and lets Mem2Index::build move the
// 32-bit SA-IS output buffer straight in with no widening copy.  Backed by
// util::BigVector for huge-page/NUMA placement — at chromosome scale this
// is the largest DRAM-resident structure and SAL hits it with dependent
// random loads.
#pragma once

#include <cstdint>
#include <vector>

#include "util/big_alloc.h"
#include "util/common.h"
#include "util/prefetch.h"
#include "util/sw_counters.h"

namespace mem2::index {

class FlatSA {
 public:
  FlatSA() = default;

  /// Take ownership of a 32-bit SA buffer (the memory-lean build path).
  void build(util::BigVector<std::uint32_t> sa) { sa_ = std::move(sa); }

  /// Widening-source compatibility path (tests, v1 loader): narrows each
  /// value, which is always lossless under the CP32 length cap.
  void build(const std::vector<idx_t>& sa) {
    sa_.resize(sa.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      MEM2_REQUIRE(sa[i] >= 0 && sa[i] <= idx_t{0xffffffff},
                   "flat SA value out of 32-bit range");
      sa_[i] = static_cast<std::uint32_t>(sa[i]);
    }
  }

  idx_t lookup(idx_t r) const {
    auto& ctr = util::tls_counters();
    ++ctr.sa_lookups;
    ++ctr.sa_memory_loads;
    return static_cast<idx_t>(sa_[static_cast<std::size_t>(r)]);
  }

  /// Request the SA line holding row r ahead of a lookup (§4.3 discipline;
  /// the batched SAL gather issues these in waves running ahead of the
  /// loads so the random-line misses overlap).
  void prefetch(idx_t r) const {
    util::prefetch_r(&sa_[static_cast<std::size_t>(r)]);
    ++util::tls_counters().prefetches;
  }

  std::size_t size() const { return sa_.size(); }
  std::size_t memory_bytes() const { return sa_.size() * sizeof(std::uint32_t); }
  const util::BigVector<std::uint32_t>& values_u32() const { return sa_; }

 private:
  util::BigVector<std::uint32_t> sa_;
};

}  // namespace mem2::index
