// FlatSA is header-only; TU kept so the module has a home for future
// packed (e.g. 40-bit) SA representations without touching the build.
#include "index/flat_sa.h"
