#include "index/occ_cp32.h"

#include <string>

namespace mem2::index {

void OccCp32::check_text_length(idx_t seq_len) {
  constexpr idx_t kMax = (idx_t{1} << 32) - 1;
  if (seq_len > kMax)
    throw mem2::invariant_error(
        "CP32 occ table stores uint32_t bucket counts: doubled sequence "
        "length " +
        std::to_string(seq_len) + " exceeds the 4294967295 (2^32-1) limit; "
        "build with build_cp32=false and build_flat_sa=false for longer "
        "references");
}

void OccCp32::build(const std::vector<seq::Code>& bwt) {
  check_text_length(static_cast<idx_t>(bwt.size()));
  size_ = static_cast<idx_t>(bwt.size());
  const std::size_t n_buckets = bwt.size() / kBucket + 1;
  buckets_.assign(n_buckets, Bucket{});

  std::uint32_t running[4] = {0, 0, 0, 0};
  for (std::size_t b = 0; b < n_buckets; ++b) {
    for (int c = 0; c < 4; ++c) buckets_[b].count[c] = running[c];
    for (int r = 0; r < kBucket; ++r) {
      const std::size_t pos = b * kBucket + static_cast<std::size_t>(r);
      if (pos >= bwt.size()) break;
      buckets_[b].bases[r] = bwt[pos];
      ++running[bwt[pos]];
    }
  }
  select_kernels(util::dispatch_isa());
}

void OccCp32::select_kernels(util::Isa isa) {
  if (isa >= util::Isa::kAvx2) {
    occ_in_bucket_ = &occ_in_bucket_avx2;
    occ4_in_bucket_ = &occ4_in_bucket_avx2;
  } else {
    occ_in_bucket_ = &occ_in_bucket_scalar;
    occ4_in_bucket_ = &occ4_in_bucket_scalar;
  }
}

int OccCp32::occ_in_bucket_scalar(const Bucket* bkt, int c, int y) {
  int n = 0;
  for (int i = 0; i < y; ++i) n += bkt->bases[i] == c;
  return n;
}

void OccCp32::occ4_in_bucket_scalar(const Bucket* bkt, int y, idx_t out[4]) {
  int n[4] = {0, 0, 0, 0};
  for (int i = 0; i < y; ++i) ++n[bkt->bases[i]];
  for (int c = 0; c < 4; ++c)
    out[c] = static_cast<idx_t>(bkt->count[c]) + n[c];
}

}  // namespace mem2::index
