#include "index/bwt.h"

namespace mem2::index {

namespace {

template <class SaVec>
BwtData derive_bwt_impl(const std::vector<seq::Code>& text, const SaVec& sa) {
  const idx_t n = static_cast<idx_t>(text.size());
  MEM2_REQUIRE(static_cast<idx_t>(sa.size()) == n + 1, "suffix array size must be N+1");
  MEM2_REQUIRE(static_cast<idx_t>(sa[0]) == n, "sa[0] must be the sentinel suffix");

  BwtData out;
  out.seq_len = n;
  out.bwt.reserve(static_cast<std::size_t>(n));

  std::array<idx_t, 4> counts{};
  for (seq::Code c : text) {
    MEM2_REQUIRE(c < 4, "BWT input must be ACGT codes");
    ++counts[c];
  }
  out.cum[0] = 1;  // the $ row
  for (int c = 0; c < 4; ++c) out.cum[static_cast<std::size_t>(c) + 1] = out.cum[static_cast<std::size_t>(c)] + counts[static_cast<std::size_t>(c)];

  out.primary = -1;
  for (idx_t r = 0; r <= n; ++r) {
    const idx_t p = static_cast<idx_t>(sa[static_cast<std::size_t>(r)]);
    if (p == 0) {
      out.primary = r;  // last column is $ here; skip storing
      continue;
    }
    out.bwt.push_back(text[static_cast<std::size_t>(p - 1)]);
  }
  MEM2_REQUIRE(out.primary >= 0, "suffix array misses the primary row");
  MEM2_REQUIRE(static_cast<idx_t>(out.bwt.size()) == n, "BWT length mismatch");
  return out;
}

}  // namespace

BwtData derive_bwt(const std::vector<seq::Code>& text, const std::vector<idx_t>& sa) {
  return derive_bwt_impl(text, sa);
}

BwtData derive_bwt(const std::vector<seq::Code>& text,
                   const util::BigVector<std::uint32_t>& sa) {
  return derive_bwt_impl(text, sa);
}

std::vector<seq::Code> with_reverse_complement(const std::vector<seq::Code>& text) {
  std::vector<seq::Code> t;
  t.reserve(text.size() * 2);
  t.insert(t.end(), text.begin(), text.end());
  for (std::size_t i = text.size(); i-- > 0;)
    t.push_back(seq::complement(text[i]));
  return t;
}

}  // namespace mem2::index
