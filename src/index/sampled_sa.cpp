// SampledSAT is header-only (template); this TU pins the common explicit
// instantiations so every user doesn't re-instantiate them.
#include "index/sampled_sa.h"

namespace mem2::index {

template class SampledSAT<FmIndexCp128>;
template class SampledSAT<FmIndexCp32>;

}  // namespace mem2::index
