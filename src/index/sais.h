// Suffix array construction via SA-IS (Nong, Zhang, Chan 2009).
//
// BWA builds its BWT with a BWT-specific variant of induced sorting; we need
// the explicit suffix array anyway (the optimized SAL keeps it uncompressed,
// paper §4.5), so we build SA once with SA-IS — linear time, linear extra
// space — and derive BWT, sampled SA and flat SA from it.
//
// This implementation is built for chromosome-scale references:
//   - Level 0 walks the 2-bit code text directly (a virtual +1 shift maps
//     the appended sentinel to 0) instead of copying it into an int64_t
//     array, and recursion levels use 32-bit indices whenever the reduced
//     string fits, so peak temporary space is ~5 bytes/char with the
//     narrow entry point (vs ~25 for the old copy-everything core).
//   - The O(n) scan passes (type classification, bucket counting, LMS
//     collection/placement, substring naming, reduced-string gather) are
//     OpenMP-parallel with exact precomputed write slots, so the output is
//     byte-identical to the serial path for any thread count.  The two
//     induced-sorting sweeps are inherently sequential and stay serial.
//
// Convention: the input is a code sequence over {0..3} (ACGT); a virtual
// sentinel smaller than every code terminates the string.  The returned
// suffix array has length n+1 with sa[0] == n (the sentinel suffix), matching
// the BW-matrix of R'$ with 2L+1 rows used throughout the index module.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/dna.h"
#include "util/big_alloc.h"
#include "util/common.h"

namespace mem2::index {

/// Build the suffix array of `text` (codes 0..3) + virtual sentinel.
/// Result size is text.size() + 1, result[0] == text.size().
/// `threads` <= 0 means use the OpenMP default; the result is identical
/// for every thread count.
std::vector<idx_t> build_suffix_array(const std::vector<seq::Code>& text,
                                      int threads = 0);

/// Same suffix array in 32-bit storage (valid because the index already
/// caps references below 2^32 doubled chars — see OccCp32); this is the
/// memory-lean entry the index build uses: the SA-IS core runs directly in
/// the returned buffer, peak ~5 bytes/char of temporaries, and the buffer
/// can be moved into the flat SA without a widening copy.
/// Requires text.size() + 1 to fit in int32_t.
util::BigVector<std::uint32_t> build_suffix_array_u32(
    const std::vector<seq::Code>& text, int threads = 0);

/// Reference implementation used by property tests: O(n^2 log n) comparison
/// sort of suffixes with sentinel semantics.  Exposed so tests and the
/// documentation example can cross-check SA-IS.
std::vector<idx_t> build_suffix_array_naive(const std::vector<seq::Code>& text);

/// Test hook: force the 64-bit core for working lengths above `limit`, so
/// small inputs exercise the 64-bit top level and its narrowing into the
/// 32-bit recursion (in production only >2 GB texts would).  `limit` == 0
/// restores the default (everything that fits int32_t runs narrow).  Not
/// thread-safe; tests only.
void set_sais_narrow_limit_for_test(std::size_t limit);

}  // namespace mem2::index
