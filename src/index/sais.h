// Suffix array construction via SA-IS (Nong, Zhang, Chan 2009).
//
// BWA builds its BWT with a BWT-specific variant of induced sorting; we need
// the explicit suffix array anyway (the optimized SAL keeps it uncompressed,
// paper §4.5), so we build SA once with SA-IS — linear time, linear extra
// space — and derive BWT, sampled SA and flat SA from it.
//
// Convention: the input is a code sequence over {0..3} (ACGT); a virtual
// sentinel smaller than every code terminates the string.  The returned
// suffix array has length n+1 with sa[0] == n (the sentinel suffix), matching
// the BW-matrix of R'$ with 2L+1 rows used throughout the index module.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/dna.h"
#include "util/common.h"

namespace mem2::index {

/// Build the suffix array of `text` (codes 0..3) + virtual sentinel.
/// Result size is text.size() + 1, result[0] == text.size().
std::vector<idx_t> build_suffix_array(const std::vector<seq::Code>& text);

/// Reference implementation used by property tests: O(n^2 log n) comparison
/// sort of suffixes with sentinel semantics.  Exposed so tests and the
/// documentation example can cross-check SA-IS.
std::vector<idx_t> build_suffix_array_naive(const std::vector<seq::Code>& text);

}  // namespace mem2::index
