// Burrows-Wheeler transform of the bidirectional reference text.
//
// The indexed text is T = R · revcomp(R) (length N = 2L) plus a virtual
// sentinel $, giving a BW matrix of N+1 rows.  Like BWA we store the BWT
// with the sentinel REMOVED: `bwt[j]` holds the base codes of the last
// column for all rows except `primary` (the row whose last-column character
// is $).  Occ backends count over this N-entry array; the FM-index wrapper
// translates BW-row coordinates (util in fm_index.h).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "seq/dna.h"
#include "util/big_alloc.h"
#include "util/common.h"

namespace mem2::index {

struct BwtData {
  idx_t seq_len = 0;   // N = length of indexed text (2L)
  idx_t primary = 0;   // BW row whose last-column character is $
  /// cum[c] = BW row of the first rotation starting with base c
  ///        = 1 (the $ row) + number of base occurrences < c.
  /// cum[4] = N + 1 (one past the last row).
  std::array<idx_t, 5> cum{};
  /// Sentinel-free last column, length N, codes 0..3.
  std::vector<seq::Code> bwt;
};

/// Derive BWT data from a text and its suffix array (as produced by
/// build_suffix_array: length N+1, sa[0] == N).  The 32-bit overload runs
/// on build_suffix_array_u32 output so the chromosome-scale build never
/// widens the SA.
BwtData derive_bwt(const std::vector<seq::Code>& text, const std::vector<idx_t>& sa);
BwtData derive_bwt(const std::vector<seq::Code>& text,
                   const util::BigVector<std::uint32_t>& sa);

/// Build T = text · revcomp(text); the standard input to the index.
std::vector<seq::Code> with_reverse_complement(const std::vector<seq::Code>& text);

}  // namespace mem2::index
