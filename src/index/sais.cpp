#include "index/sais.h"

#include <algorithm>
#include <numeric>

namespace mem2::index {

namespace {

// Generic SA-IS over an integer alphabet.  `s` must end with a unique
// smallest sentinel (value 0) at s[n-1].  Writes the suffix array of s into
// sa[0..n-1].  K is the alphabet size (max value + 1).
void sais_core(const std::vector<std::int64_t>& s, std::vector<idx_t>& sa, std::int64_t K) {
  const std::int64_t n = static_cast<std::int64_t>(s.size());
  sa.assign(static_cast<std::size_t>(n), -1);
  if (n == 0) return;
  if (n == 1) {
    sa[0] = 0;
    return;
  }

  // Classify suffixes: S-type (true) or L-type (false).
  std::vector<bool> is_s(static_cast<std::size_t>(n));
  is_s[static_cast<std::size_t>(n - 1)] = true;
  for (std::int64_t i = n - 2; i >= 0; --i)
    is_s[static_cast<std::size_t>(i)] =
        s[static_cast<std::size_t>(i)] < s[static_cast<std::size_t>(i + 1)] ||
        (s[static_cast<std::size_t>(i)] == s[static_cast<std::size_t>(i + 1)] &&
         is_s[static_cast<std::size_t>(i + 1)]);

  auto is_lms = [&](std::int64_t i) {
    return i > 0 && is_s[static_cast<std::size_t>(i)] && !is_s[static_cast<std::size_t>(i - 1)];
  };

  // Bucket boundaries.
  std::vector<std::int64_t> bucket(static_cast<std::size_t>(K), 0);
  for (std::int64_t c : s) ++bucket[static_cast<std::size_t>(c)];

  std::vector<std::int64_t> bkt(static_cast<std::size_t>(K));
  auto bucket_ends = [&] {
    std::int64_t sum = 0;
    for (std::int64_t c = 0; c < K; ++c) {
      sum += bucket[static_cast<std::size_t>(c)];
      bkt[static_cast<std::size_t>(c)] = sum;  // exclusive end
    }
  };
  auto bucket_starts = [&] {
    std::int64_t sum = 0;
    for (std::int64_t c = 0; c < K; ++c) {
      bkt[static_cast<std::size_t>(c)] = sum;
      sum += bucket[static_cast<std::size_t>(c)];
    }
  };

  auto induce = [&] {
    // Induce L-type from LMS positions already placed.
    bucket_starts();
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t j = sa[static_cast<std::size_t>(i)] - 1;
      if (j >= 0 && !is_s[static_cast<std::size_t>(j)])
        sa[static_cast<std::size_t>(bkt[static_cast<std::size_t>(s[static_cast<std::size_t>(j)])]++)] = j;
    }
    // Induce S-type.
    bucket_ends();
    for (std::int64_t i = n - 1; i >= 0; --i) {
      const std::int64_t j = sa[static_cast<std::size_t>(i)] - 1;
      if (j >= 0 && is_s[static_cast<std::size_t>(j)])
        sa[static_cast<std::size_t>(--bkt[static_cast<std::size_t>(s[static_cast<std::size_t>(j)])])] = j;
    }
  };

  // Step 1: place LMS suffixes at the ends of their buckets, induce.
  bucket_ends();
  for (std::int64_t i = n - 1; i >= 0; --i)
    if (is_lms(i))
      sa[static_cast<std::size_t>(--bkt[static_cast<std::size_t>(s[static_cast<std::size_t>(i)])])] = i;
  induce();

  // Step 2: name LMS substrings in SA order.
  std::vector<std::int64_t> lms_order;
  lms_order.reserve(static_cast<std::size_t>(n / 2 + 1));
  for (std::int64_t i = 0; i < n; ++i)
    if (is_lms(sa[static_cast<std::size_t>(i)])) lms_order.push_back(sa[static_cast<std::size_t>(i)]);

  std::vector<std::int64_t> name_of(static_cast<std::size_t>(n), -1);
  std::int64_t names = 0;
  std::int64_t prev = -1;
  for (std::int64_t p : lms_order) {
    bool same = false;
    if (prev >= 0) {
      // Compare LMS substrings starting at prev and p.
      same = true;
      for (std::int64_t d = 0;; ++d) {
        const std::int64_t a = prev + d, b = p + d;
        if (a >= n || b >= n) {
          same = false;
          break;
        }
        const bool a_lms = d > 0 && is_lms(a);
        const bool b_lms = d > 0 && is_lms(b);
        if (s[static_cast<std::size_t>(a)] != s[static_cast<std::size_t>(b)] || a_lms != b_lms) {
          same = false;
          break;
        }
        if (a_lms && b_lms) break;  // full LMS substring matched
      }
    }
    if (!same) ++names;
    name_of[static_cast<std::size_t>(p)] = names - 1;
    prev = p;
  }

  // Collect LMS positions in text order and their names.
  std::vector<std::int64_t> lms_pos;
  for (std::int64_t i = 0; i < n; ++i)
    if (is_lms(i)) lms_pos.push_back(i);
  const std::int64_t m = static_cast<std::int64_t>(lms_pos.size());

  std::vector<std::int64_t> sorted_lms(static_cast<std::size_t>(m));
  if (names < m) {
    // Recurse on the reduced string.
    std::vector<std::int64_t> reduced(static_cast<std::size_t>(m));
    for (std::int64_t i = 0; i < m; ++i)
      reduced[static_cast<std::size_t>(i)] = name_of[static_cast<std::size_t>(lms_pos[static_cast<std::size_t>(i)])];
    std::vector<idx_t> sub_sa;
    sais_core(reduced, sub_sa, names);
    for (std::int64_t i = 0; i < m; ++i)
      sorted_lms[static_cast<std::size_t>(i)] = lms_pos[static_cast<std::size_t>(sub_sa[static_cast<std::size_t>(i)])];
  } else {
    // Names unique: order LMS suffixes directly by name.
    for (std::int64_t i = 0; i < m; ++i)
      sorted_lms[static_cast<std::size_t>(name_of[static_cast<std::size_t>(lms_pos[static_cast<std::size_t>(i)])])] =
          lms_pos[static_cast<std::size_t>(i)];
  }

  // Step 3: place sorted LMS suffixes, induce final SA.
  std::fill(sa.begin(), sa.end(), -1);
  bucket_ends();
  for (std::int64_t i = m - 1; i >= 0; --i) {
    const std::int64_t p = sorted_lms[static_cast<std::size_t>(i)];
    sa[static_cast<std::size_t>(--bkt[static_cast<std::size_t>(s[static_cast<std::size_t>(p)])])] = p;
  }
  induce();
}

}  // namespace

std::vector<idx_t> build_suffix_array(const std::vector<seq::Code>& text) {
  // Shift codes by +1 so the appended sentinel can be 0 (unique smallest).
  std::vector<std::int64_t> s(text.size() + 1);
  for (std::size_t i = 0; i < text.size(); ++i) {
    MEM2_REQUIRE(text[i] < 4, "suffix array input must be ACGT codes");
    s[i] = static_cast<std::int64_t>(text[i]) + 1;
  }
  s[text.size()] = 0;

  std::vector<idx_t> sa;
  sais_core(s, sa, 5);
  return sa;
}

std::vector<idx_t> build_suffix_array_naive(const std::vector<seq::Code>& text) {
  const idx_t n = static_cast<idx_t>(text.size());
  std::vector<idx_t> sa(static_cast<std::size_t>(n) + 1);
  std::iota(sa.begin(), sa.end(), idx_t{0});
  std::sort(sa.begin(), sa.end(), [&](idx_t a, idx_t b) {
    // Compare suffixes text[a..]$ and text[b..]$ with $ smallest.
    while (a < n && b < n) {
      if (text[static_cast<std::size_t>(a)] != text[static_cast<std::size_t>(b)])
        return text[static_cast<std::size_t>(a)] < text[static_cast<std::size_t>(b)];
      ++a;
      ++b;
    }
    return a == n && b != n;  // shorter suffix (hits $) sorts first
  });
  return sa;
}

}  // namespace mem2::index
