#include "index/sais.h"

#include <omp.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>

namespace mem2::index {

namespace {

// Below this working length a level runs serial: the scan passes are
// microseconds and OpenMP fork/join would dominate.  Parallel and serial
// paths write identical bytes, so the cutoff is invisible in the output.
constexpr std::int64_t kParCutoff = 1 << 16;

// Parallel histogram/placement passes keep per-block bucket tables; past
// this alphabet size the tables outweigh the scan and a serial pass wins.
constexpr std::int64_t kParAlphabetMax = 4096;

constexpr std::size_t kNarrowMax =
    static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()) - 1;

std::size_t g_narrow_limit = 0;  // 0 = kNarrowMax; see the test hook

int resolve_threads(int threads) {
  return threads > 0 ? threads : omp_get_max_threads();
}

// S/L type flags packed one bit per position.  Parallel classification
// partitions on 64-position boundaries so each word has one writer.
class TypeBits {
 public:
  void resize(std::int64_t n) {
    w_.assign(static_cast<std::size_t>((n + 63) / 64), 0);
  }
  bool s_type(std::int64_t i) const {
    return (w_[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1;
  }
  void set(std::int64_t i, bool v) {
    const std::uint64_t m = std::uint64_t{1} << (i & 63);
    auto& w = w_[static_cast<std::size_t>(i >> 6)];
    if (v)
      w |= m;
    else
      w &= ~m;
  }

 private:
  std::vector<std::uint64_t> w_;
};

// Level-0 view of the 2-bit code text: codes shift +1 and the virtual
// sentinel reads as 0 at position n-1, so no int64_t copy of the text is
// ever made.  n is the working length (text chars + 1).
template <class I>
struct Level0Text {
  const seq::Code* p;
  I n;
  I operator[](I i) const {
    return i + 1 == n ? I{0} : static_cast<I>(p[i] + 1);
  }
};

// Recursion levels sort a materialized reduced string.
template <class I>
struct ArrText {
  const I* p;
  I operator[](I i) const { return p[i]; }
};

// Bucket scratch shared down same-width recursion chains; each level
// resizes in place, so deep recursions reuse one pair of allocations.
template <class I>
struct Ws {
  std::vector<I> cnt;   // per-char suffix counts (size K)
  std::vector<I> bkt;   // rolling bucket cursors (size K)
  std::vector<I> hist;  // per-thread/per-block tables for parallel passes
};

template <class I>
void bucket_starts(const std::vector<I>& cnt, std::vector<I>& bkt, I K) {
  I sum = 0;
  for (I c = 0; c < K; ++c) {
    bkt[static_cast<std::size_t>(c)] = sum;
    sum += cnt[static_cast<std::size_t>(c)];
  }
}

template <class I>
void bucket_ends(const std::vector<I>& cnt, std::vector<I>& bkt, I K) {
  I sum = 0;
  for (I c = 0; c < K; ++c) {
    sum += cnt[static_cast<std::size_t>(c)];
    bkt[static_cast<std::size_t>(c)] = sum;  // exclusive end
  }
}

// Type of position p resolved without the table: run forward over the
// equal-character run (bounded; s[n-1] is the unique smallest so runs
// never reach it) and compare at the first inequality.
template <class I, class Text>
bool type_at(const Text& s, I n, I p) {
  I j = p;
  while (j + 1 < n && s[j] == s[j + 1]) ++j;
  return j + 1 == n || s[j] < s[j + 1];
}

template <class I, class Text>
void classify(const Text& s, I n, TypeBits& t, int nt) {
  t.resize(n);
  if (nt <= 1 || n < kParCutoff) {
    bool next = true;
    t.set(n - 1, true);
    for (I i = n - 2; i >= 0; --i) {
      const bool cur = s[i] < s[i + 1] || (s[i] == s[i + 1] && next);
      t.set(i, cur);
      next = cur;
    }
    return;
  }
  const int nb = nt;
  std::vector<I> lo(static_cast<std::size_t>(nb) + 1);
  for (int b = 0; b < nb; ++b) {
    // 64-aligned boundaries: one writer per bitmap word.
    lo[static_cast<std::size_t>(b)] =
        static_cast<I>((static_cast<std::int64_t>(n) * b / nb) &
                       ~std::int64_t{63});
  }
  lo[static_cast<std::size_t>(nb)] = n;
  // Types at block boundaries, resolved by bounded forward runs so blocks
  // never wait on each other.
  std::vector<unsigned char> boundary(static_cast<std::size_t>(nb) + 1, 1);
  for (int b = 1; b < nb; ++b) {
    const I p = lo[static_cast<std::size_t>(b)];
    if (p < n) boundary[static_cast<std::size_t>(b)] = type_at(s, n, p);
  }
#pragma omp parallel for num_threads(nt) schedule(static, 1)
  for (int b = 0; b < nb; ++b) {
    const I blo = lo[static_cast<std::size_t>(b)];
    const I bhi = lo[static_cast<std::size_t>(b) + 1];
    if (blo >= bhi) continue;
    bool next = b + 1 <= nb ? boundary[static_cast<std::size_t>(b) + 1] != 0
                            : true;
    for (I i = bhi - 1; i >= blo; --i) {
      const bool cur =
          i == n - 1 ? true
                     : (s[i] < s[i + 1] || (s[i] == s[i + 1] && next));
      t.set(i, cur);
      next = cur;
    }
  }
}

template <class I, class Text>
void count_chars(const Text& s, I n, I K, Ws<I>& ws, int nt) {
  ws.cnt.assign(static_cast<std::size_t>(K), 0);
  if (nt <= 1 || n < kParCutoff || K > kParAlphabetMax) {
    for (I i = 0; i < n; ++i) ++ws.cnt[static_cast<std::size_t>(s[i])];
    return;
  }
  ws.hist.assign(static_cast<std::size_t>(nt) * static_cast<std::size_t>(K),
                 0);
#pragma omp parallel num_threads(nt)
  {
    I* h = ws.hist.data() +
           static_cast<std::size_t>(omp_get_thread_num()) *
               static_cast<std::size_t>(K);
#pragma omp for schedule(static)
    for (I i = 0; i < n; ++i) ++h[static_cast<std::size_t>(s[i])];
  }
  for (int tid = 0; tid < nt; ++tid) {
    const I* h = ws.hist.data() +
                 static_cast<std::size_t>(tid) * static_cast<std::size_t>(K);
    for (I c = 0; c < K; ++c) ws.cnt[static_cast<std::size_t>(c)] += h[c];
  }
}

template <class I>
bool is_lms(const TypeBits& t, I i) {
  return i > 0 && t.s_type(i) && !t.s_type(i - 1);
}

// LMS positions in ascending text order.  Parallel path counts per block,
// prefix-sums, then fills exact slots — identical layout to the serial
// append loop.
template <class I, class Text>
void collect_lms(const Text& s, I n, const TypeBits& t, std::vector<I>& lms,
                 int nt) {
  (void)s;
  if (nt <= 1 || n < kParCutoff) {
    lms.clear();
    for (I i = 1; i < n; ++i)
      if (is_lms(t, i)) lms.push_back(i);
    return;
  }
  const int nb = nt;
  std::vector<I> lo(static_cast<std::size_t>(nb) + 1);
  for (int b = 0; b <= nb; ++b)
    lo[static_cast<std::size_t>(b)] = static_cast<I>(
        1 + (static_cast<std::int64_t>(n) - 1) * b / nb);
  std::vector<I> bcnt(static_cast<std::size_t>(nb), 0);
#pragma omp parallel for num_threads(nt) schedule(static, 1)
  for (int b = 0; b < nb; ++b) {
    I c = 0;
    for (I i = lo[static_cast<std::size_t>(b)];
         i < lo[static_cast<std::size_t>(b) + 1]; ++i)
      if (is_lms(t, i)) ++c;
    bcnt[static_cast<std::size_t>(b)] = c;
  }
  std::vector<I> off(static_cast<std::size_t>(nb) + 1, 0);
  for (int b = 0; b < nb; ++b)
    off[static_cast<std::size_t>(b) + 1] =
        off[static_cast<std::size_t>(b)] + bcnt[static_cast<std::size_t>(b)];
  lms.resize(static_cast<std::size_t>(off[static_cast<std::size_t>(nb)]));
#pragma omp parallel for num_threads(nt) schedule(static, 1)
  for (int b = 0; b < nb; ++b) {
    I k = off[static_cast<std::size_t>(b)];
    for (I i = lo[static_cast<std::size_t>(b)];
         i < lo[static_cast<std::size_t>(b) + 1]; ++i)
      if (is_lms(t, i)) lms[static_cast<std::size_t>(k++)] = i;
  }
}

// Place LMS suffixes at their bucket ends.  The serial reference walks the
// LMS list descending; the parallel path precomputes, per block and per
// character, exactly which slot the descending walk would pick (bucket end
// minus the count of same-character LMS at later text positions) and
// scatters without coordination.
template <class I, class Text>
void place_lms(const Text& s, I n, I K, const std::vector<I>& lms, I* sa,
               Ws<I>& ws, int nt) {
  const auto m = static_cast<std::int64_t>(lms.size());
  bucket_ends(ws.cnt, ws.bkt, K);
  if (nt <= 1 || n < kParCutoff || K > kParAlphabetMax || m < kParCutoff) {
    for (std::int64_t j = m - 1; j >= 0; --j) {
      const I p = lms[static_cast<std::size_t>(j)];
      sa[--ws.bkt[static_cast<std::size_t>(s[p])]] = p;
    }
    return;
  }
  const int nb = nt;
  const std::size_t K_sz = static_cast<std::size_t>(K);
  std::vector<I>& blk = ws.hist;
  blk.assign(static_cast<std::size_t>(nb) * K_sz, 0);
  auto block_range = [&](int b) {
    return std::pair<std::int64_t, std::int64_t>(m * b / nb,
                                                 m * (b + 1) / nb);
  };
#pragma omp parallel for num_threads(nt) schedule(static, 1)
  for (int b = 0; b < nb; ++b) {
    const auto [jlo, jhi] = block_range(b);
    I* cb = blk.data() + static_cast<std::size_t>(b) * K_sz;
    for (std::int64_t j = jlo; j < jhi; ++j)
      ++cb[static_cast<std::size_t>(s[lms[static_cast<std::size_t>(j)]])];
  }
  // total[c] and exclusive per-block offsets, in one sweep.
  std::vector<I> total(K_sz, 0);
  for (int b = 0; b < nb; ++b) {
    I* cb = blk.data() + static_cast<std::size_t>(b) * K_sz;
    for (std::size_t c = 0; c < K_sz; ++c) {
      const I v = cb[c];
      cb[c] = total[c];
      total[c] += v;
    }
  }
#pragma omp parallel for num_threads(nt) schedule(static, 1)
  for (int b = 0; b < nb; ++b) {
    const auto [jlo, jhi] = block_range(b);
    std::vector<I> cur(blk.data() + static_cast<std::size_t>(b) * K_sz,
                       blk.data() + static_cast<std::size_t>(b + 1) * K_sz);
    for (std::int64_t j = jlo; j < jhi; ++j) {
      const I p = lms[static_cast<std::size_t>(j)];
      const auto c = static_cast<std::size_t>(s[p]);
      sa[ws.bkt[c] - total[c] + cur[c]++] = p;
    }
  }
}

// The two induced-sorting sweeps: inherently sequential (each placement
// may feed the next read), kept serial at every level.
template <class I, class Text>
void induce(const Text& s, I n, I K, const TypeBits& t, I* sa, Ws<I>& ws) {
  bucket_starts(ws.cnt, ws.bkt, K);
  for (I i = 0; i < n; ++i) {
    const I v = sa[i];
    if (v > 0 && !t.s_type(v - 1))
      sa[ws.bkt[static_cast<std::size_t>(s[v - 1])]++] = v - 1;
  }
  bucket_ends(ws.cnt, ws.bkt, K);
  for (I i = n - 1; i >= 0; --i) {
    const I v = sa[i];
    if (v > 0 && t.s_type(v - 1))
      sa[--ws.bkt[static_cast<std::size_t>(s[v - 1])]] = v - 1;
  }
}

// Whether the LMS substrings at a and b differ (either in characters, or
// in where they end).
template <class I, class Text>
bool lms_differ(const Text& s, I n, const TypeBits& t, I a, I b) {
  for (I d = 0;; ++d) {
    const I x = a + d, y = b + d;
    if (x >= n || y >= n) return true;
    const bool x_end = d > 0 && is_lms(t, x);
    const bool y_end = d > 0 && is_lms(t, y);
    if (s[x] != s[y] || x_end != y_end) return true;
    if (x_end) return false;  // both substrings fully matched
  }
}

template <class I, class Text>
void sais_rec(const Text& s, const I n, const I K, I* const sa, Ws<I>& ws,
              const int nt);

// Reduced-string recursion, narrowing to 32-bit indices when the reduced
// length fits (it always does except for >2G-char texts at level 0).
// Writes the sorted order of the reduced string's suffixes into sa[0..m).
template <class I>
void recurse_reduced(const std::vector<I>& names_in_text_order, I m, I names,
                     I* sa, Ws<I>& ws, int nt) {
  if constexpr (sizeof(I) == 8) {
    if (static_cast<std::size_t>(m) <= kNarrowMax) {
      std::vector<std::int32_t> reduced(static_cast<std::size_t>(m));
      const bool par = nt > 1 && m >= kParCutoff;
#pragma omp parallel for num_threads(nt) if (par)
      for (I j = 0; j < m; ++j)
        reduced[static_cast<std::size_t>(j)] =
            static_cast<std::int32_t>(names_in_text_order[static_cast<std::size_t>(j)]);
      std::vector<std::int32_t> sub(static_cast<std::size_t>(m));
      Ws<std::int32_t> ws32;
      sais_rec<std::int32_t>(
          ArrText<std::int32_t>{reduced.data()}, static_cast<std::int32_t>(m),
          static_cast<std::int32_t>(names), sub.data(), ws32, nt);
#pragma omp parallel for num_threads(nt) if (par)
      for (I j = 0; j < m; ++j)
        sa[j] = static_cast<I>(sub[static_cast<std::size_t>(j)]);
      return;
    }
  }
  sais_rec<I>(ArrText<I>{names_in_text_order.data()}, m, names, sa, ws, nt);
}

// One SA-IS level over s[0..n): s[n-1] must be the unique smallest value
// (0).  Writes the suffix array into sa[0..n).
template <class I, class Text>
void sais_rec(const Text& s, const I n, const I K, I* const sa, Ws<I>& ws,
              const int nt) {
  constexpr I kEmpty = static_cast<I>(-1);
  if (n == 1) {
    sa[0] = 0;
    return;
  }
  const bool par = nt > 1 && n >= kParCutoff;

  TypeBits t;  // per frame: the parent needs its own types after recursion
  classify(s, n, t, nt);
  count_chars(s, n, K, ws, nt);
  ws.bkt.resize(static_cast<std::size_t>(K));

  std::vector<I> lms;
  collect_lms(s, n, t, lms, nt);
  const I m = static_cast<I>(lms.size());

  // Stage 1: approximate order — place LMS suffixes, induce L then S.
#pragma omp parallel for num_threads(nt) if (par)
  for (I i = 0; i < n; ++i) sa[i] = kEmpty;
  place_lms(s, n, K, lms, sa, ws, nt);
  induce(s, n, K, t, sa, ws);

  // Stage 2: compact the now-sorted LMS suffixes into sa[0..m), then name
  // LMS substrings.  Names live in sa[m..n): slot m + (pos >> 1) — LMS
  // positions are >= 2 apart so pos >> 1 is injective and fits because
  // m <= n/2.
  {
    I k = 0;
    for (I i = 0; i < n; ++i) {
      const I v = sa[i];
      if (is_lms(t, v)) sa[k++] = v;
    }
    MEM2_REQUIRE(k == m, "SA-IS: LMS compaction lost positions");
  }
  I* const nm = sa + m;
  nm[sa[0] >> 1] = 1;
#pragma omp parallel for num_threads(nt) if (par) schedule(dynamic, 4096)
  for (I j = 1; j < m; ++j)
    nm[sa[j] >> 1] = lms_differ(s, n, t, sa[j - 1], sa[j]) ? I{1} : I{0};
  I names = 0;
  for (I j = 0; j < m; ++j) {
    const I slot = sa[j] >> 1;
    names += nm[slot];
    nm[slot] = names - 1;
  }

  // Stage 3: order the LMS suffixes exactly — by name when unique, else by
  // recursion on the reduced string.
  bool ws_clobbered = false;
  if (names < m) {
    std::vector<I> reduced(static_cast<std::size_t>(m));
#pragma omp parallel for num_threads(nt) if (par)
    for (I j = 0; j < m; ++j)
      reduced[static_cast<std::size_t>(j)] =
          nm[lms[static_cast<std::size_t>(j)] >> 1];
    recurse_reduced(reduced, m, names, sa, ws, nt);
    ws_clobbered = true;
#pragma omp parallel for num_threads(nt) if (par)
    for (I j = 0; j < m; ++j)
      sa[j] = lms[static_cast<std::size_t>(sa[j])];
  } else {
#pragma omp parallel for num_threads(nt) if (par)
    for (I j = 0; j < m; ++j) {
      const I p = lms[static_cast<std::size_t>(j)];
      sa[nm[p >> 1]] = p;  // ranks permute 0..m-1; reads touch only lms/nm
    }
  }

  // Stage 4: scatter the sorted LMS suffixes to their bucket ends (the
  // rank-j LMS lands at slot >= j, so the descending walk never reads a
  // slot it already overwrote) and induce the final order.
  if (ws_clobbered) count_chars(s, n, K, ws, nt);
#pragma omp parallel for num_threads(nt) if (par)
  for (I i = m; i < n; ++i) sa[i] = kEmpty;
  bucket_ends(ws.cnt, ws.bkt, K);
  for (I j = m - 1; j >= 0; --j) {
    const I p = sa[j];
    sa[j] = kEmpty;
    sa[--ws.bkt[static_cast<std::size_t>(s[p])]] = p;
  }
  induce(s, n, K, t, sa, ws);
}

void validate_codes(const std::vector<seq::Code>& text) {
  unsigned char acc = 0;
  for (const seq::Code c : text) acc |= c;
  MEM2_REQUIRE(acc < 4, "suffix array input must be ACGT codes");
}

bool narrow_fits(std::size_t working_len) {
  const std::size_t limit = g_narrow_limit != 0 ? g_narrow_limit : kNarrowMax;
  return working_len <= limit && working_len <= kNarrowMax;
}

}  // namespace

std::vector<idx_t> build_suffix_array(const std::vector<seq::Code>& text,
                                      int threads) {
  validate_codes(text);
  const std::size_t wn = text.size() + 1;
  const int nt = resolve_threads(threads);
  std::vector<idx_t> sa(wn);
  if (narrow_fits(wn)) {
    const auto n32 = static_cast<std::int32_t>(wn);
    std::vector<std::int32_t> sa32(wn);
    Ws<std::int32_t> ws;
    sais_rec<std::int32_t>(Level0Text<std::int32_t>{text.data(), n32}, n32,
                           5, sa32.data(), ws, nt);
    const bool par = nt > 1 && static_cast<std::int64_t>(wn) >= kParCutoff;
#pragma omp parallel for num_threads(nt) if (par)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(wn); ++i)
      sa[static_cast<std::size_t>(i)] = sa32[static_cast<std::size_t>(i)];
  } else {
    const auto n64 = static_cast<std::int64_t>(wn);
    Ws<std::int64_t> ws;
    sais_rec<std::int64_t>(Level0Text<std::int64_t>{text.data(), n64}, n64,
                           std::int64_t{5}, sa.data(), ws, nt);
  }
  return sa;
}

util::BigVector<std::uint32_t> build_suffix_array_u32(
    const std::vector<seq::Code>& text, int threads) {
  validate_codes(text);
  const std::size_t wn = text.size() + 1;
  MEM2_REQUIRE(wn <= kNarrowMax,
               "build_suffix_array_u32: text too long for a 32-bit suffix "
               "array (use build_suffix_array)");
  const int nt = resolve_threads(threads);
  util::BigVector<std::uint32_t> sa(wn);
  if (narrow_fits(wn)) {
    // The int32 core runs directly in the caller-visible u32 buffer: every
    // value is a non-negative index, so the bit patterns coincide.
    const auto n32 = static_cast<std::int32_t>(wn);
    Ws<std::int32_t> ws;
    sais_rec<std::int32_t>(Level0Text<std::int32_t>{text.data(), n32}, n32,
                           5, reinterpret_cast<std::int32_t*>(sa.data()), ws,
                           nt);
  } else {
    // Test hook forced the 64-bit top level; run wide and narrow after.
    const auto n64 = static_cast<std::int64_t>(wn);
    std::vector<std::int64_t> wide(wn);
    Ws<std::int64_t> ws;
    sais_rec<std::int64_t>(Level0Text<std::int64_t>{text.data(), n64}, n64,
                           std::int64_t{5}, wide.data(), ws, nt);
    for (std::size_t i = 0; i < wn; ++i)
      sa[i] = static_cast<std::uint32_t>(wide[i]);
  }
  return sa;
}

void set_sais_narrow_limit_for_test(std::size_t limit) {
  g_narrow_limit = limit;
}

std::vector<idx_t> build_suffix_array_naive(const std::vector<seq::Code>& text) {
  const idx_t n = static_cast<idx_t>(text.size());
  std::vector<idx_t> sa(static_cast<std::size_t>(n) + 1);
  std::iota(sa.begin(), sa.end(), idx_t{0});
  std::sort(sa.begin(), sa.end(), [&](idx_t a, idx_t b) {
    // Compare suffixes text[a..]$ and text[b..]$ with $ smallest.
    while (a < n && b < n) {
      if (text[static_cast<std::size_t>(a)] != text[static_cast<std::size_t>(b)])
        return text[static_cast<std::size_t>(a)] < text[static_cast<std::size_t>(b)];
      ++a;
      ++b;
    }
    return a == n && b != n;  // shorter suffix (hits $) sorts first
  });
  return sa;
}

}  // namespace mem2::index
