// Optimized occurrence table — the paper's core SMEM data structure (§4.4).
//
// Bucket size η = 32, one *byte* per BWT base instead of 2 bits, four 32-bit
// counts, 16 bytes of padding: exactly one 64-byte cache line per bucket,
// cache-line aligned.  Occ(c, j) is then: one count load + one 32-byte
// compare-to-c + mask-to-position + popcount — a handful of instructions
// (vs. the XOR/shift cascade of CP128), vectorizable with AVX2's byte
// compare + movemask (paper: "byte level compare using AVX2 ... 32-bit
// popcnt on the mask").
//
// The AVX2 path lives in occ_cp32_avx2.cpp (built with -mavx2) and is
// selected at runtime; the scalar path here is the portable fallback and
// the reference for tests.
#pragma once

#include <cstdint>
#include <vector>

#include "index/bwt.h"
#include "util/big_alloc.h"
#include "util/cpu_features.h"
#include "util/prefetch.h"

namespace mem2::index {

class OccCp32 {
 public:
  static constexpr int kBucketShift = 5;  // η = 32
  static constexpr int kBucket = 1 << kBucketShift;

  struct alignas(64) Bucket {
    std::uint32_t count[4];  // occurrences of each base before this bucket
    std::uint8_t bases[32];  // one byte per base, values 0..3
    std::uint8_t pad[16];    // fill the cache line (paper §4.4)
  };
  static_assert(sizeof(Bucket) == 64, "CP32 bucket must be one cache line");
  static_assert(alignof(Bucket) == 64, "CP32 bucket must be cache aligned");

  OccCp32() = default;
  explicit OccCp32(const std::vector<seq::Code>& bwt) { build(bwt); }
  void build(const std::vector<seq::Code>& bwt);

  /// The bucket counters are uint32_t, so a base occurring 2^32+ times in
  /// the doubled sequence would silently wrap.  Throws invariant_error for
  /// any sequence length that could reach the limit; called by build, by
  /// Mem2Index::build before the (expensive) suffix array, and by the v2
  /// loader before trusting an on-disk header.
  static void check_text_length(idx_t seq_len);

  /// Count of base c among the first j BWT positions.
  idx_t occ(int c, idx_t j) const {
    const Bucket& bkt = buckets_[static_cast<std::size_t>(j >> kBucketShift)];
    return static_cast<idx_t>(bkt.count[c]) +
           occ_in_bucket_(&bkt, c, static_cast<int>(j & (kBucket - 1)));
  }

  /// occ for all four bases at once.
  void occ4(idx_t j, idx_t out[4]) const {
    const Bucket& bkt = buckets_[static_cast<std::size_t>(j >> kBucketShift)];
    occ4_in_bucket_(&bkt, static_cast<int>(j & (kBucket - 1)), out);
  }

  void prefetch(idx_t j) const {
    util::prefetch_r(&buckets_[static_cast<std::size_t>(j >> kBucketShift)]);
  }

  idx_t size() const { return size_; }
  std::size_t memory_bytes() const { return buckets_.size() * sizeof(Bucket); }

  static constexpr const char* name() { return "cp32"; }

  /// Select the bucket-counting kernels for the given ISA (runtime dispatch;
  /// called automatically on build with util::dispatch_isa()).
  void select_kernels(util::Isa isa);

  // --- kernel signatures (exposed for the AVX2 TU and for tests) ---
  using OccInBucketFn = int (*)(const Bucket*, int c, int y);
  using Occ4InBucketFn = void (*)(const Bucket*, int y, idx_t out[4]);

  static int occ_in_bucket_scalar(const Bucket* bkt, int c, int y);
  static void occ4_in_bucket_scalar(const Bucket* bkt, int y, idx_t out[4]);
  // Defined in occ_cp32_avx2.cpp; safe to *reference* anywhere, only
  // *called* when AVX2 is available.
  static int occ_in_bucket_avx2(const Bucket* bkt, int c, int y);
  static void occ4_in_bucket_avx2(const Bucket* bkt, int y, idx_t out[4]);

  const util::BigVector<Bucket>& buckets() const { return buckets_; }
  void set_buckets(util::BigVector<Bucket> b, idx_t n) {
    buckets_ = std::move(b);
    size_ = n;
    select_kernels(util::dispatch_isa());
  }

 private:
  // Huge-page/NUMA-advised storage: this table is the hottest random-access
  // structure in the aligner (every backward extension loads a bucket).
  util::BigVector<Bucket> buckets_;
  idx_t size_ = 0;
  OccInBucketFn occ_in_bucket_ = &occ_in_bucket_scalar;
  Occ4InBucketFn occ4_in_bucket_ = &occ4_in_bucket_scalar;
};

}  // namespace mem2::index
