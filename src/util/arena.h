// Arena allocator (paper §3.2 "Improving Inefficient Memory Allocation").
//
// Original BWA-MEM allocates/frees many small blocks per read, which defeats
// hardware prefetching and cache reuse.  The optimized workflow instead
// allocates a few large contiguous blocks once and reuses them across
// batches.  Arena is that mechanism: bump-pointer allocation out of large
// chunks, O(1) reset between batches, no per-object free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "util/common.h"

namespace mem2::util {

class Arena {
 public:
  /// @param chunk_bytes granularity of the underlying large allocations.
  ///        Oversized requests get a dedicated chunk of their exact size.
  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes);
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  ~Arena() = default;

  /// Allocate `bytes` with the given alignment (power of two).  Memory is
  /// uninitialized and remains valid until reset() or destruction.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  /// Typed helper: allocate an uninitialized array of n T.
  template <typename T>
  T* allocate_array(std::size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Make all chunks reusable without returning them to the OS.  This is the
  /// key operation for cross-batch buffer reuse: after the first batch the
  /// arena stops touching the system allocator entirely.
  void reset() noexcept;

  /// Release all memory back to the OS (keeps the arena usable).
  void release() noexcept;

  std::size_t bytes_allocated() const noexcept { return bytes_allocated_; }
  std::size_t bytes_reserved() const noexcept { return bytes_reserved_; }
  /// Number of trips to the system allocator since construction/release().
  std::size_t system_allocations() const noexcept { return system_allocations_; }

  static constexpr std::size_t kDefaultChunkBytes = std::size_t{8} << 20;  // 8 MiB

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void add_chunk(std::size_t min_bytes);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;   // index of the chunk we are bumping in
  std::size_t offset_ = 0;   // bump offset within the active chunk
  std::size_t chunk_bytes_;
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
  std::size_t system_allocations_ = 0;
};

/// std-compatible allocator adapter so arena memory can back std::vector in
/// batch-scoped containers.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept : arena_(other.arena()) {}

  T* allocate(std::size_t n) { return arena_->allocate_array<T>(n); }
  void deallocate(T*, std::size_t) noexcept {}  // bulk-freed by Arena::reset

  Arena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& o) const noexcept {
    return arena_ == o.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace mem2::util
