// Unified metrics layer: one histogram type for every latency/size
// distribution in the codebase plus a small named-metric registry with
// Prometheus-text exposition.
//
// Before this existed the repo had three disjoint observability
// mechanisms: util::SwCounters (TLS counter struct), StreamMetrics /
// ServiceMetrics (each with its own copy of sorted-sample percentile
// math and a sample cap), and ad-hoc bench timers.  The Histogram below
// replaces both percentile implementations: fixed log2 buckets mean
// recording is O(1), memory is constant (no 64 Ki-sample vectors), and
// merging per-thread or per-stream shards is bucket-wise addition —
// which is what lets the serve layer fold retired sessions into a
// service-wide view cheaply.  Quantiles are bucket-resolution estimates
// (within a factor of 2, clamped to the observed min/max), which is the
// right trade for operational p50/p99 readouts.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace mem2::util {

struct SwCounters;

/// Fixed log2-bucket histogram for non-negative values (seconds, counts).
/// Bucket i covers (upper(i-1), upper(i)] with upper(i) = kMinUpper * 2^i;
/// the last bucket is the +Inf overflow.  With kMinUpper = 1 µs the finite
/// range tops out above 100 hours, so every latency we measure fits.
class Histogram {
 public:
  static constexpr int kBuckets = 40;      // 39 finite buckets + overflow
  static constexpr double kMinUpper = 1e-6;

  void record(double v);
  void reset() { *this = Histogram{}; }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Bucket-resolution quantile estimate, clamped to [min(), max()].
  /// q in [0,1]; returns 0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p99() const { return quantile(0.99); }

  /// Upper bound of bucket i; +Inf for the last bucket.
  static double bucket_upper(int i);

  const std::array<std::uint64_t, kBuckets>& buckets() const { return counts_; }

  Histogram& operator+=(const Histogram& o);

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// --------------------------------------------------------------- exposition

/// Prometheus text-format writer.  Emits `# HELP` / `# TYPE` headers once
/// per family (tracked internally), so labeled families are written by
/// calling the same method repeatedly with different label sets.
class PromWriter {
 public:
  explicit PromWriter(std::ostream& os) : os_(os) {}

  /// `labels` is the rendered label set without braces, e.g.
  /// `stage="smem",stream="3"`; empty for unlabeled samples.
  void counter(std::string_view name, std::string_view help, double value,
               std::string_view labels = {});
  void gauge(std::string_view name, std::string_view help, double value,
             std::string_view labels = {});
  void histogram(std::string_view name, std::string_view help,
                 const Histogram& h, std::string_view labels = {});

 private:
  void header(std::string_view name, std::string_view help, const char* type);
  std::ostream& os_;
  std::vector<std::string> emitted_;
};

/// One row of the SwCounters→Prometheus field table: exposition name
/// (without the `mem2_sw_` prefix / `_total` suffix) plus the member it
/// reads.  Exposed so tests can assert the mapping is total.
struct SwCounterField {
  const char* name;
  std::uint64_t SwCounters::*member;
};
const std::vector<SwCounterField>& sw_counter_fields();

/// Render every SwCounters field as `mem2_sw_<field>_total`.
void write_sw_counters(PromWriter& w, const SwCounters& c,
                       std::string_view labels = {});

// ----------------------------------------------------------------- registry

/// Named counters/gauges/histograms with per-thread sharding.
///
/// Registration (by name, idempotent) hands back a small integer id;
/// the hot-path mutators then touch only the calling thread's shard:
/// counter adds are relaxed atomics in a fixed per-shard array, histogram
/// observes take an uncontended per-shard mutex (batch-granularity events
/// only — kernel-rate counting stays in SwCounters).  snapshot()/
/// write_prometheus() merge shards; shards of exited threads are retained
/// so counts are monotone over the process lifetime.
class MetricsRegistry {
 public:
  static constexpr std::size_t kMaxCounters = 64;

  static MetricsRegistry& global();

  int counter(std::string name, std::string help);
  int gauge(std::string name, std::string help);
  int histogram(std::string name, std::string help);

  void add(int counter_id, std::uint64_t delta = 1);
  void set(int gauge_id, double value);
  void observe(int histogram_id, double value);

  std::uint64_t counter_value(int counter_id) const;
  double gauge_value(int gauge_id) const;
  Histogram histogram_snapshot(int histogram_id) const;

  /// Merged exposition of everything registered, in registration order.
  void write_prometheus(std::ostream& os) const;

  /// Test hook: zero every shard and gauge (registrations are kept).
  void reset_values();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Metric {
    std::string name, help;
    Kind kind;
    int slot;  // index into the per-kind storage
  };
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    mutable std::mutex mu;
    std::vector<Histogram> hists;
  };

  Shard& self_shard();
  int register_metric(std::string name, std::string help, Kind kind);

  mutable std::mutex mu_;
  std::vector<Metric> metrics_;
  std::unordered_map<std::string, int> by_name_;
  int n_counters_ = 0, n_gauges_ = 0, n_hists_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<std::thread::id, Shard*> shard_by_thread_;
  std::vector<std::unique_ptr<std::atomic<double>>> gauges_;
};

}  // namespace mem2::util
