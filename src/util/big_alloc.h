// Large-allocation backing for the index's resident structures.
//
// The occ tables and the flat SA are the DRAM-resident working set of the
// whole aligner (paper §4.4-4.5: at human-genome scale they are GBs and
// every SMEM/SAL step is a dependent random load into them).  Backing them
// with transparent huge pages cuts dTLB misses on those random walks, and
// interleaving them across NUMA nodes keeps one socket's controller from
// becoming the bottleneck when the worker pool spans sockets.
//
// BigAllocator<T> is a std::allocator drop-in: allocations at or above
// kMmapThreshold come from anonymous mmap, get MADV_HUGEPAGE, and are
// optionally interleaved across NUMA nodes (opt-in via
// MEM2_NUMA_INTERLEAVE=1, direct mbind syscall — no libnuma dependency).
// Every advice step degrades silently: on kernels without THP/NUMA the
// allocator is just mmap, and small allocations fall through to operator
// new.  Alignment honors alignof(T) (the CP32 bucket is alignas(64)).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mem2::util {

namespace detail {

/// Allocations >= this many bytes are mmap-backed (and THP-eligible).
inline constexpr std::size_t kMmapThreshold = std::size_t{4} << 20;

void* big_alloc(std::size_t bytes, std::size_t align);
void big_free(void* p, std::size_t bytes, std::size_t align) noexcept;

}  // namespace detail

template <class T>
class BigAllocator {
 public:
  using value_type = T;

  BigAllocator() = default;
  template <class U>
  BigAllocator(const BigAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(detail::big_alloc(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    detail::big_free(p, n * sizeof(T), alignof(T));
  }

  template <class U>
  bool operator==(const BigAllocator<U>&) const {
    return true;
  }
};

/// A std::vector whose storage is huge-page/NUMA-advised once it crosses
/// the mmap threshold.  Index components size these exactly once, so the
/// doubling-growth pattern never churns mmaps.
template <class T>
using BigVector = std::vector<T, BigAllocator<T>>;

/// Fault in [p, p+bytes) ahead of a streaming read into it, so the read
/// loop does not interleave page faults with I/O (MADV_POPULATE_WRITE when
/// the kernel has it, else a manual touch pass).  Only valid on freshly
/// allocated, not-yet-meaningful memory: the fallback writes zeros.
void prefault_pages(void* p, std::size_t bytes);

/// Peak resident set size of this process (VmHWM), in bytes; 0 if
/// /proc/self/status is unreadable.  The index-build bench derives its
/// bytes-per-char gate from deltas of this.
std::size_t peak_rss_bytes();

/// Current resident set size (VmRSS), in bytes; 0 if unavailable.
std::size_t current_rss_bytes();

}  // namespace mem2::util
