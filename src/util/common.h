// Common small definitions shared across the mem2 library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace mem2 {

/// Index type used for positions in the (possibly multi-hundred-Mbp)
/// reference and in the BW matrix.  BWA uses 64-bit positions; we follow.
using idx_t = std::int64_t;

/// Unsigned companion of idx_t, used for SA-interval sizes.
using uidx_t = std::uint64_t;

#if defined(__GNUC__) || defined(__clang__)
#define MEM2_LIKELY(x) __builtin_expect(!!(x), 1)
#define MEM2_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define MEM2_RESTRICT __restrict__
#else
#define MEM2_LIKELY(x) (x)
#define MEM2_UNLIKELY(x) (x)
#define MEM2_RESTRICT
#endif

/// Thrown on malformed external input (FASTA/FASTQ/index files).
class io_error : public std::runtime_error {
 public:
  explicit io_error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when persisted data (an index container) fails integrity
/// validation — checksum mismatch, truncated section, out-of-range field.
/// Distinct from io_error so callers can tell "re-run / check the path"
/// apart from "re-index: the file is damaged".
class corruption_error : public std::runtime_error {
 public:
  explicit corruption_error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an index / aligner invariant is violated.
class invariant_error : public std::logic_error {
 public:
  explicit invariant_error(const std::string& what) : std::logic_error(what) {}
};

/// Thrown by cooperative-cancellation checkpoints (align/cancel.h) to abort
/// an in-flight batch.  The session's sticky Status is already set by the
/// canceller when this unwinds, so the message is informational only.
class cancelled_error : public std::runtime_error {
 public:
  explicit cancelled_error(const std::string& what) : std::runtime_error(what) {}
};

#define MEM2_REQUIRE(cond, msg)                           \
  do {                                                    \
    if (MEM2_UNLIKELY(!(cond)))                           \
      throw ::mem2::invariant_error(std::string(msg));    \
  } while (0)

}  // namespace mem2
