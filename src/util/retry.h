// Bounded exponential-backoff retry for transient failures.
//
// The session layer wraps sink writes with with_retry so a transient I/O
// hiccup (momentary EAGAIN on a pipe, a filesystem blip, the injected
// `sam.write:nth-mth` fault) degrades to a short stall instead of killing
// the whole stream.  The policy is deliberately small: attempts are
// bounded, backoff grows geometrically up to a cap, and the sleeper is
// injectable so tests assert the exact backoff schedule without sleeping.
//
// max_attempts == 1 means "no retry" and is the default everywhere — the
// fail-stop contract from the fault-tolerance layer is opt-out only.
#pragma once

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/clock.h"

namespace mem2::util {

struct RetryPolicy {
  /// Total tries including the first; 1 disables retry (today's behavior).
  int max_attempts = 1;
  std::chrono::milliseconds initial_backoff{2};
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds max_backoff{100};
  /// Injected for tests; null means Sleeper::real().
  Sleeper* sleeper = nullptr;

  bool enabled() const { return max_attempts > 1; }
};

/// Run op(attempt) (attempt is 1-based) until it returns normally, a
/// failure is ruled non-transient, or attempts are exhausted — then the
/// last exception propagates unchanged.  `is_transient(e)` decides whether
/// a caught std::exception is worth retrying; between tries the policy's
/// backoff is slept through the injected sleeper.  Returns the attempt
/// number that succeeded.
template <class Op, class IsTransient>
int with_retry(const RetryPolicy& policy, Op&& op, IsTransient&& is_transient) {
  Sleeper& sleeper = policy.sleeper ? *policy.sleeper : Sleeper::real();
  const int max_attempts = std::max(1, policy.max_attempts);
  // Clamp up front: max_backoff caps every sleep, including the first one
  // when initial_backoff is configured above it.
  std::chrono::nanoseconds backoff =
      std::min<std::chrono::nanoseconds>(policy.initial_backoff, policy.max_backoff);
  for (int attempt = 1;; ++attempt) {
    try {
      op(attempt);
      return attempt;
    } catch (const std::exception& e) {
      if (attempt >= max_attempts || !is_transient(e)) throw;
      sleeper.sleep_for(backoff);
      const auto scaled = std::chrono::nanoseconds(static_cast<std::int64_t>(
          static_cast<double>(backoff.count()) *
          std::max(1.0, policy.backoff_multiplier)));
      backoff = std::min<std::chrono::nanoseconds>(scaled, policy.max_backoff);
    }
  }
}

}  // namespace mem2::util
