#include "util/sw_counters.h"

#include <sstream>

namespace mem2::util {

SwCounters& SwCounters::operator-=(const SwCounters& o) {
  occ_bucket_loads -= o.occ_bucket_loads;
  backward_exts -= o.backward_exts;
  forward_exts -= o.forward_exts;
  prefetches -= o.prefetches;
  smems_found -= o.smems_found;
  sa_lookups -= o.sa_lookups;
  sa_lf_steps -= o.sa_lf_steps;
  sa_memory_loads -= o.sa_memory_loads;
  bsw_pairs -= o.bsw_pairs;
  bsw_cells_total -= o.bsw_cells_total;
  bsw_cells_useful -= o.bsw_cells_useful;
  bsw_aborted_pairs -= o.bsw_aborted_pairs;
  io_records_skipped -= o.io_records_skipped;
  pe_rescue_windows -= o.pe_rescue_windows;
  pe_rescue_win_skipped -= o.pe_rescue_win_skipped;
  pe_rescue_win_deduped -= o.pe_rescue_win_deduped;
  pe_rescue_jobs -= o.pe_rescue_jobs;
  pe_rescue_hits -= o.pe_rescue_hits;
  pe_rescued_pairs -= o.pe_rescued_pairs;
  pe_proper_pairs -= o.pe_proper_pairs;
  return *this;
}

SwCounters& SwCounters::operator+=(const SwCounters& o) {
  occ_bucket_loads += o.occ_bucket_loads;
  backward_exts += o.backward_exts;
  forward_exts += o.forward_exts;
  prefetches += o.prefetches;
  smems_found += o.smems_found;
  sa_lookups += o.sa_lookups;
  sa_lf_steps += o.sa_lf_steps;
  sa_memory_loads += o.sa_memory_loads;
  bsw_pairs += o.bsw_pairs;
  bsw_cells_total += o.bsw_cells_total;
  bsw_cells_useful += o.bsw_cells_useful;
  bsw_aborted_pairs += o.bsw_aborted_pairs;
  io_records_skipped += o.io_records_skipped;
  pe_rescue_windows += o.pe_rescue_windows;
  pe_rescue_win_skipped += o.pe_rescue_win_skipped;
  pe_rescue_win_deduped += o.pe_rescue_win_deduped;
  pe_rescue_jobs += o.pe_rescue_jobs;
  pe_rescue_hits += o.pe_rescue_hits;
  pe_rescued_pairs += o.pe_rescued_pairs;
  pe_proper_pairs += o.pe_proper_pairs;
  return *this;
}

std::string SwCounters::summary() const {
  std::ostringstream os;
  os << "occ_bucket_loads=" << occ_bucket_loads
     << " backward_exts=" << backward_exts
     << " forward_exts=" << forward_exts
     << " prefetches=" << prefetches
     << " smems=" << smems_found
     << " sa_lookups=" << sa_lookups
     << " sa_lf_steps=" << sa_lf_steps
     << " sa_loads=" << sa_memory_loads
     << " bsw_pairs=" << bsw_pairs
     << " bsw_cells_total=" << bsw_cells_total
     << " bsw_cells_useful=" << bsw_cells_useful
     << " bsw_aborts=" << bsw_aborted_pairs
     << " io_records_skipped=" << io_records_skipped
     << " pe_rescue_windows=" << pe_rescue_windows
     << " pe_rescue_win_skipped=" << pe_rescue_win_skipped
     << " pe_rescue_win_deduped=" << pe_rescue_win_deduped
     << " pe_rescue_jobs=" << pe_rescue_jobs
     << " pe_rescue_hits=" << pe_rescue_hits
     << " pe_rescued_pairs=" << pe_rescued_pairs
     << " pe_proper_pairs=" << pe_proper_pairs;
  return os.str();
}

SwCounters& tls_counters() {
  thread_local SwCounters counters;
  return counters;
}

}  // namespace mem2::util
