// Hardware performance counters via perf_event_open, with graceful fallback.
//
// Reproduces the VTune columns of Tables 4, 5 and 7 (instructions, cycles,
// cache misses) when the kernel allows it.  In locked-down containers the
// syscall fails with EPERM/ENOSYS; available() then reports false and the
// benches print the software-counter proxies instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mem2::util {

struct PerfSample {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  bool valid = false;

  double ipc() const {
    return cycles ? static_cast<double>(instructions) / static_cast<double>(cycles) : 0.0;
  }
};

class PerfCounters {
 public:
  /// `inherit` extends counting to threads created *after* construction
  /// (perf_event_attr.inherit) — what a run-wide sample wants: construct
  /// before spawning the worker pool and the whole process is covered.
  /// The default counts only the calling thread (kernel-bench usage).
  explicit PerfCounters(bool inherit = false);
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True when at least the instruction counter opened successfully.
  bool available() const { return available_; }

  void start();
  /// Stop counting and return the deltas since start().
  PerfSample stop();

 private:
  struct Event;
  std::vector<Event> events_;
  bool available_ = false;
};

}  // namespace mem2::util
