// Deterministic, fast RNG used by the genome/read simulators and tests.
//
// splitmix64 for seeding + xoshiro256** for the stream.  We avoid <random>
// engines in the simulators so that dataset generation is bit-reproducible
// across standard library implementations (the paper's datasets are fixed
// files; ours must be fixed streams).
#pragma once

#include <cstdint>

namespace mem2::util {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}
  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed = 0x5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n) via Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t n) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * n) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace mem2::util
