// Software event counters — the container-safe stand-in for VTune.
//
// The paper reports hardware counters (instructions, LLC misses, average
// latency).  Inside a container perf_event_open is usually forbidden, so the
// kernels additionally maintain cheap software counters for the quantities
// the paper's argument actually rests on: how many Occ buckets are touched
// per SMEM (cache traffic proxy), how many LF steps a compressed-SA lookup
// takes (instruction-count proxy), and how many DP cells BSW computes
// (useful vs wasted work, Table 8 discussion).
#pragma once

#include <cstdint>
#include <string>

namespace mem2::util {

struct SwCounters {
  // SMEM kernel
  std::uint64_t occ_bucket_loads = 0;   // Occ bucket (cache line) touches
  std::uint64_t backward_exts = 0;      // Backward_Ext calls
  std::uint64_t forward_exts = 0;       // Forward_Ext calls
  std::uint64_t prefetches = 0;         // software prefetches issued
  std::uint64_t smems_found = 0;

  // SAL kernel
  std::uint64_t sa_lookups = 0;
  std::uint64_t sa_lf_steps = 0;        // LF walk steps (0 for flat SA)
  std::uint64_t sa_memory_loads = 0;    // distinct memory loads performed

  // BSW kernel
  std::uint64_t bsw_pairs = 0;
  std::uint64_t bsw_cells_total = 0;    // all SIMD-lane cells computed
  std::uint64_t bsw_cells_useful = 0;   // cells inside a live pair's band
  std::uint64_t bsw_aborted_pairs = 0;  // z-drop / zero-row early exits

  // Ingest (io::FastqStream under FastqPolicy::kSkip)
  std::uint64_t io_records_skipped = 0;  // damaged FASTQ records resync-skipped

  // Paired-end stage (mate rescue + pair scoring)
  std::uint64_t pe_rescue_windows = 0;  // rescue windows anchor-scanned
  std::uint64_t pe_rescue_win_skipped = 0;  // skipped: earlier window already satisfied the (mate, orientation)
  std::uint64_t pe_rescue_win_deduped = 0;  // content-identical to an earlier window of the pair
  std::uint64_t pe_rescue_jobs = 0;     // BSW jobs dispatched by rescue
  std::uint64_t pe_rescue_hits = 0;     // rescue alignments added to a mate
  std::uint64_t pe_rescued_pairs = 0;   // proper pairs whose chosen region came from rescue
  std::uint64_t pe_proper_pairs = 0;    // pairs emitted with the proper-pair flag

  /// Merge/aggregate helper: sessions sum their per-thread captures with it,
  /// and the serve layer folds per-session counters into its service-wide
  /// snapshot.  Field-for-field addition, so bench JSON stays stable.
  SwCounters& operator+=(const SwCounters& o);
  SwCounters& operator-=(const SwCounters& o);
  void reset() { *this = SwCounters{}; }
  std::string summary() const;
};

inline SwCounters operator-(SwCounters a, const SwCounters& b) {
  a -= b;
  return a;
}

/// Per-thread counter sink.  Kernels bump the thread-local instance so the
/// hot paths never touch shared cache lines.  The sink is *staging only*:
/// attribution to a session happens through CounterCapture below, never by
/// reading or resetting the raw TLS value from pipeline code.
SwCounters& tls_counters();

/// Per-session counter attribution.  A capture saves the thread's staging
/// counters at a scope entry and take() returns only what accumulated since,
/// restoring the saved baseline — so two sessions whose batches share one
/// thread (the serve layer's pooled workers, or a producer thread driving
/// several Aligners) each harvest exactly their own counts instead of
/// absorbing or destroying the other's residue.  The old reset()/read
/// harvest pattern did neither: a reset at a region entry discarded counts a
/// sibling session had staged on that thread, and residue left after a
/// harvest leaked into whichever session harvested next.
class CounterCapture {
 public:
  CounterCapture() : saved_(tls_counters()) { tls_counters().reset(); }
  ~CounterCapture() {
    if (!taken_) take();
  }
  CounterCapture(const CounterCapture&) = delete;
  CounterCapture& operator=(const CounterCapture&) = delete;

  /// Everything this thread staged since construction; restores the
  /// baseline so enclosing captures (or callers) see their own counts
  /// unchanged.  Call at most once.
  SwCounters take() {
    SwCounters delta = tls_counters();
    tls_counters() = saved_;
    taken_ = true;
    return delta;
  }

 private:
  SwCounters saved_;
  bool taken_ = false;
};

}  // namespace mem2::util
