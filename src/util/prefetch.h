// Software-prefetch shim (paper §4.3).
//
// The paper's Table 4 compares "Optimized" against "Optimized minus S/W
// prefetching"; to reproduce that column as a *runtime* configuration the
// SMEM kernel routes all prefetches through the PrefetchPolicy object below
// rather than through raw __builtin_prefetch calls.
#pragma once

namespace mem2::util {

/// Read-prefetch into all cache levels (locality hint 3, like bwa-mem2's
/// _MM_HINT_T0 usage on Occ buckets).
inline void prefetch_r(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Write-prefetch.
inline void prefetch_w(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Runtime on/off switch for software prefetching, threaded through the SMEM
/// kernel.  Cheap enough (predicted branch) that the "on" configuration's
/// timing matches unconditional prefetching.
struct PrefetchPolicy {
  bool enabled = true;
  void operator()(const void* p) const {
    if (enabled) prefetch_r(p);
  }
};

}  // namespace mem2::util
