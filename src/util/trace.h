// Low-overhead span tracer: per-thread lock-free ring buffers of
// TSC-stamped spans, exportable as Chrome trace-event JSON
// (chrome://tracing / Perfetto) with pid = stream and tid = worker.
//
// Cost model: when tracing is disabled a TraceSpan is one relaxed atomic
// load and a branch — cheap enough to leave compiled into every stage
// boundary of the batch pipeline and even per-read baseline stages.
// When enabled, record() is a TSC read plus one store into the calling
// thread's private ring (no shared cache lines, no locks); the ring
// wraps overwriting the oldest spans, so a run longer than the ring
// keeps its most recent window and counts the rest in dropped().
//
// Alongside the ring, each thread keeps exact per-span-name aggregates
// (total ticks + count) that survive wraparound — bench_profile derives
// its stage table from these, and the CLI exports them as
// mem2_span_seconds_total so the trace and metrics views agree.
//
// Export is snapshot-at-quiescence: call write_chrome_trace() after the
// traced work has drained (end of run, after Stream::finish /
// AlignService::shutdown), not concurrently with producers.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/tsc.h"

namespace mem2::util {

namespace trace_detail {
extern std::atomic<bool> g_enabled;
}

inline bool trace_enabled() {
  return trace_detail::g_enabled.load(std::memory_order_relaxed);
}

/// One ring slot.  `name` must be a string with static storage duration
/// (the instrumentation sites pass literals).  Instant events (cancel,
/// watchdog fire) are encoded as t1 == t0.
struct TraceEvent {
  const char* name;
  std::uint64_t t0, t1;  // tsc stamps
  std::uint32_t pid;     // stream id; 0 = process-scope work
};

/// Exact per-name totals, merged across threads at export time.
struct TraceAgg {
  std::string name;
  std::uint64_t ticks = 0;
  std::uint64_t count = 0;
  double seconds() const { return tsc_to_seconds(ticks); }
};

class Tracer {
 public:
  static Tracer& instance();

  /// Clears all rings/aggregates, stamps the trace epoch, and turns the
  /// fast-path flag on.  Call while no traced work is running.
  void enable();
  void disable() { trace_detail::g_enabled.store(false, std::memory_order_relaxed); }

  /// Per-thread ring capacity (entries).  Takes effect at the next
  /// enable(); default 1 << 16 (~1.5 MiB per participating thread).
  void set_ring_capacity(std::size_t entries);

  void record(const char* name, std::uint64_t t0, std::uint64_t t1,
              std::uint32_t pid);
  void instant(const char* name, std::uint32_t pid) {
    if (!trace_enabled()) return;
    const std::uint64_t t = tsc_now();
    record(name, t, t, pid);
  }

  std::uint64_t recorded() const;  // total events since enable()
  std::uint64_t dropped() const;   // events overwritten by ring wrap

  /// Per-name totals merged across all threads (exact under wraparound).
  std::vector<TraceAgg> aggregate() const;

  /// Chrome trace-event JSON ("X" duration + "i" instant events, ts/dur
  /// in microseconds since enable(), pid = stream, tid = worker), with
  /// process_name/thread_name metadata.
  void write_chrome_trace(std::ostream& os) const;
  /// Convenience: write to `path`; returns false on I/O failure.
  bool write_chrome_trace_file(const std::string& path) const;

 private:
  Tracer() = default;
  struct Ring;
  Ring& self_ring();

  mutable std::mutex mu_;  // guards rings_ topology, not hot-path writes
  std::vector<std::unique_ptr<Ring>> rings_;
  std::size_t capacity_ = std::size_t{1} << 16;
  std::uint64_t epoch_tsc_ = 0;
};

// ------------------------------------------------------ stream-id context

/// Current thread's stream id for span attribution (Chrome pid lane).
/// Session workers set it around batch processing; OpenMP regions inside
/// the pipeline re-seed it from the orchestrating thread's value.
std::uint32_t trace_stream_id();
void set_trace_stream_id(std::uint32_t pid);

/// RAII set/restore of the thread-local stream id.
class TraceStreamScope {
 public:
  explicit TraceStreamScope(std::uint32_t pid)
      : saved_(trace_stream_id()) {
    set_trace_stream_id(pid);
  }
  ~TraceStreamScope() { set_trace_stream_id(saved_); }
  TraceStreamScope(const TraceStreamScope&) = delete;
  TraceStreamScope& operator=(const TraceStreamScope&) = delete;

 private:
  std::uint32_t saved_;
};

// ----------------------------------------------------------------- spans

/// RAII span.  Disabled cost: one relaxed load + branch in the ctor and a
/// null check in the dtor.  The stream id is sampled at *end* of scope
/// from the thread-local context unless given explicitly.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (trace_enabled()) {
      name_ = name;
      t0_ = tsc_now();
    }
  }
  TraceSpan(const char* name, std::uint32_t pid) : TraceSpan(name) {
    pid_ = pid;
    explicit_pid_ = true;
  }
  ~TraceSpan() { finish(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// End the span early (idempotent).
  void finish() {
    if (name_ == nullptr) return;
    Tracer::instance().record(name_, t0_, tsc_now(),
                              explicit_pid_ ? pid_ : trace_stream_id());
    name_ = nullptr;
  }

 private:
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
  std::uint32_t pid_ = 0;
  bool explicit_pid_ = false;
};

/// Record an already-measured interval (e.g. queue wait whose start was
/// stamped on another thread).  No-op while disabled.
inline void trace_interval(const char* name, std::uint64_t t0,
                           std::uint64_t t1, std::uint32_t pid) {
  if (!trace_enabled()) return;
  Tracer::instance().record(name, t0, t1, pid);
}

/// Instant event (zero-duration marker, e.g. cancel / watchdog fire).
inline void trace_instant(const char* name, std::uint32_t pid) {
  Tracer::instance().instant(name, pid);
}

}  // namespace mem2::util
