// Deterministic fault injection for exercising failure paths.
//
// One process-global injector is armed with "site[:nth]" — from the
// MEM2_FAULT environment variable at first use, or programmatically (tests,
// mem2_cli --fault).  The nth time (1-based, default 1) execution passes
// the named fault point it fires exactly once; every other pass, and every
// pass when disarmed, is a no-op.  The disarmed fast path is a single
// relaxed atomic load, so golden-SAM and determinism tests stay
// byte-identical with the injector compiled in.
//
// Fault points fire by returning true from fault_point(site); the call
// site then throws its *natural* error type, so an injected fault walks
// the exact same propagation path a real failure would:
//
//   site          where                              raises
//   index.load    index_io.cpp load_index()          corruption_error
//   fastq.read    io/fastq.cpp FastqStream           io_error
//   sam.write     align/sam_sink.h OstreamSamSink    io_error (bad stream)
//   align.worker  align/aligner.cpp worker_main      invariant_error
//   align.batch   align/pipeline_batch.cpp region    invariant_error
//                 replay loop (inside an OpenMP worker)
//
// Arming is not thread-safe against in-flight fault points; arm/disarm
// while the pipeline is quiescent (tests do).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace mem2::util {

class FaultInjector {
 public:
  /// The process-global injector; arms itself from MEM2_FAULT on first use.
  static FaultInjector& instance();

  /// Arm from "site[:nth]"; an empty spec disarms.  Returns false (and
  /// leaves the injector disarmed) on a malformed spec (empty site,
  /// non-numeric or zero nth).
  bool arm(const std::string& spec);
  void disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  const std::string& site() const { return site_; }

  /// True exactly once: the nth time the armed site passes this point.
  bool fire(std::string_view site);

 private:
  FaultInjector() = default;
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> hits_{0};
  std::uint64_t nth_ = 1;
  std::string site_;
};

/// Call-site helper: true when the process-global injector is armed at
/// `site` and this pass is the chosen one.  The caller throws its natural
/// error type ("injected fault: <site>") so tests drive the real path.
inline bool fault_point(std::string_view site) {
  FaultInjector& fi = FaultInjector::instance();
  return fi.armed() && fi.fire(site);
}

}  // namespace mem2::util
