// Deterministic fault injection for exercising failure paths.
//
// One process-global injector is armed with a comma-separated list of
// sites — from the MEM2_FAULT environment variable at first use, or
// programmatically (tests, mem2_cli --fault).  Each site spec is
//
//   site            fire exactly once, on the first pass
//   site:nth        fire exactly once, on the nth pass (1-based)
//   site:nth-mth    transient: fire on every pass in [nth, mth], then
//                   recover — models a fault that heals (retry tests)
//
// so "align.worker.stall,sam.write:2-3" arms a watchdog scenario and a
// transient write failure in one spec.  Every non-selected pass, and every
// pass when disarmed, is a no-op.  The disarmed fast path is a single
// relaxed atomic load, so golden-SAM and determinism tests stay
// byte-identical with the injector compiled in.
//
// Fault points fire by returning true from fault_point(site); the call
// site then throws its *natural* error type, so an injected fault walks
// the exact same propagation path a real failure would:
//
//   site               where                              raises
//   index.load         index_io.cpp load_index()          corruption_error
//   fastq.read         io/fastq.cpp FastqStream           io_error
//   sam.write          align/sam_sink.h OstreamSamSink    io_error (bad stream)
//   align.worker       align/session.cpp process()        invariant_error
//   align.worker.stall align/session.cpp process()        blocks the batch until
//                      the session is cancelled (watchdog / cancel tests)
//   align.batch        align/pipeline_batch.cpp region    invariant_error
//                      replay loop (inside an OpenMP worker)
//
// Arming is not thread-safe against in-flight fault points; arm/disarm
// while the pipeline is quiescent (tests do).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

namespace mem2::util {

class FaultInjector {
 public:
  /// The process-global injector; arms itself from MEM2_FAULT on first use.
  static FaultInjector& instance();

  /// Arm from "site[:nth[-mth]][,site...]"; an empty spec disarms.  Returns
  /// false (and leaves the injector disarmed) on a malformed spec (empty
  /// site, non-numeric / zero / inverted hit range).
  bool arm(const std::string& spec);
  void disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  /// First armed site's name (empty when disarmed).
  const std::string& site() const;

  /// True when this pass of `site` falls in an armed site's firing range.
  bool fire(std::string_view site);

  /// Total passes observed at `site` since arming (0 when the site is not
  /// armed).  Lets tests detect "the stall fault has engaged" without
  /// sleeping.
  std::uint64_t hits(std::string_view site) const;

 private:
  struct ArmedSite {
    std::string site;
    std::uint64_t nth = 1;  // first firing pass (1-based)
    std::uint64_t mth = 1;  // last firing pass; == nth for exactly-once
    std::atomic<std::uint64_t> hits{0};
  };

  FaultInjector() = default;
  std::atomic<bool> armed_{false};
  // deque: stable addresses for the atomics; sized at arm() time only.
  std::deque<ArmedSite> sites_;
};

/// Call-site helper: true when the process-global injector selects this
/// pass of `site`.  The caller throws its natural error type ("injected
/// fault: <site>") so tests drive the real path.
inline bool fault_point(std::string_view site) {
  FaultInjector& fi = FaultInjector::instance();
  return fi.armed() && fi.fire(site);
}

}  // namespace mem2::util
