#include "util/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <utility>

namespace mem2::util {

namespace trace_detail {
std::atomic<bool> g_enabled{false};
}

namespace {
thread_local std::uint32_t t_stream_id = 0;
}

std::uint32_t trace_stream_id() { return t_stream_id; }
void set_trace_stream_id(std::uint32_t pid) { t_stream_id = pid; }

/// Single-producer ring: only the owning thread writes buf/head/agg; the
/// exporter reads them after producers are quiescent (see header).
struct Tracer::Ring {
  std::vector<TraceEvent> buf;
  std::uint64_t head = 0;  // total events ever recorded; slot = head % size
  struct Agg {
    const char* name;
    std::uint64_t ticks, count;
  };
  std::vector<Agg> agg;  // tiny (≤ #distinct span names), linear-scanned
  std::uint32_t tid = 0;

  void reset(std::size_t capacity) {
    buf.assign(capacity, TraceEvent{});
    head = 0;
    agg.clear();
  }
};

Tracer& Tracer::instance() {
  static Tracer* t = new Tracer;  // leaked: rings outlive TLS destructors
  return *t;
}

Tracer::Ring& Tracer::self_ring() {
  static thread_local Ring* t_ring = nullptr;
  if (t_ring != nullptr) return *t_ring;
  std::lock_guard<std::mutex> lk(mu_);
  rings_.push_back(std::make_unique<Ring>());
  Ring* r = rings_.back().get();
  r->tid = static_cast<std::uint32_t>(rings_.size());
  r->reset(capacity_);
  t_ring = r;
  return *r;
}

void Tracer::set_ring_capacity(std::size_t entries) {
  std::lock_guard<std::mutex> lk(mu_);
  capacity_ = std::max<std::size_t>(entries, 16);
}

void Tracer::enable() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& r : rings_) r->reset(capacity_);
  epoch_tsc_ = tsc_now();
  trace_detail::g_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::record(const char* name, std::uint64_t t0, std::uint64_t t1,
                    std::uint32_t pid) {
  Ring& r = self_ring();
  r.buf[r.head % r.buf.size()] = TraceEvent{name, t0, t1, pid};
  ++r.head;
  for (auto& a : r.agg) {
    if (a.name == name) {  // pointer identity: names are literals per site
      a.ticks += t1 - t0;
      ++a.count;
      return;
    }
  }
  r.agg.push_back({name, t1 - t0, 1});
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r->head;
  return n;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t n = 0;
  for (const auto& r : rings_)
    if (r->head > r->buf.size()) n += r->head - r->buf.size();
  return n;
}

std::vector<TraceAgg> Tracer::aggregate() const {
  std::lock_guard<std::mutex> lk(mu_);
  // Merge by string *content*: the same stage name may be distinct
  // literals in different translation units.
  std::map<std::string, TraceAgg> merged;
  for (const auto& r : rings_) {
    for (const auto& a : r->agg) {
      auto& out = merged[a.name];
      out.name = a.name;
      out.ticks += a.ticks;
      out.count += a.count;
    }
  }
  std::vector<TraceAgg> v;
  v.reserve(merged.size());
  for (auto& [_, a] : merged) v.push_back(std::move(a));
  std::sort(v.begin(), v.end(),
            [](const TraceAgg& a, const TraceAgg& b) { return a.ticks > b.ticks; });
  return v;
}

namespace {

void json_escape(std::ostream& os, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      os << buf;
    } else {
      os << c;
    }
  }
}

void write_meta(std::ostream& os, bool& first, const char* which,
                std::uint32_t pid, std::uint32_t tid, const std::string& label) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":")" << which << R"(","ph":"M","pid":)" << pid;
  if (tid != 0) os << R"(,"tid":)" << tid;
  os << R"(,"args":{"name":")";
  json_escape(os, label.c_str());
  os << R"("}})";
}

}  // namespace

void Tracer::write_chrome_trace(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  const double us_per_tick = 1e6 / tsc_ticks_per_second();
  os << "{\"traceEvents\":[\n";
  bool first = true;

  // Metadata: one process lane per stream id, one named thread per ring.
  std::set<std::uint32_t> pids;
  for (const auto& r : rings_) {
    const std::uint64_t n = std::min<std::uint64_t>(r->head, r->buf.size());
    const std::uint64_t start = r->head - n;
    for (std::uint64_t i = start; i < r->head; ++i)
      pids.insert(r->buf[i % r->buf.size()].pid);
  }
  for (std::uint32_t pid : pids) {
    write_meta(os, first, "process_name", pid, 0,
               pid == 0 ? "process" : "stream " + std::to_string(pid));
    for (const auto& r : rings_)
      write_meta(os, first, "thread_name", pid, r->tid,
                 "worker " + std::to_string(r->tid));
  }

  for (const auto& r : rings_) {
    const std::uint64_t n = std::min<std::uint64_t>(r->head, r->buf.size());
    const std::uint64_t start = r->head - n;
    for (std::uint64_t i = start; i < r->head; ++i) {
      const TraceEvent& e = r->buf[i % r->buf.size()];
      const double ts =
          static_cast<double>(e.t0 - std::min(e.t0, epoch_tsc_)) * us_per_tick;
      if (!first) os << ",\n";
      first = false;
      os << R"({"name":")";
      json_escape(os, e.name);
      os << R"(","pid":)" << e.pid << R"(,"tid":)" << r->tid;
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.3f", ts);
      os << ",\"ts\":" << buf;
      if (e.t1 == e.t0) {
        os << R"(,"ph":"i","s":"p"})";
      } else {
        std::snprintf(buf, sizeof buf, "%.3f",
                      static_cast<double>(e.t1 - e.t0) * us_per_tick);
        os << ",\"ph\":\"X\",\"dur\":" << buf << "}";
      }
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  write_chrome_trace(out);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace mem2::util
