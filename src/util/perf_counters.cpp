#include "util/perf_counters.h"

#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace mem2::util {

struct PerfCounters::Event {
  int fd = -1;
};

#if defined(__linux__)

namespace {

int open_event(std::uint32_t type, std::uint64_t config, bool inherit) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = inherit ? 1 : 0;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0 /*self*/, -1 /*any cpu*/, -1, 0));
}

}  // namespace

PerfCounters::PerfCounters(bool inherit) {
  // Order must match the slot order in stop().
  const std::uint64_t configs[4] = {
      PERF_COUNT_HW_INSTRUCTIONS,
      PERF_COUNT_HW_CPU_CYCLES,
      PERF_COUNT_HW_CACHE_REFERENCES,
      PERF_COUNT_HW_CACHE_MISSES,
  };
  for (std::uint64_t cfg : configs)
    events_.push_back(Event{open_event(PERF_TYPE_HARDWARE, cfg, inherit)});
  available_ = events_[0].fd >= 0;
}

PerfCounters::~PerfCounters() {
  for (auto& e : events_)
    if (e.fd >= 0) close(e.fd);
}

void PerfCounters::start() {
  for (auto& e : events_) {
    if (e.fd < 0) continue;
    ioctl(e.fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(e.fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

PerfSample PerfCounters::stop() {
  PerfSample s;
  std::uint64_t* slots[4] = {&s.instructions, &s.cycles, &s.cache_references,
                             &s.cache_misses};
  bool any = false;
  for (std::size_t i = 0; i < events_.size() && i < 4; ++i) {
    auto& e = events_[i];
    if (e.fd < 0) continue;
    ioctl(e.fd, PERF_EVENT_IOC_DISABLE, 0);
    std::uint64_t value = 0;
    if (read(e.fd, &value, sizeof(value)) == sizeof(value)) {
      *slots[i] = value;
      any = true;
    }
  }
  s.valid = any;
  return s;
}

#else  // !__linux__

PerfCounters::PerfCounters(bool) {}
PerfCounters::~PerfCounters() = default;
void PerfCounters::start() {}
PerfSample PerfCounters::stop() { return {}; }

#endif

}  // namespace mem2::util
