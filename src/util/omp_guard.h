// Exception transport across OpenMP parallel regions.
//
// An exception escaping a thread inside an OpenMP worksharing construct
// calls std::terminate — there is no implicit propagation to the master
// thread.  OmpExceptionGuard makes batch-level error handling possible:
// wrap each loop body in run(), which captures the first exception thrown
// on any thread and turns the remaining iterations into cheap no-ops, then
// call rethrow() on the master thread after the region joins to resume
// normal C++ propagation (up to the session worker's Status boundary).
#pragma once

#include <atomic>
#include <exception>
#include <utility>

namespace mem2::util {

class OmpExceptionGuard {
 public:
  /// Runs f() unless a previous iteration already failed.  Never throws;
  /// the first exception (across all threads) is stashed for rethrow().
  template <class F>
  void run(F&& f) noexcept {
    if (failed_.load(std::memory_order_relaxed)) return;
    try {
      std::forward<F>(f)();
    } catch (...) {
      if (!failed_.exchange(true, std::memory_order_acq_rel))
        eptr_ = std::current_exception();
    }
  }

  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// Call after the parallel region has joined (the implicit barrier
  /// orders the capturing thread's eptr_ write before this read).
  void rethrow() {
    if (failed_.load(std::memory_order_acquire) && eptr_)
      std::rethrow_exception(std::exchange(eptr_, nullptr));
  }

 private:
  std::atomic<bool> failed_{false};
  std::exception_ptr eptr_;
};

}  // namespace mem2::util
