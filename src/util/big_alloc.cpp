#include "util/big_alloc.h"

#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

namespace mem2::util {
namespace {

// mbind(2) without libnuma.  MPOL_INTERLEAVE spreads the pages of the
// occ tables / flat SA round-robin across the nodes in the mask so random
// FM-walks load both memory controllers instead of hammering the one the
// build thread happened to run on.
constexpr int kMpolInterleave = 3;

bool numa_interleave_requested() {
  static const bool on = [] {
    const char* env = std::getenv("MEM2_NUMA_INTERLEAVE");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return on;
}

// Mask of online NUMA nodes, from sysfs; single-node (or unreadable sysfs)
// yields a mask where interleave is a no-op, so we skip the syscall.
unsigned long numa_node_mask() {
  static const unsigned long mask = [] {
    unsigned long m = 0;
    for (int node = 0; node < 64; ++node) {
      char path[64];
      std::snprintf(path, sizeof(path),
                    "/sys/devices/system/node/node%d", node);
      if (access(path, F_OK) != 0) break;
      m |= 1ul << node;
    }
    return m != 0 ? m : 1ul;
  }();
  return mask;
}

void advise_big_mapping(void* p, std::size_t bytes) {
#ifdef MADV_HUGEPAGE
  (void)madvise(p, bytes, MADV_HUGEPAGE);  // advisory; ENOSYS/EINVAL are fine
#endif
  if (numa_interleave_requested()) {
    const unsigned long mask = numa_node_mask();
    if ((mask & (mask - 1)) != 0) {  // more than one node
      (void)syscall(SYS_mbind, p, bytes, kMpolInterleave, &mask,
                    sizeof(mask) * 8 + 1, 0);
    }
  }
}

}  // namespace

namespace detail {

void* big_alloc(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  if (bytes >= kMmapThreshold) {
    // mmap is page-aligned, which satisfies any alignof(T) we hold.
    void* p = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) throw std::bad_alloc();
    advise_big_mapping(p, bytes);
    return p;
  }
  if (align > alignof(std::max_align_t)) {
    return ::operator new(bytes, std::align_val_t(align));
  }
  return ::operator new(bytes);
}

void big_free(void* p, std::size_t bytes, std::size_t align) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  // The size threshold decides the path deterministically, so free always
  // mirrors the allocation (mmap failure above throws instead of falling
  // back, precisely to keep this pairing unambiguous).
  if (bytes >= kMmapThreshold) {
    (void)munmap(p, bytes);
    return;
  }
  if (align > alignof(std::max_align_t)) {
    ::operator delete(p, std::align_val_t(align));
    return;
  }
  ::operator delete(p);
}

}  // namespace detail

void prefault_pages(void* p, std::size_t bytes) {
  if (p == nullptr || bytes == 0) return;
#ifdef MADV_POPULATE_WRITE
  if (madvise(p, bytes, MADV_POPULATE_WRITE) == 0) return;
#endif
  const long page = sysconf(_SC_PAGESIZE);
  const std::size_t step = page > 0 ? static_cast<std::size_t>(page) : 4096;
  volatile char* c = static_cast<volatile char*>(p);
  for (std::size_t off = 0; off < bytes; off += step) c[off] = 0;
  c[bytes - 1] = 0;
}

namespace {

std::size_t read_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      kb = std::strtoull(line + key_len, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

std::size_t peak_rss_bytes() { return read_status_kb("VmHWM:") * 1024; }

std::size_t current_rss_bytes() { return read_status_kb("VmRSS:") * 1024; }

}  // namespace mem2::util
