// Cheap cycle-counter timing for per-row instrumentation inside hot
// kernels.  steady_clock costs ~25 ns per read — too heavy to call several
// times per DP row; rdtsc is ~10 cycles.  Ticks are converted to seconds
// with a once-calibrated frequency.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace mem2::util {

inline std::uint64_t tsc_now() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Ticks per second, calibrated on first use (~2 ms busy measurement).
inline double tsc_ticks_per_second() {
  static const double tps = [] {
#if defined(__x86_64__) || defined(_M_X64)
    const auto w0 = std::chrono::steady_clock::now();
    const std::uint64_t t0 = tsc_now();
    for (;;) {
      const auto w1 = std::chrono::steady_clock::now();
      const std::chrono::duration<double> dt = w1 - w0;
      if (dt.count() >= 2e-3)
        return static_cast<double>(tsc_now() - t0) / dt.count();
    }
#else
    return 1e9;  // steady_clock fallback counts nanoseconds
#endif
  }();
  return tps;
}

inline double tsc_to_seconds(std::uint64_t ticks) {
  return static_cast<double>(ticks) / tsc_ticks_per_second();
}

}  // namespace mem2::util
