// LSD radix sort on unsigned keys with an index payload.
//
// Paper §5.3.1: sequence pairs are radix-sorted by length before SIMD
// batching so that pairs sharing a vector register have similar lengths
// (1.5-1.7x BSW speedup from this alone).  The sort is stable, which also
// keeps the post-sort order deterministic for the identical-output contract.
#pragma once

#include <cstdint>
#include <vector>

namespace mem2::util {

/// Stable LSD radix sort of `perm` (indices into keys) by keys[perm[i]],
/// 8 bits per pass.  Runs ceil(key_bits/8) passes where key_bits covers the
/// maximum key present, so short keys (sequence lengths) take 1-2 passes.
/// `scratch` is grown to perm.size() and reused — callers on the hot path
/// (BswExecutor) keep it alive so steady state performs no allocations.
template <typename Key>
void radix_sort_indices(const std::vector<Key>& keys, std::vector<std::uint32_t>& perm,
                        std::vector<std::uint32_t>& scratch) {
  static_assert(std::is_unsigned_v<Key>, "radix sort requires unsigned keys");
  const std::size_t n = perm.size();
  if (n <= 1) return;

  Key max_key = 0;
  for (std::uint32_t i : perm) max_key = keys[i] > max_key ? keys[i] : max_key;

  if (scratch.size() < n) scratch.resize(n);
  std::uint32_t* src = perm.data();
  std::uint32_t* dst = scratch.data();

  for (int shift = 0; (max_key >> shift) != 0 || shift == 0; shift += 8) {
    std::uint32_t count[257] = {0};
    for (std::size_t i = 0; i < n; ++i)
      ++count[((keys[src[i]] >> shift) & 0xff) + 1];
    for (int b = 0; b < 256; ++b) count[b + 1] += count[b];
    for (std::size_t i = 0; i < n; ++i)
      dst[count[(keys[src[i]] >> shift) & 0xff]++] = src[i];
    std::swap(src, dst);
    if ((max_key >> shift) >> 8 == 0) break;
  }
  if (src != perm.data())
    std::copy(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(n),
              perm.begin());
}

template <typename Key>
void radix_sort_indices(const std::vector<Key>& keys, std::vector<std::uint32_t>& perm) {
  std::vector<std::uint32_t> scratch;
  radix_sort_indices(keys, perm, scratch);
}

}  // namespace mem2::util
