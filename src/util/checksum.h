// xxHash64 — the checksum guarding the index container's sections
// (index/index_io.cpp).  Single-shot over a contiguous buffer; the
// well-known public-domain algorithm (Yann Collet), chosen over CRC for
// speed at index sizes (GB-scale occ tables hash at memory bandwidth).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace mem2::util {

namespace detail {

inline constexpr std::uint64_t kXxPrime1 = 0x9E3779B185EBCA87ULL;
inline constexpr std::uint64_t kXxPrime2 = 0xC2B2AE3D27D4EB4FULL;
inline constexpr std::uint64_t kXxPrime3 = 0x165667B19E3779F9ULL;
inline constexpr std::uint64_t kXxPrime4 = 0x85EBCA77C2B2AE63ULL;
inline constexpr std::uint64_t kXxPrime5 = 0x27D4EB2F165667C5ULL;

inline std::uint64_t xx_rotl(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline std::uint64_t xx_read64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // little-endian hosts only, like the rest of the container
}

inline std::uint32_t xx_read32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t xx_round(std::uint64_t acc, std::uint64_t input) {
  return xx_rotl(acc + input * kXxPrime2, 31) * kXxPrime1;
}

inline std::uint64_t xx_merge_round(std::uint64_t acc, std::uint64_t val) {
  return (acc ^ xx_round(0, val)) * kXxPrime1 + kXxPrime4;
}

}  // namespace detail

inline std::uint64_t xxhash64(const void* data, std::size_t len,
                              std::uint64_t seed = 0) {
  using namespace detail;
  const auto* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + len;
  std::uint64_t h;

  if (len >= 32) {
    std::uint64_t v1 = seed + kXxPrime1 + kXxPrime2;
    std::uint64_t v2 = seed + kXxPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kXxPrime1;
    const unsigned char* const limit = end - 32;
    do {
      v1 = xx_round(v1, xx_read64(p));
      v2 = xx_round(v2, xx_read64(p + 8));
      v3 = xx_round(v3, xx_read64(p + 16));
      v4 = xx_round(v4, xx_read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = xx_rotl(v1, 1) + xx_rotl(v2, 7) + xx_rotl(v3, 12) + xx_rotl(v4, 18);
    h = xx_merge_round(h, v1);
    h = xx_merge_round(h, v2);
    h = xx_merge_round(h, v3);
    h = xx_merge_round(h, v4);
  } else {
    h = seed + kXxPrime5;
  }

  h += static_cast<std::uint64_t>(len);
  while (p + 8 <= end) {
    h = xx_rotl(h ^ xx_round(0, xx_read64(p)), 27) * kXxPrime1 + kXxPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h = xx_rotl(h ^ (static_cast<std::uint64_t>(xx_read32(p)) * kXxPrime1), 23) *
            kXxPrime2 +
        kXxPrime3;
    p += 4;
  }
  while (p < end) {
    h = xx_rotl(h ^ (*p * kXxPrime5), 11) * kXxPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kXxPrime2;
  h ^= h >> 29;
  h *= kXxPrime3;
  h ^= h >> 32;
  return h;
}

// Incremental xxHash64 over a sequence of update() calls; digest() equals
// xxhash64() of the concatenated bytes for every length and chunking.
// Lets index save/load hash sections as they stream through a fixed-size
// chunk buffer instead of materializing each section twice.
class Xxh64Stream {
 public:
  explicit Xxh64Stream(std::uint64_t seed = 0) { reset(seed); }

  void reset(std::uint64_t seed = 0) {
    seed_ = seed;
    v1_ = seed + detail::kXxPrime1 + detail::kXxPrime2;
    v2_ = seed + detail::kXxPrime2;
    v3_ = seed;
    v4_ = seed - detail::kXxPrime1;
    total_ = 0;
    buf_len_ = 0;
  }

  void update(const void* data, std::size_t len) {
    using namespace detail;
    const auto* p = static_cast<const unsigned char*>(data);
    total_ += len;
    if (buf_len_ + len < sizeof(buf_)) {  // stays short of a full stripe
      std::memcpy(buf_ + buf_len_, p, len);
      buf_len_ += len;
      return;
    }
    if (buf_len_ > 0) {
      const std::size_t fill = sizeof(buf_) - buf_len_;
      std::memcpy(buf_ + buf_len_, p, fill);
      consume_stripe(buf_);
      p += fill;
      len -= fill;
      buf_len_ = 0;
    }
    while (len >= sizeof(buf_)) {
      consume_stripe(p);
      p += sizeof(buf_);
      len -= sizeof(buf_);
    }
    std::memcpy(buf_, p, len);
    buf_len_ = len;
  }

  std::uint64_t digest() const {
    using namespace detail;
    std::uint64_t h;
    if (total_ >= sizeof(buf_)) {
      h = xx_rotl(v1_, 1) + xx_rotl(v2_, 7) + xx_rotl(v3_, 12) +
          xx_rotl(v4_, 18);
      h = xx_merge_round(h, v1_);
      h = xx_merge_round(h, v2_);
      h = xx_merge_round(h, v3_);
      h = xx_merge_round(h, v4_);
    } else {
      h = seed_ + kXxPrime5;
    }
    h += total_;
    const unsigned char* p = buf_;
    const unsigned char* const end = buf_ + buf_len_;
    while (p + 8 <= end) {
      h = xx_rotl(h ^ xx_round(0, xx_read64(p)), 27) * kXxPrime1 + kXxPrime4;
      p += 8;
    }
    if (p + 4 <= end) {
      h = xx_rotl(h ^ (static_cast<std::uint64_t>(xx_read32(p)) * kXxPrime1),
                  23) *
              kXxPrime2 +
          kXxPrime3;
      p += 4;
    }
    while (p < end) {
      h = xx_rotl(h ^ (*p * kXxPrime5), 11) * kXxPrime1;
      ++p;
    }
    h ^= h >> 33;
    h *= kXxPrime2;
    h ^= h >> 29;
    h *= kXxPrime3;
    h ^= h >> 32;
    return h;
  }

 private:
  void consume_stripe(const unsigned char* p) {
    using namespace detail;
    v1_ = xx_round(v1_, xx_read64(p));
    v2_ = xx_round(v2_, xx_read64(p + 8));
    v3_ = xx_round(v3_, xx_read64(p + 16));
    v4_ = xx_round(v4_, xx_read64(p + 24));
  }

  std::uint64_t seed_ = 0;
  std::uint64_t v1_ = 0, v2_ = 0, v3_ = 0, v4_ = 0;
  std::uint64_t total_ = 0;
  unsigned char buf_[32];
  std::size_t buf_len_ = 0;
};

}  // namespace mem2::util
