// Runtime CPU feature detection and kernel dispatch policy.
//
// The paper evaluates AVX512 (SKX) and AVX2 (HSW) builds plus a scalar
// fallback.  We compile all three kernel variants into one binary and pick
// at runtime; Isa can also be forced (e.g. MEM2_FORCE_ISA=avx2) so the
// benches can produce the HSW-style columns on an AVX512 machine.
#pragma once

#include <string>

namespace mem2::util {

enum class Isa {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

const char* isa_name(Isa isa);

/// Best ISA supported by the executing CPU.
Isa detect_isa();

/// Dispatch choice: min(detect_isa(), forced cap).  The cap comes from
/// set_isa_cap() or the MEM2_FORCE_ISA environment variable
/// ("scalar" | "avx2" | "avx512"), read once at first call.
Isa dispatch_isa();

/// Programmatic override used by tests/benches to exercise narrower kernels.
/// Pass detect_isa() to restore the default.
void set_isa_cap(Isa cap);

/// Parse "scalar"/"avx2"/"avx512" (case-insensitive); throws on other input.
Isa parse_isa(const std::string& name);

}  // namespace mem2::util
