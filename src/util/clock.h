// Injectable monotonic time for every deadline-bearing code path.
//
// The resilience layer (admission deadlines, the serve watchdog, retry
// backoff) must be testable without real sleeps: tests inject a FakeClock /
// FakeSleeper and advance virtual time explicitly, so "the session stalled
// for 500 ms" is a deterministic statement rather than a race against the
// scheduler.  Production code uses Clock::real() / Sleeper::real(), which
// are thin wrappers over std::chrono::steady_clock.
//
// Clock::wait_until is the one subtle piece: deadline waits sit on ordinary
// condition variables (the service's work/admission cvs), so a fake clock
// cannot hook the wakeup directly.  Instead FakeClock::wait_until bounds
// each block to a few real milliseconds and returns, and the caller's
// predicate loop re-reads the *virtual* now() — logic is driven entirely by
// fake time, while a missed notify costs at most one short real wait
// instead of a hang.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace mem2::util {

class Clock {
 public:
  using time_point = std::chrono::steady_clock::time_point;

  virtual ~Clock() = default;
  virtual time_point now() const = 0;

  /// Block on `cv` until notified or `deadline` (per this clock) passes.
  /// Callers always loop on their own predicate; spurious returns are fine.
  virtual void wait_until(std::condition_variable& cv,
                          std::unique_lock<std::mutex>& lk,
                          time_point deadline) = 0;

  /// The process steady clock.
  static Clock& real();
};

/// Virtual time for tests.  now() only moves when advance() is called, so a
/// deadline of "now + 500ms" is never reached by wall-clock accident.
class FakeClock final : public Clock {
 public:
  time_point now() const override {
    return time_point(std::chrono::nanoseconds(now_ns_.load(std::memory_order_acquire)));
  }

  void wait_until(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
                  time_point deadline) override {
    if (now() >= deadline) return;
    // Short real-time block; the caller's predicate loop re-checks virtual
    // time, so logic depends only on advance() while a missed notify costs
    // at most kPoll of real time.
    cv.wait_for(lk, kPoll);
  }

  void advance(std::chrono::nanoseconds d) {
    now_ns_.fetch_add(d.count(), std::memory_order_acq_rel);
  }

 private:
  static constexpr std::chrono::milliseconds kPoll{2};
  std::atomic<std::int64_t> now_ns_{1};  // nonzero so time_point{} reads as past
};

/// Injectable sleep for retry backoff.
class Sleeper {
 public:
  virtual ~Sleeper() = default;
  virtual void sleep_for(std::chrono::nanoseconds d) = 0;
  static Sleeper& real();
};

/// Records requested sleeps instead of performing them, so backoff schedules
/// are assertable and retry tests take no wall-clock time.
class FakeSleeper final : public Sleeper {
 public:
  void sleep_for(std::chrono::nanoseconds d) override {
    std::lock_guard<std::mutex> lk(mu_);
    slept_.push_back(d);
  }
  std::vector<std::chrono::nanoseconds> slept() const {
    std::lock_guard<std::mutex> lk(mu_);
    return slept_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::chrono::nanoseconds> slept_;
};

inline Clock& Clock::real() {
  class RealClock final : public Clock {
   public:
    time_point now() const override { return std::chrono::steady_clock::now(); }
    void wait_until(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
                    time_point deadline) override {
      if (deadline == time_point::max())
        cv.wait(lk);
      else
        cv.wait_until(lk, deadline);
    }
  };
  static RealClock clock;
  return clock;
}

inline Sleeper& Sleeper::real() {
  class RealSleeper final : public Sleeper {
   public:
    void sleep_for(std::chrono::nanoseconds d) override {
      if (d.count() > 0) std::this_thread::sleep_for(d);
    }
  };
  static RealSleeper sleeper;
  return sleeper;
}

}  // namespace mem2::util
