// Wall-clock timing and per-stage time accounting.
//
// The paper's Table 1 and Figure 5 break run time into SMEM / SAL / CHAIN /
// BSW-pre / BSW / SAM-FORM / Misc; StageTimes is the accumulator the drivers
// fill and the benches print.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>

namespace mem2::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void restart() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Pipeline stages, in paper order (Table 1).
enum class Stage : int {
  kSmem = 0,
  kSal,
  kChain,
  kBswPre,
  kBsw,
  kSamForm,
  kPair,  // paired-end stage: rescue harvest/rounds + pair scoring + pair SAM
  kMisc,
  kCount,
};

constexpr std::string_view stage_name(Stage s) {
  constexpr std::string_view names[] = {"SMEM",    "SAL", "CHAIN", "BSW-PRE",
                                        "BSW",     "SAM", "PAIR",  "MISC"};
  return names[static_cast<int>(s)];
}

struct StageTimes {
  std::array<double, static_cast<int>(Stage::kCount)> seconds{};

  double& operator[](Stage s) { return seconds[static_cast<int>(s)]; }
  double operator[](Stage s) const { return seconds[static_cast<int>(s)]; }

  double total() const {
    double t = 0;
    for (double s : seconds) t += s;
    return t;
  }

  StageTimes& operator+=(const StageTimes& o) {
    for (std::size_t i = 0; i < seconds.size(); ++i) seconds[i] += o.seconds[i];
    return *this;
  }
};

/// RAII accumulator: adds the scope's wall time to one stage slot.
class ScopedStage {
 public:
  ScopedStage(StageTimes& times, Stage stage) : times_(times), stage_(stage) {}
  ~ScopedStage() { times_[stage_] += timer_.seconds(); }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  StageTimes& times_;
  Stage stage_;
  Timer timer_;
};

}  // namespace mem2::util
