#include "util/fault_injector.h"

#include <cstdlib>

namespace mem2::util {

namespace {

/// Parse a non-empty all-digit string; returns 0 on malformed input (0 is
/// never a valid 1-based pass number, so it doubles as the error value).
std::uint64_t parse_count(const std::string& s) {
  if (s.empty()) return 0;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return 0;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector* inst = [] {
    static FaultInjector fi;
    if (const char* env = std::getenv("MEM2_FAULT")) fi.arm(env);
    return &fi;
  }();
  return *inst;
}

bool FaultInjector::arm(const std::string& spec) {
  disarm();
  if (spec.empty()) return true;

  std::deque<ArmedSite> sites;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string one = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? spec.size() + 1 : comma + 1;

    std::string site = one;
    std::uint64_t nth = 1, mth = 1;
    if (const auto colon = one.find(':'); colon != std::string::npos) {
      site = one.substr(0, colon);
      const std::string range = one.substr(colon + 1);
      const auto dash = range.find('-');
      if (dash == std::string::npos) {
        nth = mth = parse_count(range);
      } else {
        nth = parse_count(range.substr(0, dash));
        mth = parse_count(range.substr(dash + 1));
      }
      if (nth == 0 || mth < nth) return false;  // passes count from 1
    }
    if (site.empty()) return false;
    auto& armed = sites.emplace_back();
    armed.site = std::move(site);
    armed.nth = nth;
    armed.mth = mth;
  }

  sites_.swap(sites);
  armed_.store(true, std::memory_order_release);
  return true;
}

void FaultInjector::disarm() {
  armed_.store(false, std::memory_order_release);
  sites_.clear();
}

const std::string& FaultInjector::site() const {
  static const std::string empty;
  return sites_.empty() ? empty : sites_.front().site;
}

bool FaultInjector::fire(std::string_view site) {
  bool fired = false;
  for (auto& armed : sites_) {
    if (armed.site != site) continue;
    const std::uint64_t pass =
        armed.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    fired = fired || (armed.nth <= pass && pass <= armed.mth);
  }
  return fired;
}

std::uint64_t FaultInjector::hits(std::string_view site) const {
  for (const auto& armed : sites_)
    if (armed.site == site) return armed.hits.load(std::memory_order_relaxed);
  return 0;
}

}  // namespace mem2::util
