#include "util/fault_injector.h"

#include <cstdlib>

namespace mem2::util {

FaultInjector& FaultInjector::instance() {
  static FaultInjector* inst = [] {
    static FaultInjector fi;
    if (const char* env = std::getenv("MEM2_FAULT")) fi.arm(env);
    return &fi;
  }();
  return *inst;
}

bool FaultInjector::arm(const std::string& spec) {
  disarm();
  if (spec.empty()) return true;
  std::string site = spec;
  std::uint64_t nth = 1;
  if (const auto colon = spec.find(':'); colon != std::string::npos) {
    site = spec.substr(0, colon);
    const std::string count = spec.substr(colon + 1);
    if (count.empty()) return false;
    nth = 0;
    for (char c : count) {
      if (c < '0' || c > '9') return false;
      nth = nth * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (nth == 0) return false;  // fault points count from 1
  }
  if (site.empty()) return false;
  site_ = std::move(site);
  nth_ = nth;
  hits_.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
  return true;
}

void FaultInjector::disarm() {
  armed_.store(false, std::memory_order_release);
  site_.clear();
  nth_ = 1;
  hits_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::fire(std::string_view site) {
  if (site != site_) return false;
  return hits_.fetch_add(1, std::memory_order_relaxed) + 1 == nth_;
}

}  // namespace mem2::util
