#include "util/cpu_features.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace mem2::util {

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kAvx512: return "avx512";
  }
  return "unknown";
}

Isa detect_isa() {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512bw") && __builtin_cpu_supports("avx512vl"))
    return Isa::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
#endif
  return Isa::kScalar;
}

Isa parse_isa(const std::string& name) {
  std::string s;
  s.reserve(name.size());
  for (char c : name) s.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (s == "scalar") return Isa::kScalar;
  if (s == "avx2") return Isa::kAvx2;
  if (s == "avx512") return Isa::kAvx512;
  throw std::invalid_argument("unknown ISA name: " + name +
                              " (expected scalar, avx2, or avx512)");
}

namespace {

std::atomic<int> g_cap{-1};  // -1: uninitialized

Isa initial_cap() {
  if (const char* env = std::getenv("MEM2_FORCE_ISA")) {
    return parse_isa(env);
  }
  return Isa::kAvx512;  // no cap
}

}  // namespace

void set_isa_cap(Isa cap) { g_cap.store(static_cast<int>(cap), std::memory_order_relaxed); }

Isa dispatch_isa() {
  int cap = g_cap.load(std::memory_order_relaxed);
  if (cap < 0) {
    cap = static_cast<int>(initial_cap());
    g_cap.store(cap, std::memory_order_relaxed);
  }
  return static_cast<Isa>(std::min(static_cast<int>(detect_isa()), cap));
}

}  // namespace mem2::util
