#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "util/sw_counters.h"

namespace mem2::util {

// ---------------------------------------------------------------- Histogram

namespace {

/// Smallest bucket index whose upper bound is >= v (kBuckets-1 = overflow).
int bucket_index(double v) {
  if (!(v > Histogram::kMinUpper)) return 0;  // also catches NaN/negatives
  int e = 0;
  const double m = std::frexp(v / Histogram::kMinUpper, &e);
  // v/kMinUpper = m * 2^e with m in [0.5, 1): need ceil(log2(ratio)).
  const int idx = (m == 0.5) ? e - 1 : e;
  return std::clamp(idx, 0, Histogram::kBuckets - 1);
}

}  // namespace

void Histogram::record(double v) {
  if (std::isnan(v)) return;
  if (v < 0) v = 0;
  ++counts_[static_cast<std::size_t>(bucket_index(v))];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::bucket_upper(int i) {
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return kMinUpper * std::ldexp(1.0, i);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, mirroring the old sorted-vector estimators'
  // idx = q*(n-1)+0.5 rounding.
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1) + 0.5);
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += counts_[static_cast<std::size_t>(i)];
    if (cum > target) {
      // Geometric midpoint of the bucket; the ends fall back on the
      // observed extremes so the estimate never leaves the data range.
      const double lo = (i == 0) ? min_ : bucket_upper(i - 1);
      const double hi = (i == kBuckets - 1) ? max_ : bucket_upper(i);
      double est = (lo > 0 && std::isfinite(hi)) ? std::sqrt(lo * hi)
                                                 : (lo + hi) * 0.5;
      if (!std::isfinite(est)) est = max_;
      return std::clamp(est, min_, max_);
    }
  }
  return max_;
}

Histogram& Histogram::operator+=(const Histogram& o) {
  if (o.count_ == 0) return *this;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
  min_ = count_ ? std::min(min_, o.min_) : o.min_;
  max_ = count_ ? std::max(max_, o.max_) : o.max_;
  count_ += o.count_;
  sum_ += o.sum_;
  return *this;
}

// --------------------------------------------------------------- PromWriter

namespace {

std::string prom_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void write_sample(std::ostream& os, std::string_view name,
                  std::string_view labels, double value) {
  os << name;
  if (!labels.empty()) os << '{' << labels << '}';
  os << ' ' << prom_double(value) << '\n';
}

}  // namespace

void PromWriter::header(std::string_view name, std::string_view help,
                        const char* type) {
  for (const auto& e : emitted_)
    if (e == name) return;
  emitted_.emplace_back(name);
  if (!help.empty()) os_ << "# HELP " << name << ' ' << help << '\n';
  os_ << "# TYPE " << name << ' ' << type << '\n';
}

void PromWriter::counter(std::string_view name, std::string_view help,
                         double value, std::string_view labels) {
  header(name, help, "counter");
  write_sample(os_, name, labels, value);
}

void PromWriter::gauge(std::string_view name, std::string_view help,
                       double value, std::string_view labels) {
  header(name, help, "gauge");
  write_sample(os_, name, labels, value);
}

void PromWriter::histogram(std::string_view name, std::string_view help,
                           const Histogram& h, std::string_view labels) {
  header(name, help, "histogram");
  const std::string bucket_name = std::string(name) + "_bucket";
  std::uint64_t cum = 0;
  for (int i = 0; i < Histogram::kBuckets - 1; ++i) {
    const std::uint64_t c = h.buckets()[static_cast<std::size_t>(i)];
    if (c == 0) continue;  // sparse: emit only buckets that gained counts
    cum += c;
    std::string ls(labels);
    if (!ls.empty()) ls += ',';
    ls += "le=\"" + prom_double(Histogram::bucket_upper(i)) + "\"";
    write_sample(os_, bucket_name, ls, static_cast<double>(cum));
  }
  {
    std::string ls(labels);
    if (!ls.empty()) ls += ',';
    ls += "le=\"+Inf\"";
    write_sample(os_, bucket_name, ls, static_cast<double>(h.count()));
  }
  write_sample(os_, std::string(name) + "_sum", labels, h.sum());
  write_sample(os_, std::string(name) + "_count", labels,
               static_cast<double>(h.count()));
}

// ------------------------------------------------------- SwCounters mapping

const std::vector<SwCounterField>& sw_counter_fields() {
  static const std::vector<SwCounterField> fields = {
      {"occ_bucket_loads", &SwCounters::occ_bucket_loads},
      {"backward_exts", &SwCounters::backward_exts},
      {"forward_exts", &SwCounters::forward_exts},
      {"prefetches", &SwCounters::prefetches},
      {"smems_found", &SwCounters::smems_found},
      {"sa_lookups", &SwCounters::sa_lookups},
      {"sa_lf_steps", &SwCounters::sa_lf_steps},
      {"sa_memory_loads", &SwCounters::sa_memory_loads},
      {"bsw_pairs", &SwCounters::bsw_pairs},
      {"bsw_cells_total", &SwCounters::bsw_cells_total},
      {"bsw_cells_useful", &SwCounters::bsw_cells_useful},
      {"bsw_aborted_pairs", &SwCounters::bsw_aborted_pairs},
      {"io_records_skipped", &SwCounters::io_records_skipped},
      {"pe_rescue_windows", &SwCounters::pe_rescue_windows},
      {"pe_rescue_win_skipped", &SwCounters::pe_rescue_win_skipped},
      {"pe_rescue_win_deduped", &SwCounters::pe_rescue_win_deduped},
      {"pe_rescue_jobs", &SwCounters::pe_rescue_jobs},
      {"pe_rescue_hits", &SwCounters::pe_rescue_hits},
      {"pe_rescued_pairs", &SwCounters::pe_rescued_pairs},
      {"pe_proper_pairs", &SwCounters::pe_proper_pairs},
  };
  return fields;
}

void write_sw_counters(PromWriter& w, const SwCounters& c,
                       std::string_view labels) {
  for (const auto& f : sw_counter_fields()) {
    w.counter("mem2_sw_" + std::string(f.name) + "_total",
              "software event counter (see util/sw_counters.h)",
              static_cast<double>(c.*(f.member)), labels);
  }
}

// ----------------------------------------------------------------- registry

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry r;
  return r;
}

int MetricsRegistry::register_metric(std::string name, std::string help,
                                     Kind kind) {
  std::lock_guard<std::mutex> lk(mu_);
  if (auto it = by_name_.find(name); it != by_name_.end()) {
    if (metrics_[static_cast<std::size_t>(it->second)].kind != kind)
      throw std::logic_error("metric re-registered with different kind: " +
                             name);
    return it->second;
  }
  int slot = 0;
  switch (kind) {
    case Kind::kCounter:
      if (static_cast<std::size_t>(n_counters_) >= kMaxCounters)
        throw std::logic_error("metrics registry counter capacity exhausted");
      slot = n_counters_++;
      break;
    case Kind::kGauge:
      slot = n_gauges_++;
      gauges_.push_back(std::make_unique<std::atomic<double>>(0.0));
      break;
    case Kind::kHistogram:
      slot = n_hists_++;
      break;
  }
  const int id = static_cast<int>(metrics_.size());
  metrics_.push_back({name, std::move(help), kind, slot});
  by_name_.emplace(std::move(name), id);
  return id;
}

int MetricsRegistry::counter(std::string name, std::string help) {
  return register_metric(std::move(name), std::move(help), Kind::kCounter);
}
int MetricsRegistry::gauge(std::string name, std::string help) {
  return register_metric(std::move(name), std::move(help), Kind::kGauge);
}
int MetricsRegistry::histogram(std::string name, std::string help) {
  return register_metric(std::move(name), std::move(help), Kind::kHistogram);
}

MetricsRegistry::Shard& MetricsRegistry::self_shard() {
  struct TlsCache {
    const MetricsRegistry* reg = nullptr;
    Shard* shard = nullptr;
  };
  static thread_local TlsCache cache;
  if (cache.reg == this) return *cache.shard;
  std::lock_guard<std::mutex> lk(mu_);
  Shard*& slot = shard_by_thread_[std::this_thread::get_id()];
  if (slot == nullptr) {
    shards_.push_back(std::make_unique<Shard>());
    slot = shards_.back().get();
  }
  cache = {this, slot};
  return *slot;
}

void MetricsRegistry::add(int counter_id, std::uint64_t delta) {
  const auto& m = metrics_[static_cast<std::size_t>(counter_id)];
  self_shard().counters[static_cast<std::size_t>(m.slot)].fetch_add(
      delta, std::memory_order_relaxed);
}

void MetricsRegistry::set(int gauge_id, double value) {
  const auto& m = metrics_[static_cast<std::size_t>(gauge_id)];
  gauges_[static_cast<std::size_t>(m.slot)]->store(value,
                                                   std::memory_order_relaxed);
}

void MetricsRegistry::observe(int histogram_id, double value) {
  const auto& m = metrics_[static_cast<std::size_t>(histogram_id)];
  Shard& s = self_shard();
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.hists.size() <= static_cast<std::size_t>(m.slot))
    s.hists.resize(static_cast<std::size_t>(m.slot) + 1);
  s.hists[static_cast<std::size_t>(m.slot)].record(value);
}

std::uint64_t MetricsRegistry::counter_value(int counter_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto& m = metrics_[static_cast<std::size_t>(counter_id)];
  std::uint64_t total = 0;
  for (const auto& s : shards_)
    total += s->counters[static_cast<std::size_t>(m.slot)].load(
        std::memory_order_relaxed);
  return total;
}

double MetricsRegistry::gauge_value(int gauge_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto& m = metrics_[static_cast<std::size_t>(gauge_id)];
  return gauges_[static_cast<std::size_t>(m.slot)]->load(
      std::memory_order_relaxed);
}

Histogram MetricsRegistry::histogram_snapshot(int histogram_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto& m = metrics_[static_cast<std::size_t>(histogram_id)];
  Histogram out;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> slk(s->mu);
    if (s->hists.size() > static_cast<std::size_t>(m.slot))
      out += s->hists[static_cast<std::size_t>(m.slot)];
  }
  return out;
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::vector<Metric> metrics;
  {
    std::lock_guard<std::mutex> lk(mu_);
    metrics = metrics_;
  }
  PromWriter w(os);
  for (std::size_t id = 0; id < metrics.size(); ++id) {
    const auto& m = metrics[id];
    switch (m.kind) {
      case Kind::kCounter:
        w.counter(m.name, m.help,
                  static_cast<double>(counter_value(static_cast<int>(id))));
        break;
      case Kind::kGauge:
        w.gauge(m.name, m.help, gauge_value(static_cast<int>(id)));
        break;
      case Kind::kHistogram:
        w.histogram(m.name, m.help, histogram_snapshot(static_cast<int>(id)));
        break;
    }
  }
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& s : shards_) {
    for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> slk(s->mu);
    for (auto& h : s->hists) h.reset();
  }
  for (auto& g : gauges_) g->store(0.0, std::memory_order_relaxed);
}

}  // namespace mem2::util
