#include "util/arena.h"

#include <algorithm>

namespace mem2::util {

Arena::Arena(std::size_t chunk_bytes) : chunk_bytes_(chunk_bytes) {
  MEM2_REQUIRE(chunk_bytes > 0, "Arena chunk size must be positive");
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  MEM2_REQUIRE(align != 0 && (align & (align - 1)) == 0,
               "Arena alignment must be a power of two");
  if (bytes == 0) bytes = 1;  // keep returned pointers distinct

  for (;;) {
    if (active_ < chunks_.size()) {
      Chunk& c = chunks_[active_];
      // Align the absolute address, not the chunk-relative offset.
      const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
      const std::size_t aligned =
          ((base + offset_ + align - 1) & ~(align - 1)) - base;
      if (aligned + bytes <= c.size) {
        offset_ = aligned + bytes;
        bytes_allocated_ += bytes;
        return c.data.get() + aligned;
      }
      // Active chunk exhausted: move to the next (possibly recycled) chunk.
      ++active_;
      offset_ = 0;
      continue;
    }
    add_chunk(bytes + align);
  }
}

void Arena::add_chunk(std::size_t min_bytes) {
  std::size_t size = std::max(chunk_bytes_, min_bytes);
  Chunk c;
  c.data = std::make_unique<std::byte[]>(size);
  c.size = size;
  bytes_reserved_ += size;
  ++system_allocations_;
  chunks_.push_back(std::move(c));
  active_ = chunks_.size() - 1;
  offset_ = 0;
}

void Arena::reset() noexcept {
  active_ = 0;
  offset_ = 0;
  bytes_allocated_ = 0;
}

void Arena::release() noexcept {
  chunks_.clear();
  active_ = 0;
  offset_ = 0;
  bytes_allocated_ = 0;
  bytes_reserved_ = 0;
  system_allocations_ = 0;
}

}  // namespace mem2::util
