#include "io/sam.h"

#include <ostream>
#include <sstream>

namespace mem2::io {

std::string SamRecord::to_line() const {
  std::ostringstream os;
  os << qname << '\t' << flag << '\t' << rname << '\t' << pos << '\t' << mapq
     << '\t' << cigar << '\t' << rnext << '\t' << pnext << '\t' << tlen << '\t'
     << seq << '\t' << qual;
  for (const auto& t : tags) os << '\t' << t;
  return os.str();
}

std::string sam_header(const seq::Reference& ref, const std::string& pg_line) {
  std::ostringstream os;
  os << "@HD\tVN:1.6\tSO:unsorted\n";
  for (const auto& c : ref.contigs())
    os << "@SQ\tSN:" << c.name << "\tLN:" << c.length << '\n';
  if (!pg_line.empty()) os << pg_line << '\n';
  return os.str();
}

void write_sam(std::ostream& out, const std::string& header,
               const std::vector<SamRecord>& records) {
  out << header;
  for (const auto& r : records) out << r.to_line() << '\n';
}

}  // namespace mem2::io
