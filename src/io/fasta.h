// FASTA reading and writing.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "seq/pack.h"

namespace mem2::io {

struct FastaRecord {
  std::string name;     // text up to the first whitespace after '>'
  std::string comment;  // remainder of the header line (may be empty)
  std::string sequence;
};

/// Parse all records from a stream.  Throws io_error on malformed input
/// (data before the first header, empty names).
std::vector<FastaRecord> read_fasta(std::istream& in);
std::vector<FastaRecord> read_fasta_file(const std::string& path);

/// Write records, wrapping sequence lines at `width` columns.
void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records, int width = 70);
void write_fasta_file(const std::string& path, const std::vector<FastaRecord>& records, int width = 70);

/// Load a FASTA file straight into a Reference (one contig per record).
seq::Reference load_reference(const std::string& path);
seq::Reference reference_from_records(const std::vector<FastaRecord>& records);

/// Dump a Reference to FASTA (decoded from the packed representation; note
/// ambiguous bases were already replaced at build time, as in BWA's .pac).
void save_reference(const std::string& path, const seq::Reference& ref, int width = 70);

}  // namespace mem2::io
