#include "io/fastq.h"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/common.h"

namespace mem2::io {

namespace {

bool get_trimmed(std::istream& in, std::string& line) {
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

}  // namespace

FastqStream::FastqStream(std::istream& in) : in_(&in) {}

FastqStream::FastqStream(const std::string& path)
    : owned_(std::make_unique<std::ifstream>(path)) {
  if (!*owned_) throw io_error("cannot open FASTQ file: " + path);
  in_ = owned_.get();
}

FastqStream::~FastqStream() = default;
FastqStream::FastqStream(FastqStream&&) noexcept = default;
FastqStream& FastqStream::operator=(FastqStream&&) noexcept = default;

bool FastqStream::next_read(seq::Read& read) {
  // Skip blank lines between records (and tolerate a trailing newline).
  do {
    if (!get_trimmed(*in_, header_)) return false;
  } while (header_.empty());

  if (header_[0] != '@') throw io_error("FASTQ: expected '@' header, got: " + header_);
  if (!get_trimmed(*in_, read.bases)) throw io_error("FASTQ: truncated record (no sequence)");
  if (!get_trimmed(*in_, plus_)) throw io_error("FASTQ: truncated record (no '+')");
  if (plus_.empty() || plus_[0] != '+') throw io_error("FASTQ: expected '+' line");
  if (!get_trimmed(*in_, read.qual)) throw io_error("FASTQ: truncated record (no quality)");
  if (read.qual.size() != read.bases.size())
    throw io_error("FASTQ: quality length != sequence length for " + header_);

  std::size_t name_end = 1;
  while (name_end < header_.size() &&
         !std::isspace(static_cast<unsigned char>(header_[name_end])))
    ++name_end;
  read.name.assign(header_, 1, name_end - 1);
  if (read.name.empty()) throw io_error("FASTQ: empty read name");
  ++reads_parsed_;
  return true;
}

std::size_t FastqStream::next_chunk(std::vector<seq::Read>& out, std::size_t max_reads) {
  out.clear();
  if (out.capacity() < max_reads) out.reserve(max_reads);
  seq::Read read;
  while (out.size() < max_reads && next_read(read)) out.push_back(std::move(read));
  return out.size();
}

PairedFastqStream::PairedFastqStream(const std::string& path1,
                                     const std::string& path2)
    : s1_(path1),
      s2_(std::make_unique<FastqStream>(path2)),
      path1_(path1),
      path2_(path2) {}

PairedFastqStream::PairedFastqStream(const std::string& interleaved_path)
    : s1_(interleaved_path), path1_(interleaved_path) {}

bool PairedFastqStream::next_pair(seq::Read& r1, seq::Read& r2) {
  if (s2_) {
    const bool got1 = s1_.next_read(r1);
    const bool got2 = s2_->next_read(r2);
    if (got1 != got2)
      throw io_error("paired FASTQ: '" + (got1 ? path2_ : path1_) +
                     "' has fewer reads than '" + (got1 ? path1_ : path2_) +
                     "' (the files must have the same read count)");
    if (!got1) return false;
  } else {
    if (!s1_.next_read(r1)) return false;
    if (!s1_.next_read(r2))
      throw io_error("paired FASTQ: interleaved file '" + path1_ +
                     "' ends mid-pair (odd number of reads)");
  }
  ++pairs_parsed_;
  return true;
}

std::size_t PairedFastqStream::next_chunk(std::vector<seq::Read>& out,
                                          std::size_t max_pairs) {
  out.clear();
  if (out.capacity() < 2 * max_pairs) out.reserve(2 * max_pairs);
  seq::Read r1, r2;
  std::size_t n = 0;
  while (n < max_pairs && next_pair(r1, r2)) {
    out.push_back(std::move(r1));
    out.push_back(std::move(r2));
    ++n;
  }
  return n;
}

std::vector<seq::Read> read_fastq(std::istream& in) {
  FastqStream stream(in);
  std::vector<seq::Read> reads;
  seq::Read read;
  while (stream.next_read(read)) reads.push_back(std::move(read));
  return reads;
}

std::vector<seq::Read> read_fastq_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open FASTQ file: " + path);
  return read_fastq(in);
}

void write_fastq(std::ostream& out, const std::vector<seq::Read>& reads) {
  for (const auto& r : reads)
    out << '@' << r.name << '\n' << r.bases << "\n+\n" << r.qual << '\n';
}

void write_fastq_file(const std::string& path, const std::vector<seq::Read>& reads) {
  std::ofstream out(path);
  if (!out) throw io_error("cannot open FASTQ file for writing: " + path);
  write_fastq(out, reads);
}

}  // namespace mem2::io
