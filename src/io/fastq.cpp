#include "io/fastq.h"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/common.h"

namespace mem2::io {

namespace {

bool get_trimmed(std::istream& in, std::string& line) {
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

}  // namespace

FastqStream::FastqStream(std::istream& in) : in_(&in) {}

FastqStream::FastqStream(const std::string& path)
    : owned_(std::make_unique<std::ifstream>(path)) {
  if (!*owned_) throw io_error("cannot open FASTQ file: " + path);
  in_ = owned_.get();
}

FastqStream::~FastqStream() = default;
FastqStream::FastqStream(FastqStream&&) noexcept = default;
FastqStream& FastqStream::operator=(FastqStream&&) noexcept = default;

bool FastqStream::next_read(seq::Read& read) {
  // Skip blank lines between records (and tolerate a trailing newline).
  do {
    if (!get_trimmed(*in_, header_)) return false;
  } while (header_.empty());

  if (header_[0] != '@') throw io_error("FASTQ: expected '@' header, got: " + header_);
  if (!get_trimmed(*in_, read.bases)) throw io_error("FASTQ: truncated record (no sequence)");
  if (!get_trimmed(*in_, plus_)) throw io_error("FASTQ: truncated record (no '+')");
  if (plus_.empty() || plus_[0] != '+') throw io_error("FASTQ: expected '+' line");
  if (!get_trimmed(*in_, read.qual)) throw io_error("FASTQ: truncated record (no quality)");
  if (read.qual.size() != read.bases.size())
    throw io_error("FASTQ: quality length != sequence length for " + header_);

  std::size_t name_end = 1;
  while (name_end < header_.size() &&
         !std::isspace(static_cast<unsigned char>(header_[name_end])))
    ++name_end;
  read.name.assign(header_, 1, name_end - 1);
  if (read.name.empty()) throw io_error("FASTQ: empty read name");
  ++reads_parsed_;
  return true;
}

std::size_t FastqStream::next_chunk(std::vector<seq::Read>& out, std::size_t max_reads) {
  out.clear();
  if (out.capacity() < max_reads) out.reserve(max_reads);
  seq::Read read;
  while (out.size() < max_reads && next_read(read)) out.push_back(std::move(read));
  return out.size();
}

std::vector<seq::Read> read_fastq(std::istream& in) {
  FastqStream stream(in);
  std::vector<seq::Read> reads;
  seq::Read read;
  while (stream.next_read(read)) reads.push_back(std::move(read));
  return reads;
}

std::vector<seq::Read> read_fastq_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open FASTQ file: " + path);
  return read_fastq(in);
}

void write_fastq(std::ostream& out, const std::vector<seq::Read>& reads) {
  for (const auto& r : reads)
    out << '@' << r.name << '\n' << r.bases << "\n+\n" << r.qual << '\n';
}

void write_fastq_file(const std::string& path, const std::vector<seq::Read>& reads) {
  std::ofstream out(path);
  if (!out) throw io_error("cannot open FASTQ file for writing: " + path);
  write_fastq(out, reads);
}

}  // namespace mem2::io
