#include "io/fastq.h"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/common.h"
#include "util/fault_injector.h"
#include "util/sw_counters.h"

namespace mem2::io {

namespace {

bool get_trimmed(std::istream& in, std::string& line) {
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

}  // namespace

FastqStream::FastqStream(std::istream& in, FastqPolicy policy)
    : in_(&in), policy_(policy) {}

FastqStream::FastqStream(const std::string& path, FastqPolicy policy)
    : owned_(std::make_unique<std::ifstream>(path)), policy_(policy) {
  if (!*owned_) throw io_error("cannot open FASTQ file: " + path);
  in_ = owned_.get();
}

FastqStream::~FastqStream() = default;
FastqStream::FastqStream(FastqStream&&) noexcept = default;
FastqStream& FastqStream::operator=(FastqStream&&) noexcept = default;

/// Next candidate header line: a '@' line stashed by resynchronization, or
/// the next non-blank line of the stream.  False at end of input.
bool FastqStream::next_header(std::string& header) {
  if (have_pending_header_) {
    header = std::move(pending_header_);
    have_pending_header_ = false;
    return true;
  }
  // Skip blank lines between records (and tolerate a trailing newline).
  do {
    if (!get_trimmed(*in_, header)) return false;
  } while (header.empty());
  return true;
}

FastqStream::Parse FastqStream::try_parse(seq::Read& read) {
  if (!next_header(header_)) return Parse::kEof;

  auto bad = [&](std::string what) {
    error_ = std::move(what);
    return Parse::kBad;
  };
  if (header_[0] != '@')
    return bad("FASTQ: expected '@' header, got: " + header_);
  if (!get_trimmed(*in_, read.bases))
    return bad("FASTQ: truncated record (no sequence)");
  if (!get_trimmed(*in_, plus_))
    return bad("FASTQ: truncated record (no '+')");
  if (plus_.empty() || plus_[0] != '+') return bad("FASTQ: expected '+' line");
  if (!get_trimmed(*in_, read.qual))
    return bad("FASTQ: truncated record (no quality)");
  if (read.qual.size() != read.bases.size())
    return bad("FASTQ: quality length != sequence length for " + header_);

  std::size_t name_end = 1;
  while (name_end < header_.size() &&
         !std::isspace(static_cast<unsigned char>(header_[name_end])))
    ++name_end;
  read.name.assign(header_, 1, name_end - 1);
  if (read.name.empty()) return bad("FASTQ: empty read name");
  return Parse::kOk;
}

bool FastqStream::next_read(seq::Read& read) {
  return next_read_ordinal(read, nullptr);
}

bool FastqStream::next_read_ordinal(seq::Read& read, std::uint64_t* ordinal) {
  if (util::fault_point("fastq.read"))
    throw io_error("injected fault: fastq.read");
  for (;;) {
    const Parse r = try_parse(read);
    if (r == Parse::kEof) return false;
    if (r == Parse::kOk) {
      if (ordinal) *ordinal = reads_parsed_ + records_skipped_;
      ++reads_parsed_;
      return true;
    }
    if (policy_ == FastqPolicy::kStrict) throw io_error(error_);
    // Skip policy: the damaged record counts once, however many garbage
    // lines it spans — resynchronize at the next '@' header line.
    ++records_skipped_;
    ++util::tls_counters().io_records_skipped;
    std::string line;
    while (get_trimmed(*in_, line)) {
      if (!line.empty() && line[0] == '@') {
        pending_header_ = std::move(line);
        have_pending_header_ = true;
        break;
      }
    }
  }
}

std::size_t FastqStream::next_chunk(std::vector<seq::Read>& out, std::size_t max_reads) {
  out.clear();
  if (out.capacity() < max_reads) out.reserve(max_reads);
  seq::Read read;
  while (out.size() < max_reads && next_read(read)) out.push_back(std::move(read));
  return out.size();
}

PairedFastqStream::PairedFastqStream(const std::string& path1,
                                     const std::string& path2,
                                     FastqPolicy policy)
    : s1_(path1, policy),
      s2_(std::make_unique<FastqStream>(path2, policy)),
      path1_(path1),
      path2_(path2),
      policy_(policy) {}

PairedFastqStream::PairedFastqStream(const std::string& interleaved_path,
                                     FastqPolicy policy)
    : s1_(interleaved_path, policy), path1_(interleaved_path), policy_(policy) {}

bool PairedFastqStream::next_pair(seq::Read& r1, seq::Read& r2) {
  return s2_ ? next_pair_two_files(r1, r2) : next_pair_interleaved(r1, r2);
}

bool PairedFastqStream::next_pair_two_files(seq::Read& r1, seq::Read& r2) {
  if (policy_ == FastqPolicy::kStrict) {
    const bool got1 = s1_.next_read(r1);
    const bool got2 = s2_->next_read(r2);
    if (got1 != got2)
      throw io_error("paired FASTQ: '" + (got1 ? path2_ : path1_) +
                     "' has fewer reads than '" + (got1 ? path1_ : path2_) +
                     "' (the files must have the same read count)");
    if (!got1) return false;
    ++pairs_parsed_;
    return true;
  }
  // Skip policy: mates pair by record ordinal, so a skipped record on one
  // side drops exactly its own pair instead of shifting every later mate.
  std::uint64_t o1 = 0, o2 = 0;
  bool got1 = s1_.next_read_ordinal(r1, &o1);
  bool got2 = s2_->next_read_ordinal(r2, &o2);
  while (got1 && got2 && o1 != o2) {
    ++pairs_dropped_;  // the lagging side's mate was skipped
    if (o1 < o2)
      got1 = s1_.next_read_ordinal(r1, &o1);
    else
      got2 = s2_->next_read_ordinal(r2, &o2);
  }
  if (got1 && got2) {
    ++pairs_parsed_;
    return true;
  }
  // One side ended first (skipped tail records or unequal files): every
  // remaining read on the longer side has lost its mate — drain so the
  // dropped-pair count stays exact.
  seq::Read rest;
  std::uint64_t o = 0;
  if (got1 || got2) ++pairs_dropped_;
  FastqStream& longer = got1 ? s1_ : *s2_;
  while ((got1 || got2) && longer.next_read_ordinal(rest, &o)) ++pairs_dropped_;
  return false;
}

bool PairedFastqStream::next_pair_interleaved(seq::Read& r1, seq::Read& r2) {
  if (policy_ == FastqPolicy::kStrict) {
    if (!s1_.next_read(r1)) return false;
    if (!s1_.next_read(r2))
      throw io_error("paired FASTQ: interleaved file '" + path1_ +
                     "' ends mid-pair (odd number of reads)");
    ++pairs_parsed_;
    return true;
  }
  // Skip policy: even ordinals are R1 slots, odd are R2 slots; a pair is
  // emitted only when both slots of the same pair survived.
  seq::Read r;
  std::uint64_t o = 0;
  for (;;) {
    if (!s1_.next_read_ordinal(r, &o)) {
      if (have_pending_) {  // trailing R1 whose mate was lost
        ++pairs_dropped_;
        have_pending_ = false;
      }
      return false;
    }
    if (o % 2 == 0) {  // an R1 slot
      if (have_pending_) ++pairs_dropped_;  // previous pair's R2 was skipped
      pending_read_ = std::move(r);
      pending_ordinal_ = o;
      have_pending_ = true;
    } else {  // an R2 slot
      if (have_pending_ && pending_ordinal_ == o - 1) {
        r1 = std::move(pending_read_);
        r2 = std::move(r);
        have_pending_ = false;
        ++pairs_parsed_;
        return true;
      }
      if (have_pending_) {  // pending R1 belongs to an earlier, broken pair
        ++pairs_dropped_;
        have_pending_ = false;
      }
      ++pairs_dropped_;  // this R2's own R1 was skipped
    }
  }
}

std::size_t PairedFastqStream::next_chunk(std::vector<seq::Read>& out,
                                          std::size_t max_pairs) {
  out.clear();
  if (out.capacity() < 2 * max_pairs) out.reserve(2 * max_pairs);
  seq::Read r1, r2;
  std::size_t n = 0;
  while (n < max_pairs && next_pair(r1, r2)) {
    out.push_back(std::move(r1));
    out.push_back(std::move(r2));
    ++n;
  }
  return n;
}

std::vector<seq::Read> read_fastq(std::istream& in) {
  FastqStream stream(in);
  std::vector<seq::Read> reads;
  seq::Read read;
  while (stream.next_read(read)) reads.push_back(std::move(read));
  return reads;
}

std::vector<seq::Read> read_fastq_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open FASTQ file: " + path);
  return read_fastq(in);
}

void write_fastq(std::ostream& out, const std::vector<seq::Read>& reads) {
  for (const auto& r : reads)
    out << '@' << r.name << '\n' << r.bases << "\n+\n" << r.qual << '\n';
}

void write_fastq_file(const std::string& path, const std::vector<seq::Read>& reads) {
  std::ofstream out(path);
  if (!out) throw io_error("cannot open FASTQ file for writing: " + path);
  write_fastq(out, reads);
}

}  // namespace mem2::io
