#include "io/fastq.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/common.h"

namespace mem2::io {

namespace {

bool get_trimmed(std::istream& in, std::string& line) {
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

}  // namespace

std::vector<seq::Read> read_fastq(std::istream& in) {
  std::vector<seq::Read> reads;
  std::string header, bases, plus, qual;
  while (get_trimmed(in, header)) {
    if (header.empty()) continue;
    if (header[0] != '@') throw io_error("FASTQ: expected '@' header, got: " + header);
    if (!get_trimmed(in, bases)) throw io_error("FASTQ: truncated record (no sequence)");
    if (!get_trimmed(in, plus)) throw io_error("FASTQ: truncated record (no '+')");
    if (plus.empty() || plus[0] != '+') throw io_error("FASTQ: expected '+' line");
    if (!get_trimmed(in, qual)) throw io_error("FASTQ: truncated record (no quality)");
    if (qual.size() != bases.size())
      throw io_error("FASTQ: quality length != sequence length for " + header);

    seq::Read r;
    std::size_t name_end = 1;
    while (name_end < header.size() && !std::isspace(static_cast<unsigned char>(header[name_end])))
      ++name_end;
    r.name = header.substr(1, name_end - 1);
    if (r.name.empty()) throw io_error("FASTQ: empty read name");
    r.bases = bases;
    r.qual = qual;
    reads.push_back(std::move(r));
  }
  return reads;
}

std::vector<seq::Read> read_fastq_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open FASTQ file: " + path);
  return read_fastq(in);
}

void write_fastq(std::ostream& out, const std::vector<seq::Read>& reads) {
  for (const auto& r : reads)
    out << '@' << r.name << '\n' << r.bases << "\n+\n" << r.qual << '\n';
}

void write_fastq_file(const std::string& path, const std::vector<seq::Read>& reads) {
  std::ofstream out(path);
  if (!out) throw io_error("cannot open FASTQ file for writing: " + path);
  write_fastq(out, reads);
}

}  // namespace mem2::io
