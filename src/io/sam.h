// SAM output (SAM-FORM stage of the pipeline).
//
// Minimal but spec-conformant subset: @HD/@SQ/@PG headers and the eleven
// mandatory columns plus NM/AS/XS tags, which is what BWA-MEM emits for
// single-end alignment.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "seq/pack.h"

namespace mem2::io {

/// SAM FLAG bits (single-end subset plus the paired-end template bits).
enum SamFlag : int {
  kFlagPaired = 0x1,
  kFlagProperPair = 0x2,
  kFlagUnmapped = 0x4,
  kFlagMateUnmapped = 0x8,
  kFlagReverse = 0x10,
  kFlagMateReverse = 0x20,
  kFlagRead1 = 0x40,
  kFlagRead2 = 0x80,
  kFlagSecondary = 0x100,
  kFlagSupplementary = 0x800,
};

struct SamRecord {
  std::string qname;
  int flag = kFlagUnmapped;
  std::string rname = "*";
  std::int64_t pos = 0;  // 1-based; 0 when unmapped
  int mapq = 0;
  std::string cigar = "*";
  std::string rnext = "*";
  std::int64_t pnext = 0;
  std::int64_t tlen = 0;
  std::string seq = "*";
  std::string qual = "*";
  std::vector<std::string> tags;

  std::string to_line() const;
};

/// Build the header for a reference.  `pg_line` customizes the @PG entry.
std::string sam_header(const seq::Reference& ref, const std::string& pg_line);

void write_sam(std::ostream& out, const std::string& header,
               const std::vector<SamRecord>& records);

}  // namespace mem2::io
