// FASTQ reading and writing.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "seq/read_sim.h"

namespace mem2::io {

/// Parse all reads.  Throws io_error on structural errors (missing '+',
/// quality/sequence length mismatch, truncated record).
std::vector<seq::Read> read_fastq(std::istream& in);
std::vector<seq::Read> read_fastq_file(const std::string& path);

void write_fastq(std::ostream& out, const std::vector<seq::Read>& reads);
void write_fastq_file(const std::string& path, const std::vector<seq::Read>& reads);

}  // namespace mem2::io
