// FASTQ reading and writing.
//
// FastqStream is the chunked reader the streaming Aligner session feeds
// from: it parses records incrementally, so arbitrarily large inputs never
// need full materialization — pair it with Stream::submit() and resident
// reads stay bounded by the pipeline's queue.  read_fastq() remains the
// load-everything convenience, now a thin loop over FastqStream.
//
// Recovery policy: by default (kStrict) structural errors throw io_error.
// With kSkip the stream instead resynchronizes at the next '@' header
// line, counts the damaged record (records_skipped(), plus the
// SwCounters::io_records_skipped thread-local counter) and keeps going —
// one bad flow-cell record no longer kills a whole session.  Paired
// streams align mates by their original record ordinal, so a skipped
// record drops its whole pair (pairs_dropped()) instead of shifting every
// later mate off by one.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "seq/read_sim.h"

namespace mem2::io {

/// What to do with a structurally damaged FASTQ record.
enum class FastqPolicy {
  kStrict,  // throw io_error (the historical behavior)
  kSkip,    // resynchronize at the next '@' header and count the skip
};

/// Incremental FASTQ parser.  Under FastqPolicy::kStrict (default) throws
/// io_error on structural errors (missing '+', quality/sequence length
/// mismatch, truncated record); under kSkip recovers as documented above.
class FastqStream {
 public:
  /// Stream from an existing istream (not owned; must outlive this).
  explicit FastqStream(std::istream& in, FastqPolicy policy = FastqPolicy::kStrict);
  /// Stream from a file; throws io_error if it cannot be opened.
  explicit FastqStream(const std::string& path,
                       FastqPolicy policy = FastqPolicy::kStrict);
  ~FastqStream();
  FastqStream(FastqStream&&) noexcept;
  FastqStream& operator=(FastqStream&&) noexcept;

  /// Parse the next record into `read` (contents replaced).  Returns false
  /// at end of input.
  bool next_read(seq::Read& read);

  /// Like next_read, additionally reporting the record's ordinal: its
  /// 0-based position in the file counting skipped records, which is what
  /// paired streams align mates by.
  bool next_read_ordinal(seq::Read& read, std::uint64_t* ordinal);

  /// Clear `out` and refill it with up to max_reads records.  Returns the
  /// number parsed; 0 means end of input.
  std::size_t next_chunk(std::vector<seq::Read>& out, std::size_t max_reads);

  /// Total records parsed so far.
  std::uint64_t reads_parsed() const { return reads_parsed_; }

  /// Damaged records skipped so far (always 0 under kStrict).
  std::uint64_t records_skipped() const { return records_skipped_; }

  FastqPolicy policy() const { return policy_; }

 private:
  enum class Parse { kOk, kEof, kBad };
  Parse try_parse(seq::Read& read);
  bool next_header(std::string& header);

  std::unique_ptr<std::istream> owned_;  // set for the path constructor
  std::istream* in_;
  FastqPolicy policy_;
  std::string header_, plus_;  // line buffers reused across records
  std::string pending_header_;  // '@' line found while resynchronizing
  bool have_pending_header_ = false;
  std::string error_;  // last structural-error description (kBad)
  std::uint64_t reads_parsed_ = 0;
  std::uint64_t records_skipped_ = 0;
};

/// Paired FASTQ input: two parallel files (R1 + R2) or one interleaved
/// file.  Emits mates adjacent (R1, R2, R1, R2, ...), the layout the
/// paired Aligner session expects.  Under kStrict, throws io_error with a
/// clear message when the two files have different read counts (or an
/// interleaved file ends mid-pair) instead of silently truncating to the
/// shorter input.  Under kSkip, a damaged record drops its whole pair
/// (mates re-align by record ordinal) and the stream keeps going.
class PairedFastqStream {
 public:
  /// Two parallel files.
  PairedFastqStream(const std::string& path1, const std::string& path2,
                    FastqPolicy policy = FastqPolicy::kStrict);
  /// One interleaved file.
  explicit PairedFastqStream(const std::string& interleaved_path,
                             FastqPolicy policy = FastqPolicy::kStrict);

  /// Parse the next pair.  Returns false at end of input; under kStrict
  /// throws io_error if exactly one of the two streams is exhausted.
  bool next_pair(seq::Read& r1, seq::Read& r2);

  /// Clear `out` and refill with up to max_pairs pairs (2 * max_pairs
  /// reads), mates adjacent.  Returns the number of pairs parsed.
  std::size_t next_chunk(std::vector<seq::Read>& out, std::size_t max_pairs);

  std::uint64_t pairs_parsed() const { return pairs_parsed_; }

  /// Damaged records skipped across both underlying streams (kSkip only).
  std::uint64_t records_skipped() const {
    return s1_.records_skipped() + (s2_ ? s2_->records_skipped() : 0);
  }

  /// Pairs lost because a mate was damaged or unmatched (kSkip only).
  std::uint64_t pairs_dropped() const { return pairs_dropped_; }

 private:
  bool next_pair_two_files(seq::Read& r1, seq::Read& r2);
  bool next_pair_interleaved(seq::Read& r1, seq::Read& r2);

  FastqStream s1_;
  std::unique_ptr<FastqStream> s2_;  // null for interleaved input
  std::string path1_, path2_;
  FastqPolicy policy_;
  std::uint64_t pairs_parsed_ = 0;
  std::uint64_t pairs_dropped_ = 0;
  // kSkip scratch: a read pulled ahead while re-aligning ordinals.
  seq::Read pending_read_;
  std::uint64_t pending_ordinal_ = 0;
  bool have_pending_ = false;
};

/// Parse all reads.  Throws io_error on structural errors (missing '+',
/// quality/sequence length mismatch, truncated record).
std::vector<seq::Read> read_fastq(std::istream& in);
std::vector<seq::Read> read_fastq_file(const std::string& path);

void write_fastq(std::ostream& out, const std::vector<seq::Read>& reads);
void write_fastq_file(const std::string& path, const std::vector<seq::Read>& reads);

}  // namespace mem2::io
