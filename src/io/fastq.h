// FASTQ reading and writing.
//
// FastqStream is the chunked reader the streaming Aligner session feeds
// from: it parses records incrementally, so arbitrarily large inputs never
// need full materialization — pair it with Stream::submit() and resident
// reads stay bounded by the pipeline's queue.  read_fastq() remains the
// load-everything convenience, now a thin loop over FastqStream.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "seq/read_sim.h"

namespace mem2::io {

/// Incremental FASTQ parser.  Throws io_error on structural errors
/// (missing '+', quality/sequence length mismatch, truncated record).
class FastqStream {
 public:
  /// Stream from an existing istream (not owned; must outlive this).
  explicit FastqStream(std::istream& in);
  /// Stream from a file; throws io_error if it cannot be opened.
  explicit FastqStream(const std::string& path);
  ~FastqStream();
  FastqStream(FastqStream&&) noexcept;
  FastqStream& operator=(FastqStream&&) noexcept;

  /// Parse the next record into `read` (contents replaced).  Returns false
  /// at end of input.
  bool next_read(seq::Read& read);

  /// Clear `out` and refill it with up to max_reads records.  Returns the
  /// number parsed; 0 means end of input.
  std::size_t next_chunk(std::vector<seq::Read>& out, std::size_t max_reads);

  /// Total records parsed so far.
  std::uint64_t reads_parsed() const { return reads_parsed_; }

 private:
  std::unique_ptr<std::istream> owned_;  // set for the path constructor
  std::istream* in_;
  std::string header_, plus_;  // line buffers reused across records
  std::uint64_t reads_parsed_ = 0;
};

/// Paired FASTQ input: two parallel files (R1 + R2) or one interleaved
/// file.  Emits mates adjacent (R1, R2, R1, R2, ...), the layout the
/// paired Aligner session expects.  Throws io_error with a clear message
/// when the two files have different read counts (or an interleaved file
/// ends mid-pair) instead of silently truncating to the shorter input.
class PairedFastqStream {
 public:
  /// Two parallel files.
  PairedFastqStream(const std::string& path1, const std::string& path2);
  /// One interleaved file.
  explicit PairedFastqStream(const std::string& interleaved_path);

  /// Parse the next pair.  Returns false at end of input; throws io_error
  /// if exactly one of the two streams is exhausted.
  bool next_pair(seq::Read& r1, seq::Read& r2);

  /// Clear `out` and refill with up to max_pairs pairs (2 * max_pairs
  /// reads), mates adjacent.  Returns the number of pairs parsed.
  std::size_t next_chunk(std::vector<seq::Read>& out, std::size_t max_pairs);

  std::uint64_t pairs_parsed() const { return pairs_parsed_; }

 private:
  FastqStream s1_;
  std::unique_ptr<FastqStream> s2_;  // null for interleaved input
  std::string path1_, path2_;
  std::uint64_t pairs_parsed_ = 0;
};

/// Parse all reads.  Throws io_error on structural errors (missing '+',
/// quality/sequence length mismatch, truncated record).
std::vector<seq::Read> read_fastq(std::istream& in);
std::vector<seq::Read> read_fastq_file(const std::string& path);

void write_fastq(std::ostream& out, const std::vector<seq::Read>& reads);
void write_fastq_file(const std::string& path, const std::vector<seq::Read>& reads);

}  // namespace mem2::io
