#include "io/fasta.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/common.h"

namespace mem2::io {

namespace {

void split_header(const std::string& line, std::string& name, std::string& comment) {
  // line starts with '>' or '@'; name runs to the first whitespace.
  std::size_t i = 1;
  while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  name = line.substr(1, i - 1);
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  comment = line.substr(i);
}

}  // namespace

std::vector<FastaRecord> read_fasta(std::istream& in) {
  std::vector<FastaRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      FastaRecord rec;
      split_header(line, rec.name, rec.comment);
      if (rec.name.empty()) throw io_error("FASTA: empty record name");
      records.push_back(std::move(rec));
    } else {
      if (records.empty()) throw io_error("FASTA: sequence data before first header");
      records.back().sequence += line;
    }
  }
  return records;
}

std::vector<FastaRecord> read_fasta_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw io_error("cannot open FASTA file: " + path);
  return read_fasta(in);
}

void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records, int width) {
  MEM2_REQUIRE(width > 0, "FASTA line width must be positive");
  for (const auto& rec : records) {
    out << '>' << rec.name;
    if (!rec.comment.empty()) out << ' ' << rec.comment;
    out << '\n';
    for (std::size_t i = 0; i < rec.sequence.size(); i += static_cast<std::size_t>(width)) {
      out << std::string_view(rec.sequence).substr(i, static_cast<std::size_t>(width)) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path, const std::vector<FastaRecord>& records, int width) {
  std::ofstream out(path);
  if (!out) throw io_error("cannot open FASTA file for writing: " + path);
  write_fasta(out, records, width);
}

seq::Reference reference_from_records(const std::vector<FastaRecord>& records) {
  if (records.empty()) throw io_error("FASTA: no records");
  seq::Reference ref;
  for (const auto& rec : records) {
    if (rec.sequence.empty()) throw io_error("FASTA: empty sequence for " + rec.name);
    ref.add_contig(rec.name, rec.sequence);
  }
  return ref;
}

seq::Reference load_reference(const std::string& path) {
  return reference_from_records(read_fasta_file(path));
}

void save_reference(const std::string& path, const seq::Reference& ref, int width) {
  std::vector<FastaRecord> records;
  for (const auto& c : ref.contigs()) {
    FastaRecord rec;
    rec.name = c.name;
    auto codes = ref.slice(c.offset, c.offset + c.length);
    rec.sequence = seq::decode(codes);
    records.push_back(std::move(rec));
  }
  write_fasta_file(path, records, width);
}

}  // namespace mem2::io
