// smem1/seed_strategy1 are header templates (smem_search.h); this TU pins
// explicit instantiations for the two index flavours.
#include "smem/smem_search.h"

namespace mem2::smem {

template int smem1<index::FmIndexCp128>(const index::FmIndexCp128&,
                                        std::span<const seq::Code>, int, idx_t,
                                        std::vector<Smem>&, SmemWorkspace&,
                                        const util::PrefetchPolicy&);
template int smem1<index::FmIndexCp32>(const index::FmIndexCp32&,
                                       std::span<const seq::Code>, int, idx_t,
                                       std::vector<Smem>&, SmemWorkspace&,
                                       const util::PrefetchPolicy&);

template int seed_strategy1<index::FmIndexCp128>(const index::FmIndexCp128&,
                                                 std::span<const seq::Code>,
                                                 int, int, idx_t, Smem&);
template int seed_strategy1<index::FmIndexCp32>(const index::FmIndexCp32&,
                                                std::span<const seq::Code>,
                                                int, int, idx_t, Smem&);

}  // namespace mem2::smem
