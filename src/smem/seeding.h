// SMEM seeding stage — BWA-MEM's mem_collect_intv on our index.
//
// Three rounds (all feeding one sorted interval list):
//   1. all SMEMs with length >= min_seed_len;
//   2. re-seeding inside long low-occurrence SMEMs (length >= split_len and
//      interval size <= split_width): rerun smem1 from the SMEM's middle
//      with min_intv = s+1 to split it into shorter, more repetitive seeds;
//   3. LAST-like greedy forward seeds with interval size < max_mem_intv.
// Output is sorted by (qb, qe) — bwa's info ordering.
#pragma once

#include <span>
#include <vector>

#include "smem/smem_search.h"

namespace mem2::smem {

struct SeedingOptions {
  int min_seed_len = 19;      // bwa -k
  double split_factor = 1.5;  // bwa -r
  idx_t split_width = 10;     // bwa -y companion (opt->split_width)
  idx_t max_mem_intv = 20;    // bwa -y (third round); 0 disables
};

/// Collect seeding intervals for one read.  `query` uses codes 0..3 with 4
/// for ambiguous bases.  Appends to `out` (cleared first).
template <class Fm>
void collect_smems(const Fm& fm, std::span<const seq::Code> query,
                   const SeedingOptions& opt, std::vector<Smem>& out,
                   SmemWorkspace& ws, const util::PrefetchPolicy& pf);

extern template void collect_smems<index::FmIndexCp128>(
    const index::FmIndexCp128&, std::span<const seq::Code>,
    const SeedingOptions&, std::vector<Smem>&, SmemWorkspace&,
    const util::PrefetchPolicy&);
extern template void collect_smems<index::FmIndexCp32>(
    const index::FmIndexCp32&, std::span<const seq::Code>,
    const SeedingOptions&, std::vector<Smem>&, SmemWorkspace&,
    const util::PrefetchPolicy&);

/// Reference implementation for property tests: brute-force SMEMs by
/// scanning the text for maximal exact matches (O(len^2 * scan)).  Returns
/// (qb, qe) pairs of all SMEMs with length >= min_len, sorted by qb.
std::vector<std::pair<int, int>> brute_force_smems(
    const std::vector<seq::Code>& text, std::span<const seq::Code> query,
    int min_len);

}  // namespace mem2::smem
