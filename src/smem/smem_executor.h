// Latency-hiding interleaved seeding executor (paper §4.3, Table 4).
//
// smem1()/seed_strategy1() are chains of *dependent* Occ lookups: each
// forward/backward extension needs the previous one's interval before its
// two cache lines can even be addressed, so a single read's walk exposes
// the full DRAM latency of every miss and the scalar kernel's one-step-
// ahead prefetch only hides the few cycles of per-step arithmetic.  The
// paper's batched-prefetch discipline fixes this by keeping *several
// independent* walks in flight: while one read's Occ lines are on their way
// from memory, the CPU does useful work on the other reads.
//
// SmemExecutor implements that discipline without changing the algorithm:
// the three-round seeding of collect_smems() (smem_search.h / seeding_impl.h)
// is refactored into a resumable per-read state machine (Lane) whose unit of
// progress is exactly one Occ-touching extension.  K lanes (DriverOptions::
// smem_inflight, default 8) run in lockstep:
//
//   for each in-flight lane:  perform its pending extension  (consume)
//                             advance pure-CPU control to the next one
//                             prefetch that extension's Occ lines (issue)
//
// so every prefetch has K-1 other extensions' worth of work to complete
// before its lane comes around again.  Reads are independent, the per-read
// state machine replays the scalar control flow verbatim, and lanes refill
// from the query list as reads finish — output is bit-identical to
// collect_smems() for any K and any interleaving (tests/test_smem_executor).
//
// The SAL leg gets the same treatment at lower dependency depth: sampled BW
// rows are materialized first, then resolved against the flat SA with a wave
// of prefetches running ahead of the loads (chain::seeds_from_smems_batched);
// gather_seeds() exposes it here so the pipeline drives both seeding stages
// through one executor.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "chain/chain.h"
#include "smem/seeding.h"

namespace mem2::smem {

/// One unit of executor work: a query plus where its SMEM list goes.
struct QueryRef {
  std::span<const seq::Code> query;
  std::vector<Smem>* out = nullptr;
};

class SmemExecutor {
 public:
  static constexpr int kDefaultInflight = 8;
  static constexpr int kMaxInflight = 64;

  SmemExecutor() = default;
  explicit SmemExecutor(int inflight) { set_inflight(inflight); }

  /// Number of in-flight walks (clamped to [1, kMaxInflight]).
  void set_inflight(int inflight);
  int inflight() const { return inflight_; }

  /// Collect SMEMs for every query, interleaving up to inflight() reads.
  /// Each queries[i].out receives exactly what
  /// collect_smems(fm, queries[i].query, opt, ...) would have produced.
  template <class Fm>
  void collect(const Fm& fm, std::span<const QueryRef> queries,
               const SeedingOptions& opt, const util::PrefetchPolicy& pf);

  /// SAL leg: batched seed gather for one read's SMEMs over the flat SA
  /// (wave-prefetched).  static — SAL's dependency depth is one load, so it
  /// needs no lanes, only the wave discipline of
  /// chain::seeds_from_smems_batched; the method exists so the pipeline
  /// drives both seeding stages through one front door.
  static void gather_seeds(std::span<const Smem> smems,
                           const chain::ChainOptions& opt,
                           const index::FlatSA& sa,
                           std::vector<chain::Seed>& out) {
    chain::seeds_from_smems_batched(smems, opt, sa, out);
  }

 private:
  /// Resumable per-read seeding task.  Pc is a program counter over the
  /// scalar control flow of collect_smems: the kFwdExt/kBwdRow/kSeedExt
  /// states denote pending Occ-touching work (step() performs it); every
  /// other state is pure CPU and is executed to exhaustion by pump().
  /// Granularity follows the dependency structure: forward and greedy-seed
  /// extensions are a serially dependent chain, so they park one extension
  /// at a time; a backward row's extensions are all addressable the moment
  /// the row starts (prev is fixed), so the whole row is prefetched at the
  /// transition and consumed as one step — only the row-to-row dependency
  /// pays a rotation.  Prefetches fire exactly at the state transitions, so
  /// each one has a full rotation of other lanes' work to complete.
  /// Interval state is backend-independent, so Lane itself is not a
  /// template — only the methods that touch the index are.
  struct Lane {
    enum class Pc : std::uint8_t {
      kScan1,       // round-1 scan for the next smem1 start
      kFwdHead,     // decide whether position fi extends forward
      kFwdExt,      // pending forward_ext of ik at fi          (memory)
      kBwdRowHead,  // enter backward row bi (prefetches the row)
      kBwdRow,      // pending backward_exts of all of prev     (memory)
      kDeliver1,    // smem1 done: filter into out, resume round 1
      kScan2,       // round-2 candidate scan
      kDeliver2,    // smem1 done: filter into out, resume round 2
      kScan3,       // round-3 scan for the next seed_strategy1 start
      kSeedHead,    // decide whether position fi extends the greedy seed
      kSeedExt,     // pending forward_ext of sik at fi         (memory)
      kDeliver3,    // seed_strategy1 done: push hit, resume round 3
      kFinish,      // sort the read's output
      kDone
    };

    std::span<const seq::Code> q;
    std::vector<Smem>* out = nullptr;
    int len = 0;
    Pc pc = Pc::kDone;
    bool pf = true;  // issue software prefetches at op transitions

    // collect-level cursors
    int x = 0;            // round-1/3 scan position
    std::size_t k2 = 0;   // round-2 candidate index
    std::size_t old_n = 0;
    int split_len = 0;

    // smem1 state (ws.mem1 is the per-call smem1 output, as in the scalar
    // path; curr/prev are the forward/backward candidate stacks)
    SmemWorkspace ws;
    SmemWorkspace::Entry ik;
    idx_t min_intv = 1;
    int sx = 0;  // smem1 / seed_strategy1 start position
    int fi = 0;  // forward cursor
    int bi = 0;  // backward row
    int bc = -1;         // backward row base (-1: ambiguous / off the end)
    int ret = 0;         // smem1's next-scan-position return value
    Pc deliver = Pc::kDeliver1;  // which round consumes this smem1's output

    // seed_strategy1 state
    index::BiInterval sik;
    Smem hit;

    bool done() const { return pc == Pc::kDone; }

    template <class Fm>
    void start(const Fm& fm, const QueryRef& qr, const SeedingOptions& opt,
               bool prefetch);
    /// Perform the pending Occ-touching work, then advance to the next (or
    /// done), issuing its prefetches on the way out.
    template <class Fm>
    void step(const Fm& fm, const SeedingOptions& opt);

   private:
    template <class Fm>
    void pump(const Fm& fm, const SeedingOptions& opt);
    template <class Fm>
    void begin_smem1(const Fm& fm, int x0, idx_t mi, Pc deliver_to);
    void finish_forward();
    Pc deliver_pc();
    void emit_if_new(const SmemWorkspace::Entry& p);
  };

  int inflight_ = kDefaultInflight;
  std::vector<Lane> lanes_;
};

// ---------------------------------------------------------------- Lane impl

inline void SmemExecutor::Lane::emit_if_new(const SmemWorkspace::Entry& p) {
  // The "curr empty" test passed; an SMEM is born unless a previously
  // emitted one already covers position bi+1 (Algorithm 4's containment
  // test: out is filled right-to-left during the backward phase).
  if (ws.mem1.empty() || bi + 1 < ws.mem1.back().qb) {
    ws.mem1.push_back(
        Smem{p.bi, static_cast<std::int32_t>(bi + 1), p.qe});
    ++util::tls_counters().smems_found;
  }
}

inline void SmemExecutor::Lane::finish_forward() {
  std::reverse(ws.curr.begin(), ws.curr.end());  // longest matches first
  ret = ws.curr.front().qe;
  std::swap(ws.curr, ws.prev);
  bi = sx - 1;
  pc = Pc::kBwdRowHead;
}

inline SmemExecutor::Lane::Pc SmemExecutor::Lane::deliver_pc() {
  std::reverse(ws.mem1.begin(), ws.mem1.end());  // sort by start coordinate
  return deliver;
}

template <class Fm>
void SmemExecutor::Lane::begin_smem1(const Fm& fm, int x0, idx_t mi,
                                     Pc deliver_to) {
  sx = x0;
  min_intv = mi < 1 ? 1 : mi;
  deliver = deliver_to;
  ws.mem1.clear();
  ws.curr.clear();
  if (q[static_cast<std::size_t>(sx)] > 3) {  // ambiguous start: no smems
    ret = sx + 1;
    pc = deliver;
    return;
  }
  ik = SmemWorkspace::Entry{fm.set_intv(q[static_cast<std::size_t>(sx)]),
                            static_cast<std::int32_t>(sx + 1)};
  fi = sx + 1;
  pc = Pc::kFwdHead;
}

template <class Fm>
void SmemExecutor::Lane::start(const Fm& fm, const QueryRef& qr,
                               const SeedingOptions& opt, bool prefetch) {
  q = qr.query;
  out = qr.out;
  len = static_cast<int>(q.size());
  pf = prefetch;
  out->clear();
  split_len = static_cast<int>(
      static_cast<double>(opt.min_seed_len) * opt.split_factor + .499);
  x = 0;
  pc = Pc::kScan1;
  pump(fm, opt);
}

template <class Fm>
void SmemExecutor::Lane::pump(const Fm& fm, const SeedingOptions& opt) {
  for (;;) {
    switch (pc) {
      // --- round 1: all SMEMs of sufficient length ---
      case Pc::kScan1:
        if (x >= len) {
          old_n = out->size();
          k2 = 0;
          pc = Pc::kScan2;
          break;
        }
        if (q[static_cast<std::size_t>(x)] >= 4) {
          ++x;
          break;
        }
        begin_smem1(fm, x, /*min_intv=*/1, Pc::kDeliver1);
        break;

      case Pc::kFwdHead:
        if (fi >= len || q[static_cast<std::size_t>(fi)] >= 4) {
          ws.curr.push_back(ik);  // end of query / ambiguous base terminates
          finish_forward();
          break;
        }
        pc = Pc::kFwdExt;
        if (pf) fm.prefetch_forward(ik.bi);  // the l-side rows kFwdExt reads
        return;

      case Pc::kBwdRowHead: {
        bc = bi < 0 ? -1
                    : (q[static_cast<std::size_t>(bi)] < 4
                           ? q[static_cast<std::size_t>(bi)]
                           : -1);
        if (bc < 0) {
          // No extension possible: every candidate takes the emit branch
          // with curr staying empty, then the backward loop exits.
          ws.curr.clear();
          for (const auto& p : ws.prev)
            if (ws.curr.empty()) emit_if_new(p);
          pc = deliver_pc();
          break;
        }
        // Every entry of the row is known now; request all their Occ lines
        // and consume the row in one step after a rotation.
        pc = Pc::kBwdRow;
        if (pf)
          for (const auto& p : ws.prev) fm.prefetch_interval(p.bi);
        return;
      }

      case Pc::kDeliver1:
        for (const Smem& m : ws.mem1)
          if (m.len() >= opt.min_seed_len) out->push_back(m);
        x = ret;
        pc = Pc::kScan1;
        break;

      // --- round 2: re-seed long unique-ish SMEMs from their middle ---
      case Pc::kScan2: {
        if (k2 >= old_n) {
          x = 0;
          pc = opt.max_mem_intv > 0 ? Pc::kScan3 : Pc::kFinish;
          break;
        }
        const Smem p = (*out)[k2];  // copy: out grows on delivery
        if (p.len() < split_len || p.bi.s > opt.split_width) {
          ++k2;
          break;
        }
        begin_smem1(fm, (p.qb + p.qe) >> 1, p.bi.s + 1, Pc::kDeliver2);
        break;
      }

      case Pc::kDeliver2:
        for (const Smem& m : ws.mem1)
          if (m.len() >= opt.min_seed_len) out->push_back(m);
        ++k2;
        pc = Pc::kScan2;
        break;

      // --- round 3: LAST-like greedy seeds ---
      case Pc::kScan3:
        if (x >= len) {
          pc = Pc::kFinish;
          break;
        }
        if (q[static_cast<std::size_t>(x)] >= 4) {
          ++x;
          break;
        }
        hit = Smem{};
        sx = x;
        sik = fm.set_intv(q[static_cast<std::size_t>(sx)]);
        fi = sx + 1;
        pc = Pc::kSeedHead;
        break;

      case Pc::kSeedHead:
        if (fi >= len) {
          ret = len;
          pc = Pc::kDeliver3;
          break;
        }
        if (q[static_cast<std::size_t>(fi)] >= 4) {
          ret = fi + 1;
          pc = Pc::kDeliver3;
          break;
        }
        pc = Pc::kSeedExt;
        if (pf) fm.prefetch_forward(sik);
        return;

      case Pc::kDeliver3:
        if (hit.bi.s > 0) out->push_back(hit);
        x = ret;
        pc = Pc::kScan3;
        break;

      case Pc::kFinish:
        std::sort(out->begin(), out->end(), smem_less);
        pc = Pc::kDone;
        return;

      case Pc::kFwdExt:
      case Pc::kBwdRow:
      case Pc::kSeedExt:
      case Pc::kDone:
        return;
    }
  }
}

template <class Fm>
void SmemExecutor::Lane::step(const Fm& fm, const SeedingOptions& opt) {
  // The hot continuations (forward -> forward, row -> row) are inlined here
  // so the common step costs a single dispatch; only phase changes fall
  // through to pump().
  switch (pc) {
    case Pc::kFwdExt: {
      const seq::Code base = q[static_cast<std::size_t>(fi)];
      index::BiInterval ok[4];
      fm.forward_ext(ik.bi, ok);
      if (ok[base].s != ik.bi.s) {
        ws.curr.push_back(ik);
        if (ok[base].s < min_intv) {  // too small to extend further
          finish_forward();
          break;
        }
      }
      ik.bi = ok[base];
      ik.qe = static_cast<std::int32_t>(fi + 1);
      ++fi;
      if (fi < len && q[static_cast<std::size_t>(fi)] < 4) {
        if (pf) fm.prefetch_forward(ik.bi);  // stay parked on kFwdExt
        return;
      }
      ws.curr.push_back(ik);  // end of query / ambiguous base terminates
      finish_forward();
      break;
    }
    case Pc::kBwdRow: {
      // The whole row: its entries' loads are independent (and were
      // prefetched as their parent intervals were produced), so
      // back-to-back consumption lets the core overlap them; only the
      // row-to-row dependency costs a rotation.
      ws.curr.clear();
      for (const SmemWorkspace::Entry& p : ws.prev) {
        index::BiInterval ok[4];
        fm.backward_ext(p.bi, ok);
        if (ok[bc].s < min_intv) {
          // p cannot extend left: candidate SMEM if no longer match remains.
          if (ws.curr.empty()) emit_if_new(p);
        } else if (ws.curr.empty() || ok[bc].s != ws.curr.back().bi.s) {
          // Survives into the next row; request its Occ lines now, exactly
          // where the scalar kernel prefetches (Algorithm 4's placement) —
          // they get the rest of this row plus a rotation to arrive.
          if (pf) fm.prefetch_interval(ok[bc]);
          ws.curr.push_back(SmemWorkspace::Entry{ok[bc], p.qe});
        }
      }
      if (ws.curr.empty()) {
        pc = deliver_pc();
        break;
      }
      std::swap(ws.curr, ws.prev);
      --bi;
      bc = bi < 0 ? -1
                  : (q[static_cast<std::size_t>(bi)] < 4
                         ? q[static_cast<std::size_t>(bi)]
                         : -1);
      if (bc >= 0) return;  // stay parked on kBwdRow (already prefetched)
      // Pure-CPU row: no extension possible, the backward loop exits.
      ws.curr.clear();
      for (const auto& p : ws.prev)
        if (ws.curr.empty()) emit_if_new(p);
      pc = deliver_pc();
      break;
    }
    case Pc::kSeedExt: {
      const seq::Code base = q[static_cast<std::size_t>(fi)];
      index::BiInterval ok[4];
      fm.forward_ext(sik, ok);
      if (ok[base].s < opt.max_mem_intv && fi - sx >= opt.min_seed_len) {
        hit.bi = ok[base];
        hit.qb = static_cast<std::int32_t>(sx);
        hit.qe = static_cast<std::int32_t>(fi + 1);
        ++util::tls_counters().smems_found;
        ret = fi + 1;
        pc = Pc::kDeliver3;
        break;
      }
      sik = ok[base];
      ++fi;
      if (fi < len && q[static_cast<std::size_t>(fi)] < 4) {
        if (pf) fm.prefetch_forward(sik);  // stay parked on kSeedExt
        return;
      }
      ret = fi >= len ? len : fi + 1;
      pc = Pc::kDeliver3;
      break;
    }
    default:
      return;  // nothing pending
  }
  pump(fm, opt);
}

// ------------------------------------------------------------ executor impl

template <class Fm>
void SmemExecutor::collect(const Fm& fm, std::span<const QueryRef> queries,
                          const SeedingOptions& opt,
                          const util::PrefetchPolicy& pf) {
  if (queries.empty()) return;
  const int k = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(inflight_), queries.size()));
  if (lanes_.size() < static_cast<std::size_t>(k))
    lanes_.resize(static_cast<std::size_t>(k));

  std::size_t next = 0;
  // Pull reads into a lane until one parks on a pending extension; reads
  // whose whole walk is pure CPU (empty/ambiguous/one-base) drain inline.
  auto feed = [&](Lane& lane) {
    while (next < queries.size()) {
      lane.start(fm, queries[next++], opt, pf.enabled);
      if (!lane.done()) return true;
    }
    return false;
  };

  int act[kMaxInflight];
  int n_act = 0;
  for (int l = 0; l < k; ++l)
    if (feed(lanes_[static_cast<std::size_t>(l)])) act[n_act++] = l;

  // The lockstep rotation: by the time a lane is stepped again, the
  // prefetches it issued at its last transition have had n_act-1 other
  // lanes' work to complete.
  while (n_act > 0) {
    for (int s = 0; s < n_act;) {
      Lane& lane = lanes_[static_cast<std::size_t>(act[s])];
      lane.step(fm, opt);
      if (!lane.done() || feed(lane)) {
        ++s;
      } else {
        act[s] = act[--n_act];  // retire the lane
      }
    }
  }
}

}  // namespace mem2::smem
