// Template implementation of collect_smems (three-round seeding).
// Included by seeding.cpp for the standard index flavours and by benches
// that instantiate experimental Occ layouts (e.g. the eta ablation).
#pragma once

#include <algorithm>
#include <cmath>

#include "smem/seeding.h"

namespace mem2::smem {

template <class Fm>
void collect_smems(const Fm& fm, std::span<const seq::Code> query,
                   const SeedingOptions& opt, std::vector<Smem>& out,
                   SmemWorkspace& ws, const util::PrefetchPolicy& pf) {
  const int len = static_cast<int>(query.size());
  const int split_len = static_cast<int>(
      static_cast<double>(opt.min_seed_len) * opt.split_factor + .499);
  out.clear();

  // Round 1: all SMEMs of sufficient length.
  int x = 0;
  while (x < len) {
    if (query[static_cast<std::size_t>(x)] < 4) {
      x = smem1(fm, query, x, /*min_intv=*/1, ws.mem1, ws, pf);
      for (const Smem& m : ws.mem1)
        if (m.len() >= opt.min_seed_len) out.push_back(m);
    } else {
      ++x;
    }
  }

  // Round 2: re-seed long unique-ish SMEMs from their middle.
  const std::size_t old_n = out.size();
  for (std::size_t k = 0; k < old_n; ++k) {
    const Smem p = out[k];  // copy: out grows below
    if (p.len() < split_len || p.bi.s > opt.split_width) continue;
    smem1(fm, query, (p.qb + p.qe) >> 1, p.bi.s + 1, ws.mem1, ws, pf);
    for (const Smem& m : ws.mem1)
      if (m.len() >= opt.min_seed_len) out.push_back(m);
  }

  // Round 3: LAST-like greedy seeds.
  if (opt.max_mem_intv > 0) {
    x = 0;
    while (x < len) {
      if (query[static_cast<std::size_t>(x)] < 4) {
        Smem m;
        x = seed_strategy1(fm, query, x, opt.min_seed_len, opt.max_mem_intv, m);
        if (m.bi.s > 0) out.push_back(m);
      } else {
        ++x;
      }
    }
  }

  // bwa sorts by the packed (qb<<32|qe) key (smem_less adds a deterministic
  // interval-start tiebreak; the interleaved executor sorts the same way).
  std::sort(out.begin(), out.end(), smem_less);
}

}  // namespace mem2::smem
