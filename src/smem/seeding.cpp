#include "smem/seeding_impl.h"

namespace mem2::smem {

template void collect_smems<index::FmIndexCp128>(
    const index::FmIndexCp128&, std::span<const seq::Code>,
    const SeedingOptions&, std::vector<Smem>&, SmemWorkspace&,
    const util::PrefetchPolicy&);
template void collect_smems<index::FmIndexCp32>(
    const index::FmIndexCp32&, std::span<const seq::Code>,
    const SeedingOptions&, std::vector<Smem>&, SmemWorkspace&,
    const util::PrefetchPolicy&);

std::vector<std::pair<int, int>> brute_force_smems(
    const std::vector<seq::Code>& text, std::span<const seq::Code> query,
    int min_len) {
  const int len = static_cast<int>(query.size());

  // Occurrence check for query[b, e) in text or its reverse complement.
  auto occurs = [&](int b, int e) {
    const int m = e - b;
    if (m <= 0) return false;
    for (int d = 0; d < m; ++d)
      if (query[static_cast<std::size_t>(b + d)] > 3) return false;
    const int n = static_cast<int>(text.size());
    for (int s = 0; s + m <= n; ++s) {
      bool fwd = true, rev = true;
      for (int d = 0; d < m && (fwd || rev); ++d) {
        if (text[static_cast<std::size_t>(s + d)] != query[static_cast<std::size_t>(b + d)]) fwd = false;
        if (seq::complement(text[static_cast<std::size_t>(s + m - 1 - d)]) !=
            query[static_cast<std::size_t>(b + d)])
          rev = false;
      }
      if (fwd || rev) return true;
    }
    return false;
  };

  // MEMs: for each end position, the longest match ending there that cannot
  // be extended either way; SMEM = MEM not contained in another MEM.
  std::vector<std::pair<int, int>> mems;
  for (int e = 1; e <= len; ++e) {
    // longest b for which query[b,e) occurs
    int lo = 0, hi = e;  // search smallest b with occurs(b, e)
    if (!occurs(e - 1, e)) continue;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (occurs(mid, e)) hi = mid; else lo = mid + 1;
    }
    const int b = lo;
    // maximal to the right: query[b, e+1) must not occur
    if (e < len && occurs(b, e + 1)) continue;
    mems.emplace_back(b, e);
  }
  // Drop contained MEMs, keep length filter.
  std::vector<std::pair<int, int>> smems;
  for (const auto& m : mems) {
    bool contained = false;
    for (const auto& o : mems)
      if (o != m && o.first <= m.first && m.second <= o.second) {
        contained = true;
        break;
      }
    if (!contained && m.second - m.first >= min_len) smems.push_back(m);
  }
  std::sort(smems.begin(), smems.end());
  smems.erase(std::unique(smems.begin(), smems.end()), smems.end());
  return smems;
}

}  // namespace mem2::smem
