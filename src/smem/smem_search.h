// SMEM search (paper §4.2, Algorithms 2-4) — a faithful port of BWA-MEM's
// bwt_smem1/bwt_seed_strategy1 onto our bidirectional FM-index, templated
// over the occurrence backend and threaded with the software-prefetch
// policy of §4.3.
//
// smem1() returns all SMEMs passing through query position x:
//   forward phase: extend right from x, recording a candidate each time the
//   SA-interval size shrinks (longest candidates last, so the list is
//   reversed before the backward phase);
//   backward phase: extend every candidate left one base at a time; a
//   candidate that can no longer extend becomes an SMEM iff no longer match
//   survives (the "curr empty" test) and it is not contained in a previously
//   emitted SMEM (the "i+1 < last qb" test).
//
// Prefetches fire exactly where Algorithm 4 places them: when a new
// interval is produced that will be extended in a *future* iteration, its
// two Occ cache lines are requested ahead of time.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "index/fm_index.h"
#include "util/prefetch.h"
#include "util/sw_counters.h"

namespace mem2::smem {

/// A super-maximal exact match: query interval [qb, qe) plus bi-interval.
struct Smem {
  index::BiInterval bi;
  std::int32_t qb = 0;
  std::int32_t qe = 0;

  std::int32_t len() const { return qe - qb; }
  bool operator==(const Smem&) const = default;
};

/// bwa's packed (qb<<32|qe) ordering with an interval-start tiebreak for
/// full determinism — the one definition both the scalar collect_smems and
/// the interleaved SmemExecutor sort with.
inline bool smem_less(const Smem& a, const Smem& b) {
  if (a.qb != b.qb) return a.qb < b.qb;
  if (a.qe != b.qe) return a.qe < b.qe;
  return a.bi.k < b.bi.k;
}

/// Scratch buffers reused across calls (the paper's large-contiguous-
/// allocation discipline: one workspace per thread, zero churn).
struct SmemWorkspace {
  struct Entry {
    index::BiInterval bi;
    std::int32_t qe = 0;  // forward-phase end (bwa's info field)
  };
  std::vector<Entry> curr, prev;
  std::vector<Smem> mem1;  // per-call output of smem1 during seeding
};

/// All SMEMs overlapping position x with interval size >= min_intv.
/// Returns the next start position (one past the longest match's end).
/// Results are appended to `out` ordered by increasing qb.
template <class Fm>
int smem1(const Fm& fm, std::span<const seq::Code> q, int x, idx_t min_intv,
          std::vector<Smem>& out, SmemWorkspace& ws,
          const util::PrefetchPolicy& pf) {
  const int len = static_cast<int>(q.size());
  out.clear();
  if (q[static_cast<std::size_t>(x)] > 3) return x + 1;
  if (min_intv < 1) min_intv = 1;

  auto& curr = ws.curr;
  auto& prev = ws.prev;
  curr.clear();

  SmemWorkspace::Entry ik{fm.set_intv(q[static_cast<std::size_t>(x)]),
                          static_cast<std::int32_t>(x + 1)};

  // --- forward extension (Algorithm 4 lines 3-13) ---
  int i;
  for (i = x + 1; i < len; ++i) {
    const seq::Code base = q[static_cast<std::size_t>(i)];
    if (base < 4) {
      index::BiInterval ok[4];
      fm.forward_ext(ik.bi, ok);
      if (ok[base].s != ik.bi.s) {
        curr.push_back(ik);
        if (ok[base].s < min_intv) break;  // too small to extend further
      }
      ik.bi = ok[base];
      ik.qe = static_cast<std::int32_t>(i + 1);
      // The next forward extension reads Occ at rows l-1 and l+s-1.
      if (pf.enabled) {
        fm.prefetch_forward(ik.bi);
      }
    } else {
      curr.push_back(ik);
      break;  // ambiguous base terminates extension
    }
  }
  if (i == len) curr.push_back(ik);  // reached the end of the query
  std::reverse(curr.begin(), curr.end());  // longest matches first
  const int ret = curr.front().qe;
  std::swap(curr, prev);

  // --- backward extension (Algorithm 4 lines 15-34) ---
  for (i = x - 1; i >= -1; --i) {
    const int c =
        i < 0 ? -1
              : (q[static_cast<std::size_t>(i)] < 4 ? q[static_cast<std::size_t>(i)] : -1);
    curr.clear();
    for (const auto& p : prev) {
      index::BiInterval ok[4];
      if (c >= 0) fm.backward_ext(p.bi, ok);
      if (c < 0 || ok[c].s < min_intv) {
        // p cannot extend left: candidate SMEM if no longer match remains.
        if (curr.empty()) {
          if (out.empty() || i + 1 < out.back().qb) {
            out.push_back(Smem{p.bi, static_cast<std::int32_t>(i + 1), p.qe});
            ++util::tls_counters().smems_found;
          }
        }
      } else if (curr.empty() || ok[c].s != curr.back().bi.s) {
        // Extended interval survives into the next backward round; prefetch
        // the Occ lines that round will read (rows k'-1 and k'+s-1).
        if (pf.enabled) fm.prefetch_interval(ok[c]);
        curr.push_back(SmemWorkspace::Entry{ok[c], p.qe});
      }
    }
    if (curr.empty()) break;
    std::swap(curr, prev);
  }
  std::reverse(out.begin(), out.end());  // sort by start coordinate
  return ret;
}

/// Third-round ("LAST-like") seeding: greedy forward scan for the first
/// match of length >= min_len whose interval drops below max_intv.  Port of
/// bwt_seed_strategy1.  Returns the next scan position; `hit` is untouched
/// unless a seed was found (check hit.bi.s > 0).
template <class Fm>
int seed_strategy1(const Fm& fm, std::span<const seq::Code> q, int x,
                   int min_len, idx_t max_intv, Smem& hit) {
  const int len = static_cast<int>(q.size());
  hit = Smem{};
  if (q[static_cast<std::size_t>(x)] > 3) return x + 1;

  index::BiInterval ik = fm.set_intv(q[static_cast<std::size_t>(x)]);
  for (int i = x + 1; i < len; ++i) {
    const seq::Code base = q[static_cast<std::size_t>(i)];
    if (base >= 4) return i + 1;
    index::BiInterval ok[4];
    fm.forward_ext(ik, ok);
    if (ok[base].s < max_intv && i - x >= min_len) {
      hit.bi = ok[base];
      hit.qb = static_cast<std::int32_t>(x);
      hit.qe = static_cast<std::int32_t>(i + 1);
      ++util::tls_counters().smems_found;
      return i + 1;
    }
    ik = ok[base];
  }
  return len;
}

}  // namespace mem2::smem
