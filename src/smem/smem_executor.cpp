// collect() is a header template (smem_executor.h); this TU pins explicit
// instantiations for the two index flavours and holds the non-template bits.
#include "smem/smem_executor.h"

namespace mem2::smem {

void SmemExecutor::set_inflight(int inflight) {
  inflight_ = std::clamp(inflight, 1, kMaxInflight);
}

template void SmemExecutor::collect<index::FmIndexCp128>(
    const index::FmIndexCp128&, std::span<const QueryRef>,
    const SeedingOptions&, const util::PrefetchPolicy&);
template void SmemExecutor::collect<index::FmIndexCp32>(
    const index::FmIndexCp32&, std::span<const QueryRef>,
    const SeedingOptions&, const util::PrefetchPolicy&);

}  // namespace mem2::smem
