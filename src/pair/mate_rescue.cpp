#include "pair/mate_rescue.h"

#include <algorithm>

#include "seq/pack.h"

namespace mem2::pair {

using align::AlnReg;

bool rescue_window(const seq::Reference& ref, idx_t l_pac, const AlnReg& a,
                   const DirStats& pes, int dir, int l_ms, int min_len,
                   RescueWindow* out) {
  // bwa mem_matesw window formulas: where the mate's (possibly
  // reverse-complemented) sequence should match, in doubled coordinates.
  const bool is_rev = (dir >> 1) != (dir & 1);
  const bool is_larger = !(dir >> 1);  // mate at the larger coordinate
  idx_t rb, re;
  if (!is_rev) {
    rb = is_larger ? a.rb + pes.low : a.rb - pes.high;
    re = (is_larger ? a.rb + pes.high : a.rb - pes.low) + l_ms;
  } else {
    rb = (is_larger ? a.rb + pes.low : a.rb - pes.high) - l_ms;
    re = is_larger ? a.rb + pes.high : a.rb - pes.low;
  }
  rb = std::max<idx_t>(rb, 0);
  re = std::min<idx_t>(re, 2 * l_pac);
  if (rb >= re) return false;
  // Keep the window on one strand (bns_fetch_seq recenters; we keep the
  // side holding the window's midpoint).
  if (rb < l_pac && re > l_pac) {
    if ((rb + re) / 2 < l_pac)
      re = l_pac;
    else
      rb = l_pac;
  }
  // Clamp to the anchor's contig, expressed on the window's strand.
  const auto& contig = ref.contigs()[static_cast<std::size_t>(a.rid)];
  if (rb >= l_pac) {
    rb = std::max(rb, 2 * l_pac - (contig.offset + contig.length));
    re = std::min(re, 2 * l_pac - contig.offset);
  } else {
    rb = std::max(rb, contig.offset);
    re = std::min(re, contig.offset + contig.length);
  }
  if (re - rb < std::max<idx_t>(min_len, 1)) return false;
  out->rb = rb;
  out->re = re;
  out->is_rev = is_rev;
  return true;
}

namespace {

/// Per-anchor endpoint math — the same left/right combination rules as
/// process_chains (bwa mem_chain2aln), in (seq, window) local coordinates.
struct LocalAln {
  int qb = 0, qe = 0;
  int tb = 0, te = 0;
  int score = 0, truesc = 0;
};

bool anchor_to_local(const align::MemOptions& opt, const RescueAnchor& an,
                     int l_ms, int l_win, LocalAln* out) {
  const int a = opt.ksw.a;
  LocalAln r;
  if (an.qbeg > 0) {
    if (!an.have_left) return false;
    const auto& lr = an.left;
    r.score = lr.score;
    if (lr.gscore <= 0 || lr.gscore <= lr.score - opt.ksw.end_bonus) {
      r.qb = an.qbeg - lr.qle;
      r.tb = an.tbeg - lr.tle;
      r.truesc = lr.score;
    } else {
      r.qb = 0;
      r.tb = an.tbeg - lr.gtle;
      r.truesc = lr.gscore;
    }
  } else {
    r.score = r.truesc = an.len * a;
    r.qb = 0;
    r.tb = an.tbeg;
  }
  if (an.qbeg + an.len != l_ms) {
    if (!an.have_right) return false;
    const int sc0 = r.score;
    const auto& rr = an.right;
    r.score = rr.score;
    if (rr.gscore <= 0 || rr.gscore <= rr.score - opt.ksw.end_bonus) {
      r.qe = an.qbeg + an.len + rr.qle;
      r.te = an.tbeg + an.len + rr.tle;
      r.truesc += rr.score - sc0;
    } else {
      r.qe = l_ms;
      r.te = an.tbeg + an.len + rr.gtle;
      r.truesc += rr.gscore - sc0;
    }
  } else {
    r.qe = l_ms;
    r.te = an.tbeg + an.len;
  }
  (void)l_win;
  *out = r;
  return true;
}

}  // namespace

bool finalize_rescue(const align::MemOptions& opt, idx_t l_pac,
                     const RescueAttempt& attempt, int l_ms, float frac_rep,
                     AlnReg* out) {
  const int l_win = static_cast<int>(attempt.win.size());
  bool found = false;
  LocalAln best;
  int best_tbeg = 0;
  for (int i = 0; i < attempt.n_anchors; ++i) {
    LocalAln cand;
    if (!anchor_to_local(opt, attempt.anchors[i], l_ms, l_win, &cand)) continue;
    if (!found || cand.score > best.score ||
        (cand.score == best.score && attempt.anchors[i].tbeg < best_tbeg)) {
      best = cand;
      best_tbeg = attempt.anchors[i].tbeg;
      found = true;
    }
  }
  if (!found || best.score < opt.seeding.min_seed_len * opt.ksw.a) return false;

  // Map back into the mate's own strand representation (bwa mem_matesw):
  // when the window aligned the reverse complement, flip both axes.
  AlnReg b;
  b.rid = attempt.rid;
  if (!attempt.is_rev) {
    b.qb = best.qb;
    b.qe = best.qe;
    b.rb = attempt.win_rb + best.tb;
    b.re = attempt.win_rb + best.te;
  } else {
    b.qb = l_ms - best.qe;
    b.qe = l_ms - best.qb;
    b.rb = 2 * l_pac - (attempt.win_rb + best.te);
    b.re = 2 * l_pac - (attempt.win_rb + best.tb);
  }
  b.score = best.score;
  b.truesc = best.truesc;
  b.sub = b.csub = 0;
  b.w = opt.w;
  b.seedcov = static_cast<int>(
      std::min<idx_t>(b.re - b.rb, static_cast<idx_t>(b.qe - b.qb)) >> 1);
  b.seedlen0 = attempt.n_anchors ? attempt.anchors[0].len : 0;
  b.secondary = -1;
  b.frac_rep = frac_rep;
  b.rescued = true;
  *out = b;
  return true;
}

}  // namespace mem2::pair
