// Rescue-window anchor scanning kernels.
//
// Mate rescue (mate_rescue.h) needs every short exact match ("anchor")
// between the oriented mate sequence and a reference window implied by the
// insert prior.  The reference formulation is a nested scan — for each
// window offset, memcmp every k-mer probe of the mate — which is
// O(window × probes) memcmps and dominated the PAIR stage (~42% of paired
// single-thread time on the bench genome).
//
// RescueScanner turns that into O(window + hits): the mate's probes are
// hashed ONCE into a small open-chained table (built per mate orientation,
// reused across every window of that mate), one polynomial rolling hash
// slides across the window, and only hash hits pay a memcmp verification.
// The emitted anchor set is IDENTICAL to the reference scan — same probes,
// same first-anchor-per-diagonal rule, same window-order tie-breaks, same
// max_anchors saturation point — which tests/test_rescue_scan.cpp enforces
// on randomized inputs.  scan_rescue_anchors() below is that reference
// implementation, kept as the property-test oracle.
//
// Both kernels also report each anchor's maximal exact match run
// (exact_run): the contiguous equal-base stretch through the anchor k-mer.
// A run of min_seed_len or more guarantees the anchor's banded-SW score
// clears finalize_rescue's acceptance threshold (the exact-match path alone
// scores run × a), which is what the driver's determinism-preserving rescue
// skipping keys on.
#pragma once

#include <cstdint>
#include <span>

#include "bsw/ksw.h"
#include "seq/dna.h"

namespace mem2::pair {

/// Hard bound on anchors reported per window (sizes the fixed arrays in
/// RescueAttempt); PairOptions::max_rescue_anchors is validated against it.
inline constexpr int kMaxRescueAnchors = 8;

/// Hard bound on k-mer probes taken from the mate sequence.  Probes sit at
/// non-overlapping query offsets 0, k, 2k, ..., so 101 bp reads with the
/// default k = 11 use 9; the cap only binds for long reads with tiny k and
/// is bounds-tested in tests/test_rescue_scan.cpp.
inline constexpr int kMaxRescueProbes = 64;

/// Upper bound of PairOptions::rescue_hash_bits (table slots = 1 << bits).
inline constexpr int kMaxRescueHashBits = 10;

/// One exact-match anchor of the oriented mate inside a window, plus the
/// two extension results filled in by the pooled BSW rounds.
struct RescueAnchor {
  int qbeg = 0, tbeg = 0, len = 0;
  /// Maximal exact match run through the anchor: len plus the equal,
  /// unambiguous bases immediately left and right of the k-mer.
  int exact_run = 0;
  bsw::KswResult left, right;
  bool have_left = false, have_right = false;
};

/// Content fingerprint of a fetched rescue window, used by the driver to
/// dedup byte-identical repeat windows before BSW job pooling.  Candidates
/// matching on (fingerprint, length, orientation) are verified by a full
/// compare before deduping, so collisions cost a memcmp, never correctness.
inline std::uint64_t window_fingerprint(std::span<const seq::Code> win) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^
                    (win.size() * 0x9e3779b97f4a7c15ULL);
  for (const seq::Code c : win) h = (h ^ c) * 0x00000100000001b3ULL;
  return h;
}

/// Reference scan (the property-test oracle): for each window offset in
/// ascending order, try every probe in ascending query-offset order, keep
/// the first anchor per diagonal, stop at max_anchors.  O(window × probes).
int scan_rescue_anchors(std::span<const seq::Code> seq,
                        std::span<const seq::Code> win, int k, int max_anchors,
                        RescueAnchor* out);

/// The rolling-hash anchor scanner.  build() once per (mate, orientation),
/// then scan() every window of that mate; both are allocation-free (all
/// state lives in fixed member arrays).  scan() emits exactly the anchor
/// set of scan_rescue_anchors() on the same inputs.
class RescueScanner {
 public:
  /// Index the k-mer probes of `seq` (query offsets 0, k, 2k, ..., probes
  /// containing an ambiguous base skipped, capped at kMaxRescueProbes) into
  /// a 1 << hash_bits slot table.  `seq` is borrowed and must outlive
  /// scan() calls.  hash_bits is clamped to [1, kMaxRescueHashBits]; table
  /// size only affects collision chains, never the result.
  void build(std::span<const seq::Code> seq, int k, int hash_bits);

  /// Scan one window: one rolling hash per offset, chain walk + memcmp on
  /// hash hits, first anchor per diagonal, up to max_anchors (clamped to
  /// kMaxRescueAnchors).  Returns the number of anchors written to `out`.
  int scan(std::span<const seq::Code> win, int max_anchors,
           RescueAnchor* out) const;

  int probe_count() const { return n_probes_; }

 private:
  std::span<const seq::Code> seq_;
  int k_ = 0;
  int n_probes_ = 0;
  int bits_ = 1;
  std::uint64_t bk1_ = 1;  // base^(k-1), the rolling removal multiplier
  // 32-bit offsets: rescue_seed_len has no validated upper bound, so probe
  // offsets (up to kMaxRescueProbes * k) must not narrow-wrap.
  std::int32_t probe_q0_[kMaxRescueProbes];
  std::uint64_t probe_hash_[kMaxRescueProbes];
  std::int16_t probe_next_[kMaxRescueProbes];   // hash-slot chains, ascending
  std::int16_t slot_head_[1 << kMaxRescueHashBits];
};

}  // namespace mem2::pair
