#include "pair/insert_stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

namespace mem2::pair {

std::string InsertStats::summary() const {
  static const char* names[4] = {"FF", "FR", "RF", "RR"};
  std::ostringstream os;
  os << "pairs_sampled=" << pairs_sampled;
  for (int d = 0; d < 4; ++d) {
    os << ' ' << names[d] << ":count=" << dir[d].count;
    if (dir[d].failed) {
      os << ",failed";
    } else {
      os << ",mean=" << dir[d].mean << ",std=" << dir[d].std
         << ",low=" << dir[d].low << ",high=" << dir[d].high;
    }
  }
  return os.str();
}

InsertStats estimate_insert_stats(std::span<const InsertSample> samples,
                                  const PairOptions& opt) {
  InsertStats stats;
  std::vector<idx_t> isize[4];
  for (const auto& s : samples) {
    if (s.dir < 0 || s.dir > 3) continue;
    if (s.dist < 1 || s.dist > opt.max_ins) continue;
    isize[s.dir].push_back(s.dist);
    ++stats.pairs_sampled;
  }

  std::size_t max_count = 0;
  for (const auto& v : isize) max_count = std::max(max_count, v.size());

  for (int d = 0; d < 4; ++d) {
    DirStats& r = stats.dir[d];
    std::vector<idx_t>& q = isize[d];
    r.count = q.size();
    if (q.size() < static_cast<std::size_t>(opt.min_dir_count) ||
        static_cast<double>(q.size()) <
            static_cast<double>(max_count) * opt.min_dir_ratio)
      continue;  // failed
    std::sort(q.begin(), q.end());
    const auto at = [&](double f) {
      // bwa's rounding can land one past the end for tiny classes (e.g. a
      // caller lowering min_dir_count); clamp to the last sample.
      const auto i = std::min(
          static_cast<std::size_t>(f * static_cast<double>(q.size()) + .499),
          q.size() - 1);
      return static_cast<double>(q[i]);
    };
    const double p25 = at(.25), p75 = at(.75);
    // Outlier-trimmed mean/std (bwa mem_pestat).
    double low = p25 - opt.outlier_bound * (p75 - p25);
    if (low < 1) low = 1;
    const double high = p75 + opt.outlier_bound * (p75 - p25);
    double sum = 0;
    std::uint64_t n = 0;
    for (idx_t v : q)
      if (v >= low && v <= high) sum += static_cast<double>(v), ++n;
    r.mean = sum / static_cast<double>(n);
    double var = 0;
    for (idx_t v : q)
      if (v >= low && v <= high)
        var += (static_cast<double>(v) - r.mean) * (static_cast<double>(v) - r.mean);
    r.std = std::sqrt(var / static_cast<double>(n));
    if (r.std < 1e-9) r.std = 1e-9;  // degenerate exact-insert libraries
    // Accepted pairing range: the wider of the IQR mapping bound and the
    // MAX_STDDEV sigma envelope (bwa's final low/high assignment).
    r.low = static_cast<int>(p25 - opt.mapping_bound * (p75 - p25) + .499);
    r.high = static_cast<int>(p75 + opt.mapping_bound * (p75 - p25) + .499);
    if (r.low > static_cast<int>(r.mean - opt.max_stddev * r.std + .499))
      r.low = static_cast<int>(r.mean - opt.max_stddev * r.std + .499);
    if (r.high < static_cast<int>(r.mean + opt.max_stddev * r.std + .499))
      r.high = static_cast<int>(r.mean + opt.max_stddev * r.std + .499);
    if (r.low < 1) r.low = 1;
    r.failed = false;
  }
  return stats;
}

}  // namespace mem2::pair
