#include "pair/pairing.h"

#include <algorithm>
#include <cmath>

namespace mem2::pair {

using align::AlnReg;
using align::MemOptions;

int competing_sub(const MemOptions& opt, std::span<const AlnReg> regs) {
  // bwa cal_sub: walk down the score-sorted list until a region overlapping
  // the best one on the query is found; its score is the competing sub.
  for (std::size_t j = 1; j < regs.size(); ++j) {
    const int b_max = std::max(regs[j].qb, regs[0].qb);
    const int e_min = std::min(regs[j].qe, regs[0].qe);
    if (e_min > b_max) {  // have overlap
      const int min_l = std::min(regs[j].qe - regs[j].qb, regs[0].qe - regs[0].qb);
      if (e_min - b_max >= min_l * opt.chaining.mask_level)
        return regs[j].score;
    }
  }
  return opt.seeding.min_seed_len * opt.ksw.a;
}

bool pair_sample(const MemOptions& opt, const PairOptions& popt, idx_t l_pac,
                 std::span<const AlnReg> regs1, std::span<const AlnReg> regs2,
                 InsertSample* out) {
  if (regs1.empty() || regs2.empty()) return false;
  if (regs1[0].rid != regs2[0].rid) return false;  // not on the same contig
  if (competing_sub(opt, regs1) > popt.min_unique_ratio * regs1[0].score)
    return false;
  if (competing_sub(opt, regs2) > popt.min_unique_ratio * regs2[0].score)
    return false;
  idx_t dist = 0;
  out->dir = infer_dir(l_pac, regs1[0].rb, regs2[0].rb, &dist);
  out->dist = dist;
  return true;
}

namespace {

/// One pairing candidate entry (bwa's pair64_t v array): a primary region
/// of either mate, keyed by its forward-strand projected position.
struct PairEntry {
  idx_t x = 0;     // forward-projected start coordinate
  int score = 0;
  int idx = 0;     // region index within its mate's list
  bool rev = false;
  int read = 0;    // 0 = mate 1, 1 = mate 2
};

struct PairCandidate {
  int q = 0;       // pair score
  int k = 0, i = 0;  // entry indices (earlier, later)
};

/// bwa mem_pair ported onto flat vectors; ties break on entry order (NOT on
/// bwa's read-id hash, which would make output depend on global read index).
PairDecision mem_pair(const MemOptions& opt, const PairOptions& popt, idx_t l_pac,
                      const InsertStats& pes, std::span<const AlnReg> regs[2]) {
  PairDecision d;
  std::vector<PairEntry> v;
  for (int r = 0; r < 2; ++r)
    for (std::size_t i = 0; i < regs[r].size(); ++i) {
      const AlnReg& e = regs[r][i];
      if (e.secondary >= 0) continue;  // primaries only
      PairEntry ent;
      ent.rev = e.rb >= l_pac;
      ent.x = ent.rev ? 2 * l_pac - 1 - e.rb : e.rb;
      ent.score = e.score;
      ent.idx = static_cast<int>(i);
      ent.read = r;
      v.push_back(ent);
    }
  std::sort(v.begin(), v.end(), [](const PairEntry& a, const PairEntry& b) {
    if (a.x != b.x) return a.x < b.x;
    if (a.score != b.score) return a.score < b.score;
    if (a.read != b.read) return a.read < b.read;
    return a.idx < b.idx;
  });

  std::vector<PairCandidate> u;
  int last[4] = {-1, -1, -1, -1};  // last entry per (strand<<1 | read)
  for (int i = 0; i < static_cast<int>(v.size()); ++i) {
    const PairEntry& cur = v[static_cast<std::size_t>(i)];
    for (int r = 0; r < 2; ++r) {  // strand of the earlier mate
      const int dir = r << 1 | static_cast<int>(cur.rev);
      if (pes.dir[dir].failed) continue;
      const int which = r << 1 | (cur.read ^ 1);
      for (int k = last[which]; k >= 0; --k) {
        const PairEntry& prev = v[static_cast<std::size_t>(k)];
        if ((static_cast<int>(prev.rev) << 1 | prev.read) != which) continue;
        const idx_t dist = cur.x - prev.x;
        if (dist > pes.dir[dir].high) break;  // sorted: only grows further back
        if (dist < pes.dir[dir].low) continue;
        const double ns =
            (static_cast<double>(dist) - pes.dir[dir].mean) / pes.dir[dir].std;
        // .721 = 1/log(4): log-likelihood of the insert under the prior,
        // expressed in score units (bwa mem_pair).
        int q = static_cast<int>(
            prev.score + cur.score +
            .721 * std::log(2. * std::erfc(std::fabs(ns) * M_SQRT1_2)) *
                opt.ksw.a +
            .499);
        if (q < 0) q = 0;
        u.push_back({q, k, i});
      }
    }
    last[static_cast<int>(cur.rev) << 1 | cur.read] = i;
  }
  if (u.empty()) return d;

  std::sort(u.begin(), u.end(), [](const PairCandidate& a, const PairCandidate& b) {
    if (a.q != b.q) return a.q < b.q;
    if (a.k != b.k) return a.k < b.k;
    return a.i < b.i;
  });
  const PairCandidate& best = u.back();
  const PairEntry& ei = v[static_cast<std::size_t>(best.i)];
  const PairEntry& ek = v[static_cast<std::size_t>(best.k)];
  d.z[ei.read] = ei.idx;
  d.z[ek.read] = ek.idx;
  d.pair_score = best.q;
  d.pair_sub = u.size() > 1 ? u[u.size() - 2].q : 0;
  const int tmp = std::max({opt.ksw.a + opt.ksw.b, opt.ksw.o_del + opt.ksw.e_del,
                            opt.ksw.o_ins + opt.ksw.e_ins});
  d.n_sub = 0;
  for (std::size_t j = 0; j + 1 < u.size(); ++j)
    if (d.pair_sub - u[j].q <= tmp) ++d.n_sub;
  (void)popt;
  return d;
}

}  // namespace

PairDecision pair_and_score(const MemOptions& opt, const PairOptions& popt,
                            idx_t l_pac, const InsertStats& pes,
                            std::span<const AlnReg> regs1,
                            std::span<const AlnReg> regs2) {
  std::span<const AlnReg> regs[2] = {regs1, regs2};

  // A mate participates in pairing when it has at least one primary region.
  const bool has[2] = {!regs1.empty() && regs1[0].secondary < 0,
                       !regs2.empty() && regs2[0].secondary < 0};

  PairDecision d;
  if (has[0] && has[1] && pes.any()) {
    d = mem_pair(opt, popt, l_pac, pes, regs);
    if (d.pair_score > 0 && d.z[0] >= 0 && d.z[1] >= 0) {
      // bwa mem_sam_pe: refuse to force a pair when either end is
      // ambiguous (another primary above the output threshold).
      bool is_multi = false;
      for (int r = 0; r < 2 && !is_multi; ++r)
        for (std::size_t j = 1; j < regs[r].size(); ++j)
          if (regs[r][j].secondary < 0 && regs[r][j].score >= opt.min_out_score) {
            is_multi = true;
            break;
          }
      if (!is_multi) {
        const int score_un =
            regs1[0].score + regs2[0].score - popt.pen_unpaired;
        const int subo = std::max(d.pair_sub, score_un);
        if (d.pair_score > score_un) {  // paired interpretation wins
          d.proper = true;
          int q_pe = raw_mapq(d.pair_score - subo, opt.ksw.a);
          if (d.n_sub > 0)
            q_pe -= static_cast<int>(4.343 * std::log(d.n_sub + 1) + .499);
          q_pe = std::clamp(q_pe, 0, 60);
          q_pe = static_cast<int>(
              q_pe * (1. - .5 * (regs1[0].frac_rep + regs2[0].frac_rep)) + .499);
          for (int r = 0; r < 2; ++r) {
            const AlnReg& c = regs[r][static_cast<std::size_t>(d.z[r])];
            int q_se = approx_mapq(c, opt);
            q_se = q_se > q_pe ? q_se : std::min(q_pe, q_se + 40);
            q_se = std::min(q_se, raw_mapq(c.score - c.csub, opt.ksw.a));
            d.mapq[r] = std::clamp(q_se, 0, 60);
          }
          return d;
        }
      }
    }
  }

  // Unpaired interpretation: each mate keeps its best single-end primary,
  // subject to the usual -T output threshold (as in bwa's mem_reg2sam path).
  d.proper = false;
  d.pair_score = d.pair_sub = d.n_sub = 0;
  for (int r = 0; r < 2; ++r) {
    const bool out = has[r] && regs[r][0].score >= opt.min_out_score;
    d.z[r] = out ? 0 : -1;
    d.mapq[r] = out ? approx_mapq(regs[r][0], opt) : 0;
  }
  return d;
}

namespace {

/// Mate-side summary a record needs to fill RNEXT/PNEXT/TLEN and the mate
/// flag bits.
struct MateView {
  bool mapped = false;
  bool rev = false;
  int rid = -1;
  idx_t pos = 0;       // 1-based leftmost
  idx_t ref_end = 0;   // 1-based position of the last reference base
  const std::string* rname = nullptr;
};

void apply_mate_fields(io::SamRecord& rec, bool mapped_self, bool rev_self,
                       int rid_self, idx_t ref_end_self, const MateView& mate,
                       bool proper, bool read1) {
  rec.flag |= io::kFlagPaired | (read1 ? io::kFlagRead1 : io::kFlagRead2);
  if (proper) rec.flag |= io::kFlagProperPair;
  if (!mate.mapped) {
    rec.flag |= io::kFlagMateUnmapped;
    // Unmapped mate is placed at this record's own coordinate.
    if (mapped_self) {
      rec.rnext = "=";
      rec.pnext = rec.pos;
    }
    return;
  }
  if (mate.rev) rec.flag |= io::kFlagMateReverse;
  if (!mapped_self) {
    // SAM convention: an unmapped read in a pair sits at its mate's locus.
    rec.rname = *mate.rname;
    rec.pos = mate.pos;
    rec.rnext = "=";
    rec.pnext = mate.pos;
    return;
  }
  rec.rnext = rec.rname == *mate.rname ? "=" : *mate.rname;
  rec.pnext = mate.pos;
  if (rid_self == mate.rid) {
    // bwa mem_aln2sam: signed outer distance between the two alignments'
    // "far" points; the leftmost mate gets the positive sign.
    const idx_t p0 = rev_self ? ref_end_self : rec.pos;
    const idx_t p1 = mate.rev ? mate.ref_end : mate.pos;
    rec.tlen = -(p0 - p1 + (p0 > p1 ? 1 : p0 < p1 ? -1 : 0));
  }
}

}  // namespace

void pair_to_sam(const align::ExtendContext& ctx1, const align::ExtendContext& ctx2,
                 const seq::Read& read1, const seq::Read& read2,
                 std::span<const AlnReg> regs1, std::span<const AlnReg> regs2,
                 const PairDecision& decision, std::vector<io::SamRecord>& out1,
                 std::vector<io::SamRecord>& out2) {
  const align::ExtendContext* ctx[2] = {&ctx1, &ctx2};
  const seq::Read* read[2] = {&read1, &read2};
  std::span<const AlnReg> regs[2] = {regs1, regs2};
  std::vector<io::SamRecord>* out[2] = {&out1, &out2};

  // Pass 1: build each mate's record list (primary first), remembering the
  // primary alignment geometry for the mate-field pass.
  MateView view[2];
  std::vector<io::SamRecord> recs[2];
  // ref_end (for TLEN) per record, parallel to recs[r].
  std::vector<idx_t> rec_ref_end[2];
  std::vector<char> rec_mapped[2];
  std::vector<char> rec_rev[2];
  std::vector<int> rec_rid[2];

  for (int r = 0; r < 2; ++r) {
    const align::MemOptions& opt = ctx[r]->opt;
    const int zi = decision.z[r];
    bool emitted_primary = false;
    auto emit = [&](const AlnReg& reg, bool primary) {
      const align::SamAln aln = align::region_to_aln(*ctx[r], reg);
      io::SamRecord rec;
      rec.qname = read[r]->name;
      rec.flag = 0;
      if (aln.rev) rec.flag |= io::kFlagReverse;
      if (reg.secondary >= 0)
        rec.flag |= io::kFlagSecondary;
      else if (!primary)
        rec.flag |= io::kFlagSupplementary;
      rec.rname =
          ctx[r]->index.ref().contigs()[static_cast<std::size_t>(aln.rid)].name;
      rec.pos = aln.pos + 1;
      rec.mapq = reg.secondary >= 0 ? 0
                 : primary          ? decision.mapq[r]
                                    : approx_mapq(reg, opt);
      rec.cigar = align::cigar_with_clips(aln);
      align::fill_seq_qual(*read[r], aln.rev, rec);
      rec.tags = {"NM:i:" + std::to_string(aln.nm),
                  "AS:i:" + std::to_string(reg.score),
                  "XS:i:" + std::to_string(reg.sub)};
      const idx_t ref_end = rec.pos + aln.ref_len() - 1;
      if (primary) {
        view[r].mapped = true;
        view[r].rev = aln.rev;
        view[r].rid = aln.rid;
        view[r].pos = rec.pos;
        view[r].ref_end = ref_end;
      }
      recs[r].push_back(std::move(rec));
      rec_ref_end[r].push_back(ref_end);
      rec_mapped[r].push_back(1);
      rec_rev[r].push_back(aln.rev);
      rec_rid[r].push_back(aln.rid);
    };

    // The chosen primary goes first, unconditionally (a proper-pair
    // selection is emitted even below the -T threshold, as in bwa).
    if (zi >= 0) {
      emit(regs[r][static_cast<std::size_t>(zi)], /*primary=*/true);
      emitted_primary = true;
    }
    // Remaining survivors in mark_primary order: supplementary/secondary.
    for (std::size_t i = 0; i < regs[r].size(); ++i) {
      if (static_cast<int>(i) == zi) continue;
      const AlnReg& reg = regs[r][i];
      if (reg.score < opt.min_out_score) continue;
      if (reg.secondary >= 0 && !opt.output_secondary) continue;
      if (reg.secondary < 0 && !emitted_primary) {
        emit(reg, /*primary=*/true);  // unreachable when zi >= 0; safety
        emitted_primary = true;
        continue;
      }
      emit(reg, /*primary=*/false);
    }
    if (recs[r].empty()) {
      recs[r].push_back(align::unmapped_record(*read[r]));
      rec_ref_end[r].push_back(0);
      rec_mapped[r].push_back(0);
      rec_rev[r].push_back(0);
      rec_rid[r].push_back(-1);
    }
  }

  // Pass 2: fill mate fields on every record from the other mate's primary.
  // Both views must be complete (rname pointers set) before either side is
  // patched, and records move out only after both sides are done.
  for (int r = 0; r < 2; ++r)
    if (view[r].mapped) view[r].rname = &recs[r][0].rname;
  for (int r = 0; r < 2; ++r) {
    const MateView& mate = view[r ^ 1];
    for (std::size_t i = 0; i < recs[r].size(); ++i)
      apply_mate_fields(recs[r][i], rec_mapped[r][i] != 0, rec_rev[r][i] != 0,
                        rec_rid[r][i], rec_ref_end[r][i], mate, decision.proper,
                        r == 0);
  }
  for (int r = 0; r < 2; ++r)
    for (auto& rec : recs[r]) out[r]->push_back(std::move(rec));
}

}  // namespace mem2::pair
