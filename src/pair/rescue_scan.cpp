#include "pair/rescue_scan.h"

#include <algorithm>
#include <cstring>

namespace mem2::pair {

namespace {

/// Polynomial rolling-hash base (the FNV64 prime — odd, so multiplication
/// mod 2^64 is a bijection and windows differing in one base differ in
/// hash with overwhelming probability; collisions only cost a memcmp).
constexpr std::uint64_t kHashBase = 0x00000100000001b3ULL;

std::uint64_t pow_base(int e) {
  std::uint64_t r = 1;
  for (int i = 0; i < e; ++i) r *= kHashBase;
  return r;
}

std::uint64_t hash_kmer(const seq::Code* p, int k) {
  std::uint64_t h = 0;
  for (int j = 0; j < k; ++j) h = h * kHashBase + p[j];
  return h;
}

/// Fibonacci-mix the polynomial hash into a table slot: the low bits of a
/// plain polynomial hash are dominated by the last few bases, so spread the
/// whole word before taking the top `bits`.
std::uint32_t slot_of(std::uint64_t h, int bits) {
  return static_cast<std::uint32_t>((h * 0x9e3779b97f4a7c15ULL) >> (64 - bits));
}

/// Maximal exact match run through a verified anchor at (q0, t): k plus the
/// equal unambiguous bases immediately left and right.  Ambiguous bases
/// terminate the run (N = N is not a scoring match).
int exact_run(std::span<const seq::Code> seq, std::span<const seq::Code> win,
              int q0, int t, int k) {
  const int l_seq = static_cast<int>(seq.size());
  const int l_win = static_cast<int>(win.size());
  int left = 0;
  while (q0 - 1 - left >= 0 && t - 1 - left >= 0 &&
         seq[static_cast<std::size_t>(q0 - 1 - left)] ==
             win[static_cast<std::size_t>(t - 1 - left)] &&
         seq[static_cast<std::size_t>(q0 - 1 - left)] < 4)
    ++left;
  int right = 0;
  while (q0 + k + right < l_seq && t + k + right < l_win &&
         seq[static_cast<std::size_t>(q0 + k + right)] ==
             win[static_cast<std::size_t>(t + k + right)] &&
         seq[static_cast<std::size_t>(q0 + k + right)] < 4)
    ++right;
  return k + left + right;
}

}  // namespace

int scan_rescue_anchors(std::span<const seq::Code> seq,
                        std::span<const seq::Code> win, int k, int max_anchors,
                        RescueAnchor* out) {
  const int l_seq = static_cast<int>(seq.size());
  const int l_win = static_cast<int>(win.size());
  if (k <= 0 || l_seq < k || l_win < k) return 0;
  max_anchors = std::min(max_anchors, kMaxRescueAnchors);

  // Probe k-mers at non-overlapping query offsets; skip probes containing
  // an ambiguous base (N "matches" nothing meaningful).
  int probes[kMaxRescueProbes];
  int n_probes = 0;
  for (int q0 = 0; q0 + k <= l_seq && n_probes < kMaxRescueProbes; q0 += k) {
    bool ambig = false;
    for (int j = 0; j < k; ++j) ambig |= seq[static_cast<std::size_t>(q0 + j)] > 3;
    if (!ambig) probes[n_probes++] = q0;
  }

  int n = 0;
  int diagonals[kMaxRescueAnchors];
  for (int t = 0; t + k <= l_win && n < max_anchors; ++t) {
    for (int p = 0; p < n_probes && n < max_anchors; ++p) {
      const int q0 = probes[p];
      const int diag = t - q0;
      bool seen = false;
      for (int d = 0; d < n; ++d) seen |= diagonals[d] == diag;
      if (seen) continue;
      if (std::memcmp(seq.data() + q0, win.data() + t,
                      static_cast<std::size_t>(k)) != 0)
        continue;
      out[n].qbeg = q0;
      out[n].tbeg = t;
      out[n].len = k;
      out[n].exact_run = exact_run(seq, win, q0, t, k);
      out[n].have_left = out[n].have_right = false;
      diagonals[n] = diag;
      ++n;
    }
  }
  return n;
}

void RescueScanner::build(std::span<const seq::Code> seq, int k, int hash_bits) {
  seq_ = seq;
  k_ = k;
  bits_ = std::clamp(hash_bits, 1, kMaxRescueHashBits);
  n_probes_ = 0;
  std::fill(slot_head_, slot_head_ + (std::size_t{1} << bits_),
            static_cast<std::int16_t>(-1));
  const int l_seq = static_cast<int>(seq.size());
  if (k <= 0 || l_seq < k) return;
  bk1_ = pow_base(k - 1);
  for (int q0 = 0; q0 + k <= l_seq && n_probes_ < kMaxRescueProbes; q0 += k) {
    bool ambig = false;
    for (int j = 0; j < k; ++j) ambig |= seq[static_cast<std::size_t>(q0 + j)] > 3;
    if (ambig) continue;
    probe_q0_[n_probes_] = q0;
    probe_hash_[n_probes_] = hash_kmer(seq.data() + q0, k);
    ++n_probes_;
  }
  // Prepend in descending probe order so every chain walks in ascending
  // query-offset order — the reference scan's probe order, which the
  // first-anchor-per-diagonal and max_anchors saturation rules depend on.
  for (int p = n_probes_ - 1; p >= 0; --p) {
    const std::uint32_t s = slot_of(probe_hash_[p], bits_);
    probe_next_[p] = slot_head_[s];
    slot_head_[s] = static_cast<std::int16_t>(p);
  }
}

int RescueScanner::scan(std::span<const seq::Code> win, int max_anchors,
                        RescueAnchor* out) const {
  const int l_win = static_cast<int>(win.size());
  if (k_ <= 0 || n_probes_ == 0 || l_win < k_) return 0;
  max_anchors = std::min(max_anchors, kMaxRescueAnchors);

  int n = 0;
  int diagonals[kMaxRescueAnchors];
  std::uint64_t h = hash_kmer(win.data(), k_);
  for (int t = 0;; ++t) {
    for (int p = slot_head_[slot_of(h, bits_)]; p >= 0 && n < max_anchors;
         p = probe_next_[p]) {
      if (probe_hash_[p] != h) continue;  // colliding slot, different k-mer
      const int q0 = probe_q0_[p];
      const int diag = t - q0;
      bool seen = false;
      for (int d = 0; d < n; ++d) seen |= diagonals[d] == diag;
      if (seen) continue;
      if (std::memcmp(seq_.data() + q0, win.data() + t,
                      static_cast<std::size_t>(k_)) != 0)
        continue;  // true hash collision
      out[n].qbeg = q0;
      out[n].tbeg = t;
      out[n].len = k_;
      out[n].exact_run = exact_run(seq_, win, q0, t, k_);
      out[n].have_left = out[n].have_right = false;
      diagonals[n] = diag;
      ++n;
    }
    if (n >= max_anchors || t + k_ >= l_win) break;
    h = (h - win[static_cast<std::size_t>(t)] * bk1_) * kHashBase +
        win[static_cast<std::size_t>(t + k_)];
  }
  return n;
}

}  // namespace mem2::pair
