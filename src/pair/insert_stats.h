// Insert-size distribution estimation (bwa mem_pestat).
//
// Paired-end decisions — pair scoring, proper-pair flagging, mate-rescue
// window placement — all rest on the insert-size prior.  bwa estimates it
// per chunk of reads, which makes output depend on the chunk size; we
// instead estimate it ONCE per streaming session from a fixed-length
// calibration prefix (the first PairOptions::stat_pairs pairs in submission
// order), so paired output is deterministic across thread counts, chunk
// sizes and batch sizes, exactly like single-end output.
//
// Orientation classes follow bwa's mem_infer_dir encoding:
//   0 = FF, 1 = FR (standard Illumina), 2 = RF, 3 = RR.
// A class with too few high-confidence unique pairs is marked failed and
// takes no part in pairing or rescue.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "util/common.h"

namespace mem2::pair {

/// Knobs of the paired-end subsystem (constants from bwa bwamem_pair.c plus
/// the rescue-anchor parameters of our seed-and-extend mate rescue).
struct PairOptions {
  int stat_pairs = 512;        // calibration prefix length (pairs)
  int min_dir_count = 10;      // bwa MIN_DIR_CNT
  double min_dir_ratio = 0.05; // bwa MIN_DIR_RATIO (of the dominant class)
  double min_unique_ratio = 0.8;  // bwa MIN_RATIO: sub/best above this = ambiguous
  double outlier_bound = 2.0;  // bwa OUTLIER_BOUND (IQR multiplier)
  double mapping_bound = 3.0;  // bwa MAPPING_BOUND (IQR multiplier for low/high)
  double max_stddev = 4.0;     // bwa MAX_STDDEV (sigma multiplier for low/high)
  int max_ins = 10000;         // ignore samples beyond this insert (bwa opt->max_ins)
  int pen_unpaired = 17;       // bwa -U: pairing vs best-single-end penalty
  int max_matesw = 50;         // bwa -m: rescue attempts per mate
  int rescue_seed_len = 11;    // exact-anchor length for rescue seeding
  int max_rescue_anchors = 4;  // candidate diagonals evaluated per window
  /// Slot-count exponent of the rolling-hash probe table (rescue_scan.h):
  /// 1 << rescue_hash_bits slots.  Only affects collision-chain length,
  /// never the anchor set; validated in [1, kMaxRescueHashBits].
  int rescue_hash_bits = 7;
  /// Determinism-preserving rescue skipping (bwa mem_matesw's sequential
  /// stop-when-satisfied behavior, reformulated): windows of one pair are
  /// evaluated in a fixed canonical order (anchor region rank, then
  /// orientation class), and once a window's anchor has an exact match run
  /// >= min_seed_len — which guarantees an accepted rescue for that mate
  /// and orientation — later windows of the same (mate, orientation) are
  /// skipped before fetch.  Per-pair state only, so output stays invariant
  /// across threads/chunkings/batch sizes; disable for a byte-exact A/B
  /// against the skip-free scan-everything behavior.
  bool rescue_skip = true;
};

/// One orientation class of the insert-size distribution.
struct DirStats {
  bool failed = true;
  double mean = 0.0;
  double std = 1.0;
  int low = 0, high = 0;       // accepted insert range [low, high]
  std::uint64_t count = 0;     // high-confidence samples observed
};

struct InsertStats {
  DirStats dir[4];             // FF, FR, RF, RR
  std::uint64_t pairs_sampled = 0;  // pairs that contributed a sample

  bool any() const {
    for (const auto& d : dir)
      if (!d.failed) return true;
    return false;
  }
  std::string summary() const;
};

/// bwa mem_infer_dir: orientation class and distance between two alignment
/// start positions in the doubled coordinate space.  `dist` receives the
/// insert-size proxy (leftmost point of one mate to the projected point of
/// the other on its strand).
inline int infer_dir(idx_t l_pac, idx_t b1, idx_t b2, idx_t* dist) {
  const bool r1 = b1 >= l_pac, r2 = b2 >= l_pac;
  const idx_t p2 = r1 == r2 ? b2 : 2 * l_pac - 1 - b2;
  *dist = p2 > b1 ? p2 - b1 : b1 - p2;
  return (r1 == r2 ? 0 : 1) ^ (p2 > b1 ? 0 : 3);
}

/// One high-confidence (orientation, distance) observation.
struct InsertSample {
  int dir = 0;
  idx_t dist = 0;
};

/// bwa mem_pestat over pre-extracted samples: per-class percentile bounds,
/// outlier-trimmed mean/std, and the accepted [low, high] range.  Samples
/// beyond opt.max_ins or below 1 are ignored; classes below the count/ratio
/// thresholds are marked failed.  Deterministic: depends only on the sample
/// multiset order.
InsertStats estimate_insert_stats(std::span<const InsertSample> samples,
                                  const PairOptions& opt);

}  // namespace mem2::pair
