// Mate rescue (bwa mem_matesw), reformulated as pooled banded-SW jobs.
//
// When one mate of a pair is unaligned — or aligned nowhere near where the
// insert-size prior says it should be — bwa runs a full Smith-Waterman of
// that mate against the reference window implied by the other mate's
// position.  We do not carry a standalone SW-with-start-traceback kernel;
// instead rescue is seed-and-extend over the SAME inter-task BSW machinery
// as regular extension:
//
//   1. window:   compute the doubled-coordinate window for each non-failed
//                orientation class (bwa's rb/re formulas), clamped to one
//                strand and one contig;
//   2. anchors:  scan the window for short exact matches (rescue_seed_len,
//                default 11 < min_seed_len, so rescue can seed reads whose
//                SMEM seeding failed) of the expected-orientation mate
//                sequence — at most one anchor per diagonal, first-seen
//                order, capped at max_rescue_anchors.  The scan is the
//                rolling-hash RescueScanner (rescue_scan.h), whose anchor
//                set is identical to the reference nested memcmp scan;
//   3. extend:   every anchor becomes a left-extension job, then a
//                right-extension job with the left score as h0 — both
//                dispatched through the shared BswExecutor in pooled rounds
//                spliced in pair order, exactly like the four extension
//                rounds of the batch driver;
//   4. finalize: the best-scoring anchor (ties: smaller window offset)
//                whose score reaches min_seed_len * a becomes a new AlnReg
//                on the rescued mate, flagged `rescued`.
//
// Everything here is deterministic: windows depend only on the pair's own
// regions and the session-wide insert stats; anchors are scanned in window
// order; job pools are spliced in pair order.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "align/region.h"
#include "bsw/ksw.h"
#include "pair/insert_stats.h"
#include "pair/rescue_scan.h"
#include "seq/dna.h"
#include "seq/pack.h"

namespace mem2::pair {

/// Doubled-coordinate rescue window for anchor region `a` and orientation
/// class `dir`; false when the window is empty, crosses onto the wrong
/// contig, or is shorter than the anchor seed.
struct RescueWindow {
  idx_t rb = 0, re = 0;  // doubled coordinates, [rb, re)
  bool is_rev = false;   // mate sequence must be reverse-complemented
};
bool rescue_window(const seq::Reference& ref, idx_t l_pac, const align::AlnReg& a,
                   const DirStats& pes, int dir, int l_ms, int min_len,
                   RescueWindow* out);

/// One rescue attempt: a window of one orientation class for one mate of a
/// pair, with its fetched reference bases and surviving anchors.  Windows
/// are fetched fresh per batch (like the chain windows in ChainRef), so the
/// PAIR stage allocates per batch — a documented exception to the batch
/// driver's steady-state zero-allocation discipline.
///
/// Repeat-heavy references produce near-tie anchor regions whose rescue
/// windows are byte-identical; the driver dedups them by content
/// fingerprint before BSW job pooling.  A duplicate attempt carries
/// dup_of >= 0 (the index of the content-identical canonical attempt in the
/// spliced batch list): its anchors are copies, it contributes no BSW jobs,
/// and the canonical attempt's extension results are replayed into it
/// before finalize — so dedup never changes output, only work.
struct RescueAttempt {
  std::uint32_t pair = 0;  // pair index within the batch
  std::uint8_t mate = 0;   // which mate is being rescued (0/1)
  bool is_rev = false;
  int rid = -1;
  idx_t win_rb = 0;
  std::int32_t dup_of = -1;   // spliced index of the canonical attempt
  std::uint64_t fp = 0;       // window-content fingerprint (dedup key)
  std::vector<seq::Code> win, win_rev;  // win_rev empty for duplicates
  std::array<RescueAnchor, kMaxRescueAnchors> anchors;
  int n_anchors = 0;
};

/// Turn the best surviving anchor of one attempt into an AlnReg on the
/// rescued mate (bwa mem_matesw's region construction).  `l_ms` is the mate
/// length; returns false when no anchor reaches min_seed_len * a.
bool finalize_rescue(const align::MemOptions& opt, idx_t l_pac,
                     const RescueAttempt& attempt, int l_ms, float frac_rep,
                     align::AlnReg* out);

}  // namespace mem2::pair
