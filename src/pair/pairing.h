// Pair scoring and paired-end SAM emission (bwa mem_pair + mem_sam_pe).
//
// Given both mates' post-processed single-end region lists and the
// session-wide insert-size prior (insert_stats.h), pick the most consistent
// pair of regions — each candidate pair's score is the two local scores
// plus a log-likelihood bonus of its insert under the estimated
// distribution — and decide between the paired and the unpaired
// interpretation (bwa's pen_unpaired trade-off).  Paired mapq blends the
// single-end estimate with the pair-level evidence exactly as bwa does.
//
// Deviations from bwa, chosen for determinism across chunkings (bwa's
// output depends on the global read index via a hash tie-break, ours must
// not): candidate ties break on (score, entry order) instead of hash_64,
// and the paired branch also emits supplementary records (bwa's paired
// branch emits exactly one record per mate; our single-end formatter has
// always emitted supplementaries, and keeping that in paired mode keeps the
// two modes' record sets comparable).
#pragma once

#include <span>
#include <vector>

#include "align/extend.h"
#include "align/region.h"
#include "align/sam_format.h"
#include "io/sam.h"
#include "pair/insert_stats.h"

namespace mem2::pair {

/// bwa's raw_mapq: phred-scale a score difference.
inline int raw_mapq(int diff, int a) {
  return static_cast<int>(6.02 * diff / a + .499);
}

/// bwa cal_sub: the best score among regions NOT query-overlapping the best
/// region — the "competing locus" score used to test alignment uniqueness.
int competing_sub(const align::MemOptions& opt, std::span<const align::AlnReg> regs);

/// Extract the (orientation, distance) calibration sample of one pair, or
/// return false when either mate lacks a unique high-confidence best hit
/// (bwa mem_pestat's per-pair filter).
bool pair_sample(const align::MemOptions& opt, const PairOptions& popt,
                 idx_t l_pac, std::span<const align::AlnReg> regs1,
                 std::span<const align::AlnReg> regs2, InsertSample* out);

/// Outcome of pairing one read pair.
struct PairDecision {
  int z[2] = {-1, -1};   // chosen region index per mate; -1 = unmapped
  bool proper = false;   // paired interpretation won (SAM flag 0x2)
  int mapq[2] = {0, 0};  // mapq of the chosen primaries
  int pair_score = 0;    // best pair score (o in bwa)
  int pair_sub = 0;      // second-best pair score
  int n_sub = 0;         // near-equal suboptimal pairs
};

/// bwa mem_pair + the mem_sam_pe decision logic.  regs[i] must be
/// sort_dedup'ed and mark_primary'ed (score-descending, secondaries
/// annotated).  Only fills z/proper/mapq; emission is pair_to_sam below.
PairDecision pair_and_score(const align::MemOptions& opt, const PairOptions& popt,
                            idx_t l_pac, const InsertStats& pes,
                            std::span<const align::AlnReg> regs1,
                            std::span<const align::AlnReg> regs2);

/// Emit both mates' SAM records with the paired FLAG bits, RNEXT/PNEXT/TLEN
/// and mate strand/unmapped bits filled from the other mate's primary.
/// Appends to out1/out2 (one vector per mate so the driver can keep records
/// in read order).
void pair_to_sam(const align::ExtendContext& ctx1, const align::ExtendContext& ctx2,
                 const seq::Read& read1, const seq::Read& read2,
                 std::span<const align::AlnReg> regs1,
                 std::span<const align::AlnReg> regs2, const PairDecision& decision,
                 std::vector<io::SamRecord>& out1, std::vector<io::SamRecord>& out2);

}  // namespace mem2::pair
