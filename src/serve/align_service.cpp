// AlignService implementation: admission (fail-fast or bounded FIFO
// queueing), the shared worker pool, the round-robin scheduler over
// per-session SessionCores, the batch-progress watchdog and graceful
// shutdown (see align_service.h for the design).
//
// Locking: impl->mu is simultaneously the service registry lock *and*
// every session core's queue mutex (cores are constructed with it), so a
// worker holding mu sees a consistent picture of all queues while picking.
// Lock order is mu -> core state_mu -> token mutex (a leaf); emit locks are
// per-core and never nest with mu.  Batch processing itself runs with no
// lock held.  All deadline waits go through the injected util::Clock so the
// admission/watchdog/shutdown paths are testable with a FakeClock.
#include "serve/align_service.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <sstream>
#include <thread>

#include "align/session.h"
#include "util/trace.h"

namespace mem2::serve {

align::Status validate_serve_options(const ServeOptions& options) {
  if (options.workers < 0)
    return align::Status::invalid("serve: workers must be >= 0 (0 = auto)");
  if (options.max_streams < 1)
    return align::Status::invalid("serve: max_streams must be >= 1");
  if (options.max_inflight_batches < 1)
    return align::Status::invalid("serve: max_inflight_batches must be >= 1");
  if (options.admission_timeout_ms < 0)
    return align::Status::invalid(
        "serve: admission_timeout_ms must be >= 0 (0 = fail fast)");
  if (options.max_pending_opens < 0)
    return align::Status::invalid("serve: max_pending_opens must be >= 0");
  if (options.batch_stall_ms < 0)
    return align::Status::invalid(
        "serve: batch_stall_ms must be >= 0 (0 = watchdog off)");
  return align::Status();
}

std::string ServiceMetrics::summary() const {
  std::ostringstream os;
  os << "streams active=" << active_streams << " peak=" << peak_streams
     << " pending=" << pending_opens << " opened=" << streams_opened
     << " rejected=" << streams_rejected << " queued=" << streams_queued
     << " timed_out=" << streams_timed_out
     << " cancelled=" << streams_cancelled
     << " completed=" << streams_completed << " failed=" << streams_failed
     << " | reads=" << reads << " records=" << records
     << " batches=" << batches << " write_retries=" << write_retries
     << " bsw_pairs=" << counters.bsw_pairs
     << " smems=" << counters.smems_found;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                " | batch p50=%.1fms p99=%.1fms qwait p50=%.1fms p99=%.1fms",
                batch_latency.p50() * 1e3, batch_latency.p99() * 1e3,
                queue_wait.p50() * 1e3, queue_wait.p99() * 1e3);
  os << buf;
  if (admission_wait.count() > 0) {
    std::snprintf(buf, sizeof buf, " admission p50=%.1fms p99=%.1fms",
                  admission_wait_p50() * 1e3, admission_wait_p99() * 1e3);
    os << buf;
  }
  return os.str();
}

struct AlignService::Impl {
  Impl(const index::Mem2Index& index, const ServeOptions& options, int workers)
      : index(index),
        opts(options),
        n_workers(workers),
        clock(options.clock ? options.clock : &util::Clock::real()) {}

  const index::Mem2Index& index;
  const ServeOptions opts;
  const int n_workers;
  util::Clock* const clock;

  // Registry + scheduler state; also every core's queue mutex / work cv.
  std::mutex mu;
  std::condition_variable work_cv;
  std::vector<std::shared_ptr<align::SessionCore>> live;
  std::size_t cursor = 0;  // round-robin scan start
  int reserved_batches = 0;
  bool shutdown = false;   // destructor: pool + watchdog exit
  bool admitting = true;   // shutdown(): new opens rejected, pool keeps going

  // Bounded FIFO admission queue: tickets in arrival order.  A waiter may
  // admit itself only when its ticket is at the front *and* capacity is
  // available; unregister()/timeouts notify admit_cv so the line advances.
  std::deque<std::uint64_t> open_queue;
  std::uint64_t next_ticket = 0;
  std::condition_variable admit_cv;

  // Admission counters + aggregates folded in as sessions retire.
  ServiceMetrics retired;

  std::vector<std::thread> pool;
  std::thread watchdog;
  std::condition_variable watch_cv;  // wakes the watchdog early on shutdown

  bool has_any_work_locked() const {
    for (const auto& core : live)
      if (core->has_work_locked()) return true;
    return false;
  }

  bool admissible_locked(int queue_depth) const {
    return static_cast<int>(live.size()) < opts.max_streams &&
           reserved_batches + queue_depth <= opts.max_inflight_batches;
  }

  bool all_idle_locked() const {
    for (const auto& core : live)
      if (!core->idle_locked()) return false;
    return true;
  }

  /// Next session with a queued batch, scanning round-robin from the
  /// rotating cursor: each pick takes at most one batch per session before
  /// moving on, so queue lengths — not submission aggressiveness — bound
  /// how far any client can get ahead.
  std::shared_ptr<align::SessionCore> pick_locked() {
    const std::size_t n = live.size();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = (cursor + k) % n;
      if (live[i]->has_work_locked()) {
        cursor = (i + 1) % n;
        return live[i];
      }
    }
    return nullptr;
  }

  void worker_main() {
    align::BatchWorkspace workspace;  // option-agnostic: reused across sessions
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      work_cv.wait(lk, [&] { return shutdown || has_any_work_locked(); });
      auto core = pick_locked();
      if (!core) {
        if (shutdown) break;  // spurious/raced wake with no work left
        continue;
      }
      auto item = core->pop_locked();
      lk.unlock();
      core->process(std::move(item), workspace);
      core.reset();  // drop the ref before re-locking (finish may erase it)
      lk.lock();
    }
  }

  /// Batch-progress watchdog: cancels (kDeadlineExceeded) any session whose
  /// in-flight batch has gone batch_stall_ms without a stage-boundary
  /// heartbeat.  Sessions with nothing running are never monitored, so an
  /// idle client is not a stalled one; siblings of a cancelled session are
  /// untouched and their output stays byte-identical.
  void watchdog_main() {
    const auto stall = std::chrono::milliseconds(opts.batch_stall_ms);
    const auto poll = std::max<std::chrono::nanoseconds>(
        std::chrono::milliseconds(1), stall / 4);
    std::unique_lock<std::mutex> lk(mu);
    while (!shutdown) {
      const auto now = clock->now();
      for (const auto& core : live) {
        align::CancelToken& token = core->cancel_token();
        if (core->in_flight_locked() > 0 && !token.cancelled() &&
            now - token.last_beat() >= stall) {
          ++retired.streams_cancelled;
          util::trace_instant("watchdog-fire", core->trace_id());
          core->cancel(
              align::Status::deadline_exceeded(
                  "watchdog: batch made no progress for " +
                  std::to_string(opts.batch_stall_ms) + "ms (batch_stall_ms)")
                  .with_context("watchdog"));
        }
      }
      clock->wait_until(watch_cv, lk, now + poll);
    }
  }

  /// Remove a finished session, release its reservation (waking queued
  /// opens) and fold its stats into the aggregates.
  void unregister(const std::shared_ptr<align::SessionCore>& core, bool ok) {
    {
      std::lock_guard<std::mutex> lk(mu);
      live.erase(std::remove(live.begin(), live.end(), core), live.end());
      reserved_batches -= core->options().queue_depth;
      const align::DriverStats& s = core->stats();  // stable after finalize()
      const align::StreamMetrics m = core->metrics_snapshot();
      retired.reads += s.reads;
      retired.counters += s.counters;
      retired.records += m.records;
      retired.batches += m.batches;
      retired.write_retries += m.write_retries;
      retired.batch_latency += m.batch_latency;
      retired.queue_wait += m.queue_wait;
      for (std::size_t i = 0; i < m.stage_seconds.size(); ++i)
        retired.stage_seconds[i] += m.stage_seconds[i];
      ++(ok ? retired.streams_completed : retired.streams_failed);
    }
    // Capacity freed: the front queued open (if any) can admit itself, and
    // shutdown() watches the live count shrink on the same cv.
    admit_cv.notify_all();
  }
};

struct ServiceStream::State {
  std::shared_ptr<AlignService::Impl> impl;
  std::shared_ptr<align::SessionCore> core;  // null when admission failed
  align::Status err;                         // the admission/validation error
  bool finished = false;
};

ServiceStream::ServiceStream() = default;
ServiceStream::ServiceStream(std::unique_ptr<State> state)
    : state_(std::move(state)) {}
ServiceStream::ServiceStream(ServiceStream&&) noexcept = default;
ServiceStream& ServiceStream::operator=(ServiceStream&&) noexcept = default;

ServiceStream::~ServiceStream() {
  if (state_ && !state_->finished) finish();
}

bool ServiceStream::ok() const { return status().ok(); }

align::Status ServiceStream::status() const {
  if (!state_) return align::Status::invalid("empty ServiceStream handle");
  if (state_->core) return state_->core->snapshot_status();
  return state_->err;
}

align::Status ServiceStream::submit(std::vector<seq::Read> chunk) {
  if (!state_ || !state_->core) return status();
  if (state_->finished) return align::Status::invalid("submit() after finish()");
  return state_->core->submit_owned(std::move(chunk));
}

align::Status ServiceStream::submit(std::span<const seq::Read> chunk) {
  if (!state_ || !state_->core) return status();
  if (state_->finished) return align::Status::invalid("submit() after finish()");
  return state_->core->submit_view(chunk);
}

align::Status ServiceStream::finish() {
  if (!state_ || !state_->core) {
    if (state_) state_->finished = true;
    return status();
  }
  State& st = *state_;
  if (st.finished) return st.core->snapshot_status();
  st.finished = true;

  st.core->close();
  st.core->wait_drained();  // the shared pool drains this session's queue
  st.core->finalize();
  const align::Status final = st.core->snapshot_status();
  st.impl->unregister(st.core, final.ok());
  return final;
}

void ServiceStream::cancel() {
  if (!state_ || !state_->core) return;
  state_->core->cancel(
      align::Status::cancelled("stream cancelled by caller").with_context("cancel"));
}

const align::DriverStats& ServiceStream::stats() const {
  static const align::DriverStats empty;
  return state_ && state_->core ? state_->core->stats() : empty;
}

const pair::InsertStats& ServiceStream::pair_stats() const {
  static const pair::InsertStats empty;
  return state_ && state_->core ? state_->core->pair_stats() : empty;
}

align::StreamMetrics ServiceStream::metrics() const {
  return state_ && state_->core ? state_->core->metrics_snapshot()
                                : align::StreamMetrics{};
}

AlignService::AlignService(const index::Mem2Index& index, ServeOptions options)
    : options_(options) {
  status_ = validate_serve_options(options_);
  if (!status_.ok()) return;
  int workers = options_.workers;
  if (workers == 0)
    workers = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  impl_ = std::make_shared<Impl>(index, options_, workers);
  impl_->pool.reserve(static_cast<std::size_t>(workers));
  Impl* im = impl_.get();
  for (int w = 0; w < workers; ++w)
    impl_->pool.emplace_back([im] { im->worker_main(); });
  if (options_.batch_stall_ms > 0)
    impl_->watchdog = std::thread([im] { im->watchdog_main(); });
}

AlignService::~AlignService() {
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->shutdown = true;
    impl_->admitting = false;
    for (auto& core : impl_->live)
      core->fail(align::Status::internal(
          "AlignService destroyed before stream finish()"));
  }
  impl_->work_cv.notify_all();
  impl_->admit_cv.notify_all();  // queued opens abandon with an error
  impl_->watch_cv.notify_all();
  if (impl_->watchdog.joinable()) impl_->watchdog.join();
  for (auto& t : impl_->pool)
    if (t.joinable()) t.join();
  impl_->pool.clear();
  // Outstanding handles keep impl_ alive via their State and observe the
  // failure; their queues were drained by the pool before it exited.
}

ServiceStream AlignService::open(const align::DriverOptions& options,
                                 align::SamSink& sink) {
  auto state = std::make_unique<ServiceStream::State>();
  state->impl = impl_;
  if (!status_.ok()) {
    state->err = status_;
    return ServiceStream(std::move(state));
  }
  if (align::Status st = align::validate_session(impl_->index, options);
      !st.ok()) {
    state->err = st;
    return ServiceStream(std::move(state));
  }

  Impl& im = *impl_;
  const int qd = options.queue_depth;
  std::shared_ptr<align::SessionCore> core;
  {
    std::unique_lock<std::mutex> lk(im.mu);
    if (im.shutdown || !im.admitting) {
      state->err = align::Status::invalid("open() on a shut-down AlignService");
      return ServiceStream(std::move(state));
    }
    // Immediate admission only jumps an *empty* line: with waiters queued,
    // a new arrival goes to the back so admission stays strictly FIFO.
    if (!(im.admissible_locked(qd) && im.open_queue.empty())) {
      if (im.opts.admission_timeout_ms <= 0) {
        // Fail fast (queueing disabled).  The message says what would have
        // helped: capacity frees when a stream finishes, or the caller can
        // opt into bounded waiting.
        ++im.retired.streams_rejected;
        if (static_cast<int>(im.live.size()) >= im.opts.max_streams) {
          state->err = align::Status::resource_exhausted(
              "admission denied: " + std::to_string(im.live.size()) + "/" +
              std::to_string(im.opts.max_streams) +
              " streams already open; enable admission queueing "
              "(admission_timeout_ms) or retry after a stream finishes");
        } else {
          state->err = align::Status::resource_exhausted(
              "admission denied: in-flight batch budget " +
              std::to_string(im.opts.max_inflight_batches) +
              " would be exceeded (" + std::to_string(im.reserved_batches) +
              " reserved + " + std::to_string(qd) +
              " requested); enable admission queueing "
              "(admission_timeout_ms) or retry after a stream finishes");
        }
        return ServiceStream(std::move(state));
      }
      if (static_cast<int>(im.open_queue.size()) >= im.opts.max_pending_opens) {
        ++im.retired.streams_rejected;
        state->err = align::Status::resource_exhausted(
            "admission queue full: " + std::to_string(im.open_queue.size()) +
            "/" + std::to_string(im.opts.max_pending_opens) +
            " opens already waiting; retry after a stream finishes");
        return ServiceStream(std::move(state));
      }
      const std::uint64_t ticket = im.next_ticket++;
      im.open_queue.push_back(ticket);
      ++im.retired.streams_queued;
      // pid 0: the stream has no trace id until the core is admitted.
      util::TraceSpan wait_span("admission-wait", 0);
      const auto start = im.clock->now();
      const auto deadline =
          start + std::chrono::milliseconds(im.opts.admission_timeout_ms);
      while (!(im.open_queue.front() == ticket && im.admissible_locked(qd)) &&
             im.admitting && !im.shutdown && im.clock->now() < deadline)
        im.clock->wait_until(im.admit_cv, lk, deadline);
      const bool admitted = im.open_queue.front() == ticket &&
                            im.admissible_locked(qd) && im.admitting &&
                            !im.shutdown;
      im.open_queue.erase(
          std::find(im.open_queue.begin(), im.open_queue.end(), ticket));
      wait_span.finish();
      const double waited =
          std::chrono::duration<double>(im.clock->now() - start).count();
      im.retired.admission_wait.record(waited);
      if (!admitted) {
        // Whether we timed out or the line moved on without us, the next
        // waiter may now be admissible.
        im.admit_cv.notify_all();
        ++im.retired.streams_rejected;
        if (im.shutdown || !im.admitting) {
          state->err = align::Status::resource_exhausted(
              "admission abandoned: service shutting down");
        } else {
          ++im.retired.streams_timed_out;
          state->err = align::Status::resource_exhausted(
              "admission timed out after " +
              std::to_string(im.opts.admission_timeout_ms) +
              "ms waiting for capacity (" + std::to_string(im.live.size()) +
              "/" + std::to_string(im.opts.max_streams) + " streams, " +
              std::to_string(im.reserved_batches) + "/" +
              std::to_string(im.opts.max_inflight_batches) +
              " batches reserved); retry after a stream finishes");
        }
        return ServiceStream(std::move(state));
      }
      // Admitted from the queue; let the new front re-check capacity.
      im.admit_cv.notify_all();
    }
    im.reserved_batches += qd;
    core = std::make_shared<align::SessionCore>(im.index, options, sink,
                                                im.n_workers, &im.mu,
                                                &im.work_cv, impl_, im.clock);
    im.live.push_back(core);
    ++im.retired.streams_opened;
    im.retired.peak_streams = std::max(im.retired.peak_streams,
                                       static_cast<int>(im.live.size()));
  }
  state->core = core;
  try {
    sink.write_header(align::sam_header_for(im.index, options));
  } catch (const std::exception& e) {
    core->fail(align::Status::from_exception(e).with_context("sam-header"));
  } catch (...) {
    core->fail(align::Status::internal("unknown error writing SAM header")
                   .with_context("sam-header"));
  }
  return ServiceStream(std::move(state));
}

align::Status AlignService::shutdown(std::chrono::milliseconds grace) {
  if (!impl_) return status_;
  Impl& im = *impl_;
  std::unique_lock<std::mutex> lk(im.mu);
  im.admitting = false;
  im.admit_cv.notify_all();  // queued opens abandon with kResourceExhausted

  // Phase 1: wait up to `grace` for clients to finish their streams
  // (finish() -> unregister() notifies admit_cv as the live set shrinks).
  const auto deadline = im.clock->now() + grace;
  while (!im.live.empty() && im.clock->now() < deadline)
    im.clock->wait_until(im.admit_cv, lk, deadline);
  if (im.live.empty()) return align::Status();

  // Phase 2: grace expired — cancel the stragglers.  Their handles report
  // kCancelled; their in-flight batches abort at the next stage boundary.
  std::size_t cancelled = 0;
  for (const auto& core : im.live) {
    if (!core->cancel_token().cancelled()) {
      ++im.retired.streams_cancelled;
      ++cancelled;
    }
    core->cancel(align::Status::cancelled("cancelled by service shutdown")
                     .with_context("shutdown"));
  }

  // Phase 3: wait for the cancelled sessions' queues to drain so the sinks
  // sit at batch boundaries.  Cancellation guarantees progress (workers
  // discard queued batches of a failed session), so this terminates; the
  // short re-arm keeps a FakeClock from parking us forever.
  while (!im.all_idle_locked())
    im.clock->wait_until(im.admit_cv, lk,
                         im.clock->now() + std::chrono::milliseconds(2));
  return align::Status::deadline_exceeded(
      "shutdown grace expired; cancelled " + std::to_string(cancelled) +
      " live stream(s)");
}

ServiceMetrics AlignService::metrics() const {
  ServiceMetrics m;
  if (!impl_) return m;
  std::lock_guard<std::mutex> lk(impl_->mu);
  m = impl_->retired;
  m.active_streams = static_cast<int>(impl_->live.size());
  m.pending_opens = static_cast<int>(impl_->open_queue.size());
  for (const auto& core : impl_->live) {
    // Live running totals: records/batches/counters move as batches
    // complete; a session's read count lands when it finishes.
    const align::DriverStats s = core->stats_snapshot();
    const align::StreamMetrics sm = core->metrics_snapshot();
    m.counters += s.counters;
    m.records += sm.records;
    m.batches += sm.batches;
    m.write_retries += sm.write_retries;
    m.batch_latency += sm.batch_latency;
    m.queue_wait += sm.queue_wait;
    for (std::size_t i = 0; i < sm.stage_seconds.size(); ++i)
      m.stage_seconds[i] += sm.stage_seconds[i];
  }
  return m;
}

}  // namespace mem2::serve
