// AlignService implementation: admission, the shared worker pool and the
// round-robin scheduler over per-session SessionCores (see align_service.h
// for the design).
//
// Locking: impl->mu is simultaneously the service registry lock *and*
// every session core's queue mutex (cores are constructed with it), so a
// worker holding mu sees a consistent picture of all queues while picking.
// Lock order is mu -> core state_mu; emit locks are per-core and never
// nest with mu.  Batch processing itself runs with no lock held.
#include "serve/align_service.h"

#include <algorithm>
#include <sstream>
#include <thread>

#include "align/session.h"

namespace mem2::serve {

align::Status validate_serve_options(const ServeOptions& options) {
  if (options.workers < 0)
    return align::Status::invalid("serve: workers must be >= 0 (0 = auto)");
  if (options.max_streams < 1)
    return align::Status::invalid("serve: max_streams must be >= 1");
  if (options.max_inflight_batches < 1)
    return align::Status::invalid("serve: max_inflight_batches must be >= 1");
  return align::Status();
}

std::string ServiceMetrics::summary() const {
  std::ostringstream os;
  os << "streams active=" << active_streams << " peak=" << peak_streams
     << " opened=" << streams_opened << " rejected=" << streams_rejected
     << " completed=" << streams_completed << " failed=" << streams_failed
     << " | reads=" << reads << " records=" << records
     << " batches=" << batches << " bsw_pairs=" << counters.bsw_pairs
     << " smems=" << counters.smems_found;
  return os.str();
}

struct AlignService::Impl {
  Impl(const index::Mem2Index& index, const ServeOptions& options, int workers)
      : index(index), opts(options), n_workers(workers) {}

  const index::Mem2Index& index;
  const ServeOptions opts;
  const int n_workers;

  // Registry + scheduler state; also every core's queue mutex / work cv.
  std::mutex mu;
  std::condition_variable work_cv;
  std::vector<std::shared_ptr<align::SessionCore>> live;
  std::size_t cursor = 0;  // round-robin scan start
  int reserved_batches = 0;
  bool shutdown = false;

  // Admission counters + aggregates folded in as sessions retire.
  ServiceMetrics retired;

  std::vector<std::thread> pool;

  bool has_any_work_locked() const {
    for (const auto& core : live)
      if (core->has_work_locked()) return true;
    return false;
  }

  /// Next session with a queued batch, scanning round-robin from the
  /// rotating cursor: each pick takes at most one batch per session before
  /// moving on, so queue lengths — not submission aggressiveness — bound
  /// how far any client can get ahead.
  std::shared_ptr<align::SessionCore> pick_locked() {
    const std::size_t n = live.size();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = (cursor + k) % n;
      if (live[i]->has_work_locked()) {
        cursor = (i + 1) % n;
        return live[i];
      }
    }
    return nullptr;
  }

  void worker_main() {
    align::BatchWorkspace workspace;  // option-agnostic: reused across sessions
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
      work_cv.wait(lk, [&] { return shutdown || has_any_work_locked(); });
      auto core = pick_locked();
      if (!core) {
        if (shutdown) break;  // spurious/raced wake with no work left
        continue;
      }
      auto item = core->pop_locked();
      lk.unlock();
      core->process(std::move(item), workspace);
      core.reset();  // drop the ref before re-locking (finish may erase it)
      lk.lock();
    }
  }

  /// Remove a finished session and fold its stats into the aggregates.
  void unregister(const std::shared_ptr<align::SessionCore>& core, bool ok) {
    std::lock_guard<std::mutex> lk(mu);
    live.erase(std::remove(live.begin(), live.end(), core), live.end());
    reserved_batches -= core->options().queue_depth;
    const align::DriverStats& s = core->stats();  // stable after finalize()
    const align::StreamMetrics m = core->metrics_snapshot();
    retired.reads += s.reads;
    retired.counters += s.counters;
    retired.records += m.records;
    retired.batches += m.batches;
    ++(ok ? retired.streams_completed : retired.streams_failed);
  }
};

struct ServiceStream::State {
  std::shared_ptr<AlignService::Impl> impl;
  std::shared_ptr<align::SessionCore> core;  // null when admission failed
  align::Status err;                         // the admission/validation error
  bool finished = false;
};

ServiceStream::ServiceStream() = default;
ServiceStream::ServiceStream(std::unique_ptr<State> state)
    : state_(std::move(state)) {}
ServiceStream::ServiceStream(ServiceStream&&) noexcept = default;
ServiceStream& ServiceStream::operator=(ServiceStream&&) noexcept = default;

ServiceStream::~ServiceStream() {
  if (state_ && !state_->finished) finish();
}

bool ServiceStream::ok() const { return status().ok(); }

align::Status ServiceStream::status() const {
  if (!state_) return align::Status::invalid("empty ServiceStream handle");
  if (state_->core) return state_->core->snapshot_status();
  return state_->err;
}

align::Status ServiceStream::submit(std::vector<seq::Read> chunk) {
  if (!state_ || !state_->core) return status();
  if (state_->finished) return align::Status::invalid("submit() after finish()");
  return state_->core->submit_owned(std::move(chunk));
}

align::Status ServiceStream::submit(std::span<const seq::Read> chunk) {
  if (!state_ || !state_->core) return status();
  if (state_->finished) return align::Status::invalid("submit() after finish()");
  return state_->core->submit_view(chunk);
}

align::Status ServiceStream::finish() {
  if (!state_ || !state_->core) {
    if (state_) state_->finished = true;
    return status();
  }
  State& st = *state_;
  if (st.finished) return st.core->snapshot_status();
  st.finished = true;

  st.core->close();
  st.core->wait_drained();  // the shared pool drains this session's queue
  st.core->finalize();
  const align::Status final = st.core->snapshot_status();
  st.impl->unregister(st.core, final.ok());
  return final;
}

const align::DriverStats& ServiceStream::stats() const {
  static const align::DriverStats empty;
  return state_ && state_->core ? state_->core->stats() : empty;
}

const pair::InsertStats& ServiceStream::pair_stats() const {
  static const pair::InsertStats empty;
  return state_ && state_->core ? state_->core->pair_stats() : empty;
}

align::StreamMetrics ServiceStream::metrics() const {
  return state_ && state_->core ? state_->core->metrics_snapshot()
                                : align::StreamMetrics{};
}

AlignService::AlignService(const index::Mem2Index& index, ServeOptions options)
    : options_(options) {
  status_ = validate_serve_options(options_);
  if (!status_.ok()) return;
  int workers = options_.workers;
  if (workers == 0)
    workers = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  impl_ = std::make_shared<Impl>(index, options_, workers);
  impl_->pool.reserve(static_cast<std::size_t>(workers));
  Impl* im = impl_.get();
  for (int w = 0; w < workers; ++w)
    impl_->pool.emplace_back([im] { im->worker_main(); });
}

AlignService::~AlignService() {
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->shutdown = true;
    for (auto& core : impl_->live)
      core->fail(align::Status::internal(
          "AlignService destroyed before stream finish()"));
  }
  impl_->work_cv.notify_all();
  for (auto& t : impl_->pool)
    if (t.joinable()) t.join();
  impl_->pool.clear();
  // Outstanding handles keep impl_ alive via their State and observe the
  // failure; their queues were drained by the pool before it exited.
}

ServiceStream AlignService::open(const align::DriverOptions& options,
                                 align::SamSink& sink) {
  auto state = std::make_unique<ServiceStream::State>();
  state->impl = impl_;
  if (!status_.ok()) {
    state->err = status_;
    return ServiceStream(std::move(state));
  }
  if (align::Status st = align::validate_session(impl_->index, options);
      !st.ok()) {
    state->err = st;
    return ServiceStream(std::move(state));
  }

  std::shared_ptr<align::SessionCore> core;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    if (impl_->shutdown) {
      state->err = align::Status::invalid("open() on a shut-down AlignService");
    } else if (static_cast<int>(impl_->live.size()) >=
               impl_->opts.max_streams) {
      ++impl_->retired.streams_rejected;
      state->err = align::Status::resource_exhausted(
          "admission denied: " + std::to_string(impl_->live.size()) + "/" +
          std::to_string(impl_->opts.max_streams) +
          " streams already open; retry after a stream finishes");
    } else if (impl_->reserved_batches + options.queue_depth >
               impl_->opts.max_inflight_batches) {
      ++impl_->retired.streams_rejected;
      state->err = align::Status::resource_exhausted(
          "admission denied: in-flight batch budget " +
          std::to_string(impl_->opts.max_inflight_batches) +
          " would be exceeded (" + std::to_string(impl_->reserved_batches) +
          " reserved + " + std::to_string(options.queue_depth) +
          " requested); retry after a stream finishes");
    } else {
      impl_->reserved_batches += options.queue_depth;
      core = std::make_shared<align::SessionCore>(
          impl_->index, options, sink, impl_->n_workers, &impl_->mu,
          &impl_->work_cv, impl_);
      impl_->live.push_back(core);
      ++impl_->retired.streams_opened;
      impl_->retired.peak_streams = std::max(
          impl_->retired.peak_streams, static_cast<int>(impl_->live.size()));
    }
  }
  if (core) {
    state->core = core;
    try {
      sink.write_header(align::sam_header_for(impl_->index, options));
    } catch (const std::exception& e) {
      core->fail(align::Status::from_exception(e).with_context("sam-header"));
    } catch (...) {
      core->fail(align::Status::internal("unknown error writing SAM header")
                     .with_context("sam-header"));
    }
  }
  return ServiceStream(std::move(state));
}

ServiceMetrics AlignService::metrics() const {
  ServiceMetrics m;
  if (!impl_) return m;
  std::lock_guard<std::mutex> lk(impl_->mu);
  m = impl_->retired;
  m.active_streams = static_cast<int>(impl_->live.size());
  for (const auto& core : impl_->live) {
    // Live running totals: records/batches/counters move as batches
    // complete; a session's read count lands when it finishes.
    const align::DriverStats s = core->stats_snapshot();
    const align::StreamMetrics sm = core->metrics_snapshot();
    m.counters += s.counters;
    m.records += sm.records;
    m.batches += sm.batches;
  }
  return m;
}

}  // namespace mem2::serve
