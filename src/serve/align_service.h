// AlignService — many concurrent streaming sessions over one shared index
// and one global worker pool.
//
// The standalone Stream (align/aligner.h) spawns a dedicated pool per
// session, which is wrong for a server: S sessions x W workers oversubscribe
// the machine, and a session's threads sit idle whenever its client stalls.
// AlignService inverts the ownership:
//
//   clients ──open()──► ServiceStream ──submit──► per-session SessionCore
//                                                   (bounded queue, ordered
//                                                    reassembly, sticky Status)
//                                                        ▲ pop (fair)
//                 one global worker pool ───────────────┘
//
//   - One immutable Mem2Index shared by every session; workers keep one
//     BatchWorkspace each, reused across sessions (it is option-agnostic).
//   - Fair scheduling: workers scan the live sessions round-robin from a
//     rotating cursor, taking at most one batch per pick, so a heavy client
//     cannot starve the others; each session keeps its own bounded queue
//     and back-pressure.
//   - Admission control: when max_streams sessions are live or the global
//     in-flight batch budget (sum of admitted sessions' queue_depth) would
//     be exceeded, open() either fails fast with kResourceExhausted
//     (admission_timeout_ms == 0, the default) or queues FIFO behind up to
//     max_pending_opens other waiting opens until capacity frees or the
//     timeout expires.
//   - Deadlines & lifecycle: an optional watchdog (batch_stall_ms) cancels
//     any session whose in-flight batch stops making progress
//     (kDeadlineExceeded) while its siblings run on untouched;
//     ServiceStream::cancel() aborts one session cooperatively at a batch
//     boundary; shutdown(grace) stops admission, waits for live streams to
//     drain and cancels the stragglers.
//   - Isolation: a session failure (sticky Status, queue drained, sink left
//     at a batch boundary) is invisible to its siblings; per-session
//     SwCounters (util::CounterCapture) keep even the observability stats
//     unpolluted across sessions sharing a worker thread.
//   - Output is byte-identical to a solo run of the same session because
//     batch results are chunking/thread-invariant and reassembly is
//     per-session in submission order; scheduling order cannot show.
//
// Thread contract: the service itself is thread-safe (open() and metrics()
// from anywhere); each ServiceStream follows the Stream contract of one
// producer thread.
#pragma once

#include <array>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "align/aligner.h"
#include "align/session.h"
#include "util/clock.h"
#include "util/metrics.h"

namespace mem2::serve {

struct ServeOptions {
  /// Pooled worker threads; 0 means hardware_concurrency.
  int workers = 0;
  /// Admission: max concurrently open sessions.
  int max_streams = 8;
  /// Admission: global in-flight batch budget.  Each admitted session
  /// reserves its queue_depth batches; an open() that would push the sum
  /// past this fails with kResourceExhausted.
  int max_inflight_batches = 64;
  /// Admission queueing: how long an over-capacity open() may wait for a
  /// slot before failing with kResourceExhausted.  0 (default) preserves
  /// the original fail-fast behavior — open() never blocks.
  int admission_timeout_ms = 0;
  /// Bound on simultaneously waiting opens; arrivals beyond it fail fast
  /// even when queueing is on.  Waiters are admitted strictly FIFO.
  int max_pending_opens = 16;
  /// Watchdog: cancel a session (kDeadlineExceeded) whose in-flight batch
  /// has made no progress — no stage-boundary heartbeat — for this long.
  /// 0 (default) disables the watchdog.
  int batch_stall_ms = 0;
  /// Injectable time source for admission deadlines, the watchdog and
  /// batch-latency metrics; null means the real steady clock.  Tests drive
  /// all deadline behavior with a util::FakeClock and zero real sleeps.
  util::Clock* clock = nullptr;
};

align::Status validate_serve_options(const ServeOptions& options);

/// Service-wide snapshot: admission counters plus aggregates folded from
/// every finished session and the live ones' running totals.
struct ServiceMetrics {
  int active_streams = 0;
  int peak_streams = 0;
  int pending_opens = 0;                // opens waiting in the admission queue
  std::uint64_t streams_opened = 0;
  std::uint64_t streams_rejected = 0;   // admission denials (incl. timeouts)
  std::uint64_t streams_queued = 0;     // opens that waited in the queue
  std::uint64_t streams_timed_out = 0;  // queued opens that hit the deadline
  std::uint64_t streams_cancelled = 0;  // watchdog / shutdown cancellations
  std::uint64_t streams_completed = 0;  // finished with ok()
  std::uint64_t streams_failed = 0;     // finished with a sticky error
  std::uint64_t reads = 0;
  std::uint64_t records = 0;
  std::uint64_t batches = 0;
  std::uint64_t write_retries = 0;      // transient sink retries absorbed
  util::SwCounters counters;  // merged per-session counters

  /// Admission queue wait (seconds), one observation per open() that went
  /// through the queue — admitted or timed out.  Shares the log2-bucket
  /// util::Histogram with StreamMetrics, so the service has exactly one
  /// percentile implementation.
  util::Histogram admission_wait;
  double admission_wait_p50() const { return admission_wait.p50(); }
  double admission_wait_p99() const { return admission_wait.p99(); }

  /// Per-batch distributions merged across every session, retired and
  /// live: end-to-end batch latency, queue wait, and per-stage batch
  /// seconds (indexed by util::Stage — the cost-weighted-scheduling feed).
  util::Histogram batch_latency;
  util::Histogram queue_wait;
  std::array<util::Histogram, align::StreamMetrics::kStages> stage_seconds;

  /// One-line rendering for periodic stderr snapshots.
  std::string summary() const;
};

/// One admitted session.  Move-only, same producer contract as Stream.
/// A default-constructed or rejected handle has ok() == false and reports
/// its admission Status from every call.
class ServiceStream {
 public:
  ServiceStream();  // inert handle: ok() == false
  ServiceStream(ServiceStream&&) noexcept;
  ServiceStream& operator=(ServiceStream&&) noexcept;
  /// Implicitly finishes; call finish() explicitly to observe errors.
  ~ServiceStream();

  bool ok() const;
  align::Status status() const;

  align::Status submit(std::vector<seq::Read> chunk);
  align::Status submit(std::span<const seq::Read> chunk);
  /// Drain this session's pipeline, flush its sink, release its admission
  /// reservation and fold its stats into the service aggregates.
  align::Status finish();
  /// Cooperatively cancel this session (same contract as Stream::cancel():
  /// sticky kCancelled, blocked submit() returns, in-flight batch aborts at
  /// a stage boundary, sink left at a batch boundary).  Siblings sharing
  /// the pool are unaffected.  Call finish() afterwards as usual.
  void cancel();

  const align::DriverStats& stats() const;
  const pair::InsertStats& pair_stats() const;
  align::StreamMetrics metrics() const;

 private:
  friend class AlignService;
  struct State;
  explicit ServiceStream(std::unique_ptr<State> state);
  std::unique_ptr<State> state_;
};

class AlignService {
 public:
  /// Validates options and starts the worker pool.  Construction never
  /// throws: check ok()/status() before use.
  AlignService(const index::Mem2Index& index, ServeOptions options);
  /// Fails every still-open session, drains their queues and joins the
  /// pool.  Outstanding ServiceStream handles stay safe to call (they
  /// co-own the service state) and report the shutdown error.
  ~AlignService();

  AlignService(const AlignService&) = delete;
  AlignService& operator=(const AlignService&) = delete;

  bool ok() const { return status_.ok(); }
  const align::Status& status() const { return status_; }
  const ServeOptions& options() const { return options_; }

  /// Admit one streaming session writing to `sink` (which must outlive the
  /// stream).  Per-session DriverOptions are validated against the shared
  /// index; over-admission fails fast with kResourceExhausted.  The SAM
  /// header is written on successful admission.
  ServiceStream open(const align::DriverOptions& options,
                     align::SamSink& sink);

  /// Graceful lifecycle: stop admitting (queued opens are released with
  /// kResourceExhausted), wait up to `grace` for live streams to finish,
  /// then cancel the stragglers (their handles report kCancelled) and wait
  /// for their queues to drain — so no batch is ever cut mid-write.
  /// Returns ok() when everything drained within the grace period,
  /// kDeadlineExceeded when stragglers had to be cancelled.  Idempotent;
  /// open() after shutdown() fails.  Never deadlocks: it only waits on
  /// pool-side drain progress, which cancellation guarantees.
  align::Status shutdown(std::chrono::milliseconds grace);

  ServiceMetrics metrics() const;

 private:
  friend class ServiceStream;
  struct Impl;
  std::shared_ptr<Impl> impl_;
  ServeOptions options_;
  align::Status status_;
};

}  // namespace mem2::serve
