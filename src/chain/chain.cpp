#include "chain/chain.h"

#include <algorithm>

namespace mem2::chain {

int interval_rid(const seq::Reference& ref, idx_t l_pac, idx_t rbeg, idx_t len) {
  idx_t fb = rbeg, fe = rbeg + len;
  if (fb < l_pac && fe > l_pac) return -1;  // crosses the strand boundary
  if (fb >= l_pac) {
    // Map the reverse-strand interval to forward coordinates.
    const idx_t b = 2 * l_pac - fe;
    const idx_t e = 2 * l_pac - fb;
    fb = b;
    fe = e;
  }
  if (fb < 0 || fe > ref.length()) return -1;
  auto [rid, off] = ref.locate(fb);
  (void)off;
  const auto& c = ref.contigs()[static_cast<std::size_t>(rid)];
  return fe <= c.offset + c.length ? rid : -1;
}

std::vector<Seed> seeds_from_smems(std::span<const smem::Smem> smems,
                                   const ChainOptions& opt, const SalFn& sal) {
  std::vector<Seed> seeds;
  seeds_from_smems(smems, opt, sal, seeds);
  return seeds;
}

void seeds_from_smems_batched(std::span<const smem::Smem> smems,
                              const ChainOptions& opt,
                              const index::FlatSA& sa,
                              std::vector<Seed>& out) {
  // Pass 1: sampled rows, parked in the rbeg slots they will resolve into.
  seeds_from_smems(smems, opt, [](idx_t row) { return row; }, out);

  // Pass 2: wave-prefetched gather.
  const std::size_t n = out.size();
  for (std::size_t i = 0; i < n && i < kSalWave; ++i)
    sa.prefetch(out[i].rbeg);
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kSalWave < n) sa.prefetch(out[i + kSalWave].rbeg);
    out[i].rbeg = sa.lookup(out[i].rbeg);
  }
}

double repetitive_fraction(std::span<const smem::Smem> smems, int l_query,
                           int max_occ) {
  // Union length of query intervals whose SA interval exceeds max_occ
  // (smems are sorted by qb).
  std::int64_t l_rep = 0;
  int b = 0, e = 0;
  for (const auto& m : smems) {
    if (m.bi.s <= max_occ) continue;
    if (m.qb > e) {
      l_rep += e - b;
      b = m.qb;
      e = m.qe;
    } else {
      e = std::max(e, m.qe);
    }
  }
  l_rep += e - b;
  return l_query > 0 ? static_cast<double>(l_rep) / l_query : 0.0;
}

namespace {

// bwa test_and_merge: try to append seed to chain c; returns true if the
// seed was merged (or is contained) and false if a new chain is needed.
bool test_and_merge(const ChainOptions& opt, idx_t l_pac, Chain& c,
                    const Seed& p, int seed_rid) {
  if (seed_rid != c.rid) return false;
  const Seed& last = c.seeds.back();
  const idx_t qend = last.qbeg + last.len;
  const idx_t rend = last.rbeg + last.len;
  if (p.qbeg >= c.seeds.front().qbeg && p.qbeg + p.len <= qend &&
      p.rbeg >= c.seeds.front().rbeg && p.rbeg + p.len <= rend)
    return true;  // contained seed; do nothing
  if ((c.seeds.front().rbeg < l_pac || last.rbeg < l_pac) && p.rbeg >= l_pac)
    return false;  // different strands
  const idx_t x = p.qbeg - last.qbeg;  // non-negative (seed order)
  const idx_t y = p.rbeg - last.rbeg;
  if (y >= 0 && x - y <= opt.w && y - x <= opt.w &&
      x - last.len < opt.max_chain_gap && y - last.len < opt.max_chain_gap) {
    c.seeds.push_back(p);
    return true;
  }
  return false;
}

}  // namespace

std::vector<Chain> build_chains(const seq::Reference& ref, idx_t l_pac,
                                std::span<const Seed> seeds, int l_query,
                                const ChainOptions& opt, double frac_rep) {
  (void)l_query;
  // bwa keeps chains in a btree keyed by chain pos; the lower bound of a
  // seed's rbeg is the merge candidate.  A flat key-sorted vector with
  // binary search reproduces the same lower-bound merge semantics (including
  // the minimal duplicate-key nudge) without the per-node mallocs and
  // pointer chasing of a tree — chains per read number in the tens, so the
  // O(n) insert shift is cheaper than the allocator traffic it replaces.
  struct Entry {
    idx_t key;
    Chain chain;
  };
  std::vector<Entry> tree;
  const auto key_less = [](const Entry& e, idx_t key) { return e.key < key; };
  for (const Seed& s : seeds) {
    const int rid = interval_rid(ref, l_pac, s.rbeg, s.len);
    if (rid < 0) continue;  // crosses a boundary: discarded (as in bwa)
    bool added = false;
    // upper_bound(s.rbeg) then step back = last entry with key <= s.rbeg.
    auto it = std::lower_bound(tree.begin(), tree.end(), s.rbeg + 1, key_less);
    if (it != tree.begin())
      added = test_and_merge(opt, l_pac, std::prev(it)->chain, s, rid);
    if (!added) {
      Chain c;
      c.pos = s.rbeg;
      c.rid = rid;
      c.frac_rep = static_cast<float>(frac_rep);
      c.seeds.push_back(s);
      // Duplicate key: bwa's btree keeps both; nudge the key minimally
      // (identical key assignment to the old std::map-based code).
      idx_t key = s.rbeg;
      auto pos = std::lower_bound(tree.begin(), tree.end(), key, key_less);
      while (pos != tree.end() && pos->key == key) ++key, ++pos;
      tree.insert(pos, Entry{key, std::move(c)});
    }
  }
  std::vector<Chain> chains;
  chains.reserve(tree.size());
  for (auto& e : tree) chains.push_back(std::move(e.chain));
  return chains;
}

int chain_weight(const Chain& c) {
  std::int64_t end = 0;
  int w_query = 0;
  for (const Seed& s : c.seeds) {
    if (s.qbeg >= end)
      w_query += s.len;
    else if (s.qbeg + s.len > end)
      w_query += static_cast<int>(s.qbeg + s.len - end);
    end = std::max<std::int64_t>(end, s.qbeg + s.len);
  }
  int w_ref = 0;
  end = 0;
  for (const Seed& s : c.seeds) {
    if (s.rbeg >= end)
      w_ref += s.len;
    else if (s.rbeg + s.len > end)
      w_ref += static_cast<int>(s.rbeg + s.len - end);
    end = std::max<std::int64_t>(end, s.rbeg + s.len);
  }
  return std::min(w_query, w_ref);
}

namespace {

int chn_beg(const Chain& c) { return c.seeds.front().qbeg; }
int chn_end(const Chain& c) {
  return c.seeds.back().qbeg + c.seeds.back().len;
}

}  // namespace

void filter_chains(std::vector<Chain>& chains, const ChainOptions& opt) {
  // Weight + drop underweight chains.
  std::size_t k = 0;
  for (std::size_t i = 0; i < chains.size(); ++i) {
    Chain& c = chains[i];
    c.first = -1;
    c.kept = 0;
    c.weight = chain_weight(c);
    if (c.weight >= opt.min_chain_weight) {
      if (k != i) chains[k] = std::move(c);
      ++k;
    }
  }
  chains.resize(k);
  if (chains.empty()) return;

  // Sort by weight desc (stable + deterministic tiebreaks).
  std::stable_sort(chains.begin(), chains.end(), [](const Chain& a, const Chain& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    if (a.pos != b.pos) return a.pos < b.pos;
    return chn_beg(a) < chn_beg(b);
  });

  chains[0].kept = 3;
  for (std::size_t i = 1; i < chains.size(); ++i) {
    bool large_ovlp = false;
    std::size_t j = 0;
    for (; j < i; ++j) {
      if (!chains[j].kept) continue;
      const int b_max = std::max(chn_beg(chains[j]), chn_beg(chains[i]));
      const int e_min = std::min(chn_end(chains[j]), chn_end(chains[i]));
      if (e_min > b_max) {  // overlap on the query
        const int li = chn_end(chains[i]) - chn_beg(chains[i]);
        const int lj = chn_end(chains[j]) - chn_beg(chains[j]);
        const int min_l = std::min(li, lj);
        if (e_min - b_max >= min_l * opt.mask_level && min_l < opt.max_chain_gap) {
          large_ovlp = true;
          if (chains[j].first < 0) chains[j].first = static_cast<int>(i);
          if (chains[i].weight < chains[j].weight * opt.drop_ratio &&
              chains[j].weight - chains[i].weight >= opt.min_seed_len * 2)
            break;  // dropped
        }
      }
    }
    if (j == i) chains[i].kept = large_ovlp ? 2 : 3;
  }
  // Keep the first shadowed chain of each kept chain (mapq accuracy).
  for (const auto& c : chains)
    if (c.first >= 0 && chains[static_cast<std::size_t>(c.first)].kept == 0)
      chains[static_cast<std::size_t>(c.first)].kept = 1;
  // Cap the number of partial (kept==2) chains.
  int n_partial = 0;
  for (auto& c : chains) {
    if (c.kept == 2 && ++n_partial > opt.max_chain_extend) c.kept = 0;
  }
  // Compact: drop kept==0.
  k = 0;
  for (std::size_t i = 0; i < chains.size(); ++i) {
    if (!chains[i].kept) continue;
    if (k != i) chains[k] = std::move(chains[i]);
    ++k;
  }
  chains.resize(k);
}

}  // namespace mem2::chain
