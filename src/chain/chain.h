// Seed chaining (paper §2.3 "CHAIN") — a faithful port of BWA-MEM's
// mem_chain / test_and_merge / mem_chain_flt heuristics.
//
// Seeds (SMEM occurrences located via SAL) are greedily merged into chains
// of collinear, nearby seeds; chains are weighted by non-overlapping seed
// coverage and filtered by overlap dominance.  The paper does not optimize
// this stage (Table 1: ~6%), so a single implementation serves both
// drivers — which is also what keeps their outputs identical.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "index/flat_sa.h"
#include "seq/pack.h"
#include "smem/smem_search.h"

namespace mem2::chain {

/// One seed: an exact match of query[qbeg, qbeg+len) at reference position
/// rbeg in the doubled (forward+reverse) coordinate space.
struct Seed {
  idx_t rbeg = 0;
  std::int32_t qbeg = 0;
  std::int32_t len = 0;
  std::int32_t score = 0;  // = len at creation (bwa keeps both)

  bool operator==(const Seed&) const = default;
};

struct Chain {
  idx_t pos = 0;  // rbeg of the first seed (the btree key in bwa)
  int rid = -1;   // contig id
  int weight = 0;
  int kept = 0;       // 0 dropped, 1 shadowed-kept, 2 partial, 3 primary
  int first = -1;     // first shadowed chain index (mapq accounting)
  float frac_rep = 0;
  std::vector<Seed> seeds;
};

struct ChainOptions {
  int w = 100;                  // band width (collinearity tolerance)
  int max_chain_gap = 10000;    // bwa -G companion (opt->max_chain_gap)
  int max_occ = 500;            // sample cap per SMEM interval (bwa -c)
  float mask_level = 0.50f;     // chain overlap threshold
  float drop_ratio = 0.50f;     // bwa -D
  int max_chain_extend = 1 << 30;
  int min_chain_weight = 0;     // bwa -W
  int min_seed_len = 19;
};

/// Locate the contig of [rbeg, rbeg+len) in doubled coordinates; -1 if the
/// interval crosses a contig or the strand boundary (bwa bns_intv2rid).
int interval_rid(const seq::Reference& ref, idx_t l_pac, idx_t rbeg, idx_t len);

/// Materialize seeds from SMEM intervals (the SAL stage): samples at most
/// max_occ positions per interval, in bwa's stepped order.  `sal` is any
/// row -> position callable; concrete functors/lambdas inline here, so the
/// per-row lookup costs a load, not a std::function dispatch.
template <class Sal>
void seeds_from_smems(std::span<const smem::Smem> smems, const ChainOptions& opt,
                      const Sal& sal, std::vector<Seed>& out) {
  out.clear();
  for (const auto& m : smems) {
    const idx_t s = m.bi.s;
    const idx_t step = s > opt.max_occ ? s / opt.max_occ : 1;
    idx_t count = 0;
    for (idx_t k = 0; k < s && count < opt.max_occ; k += step, ++count) {
      Seed seed;
      seed.rbeg = sal(m.bi.k + k);
      seed.qbeg = m.qb;
      seed.len = seed.score = m.len();
      out.push_back(seed);
    }
  }
}

/// Type-erased suffix-array lookup callback, kept as a compatibility shim
/// for tests and exploratory code; hot paths use the template above or the
/// batched gather below.
using SalFn = std::function<idx_t(idx_t)>;
std::vector<Seed> seeds_from_smems(std::span<const smem::Smem> smems,
                                   const ChainOptions& opt, const SalFn& sal);

/// Batched SAL (paper §4.5 with the §4.3 prefetch discipline): first
/// materialize every sampled BW row into the seed list, then resolve
/// rows -> positions against the flat SA with a wave of software prefetches
/// running kSalWave iterations ahead of the loads, so the random SA-line
/// misses overlap instead of serializing.  Output is identical to
/// seeds_from_smems over a flat-SA callable.
inline constexpr std::size_t kSalWave = 16;
void seeds_from_smems_batched(std::span<const smem::Smem> smems,
                              const ChainOptions& opt,
                              const index::FlatSA& sa,
                              std::vector<Seed>& out);

/// Fraction of the query covered by high-occurrence SMEMs (bwa's frac_rep,
/// used by the mapq model).
double repetitive_fraction(std::span<const smem::Smem> smems, int l_query,
                           int max_occ);

/// Greedy chain construction over seeds in SMEM order (bwa mem_chain).
/// Seeds whose interval crosses contig/strand boundaries are dropped.
std::vector<Chain> build_chains(const seq::Reference& ref, idx_t l_pac,
                                std::span<const Seed> seeds, int l_query,
                                const ChainOptions& opt, double frac_rep);

/// Chain weight: min(query coverage, reference coverage) by seeds
/// (bwa mem_chain_weight).
int chain_weight(const Chain& chain);

/// Weight + overlap filtering (bwa mem_chain_flt); chains are reordered by
/// decreasing weight and dropped chains removed.
void filter_chains(std::vector<Chain>& chains, const ChainOptions& opt);

}  // namespace mem2::chain
