#include "seq/genome_sim.h"

#include <algorithm>

#include "util/common.h"
#include "util/rng.h"

namespace mem2::seq {

namespace {

Code random_base(util::Xoshiro256ss& rng, double gc) {
  const double u = rng.uniform();
  if (u < gc / 2) return kG;
  if (u < gc) return kC;
  if (u < gc + (1.0 - gc) / 2) return kA;
  return kT;
}

std::vector<Code> random_sequence(util::Xoshiro256ss& rng, std::int64_t n, double gc) {
  std::vector<Code> s(static_cast<std::size_t>(n));
  for (auto& c : s) c = random_base(rng, gc);
  return s;
}

void mutate(util::Xoshiro256ss& rng, std::vector<Code>& s, double rate) {
  for (auto& c : s) {
    if (rng.chance(rate)) {
      // substitute with a *different* base to guarantee divergence
      c = static_cast<Code>((c + 1 + rng.below(3)) & 3);
    }
  }
}

}  // namespace

Reference simulate_genome(const GenomeConfig& cfg) {
  MEM2_REQUIRE(!cfg.contig_lengths.empty(), "genome needs at least one contig");
  MEM2_REQUIRE(cfg.gc_content > 0.0 && cfg.gc_content < 1.0, "gc_content in (0,1)");

  util::Xoshiro256ss rng(cfg.seed);

  // Build the repeat element library once; copies across contigs come from
  // the same library so repeats are genome-wide (like real ALUs).
  std::vector<std::vector<Code>> library;
  for (int f = 0; f < cfg.repeat_families; ++f)
    library.push_back(random_sequence(rng, cfg.repeat_element_len, cfg.gc_content));

  Reference ref;
  int contig_id = 0;
  for (std::int64_t len : cfg.contig_lengths) {
    MEM2_REQUIRE(len > 0, "contig length must be positive");
    std::vector<Code> contig = random_sequence(rng, len, cfg.gc_content);

    // Interspersed repeats: paste diverged copies of library elements.
    if (!library.empty() && cfg.repeat_fraction > 0) {
      std::int64_t budget = static_cast<std::int64_t>(static_cast<double>(len) * cfg.repeat_fraction);
      while (budget > 0) {
        const auto& elem = library[rng.below(library.size())];
        if (static_cast<std::int64_t>(elem.size()) > len) break;
        std::vector<Code> copy = elem;
        mutate(rng, copy, cfg.repeat_divergence);
        if (rng.chance(0.5)) reverse_complement_inplace(copy);
        const std::size_t pos = rng.below(static_cast<std::uint64_t>(len - static_cast<std::int64_t>(copy.size())));
        std::copy(copy.begin(), copy.end(), contig.begin() + static_cast<std::ptrdiff_t>(pos));
        budget -= static_cast<std::int64_t>(copy.size());
      }
    }

    // Tandem repeats: short-period expansions.
    if (cfg.tandem_fraction > 0) {
      std::int64_t budget = static_cast<std::int64_t>(static_cast<double>(len) * cfg.tandem_fraction);
      while (budget > 0) {
        const int period = cfg.tandem_period_min +
                           static_cast<int>(rng.below(static_cast<std::uint64_t>(
                               cfg.tandem_period_max - cfg.tandem_period_min + 1)));
        const int copies = 10 + static_cast<int>(rng.below(40));
        const std::int64_t span = static_cast<std::int64_t>(period) * copies;
        if (span >= len) break;
        std::vector<Code> unit = random_sequence(rng, period, cfg.gc_content);
        const std::size_t pos = rng.below(static_cast<std::uint64_t>(len - span));
        for (int r = 0; r < copies; ++r)
          std::copy(unit.begin(), unit.end(),
                    contig.begin() + static_cast<std::ptrdiff_t>(pos) + static_cast<std::ptrdiff_t>(r) * period);
        budget -= span;
      }
    }

    // Ambiguous runs.
    if (cfg.ambiguous_fraction > 0) {
      std::int64_t budget = static_cast<std::int64_t>(static_cast<double>(len) * cfg.ambiguous_fraction);
      while (budget > 0) {
        const std::int64_t run = 1 + static_cast<std::int64_t>(rng.below(50));
        if (run >= len) break;
        const std::size_t pos = rng.below(static_cast<std::uint64_t>(len - run));
        std::fill_n(contig.begin() + static_cast<std::ptrdiff_t>(pos), run, kAmbig);
        budget -= run;
      }
    }

    ref.add_contig_codes("chr" + std::to_string(++contig_id), contig);
  }
  return ref;
}

Reference random_genome(std::int64_t length, std::uint64_t seed) {
  GenomeConfig cfg;
  cfg.seed = seed;
  cfg.contig_lengths = {length};
  cfg.repeat_fraction = 0.0;
  cfg.tandem_fraction = 0.0;
  return simulate_genome(cfg);
}

}  // namespace mem2::seq
