// DNA alphabet handling.
//
// Bases are encoded as 0,1,2,3 = A,C,G,T (the paper's 2-bit representation);
// 4 marks an ambiguous base (N).  Complements pair A<->T and C<->G, i.e.
// comp(c) = 3 - c for c < 4, which the bidirectional FM-index update relies
// on (Algorithm 3 extends forward by searching the complement backward).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mem2::seq {

using Code = std::uint8_t;

inline constexpr Code kA = 0;
inline constexpr Code kC = 1;
inline constexpr Code kG = 2;
inline constexpr Code kT = 3;
inline constexpr Code kAmbig = 4;

/// ASCII -> code table; any character outside acgtACGT maps to kAmbig.
extern const std::array<Code, 256> kCharToCode;

/// code -> ASCII (upper case); kAmbig -> 'N'.
inline constexpr char kCodeToChar[5] = {'A', 'C', 'G', 'T', 'N'};

inline Code char_to_code(char c) {
  return kCharToCode[static_cast<unsigned char>(c)];
}

inline char code_to_char(Code c) { return kCodeToChar[c > 4 ? 4 : c]; }

/// Complement of a code; ambiguous stays ambiguous.
inline Code complement(Code c) { return c < 4 ? static_cast<Code>(3 - c) : kAmbig; }

/// Encode an ASCII sequence into codes.
std::vector<Code> encode(std::string_view ascii);

/// Decode codes into ASCII.
std::string decode(const std::vector<Code>& codes);
std::string decode(const Code* codes, std::size_t n);

/// Reverse complement, in code space.
std::vector<Code> reverse_complement(const std::vector<Code>& codes);
void reverse_complement_inplace(std::vector<Code>& codes);

/// Reverse complement of an ASCII sequence.
std::string reverse_complement_ascii(std::string_view ascii);

}  // namespace mem2::seq
