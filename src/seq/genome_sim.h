// Synthetic genome generator — the substitution for Hg38 (DESIGN.md §2).
//
// The paper indexes the first half of the human genome (~1.5 Gbp).  We have
// neither the file nor the RAM budget, so we synthesize references whose
// *structural* properties drive the same code paths:
//   - configurable GC bias (affects base composition of FM-index buckets),
//   - interspersed repeat families (ALU-like ~300 bp elements copied with
//     divergence -> large SA intervals, multi-hit seeds, chain filtering),
//   - tandem repeats (short-period microsatellites -> band adjustment and
//     z-drop paths in BSW),
//   - multiple contigs (coordinate translation, boundary rejection).
// Everything is deterministic given the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/dna.h"
#include "seq/pack.h"

namespace mem2::seq {

struct GenomeConfig {
  std::uint64_t seed = 42;
  /// Number of contigs and length of each.
  std::vector<std::int64_t> contig_lengths = {1 << 20};
  /// Probability of G or C (split evenly); human-like default.
  double gc_content = 0.41;
  /// Number of distinct repeat families seeded into the genome.
  int repeat_families = 4;
  /// Length of each repeat element (ALUs are ~300 bp).
  int repeat_element_len = 300;
  /// Fraction of the genome covered by interspersed repeat copies.
  double repeat_fraction = 0.15;
  /// Per-base divergence applied to each repeat copy.
  double repeat_divergence = 0.05;
  /// Fraction of the genome covered by tandem repeats.
  double tandem_fraction = 0.02;
  /// Tandem repeat period range [min, max].
  int tandem_period_min = 2;
  int tandem_period_max = 6;
  /// Fraction of bases turned into N runs (exercises ambiguity handling).
  double ambiguous_fraction = 0.0;
};

/// Generate a reference according to the configuration.
Reference simulate_genome(const GenomeConfig& config);

/// Convenience: single-contig uniform-random genome (tests).
Reference random_genome(std::int64_t length, std::uint64_t seed = 42);

}  // namespace mem2::seq
