#include "seq/pack.h"

#include <algorithm>

#include "util/rng.h"

namespace mem2::seq {

void PackedSequence::extract(std::size_t begin, std::size_t end, Code* out) const {
  MEM2_REQUIRE(begin <= end && end <= size_, "PackedSequence::extract out of range");
  for (std::size_t i = begin; i < end; ++i) out[i - begin] = (*this)[i];
}

std::vector<Code> PackedSequence::extract(std::size_t begin, std::size_t end) const {
  std::vector<Code> out(end - begin);
  extract(begin, end, out.data());
  return out;
}

void Reference::add_contig(const std::string& name, std::string_view ascii) {
  add_contig_codes(name, encode(ascii));
}

void Reference::add_contig_codes(const std::string& name, const std::vector<Code>& codes) {
  Contig c;
  c.name = name;
  c.offset = length();
  c.length = static_cast<idx_t>(codes.size());

  util::SplitMix64 rng(ambig_rng_state_ ^ (pac_.size() * 0x9e3779b97f4a7c15ULL));
  bool in_ambig = false;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    Code code = codes[i];
    if (code >= 4) {
      if (!in_ambig) {
        ambig_.push_back({c.offset + static_cast<idx_t>(i), c.offset + static_cast<idx_t>(i)});
        in_ambig = true;
      }
      ambig_.back().end = c.offset + static_cast<idx_t>(i) + 1;
      code = static_cast<Code>(rng.next() & 3);  // like BWA: N -> random base
    } else {
      in_ambig = false;
    }
    pac_.push_back(code);
  }
  contigs_.push_back(std::move(c));
}

std::pair<int, idx_t> Reference::locate(idx_t pos) const {
  MEM2_REQUIRE(pos >= 0 && pos < length(), "Reference::locate out of range");
  // Binary search over contig offsets.
  auto it = std::upper_bound(contigs_.begin(), contigs_.end(), pos,
                             [](idx_t p, const Contig& c) { return p < c.offset; });
  int idx = static_cast<int>(it - contigs_.begin()) - 1;
  return {idx, pos - contigs_[static_cast<std::size_t>(idx)].offset};
}

bool Reference::within_one_contig(idx_t begin, idx_t end) const {
  if (begin >= end) return true;
  auto [ci, off] = locate(begin);
  (void)off;
  const Contig& c = contigs_[static_cast<std::size_t>(ci)];
  return end <= c.offset + c.length;
}

}  // namespace mem2::seq
