// Packed reference sequence ("PAC" in BWA terminology).
//
// The reference is a set of contigs concatenated into one coordinate space.
// PackedSequence stores bases 2 bits each (the on-disk/in-memory format both
// BWA and BWA-MEM2 use for the reference during extension); Reference adds
// contig metadata and coordinate translation for SAM output.
//
// Ambiguous bases: like BWA we convert N runs into deterministic pseudo-
// random ACGT bases inside the packed sequence (so the FM-index alphabet
// stays 4-letter) and remember the ambiguous intervals for reporting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/dna.h"
#include "util/common.h"

namespace mem2::seq {

/// 2-bit packed DNA, append-only then random-access.
class PackedSequence {
 public:
  PackedSequence() = default;

  void reserve(std::size_t n) { data_.reserve((n + 3) / 4); }

  void push_back(Code c) {
    MEM2_REQUIRE(c < 4, "PackedSequence stores only ACGT codes");
    const std::size_t word = size_ >> 2;
    if (word == data_.size()) data_.push_back(0);
    data_[word] |= static_cast<std::uint8_t>(c) << ((size_ & 3) << 1);
    ++size_;
  }

  Code operator[](std::size_t i) const {
    return static_cast<Code>((data_[i >> 2] >> ((i & 3) << 1)) & 3);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const std::vector<std::uint8_t>& raw() const { return data_; }
  void assign_raw(std::vector<std::uint8_t> raw, std::size_t n) {
    data_ = std::move(raw);
    size_ = n;
    MEM2_REQUIRE(data_.size() >= (size_ + 3) / 4, "raw PAC buffer too small");
  }

  /// Copy [begin, end) into `out` (must have end-begin capacity).
  void extract(std::size_t begin, std::size_t end, Code* out) const;
  std::vector<Code> extract(std::size_t begin, std::size_t end) const;

 private:
  std::vector<std::uint8_t> data_;
  std::size_t size_ = 0;
};

struct Contig {
  std::string name;
  idx_t offset = 0;  // start in the concatenated coordinate space
  idx_t length = 0;
};

struct AmbigInterval {
  idx_t begin = 0;  // concatenated coordinates
  idx_t end = 0;
};

/// The reference genome: contigs + packed concatenated sequence.
class Reference {
 public:
  Reference() = default;

  /// Append a contig given its ASCII sequence.  N bases are replaced by
  /// deterministic pseudo-random bases (seeded per reference) and recorded.
  void add_contig(const std::string& name, std::string_view ascii);

  /// Append a contig already in code space (may contain kAmbig).
  void add_contig_codes(const std::string& name, const std::vector<Code>& codes);

  const std::vector<Contig>& contigs() const { return contigs_; }
  const PackedSequence& pac() const { return pac_; }
  const std::vector<AmbigInterval>& ambiguous() const { return ambig_; }

  /// Total concatenated length (sum of contig lengths).
  idx_t length() const { return static_cast<idx_t>(pac_.size()); }

  Code base(idx_t pos) const { return pac_[static_cast<std::size_t>(pos)]; }

  /// Map a concatenated coordinate to (contig index, offset within contig).
  /// @throws invariant_error if pos is out of range.
  std::pair<int, idx_t> locate(idx_t pos) const;

  /// True if [begin, end) stays within a single contig.
  bool within_one_contig(idx_t begin, idx_t end) const;

  /// Extract codes for [begin, end) of the concatenated space.
  std::vector<Code> slice(idx_t begin, idx_t end) const {
    return pac_.extract(static_cast<std::size_t>(begin), static_cast<std::size_t>(end));
  }

 private:
  std::vector<Contig> contigs_;
  PackedSequence pac_;
  std::vector<AmbigInterval> ambig_;
  std::uint64_t ambig_rng_state_ = 0x4e4e4e4eULL;  // "NNNN"
};

}  // namespace mem2::seq
