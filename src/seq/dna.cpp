#include "seq/dna.h"

namespace mem2::seq {

namespace {

constexpr std::array<Code, 256> make_char_table() {
  std::array<Code, 256> t{};
  for (auto& v : t) v = kAmbig;
  t['A'] = t['a'] = kA;
  t['C'] = t['c'] = kC;
  t['G'] = t['g'] = kG;
  t['T'] = t['t'] = kT;
  return t;
}

}  // namespace

const std::array<Code, 256> kCharToCode = make_char_table();

std::vector<Code> encode(std::string_view ascii) {
  std::vector<Code> out(ascii.size());
  for (std::size_t i = 0; i < ascii.size(); ++i) out[i] = char_to_code(ascii[i]);
  return out;
}

std::string decode(const Code* codes, std::size_t n) {
  std::string out(n, 'N');
  for (std::size_t i = 0; i < n; ++i) out[i] = code_to_char(codes[i]);
  return out;
}

std::string decode(const std::vector<Code>& codes) {
  return decode(codes.data(), codes.size());
}

std::vector<Code> reverse_complement(const std::vector<Code>& codes) {
  std::vector<Code> out(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i)
    out[codes.size() - 1 - i] = complement(codes[i]);
  return out;
}

void reverse_complement_inplace(std::vector<Code>& codes) {
  std::size_t i = 0, j = codes.size();
  while (i < j) {
    --j;
    if (i == j) {
      codes[i] = complement(codes[i]);
      break;
    }
    Code a = complement(codes[i]), b = complement(codes[j]);
    codes[i] = b;
    codes[j] = a;
    ++i;
  }
}

std::string reverse_complement_ascii(std::string_view ascii) {
  std::string out(ascii.size(), 'N');
  for (std::size_t i = 0; i < ascii.size(); ++i)
    out[ascii.size() - 1 - i] = code_to_char(complement(char_to_code(ascii[i])));
  return out;
}

}  // namespace mem2::seq
