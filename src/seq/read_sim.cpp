#include "seq/read_sim.h"

#include <algorithm>

#include "util/common.h"
#include "util/rng.h"

namespace mem2::seq {

std::vector<Read> simulate_reads(const Reference& ref, const ReadSimConfig& cfg) {
  MEM2_REQUIRE(cfg.read_length > 0, "read length must be positive");
  MEM2_REQUIRE(ref.length() >= cfg.read_length, "reference shorter than read length");

  util::Xoshiro256ss rng(cfg.seed);
  std::vector<Read> reads;
  reads.reserve(static_cast<std::size_t>(cfg.num_reads));

  // Over-sample the template so deletions can still fill read_length bases.
  const std::int64_t template_len = cfg.read_length + 16;

  for (std::int64_t n = 0; n < cfg.num_reads; ++n) {
    // Pick a contig weighted by length, then a start that fits the template.
    idx_t start = 0;
    int contig_idx = 0;
    for (int tries = 0;; ++tries) {
      MEM2_REQUIRE(tries < 1024, "cannot place read: contigs too short");
      const idx_t pos = static_cast<idx_t>(rng.below(static_cast<std::uint64_t>(ref.length())));
      auto [ci, off] = ref.locate(pos);
      const Contig& c = ref.contigs()[static_cast<std::size_t>(ci)];
      if (off + template_len <= c.length) {
        contig_idx = ci;
        start = pos;
        break;
      }
    }

    std::vector<Code> tpl = ref.slice(start, start + template_len);
    const bool reverse = rng.chance(0.5);
    if (reverse) reverse_complement_inplace(tpl);

    Read r;
    r.bases.reserve(static_cast<std::size_t>(cfg.read_length));
    r.qual.reserve(static_cast<std::size_t>(cfg.read_length));

    std::size_t t = 0;
    while (static_cast<int>(r.bases.size()) < cfg.read_length && t < tpl.size()) {
      if (rng.chance(cfg.deletion_rate)) {
        ++t;  // skip a template base
        continue;
      }
      if (rng.chance(cfg.insertion_rate)) {
        r.bases.push_back(code_to_char(static_cast<Code>(rng.below(4))));
        r.qual.push_back(cfg.qual_low);
        continue;
      }
      Code c = tpl[t++];
      if (rng.chance(cfg.substitution_rate)) {
        c = static_cast<Code>((c + 1 + rng.below(3)) & 3);
        r.bases.push_back(code_to_char(c));
        r.qual.push_back(cfg.qual_low);
      } else {
        r.bases.push_back(code_to_char(c));
        r.qual.push_back(cfg.qual_high);
      }
    }
    // Pad in the (rare) case deletions exhausted the template.
    while (static_cast<int>(r.bases.size()) < cfg.read_length) {
      r.bases.push_back(code_to_char(static_cast<Code>(rng.below(4))));
      r.qual.push_back(cfg.qual_low);
    }

    const Contig& c = ref.contigs()[static_cast<std::size_t>(contig_idx)];
    r.name = cfg.name_prefix + "_" + std::to_string(n) + ":" + c.name + ":" +
             std::to_string(start - c.offset) + ":" + (reverse ? "-" : "+");
    reads.push_back(std::move(r));
  }
  return reads;
}

ReadTruth parse_truth(const std::string& name) {
  ReadTruth t;
  // <prefix>_<n>:<contig>:<pos>:<strand>
  const auto c1 = name.find(':');
  if (c1 == std::string::npos) return t;
  const auto c2 = name.find(':', c1 + 1);
  if (c2 == std::string::npos) return t;
  const auto c3 = name.find(':', c2 + 1);
  if (c3 == std::string::npos || c3 + 1 >= name.size()) return t;
  t.contig = name.substr(c1 + 1, c2 - c1 - 1);
  try {
    t.pos = std::stoll(name.substr(c2 + 1, c3 - c2 - 1));
  } catch (...) {
    return t;
  }
  t.reverse = name[c3 + 1] == '-';
  t.valid = true;
  return t;
}

std::vector<DatasetSpec> paper_datasets(double scale) {
  // Paper Table 3: D1/D2 = 5e5 x 151bp, D3 = 1.25e6 x 76bp,
  // D4/D5 = 1.25e6 x 101bp.  Scaled by 1/100 * scale.
  auto n = [scale](double paper_count) {
    return std::max<std::int64_t>(1000, static_cast<std::int64_t>(paper_count / 100.0 * scale));
  };
  return {
      {"D1", 151, n(5e5)},  {"D2", 151, n(5e5)},  {"D3", 76, n(1.25e6)},
      {"D4", 101, n(1.25e6)}, {"D5", 101, n(1.25e6)},
  };
}

}  // namespace mem2::seq
