#include "seq/read_sim.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"
#include "util/rng.h"

namespace mem2::seq {

namespace {

/// wgsim-style error injection: copy template bases into a read of
/// read_length, with substitution/insertion/deletion errors and two-level
/// qualities.  Consumes the RNG in the exact order the original
/// simulate_reads loop did, so single-end streams stay bit-identical.
void apply_errors(util::Xoshiro256ss& rng, const std::vector<Code>& tpl,
                  int read_length, double sub_rate, double ins_rate,
                  double del_rate, char qual_high, char qual_low, Read& r) {
  r.bases.clear();
  r.qual.clear();
  r.bases.reserve(static_cast<std::size_t>(read_length));
  r.qual.reserve(static_cast<std::size_t>(read_length));
  std::size_t t = 0;
  while (static_cast<int>(r.bases.size()) < read_length && t < tpl.size()) {
    if (rng.chance(del_rate)) {
      ++t;  // skip a template base
      continue;
    }
    if (rng.chance(ins_rate)) {
      r.bases.push_back(code_to_char(static_cast<Code>(rng.below(4))));
      r.qual.push_back(qual_low);
      continue;
    }
    Code c = tpl[t++];
    if (rng.chance(sub_rate)) {
      c = static_cast<Code>((c + 1 + rng.below(3)) & 3);
      r.bases.push_back(code_to_char(c));
      r.qual.push_back(qual_low);
    } else {
      r.bases.push_back(code_to_char(c));
      r.qual.push_back(qual_high);
    }
  }
  // Pad in the (rare) case deletions exhausted the template.
  while (static_cast<int>(r.bases.size()) < read_length) {
    r.bases.push_back(code_to_char(static_cast<Code>(rng.below(4))));
    r.qual.push_back(qual_low);
  }
}

/// Standard normal deviate (Box-Muller).
double gauss(util::Xoshiro256ss& rng) {
  const double u1 = 1.0 - rng.uniform();
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace

std::vector<Read> simulate_reads(const Reference& ref, const ReadSimConfig& cfg) {
  MEM2_REQUIRE(cfg.read_length > 0, "read length must be positive");
  MEM2_REQUIRE(ref.length() >= cfg.read_length, "reference shorter than read length");

  util::Xoshiro256ss rng(cfg.seed);
  std::vector<Read> reads;
  reads.reserve(static_cast<std::size_t>(cfg.num_reads));

  // Over-sample the template so deletions can still fill read_length bases.
  const std::int64_t template_len = cfg.read_length + 16;

  for (std::int64_t n = 0; n < cfg.num_reads; ++n) {
    // Pick a contig weighted by length, then a start that fits the template.
    idx_t start = 0;
    int contig_idx = 0;
    for (int tries = 0;; ++tries) {
      MEM2_REQUIRE(tries < 1024, "cannot place read: contigs too short");
      const idx_t pos = static_cast<idx_t>(rng.below(static_cast<std::uint64_t>(ref.length())));
      auto [ci, off] = ref.locate(pos);
      const Contig& c = ref.contigs()[static_cast<std::size_t>(ci)];
      if (off + template_len <= c.length) {
        contig_idx = ci;
        start = pos;
        break;
      }
    }

    std::vector<Code> tpl = ref.slice(start, start + template_len);
    const bool reverse = rng.chance(0.5);
    if (reverse) reverse_complement_inplace(tpl);

    Read r;
    apply_errors(rng, tpl, cfg.read_length, cfg.substitution_rate,
                 cfg.insertion_rate, cfg.deletion_rate, cfg.qual_high,
                 cfg.qual_low, r);

    const Contig& c = ref.contigs()[static_cast<std::size_t>(contig_idx)];
    r.name = cfg.name_prefix + "_" + std::to_string(n) + ":" + c.name + ":" +
             std::to_string(start - c.offset) + ":" + (reverse ? "-" : "+");
    reads.push_back(std::move(r));
  }
  return reads;
}

std::vector<Read> simulate_pairs(const Reference& ref, const PairSimConfig& cfg) {
  MEM2_REQUIRE(cfg.read_length > 0, "read length must be positive");
  MEM2_REQUIRE(cfg.insert_mean >= cfg.read_length,
               "insert mean must cover one read");

  util::Xoshiro256ss rng(cfg.seed);
  std::vector<Read> reads;
  reads.reserve(static_cast<std::size_t>(2 * cfg.num_pairs));

  // Over-sample each mate's template so deletions can still fill it.
  const std::int64_t tl = cfg.read_length + 16;

  for (std::int64_t n = 0; n < cfg.num_pairs; ++n) {
    // Fragment length, clamped so both mate templates fit inside it.
    std::int64_t isize = static_cast<std::int64_t>(
        cfg.insert_mean + cfg.insert_std * gauss(rng) + .5);
    isize = std::max(isize, tl);

    // Place the fragment: contig weighted by length, fragment fully inside.
    idx_t start = 0;
    int contig_idx = 0;
    for (int tries = 0;; ++tries) {
      MEM2_REQUIRE(tries < 1024, "cannot place fragment: contigs too short");
      const idx_t pos =
          static_cast<idx_t>(rng.below(static_cast<std::uint64_t>(ref.length())));
      auto [ci, off] = ref.locate(pos);
      const Contig& c = ref.contigs()[static_cast<std::size_t>(ci)];
      if (off + isize <= c.length) {
        contig_idx = ci;
        start = pos;
        break;
      }
    }
    const Contig& c = ref.contigs()[static_cast<std::size_t>(contig_idx)];

    // FR orientation: one mate reads inward from each fragment end, so the
    // right-end template is always the reverse-complemented one; the
    // fragment strand only decides which mate gets which end.
    const bool frag_rev = rng.chance(0.5);
    std::vector<Code> tpl_left = ref.slice(start, start + tl);
    std::vector<Code> tpl_right = ref.slice(start + isize - tl, start + isize);
    reverse_complement_inplace(tpl_right);

    Read r1, r2;
    const std::vector<Code>& tpl1 = frag_rev ? tpl_right : tpl_left;
    const std::vector<Code>& tpl2 = frag_rev ? tpl_left : tpl_right;
    // Truth: leftmost template coordinate + strand per mate.
    const std::int64_t left_pos = start - c.offset;
    const std::int64_t right_pos = start + isize - tl - c.offset;
    const std::int64_t pos1 = frag_rev ? right_pos : left_pos;
    const std::int64_t pos2 = frag_rev ? left_pos : right_pos;
    const bool rev1 = frag_rev, rev2 = !frag_rev;

    apply_errors(rng, tpl1, cfg.read_length, cfg.substitution_rate,
                 cfg.insertion_rate, cfg.deletion_rate, cfg.qual_high,
                 cfg.qual_low, r1);
    apply_errors(rng, tpl2, cfg.read_length, cfg.substitution_rate,
                 cfg.insertion_rate, cfg.deletion_rate, cfg.qual_high,
                 cfg.qual_low, r2);

    // Damaged mates: periodic substitutions defeat exact seeding (period <
    // min_seed_len) while leaving the read SW-alignable — the mate-rescue
    // workload.
    if (cfg.damage_fraction > 0 && rng.chance(cfg.damage_fraction)) {
      const int period = std::max(2, cfg.damage_period);
      const int phase = static_cast<int>(rng.below(static_cast<std::uint64_t>(period)));
      for (int j = phase; j < static_cast<int>(r2.bases.size()); j += period) {
        const Code cur = char_to_code(r2.bases[static_cast<std::size_t>(j)]);
        const Code alt = static_cast<Code>((cur + 1 + rng.below(3)) & 3);
        r2.bases[static_cast<std::size_t>(j)] = code_to_char(alt);
        r2.qual[static_cast<std::size_t>(j)] = cfg.qual_low;
      }
    }

    const std::string name =
        cfg.name_prefix + "_" + std::to_string(n) + ":" + c.name + ":" +
        std::to_string(pos1) + ":" + (rev1 ? "-" : "+") + ":" +
        std::to_string(pos2) + ":" + (rev2 ? "-" : "+");
    r1.name = name;
    r2.name = name;
    reads.push_back(std::move(r1));
    reads.push_back(std::move(r2));
  }
  return reads;
}

ReadTruth parse_truth(const std::string& name) {
  ReadTruth t;
  // <prefix>_<n>:<contig>:<pos>:<strand>
  const auto c1 = name.find(':');
  if (c1 == std::string::npos) return t;
  const auto c2 = name.find(':', c1 + 1);
  if (c2 == std::string::npos) return t;
  const auto c3 = name.find(':', c2 + 1);
  if (c3 == std::string::npos || c3 + 1 >= name.size()) return t;
  t.contig = name.substr(c1 + 1, c2 - c1 - 1);
  try {
    t.pos = std::stoll(name.substr(c2 + 1, c3 - c2 - 1));
  } catch (...) {
    return t;
  }
  t.reverse = name[c3 + 1] == '-';
  t.valid = true;
  return t;
}

PairTruth parse_pair_truth(const std::string& name) {
  PairTruth t;
  // <prefix>_<n>:<contig>:<pos1>:<s1>:<pos2>:<s2>
  std::size_t cols[5];
  std::size_t from = 0;
  for (int i = 0; i < 5; ++i) {
    cols[i] = name.find(':', from);
    if (cols[i] == std::string::npos) return t;
    from = cols[i] + 1;
  }
  if (cols[4] + 1 >= name.size()) return t;
  t.contig = name.substr(cols[0] + 1, cols[1] - cols[0] - 1);
  try {
    t.pos1 = std::stoll(name.substr(cols[1] + 1, cols[2] - cols[1] - 1));
    t.pos2 = std::stoll(name.substr(cols[3] + 1, cols[4] - cols[3] - 1));
  } catch (...) {
    return t;
  }
  t.reverse1 = name[cols[2] + 1] == '-';
  t.reverse2 = name[cols[4] + 1] == '-';
  t.valid = true;
  return t;
}

std::vector<DatasetSpec> paper_datasets(double scale) {
  // Paper Table 3: D1/D2 = 5e5 x 151bp, D3 = 1.25e6 x 76bp,
  // D4/D5 = 1.25e6 x 101bp.  Scaled by 1/100 * scale.
  auto n = [scale](double paper_count) {
    return std::max<std::int64_t>(1000, static_cast<std::int64_t>(paper_count / 100.0 * scale));
  };
  return {
      {"D1", 151, n(5e5)},  {"D2", 151, n(5e5)},  {"D3", 76, n(1.25e6)},
      {"D4", 101, n(1.25e6)}, {"D5", 101, n(1.25e6)},
  };
}

}  // namespace mem2::seq
