// Short-read simulator — the substitution for the Broad/SRA datasets.
//
// wgsim-style: sample a position and strand uniformly from the reference,
// copy the bases, inject substitution and indel errors, emit Phred-style
// qualities.  The true origin is encoded in the read name
// (<dataset>_<n>:<contig>:<pos>:<strand>) so examples can compute mapping
// accuracy.  Deterministic given the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/pack.h"

namespace mem2::seq {

struct Read {
  std::string name;
  std::string bases;  // ASCII ACGTN
  std::string qual;   // Phred+33
};

struct ReadSimConfig {
  std::uint64_t seed = 7;
  int read_length = 151;
  std::int64_t num_reads = 10000;
  double substitution_rate = 0.008;  // ~Illumina
  double insertion_rate = 0.0002;
  double deletion_rate = 0.0002;
  /// Base quality written for correct bases / error bases.
  char qual_high = 'I';  // Q40
  char qual_low = '#';   // Q2
  std::string name_prefix = "r";
};

std::vector<Read> simulate_reads(const Reference& ref, const ReadSimConfig& config);

/// Paired-end simulation: FR fragments with a normally distributed insert
/// size.  Mates are emitted adjacent (R1 at even indices, R2 at odd) and
/// share a name carrying both mates' truth
/// (<prefix>_<n>:<contig>:<pos1>:<s1>:<pos2>:<s2>).
struct PairSimConfig {
  std::uint64_t seed = 7;
  int read_length = 101;
  std::int64_t num_pairs = 5000;
  double insert_mean = 400.0;  // outer fragment length
  double insert_std = 40.0;
  double substitution_rate = 0.008;
  double insertion_rate = 0.0002;
  double deletion_rate = 0.0002;
  /// Fraction of pairs whose R2 is "damaged": substitutions spaced every
  /// damage_period bases.  With damage_period < min_seed_len the mate has
  /// no exact seed for SMEM seeding and goes unmapped single-end, yet a
  /// banded-SW mate rescue still recovers it — the workload that makes the
  /// rescue path measurable.
  double damage_fraction = 0.0;
  int damage_period = 12;
  char qual_high = 'I';
  char qual_low = '#';
  std::string name_prefix = "p";
};

std::vector<Read> simulate_pairs(const Reference& ref, const PairSimConfig& config);

/// Parse the truth encoded in a simulated read name.
struct ReadTruth {
  std::string contig;
  std::int64_t pos = -1;  // 0-based within contig
  bool reverse = false;
  bool valid = false;
};
ReadTruth parse_truth(const std::string& read_name);

/// Truth of a simulated pair (both mates).  parse_truth on a pair name
/// yields mate 1's coordinates; this yields both.
struct PairTruth {
  std::string contig;
  std::int64_t pos1 = -1, pos2 = -1;  // 0-based within contig
  bool reverse1 = false, reverse2 = false;
  bool valid = false;
};
PairTruth parse_pair_truth(const std::string& read_name);

/// The paper's five datasets (Table 3), scaled: same read lengths, read
/// counts scaled by `scale` (1.0 -> 1/100 of the paper's counts, which keeps
/// single-thread bench runs in seconds on this container).
struct DatasetSpec {
  std::string name;
  int read_length;
  std::int64_t num_reads;
};
std::vector<DatasetSpec> paper_datasets(double scale = 1.0);

}  // namespace mem2::seq
