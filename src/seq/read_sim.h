// Short-read simulator — the substitution for the Broad/SRA datasets.
//
// wgsim-style: sample a position and strand uniformly from the reference,
// copy the bases, inject substitution and indel errors, emit Phred-style
// qualities.  The true origin is encoded in the read name
// (<dataset>_<n>:<contig>:<pos>:<strand>) so examples can compute mapping
// accuracy.  Deterministic given the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/pack.h"

namespace mem2::seq {

struct Read {
  std::string name;
  std::string bases;  // ASCII ACGTN
  std::string qual;   // Phred+33
};

struct ReadSimConfig {
  std::uint64_t seed = 7;
  int read_length = 151;
  std::int64_t num_reads = 10000;
  double substitution_rate = 0.008;  // ~Illumina
  double insertion_rate = 0.0002;
  double deletion_rate = 0.0002;
  /// Base quality written for correct bases / error bases.
  char qual_high = 'I';  // Q40
  char qual_low = '#';   // Q2
  std::string name_prefix = "r";
};

std::vector<Read> simulate_reads(const Reference& ref, const ReadSimConfig& config);

/// Parse the truth encoded in a simulated read name.
struct ReadTruth {
  std::string contig;
  std::int64_t pos = -1;  // 0-based within contig
  bool reverse = false;
  bool valid = false;
};
ReadTruth parse_truth(const std::string& read_name);

/// The paper's five datasets (Table 3), scaled: same read lengths, read
/// counts scaled by `scale` (1.0 -> 1/100 of the paper's counts, which keeps
/// single-thread bench runs in seconds on this container).
struct DatasetSpec {
  std::string name;
  int read_length;
  std::int64_t num_reads;
};
std::vector<DatasetSpec> paper_datasets(double scale = 1.0);

}  // namespace mem2::seq
