// Table 8 reproduction: where the optimized 8-bit BSW spends its time.
//
// Paper reference: Pre-processing 33%, Band adjustment I 9%, Cell
// computations 43%, Band adjustment II 15%.  Shape to reproduce: cell
// computation is well under half of the kernel; SoA conversion and the
// per-row band bookkeeping take the rest (this is the paper's explanation
// for why the 64-lane engine does not get 64x).
#include "bench_common.h"
#include "job_harvest.h"

using namespace mem2;

int main() {
  const auto index = bench::bench_index();
  const auto d3 = bench::bench_dataset(index, 2);

  align::MemOptions mopt;
  auto harvested = bench::harvest_bsw_jobs(index, d3.reads, mopt);

  std::vector<bsw::ExtendJob> jobs8;
  for (const auto& j : harvested.jobs)
    if (bsw::fits_8bit(j, mopt.ksw)) jobs8.push_back(j);
  {
    const std::size_t base = jobs8.size();
    while (jobs8.size() < base * 4)
      jobs8.insert(jobs8.end(), jobs8.begin(), jobs8.begin() + static_cast<std::ptrdiff_t>(base));
  }

  bsw::BswBatchOptions opt;
  opt.sort_by_length = true;
  bsw::BswBatchStats stats;
  std::vector<bsw::KswResult> out;
  bsw::extend_batch(jobs8, out, mopt.ksw, opt, &stats);

  const auto& bd = stats.breakdown;
  const double total = bd.total() + stats.sort_seconds;

  bench::print_header("Table 8: optimized 8-bit BSW time breakdown (" +
                      std::to_string(jobs8.size()) + " pairs)");
  bench::print_row("Component", {"time (s)", "share"});
  auto row = [&](const char* label, double v) {
    bench::print_row(label, {bench::fmt(v, 4), bench::fmt(100.0 * v / total, 1) + "%"});
  };
  row("pre-processing incl. sort (paper 33%)", bd.pre + stats.sort_seconds);
  row("band adjustment I (paper 9%)", bd.band1);
  row("cell computations (paper 43%)", bd.cells);
  row("band adjustment II (paper 15%)", bd.band2);
  bench::print_row("total", {bench::fmt(total, 4), "100%"});
  std::printf("\nengine: %s, chunks: %llu\n",
              bsw::get_engine(opt.isa, bsw::Precision::k8bit).name,
              static_cast<unsigned long long>(stats.chunks));
  return 0;
}
