// Section 4.4 ablation: the occurrence-table bucket size η and base
// encoding.  The paper argues η=32 with one-byte bases is the sweet spot:
// one bucket = one cache line, counts vectorizable with a byte compare;
// η=128 with 2-bit bases (original BWA-MEM) needs long bit-manipulation
// chains; larger byte buckets span multiple cache lines.
//
// We sweep η in {16, 32, 64, 128} for the byte layout (generic template)
// and include the production CP128 (2-bit) and CP32 (byte+AVX2) tables.
#include "bench_common.h"
#include "index/sais.h"
#include "smem/seeding_impl.h"
#include "util/prefetch.h"

using namespace mem2;

namespace {

/// Generic byte-per-base occurrence table with configurable bucket size —
/// bench-only: deliberately scalar so the sweep isolates layout effects.
template <int Eta>
class OccByteGeneric {
 public:
  static constexpr int kBucket = Eta;
  static constexpr int kBucketShift = [] {
    int s = 0;
    while ((1 << s) < Eta) ++s;
    return s;
  }();
  static_assert(1 << kBucketShift == Eta, "eta must be a power of two");

  struct Bucket {
    std::uint32_t count[4];
    std::uint8_t bases[Eta];
  };

  void build(const std::vector<seq::Code>& bwt) {
    size_ = static_cast<idx_t>(bwt.size());
    buckets_.assign(bwt.size() / Eta + 1, Bucket{});
    std::uint32_t running[4] = {0, 0, 0, 0};
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      for (int c = 0; c < 4; ++c) buckets_[b].count[c] = running[c];
      for (int r = 0; r < Eta; ++r) {
        const std::size_t pos = b * Eta + static_cast<std::size_t>(r);
        if (pos >= bwt.size()) break;
        buckets_[b].bases[r] = bwt[pos];
        ++running[bwt[pos]];
      }
    }
  }

  idx_t occ(int c, idx_t j) const {
    const Bucket& bkt = buckets_[static_cast<std::size_t>(j >> kBucketShift)];
    const int y = static_cast<int>(j & (Eta - 1));
    int n = 0;
    for (int i = 0; i < y; ++i) n += bkt.bases[i] == c;
    return static_cast<idx_t>(bkt.count[c]) + n;
  }

  void occ4(idx_t j, idx_t out[4]) const {
    const Bucket& bkt = buckets_[static_cast<std::size_t>(j >> kBucketShift)];
    const int y = static_cast<int>(j & (Eta - 1));
    int n[4] = {0, 0, 0, 0};
    for (int i = 0; i < y; ++i) ++n[bkt.bases[i]];
    for (int c = 0; c < 4; ++c) out[c] = static_cast<idx_t>(bkt.count[c]) + n[c];
  }

  void prefetch(idx_t j) const {
    util::prefetch_r(&buckets_[static_cast<std::size_t>(j >> kBucketShift)]);
  }

  idx_t size() const { return size_; }
  std::size_t memory_bytes() const { return buckets_.size() * sizeof(Bucket); }

 private:
  std::vector<Bucket> buckets_;
  idx_t size_ = 0;
};

struct Row {
  std::string name;
  double seconds;
  double bytes_per_base;
  std::uint64_t smems;
};

template <class Fm>
Row run_smem(const char* name, const Fm& fm, const std::vector<seq::Read>& reads,
             double mem_bytes, idx_t text_len) {
  smem::SmemWorkspace ws;
  std::vector<smem::Smem> out;
  smem::SeedingOptions sopt;
  const util::PrefetchPolicy pf{true};
  Row row{name, 0, mem_bytes / static_cast<double>(text_len), 0};
  util::Timer t;
  for (const auto& read : reads) {
    std::vector<seq::Code> q(read.bases.size());
    for (std::size_t i = 0; i < q.size(); ++i) q[i] = seq::char_to_code(read.bases[i]);
    smem::collect_smems(fm, q, sopt, out, ws, pf);
    row.smems += out.size();
  }
  row.seconds = t.seconds();
  return row;
}

}  // namespace

int main() {
  const auto index = bench::bench_index();
  const auto d2 = bench::bench_dataset(index, 1);

  // Rebuild the BWT once for the generic tables.
  std::vector<seq::Code> fwd(static_cast<std::size_t>(index.ref().length()));
  index.ref().pac().extract(0, fwd.size(), fwd.data());
  const auto text = index::with_reverse_complement(fwd);
  const auto sa = index::build_suffix_array(text);
  const auto bwt = index::derive_bwt(text, sa);

  std::vector<Row> rows;
  rows.push_back(run_smem("CP128 2-bit (original bwa)", index.fm128(), d2.reads,
                          static_cast<double>(index.fm128().memory_bytes()),
                          index.seq_len()));
  rows.push_back(run_smem("CP32 byte + SIMD (paper)", index.fm32(), d2.reads,
                          static_cast<double>(index.fm32().memory_bytes()),
                          index.seq_len()));

  auto run_generic = [&](auto tag, const char* name) {
    using Occ = decltype(tag);
    index::FmIndexT<Occ> fm;
    fm.build(bwt);
    rows.push_back(run_smem(name, fm, d2.reads,
                            static_cast<double>(fm.memory_bytes()), index.seq_len()));
  };
  run_generic(OccByteGeneric<16>{}, "byte eta=16 scalar");
  run_generic(OccByteGeneric<32>{}, "byte eta=32 scalar");
  run_generic(OccByteGeneric<64>{}, "byte eta=64 scalar");
  run_generic(OccByteGeneric<128>{}, "byte eta=128 scalar");

  bench::print_header("Sec 4.4 ablation: occ bucket size / encoding (SMEM kernel, D2)");
  bench::print_row("Layout", {"time (s)", "B/base", "speedup"});
  for (const auto& r : rows) {
    bench::print_row(r.name.c_str(),
                     {bench::fmt(r.seconds, 2), bench::fmt(r.bytes_per_base, 2),
                      bench::fmt(rows[0].seconds / r.seconds, 2) + "x"});
    if (r.smems != rows[0].smems) {
      std::printf("ERROR: SMEM output differs for %s\n", r.name.c_str());
      return 1;
    }
  }
  std::printf("\nidentical SMEM output across all layouts: yes\n");
  return 0;
}
