// Table 1 reproduction: single-thread run-time profile of the BASELINE
// (original-BWA-MEM-style) pipeline on the D1 and D4 dataset analogs.
//
// Paper reference (Table 1):        D1      D4
//   SMEM                           21.5%   44.4%
//   SAL                            18.0%   15.5%
//   CHAIN                           6.0%    5.9%
//   BSW pre-processing              4.7%    4.9%
//   BSW                            47.2%   26.4%
//   SAM-FORM                        2.5%    2.9%
// The shape to reproduce: SMEM+SAL+BSW >= ~85% of total; BSW share higher
// on the longer-read D1, SMEM share higher on shorter-read D4.
#include "align/aligner.h"
#include "bench_common.h"

using namespace mem2;

int main() {
  const auto index = bench::bench_index();

  bench::print_header(
      "Table 1: single-thread stage profile of baseline BWA-MEM model");
  bench::print_row("Stage", {"D1", "D4"});

  align::DriverOptions opt;
  opt.mode = align::Mode::kBaseline;
  opt.threads = 1;

  align::DriverStats stats_d1, stats_d4;
  const auto d1 = bench::bench_dataset(index, 0);
  const auto d4 = bench::bench_dataset(index, 3);
  const align::Aligner aligner(index, opt);
  align::CollectSamSink sink_d1, sink_d4;
  bench::require_ok(aligner.align(d1.reads, sink_d1, &stats_d1));
  bench::require_ok(aligner.align(d4.reads, sink_d4, &stats_d4));

  const double t1 = stats_d1.stages.total();
  const double t4 = stats_d4.stages.total();
  double kernels1 = 0, kernels4 = 0;
  for (int s = 0; s < static_cast<int>(util::Stage::kCount); ++s) {
    const auto stage = static_cast<util::Stage>(s);
    const double p1 = 100.0 * stats_d1.stages[stage] / t1;
    const double p4 = 100.0 * stats_d4.stages[stage] / t4;
    bench::print_row(std::string(util::stage_name(stage)).c_str(),
                     {bench::fmt(p1) + "%", bench::fmt(p4) + "%"});
    if (stage == util::Stage::kSmem || stage == util::Stage::kSal ||
        stage == util::Stage::kBsw) {
      kernels1 += p1;
      kernels4 += p4;
    }
  }
  bench::print_row("total run-time (s)",
                   {bench::fmt(t1), bench::fmt(t4)});
  bench::print_row("three-kernel share (paper: 86.5/85.7)",
                   {bench::fmt(kernels1) + "%", bench::fmt(kernels4) + "%"});
  std::printf("\nreads: D1=%zu x %d bp, D4=%zu x %d bp\n", d1.reads.size(),
              d1.read_length, d4.reads.size(), d4.read_length);
  return 0;
}
