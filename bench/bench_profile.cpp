// Table 1 reproduction: single-thread run-time profile of the BASELINE
// (original-BWA-MEM-style) pipeline on the D1 and D4 dataset analogs.
//
// Paper reference (Table 1):        D1      D4
//   SMEM                           21.5%   44.4%
//   SAL                            18.0%   15.5%
//   CHAIN                           6.0%    5.9%
//   BSW pre-processing              4.7%    4.9%
//   BSW                            47.2%   26.4%
//   SAM-FORM                        2.5%    2.9%
// The shape to reproduce: SMEM+SAL+BSW >= ~85% of total; BSW share higher
// on the longer-read D1, SMEM share higher on shorter-read D4.
//
// The table is derived from the span tracer (util::Tracer::aggregate(),
// exact per-name totals that survive ring wraparound) rather than the
// StageTimes accumulator — the same instrumentation a production run
// exports — and the run writes BENCH_pipeline_trace.json, loadable in
// chrome://tracing or Perfetto.  The StageTimes total is printed as a
// cross-check; the two views must agree to within timer overhead.
#include <map>
#include <string>

#include "align/aligner.h"
#include "bench_common.h"
#include "util/trace.h"

using namespace mem2;

namespace {

std::map<std::string, double> span_totals() {
  std::map<std::string, double> m;
  for (const auto& a : util::Tracer::instance().aggregate())
    m[a.name] = a.seconds();
  return m;
}

double span_secs(const std::map<std::string, double>& m,
                 const std::string& key) {
  const auto it = m.find(key);
  return it == m.end() ? 0.0 : it->second;
}

}  // namespace

int main() {
  const auto index = bench::bench_index();

  bench::print_header(
      "Table 1: single-thread stage profile of baseline BWA-MEM model");
  bench::print_row("Stage", {"D1", "D4"});

  align::DriverOptions opt;
  opt.mode = align::Mode::kBaseline;
  opt.threads = 1;

  align::DriverStats stats_d1, stats_d4;
  const auto d1 = bench::bench_dataset(index, 0);
  const auto d4 = bench::bench_dataset(index, 3);
  const align::Aligner aligner(index, opt);
  align::CollectSamSink sink_d1, sink_d4;

  // Per-read baseline spans overflow the default ring on full-size
  // datasets; a bigger window keeps more of the trace (aggregates are
  // exact either way).
  auto& tracer = util::Tracer::instance();
  tracer.set_ring_capacity(std::size_t{1} << 18);
  tracer.enable();
  bench::require_ok(aligner.align(d1.reads, sink_d1, &stats_d1));
  const auto spans_d1 = span_totals();
  bench::require_ok(aligner.align(d4.reads, sink_d4, &stats_d4));
  tracer.disable();
  auto spans_d4 = span_totals();  // both runs; subtract D1's share
  for (auto& [name, seconds] : spans_d4) seconds -= span_secs(spans_d1, name);

  // Span -> stage rows.  In the baseline driver the per-kernel "bsw"
  // spans nest inside the per-read "bsw-pre" span, so the exclusive
  // pre-processing time is the difference.
  struct Row {
    const char* label;
    double d1, d4;
    bool kernel;  // counts toward the three-kernel share
  };
  const double bsw1 = span_secs(spans_d1, "bsw"), bsw4 = span_secs(spans_d4, "bsw");
  const Row rows[] = {
      {"SMEM", span_secs(spans_d1, "smem"), span_secs(spans_d4, "smem"), true},
      {"SAL", span_secs(spans_d1, "sal"), span_secs(spans_d4, "sal"), true},
      {"CHAIN", span_secs(spans_d1, "chain"), span_secs(spans_d4, "chain"), false},
      {"BSW-PRE", span_secs(spans_d1, "bsw-pre") - bsw1,
       span_secs(spans_d4, "bsw-pre") - bsw4, false},
      {"BSW", bsw1, bsw4, true},
      {"SAM", span_secs(spans_d1, "sam-emit"), span_secs(spans_d4, "sam-emit"), false},
  };
  double t1 = 0, t4 = 0;
  for (const Row& r : rows) {
    t1 += r.d1;
    t4 += r.d4;
  }
  double kernels1 = 0, kernels4 = 0;
  for (const Row& r : rows) {
    const double p1 = 100.0 * r.d1 / t1;
    const double p4 = 100.0 * r.d4 / t4;
    bench::print_row(r.label, {bench::fmt(p1) + "%", bench::fmt(p4) + "%"});
    if (r.kernel) {
      kernels1 += p1;
      kernels4 += p4;
    }
  }
  bench::print_row("total traced (s)", {bench::fmt(t1), bench::fmt(t4)});
  bench::print_row("StageTimes cross-check (s)",
                   {bench::fmt(stats_d1.stages.total()),
                    bench::fmt(stats_d4.stages.total())});
  bench::print_row("three-kernel share (paper: 86.5/85.7)",
                   {bench::fmt(kernels1) + "%", bench::fmt(kernels4) + "%"});
  std::printf("\nreads: D1=%zu x %d bp, D4=%zu x %d bp\n", d1.reads.size(),
              d1.read_length, d4.reads.size(), d4.read_length);

  if (tracer.write_chrome_trace_file("BENCH_pipeline_trace.json"))
    std::printf("wrote BENCH_pipeline_trace.json (%llu events, %llu dropped)\n",
                static_cast<unsigned long long>(tracer.recorded()),
                static_cast<unsigned long long>(tracer.dropped()));
  return 0;
}
