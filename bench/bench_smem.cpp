// Table 4 reproduction: the SMEM kernel in its three configurations on a
// 60k-read analog of D2.
//
//   Original                    = CP128 occ table, no software prefetch
//   Optimized minus prefetching = CP32 occ table, no software prefetch
//   Optimized                   = CP32 occ table + software prefetch
//
// Paper reference (Table 4): instructions 17,117M -> 7,880M -> 8,160M;
// LLC misses 23.9M -> 29.7M -> 9.5M; time 4.20s -> 2.79s -> 2.10s (2x).
// Shape to reproduce: CP32 roughly halves the work per extension; dropping
// prefetch *increases* miss latency for CP32 (smaller buckets = less
// incidental locality); prefetch recovers it; end-to-end ~2x.
#include "bench_common.h"
#include "smem/seeding.h"
#include "util/perf_counters.h"

using namespace mem2;

namespace {

struct Config {
  const char* name;
  bool cp32;
  bool prefetch;
};

struct Run {
  double seconds = 0;
  util::SwCounters ctr;
  util::PerfSample hw;
  std::uint64_t smems = 0;
};

Run run_config(const index::Mem2Index& index, const std::vector<seq::Read>& reads,
               const Config& cfg) {
  smem::SmemWorkspace ws;
  std::vector<smem::Smem> out;
  smem::SeedingOptions sopt;
  const util::PrefetchPolicy pf{cfg.prefetch};

  util::tls_counters().reset();
  util::PerfCounters perf;
  Run run;
  util::Timer t;
  perf.start();
  for (const auto& read : reads) {
    std::vector<seq::Code> q(read.bases.size());
    for (std::size_t i = 0; i < q.size(); ++i) q[i] = seq::char_to_code(read.bases[i]);
    if (cfg.cp32)
      smem::collect_smems(index.fm32(), q, sopt, out, ws, pf);
    else
      smem::collect_smems(index.fm128(), q, sopt, out, ws, pf);
    run.smems += out.size();
  }
  run.hw = perf.stop();
  run.seconds = t.seconds();
  run.ctr = util::tls_counters();
  return run;
}

}  // namespace

int main() {
  const auto index = bench::bench_index();
  // Paper: 60,000 reads from D2; our D2 analog scaled to 60k * scale / 10.
  auto d2 = bench::bench_dataset(index, 1);

  const Config configs[3] = {
      {"Original (CP128)", false, false},
      {"Opt minus s/w prefetch (CP32)", true, false},
      {"Optimized (CP32+prefetch)", true, true},
  };
  Run runs[3];
  for (int i = 0; i < 3; ++i) runs[i] = run_config(index, d2.reads, configs[i]);

  bench::print_header("Table 4: SMEM kernel, single thread (D2 analog, " +
                      std::to_string(d2.reads.size()) + " reads)");
  bench::print_row("Counter", {"Original", "Opt-noPF", "Optimized"});
  auto row_u64 = [&](const char* label, auto getter) {
    bench::print_row(label, {bench::fmt_int(getter(runs[0])), bench::fmt_int(getter(runs[1])),
                             bench::fmt_int(getter(runs[2]))});
  };
  row_u64("occ bucket loads (x1e3)",
          [](const Run& r) { return r.ctr.occ_bucket_loads / 1000; });
  row_u64("backward extensions (x1e3)",
          [](const Run& r) { return r.ctr.backward_exts / 1000; });
  row_u64("forward extensions (x1e3)",
          [](const Run& r) { return r.ctr.forward_exts / 1000; });
  row_u64("software prefetches (x1e3)",
          [](const Run& r) { return r.ctr.prefetches / 1000; });
  row_u64("SMEMs found (x1e3)", [](const Run& r) { return r.ctr.smems_found / 1000; });
  if (runs[0].hw.valid) {
    row_u64("instructions (x1e6) [hw]",
            [](const Run& r) { return r.hw.instructions / 1000000; });
    row_u64("cache misses (x1e3) [hw]",
            [](const Run& r) { return r.hw.cache_misses / 1000; });
    row_u64("cycles (x1e6) [hw]", [](const Run& r) { return r.hw.cycles / 1000000; });
  } else {
    std::printf("(hardware counters unavailable in this container; "
                "software proxies above)\n");
  }
  bench::print_row("time (s)", {bench::fmt(runs[0].seconds), bench::fmt(runs[1].seconds),
                                bench::fmt(runs[2].seconds)});
  bench::print_row("speedup vs original (paper: 1.00/1.51/2.00)",
                   {bench::fmt(1.0),
                    bench::fmt(runs[0].seconds / runs[1].seconds),
                    bench::fmt(runs[0].seconds / runs[2].seconds)});

  // Output-identity spot check across configurations.
  if (runs[0].smems != runs[1].smems || runs[1].smems != runs[2].smems) {
    std::printf("ERROR: SMEM counts differ across configurations!\n");
    return 1;
  }
  std::printf("\nidentical SMEM sets across all three configurations: yes\n");
  return 0;
}
