// Table 4 reproduction plus the interleaved-executor extension: the SMEM
// kernel in its scalar configurations and with K FM-index walks in flight.
//
//   Original                    = CP128 occ table, no software prefetch
//   Optimized minus prefetching = CP32 occ table, no software prefetch
//   Optimized                   = CP32 occ table + software prefetch
//   Interleaved KN              = CP32 + prefetch, N walks in lockstep
//                                 (SmemExecutor; the paper's batched-
//                                 prefetch discipline, §4.3)
//   Interleaved K8-noPF         = interleaving without the prefetches —
//                                 isolates rotation overhead from latency
//                                 hiding
//
// Paper reference (Table 4): instructions 17,117M -> 7,880M -> 8,160M;
// LLC misses 23.9M -> 29.7M -> 9.5M; time 4.20s -> 2.79s -> 2.10s (2x).
// The interleaved rows extend the table beyond the paper: a dependent Occ
// chain can only hide its misses behind *other reads'* work, which is what
// K>1 buys.  Emits BENCH_smem_interleave.json for the perf trajectory.
//
// Flags: --smoke caps the workload for CI smoke runs (still writes JSON).
#include <cstring>

#include "bench_common.h"
#include "smem/smem_executor.h"
#include "util/perf_counters.h"

using namespace mem2;

namespace {

struct Config {
  const char* name;
  const char* key;    // JSON identifier
  bool cp32;
  bool prefetch;
  int inflight;       // 0 = scalar collect_smems loop
};

struct Run {
  double seconds = 1e30;  // min over reps
  util::SwCounters ctr;
  util::PerfSample hw;
  std::size_t smems = 0;
  std::uint64_t hash = 0;  // FNV-1a over every (qb, qe, k, s)
};

std::uint64_t smem_hash(std::uint64_t h, const std::vector<smem::Smem>& v) {
  for (const auto& m : v) {
    h = (h ^ static_cast<std::uint64_t>(m.qb * 131 + m.qe)) * 1099511628211ull;
    h = (h ^ static_cast<std::uint64_t>(m.bi.k)) * 1099511628211ull;
    h = (h ^ static_cast<std::uint64_t>(m.bi.s)) * 1099511628211ull;
  }
  return h;
}

/// One configuration's reusable measurement state.  Reps are driven
/// round-robin across all runners (rep 0 of every config, then rep 1, ...)
/// so slow machine-level drift on a shared box biases every configuration
/// equally instead of whichever ran last.
class Runner {
 public:
  Runner(const index::Mem2Index& index,
         const std::vector<std::vector<seq::Code>>& queries, const Config& cfg)
      : index_(index), queries_(queries), cfg_(cfg),
        ex_(cfg.inflight > 0 ? cfg.inflight : 1), outs_(queries.size()),
        refs_(queries.size()) {
    for (std::size_t i = 0; i < queries.size(); ++i)
      refs_[i] = smem::QueryRef{queries[i], &outs_[i]};
  }

  void once() {
    const smem::SeedingOptions sopt;
    const util::PrefetchPolicy pf{cfg_.prefetch};
    if (cfg_.inflight > 0) {
      if (cfg_.cp32)
        ex_.collect(index_.fm32(), refs_, sopt, pf);
      else
        ex_.collect(index_.fm128(), refs_, sopt, pf);
    } else {
      for (std::size_t i = 0; i < queries_.size(); ++i) {
        if (cfg_.cp32)
          smem::collect_smems(index_.fm32(), queries_[i], sopt, outs_[i], ws_, pf);
        else
          smem::collect_smems(index_.fm128(), queries_[i], sopt, outs_[i], ws_, pf);
      }
    }
  }

  void rep() {
    util::PerfCounters perf;
    util::tls_counters().reset();
    perf.start();
    util::Timer t;
    once();
    const double seconds = t.seconds();
    const util::PerfSample hw = perf.stop();
    if (seconds < run_.seconds) {  // counters travel with the rep we report
      run_.seconds = seconds;
      run_.hw = hw;
      run_.ctr = util::tls_counters();
    }
  }

  Run finish() {
    run_.smems = 0;
    run_.hash = 0;
    for (const auto& o : outs_) {
      run_.smems += o.size();
      run_.hash = smem_hash(run_.hash, o);
    }
    return run_;
  }

 private:
  const index::Mem2Index& index_;
  const std::vector<std::vector<seq::Code>>& queries_;
  Config cfg_;
  smem::SmemWorkspace ws_;
  smem::SmemExecutor ex_;
  std::vector<std::vector<smem::Smem>> outs_;
  std::vector<smem::QueryRef> refs_;
  Run run_;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  const auto index = bench::bench_index();
  // Paper: 60,000 reads from D2; our D2 analog scaled to 60k * scale / 100.
  auto d2 = bench::bench_dataset(index, 1);
  if (smoke && d2.reads.size() > 200) d2.reads.resize(200);
  const int reps = smoke ? 1 : 5;

  std::vector<std::vector<seq::Code>> queries(d2.reads.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const std::string& bases = d2.reads[i].bases;
    queries[i].resize(bases.size());
    for (std::size_t j = 0; j < bases.size(); ++j)
      queries[i][j] = seq::char_to_code(bases[j]);
  }

  const Config configs[] = {
      {"Original (CP128)", "cp128_scalar", false, false, 0},
      {"Opt minus s/w prefetch (CP32)", "cp32_nopf", true, false, 0},
      {"Optimized (CP32+prefetch)", "cp32_pf", true, true, 0},
      {"Interleaved K4", "cp32_pf_k4", true, true, 4},
      {"Interleaved K8", "cp32_pf_k8", true, true, 8},
      {"Interleaved K16", "cp32_pf_k16", true, true, 16},
      {"Interleaved K8 (no prefetch)", "cp32_nopf_k8", true, false, 8},
  };
  constexpr int kNum = static_cast<int>(std::size(configs));
  constexpr int kScalarOpt = 2;  // "Optimized" — the interleave baseline
  std::vector<Runner> runners;
  runners.reserve(kNum);
  for (const Config& cfg : configs) runners.emplace_back(index, queries, cfg);
  for (auto& r : runners) r.once();  // warm-up: page the tables, grow buffers
  for (int rep = 0; rep < reps; ++rep)
    for (auto& r : runners) r.rep();  // round-robin: drift hits all equally
  Run runs[kNum];
  for (int i = 0; i < kNum; ++i) runs[i] = runners[static_cast<std::size_t>(i)].finish();

  bench::print_header("Table 4: SMEM kernel, single thread (D2 analog, " +
                      std::to_string(d2.reads.size()) + " reads)");
  bench::print_row("Counter", {"Original", "Opt-noPF", "Optimized"});
  auto row_u64 = [&](const char* label, auto getter) {
    bench::print_row(label, {bench::fmt_int(getter(runs[0])), bench::fmt_int(getter(runs[1])),
                             bench::fmt_int(getter(runs[2]))});
  };
  row_u64("occ bucket loads (x1e3)",
          [](const Run& r) { return r.ctr.occ_bucket_loads / 1000; });
  row_u64("backward extensions (x1e3)",
          [](const Run& r) { return r.ctr.backward_exts / 1000; });
  row_u64("forward extensions (x1e3)",
          [](const Run& r) { return r.ctr.forward_exts / 1000; });
  row_u64("software prefetches (x1e3)",
          [](const Run& r) { return r.ctr.prefetches / 1000; });
  row_u64("SMEMs found (x1e3)", [](const Run& r) { return r.ctr.smems_found / 1000; });
  if (runs[0].hw.valid) {
    row_u64("instructions (x1e6) [hw]",
            [](const Run& r) { return r.hw.instructions / 1000000; });
    row_u64("cache misses (x1e3) [hw]",
            [](const Run& r) { return r.hw.cache_misses / 1000; });
    row_u64("cycles (x1e6) [hw]", [](const Run& r) { return r.hw.cycles / 1000000; });
  } else {
    std::printf("(hardware counters unavailable in this container; "
                "software proxies above)\n");
  }
  bench::print_row("time (s)", {bench::fmt(runs[0].seconds, 4), bench::fmt(runs[1].seconds, 4),
                                bench::fmt(runs[2].seconds, 4)});
  bench::print_row("speedup vs original (paper: 1.00/1.51/2.00)",
                   {bench::fmt(1.0),
                    bench::fmt(runs[0].seconds / runs[1].seconds),
                    bench::fmt(runs[0].seconds / runs[2].seconds)});

  bench::print_header("Interleaved executor (K in-flight walks per thread)");
  bench::print_row("Config", {"time (s)", "vs Optimized", "identical"});
  bool all_identical = true;
  for (int i = 0; i < kNum; ++i) {
    const bool same = runs[i].hash == runs[kScalarOpt].hash &&
                      runs[i].smems == runs[kScalarOpt].smems;
    all_identical &= same;
    bench::print_row(configs[i].name,
                     {bench::fmt(runs[i].seconds, 4),
                      bench::fmt(runs[kScalarOpt].seconds / runs[i].seconds, 2) + "x",
                      same ? "yes" : "NO"});
  }

  if (std::FILE* f = std::fopen("BENCH_smem_interleave.json", "w")) {
    std::fprintf(f, "{\n  \"bench\": \"smem_interleave\",\n");
    std::fprintf(f, "  \"reads\": %zu,\n  \"reps\": %d,\n  \"smoke\": %s,\n",
                 d2.reads.size(), reps, smoke ? "true" : "false");
    std::fprintf(f, "  \"all_outputs_identical\": %s,\n",
                 all_identical ? "true" : "false");
    std::fprintf(f, "  \"configs\": [\n");
    for (int i = 0; i < kNum; ++i) {
      std::fprintf(f,
                   "    {\"key\": \"%s\", \"cp32\": %s, \"prefetch\": %s, "
                   "\"inflight\": %d, \"seconds\": %.6f, "
                   "\"speedup_vs_scalar_prefetch\": %.3f}%s\n",
                   configs[i].key, configs[i].cp32 ? "true" : "false",
                   configs[i].prefetch ? "true" : "false", configs[i].inflight,
                   runs[i].seconds, runs[kScalarOpt].seconds / runs[i].seconds,
                   i + 1 < kNum ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_smem_interleave.json\n");
  }

  if (!all_identical) {
    std::printf("ERROR: SMEM sets differ across configurations!\n");
    return 1;
  }
  std::printf("identical SMEM sets across all %d configurations: yes\n", kNum);
  return 0;
}
