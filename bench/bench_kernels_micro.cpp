// Google-benchmark microbenchmarks for the core kernels: occurrence
// counting (CP128 vs CP32 scalar/AVX2), SAL (sampled vs flat), and the BSW
// engines across ISAs and precisions.  Complements the table-oriented
// binaries with statistically robust per-op numbers.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "bsw/bsw_batch.h"
#include "index/sais.h"
#include "util/rng.h"

using namespace mem2;

namespace {

struct MicroFixture {
  index::Mem2Index index;
  std::vector<idx_t> rows;
  std::vector<std::vector<seq::Code>> queries, targets;
  std::vector<bsw::ExtendJob> jobs;

  MicroFixture() {
    seq::GenomeConfig g;
    g.seed = 99;
    g.contig_lengths = {1 << 20};
    index = index::Mem2Index::build(seq::simulate_genome(g));

    util::Xoshiro256ss rng(3);
    rows.resize(1 << 14);
    for (auto& r : rows)
      r = static_cast<idx_t>(rng.below(static_cast<std::uint64_t>(index.seq_len() + 1)));

    // Extension jobs: 96-bp flanks with 5% divergence.
    const bsw::KswParams p;
    for (int i = 0; i < 1024; ++i) {
      std::vector<seq::Code> q(96);
      for (auto& c : q) c = static_cast<seq::Code>(rng.below(4));
      std::vector<seq::Code> t = q;
      for (auto& c : t)
        if (rng.chance(0.05)) c = static_cast<seq::Code>(rng.below(4));
      queries.push_back(std::move(q));
      targets.push_back(std::move(t));
    }
    for (int i = 0; i < 1024; ++i) {
      bsw::ExtendJob j;
      j.query = queries[static_cast<std::size_t>(i)].data();
      j.qlen = 96;
      j.target = targets[static_cast<std::size_t>(i)].data();
      j.tlen = 96;
      j.h0 = 30;
      j.w = 100;
      jobs.push_back(j);
    }
  }
};

MicroFixture& fixture() {
  static MicroFixture fx;
  return fx;
}

void BM_OccCp128(benchmark::State& state) {
  auto& fx = fixture();
  const auto& occ = fx.index.fm128().occ_table();
  std::size_t i = 0;
  for (auto _ : state) {
    idx_t out[4];
    occ.occ4(fx.rows[i++ & (fx.rows.size() - 1)] % occ.size(), out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_OccCp128);

void BM_OccCp32(benchmark::State& state) {
  auto& fx = fixture();
  const auto& occ = fx.index.fm32().occ_table();
  std::size_t i = 0;
  for (auto _ : state) {
    idx_t out[4];
    occ.occ4(fx.rows[i++ & (fx.rows.size() - 1)] % occ.size(), out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_OccCp32);

void BM_SalSampled(benchmark::State& state) {
  auto& fx = fixture();
  std::size_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        fx.index.sa_lookup_baseline(fx.rows[i++ & (fx.rows.size() - 1)]));
}
BENCHMARK(BM_SalSampled);

void BM_SalFlat(benchmark::State& state) {
  auto& fx = fixture();
  std::size_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        fx.index.sa_lookup_flat(fx.rows[i++ & (fx.rows.size() - 1)]));
}
BENCHMARK(BM_SalFlat);

void BM_BswScalarKernel(benchmark::State& state) {
  auto& fx = fixture();
  const bsw::KswParams p;
  std::size_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        bsw::ksw_extend_scalar(fx.jobs[i++ & (fx.jobs.size() - 1)], p));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BswScalarKernel);

void BM_BswEngine(benchmark::State& state) {
  auto& fx = fixture();
  const bsw::KswParams p;
  const auto isa = static_cast<util::Isa>(state.range(0));
  const auto prec = static_cast<bsw::Precision>(state.range(1));
  if (util::detect_isa() < isa) {
    state.SkipWithError("ISA not available");
    return;
  }
  const auto engine = bsw::get_engine(isa, prec);
  std::vector<bsw::KswResult> out(static_cast<std::size_t>(engine.width));
  for (auto _ : state) {
    engine.run(fx.jobs.data(), out.data(), engine.width, p, nullptr);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * engine.width);
  state.SetLabel(engine.name);
}
BENCHMARK(BM_BswEngine)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->ArgNames({"isa", "prec"});

void BM_SuffixArrayConstruction(benchmark::State& state) {
  const auto ref = seq::random_genome(state.range(0), 5);
  std::vector<seq::Code> text(static_cast<std::size_t>(ref.length()));
  ref.pac().extract(0, text.size(), text.data());
  for (auto _ : state)
    benchmark::DoNotOptimize(index::build_suffix_array(text));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SuffixArrayConstruction)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
