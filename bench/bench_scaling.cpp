// Figure 4 reproduction: thread scaling of the three kernels and of the
// whole application, original vs optimized, on the D1 and D5 analogs —
// plus a dedicated BSW-thread sweep of the parallel BswExecutor against
// the serial extend_batch path, emitted as BENCH_bsw_scaling.json so the
// perf trajectory is machine-readable.
//
// Paper reference: near-linear kernel scaling to 28 cores; whole-app
// scaling 20-22x because the unoptimized Misc components are bandwidth
// bound.  NOTE: this container exposes few (often 1) hardware threads; the
// sweep still runs and the JSON records how the curve degenerates —
// thread counts beyond the hardware merely oversubscribe.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "align/aligner.h"
#include "bench_common.h"
#include "bsw/bsw_executor.h"
#include "job_harvest.h"

using namespace mem2;

namespace {

using bench::ksw_checksum;

struct SweepPoint {
  int threads;
  double seconds;
  std::uint64_t checksum;
};

/// BswExecutor thread sweep on harvested jobs; returns one point per count.
std::vector<SweepPoint> sweep_bsw_threads(const std::vector<bsw::ExtendJob>& jobs,
                                          const bsw::KswParams& params,
                                          const std::vector<int>& counts) {
  std::vector<SweepPoint> points;
  for (int threads : counts) {
    bsw::BswExecutor ex(threads);
    std::vector<bsw::KswResult> out;
    ex.run(jobs, out, params);  // warm-up: grows the persistent workspace
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      util::Timer t;
      ex.run(jobs, out, params);
      best = std::min(best, t.seconds());
    }
    points.push_back({threads, best, ksw_checksum(out)});
  }
  return points;
}

}  // namespace

int main() {
  const auto index = bench::bench_index();
  const int hw = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> thread_counts = {1};
  for (int t = 2; t <= hw; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != hw) thread_counts.push_back(hw);

  for (const char* which : {"D1", "D5"}) {
    const auto ds = bench::bench_dataset(index, which[1] == '1' ? 0 : 4);
    bench::print_header(std::string("Figure 4: scaling on ") + which + " (" +
                        std::to_string(ds.reads.size()) + " reads, hw threads: " +
                        std::to_string(hw) + ")");
    bench::print_row("threads",
                     {"orig e2e", "opt e2e", "orig spd", "opt spd", "SMEM spd",
                      "SAL spd", "BSW spd"});

    double base_orig = 0, base_opt = 0;
    util::StageTimes base_stages;
    for (int threads : thread_counts) {
      align::DriverOptions o_base, o_opt;
      o_base.mode = align::Mode::kBaseline;
      o_opt.mode = align::Mode::kBatch;
      o_base.threads = o_opt.threads = threads;

      const align::Aligner aligner_base(index, o_base);
      const align::Aligner aligner_opt(index, o_opt);
      align::CollectSamSink sink_base, sink_opt;
      align::DriverStats s_base, s_opt;
      util::Timer t;
      bench::require_ok(aligner_base.align(ds.reads, sink_base, &s_base));
      const double w_orig = t.seconds();
      t.restart();
      bench::require_ok(aligner_opt.align(ds.reads, sink_opt, &s_opt));
      const double w_opt = t.seconds();

      if (threads == 1) {
        base_orig = w_orig;
        base_opt = w_opt;
        base_stages = s_opt.stages;
      }
      // SMEM/SAL accumulate per-thread CPU time inside parallel-for regions,
      // so the wall estimate is stage_time / threads.  BSW is a wall-clock
      // measurement of the (internally parallel) pooled rounds on the master
      // thread — its ratio is direct.
      auto spd = [&](util::Stage s) {
        const double w1 = base_stages[s];
        const double wt = s_opt.stages[s] / threads;
        return wt > 0 ? w1 / wt : 0.0;
      };
      auto spd_wall = [&](util::Stage s) {
        const double wt = s_opt.stages[s];
        return wt > 0 ? base_stages[s] / wt : 0.0;
      };
      bench::print_row(std::to_string(threads).c_str(),
                       {bench::fmt(w_orig, 2), bench::fmt(w_opt, 2),
                        bench::fmt(base_orig / w_orig, 2) + "x",
                        bench::fmt(base_opt / w_opt, 2) + "x",
                        bench::fmt(spd(util::Stage::kSmem), 2) + "x",
                        bench::fmt(spd(util::Stage::kSal), 2) + "x",
                        bench::fmt(spd_wall(util::Stage::kBsw), 2) + "x"});
    }
  }

  // --- SMEM interleave sweep: batch-driver SMEM stage time vs K ---
  {
    const auto d1 = bench::bench_dataset(index, 0);
    bench::print_header("SMEM stage vs smem_inflight (batch driver, D1, 1 thread)");
    bench::print_row("K", {"SMEM (s)", "SAL (s)", "e2e (s)", "SMEM spd"});
    double smem_k1 = 0;
    for (const int k : {1, 2, 4, 8, 16}) {
      align::DriverOptions opt;
      opt.mode = align::Mode::kBatch;
      opt.threads = 1;
      opt.smem_inflight = k;
      const align::Aligner aligner(index, opt);
      align::CollectSamSink sink;
      align::DriverStats stats;
      util::Timer t;
      bench::require_ok(aligner.align(d1.reads, sink, &stats));
      const double e2e = t.seconds();
      const double smem = stats.stages[util::Stage::kSmem];
      if (k == 1) smem_k1 = smem;
      bench::print_row(std::to_string(k).c_str(),
                       {bench::fmt(smem, 3), bench::fmt(stats.stages[util::Stage::kSal], 3),
                        bench::fmt(e2e, 2),
                        bench::fmt(smem > 0 ? smem_k1 / smem : 0.0, 2) + "x"});
    }
  }

  // --- BswExecutor thread sweep -> BENCH_bsw_scaling.json ---
  {
    align::MemOptions mopt;
    const auto d3 = bench::bench_dataset(index, 2);
    auto harvested = bench::harvest_bsw_jobs(index, d3.reads, mopt);
    auto& jobs = harvested.jobs;
    bench::replicate_jobs(jobs, 4);

    double serial_seconds = 1e30;
    std::uint64_t serial_checksum = 0;
    {
      std::vector<bsw::KswResult> out;
      bsw::extend_batch(jobs, out, mopt.ksw);  // warm-up
      for (int rep = 0; rep < 3; ++rep) {
        util::Timer t;
        bsw::extend_batch(jobs, out, mopt.ksw);
        serial_seconds = std::min(serial_seconds, t.seconds());
      }
      serial_checksum = ksw_checksum(out);
    }

    std::vector<int> counts = {1, 2, 4};
    if (hw > 4) counts.push_back(hw);
    const auto points = sweep_bsw_threads(jobs, mopt.ksw, counts);

    bench::print_header("BswExecutor thread sweep (" + std::to_string(jobs.size()) +
                        " harvested jobs, serial extend_batch " +
                        bench::fmt(serial_seconds, 3) + "s)");
    bench::print_row("threads", {"time (s)", "speedup", "identical"});
    bool all_identical = true;
    for (const SweepPoint& pt : points) {
      const bool same = pt.checksum == serial_checksum;
      all_identical &= same;
      bench::print_row(std::to_string(pt.threads).c_str(),
                       {bench::fmt(pt.seconds, 3),
                        bench::fmt(serial_seconds / pt.seconds, 2) + "x",
                        same ? "yes" : "NO"});
    }

    if (std::FILE* f = std::fopen("BENCH_bsw_scaling.json", "w")) {
      std::fprintf(f, "{\n  \"bench\": \"bsw_scaling\",\n");
      std::fprintf(f, "  \"jobs\": %zu,\n", jobs.size());
      std::fprintf(f, "  \"hw_threads\": %d,\n", hw);
      std::fprintf(f, "  \"serial_extend_batch_seconds\": %.6f,\n", serial_seconds);
      std::fprintf(f, "  \"serial_checksum\": \"%016llx\",\n",
                   static_cast<unsigned long long>(serial_checksum));
      std::fprintf(f, "  \"all_checksums_identical\": %s,\n",
                   all_identical ? "true" : "false");
      std::fprintf(f, "  \"sweep\": [\n");
      for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPoint& pt = points[i];
        std::fprintf(f,
                     "    {\"threads\": %d, \"seconds\": %.6f, \"speedup\": %.3f, "
                     "\"checksum\": \"%016llx\"}%s\n",
                     pt.threads, pt.seconds, serial_seconds / pt.seconds,
                     static_cast<unsigned long long>(pt.checksum),
                     i + 1 < points.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
      std::printf("\nwrote BENCH_bsw_scaling.json\n");
    }
    if (!all_identical) {
      std::printf("ERROR: executor results differ from serial extend_batch!\n");
      return 1;
    }
  }
  return 0;
}
