// Figure 4 reproduction: thread scaling of the three kernels and of the
// whole application, original vs optimized, on the D1 and D5 analogs.
//
// Paper reference: near-linear kernel scaling to 28 cores; whole-app
// scaling 20-22x because the unoptimized Misc components are bandwidth
// bound.  NOTE: this container exposes few (often 1) hardware threads; the
// sweep still runs and EXPERIMENTS.md records how the curve degenerates —
// thread counts beyond the hardware merely oversubscribe.
#include <thread>

#include "bench_common.h"

using namespace mem2;

int main() {
  const auto index = bench::bench_index();
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> thread_counts = {1};
  for (int t = 2; t <= hw; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != hw) thread_counts.push_back(hw);

  for (const char* which : {"D1", "D5"}) {
    const auto ds = bench::bench_dataset(index, which[1] == '1' ? 0 : 4);
    bench::print_header(std::string("Figure 4: scaling on ") + which + " (" +
                        std::to_string(ds.reads.size()) + " reads, hw threads: " +
                        std::to_string(hw) + ")");
    bench::print_row("threads",
                     {"orig e2e", "opt e2e", "orig spd", "opt spd", "SMEM spd",
                      "SAL spd", "BSW spd"});

    double base_orig = 0, base_opt = 0;
    util::StageTimes base_stages;
    for (int threads : thread_counts) {
      align::DriverOptions o_base, o_opt;
      o_base.mode = align::Mode::kBaseline;
      o_opt.mode = align::Mode::kBatch;
      o_base.threads = o_opt.threads = threads;

      align::DriverStats s_base, s_opt;
      util::Timer t;
      align::align_reads(index, ds.reads, o_base, &s_base);
      const double w_orig = t.seconds();
      t.restart();
      align::align_reads(index, ds.reads, o_opt, &s_opt);
      const double w_opt = t.seconds();

      if (threads == 1) {
        base_orig = w_orig;
        base_opt = w_opt;
        base_stages = s_opt.stages;
      }
      // Kernel scaling uses accumulated per-thread stage CPU time converted
      // to wall estimate (stage_time / threads), matching how the paper's
      // per-kernel scaling is measured inside the running application.
      auto spd = [&](util::Stage s) {
        const double w1 = base_stages[s];
        const double wt = s_opt.stages[s] / threads;
        return wt > 0 ? w1 / wt : 0.0;
      };
      bench::print_row(std::to_string(threads).c_str(),
                       {bench::fmt(w_orig, 2), bench::fmt(w_opt, 2),
                        bench::fmt(base_orig / w_orig, 2) + "x",
                        bench::fmt(base_opt / w_opt, 2) + "x",
                        bench::fmt(spd(util::Stage::kSmem), 2) + "x",
                        bench::fmt(spd(util::Stage::kSal), 2) + "x",
                        bench::fmt(spd(util::Stage::kBsw), 2) + "x"});
    }
  }
  return 0;
}
