// Tables 6 & 7 reproduction: the BSW kernel on sequence pairs intercepted
// from the D3-analog pipeline run.
//
// Table 6 (paper): original scalar 283s; 16-bit 65.4 (w/o sort) / 44.5
// (w/ sort); 8-bit 42.1 / 24.5 -> 6.7x (16-bit) and 11.6x (8-bit), with
// sorting worth 1.5-1.7x.  As in the paper, the 8-bit rows use only the
// pairs for which 8-bit precision suffices.
//
// Table 7 (paper): instructions 1385G -> 100G (13.85x), IPC 3.14 -> 2.17.
// Without VTune we report the software proxies (DP cells, useful fraction)
// plus perf_event counters when the container allows them.
#include <thread>

#include "bench_common.h"
#include "bsw/bsw_executor.h"
#include "job_harvest.h"
#include "util/perf_counters.h"

using namespace mem2;

namespace {

struct Run {
  double seconds = 0;
  util::SwCounters ctr;
  util::PerfSample hw;
  std::uint64_t checksum = 0;
};

using bench::ksw_checksum;

Run run_scalar(const std::vector<bsw::ExtendJob>& jobs, const bsw::KswParams& p) {
  util::tls_counters().reset();
  util::PerfCounters perf;
  Run run;
  util::Timer t;
  perf.start();
  std::vector<bsw::KswResult> out;
  out.reserve(jobs.size());
  for (const auto& j : jobs) out.push_back(bsw::ksw_extend_scalar(j, p));
  run.hw = perf.stop();
  run.seconds = t.seconds();
  run.ctr = util::tls_counters();
  run.checksum = ksw_checksum(out);
  return run;
}

Run run_executor(const std::vector<bsw::ExtendJob>& jobs, const bsw::KswParams& p,
                 int threads) {
  util::tls_counters().reset();
  bsw::BswExecutor ex(threads);
  std::vector<bsw::KswResult> out;
  ex.run(jobs, out, p, {}, nullptr);  // warm the persistent workspace
  Run run;
  run.seconds = 1e30;
  for (int rep = 0; rep < 3; ++rep) {  // steady state: no allocations
    util::Timer t;
    ex.run(jobs, out, p, {}, nullptr);
    run.seconds = std::min(run.seconds, t.seconds());
  }
  run.ctr = util::tls_counters();
  run.checksum = ksw_checksum(out);
  return run;
}

Run run_simd(const std::vector<bsw::ExtendJob>& jobs, const bsw::KswParams& p,
             bool force16, bool sort) {
  util::tls_counters().reset();
  util::PerfCounters perf;
  bsw::BswBatchOptions opt;
  opt.force_16bit = force16;
  opt.sort_by_length = sort;
  Run run;
  util::Timer t;
  perf.start();
  std::vector<bsw::KswResult> out;
  bsw::extend_batch(jobs, out, p, opt, nullptr);
  run.hw = perf.stop();
  run.seconds = t.seconds();
  run.ctr = util::tls_counters();
  run.checksum = ksw_checksum(out);
  return run;
}

}  // namespace

int main() {
  const auto index = bench::bench_index();
  const auto d3 = bench::bench_dataset(index, 2);

  align::MemOptions mopt;
  auto harvested = bench::harvest_bsw_jobs(index, d3.reads, mopt);
  auto& jobs = harvested.jobs;

  // Replicate each job list a few times so kernel time dominates setup at
  // the default scale.
  bench::replicate_jobs(jobs, 4);

  std::vector<bsw::ExtendJob> jobs8;
  for (const auto& j : jobs)
    if (bsw::fits_8bit(j, mopt.ksw)) jobs8.push_back(j);

  bench::print_header("Table 6: BSW kernel run time (D3 analog, " +
                      std::to_string(jobs.size()) + " pairs, " +
                      std::to_string(jobs8.size()) + " 8-bit eligible)");

  const Run scalar_all = run_scalar(jobs, mopt.ksw);
  const Run v16_nosort = run_simd(jobs, mopt.ksw, true, false);
  const Run v16_sort = run_simd(jobs, mopt.ksw, true, true);
  const Run scalar8 = run_scalar(jobs8, mopt.ksw);
  const Run v8_nosort = run_simd(jobs8, mopt.ksw, false, false);
  const Run v8_sort = run_simd(jobs8, mopt.ksw, false, true);

  if (v16_nosort.checksum != scalar_all.checksum ||
      v16_sort.checksum != scalar_all.checksum ||
      v8_nosort.checksum != scalar8.checksum ||
      v8_sort.checksum != scalar8.checksum) {
    std::printf("ERROR: SIMD results differ from scalar!\n");
    return 1;
  }

  bench::print_row("Configuration", {"time (s)", "speedup"});
  auto row = [&](const char* label, const Run& r, const Run& base) {
    bench::print_row(label, {bench::fmt(r.seconds, 3),
                             bench::fmt(base.seconds / r.seconds, 2) + "x"});
  };
  row("original scalar (all pairs)", scalar_all, scalar_all);
  row("16-bit w/o sort  (paper 4.3x)", v16_nosort, scalar_all);
  row("16-bit w/ sort   (paper 6.4x)", v16_sort, scalar_all);
  row("original scalar (8-bit pairs)", scalar8, scalar8);
  row("8-bit w/o sort   (paper 6.7x)", v8_nosort, scalar8);
  row("8-bit w/ sort    (paper 11.6x)", v8_sort, scalar8);
  bench::print_row("sorting benefit 16-bit (paper 1.5x)",
                   {bench::fmt(v16_nosort.seconds / v16_sort.seconds, 2) + "x", ""});
  bench::print_row("sorting benefit 8-bit (paper 1.7x)",
                   {bench::fmt(v8_nosort.seconds / v8_sort.seconds, 2) + "x", ""});

  // Parallel executor vs the serial batched path, same auto-split job pool.
  {
    const int hw = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    bench::print_header("BswExecutor: parallel chunk dispatch vs serial extend_batch (hw threads: " +
                        std::to_string(hw) + ")");
    // Same protocol as run_executor (warm-up + best of 3) so the
    // comparison is symmetric.
    Run serial;
    {
      std::vector<bsw::KswResult> out;
      bsw::extend_batch(jobs, out, mopt.ksw);  // warm the shim's workspace
      serial.seconds = 1e30;
      for (int rep = 0; rep < 3; ++rep) {
        util::Timer t;
        bsw::extend_batch(jobs, out, mopt.ksw);
        serial.seconds = std::min(serial.seconds, t.seconds());
      }
      serial.checksum = ksw_checksum(out);
    }
    bench::print_row("Configuration", {"time (s)", "speedup", "identical"});
    bench::print_row("serial extend_batch", {bench::fmt(serial.seconds, 3), "1.00x", "-"});
    std::vector<int> sweep = {1, 2, 4};
    if (hw > 4) sweep.push_back(hw);
    bool all_identical = true;
    for (int threads : sweep) {
      const Run r = run_executor(jobs, mopt.ksw, threads);
      const bool same = r.checksum == serial.checksum;
      all_identical &= same;
      bench::print_row(("executor x" + std::to_string(threads)).c_str(),
                       {bench::fmt(r.seconds, 3),
                        bench::fmt(serial.seconds / r.seconds, 2) + "x",
                        same ? "yes" : "NO"});
    }
    if (!all_identical) {
      std::printf("ERROR: executor results differ from serial extend_batch!\n");
      return 1;
    }
  }

  bench::print_header("Table 7: BSW instruction profile, scalar vs 8-bit SIMD");
  bench::print_row("Counter", {"scalar", "8-bit SIMD"});
  bench::print_row("DP cells total (x1e6)",
                   {bench::fmt_int(scalar8.ctr.bsw_cells_total / 1000000),
                    bench::fmt_int(v8_sort.ctr.bsw_cells_total / 1000000)});
  const double useful_frac =
      static_cast<double>(v8_sort.ctr.bsw_cells_useful) /
      static_cast<double>(v8_sort.ctr.bsw_cells_total);
  bench::print_row("useful cell fraction (paper ~0.5)",
                   {"1.00", bench::fmt(useful_frac, 2)});
  if (scalar8.hw.valid) {
    bench::print_row("instructions (x1e6) [hw]",
                     {bench::fmt_int(scalar8.hw.instructions / 1000000),
                      bench::fmt_int(v8_sort.hw.instructions / 1000000)});
    bench::print_row("IPC [hw] (paper 3.14 / 2.17)",
                     {bench::fmt(scalar8.hw.ipc(), 2), bench::fmt(v8_sort.hw.ipc(), 2)});
  } else {
    std::printf("(hardware counters unavailable; cell counts above are the proxy)\n");
  }
  std::printf("\nidentical outputs scalar vs SIMD: yes\n");
  return 0;
}
