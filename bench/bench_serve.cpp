// Multi-stream service bench: N concurrent mixed SE/PE client sessions over
// one shared index and one global worker pool (serve::AlignService) vs the
// same N sessions run solo back-to-back at equal total thread count.
//
// Reports aggregate throughput ratio (acceptance: >= 0.9x of the sequential
// solo runs), per-stream batch-latency p50/p99, queue-depth high-water
// marks and the fairness spread (slowest / fastest client wall time), and
// writes BENCH_serve.json.  Every stream's SAM must be byte-identical to
// its solo run — a mismatch is a hard failure in any mode.  --smoke caps
// the workload for CI and relaxes the throughput gate (shared runners).
#include <cstring>
#include <thread>

#include "align/aligner.h"
#include "bench_common.h"
#include "serve/align_service.h"

using namespace mem2;

namespace {

struct ClientSpec {
  std::string name;
  bool paired = false;
  std::vector<seq::Read> reads;
};

struct ClientResult {
  double solo_seconds = 0;
  double client_seconds = 0;  // wall inside the service run
  align::StreamMetrics metrics;
  std::vector<std::string> solo_sam, serve_sam;
};

std::vector<std::string> sam_lines(const align::CollectSamSink& sink) {
  std::vector<std::string> lines;
  lines.reserve(sink.records().size());
  for (const auto& rec : sink.records()) lines.push_back(rec.to_line());
  return lines;
}

align::DriverOptions client_options(const ClientSpec& spec, int threads) {
  align::DriverOptions opt;
  opt.mode = align::Mode::kBatch;
  opt.paired = spec.paired;
  opt.batch_size = 128;  // small batches: the queues and scheduler stay busy
  opt.threads = threads;
  return opt;
}

/// Submit in modest chunks so back-pressure and the round-robin scheduler
/// are actually exercised (a single submit would enqueue everything at once
/// behind queue_depth batches).
align::Status drive(const ClientSpec& spec, auto& stream) {
  const std::size_t chunk = 256;
  std::span<const seq::Read> all(spec.reads);
  for (std::size_t at = 0; at < all.size(); at += chunk) {
    const auto n = std::min(chunk, all.size() - at);
    if (auto st = stream.submit(all.subspan(at, n)); !st.ok()) return st;
  }
  return stream.finish();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (!std::strcmp(argv[i], "--smoke")) smoke = true;

  const auto index = bench::bench_index();
  const double scale = smoke ? 0.25 : bench::bench_scale();
  const int workers =
      std::max(2, static_cast<int>(std::thread::hardware_concurrency()));
  const int n_streams = 8;

  // Mixed fleet: three SE clients then one PE client, repeating, each with
  // its own deterministic read set.
  std::vector<ClientSpec> specs;
  for (int s = 0; s < n_streams; ++s) {
    ClientSpec spec;
    spec.paired = (s % 4 == 3);
    spec.name = (spec.paired ? "pe" : "se") + std::to_string(s);
    if (spec.paired) {
      seq::PairSimConfig cfg;
      cfg.seed = 9100u + static_cast<unsigned>(s);
      cfg.read_length = 101;
      cfg.num_pairs = std::max<std::int64_t>(200, static_cast<std::int64_t>(2000 * scale));
      cfg.insert_mean = 420;
      cfg.insert_std = 45;
      cfg.substitution_rate = 0.012;
      spec.reads = seq::simulate_pairs(index.ref(), cfg);
    } else {
      seq::ReadSimConfig cfg;
      cfg.seed = 9000u + static_cast<unsigned>(s);
      cfg.read_length = 101;
      cfg.num_reads = std::max<std::int64_t>(400, static_cast<std::int64_t>(4000 * scale));
      cfg.name_prefix = spec.name;
      cfg.substitution_rate = 0.012;
      spec.reads = seq::simulate_reads(index.ref(), cfg);
    }
    specs.push_back(std::move(spec));
  }

  std::vector<ClientResult> results(specs.size());
  std::uint64_t reads_total = 0;
  for (const auto& s : specs) reads_total += s.reads.size();

  // --- Solo baseline: each session back-to-back with all `workers`
  // threads to itself (equal total thread count to the service run). ---
  double solo_total = 0;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const align::Aligner aligner(index, client_options(specs[s], workers));
    align::CollectSamSink sink;
    util::Timer t;
    align::Stream stream = aligner.open(sink);
    bench::require_ok(drive(specs[s], stream));
    results[s].solo_seconds = t.seconds();
    solo_total += results[s].solo_seconds;
    results[s].solo_sam = sam_lines(sink);
  }

  // --- Service run: all sessions concurrent over one pool of `workers`. ---
  serve::ServeOptions sopt;
  sopt.workers = workers;
  sopt.max_streams = n_streams;
  sopt.max_inflight_batches = 8 * n_streams;
  serve::AlignService service(index, sopt);
  bench::require_ok(service.status());

  std::vector<align::CollectSamSink> sinks(specs.size());
  std::vector<serve::ServiceStream> streams;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    streams.push_back(service.open(client_options(specs[s], 1), sinks[s]));
    bench::require_ok(streams.back().status());
  }

  util::Timer service_timer;
  {
    std::vector<std::thread> clients;
    clients.reserve(specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s)
      clients.emplace_back([&, s] {
        util::Timer t;
        bench::require_ok(drive(specs[s], streams[s]));
        results[s].client_seconds = t.seconds();
      });
    for (auto& c : clients) c.join();
  }
  const double service_wall = service_timer.seconds();
  for (std::size_t s = 0; s < specs.size(); ++s) {
    results[s].metrics = streams[s].metrics();
    results[s].serve_sam = sam_lines(sinks[s]);
  }
  const auto sm = service.metrics();

  // --- Admission-queueing phase: a quarter of the stream slots with FIFO
  // queueing on, so most opens wait for capacity — measures the admission
  // queue wait (ServiceMetrics p50/p99) under contention.  Short truncated
  // workloads: this phase times the queue, not the alignment. ---
  serve::ServeOptions qopt;
  qopt.workers = workers;
  qopt.max_streams = std::max(1, n_streams / 4);
  qopt.max_inflight_batches = 8 * n_streams;
  qopt.admission_timeout_ms = 600000;  // effectively "wait for a slot"
  qopt.max_pending_opens = n_streams;
  serve::AlignService qservice(index, qopt);
  bench::require_ok(qservice.status());
  std::vector<align::CollectSamSink> qsinks(specs.size());
  std::vector<ClientSpec> qspecs;
  for (const auto& spec : specs) {
    ClientSpec small;
    small.name = spec.name;
    small.paired = spec.paired;
    const std::size_t n = std::min<std::size_t>(1024, spec.reads.size());
    small.reads.assign(spec.reads.begin(),
                       spec.reads.begin() + static_cast<std::ptrdiff_t>(n));
    qspecs.push_back(std::move(small));
  }
  {
    std::vector<std::thread> clients;
    clients.reserve(qspecs.size());
    for (std::size_t s = 0; s < qspecs.size(); ++s)
      clients.emplace_back([&, s] {
        serve::ServiceStream stream =
            qservice.open(client_options(qspecs[s], 1), qsinks[s]);
        bench::require_ok(stream.status());
        bench::require_ok(drive(qspecs[s], stream));
      });
    for (auto& c : clients) c.join();
  }
  const auto qm = qservice.metrics();

  // --- Verdicts ---
  bool identical = true;
  for (std::size_t s = 0; s < specs.size(); ++s)
    if (results[s].serve_sam != results[s].solo_sam) {
      std::printf("ERROR: stream %s SAM differs from its solo run!\n",
                  specs[s].name.c_str());
      identical = false;
    }
  const double ratio = service_wall > 0 ? solo_total / service_wall : 0;
  double fastest = 1e300, slowest = 0;
  for (const auto& r : results) {
    fastest = std::min(fastest, r.client_seconds);
    slowest = std::max(slowest, r.client_seconds);
  }
  const double spread = fastest > 0 ? slowest / fastest : 0;

  bench::print_header("Multi-stream service: " + std::to_string(n_streams) +
                      " clients over " + std::to_string(workers) +
                      " pooled workers");
  bench::print_row("Stream", {"reads", "solo (s)", "serve (s)", "p50 (ms)",
                              "p99 (ms)", "q hwm"});
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const auto& r = results[s];
    bench::print_row(specs[s].name.c_str(),
                     {bench::fmt_int(specs[s].reads.size()),
                      bench::fmt(r.solo_seconds, 2),
                      bench::fmt(r.client_seconds, 2),
                      bench::fmt(1e3 * r.metrics.p50(), 1),
                      bench::fmt(1e3 * r.metrics.p99(), 1),
                      bench::fmt_int(r.metrics.queue_hwm)});
  }
  std::printf(
      "\n  solo total %.2fs, service wall %.2fs -> aggregate throughput "
      "%.2fx (gate %s0.90), fairness spread %.2fx, %s\n",
      solo_total, service_wall, ratio, smoke ? "[smoke, advisory] " : ">= ",
      spread, sm.summary().c_str());
  std::printf(
      "  admission phase (%d slots, queueing on): %llu of %d opens queued, "
      "wait p50 %.1fms p99 %.1fms\n",
      qopt.max_streams, static_cast<unsigned long long>(qm.streams_queued),
      n_streams, 1e3 * qm.admission_wait_p50(), 1e3 * qm.admission_wait_p99());

  if (std::FILE* f = std::fopen("BENCH_serve.json", "w")) {
    std::fprintf(f, "{\n  \"bench\": \"serve\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(f, "  \"streams\": %d,\n  \"workers\": %d,\n", n_streams,
                 workers);
    std::fprintf(f, "  \"reads_total\": %llu,\n",
                 static_cast<unsigned long long>(reads_total));
    std::fprintf(f,
                 "  \"solo_seconds_total\": %.6f,\n  \"service_wall_seconds\": "
                 "%.6f,\n  \"aggregate_throughput_ratio\": %.4f,\n",
                 solo_total, service_wall, ratio);
    std::fprintf(f, "  \"service_reads_per_sec\": %.1f,\n",
                 service_wall > 0 ? static_cast<double>(reads_total) / service_wall : 0);
    std::fprintf(f, "  \"fairness_spread\": %.4f,\n", spread);
    std::fprintf(f,
                 "  \"admission\": {\"max_streams\": %d, \"opens\": %d, "
                 "\"queued\": %llu, \"wait_p50_seconds\": %.6f, "
                 "\"wait_p99_seconds\": %.6f},\n",
                 qopt.max_streams, n_streams,
                 static_cast<unsigned long long>(qm.streams_queued),
                 qm.admission_wait_p50(), qm.admission_wait_p99());
    std::fprintf(f, "  \"outputs_identical_to_solo\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f, "  \"per_stream\": [\n");
    for (std::size_t s = 0; s < specs.size(); ++s) {
      const auto& r = results[s];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"paired\": %s, \"reads\": %zu, "
                   "\"solo_seconds\": %.6f, \"client_seconds\": %.6f, "
                   "\"p50_batch_seconds\": %.6f, \"p99_batch_seconds\": %.6f, "
                   "\"queue_hwm\": %zu}%s\n",
                   specs[s].name.c_str(), specs[s].paired ? "true" : "false",
                   specs[s].reads.size(), r.solo_seconds, r.client_seconds,
                   r.metrics.p50(), r.metrics.p99(), r.metrics.queue_hwm,
                   s + 1 < specs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_serve.json\n");
  }

  if (!identical) return 1;
  if (!smoke && ratio < 0.9) {
    std::printf("ERROR: aggregate throughput %.2fx below the 0.9x gate\n", ratio);
    return 1;
  }
  if (smoke && ratio < 0.9)
    std::printf("WARNING: aggregate throughput %.2fx below 0.9x (smoke mode: "
                "advisory only)\n", ratio);
  return 0;
}
