// Shared infrastructure for the per-table/figure bench binaries:
// scaled paper datasets, cached index construction, table printing.
//
// Workload scale: MEM2_BENCH_SCALE (default 1.0) multiplies read counts;
// reference size comes from MEM2_BENCH_GENOME (default 4 Mbp; accepts K/M/G
// suffixes, e.g. 256M for DRAM-resident runs).  At scale 1.0 each dataset holds
// 1/100 of the paper's reads so every bench finishes in seconds on one
// core while preserving read lengths and repeat structure.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "align/driver.h"
#include "align/status.h"
#include "index/mem2_index.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"
#include "util/timer.h"

namespace mem2::bench {

/// Benches must not report numbers measured over a failed session.
inline void require_ok(const align::Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "alignment failed: %s\n", st.message().c_str());
    std::exit(1);
  }
}

inline double bench_scale() {
  if (const char* env = std::getenv("MEM2_BENCH_SCALE")) return std::atof(env);
  return 1.0;
}

inline constexpr std::int64_t kDefaultGenomeLen = 4'000'000;  // ~Hg38/1.5G / 375

/// Reference length: MEM2_BENCH_GENOME accepts plain digits with an
/// optional K/M/G suffix (e.g. "256M" for the chromosome-scale DRAM-resident
/// runs); unset or unparsable falls back to the historical 4 Mbp.
inline std::int64_t bench_genome_length() {
  const char* env = std::getenv("MEM2_BENCH_GENOME");
  if (!env || !*env) return kDefaultGenomeLen;
  char* end = nullptr;
  double v = std::strtod(env, &end);
  if (end == env || v <= 0) return kDefaultGenomeLen;
  if (*end == 'K' || *end == 'k') v *= 1e3;
  else if (*end == 'M' || *end == 'm') v *= 1e6;
  else if (*end == 'G' || *end == 'g') v *= 1e9;
  return static_cast<std::int64_t>(v);
}

/// Deterministic benchmark reference at an arbitrary scale: human-like GC,
/// ALU-like interspersed repeats and microsatellites.  Up to 4 Mbp the
/// config is byte-identical to the historical 2-contig layout (cached bench
/// indexes stay valid); from 8 Mbp up the length is split across five
/// chromosome-like contigs so index-build and SAL paths see multi-contig
/// geometry at scale.
inline seq::GenomeConfig bench_genome_config_for(std::int64_t genome_len) {
  seq::GenomeConfig g;
  g.seed = 20190527;  // IPDPS'19 submission vintage
  if (genome_len >= 8'000'000) {
    g.contig_lengths = {genome_len * 30 / 100, genome_len * 25 / 100,
                        genome_len * 20 / 100, genome_len * 15 / 100};
    std::int64_t used = 0;
    for (auto l : g.contig_lengths) used += l;
    g.contig_lengths.push_back(genome_len - used);  // exact total
  } else {
    g.contig_lengths = {genome_len * 2 / 3, genome_len / 3};
  }
  g.gc_content = 0.41;
  // Calibrated against the paper's Table 1 stage profile: large families of
  // low-divergence (ALU-like) repeats are what generate the multi-locus
  // chains whose extensions dominate real-data BSW time (~38 pairs/read on
  // D3).  With these values the baseline profile lands within a few percent
  // of Table 1's D1 column.
  g.repeat_fraction = 0.50;
  g.repeat_divergence = 0.015;
  g.repeat_families = 2;
  g.tandem_fraction = 0.02;
  return g;
}

inline seq::GenomeConfig bench_genome_config() {
  return bench_genome_config_for(bench_genome_length());
}

/// Build (or load from the on-disk cache) the benchmark index.
inline index::Mem2Index bench_index() {
  const std::int64_t genome_len = bench_genome_length();
  const std::string cache =
      (std::filesystem::temp_directory_path() /
       ("mem2_bench_" + std::to_string(genome_len) + ".m2i"))
          .string();
  if (std::filesystem::exists(cache)) {
    try {
      return index::load_index(cache);
    } catch (const std::exception&) {
      std::filesystem::remove(cache);
    }
  }
  util::Timer t;
  std::fprintf(stderr, "[bench] building %lld bp index (cached at %s)...\n",
               static_cast<long long>(genome_len), cache.c_str());
  auto index =
      index::Mem2Index::build(seq::simulate_genome(bench_genome_config_for(genome_len)));
  index::save_index(cache, index);
  std::fprintf(stderr, "[bench] index built in %.1fs\n", t.seconds());
  return index;
}

struct Dataset {
  std::string name;
  std::vector<seq::Read> reads;
  int read_length;
};

/// One of the five Table-3 analog datasets (D1..D5).
inline Dataset bench_dataset(const index::Mem2Index& index, int which) {
  const auto specs = seq::paper_datasets(bench_scale());
  const auto& spec = specs.at(static_cast<std::size_t>(which));
  seq::ReadSimConfig cfg;
  cfg.seed = 1000u + static_cast<unsigned>(which);
  cfg.read_length = spec.read_length;
  cfg.num_reads = spec.num_reads;
  cfg.name_prefix = spec.name;
  cfg.substitution_rate = 0.012;  // Illumina-like (Table 1 calibration)
  cfg.insertion_rate = 0.0005;
  cfg.deletion_rate = 0.0005;
  return {spec.name, seq::simulate_reads(index.ref(), cfg), spec.read_length};
}

// ------------------------------------------------------------- bsw helpers

/// FNV-1a over (score, qle, tle) — the cross-bench identity check for BSW
/// result sets; every bench comparing engines/executors must hash the same
/// fields, so keep the one definition here.
inline std::uint64_t ksw_checksum(const std::vector<bsw::KswResult>& rs) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& r : rs) {
    h = (h ^ static_cast<std::uint64_t>(r.score)) * 1099511628211ull;
    h = (h ^ static_cast<std::uint64_t>(r.qle * 131 + r.tle)) * 1099511628211ull;
  }
  return h;
}

/// Grow a job list to `factor` copies of itself so kernel time dominates
/// setup.  Index-based: inserting a vector's own iterator range is UB.
inline void replicate_jobs(std::vector<bsw::ExtendJob>& jobs, std::size_t factor) {
  const std::size_t base = jobs.size();
  jobs.reserve(base * factor);
  while (jobs.size() < base * factor) jobs.push_back(jobs[jobs.size() - base]);
}

// ---------------------------------------------------------------- printing

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const char* label, const std::vector<std::string>& cells,
                      int label_w = 34, int cell_w = 14) {
  std::printf("%-*s", label_w, label);
  for (const auto& c : cells) std::printf("%*s", cell_w, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

inline std::string fmt_int(std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace mem2::bench
