// Figure 5 reproduction: end-to-end compute time of the baseline
// (original BWA-MEM model) vs the optimized (batch) driver on all five
// dataset analogs, single thread and all hardware threads, with the
// per-kernel stacked breakdown (SMEM / SAL / BSW / Misc) and speedups.
// Also reports the §6.3.2 extra-seed statistics (paper: ~14% extra pairs).
//
// Paper reference (SKX): single-thread speedups 2.6x-3.5x; single-socket
// 1.7x-2.4x.  Shape to reproduce: optimized wins on every dataset; SAL
// nearly vanishes from the optimized bars; Misc grows in relative share.
#include <thread>

#include "align/aligner.h"
#include "bench_common.h"

using namespace mem2;

namespace {

void run_suite(const index::Mem2Index& index, int threads) {
  bench::print_header("Figure 5: end-to-end compute, " + std::to_string(threads) +
                      " thread(s)");
  bench::print_row("Dataset",
                   {"orig (s)", "opt (s)", "speedup", "SMEM", "SAL", "BSW", "Misc"});

  for (int d = 0; d < 5; ++d) {
    const auto ds = bench::bench_dataset(index, d);

    align::DriverOptions base;
    base.mode = align::Mode::kBaseline;
    base.threads = threads;
    align::DriverOptions opt;
    opt.mode = align::Mode::kBatch;
    opt.threads = threads;

    // Session API: aligners constructed (and validated) outside the timed
    // region; the timed call is open -> submit -> finish.
    const align::Aligner aligner_base(index, base);
    const align::Aligner aligner_opt(index, opt);
    align::CollectSamSink sink_base, sink_opt;
    align::DriverStats s_base, s_opt;
    util::Timer t;
    bench::require_ok(aligner_base.align(ds.reads, sink_base, &s_base));
    const double wall_base = t.seconds();
    t.restart();
    bench::require_ok(aligner_opt.align(ds.reads, sink_opt, &s_opt));
    const double wall_opt = t.seconds();
    const auto& sam_base = sink_base.records();
    const auto& sam_opt = sink_opt.records();

    // Identity check (the paper's like-for-like replacement property).
    bool identical = sam_base.size() == sam_opt.size();
    for (std::size_t i = 0; identical && i < sam_base.size(); ++i)
      identical = sam_base[i].to_line() == sam_opt[i].to_line();

    const auto& st = s_opt.stages;
    const double misc = st[util::Stage::kChain] + st[util::Stage::kBswPre] +
                        st[util::Stage::kSamForm] + st[util::Stage::kMisc];
    bench::print_row(
        (ds.name + std::string(identical ? "" : " [OUTPUT MISMATCH!]")).c_str(),
        {bench::fmt(wall_base, 2), bench::fmt(wall_opt, 2),
         bench::fmt(wall_base / wall_opt, 2) + "x", bench::fmt(st[util::Stage::kSmem], 2),
         bench::fmt(st[util::Stage::kSal], 3), bench::fmt(st[util::Stage::kBsw], 2),
         bench::fmt(misc, 2)});

    if (d == 1 && threads == 1) {
      std::printf("\n  [sec 6.3.2] D2 extra extensions from extend-all-then-filter: "
                  "computed=%llu used=%llu extra=%.1f%% (paper: ~13.5%%)\n\n",
                  static_cast<unsigned long long>(s_opt.extensions_computed),
                  static_cast<unsigned long long>(s_opt.extensions_used),
                  100.0 * s_opt.extra_extension_fraction());
    }
  }
}

}  // namespace

int main() {
  const auto index = bench::bench_index();
  run_suite(index, 1);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 1) run_suite(index, hw);
  return 0;
}
