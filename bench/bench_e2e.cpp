// Figure 5 reproduction: end-to-end compute time of the baseline
// (original BWA-MEM model) vs the optimized (batch) driver on all five
// dataset analogs, single thread and all hardware threads, with the
// per-kernel stacked breakdown (SMEM / SAL / BSW / Misc) and speedups.
// Also reports the §6.3.2 extra-seed statistics (paper: ~14% extra pairs).
//
// Paper reference (SKX): single-thread speedups 2.6x-3.5x; single-socket
// 1.7x-2.4x.  Shape to reproduce: optimized wins on every dataset; SAL
// nearly vanishes from the optimized bars; Misc grows in relative share.
//
// --paired runs the paired-end suite instead: end-to-end throughput of the
// paired batch driver (insert-size calibration + pair scoring + BSW mate
// rescue) with the per-stage breakdown and the mate-rescue counter line,
// written to BENCH_pe.json.  --smoke caps the workload for CI.
//
// --trace-overhead gates the observability contract: tracing compiled in
// but DISABLED must cost < 1% of the batch-driver run (measured as
// span-site count x per-site disabled cost), and enabling tracing must
// leave the SAM byte-identical.  Writes BENCH_trace_overhead.json.
#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "align/aligner.h"
#include "bench_common.h"
#include "util/trace.h"

using namespace mem2;

namespace {

void run_suite(const index::Mem2Index& index, int threads) {
  bench::print_header("Figure 5: end-to-end compute, " + std::to_string(threads) +
                      " thread(s)");
  bench::print_row("Dataset",
                   {"orig (s)", "opt (s)", "speedup", "SMEM", "SAL", "BSW", "Misc"});

  for (int d = 0; d < 5; ++d) {
    const auto ds = bench::bench_dataset(index, d);

    align::DriverOptions base;
    base.mode = align::Mode::kBaseline;
    base.threads = threads;
    align::DriverOptions opt;
    opt.mode = align::Mode::kBatch;
    opt.threads = threads;

    // Session API: aligners constructed (and validated) outside the timed
    // region; the timed call is open -> submit -> finish.
    const align::Aligner aligner_base(index, base);
    const align::Aligner aligner_opt(index, opt);
    align::CollectSamSink sink_base, sink_opt;
    align::DriverStats s_base, s_opt;
    util::Timer t;
    bench::require_ok(aligner_base.align(ds.reads, sink_base, &s_base));
    const double wall_base = t.seconds();
    t.restart();
    bench::require_ok(aligner_opt.align(ds.reads, sink_opt, &s_opt));
    const double wall_opt = t.seconds();
    const auto& sam_base = sink_base.records();
    const auto& sam_opt = sink_opt.records();

    // Identity check (the paper's like-for-like replacement property).
    bool identical = sam_base.size() == sam_opt.size();
    for (std::size_t i = 0; identical && i < sam_base.size(); ++i)
      identical = sam_base[i].to_line() == sam_opt[i].to_line();

    const auto& st = s_opt.stages;
    const double misc = st[util::Stage::kChain] + st[util::Stage::kBswPre] +
                        st[util::Stage::kSamForm] + st[util::Stage::kMisc];
    bench::print_row(
        (ds.name + std::string(identical ? "" : " [OUTPUT MISMATCH!]")).c_str(),
        {bench::fmt(wall_base, 2), bench::fmt(wall_opt, 2),
         bench::fmt(wall_base / wall_opt, 2) + "x", bench::fmt(st[util::Stage::kSmem], 2),
         bench::fmt(st[util::Stage::kSal], 3), bench::fmt(st[util::Stage::kBsw], 2),
         bench::fmt(misc, 2)});

    if (d == 1 && threads == 1) {
      std::printf("\n  [sec 6.3.2] D2 extra extensions from extend-all-then-filter: "
                  "computed=%llu used=%llu extra=%.1f%% (paper: ~13.5%%)\n\n",
                  static_cast<unsigned long long>(s_opt.extensions_computed),
                  static_cast<unsigned long long>(s_opt.extensions_used),
                  100.0 * s_opt.extra_extension_fraction());
    }
  }
}

struct PairedRun {
  int threads = 0;
  double seconds = 0;
  double pairs_per_sec = 0;
  util::StageTimes stages;
  util::SwCounters counters;
  std::size_t records = 0;
};

PairedRun run_paired_once(const index::Mem2Index& index,
                          const std::vector<seq::Read>& reads, int threads,
                          std::vector<std::string>* sam_out) {
  align::DriverOptions opt;
  opt.mode = align::Mode::kBatch;
  opt.paired = true;
  opt.threads = threads;

  const align::Aligner aligner(index, opt);
  align::CollectSamSink sink;
  util::Timer t;
  align::Stream stream = aligner.open(sink);
  bench::require_ok(stream.submit(std::span<const seq::Read>(reads)));
  bench::require_ok(stream.finish());

  PairedRun run;
  run.threads = threads;
  run.seconds = t.seconds();
  run.pairs_per_sec = static_cast<double>(reads.size() / 2) / run.seconds;
  run.stages = stream.stats().stages;
  run.counters = stream.stats().counters;
  run.records = sink.records().size();
  if (sam_out) {
    sam_out->clear();
    for (const auto& rec : sink.records()) sam_out->push_back(rec.to_line());
  }
  return run;
}

int run_paired_suite(bool smoke) {
  const auto index = bench::bench_index();
  const double scale = smoke ? 0.2 : bench::bench_scale();

  seq::PairSimConfig cfg;
  cfg.seed = 20190528;
  cfg.read_length = 101;
  cfg.num_pairs = std::max<std::int64_t>(500, static_cast<std::int64_t>(6250 * scale));
  cfg.insert_mean = 420;
  cfg.insert_std = 45;
  cfg.substitution_rate = 0.012;
  cfg.insertion_rate = 0.0005;
  cfg.deletion_rate = 0.0005;
  cfg.damage_fraction = 0.05;  // keep the rescue path measurably busy
  const auto reads = seq::simulate_pairs(index.ref(), cfg);

  bench::print_header("Paired-end: batch driver + pair scoring + mate rescue");
  bench::print_row("Threads", {"time (s)", "pairs/s", "SMEM", "BSW", "PAIR", "Misc"});

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<PairedRun> runs;
  std::vector<std::string> sam1, samN;
  runs.push_back(run_paired_once(index, reads, 1, &sam1));
  if (hw > 1) runs.push_back(run_paired_once(index, reads, hw, &samN));
  const bool identical = samN.empty() || sam1 == samN;

  for (const auto& r : runs) {
    const auto& st = r.stages;
    const double misc = st[util::Stage::kChain] + st[util::Stage::kBswPre] +
                        st[util::Stage::kSamForm] + st[util::Stage::kMisc];
    bench::print_row(
        (std::to_string(r.threads) + (identical ? "" : " [OUTPUT MISMATCH!]")).c_str(),
        {bench::fmt(r.seconds, 2), bench::fmt(r.pairs_per_sec, 0),
         bench::fmt(st[util::Stage::kSmem], 2), bench::fmt(st[util::Stage::kBsw], 2),
         bench::fmt(st[util::Stage::kPair], 2), bench::fmt(misc, 2)});
  }

  const auto& c = runs[0].counters;
  std::printf(
      "\n  mate rescue: rescued_pairs=%llu rescue_jobs=%llu (windows=%llu "
      "skipped=%llu deduped=%llu hits=%llu) proper_pairs=%llu of %lld\n",
      static_cast<unsigned long long>(c.pe_rescued_pairs),
      static_cast<unsigned long long>(c.pe_rescue_jobs),
      static_cast<unsigned long long>(c.pe_rescue_windows),
      static_cast<unsigned long long>(c.pe_rescue_win_skipped),
      static_cast<unsigned long long>(c.pe_rescue_win_deduped),
      static_cast<unsigned long long>(c.pe_rescue_hits),
      static_cast<unsigned long long>(c.pe_proper_pairs),
      static_cast<long long>(cfg.num_pairs));

  if (std::FILE* f = std::fopen("BENCH_pe.json", "w")) {
    std::fprintf(f, "{\n  \"bench\": \"e2e_paired\",\n");
    std::fprintf(f, "  \"pairs\": %lld,\n  \"read_length\": %d,\n  \"smoke\": %s,\n",
                 static_cast<long long>(cfg.num_pairs), cfg.read_length,
                 smoke ? "true" : "false");
    std::fprintf(f, "  \"outputs_identical_across_threads\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(f,
                 "  \"rescued_pairs\": %llu,\n  \"rescue_jobs\": %llu,\n"
                 "  \"rescue_windows\": %llu,\n  \"rescue_win_skipped\": %llu,\n"
                 "  \"rescue_win_deduped\": %llu,\n  \"rescue_hits\": %llu,\n"
                 "  \"proper_pairs\": %llu,\n",
                 static_cast<unsigned long long>(c.pe_rescued_pairs),
                 static_cast<unsigned long long>(c.pe_rescue_jobs),
                 static_cast<unsigned long long>(c.pe_rescue_windows),
                 static_cast<unsigned long long>(c.pe_rescue_win_skipped),
                 static_cast<unsigned long long>(c.pe_rescue_win_deduped),
                 static_cast<unsigned long long>(c.pe_rescue_hits),
                 static_cast<unsigned long long>(c.pe_proper_pairs));
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto& r = runs[i];
      std::fprintf(f,
                   "    {\"threads\": %d, \"seconds\": %.6f, \"pairs_per_sec\": "
                   "%.1f, \"pair_stage_seconds\": %.6f}%s\n",
                   r.threads, r.seconds, r.pairs_per_sec,
                   r.stages[util::Stage::kPair], i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_pe.json\n");
  }

  if (!identical) {
    std::printf("ERROR: paired SAM differs across thread counts!\n");
    return 1;
  }
  if (c.pe_rescued_pairs == 0) {
    std::printf("ERROR: mate rescue recovered no pairs!\n");
    return 1;
  }
  return 0;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

int run_trace_overhead(bool smoke) {
  const auto index = bench::bench_index();
  const auto ds = bench::bench_dataset(index, 1);  // D2: short reads, busy BSW

  align::DriverOptions opt;
  opt.mode = align::Mode::kBatch;
  opt.threads = 1;
  const align::Aligner aligner(index, opt);

  const auto run_once = [&](std::vector<std::string>* sam_out) {
    align::CollectSamSink sink;
    util::Timer t;
    bench::require_ok(aligner.align(ds.reads, sink, nullptr));
    const double s = t.seconds();
    if (sam_out) {
      sam_out->clear();
      for (const auto& rec : sink.records()) sam_out->push_back(rec.to_line());
    }
    return s;
  };

  auto& tracer = util::Tracer::instance();
  tracer.disable();
  run_once(nullptr);  // warmup: page in the index, settle the allocator

  const int reps = smoke ? 3 : 5;
  std::vector<std::string> sam_off, sam_on;
  std::vector<double> off, on;
  std::uint64_t spans_per_run = 0;
  for (int r = 0; r < reps; ++r)
    off.push_back(run_once(r == 0 ? &sam_off : nullptr));
  for (int r = 0; r < reps; ++r) {
    tracer.enable();
    on.push_back(run_once(r == 0 ? &sam_on : nullptr));
    tracer.disable();
    spans_per_run = tracer.recorded();
  }
  const bool identical = sam_off == sam_on;

  // Disabled-site micro-cost: the contract is one relaxed load + branch.
  // Gate the *measured* product (sites hit per run x ns per disabled site)
  // against 1% of the run — robust to machine noise, unlike an A/B of two
  // full runs whose jitter exceeds the effect being measured.
  const std::size_t iters = smoke ? 5'000'000 : 20'000'000;
  util::Timer mt;
  for (std::size_t i = 0; i < iters; ++i) {
    util::TraceSpan probe("overhead-probe");
  }
  const double ns_per_site = 1e9 * mt.seconds() / static_cast<double>(iters);

  const double t_off = median(off), t_on = median(on);
  const double disabled_pct =
      100.0 * (static_cast<double>(spans_per_run) * ns_per_site) / (t_off * 1e9);
  const double enabled_pct = 100.0 * (t_on - t_off) / t_off;

  bench::print_header("Tracing overhead: batch driver on D2, 1 thread");
  bench::print_row("Metric", {"value"});
  bench::print_row("disabled run (median s)", {bench::fmt(t_off, 3)});
  bench::print_row("enabled run (median s)", {bench::fmt(t_on, 3)});
  bench::print_row("span sites hit per run", {bench::fmt_int(spans_per_run)});
  bench::print_row("disabled cost per site (ns)", {bench::fmt(ns_per_site, 2)});
  bench::print_row("disabled overhead (gate < 1%)",
                   {bench::fmt(disabled_pct, 4) + "%"});
  bench::print_row("enabled overhead (advisory)",
                   {bench::fmt(enabled_pct, 1) + "%"});
  bench::print_row("SAM identical on/off", {identical ? "yes" : "NO"});

  if (std::FILE* f = std::fopen("BENCH_trace_overhead.json", "w")) {
    std::fprintf(f, "{\n  \"bench\": \"trace_overhead\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(f, "  \"reads\": %zu,\n  \"reps\": %d,\n", ds.reads.size(),
                 reps);
    std::fprintf(f, "  \"disabled_seconds\": %.6f,\n  \"enabled_seconds\": %.6f,\n",
                 t_off, t_on);
    std::fprintf(f, "  \"spans_per_run\": %llu,\n",
                 static_cast<unsigned long long>(spans_per_run));
    std::fprintf(f, "  \"disabled_ns_per_site\": %.3f,\n", ns_per_site);
    std::fprintf(f, "  \"disabled_overhead_pct\": %.6f,\n", disabled_pct);
    std::fprintf(f, "  \"enabled_overhead_pct\": %.3f,\n", enabled_pct);
    std::fprintf(f, "  \"sam_identical\": %s\n}\n", identical ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_trace_overhead.json\n");
  }

  if (!identical) {
    std::printf("ERROR: SAM differs with tracing enabled!\n");
    return 1;
  }
  if (disabled_pct >= 1.0) {
    std::printf("ERROR: disabled tracing costs %.4f%% (gate < 1%%)\n",
                disabled_pct);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool paired = false, smoke = false, trace_overhead = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--paired")) paired = true;
    if (!std::strcmp(argv[i], "--smoke")) smoke = true;
    if (!std::strcmp(argv[i], "--trace-overhead")) trace_overhead = true;
  }
  if (trace_overhead) return run_trace_overhead(smoke);
  if (paired) return run_paired_suite(smoke);

  const auto index = bench::bench_index();
  run_suite(index, 1);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 1) run_suite(index, hw);
  return 0;
}
