// Table 5 reproduction: the SAL kernel — compressed (LF-walk) suffix array
// vs uncompressed flat array, on SA rows harvested exactly the way the
// paper did: by running the seeding stages on real(istic) reads and
// intercepting the inputs to SAL.
//
// Paper reference (Table 5): 5190.7 -> 25.8 instructions per offset,
// time 64.47s -> 0.35s (183x).  Shape to reproduce: O(d) LF steps and
// several memory loads per lookup collapse to a single load; speedup of
// two or more orders of magnitude, growing with the compression factor.
#include "bench_common.h"
#include "smem/seeding.h"
#include "util/perf_counters.h"

using namespace mem2;

int main() {
  const auto index = bench::bench_index();
  auto d2 = bench::bench_dataset(index, 1);

  // Harvest SAL inputs: every (row) the pipeline would look up.
  std::vector<idx_t> rows;
  {
    smem::SmemWorkspace ws;
    std::vector<smem::Smem> smems;
    smem::SeedingOptions sopt;
    chain::ChainOptions copt;
    const util::PrefetchPolicy pf{true};
    for (const auto& read : d2.reads) {
      std::vector<seq::Code> q(read.bases.size());
      for (std::size_t i = 0; i < q.size(); ++i) q[i] = seq::char_to_code(read.bases[i]);
      smem::collect_smems(index.fm32(), q, sopt, smems, ws, pf);
      for (const auto& m : smems) {
        const idx_t step = m.bi.s > copt.max_occ ? m.bi.s / copt.max_occ : 1;
        idx_t count = 0;
        for (idx_t k = 0; k < m.bi.s && count < copt.max_occ; k += step, ++count)
          rows.push_back(m.bi.k + k);
      }
    }
  }

  bench::print_header("Table 5: SAL kernel (D2 analog, " +
                      std::to_string(rows.size()) + " SA offsets)");

  struct Run {
    double seconds;
    util::SwCounters ctr;
    util::PerfSample hw;
    std::uint64_t checksum;
  };
  auto measure = [&](auto&& lookup) {
    util::tls_counters().reset();
    util::PerfCounters perf;
    Run r{};
    util::Timer t;
    perf.start();
    std::uint64_t sum = 0;
    for (const idx_t row : rows) sum += static_cast<std::uint64_t>(lookup(row));
    r.hw = perf.stop();
    r.seconds = t.seconds();
    r.ctr = util::tls_counters();
    r.checksum = sum;
    return r;
  };

  const Run orig = measure([&](idx_t row) { return index.sa_lookup_baseline(row); });
  const Run opt = measure([&](idx_t row) { return index.sa_lookup_flat(row); });
  if (orig.checksum != opt.checksum) {
    std::printf("ERROR: SAL outputs differ!\n");
    return 1;
  }

  const double n = static_cast<double>(rows.size());
  bench::print_row("Counter", {"Original", "Optimized"});
  bench::print_row("LF steps per offset",
                   {bench::fmt(orig.ctr.sa_lf_steps / n), bench::fmt(opt.ctr.sa_lf_steps / n)});
  bench::print_row("memory loads per offset",
                   {bench::fmt(orig.ctr.sa_memory_loads / n),
                    bench::fmt(opt.ctr.sa_memory_loads / n)});
  if (orig.hw.valid) {
    bench::print_row("instructions per offset [hw]",
                     {bench::fmt(orig.hw.instructions / n, 1),
                      bench::fmt(opt.hw.instructions / n, 1)});
    bench::print_row("cache misses (x1e3) [hw]",
                     {bench::fmt_int(orig.hw.cache_misses / 1000),
                      bench::fmt_int(opt.hw.cache_misses / 1000)});
  }
  bench::print_row("memory (MB)",
                   {bench::fmt(static_cast<double>(index.sampled_sa().memory_bytes()) / 1e6),
                    bench::fmt(static_cast<double>(index.flat_sa().memory_bytes()) / 1e6)});
  bench::print_row("time (s)", {bench::fmt(orig.seconds, 4), bench::fmt(opt.seconds, 4)});
  bench::print_row("speedup (paper: 183x)",
                   {bench::fmt(1.0), bench::fmt(orig.seconds / opt.seconds, 1) + "x"});
  std::printf("\nidentical outputs: yes (checksum %llu)\n",
              static_cast<unsigned long long>(opt.checksum));
  return 0;
}
