// Rescue-scan kernel and PAIR-stage benchmark; writes BENCH_rescue.json.
//
// Micro: the reference O(window × probes) nested memcmp scan vs the
// rolling-hash RescueScanner on realistic mate/window sizes (101 bp mates,
// ~500 bp windows, planted repeat fragments), with the anchor sets
// cross-checked — a perf number over diverging kernels is meaningless.
//
// End-to-end: the bench_e2e --paired workload run with rescue skipping off
// and on, reporting PAIR-stage seconds and the windows
// scanned/skipped/deduped counters.  Proper-pair and rescued-pair counts
// must be identical across the two runs (the determinism-preserving claim);
// the bench exits non-zero if they drift.  --smoke caps sizes for CI.
#include <cstring>

#include "align/aligner.h"
#include "bench_common.h"
#include "pair/rescue_scan.h"
#include "util/rng.h"

using namespace mem2;

namespace {

struct MicroResult {
  int windows = 0;
  int reps = 0;
  double ref_us_per_window = 0;
  double roll_us_per_window = 0;
  std::uint64_t anchors = 0;
  bool identical = true;
};

MicroResult run_micro(bool smoke) {
  util::Xoshiro256ss rng(20260727);
  const int n_windows = smoke ? 400 : 4000;
  const int reps = smoke ? 3 : 10;
  const int l_ms = 101, l_win = 500, k = 11;

  std::vector<seq::Code> mate(static_cast<std::size_t>(l_ms));
  for (auto& c : mate) c = static_cast<seq::Code>(rng.below(4));
  std::vector<std::vector<seq::Code>> windows(
      static_cast<std::size_t>(n_windows));
  for (auto& win : windows) {
    win.resize(static_cast<std::size_t>(l_win));
    for (auto& c : win) c = static_cast<seq::Code>(rng.below(4));
    // Half the windows carry a mate fragment (the rescue-hit case); the
    // rest only match by chance (the dominant anchor-less case).
    if (rng.chance(0.5)) {
      const int frag = 20 + static_cast<int>(rng.below(60));
      const int from = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(l_ms - frag + 1)));
      const int to = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(l_win - frag + 1)));
      std::copy(mate.begin() + from, mate.begin() + from + frag,
                win.begin() + to);
    }
  }

  pair::RescueAnchor ref_anchors[pair::kMaxRescueAnchors];
  pair::RescueAnchor roll_anchors[pair::kMaxRescueAnchors];
  MicroResult r;
  r.windows = n_windows;
  r.reps = reps;

  // Correctness first: the two kernels must agree on every window.
  pair::RescueScanner scanner;
  scanner.build(mate, k, 7);
  for (const auto& win : windows) {
    const int n_ref = pair::scan_rescue_anchors(mate, win, k,
                                                pair::kMaxRescueAnchors,
                                                ref_anchors);
    const int n_roll =
        scanner.scan(win, pair::kMaxRescueAnchors, roll_anchors);
    r.anchors += static_cast<std::uint64_t>(n_ref);
    if (n_ref != n_roll) r.identical = false;
    for (int i = 0; r.identical && i < n_ref; ++i)
      r.identical = ref_anchors[i].qbeg == roll_anchors[i].qbeg &&
                    ref_anchors[i].tbeg == roll_anchors[i].tbeg &&
                    ref_anchors[i].len == roll_anchors[i].len &&
                    ref_anchors[i].exact_run == roll_anchors[i].exact_run;
  }

  volatile std::uint64_t sink = 0;
  util::Timer t;
  for (int rep = 0; rep < reps; ++rep)
    for (const auto& win : windows)
      sink += static_cast<std::uint64_t>(pair::scan_rescue_anchors(
          mate, win, k, pair::kMaxRescueAnchors, ref_anchors));
  r.ref_us_per_window = t.seconds() * 1e6 / (reps * n_windows);

  t.restart();
  for (int rep = 0; rep < reps; ++rep) {
    scanner.build(mate, k, 7);  // charge the build to the rolling side
    for (const auto& win : windows)
      sink += static_cast<std::uint64_t>(
          scanner.scan(win, pair::kMaxRescueAnchors, roll_anchors));
  }
  r.roll_us_per_window = t.seconds() * 1e6 / (reps * n_windows);
  return r;
}

struct E2eRun {
  bool rescue_skip = false;
  double seconds = 0;
  double pair_seconds = 0;
  util::SwCounters c;
};

E2eRun run_e2e(const index::Mem2Index& index,
               const std::vector<seq::Read>& reads, bool rescue_skip) {
  align::DriverOptions opt;
  opt.mode = align::Mode::kBatch;
  opt.paired = true;
  opt.pe.rescue_skip = rescue_skip;

  const align::Aligner aligner(index, opt);
  align::CollectSamSink sink;
  align::DriverStats stats;
  util::Timer t;
  bench::require_ok(aligner.align(reads, sink, &stats));
  E2eRun run;
  run.rescue_skip = rescue_skip;
  run.seconds = t.seconds();
  run.pair_seconds = stats.stages[util::Stage::kPair];
  run.c = stats.counters;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (!std::strcmp(argv[i], "--smoke")) smoke = true;

  bench::print_header("Rescue scan micro: reference nested memcmp vs rolling hash");
  const MicroResult micro = run_micro(smoke);
  std::printf("  %d windows x %d reps, %llu anchors, outputs %s\n",
              micro.windows, micro.reps,
              static_cast<unsigned long long>(micro.anchors),
              micro.identical ? "identical" : "DIVERGED!");
  std::printf("  reference: %.3f us/window   rolling: %.3f us/window   speedup %.2fx\n",
              micro.ref_us_per_window, micro.roll_us_per_window,
              micro.ref_us_per_window / micro.roll_us_per_window);

  const auto index = bench::bench_index();
  const double scale = smoke ? 0.2 : bench::bench_scale();
  seq::PairSimConfig cfg;
  cfg.seed = 20190528;  // the bench_e2e --paired workload
  cfg.read_length = 101;
  cfg.num_pairs = std::max<std::int64_t>(500, static_cast<std::int64_t>(6250 * scale));
  cfg.insert_mean = 420;
  cfg.insert_std = 45;
  cfg.substitution_rate = 0.012;
  cfg.insertion_rate = 0.0005;
  cfg.deletion_rate = 0.0005;
  cfg.damage_fraction = 0.05;
  const auto reads = seq::simulate_pairs(index.ref(), cfg);

  bench::print_header("PAIR stage: rescue skipping off vs on (single thread)");
  bench::print_row("rescue_skip", {"total (s)", "PAIR (s)", "scanned", "skipped",
                                   "deduped", "jobs", "proper", "rescued"});
  std::vector<E2eRun> runs;
  for (const bool skip : {false, true}) {
    runs.push_back(run_e2e(index, reads, skip));
    const E2eRun& r = runs.back();
    bench::print_row(skip ? "on" : "off",
                     {bench::fmt(r.seconds, 2), bench::fmt(r.pair_seconds, 2),
                      std::to_string(r.c.pe_rescue_windows),
                      std::to_string(r.c.pe_rescue_win_skipped),
                      std::to_string(r.c.pe_rescue_win_deduped),
                      std::to_string(r.c.pe_rescue_jobs),
                      std::to_string(r.c.pe_proper_pairs),
                      std::to_string(r.c.pe_rescued_pairs)});
  }
  const bool counts_match =
      runs[0].c.pe_proper_pairs == runs[1].c.pe_proper_pairs &&
      runs[0].c.pe_rescued_pairs == runs[1].c.pe_rescued_pairs;
  std::printf("\n  proper/rescued counts %s across skip off/on\n",
              counts_match ? "identical" : "DIFFER!");

  if (std::FILE* f = std::fopen("BENCH_rescue.json", "w")) {
    std::fprintf(f, "{\n  \"bench\": \"rescue\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(f,
                 "  \"micro\": {\"windows\": %d, \"reps\": %d, \"anchors\": %llu,\n"
                 "    \"outputs_identical\": %s,\n"
                 "    \"reference_us_per_window\": %.4f,\n"
                 "    \"rolling_us_per_window\": %.4f,\n"
                 "    \"speedup\": %.3f},\n",
                 micro.windows, micro.reps,
                 static_cast<unsigned long long>(micro.anchors),
                 micro.identical ? "true" : "false", micro.ref_us_per_window,
                 micro.roll_us_per_window,
                 micro.ref_us_per_window / micro.roll_us_per_window);
    std::fprintf(f, "  \"pairs\": %lld,\n  \"counts_match\": %s,\n  \"e2e\": [\n",
                 static_cast<long long>(cfg.num_pairs),
                 counts_match ? "true" : "false");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const E2eRun& r = runs[i];
      std::fprintf(f,
                   "    {\"rescue_skip\": %s, \"seconds\": %.6f, "
                   "\"pair_stage_seconds\": %.6f,\n"
                   "     \"windows_scanned\": %llu, \"windows_skipped\": %llu, "
                   "\"windows_deduped\": %llu,\n"
                   "     \"rescue_jobs\": %llu, \"rescue_hits\": %llu, "
                   "\"proper_pairs\": %llu, \"rescued_pairs\": %llu}%s\n",
                   r.rescue_skip ? "true" : "false", r.seconds, r.pair_seconds,
                   static_cast<unsigned long long>(r.c.pe_rescue_windows),
                   static_cast<unsigned long long>(r.c.pe_rescue_win_skipped),
                   static_cast<unsigned long long>(r.c.pe_rescue_win_deduped),
                   static_cast<unsigned long long>(r.c.pe_rescue_jobs),
                   static_cast<unsigned long long>(r.c.pe_rescue_hits),
                   static_cast<unsigned long long>(r.c.pe_proper_pairs),
                   static_cast<unsigned long long>(r.c.pe_rescued_pairs),
                   i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_rescue.json\n");
  }

  if (!micro.identical) {
    std::printf("ERROR: rolling-hash scan diverged from the reference!\n");
    return 1;
  }
  if (!counts_match) {
    std::printf("ERROR: rescue skipping changed proper/rescued counts!\n");
    return 1;
  }
  return 0;
}
