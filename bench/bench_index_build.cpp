// Chromosome-scale index construction + DRAM-resident bandwidth validation.
//
// Builds the index for a multi-contig simulated reference big enough that
// the occ tables and the flat SA spill far outside LLC (default 256 Mbp,
// MEM2_BENCH_GENOME / --smoke override), then validates three things the
// small-genome benches cannot:
//
//   1. Memory discipline: peak build RSS divided by the doubled text length
//      must stay under --gate bytes/char (default 10; the paper's index
//      fits chromosome-scale references in commodity DRAM).
//   2. Determinism: the parallel SA-IS must produce byte-identical suffix
//      arrays at 1 and 4 threads.
//   3. DRAM-resident kernel behavior: the SMEM configurations of Table 4
//      and the SAL comparison of Table 5, re-run against the big index so
//      occ/SA loads actually miss cache.
//
// Emits BENCH_index_build.json; exits nonzero if the RSS gate or any
// identity check fails.
#include <cstring>

#include "bench_common.h"
#include "index/sais.h"
#include "smem/seeding.h"
#include "smem/smem_executor.h"
#include "util/big_alloc.h"
#include "util/perf_counters.h"

using namespace mem2;

namespace {

/// Reset the kernel's peak-RSS watermark (Linux >= 4.0) so VmHWM measures
/// only what happens after this call.  Returns false (watermark includes
/// earlier history) when /proc is read-only.
bool reset_peak_rss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (!f) return false;
  const bool ok = std::fputs("5", f) >= 0;
  std::fclose(f);
  return ok;
}

struct Phase {
  std::string name;
  double seconds;
};

struct KernelRun {
  const char* key;
  double seconds = 0;
  std::uint64_t hash = 0;
  std::size_t smems = 0;
};

std::uint64_t smem_hash(std::uint64_t h, const std::vector<smem::Smem>& v) {
  for (const auto& m : v) {
    h = (h ^ static_cast<std::uint64_t>(m.qb * 131 + m.qe)) * 1099511628211ull;
    h = (h ^ static_cast<std::uint64_t>(m.bi.k)) * 1099511628211ull;
    h = (h ^ static_cast<std::uint64_t>(m.bi.s)) * 1099511628211ull;
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  double gate = 10.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--gate") == 0 && i + 1 < argc)
      gate = std::atof(argv[++i]);
  }

  // MEM2_BENCH_GENOME wins if set; otherwise 256M (32M for --smoke).
  std::int64_t genome_len = bench::bench_genome_length();
  if (genome_len == bench::kDefaultGenomeLen && !std::getenv("MEM2_BENCH_GENOME"))
    genome_len = smoke ? 32'000'000 : 256'000'000;

  bench::print_header("Index build @ " + std::to_string(genome_len) + " bp (" +
                      std::to_string(genome_len / 1'000'000) + " Mbp, " +
                      (smoke ? "smoke" : "full") + ")");

  util::Timer t_sim;
  auto ref = seq::simulate_genome(bench::bench_genome_config_for(genome_len));
  const double sim_seconds = t_sim.seconds();
  std::printf("%-28s %8.1f s\n", "simulate-genome", sim_seconds);

  const double n2 = 2.0 * static_cast<double>(ref.length());
  const bool rss_reset = reset_peak_rss();

  std::vector<Phase> phases;
  index::IndexBuildOptions opt;
  opt.threads = 0;  // OpenMP default
  opt.progress = [&](const char* phase, double seconds) {
    phases.push_back({phase, seconds});
    std::printf("%-28s %8.1f s   rss %6.0f MB\n", phase, seconds,
                static_cast<double>(util::current_rss_bytes()) / 1e6);
    std::fflush(stdout);
  };
  util::Timer t_build;
  const auto index = index::Mem2Index::build(std::move(ref), opt);
  const double build_seconds = t_build.seconds();

  const double peak_rss = static_cast<double>(util::peak_rss_bytes());
  const double bytes_per_char = peak_rss / n2;
  const bool gate_ok = !rss_reset || bytes_per_char <= gate;
  std::printf("\nbuild total: %.1f s, peak RSS %.0f MB -> %.2f bytes/char "
              "(gate %.1f%s): %s\n",
              build_seconds, peak_rss / 1e6, bytes_per_char, gate,
              rss_reset ? "" : ", watermark reset unavailable",
              gate_ok ? "PASS" : "FAIL");

  // -------- parallel SA-IS determinism on a slice of this reference.
  const std::size_t slice_len =
      std::min<std::size_t>(static_cast<std::size_t>(index.l_pac()), 8'000'000);
  std::vector<seq::Code> slice(slice_len);
  index.ref().pac().extract(0, slice_len, slice.data());
  const auto sa1 = index::build_suffix_array(slice, 1);
  const auto sa4 = index::build_suffix_array(slice, 4);
  const auto sa_u32 = index::build_suffix_array_u32(slice, 4);
  bool sa_identical = sa1 == sa4 && sa_u32.size() == sa1.size();
  if (sa_identical)
    for (std::size_t i = 0; i < sa1.size(); ++i)
      if (static_cast<idx_t>(sa_u32[i]) != sa1[i]) { sa_identical = false; break; }
  std::printf("parallel SA-IS identity (1 vs 4 threads, %zu bp slice): %s\n",
              slice_len, sa_identical ? "PASS" : "FAIL");

  // -------- DRAM-resident SMEM kernel (Table 4 configs on the big index).
  auto d2 = bench::bench_dataset(index, 1);
  if (smoke && d2.reads.size() > 200) d2.reads.resize(200);
  std::vector<std::vector<seq::Code>> queries(d2.reads.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const std::string& bases = d2.reads[i].bases;
    queries[i].resize(bases.size());
    for (std::size_t j = 0; j < bases.size(); ++j)
      queries[i][j] = seq::char_to_code(bases[j]);
  }

  KernelRun smem_runs[] = {
      {"cp128_scalar"}, {"cp32_nopf"}, {"cp32_pf"}, {"cp32_pf_k8"}};
  const smem::SeedingOptions sopt;
  std::vector<std::vector<smem::Smem>> outs(queries.size());
  auto run_smem = [&](KernelRun& r, bool cp32, bool prefetch, int inflight) {
    for (auto& o : outs) o.clear();
    const util::PrefetchPolicy pf{prefetch};
    util::Timer t;
    if (inflight > 0) {
      smem::SmemExecutor ex(inflight);
      std::vector<smem::QueryRef> refs(queries.size());
      for (std::size_t i = 0; i < queries.size(); ++i)
        refs[i] = smem::QueryRef{queries[i], &outs[i]};
      ex.collect(index.fm32(), refs, sopt, pf);
    } else {
      smem::SmemWorkspace ws;
      for (std::size_t i = 0; i < queries.size(); ++i) {
        if (cp32)
          smem::collect_smems(index.fm32(), queries[i], sopt, outs[i], ws, pf);
        else
          smem::collect_smems(index.fm128(), queries[i], sopt, outs[i], ws, pf);
      }
    }
    r.seconds = t.seconds();
    r.hash = 0;
    r.smems = 0;
    for (const auto& o : outs) {
      r.smems += o.size();
      r.hash = smem_hash(r.hash, o);
    }
  };
  run_smem(smem_runs[0], false, false, 0);
  run_smem(smem_runs[1], true, false, 0);
  run_smem(smem_runs[2], true, true, 0);
  run_smem(smem_runs[3], true, true, 8);
  bool smem_identical = true;
  for (const auto& r : smem_runs)
    smem_identical &= r.hash == smem_runs[0].hash && r.smems == smem_runs[0].smems;

  bench::print_header("DRAM-resident SMEM kernel (" +
                      std::to_string(d2.reads.size()) + " reads)");
  for (const auto& r : smem_runs)
    bench::print_row(r.key, {bench::fmt(r.seconds, 4),
                             bench::fmt(smem_runs[0].seconds / r.seconds, 2) + "x"});
  std::printf("identical outputs: %s\n", smem_identical ? "yes" : "NO");

  // -------- DRAM-resident SAL (Table 5 on the big index): harvest the rows
  // the pipeline would look up, then compare LF-walk vs flat load.
  std::vector<idx_t> rows;
  {
    chain::ChainOptions copt;
    for (const auto& o : outs)
      for (const auto& m : o) {
        const idx_t step = m.bi.s > copt.max_occ ? m.bi.s / copt.max_occ : 1;
        idx_t count = 0;
        for (idx_t k = 0; k < m.bi.s && count < copt.max_occ; k += step, ++count)
          rows.push_back(m.bi.k + k);
      }
  }
  double sal_base_s = 0, sal_flat_s = 0;
  std::uint64_t sal_base_sum = 0, sal_flat_sum = 0;
  {
    util::Timer t;
    for (const idx_t row : rows)
      sal_base_sum += static_cast<std::uint64_t>(index.sa_lookup_baseline(row));
    sal_base_s = t.seconds();
  }
  {
    util::Timer t;
    for (const idx_t row : rows)
      sal_flat_sum += static_cast<std::uint64_t>(index.sa_lookup_flat(row));
    sal_flat_s = t.seconds();
  }
  const bool sal_identical = sal_base_sum == sal_flat_sum;
  bench::print_header("DRAM-resident SAL (" + std::to_string(rows.size()) +
                      " offsets)");
  bench::print_row("baseline LF-walk", {bench::fmt(sal_base_s, 4)});
  bench::print_row("flat SA", {bench::fmt(sal_flat_s, 4)});
  bench::print_row("speedup", {bench::fmt(sal_flat_s > 0 ? sal_base_s / sal_flat_s : 0, 1) + "x"});
  std::printf("identical outputs: %s\n", sal_identical ? "yes" : "NO");

  if (std::FILE* f = std::fopen("BENCH_index_build.json", "w")) {
    std::fprintf(f, "{\n  \"bench\": \"index_build\",\n");
    std::fprintf(f, "  \"genome_len\": %lld,\n  \"smoke\": %s,\n",
                 static_cast<long long>(genome_len), smoke ? "true" : "false");
    std::fprintf(f, "  \"simulate_seconds\": %.3f,\n  \"build_seconds\": %.3f,\n",
                 sim_seconds, build_seconds);
    std::fprintf(f, "  \"phases\": {");
    for (std::size_t i = 0; i < phases.size(); ++i)
      std::fprintf(f, "%s\"%s\": %.3f", i ? ", " : "", phases[i].name.c_str(),
                   phases[i].seconds);
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"peak_rss_bytes\": %.0f,\n  \"bytes_per_char\": %.3f,\n",
                 peak_rss, bytes_per_char);
    std::fprintf(f, "  \"rss_gate\": %.2f,\n  \"rss_gate_ok\": %s,\n", gate,
                 gate_ok ? "true" : "false");
    std::fprintf(f, "  \"index_memory_bytes\": %zu,\n", index.memory_bytes());
    std::fprintf(f, "  \"sa_parallel_identical\": %s,\n",
                 sa_identical ? "true" : "false");
    std::fprintf(f, "  \"smem_dram_resident\": {\n");
    for (std::size_t i = 0; i < std::size(smem_runs); ++i)
      std::fprintf(f, "    \"%s\": %.4f%s\n", smem_runs[i].key,
                   smem_runs[i].seconds, i + 1 < std::size(smem_runs) ? "," : "");
    std::fprintf(f, "  },\n  \"smem_outputs_identical\": %s,\n",
                 smem_identical ? "true" : "false");
    std::fprintf(f, "  \"sal_dram_resident\": {\"offsets\": %zu, "
                 "\"baseline_seconds\": %.4f, \"flat_seconds\": %.4f},\n",
                 rows.size(), sal_base_s, sal_flat_s);
    std::fprintf(f, "  \"sal_outputs_identical\": %s\n}\n",
                 sal_identical ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_index_build.json\n");
  }

  const bool ok = gate_ok && sa_identical && smem_identical && sal_identical;
  return ok ? 0 : 1;
}
