// Intercept real BSW inputs, the way the paper prepared its kernel
// benchmarks ("we executed BWA-MEM using read datasets and intercepted
// inputs to each of the kernels"): run the full seeding/chaining/extension
// pipeline with a recording extension source and keep a copy of every
// (query, target, h0, w) job it issues.
#pragma once

#include <deque>

#include "align/extend.h"
#include "align/region.h"
#include "bench_common.h"
#include "chain/chain.h"
#include "smem/seeding.h"

namespace mem2::bench {

struct HarvestedJobs {
  std::deque<std::vector<seq::Code>> storage;  // stable buffer backing
  std::vector<bsw::ExtendJob> jobs;
};

namespace detail {

class RecordingSource final : public align::SeedExtendSource {
 public:
  RecordingSource(const bsw::KswParams& params, HarvestedJobs& sink)
      : params_(params), sink_(sink) {}

  bsw::KswResult extend(int, int, int, int, const bsw::ExtendJob& job) override {
    auto& q = sink_.storage.emplace_back(job.query, job.query + job.qlen);
    auto& t = sink_.storage.emplace_back(job.target, job.target + job.tlen);
    bsw::ExtendJob copy = job;
    copy.query = q.data();
    copy.target = t.data();
    sink_.jobs.push_back(copy);
    return bsw::ksw_extend_scalar(job, params_);
  }

 private:
  bsw::KswParams params_;
  HarvestedJobs& sink_;
};

}  // namespace detail

inline HarvestedJobs harvest_bsw_jobs(const index::Mem2Index& index,
                                      const std::vector<seq::Read>& reads,
                                      const align::MemOptions& opt) {
  HarvestedJobs out;
  detail::RecordingSource source(opt.ksw, out);
  smem::SmemWorkspace ws;
  std::vector<smem::Smem> smems;
  std::vector<align::AlnReg> regs;

  for (const auto& read : reads) {
    std::vector<seq::Code> q(read.bases.size());
    for (std::size_t i = 0; i < q.size(); ++i) q[i] = seq::char_to_code(read.bases[i]);
    const std::vector<seq::Code> q_rev(q.rbegin(), q.rend());
    align::ExtendContext ctx{opt, index, q, q_rev};

    smem::collect_smems(index.fm32(), q, opt.seeding, smems, ws,
                        util::PrefetchPolicy{true});
    std::vector<chain::Seed> seeds;
    chain::seeds_from_smems(
        smems, opt.chaining, [&](idx_t row) { return index.sa_lookup_flat(row); },
        seeds);
    const double frac_rep = chain::repetitive_fraction(
        smems, static_cast<int>(q.size()), opt.chaining.max_occ);
    auto chains = chain::build_chains(index.ref(), index.l_pac(), seeds,
                                      static_cast<int>(q.size()), opt.chaining, frac_rep);
    chain::filter_chains(chains, opt.chaining);
    regs.clear();
    align::process_chains(ctx, chains, source, regs);
  }
  return out;
}

}  // namespace mem2::bench
