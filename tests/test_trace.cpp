// Span tracer (util/trace.h): ring wraparound must keep the newest window
// and count the rest in dropped(), per-name aggregates must stay exact
// under wraparound and merge across threads, the Chrome trace-event export
// must be well-formed JSON (parsed here with a strict validator) with
// pid = stream / tid = worker attribution, and — the contract the whole
// feature rides on — enabling tracing must not change the SAM output.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "align/aligner.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"
#include "util/trace.h"

namespace mem2::util {
namespace {

// Minimal strict JSON validator (RFC 8259 grammar, no semantics): enough
// to prove the exporter never emits a torn document, whatever span names
// or counts land in the ring.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}
  bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return i_ == s_.size();
  }

 private:
  bool eof() const { return i_ >= s_.size(); }
  char peek() const { return s_[i_]; }
  bool eat(char c) {
    if (eof() || s_[i_] != c) return false;
    ++i_;
    return true;
  }
  void ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++i_;
  }
  bool lit(const char* t) {
    for (; *t; ++t)
      if (!eat(*t)) return false;
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (!eof()) {
      const char c = s_[i_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (eof()) return false;
        const char e = s_[i_++];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k)
            if (eof() || !std::isxdigit(static_cast<unsigned char>(s_[i_++])))
              return false;
        } else if (!std::strchr("\"\\/bfnrt", e)) {
          return false;
        }
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = i_;
    if (eat('-')) {
    }
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++i_;
    if (!eof() && peek() == '.') {
      ++i_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++i_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++i_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++i_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++i_;
    }
    return i_ > start;
  }
  bool object() {
    if (!eat('{')) return false;
    ws();
    if (eat('}')) return true;
    do {
      ws();
      if (!string()) return false;
      ws();
      if (!eat(':')) return false;
      ws();
      if (!value()) return false;
      ws();
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    ws();
    if (eat(']')) return true;
    do {
      ws();
      if (!value()) return false;
      ws();
    } while (eat(','));
    return eat(']');
  }
  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return lit("true");
      case 'f': return lit("false");
      case 'n': return lit("null");
      default: return number();
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

std::string export_json() {
  std::ostringstream os;
  Tracer::instance().write_chrome_trace(os);
  return os.str();
}

std::uint64_t agg_count(const char* name) {
  for (const auto& a : Tracer::instance().aggregate())
    if (a.name == std::string(name)) return a.count;
  return 0;
}

TEST(Trace, DisabledRecordsNothing) {
  auto& tracer = Tracer::instance();
  tracer.set_ring_capacity(std::size_t{1} << 10);
  tracer.enable();
  tracer.disable();
  {
    TraceSpan span("should-not-appear");
  }
  trace_instant("nor-this", 0);
  trace_interval("nor-that", 1, 2, 0);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.aggregate().empty());
}

TEST(Trace, SpansInstantsAndIntervalsRecord) {
  auto& tracer = Tracer::instance();
  tracer.set_ring_capacity(std::size_t{1} << 10);
  tracer.enable();
  {
    TraceStreamScope scope(7);
    TraceSpan span("unit-work");
  }
  trace_instant("unit-mark", 7);
  trace_interval("unit-gap", tsc_now() - 100, tsc_now(), 7);
  tracer.disable();

  EXPECT_EQ(tracer.recorded(), 3u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(agg_count("unit-work"), 1u);
  EXPECT_EQ(agg_count("unit-mark"), 1u);

  const std::string json = export_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unit-work\""), std::string::npos);
  // All three events belong to stream 7 and its lane is named.
  EXPECT_NE(json.find("\"pid\":7"), std::string::npos);
  EXPECT_NE(json.find("stream 7"), std::string::npos);
  // The instant renders as a Chrome "i" phase, the span as "X".
  EXPECT_GE(count_occurrences(json, "\"ph\":\"i\""), 1u);
  EXPECT_GE(count_occurrences(json, "\"ph\":\"X\""), 1u);
}

TEST(Trace, StreamScopeRestoresOuterId) {
  set_trace_stream_id(3);
  {
    TraceStreamScope inner(9);
    EXPECT_EQ(trace_stream_id(), 9u);
  }
  EXPECT_EQ(trace_stream_id(), 3u);
  set_trace_stream_id(0);
}

TEST(Trace, RingWrapKeepsNewestWindowAndCountsDropped) {
  auto& tracer = Tracer::instance();
  tracer.set_ring_capacity(32);
  tracer.enable();
  for (int i = 0; i < 100; ++i) {
    TraceSpan span("wrap-work");
  }
  tracer.disable();

  EXPECT_EQ(tracer.recorded(), 100u);
  EXPECT_EQ(tracer.dropped(), 100u - 32u);
  // Aggregates are exact despite the wrap.
  EXPECT_EQ(agg_count("wrap-work"), 100u);
  // The export holds exactly one ring's worth of duration events.
  const std::string json = export_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 32u);
}

TEST(Trace, AggregatesMergeAcrossThreadsByName) {
  auto& tracer = Tracer::instance();
  tracer.set_ring_capacity(std::size_t{1} << 10);
  tracer.enable();
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t)
    workers.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        TraceSpan span("mt-work");
      }
    });
  for (auto& w : workers) w.join();
  tracer.disable();

  EXPECT_EQ(agg_count("mt-work"), 150u);
  EXPECT_EQ(tracer.recorded(), 150u);
  const std::string json = export_json();
  EXPECT_TRUE(JsonValidator(json).valid());
  // Distinct rings give distinct Chrome tid lanes: at least 3 thread_name
  // metadata entries reference a worker.
  EXPECT_GE(count_occurrences(json, "worker "), 3u);
}

TEST(Trace, EscapesHostileSpanNames) {
  auto& tracer = Tracer::instance();
  tracer.set_ring_capacity(std::size_t{1} << 10);
  tracer.enable();
  trace_instant("quote\"back\\slash\ttab", 0);
  tracer.disable();
  const std::string json = export_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
}

// ------------------------------------------------------------ SAM identity

TEST(Trace, SamByteIdenticalWithTracingOnAndOff) {
  seq::GenomeConfig g;
  g.seed = 20260807;
  g.contig_lengths = {60000};
  g.repeat_fraction = 0.2;
  const auto index = index::Mem2Index::build(seq::simulate_genome(g));
  seq::ReadSimConfig r;
  r.seed = 17;
  r.num_reads = 120;
  r.read_length = 101;
  const auto reads = seq::simulate_reads(index.ref(), r);

  auto& tracer = Tracer::instance();
  tracer.set_ring_capacity(std::size_t{1} << 12);
  for (int threads : {1, 4}) {
    align::DriverOptions opt;
    opt.mode = align::Mode::kBatch;
    opt.threads = threads;
    opt.batch_size = 32;

    tracer.disable();
    const auto off = align::align_reads(index, reads, opt);
    tracer.enable();
    const auto on = align::align_reads(index, reads, opt);
    tracer.disable();

    ASSERT_EQ(off.size(), on.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < off.size(); ++i)
      ASSERT_EQ(off[i].to_line(), on[i].to_line())
          << "threads=" << threads << " record=" << i;
    // The traced run actually hit the pipeline instrumentation.
    EXPECT_GT(agg_count("smem"), 0u) << "threads=" << threads;
    EXPECT_GT(tracer.recorded(), 0u);
    const std::string json = export_json();
    EXPECT_TRUE(JsonValidator(json).valid());
  }
}

}  // namespace
}  // namespace mem2::util
