// Streaming session API (aligner.h): the streaming path must be
// byte-identical — header and records — to the one-shot align_reads()
// path for every chunking, thread count and queue depth, including the
// degenerate empty stream; and construction-time validation must surface
// as a Status, not a throw.
#include <gtest/gtest.h>

#include <sstream>

#include "align/aligner.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"

namespace mem2::align {
namespace {

struct StreamFixture {
  index::Mem2Index index;
  std::vector<seq::Read> reads;

  StreamFixture() {
    seq::GenomeConfig g;
    g.seed = 20260727;
    g.contig_lengths = {80000, 40000};
    g.repeat_fraction = 0.2;
    index = index::Mem2Index::build(seq::simulate_genome(g));

    seq::ReadSimConfig r;
    r.seed = 99;
    r.num_reads = 150;
    r.read_length = 101;
    reads = seq::simulate_reads(index.ref(), r);
  }
};

const StreamFixture& fixture() {
  static StreamFixture fx;
  return fx;
}

/// Reference output: header + one-shot records, as the CLI would print it.
std::string one_shot_sam(const index::Mem2Index& index,
                         const std::vector<seq::Read>& reads,
                         const DriverOptions& opt) {
  std::string out = sam_header_for(index, opt);
  for (const auto& rec : align_reads(index, reads, opt)) {
    out += rec.to_line();
    out += '\n';
  }
  return out;
}

/// Streaming output through an OstreamSamSink, submitting `chunk_size`
/// reads per submit() call.
std::string streamed_sam(const index::Mem2Index& index,
                         const std::vector<seq::Read>& reads,
                         const DriverOptions& opt, std::size_t chunk_size,
                         DriverStats* stats = nullptr) {
  std::ostringstream os;
  OstreamSamSink sink(os);
  const Aligner aligner(index, opt);
  EXPECT_TRUE(aligner.ok()) << aligner.status().message();
  Stream stream = aligner.open(sink);
  for (std::size_t i = 0; i < reads.size(); i += chunk_size) {
    const std::size_t end = std::min(reads.size(), i + chunk_size);
    std::vector<seq::Read> chunk(reads.begin() + static_cast<std::ptrdiff_t>(i),
                                 reads.begin() + static_cast<std::ptrdiff_t>(end));
    EXPECT_TRUE(stream.submit(std::move(chunk)).ok());
  }
  const Status st = stream.finish();
  EXPECT_TRUE(st.ok()) << st.message();
  if (stats) *stats += stream.stats();
  return os.str();
}

TEST(StreamApi, ByteIdenticalAcrossChunkSizesAndThreads) {
  const auto& fx = fixture();
  DriverOptions opt;
  opt.mode = Mode::kBatch;
  opt.batch_size = 64;

  const std::string expected = one_shot_sam(fx.index, fx.reads, opt);
  ASSERT_FALSE(expected.empty());

  const std::size_t bs = static_cast<std::size_t>(opt.batch_size);
  for (int threads : {1, 4}) {
    for (std::size_t chunk : {std::size_t{1}, std::size_t{7}, bs, 3 * bs + 1}) {
      DriverOptions o = opt;
      o.threads = threads;
      ASSERT_EQ(streamed_sam(fx.index, fx.reads, o, chunk), expected)
          << "chunk=" << chunk << " threads=" << threads;
    }
  }
}

TEST(StreamApi, BaselineModeStreamsIdentically) {
  const auto& fx = fixture();
  DriverOptions opt;
  opt.mode = Mode::kBaseline;
  opt.batch_size = 32;
  opt.threads = 2;
  ASSERT_EQ(streamed_sam(fx.index, fx.reads, opt, 7),
            one_shot_sam(fx.index, fx.reads, opt));
}

TEST(StreamApi, EmptyStreamEmitsHeaderOnly) {
  const auto& fx = fixture();
  DriverOptions opt;
  opt.threads = 3;

  std::ostringstream os;
  OstreamSamSink sink(os);
  const Aligner aligner(fx.index, opt);
  ASSERT_TRUE(aligner.ok());
  Stream stream = aligner.open(sink);
  const Status st = stream.finish();
  EXPECT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(os.str(), aligner.sam_header());
  EXPECT_EQ(stream.stats().reads, 0u);
  EXPECT_EQ(sink.records_written(), 0u);
}

TEST(StreamApi, DepthOneQueueCompletesAndPreservesOrder) {
  const auto& fx = fixture();
  DriverOptions opt;
  opt.mode = Mode::kBatch;
  opt.batch_size = 16;  // many small batches through a depth-1 queue
  opt.threads = 4;
  opt.queue_depth = 1;
  ASSERT_EQ(streamed_sam(fx.index, fx.reads, opt, 3),
            one_shot_sam(fx.index, fx.reads, opt));
}

TEST(StreamApi, MixedOwnedAndBorrowedSubmitsPreserveOrder) {
  // Interleave copying submit(vector) with zero-copy submit(span) at
  // ragged sizes so view batches, staged top-ups and the staged tail all
  // occur; output must still be byte-identical.
  const auto& fx = fixture();
  DriverOptions opt;
  opt.mode = Mode::kBatch;
  opt.batch_size = 16;
  opt.threads = 2;

  std::ostringstream os;
  OstreamSamSink sink(os);
  const Aligner aligner(fx.index, opt);
  Stream stream = aligner.open(sink);
  bool owned = true;
  for (std::size_t i = 0; i < fx.reads.size(); owned = !owned) {
    const std::size_t n = std::min(fx.reads.size() - i, owned ? std::size_t{5}
                                                              : std::size_t{37});
    if (owned) {
      std::vector<seq::Read> chunk(
          fx.reads.begin() + static_cast<std::ptrdiff_t>(i),
          fx.reads.begin() + static_cast<std::ptrdiff_t>(i + n));
      ASSERT_TRUE(stream.submit(std::move(chunk)).ok());
    } else {
      // fx.reads outlives finish(), so views are safe.
      ASSERT_TRUE(
          stream.submit(std::span<const seq::Read>(fx.reads.data() + i, n)).ok());
    }
    i += n;
  }
  ASSERT_TRUE(stream.finish().ok());
  EXPECT_EQ(os.str(), one_shot_sam(fx.index, fx.reads, opt));
}

TEST(StreamApi, CollectSinkMatchesOstreamSink) {
  const auto& fx = fixture();
  DriverOptions opt;
  opt.batch_size = 64;
  opt.threads = 2;

  const Aligner aligner(fx.index, opt);
  CollectSamSink sink;
  DriverStats stats;
  const Status st = aligner.align(fx.reads, sink, &stats);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(sink.header(), aligner.sam_header());
  EXPECT_EQ(stats.reads, fx.reads.size());

  std::string collected = sink.header();
  for (const auto& rec : sink.records()) {
    collected += rec.to_line();
    collected += '\n';
  }
  EXPECT_EQ(collected, streamed_sam(fx.index, fx.reads, opt, 25));
}

TEST(StreamApi, StatsAggregateAcrossWorkers) {
  const auto& fx = fixture();
  DriverOptions serial, parallel;
  serial.batch_size = parallel.batch_size = 32;
  serial.threads = 1;
  parallel.threads = 4;

  CollectSamSink s1, s4;
  DriverStats st1, st4;
  ASSERT_TRUE(Aligner(fx.index, serial).align(fx.reads, s1, &st1).ok());
  ASSERT_TRUE(Aligner(fx.index, parallel).align(fx.reads, s4, &st4).ok());
  EXPECT_EQ(st1.reads, st4.reads);
  // The pooled job count is a function of batch contents only, so worker
  // count must not change it.
  EXPECT_EQ(st1.extensions_computed, st4.extensions_computed);
  EXPECT_EQ(st1.extensions_used, st4.extensions_used);
  EXPECT_EQ(st1.counters.bsw_pairs, st4.counters.bsw_pairs);
}

TEST(StreamApi, InvalidOptionsSurfaceAsStatusAtConstruction) {
  const auto& fx = fixture();
  DriverOptions opt;
  opt.mem.w = 0;  // invalid band width
  const Aligner aligner(fx.index, opt);
  EXPECT_FALSE(aligner.ok());
  EXPECT_NE(aligner.status().message().find("band width"), std::string::npos);

  // Streams opened from a failed aligner refuse work with the same status.
  std::ostringstream os;
  OstreamSamSink sink(os);
  Stream stream = aligner.open(sink);
  EXPECT_FALSE(stream.submit(fx.reads).ok());
  EXPECT_FALSE(stream.finish().ok());
  EXPECT_TRUE(os.str().empty());  // not even a header

  // The shim converts the construction-time Status into the legacy throw.
  EXPECT_THROW(align_reads(fx.index, fx.reads, opt), invariant_error);

  DriverOptions bad_queue;
  bad_queue.queue_depth = 0;
  EXPECT_FALSE(Aligner(fx.index, bad_queue).ok());
}

TEST(StreamApi, SubmitAfterFinishIsAnError) {
  const auto& fx = fixture();
  CollectSamSink sink;
  const Aligner aligner(fx.index, DriverOptions{});
  Stream stream = aligner.open(sink);
  ASSERT_TRUE(stream.finish().ok());
  EXPECT_FALSE(stream.submit(fx.reads).ok());
  ASSERT_TRUE(stream.finish().ok());  // idempotent
}

TEST(StreamApi, MetricsTrackBatchesRecordsAndQueueDepth) {
  const auto& fx = fixture();
  DriverOptions opt;
  opt.mode = Mode::kBatch;
  opt.batch_size = 16;
  opt.queue_depth = 2;
  opt.threads = 2;
  CollectSamSink sink;
  const Aligner aligner(fx.index, opt);
  Stream stream = aligner.open(sink);
  ASSERT_TRUE(stream.submit(fx.reads).ok());
  ASSERT_TRUE(stream.finish().ok());

  const StreamMetrics m = stream.metrics();
  const std::size_t n_batches = (fx.reads.size() + 15) / 16;
  EXPECT_EQ(m.batches, n_batches);
  EXPECT_EQ(m.records, sink.records().size());
  EXPECT_EQ(m.batch_latency.count(), n_batches);
  EXPECT_GE(m.queue_hwm, 1u);
  EXPECT_LE(m.queue_hwm, 2u);  // bounded by queue_depth
  EXPECT_GE(m.p99(), m.p50());
  EXPECT_GT(m.p50(), 0.0);
}

}  // namespace
}  // namespace mem2::align
