// Scalar BSW kernel: hand-checked alignments, banding/z-drop behaviour, and
// the global (CIGAR) aligner against known answers and invariants.
#include <gtest/gtest.h>

#include "bsw/ksw.h"
#include "seq/dna.h"
#include "util/rng.h"
#include "util/sw_counters.h"

namespace mem2::bsw {
namespace {

std::vector<seq::Code> codes(const char* s) { return seq::encode(s); }

ExtendJob make_job(const std::vector<seq::Code>& q, const std::vector<seq::Code>& t,
                   int h0 = 10, int w = 100) {
  ExtendJob j;
  j.query = q.data();
  j.qlen = static_cast<int>(q.size());
  j.target = t.data();
  j.tlen = static_cast<int>(t.size());
  j.h0 = h0;
  j.w = w;
  return j;
}

TEST(KswExtend, PerfectMatchExtendsToEnd) {
  const auto q = codes("ACGTACGTACGTACGT");
  const auto t = codes("ACGTACGTACGTACGT");
  const KswParams p;
  const auto r = ksw_extend_scalar(make_job(q, t, 10), p);
  // Every base matches: score = h0 + qlen * a.
  EXPECT_EQ(r.score, 10 + 16);
  EXPECT_EQ(r.qle, 16);
  EXPECT_EQ(r.tle, 16);
  EXPECT_EQ(r.gscore, 10 + 16);  // reaches the query end
  EXPECT_EQ(r.gtle, 16);
  EXPECT_EQ(r.max_off, 0);
}

TEST(KswExtend, MismatchReducesScore) {
  const auto q = codes("ACGTACGTACGTACGT");
  auto tt = codes("ACGTACGTACGTACGT");
  tt[8] = seq::complement(tt[8]);  // one mismatch mid-way
  const KswParams p;
  const auto r = ksw_extend_scalar(make_job(q, tt, 10), p);
  EXPECT_EQ(r.score, 10 + 16 - p.a - p.b);  // 15 matches + 1 mismatch
  EXPECT_EQ(r.qle, 16);
}

TEST(KswExtend, PrefixOnlyMatchStopsAtBestCell) {
  // 8 matching bases then garbage: best cell is at (8, 8).
  const auto q = codes("ACGTACGTTTTTTTTT");
  const auto t = codes("ACGTACGTAAAAAAAA");
  const KswParams p;
  const auto r = ksw_extend_scalar(make_job(q, t, 5), p);
  EXPECT_EQ(r.score, 5 + 8);
  EXPECT_EQ(r.qle, 8);
  EXPECT_EQ(r.tle, 8);
}

TEST(KswExtend, DeletionCostsGap) {
  // Target has 2 extra bases mid-way; the 12-base matching tail makes
  // bridging the gap (cost 8) better than stopping before it (gain 12).
  const auto q = codes("ACGTACGTACGTGGCCGGCCAGTT");       // 24 bases
  const auto t = codes("ACGTACGTACGTAAGGCCGGCCAGTT");     // +2 insertion at 12
  const KswParams p;
  const auto r = ksw_extend_scalar(make_job(q, t, 20), p);
  EXPECT_EQ(r.score, 20 + 24 - (p.o_del + 2 * p.e_del));
  EXPECT_EQ(r.qle, 24);
  EXPECT_EQ(r.tle, 26);
}

TEST(KswExtend, GscoreTracksEndToEndAlignment) {
  // Best local score clips the tail, but gscore must span the whole query.
  auto q = codes("ACGTACGTACGTACGT");
  auto t = codes("ACGTACGTACGTACGT");
  q[15] = seq::complement(q[15]);
  q[14] = seq::complement(q[14]);
  const KswParams p;
  const auto r = ksw_extend_scalar(make_job(q, t, 10), p);
  EXPECT_EQ(r.score, 10 + 14);  // clip the 2 mismatching bases
  EXPECT_EQ(r.qle, 14);
  // End-to-end the cheapest way to consume the 2 mismatching query bases is
  // a 2-base insertion (cost 8), beating 2 mismatches (cost 10).
  EXPECT_EQ(r.gscore, 10 + 14 - (p.o_ins + 2 * p.e_ins));
}

TEST(KswExtend, ZdropAbortsChasing) {
  // Long mismatch run after a good prefix: with zdrop the kernel stops early
  // and reports the prefix score.
  std::string qs(100, 'A'), ts(100, 'A');
  for (int i = 20; i < 100; ++i) ts[static_cast<std::size_t>(i)] = 'C';
  const auto q = codes(qs.c_str());
  const auto t = codes(ts.c_str());
  KswParams p;
  p.zdrop = 10;
  auto& ctr = util::tls_counters();
  const auto aborts_before = ctr.bsw_aborted_pairs;
  const auto r = ksw_extend_scalar(make_job(q, t, 7), p);
  EXPECT_EQ(r.score, 7 + 20);
  EXPECT_EQ(ctr.bsw_aborted_pairs, aborts_before + 1);
}

TEST(KswExtend, BandLimitsGapLength) {
  // A 12-base target insertion with a long matching tail: bridging costs 18
  // and gains 30, but needs a band wider than the 12-base offset.  The head
  // must score above the gap cost or the local-alignment zero floor kills
  // the path inside the gap.
  const std::string head = "ACGTACGTACGTACGT";                // 16 bases
  const std::string tail = "GGCCAGTTGGCCAGTTGGCCAGTTGGCCAG";  // 30 bases
  const auto q = codes((head + tail).c_str());
  const auto t = codes((head + std::string(12, 'T') + tail).c_str());
  KswParams p;
  const auto narrow = ksw_extend_scalar(make_job(q, t, 10, /*w=*/4), p);
  const auto wide = ksw_extend_scalar(make_job(q, t, 10, /*w=*/50), p);
  EXPECT_GT(wide.score, narrow.score);
  EXPECT_EQ(wide.score, 10 + 46 - (p.o_del + 12 * p.e_del));
  EXPECT_GT(wide.max_off, 4);
}

TEST(KswExtend, H0SeedsTheAlignment) {
  const auto q = codes("ACGT");
  const auto t = codes("ACGT");
  const KswParams p;
  for (int h0 : {1, 5, 42}) {
    const auto r = ksw_extend_scalar(make_job(q, t, h0), p);
    EXPECT_EQ(r.score, h0 + 4);
  }
}

TEST(KswExtend, AmbiguousBasesScoreMinusOne) {
  const auto q = codes("ACGTNACGT");
  const auto t = codes("ACGTAACGT");
  const KswParams p;
  const auto r = ksw_extend_scalar(make_job(q, t, 10), p);
  EXPECT_EQ(r.score, 10 + 8 - 1);
}

// ----- global aligner ------------------------------------------------------

TEST(KswGlobal, PerfectMatch) {
  const auto q = codes("ACGTACGT");
  const auto t = codes("ACGTACGT");
  Cigar cig;
  const KswParams p;
  const int score = ksw_global(q.data(), 8, t.data(), 8, p, 10, cig);
  EXPECT_EQ(score, 8);
  EXPECT_EQ(cigar_string(cig), "8M");
}

TEST(KswGlobal, SubstitutionStaysM) {
  const auto q = codes("ACGTACGT");
  auto t = codes("ACGTACGT");
  t[3] = seq::complement(t[3]);
  Cigar cig;
  const KswParams p;
  const int score = ksw_global(q.data(), 8, t.data(), 8, p, 10, cig);
  EXPECT_EQ(score, 7 * p.a - p.b);
  EXPECT_EQ(cigar_string(cig), "8M");
}

TEST(KswGlobal, InsertionInQuery) {
  const auto q = codes("ACGTTTACGT");  // 2-base insertion vs target
  const auto t = codes("ACGTACGT");
  Cigar cig;
  const KswParams p;
  const int score = ksw_global(q.data(), 10, t.data(), 8, p, 10, cig);
  EXPECT_EQ(score, 8 * p.a - (p.o_ins + 2 * p.e_ins));
  int q_span = 0, t_span = 0;
  int ins = 0;
  for (const auto& op : cig) {
    if (op.op == 'M') q_span += op.len, t_span += op.len;
    if (op.op == 'I') q_span += op.len, ins += op.len;
    if (op.op == 'D') t_span += op.len;
  }
  EXPECT_EQ(q_span, 10);
  EXPECT_EQ(t_span, 8);
  EXPECT_EQ(ins, 2);
}

TEST(KswGlobal, DeletionInQuery) {
  const auto q = codes("ACGTACGT");
  const auto t = codes("ACGTGGACGT");
  Cigar cig;
  const KswParams p;
  const int score = ksw_global(q.data(), 8, t.data(), 10, p, 10, cig);
  EXPECT_EQ(score, 8 * p.a - (p.o_del + 2 * p.e_del));
  int d = 0;
  for (const auto& op : cig)
    if (op.op == 'D') d += op.len;
  EXPECT_EQ(d, 2);
}

TEST(KswGlobal, EmptyEdgeCases) {
  const auto q = codes("ACGT");
  Cigar cig;
  const KswParams p;
  EXPECT_EQ(ksw_global(q.data(), 4, nullptr, 0, p, 5, cig), -(p.o_ins + 4 * p.e_ins));
  EXPECT_EQ(cigar_string(cig), "4I");
  EXPECT_EQ(ksw_global(nullptr, 0, q.data(), 4, p, 5, cig), -(p.o_del + 4 * p.e_del));
  EXPECT_EQ(cigar_string(cig), "4D");
  EXPECT_EQ(ksw_global(nullptr, 0, nullptr, 0, p, 5, cig), 0);
  EXPECT_EQ(cigar_string(cig), "*");
}

// Property: CIGAR spans always cover both sequences exactly, and the score
// recomputed from the CIGAR path equals the returned score.
class KswGlobalProperty : public ::testing::TestWithParam<int> {};

TEST_P(KswGlobalProperty, CigarConsistentWithScore) {
  util::Xoshiro256ss rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const KswParams p;
  for (int trial = 0; trial < 30; ++trial) {
    const int tlen = 10 + static_cast<int>(rng.below(60));
    std::vector<seq::Code> t(static_cast<std::size_t>(tlen));
    for (auto& c : t) c = static_cast<seq::Code>(rng.below(4));
    // Query = mutated copy (subs + small indels).
    std::vector<seq::Code> q;
    for (const auto c : t) {
      if (rng.chance(0.04)) continue;                      // deletion
      if (rng.chance(0.04)) q.push_back(static_cast<seq::Code>(rng.below(4)));  // insertion
      q.push_back(rng.chance(0.05) ? static_cast<seq::Code>(rng.below(4)) : c);
    }
    if (q.empty()) q.push_back(0);

    Cigar cig;
    const int score =
        ksw_global(q.data(), static_cast<int>(q.size()), t.data(), tlen, p, 20, cig);

    int qi = 0, ti = 0, recomputed = 0;
    const auto mat = p.matrix();
    for (const auto& op : cig) {
      if (op.op == 'M') {
        for (int k = 0; k < op.len; ++k, ++qi, ++ti)
          recomputed += mat[static_cast<std::size_t>(
              t[static_cast<std::size_t>(ti)] * 5 + q[static_cast<std::size_t>(qi)])];
      } else if (op.op == 'I') {
        recomputed -= p.o_ins + p.e_ins * op.len;
        qi += op.len;
      } else if (op.op == 'D') {
        recomputed -= p.o_del + p.e_del * op.len;
        ti += op.len;
      }
    }
    ASSERT_EQ(qi, static_cast<int>(q.size()));
    ASSERT_EQ(ti, tlen);
    ASSERT_EQ(recomputed, score);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KswGlobalProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace mem2::bsw
