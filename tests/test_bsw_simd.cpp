// The paper's BSW correctness contract: every vectorized engine (each ISA x
// precision), under any batching and sorting, must return results
// bit-identical to the scalar ksw_extend kernel.
#include <gtest/gtest.h>

#include "bsw/bsw_batch.h"
#include "bsw/bsw_engine.h"
#include "seq/dna.h"
#include "util/rng.h"
#include "util/sw_counters.h"

namespace mem2::bsw {
namespace {

// A pool of random extension jobs that mimics real chain2aln inputs:
// target = mutated query with indels, varying lengths, varying h0/w.
struct JobPool {
  std::vector<std::vector<seq::Code>> queries, targets;
  std::vector<ExtendJob> jobs;

  JobPool(int n, std::uint64_t seed, int min_len = 5, int max_len = 120,
          double mutate = 0.08) {
    util::Xoshiro256ss rng(seed);
    queries.reserve(static_cast<std::size_t>(n));
    targets.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const int qlen = min_len + static_cast<int>(rng.below(
                                     static_cast<std::uint64_t>(max_len - min_len + 1)));
      std::vector<seq::Code> q(static_cast<std::size_t>(qlen));
      for (auto& c : q) c = static_cast<seq::Code>(rng.below(4));
      std::vector<seq::Code> t;
      for (const auto c : q) {
        if (rng.chance(mutate / 4)) continue;
        if (rng.chance(mutate / 4)) t.push_back(static_cast<seq::Code>(rng.below(4)));
        t.push_back(rng.chance(mutate) ? static_cast<seq::Code>(rng.below(4)) : c);
      }
      // Occasionally extend or truncate the target.
      const int extra = static_cast<int>(rng.below(20));
      for (int k = 0; k < extra; ++k) t.push_back(static_cast<seq::Code>(rng.below(4)));
      if (t.empty()) t.push_back(0);
      // Sprinkle ambiguous bases.
      if (rng.chance(0.2)) q[rng.below(q.size())] = seq::kAmbig;
      if (rng.chance(0.2)) t[rng.below(t.size())] = seq::kAmbig;

      queries.push_back(std::move(q));
      targets.push_back(std::move(t));
    }
    for (int i = 0; i < n; ++i) {
      ExtendJob j;
      j.query = queries[static_cast<std::size_t>(i)].data();
      j.qlen = static_cast<int>(queries[static_cast<std::size_t>(i)].size());
      j.target = targets[static_cast<std::size_t>(i)].data();
      j.tlen = static_cast<int>(targets[static_cast<std::size_t>(i)].size());
      j.h0 = 1 + static_cast<int>(rng.below(60));
      j.w = 5 + static_cast<int>(rng.below(100));
      jobs.push_back(j);
    }
  }
};

std::vector<KswResult> scalar_reference(const std::vector<ExtendJob>& jobs,
                                        const KswParams& p) {
  std::vector<KswResult> out;
  out.reserve(jobs.size());
  for (const auto& j : jobs) out.push_back(ksw_extend_scalar(j, p));
  return out;
}

struct EngineCase {
  util::Isa isa;
  Precision prec;
  const char* label;
};

class BswEngineTest : public ::testing::TestWithParam<EngineCase> {
 protected:
  bool supported() const {
    return util::detect_isa() >= GetParam().isa;
  }
};

TEST_P(BswEngineTest, MatchesScalarOnRandomJobs) {
  if (!supported()) GTEST_SKIP() << "ISA not available";
  const EngineCase ec = GetParam();
  const KswParams p;
  JobPool pool(300, 42 + static_cast<std::uint64_t>(ec.isa));

  // For the 8-bit engine keep only 8-bit-eligible jobs (the batch layer
  // enforces this in production).
  std::vector<ExtendJob> jobs;
  for (const auto& j : pool.jobs)
    if (ec.prec == Precision::k16bit || fits_8bit(j, p)) jobs.push_back(j);
  ASSERT_GT(jobs.size(), 50u);

  const auto expect = scalar_reference(jobs, p);
  const BswEngine engine = get_engine(ec.isa, ec.prec);
  std::vector<KswResult> got(jobs.size());
  for (std::size_t pos = 0; pos < jobs.size(); pos += static_cast<std::size_t>(engine.width)) {
    const int n = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(engine.width), jobs.size() - pos));
    engine.run(&jobs[pos], &got[pos], n, p, nullptr);
  }
  for (std::size_t i = 0; i < jobs.size(); ++i)
    ASSERT_EQ(got[i], expect[i]) << engine.name << " job " << i << " qlen="
                                 << jobs[i].qlen << " tlen=" << jobs[i].tlen;
}

TEST_P(BswEngineTest, MatchesScalarWithZdropVariants) {
  if (!supported()) GTEST_SKIP() << "ISA not available";
  const EngineCase ec = GetParam();
  JobPool pool(150, 77, 20, 90, 0.25);  // high divergence: aborts & z-drops
  for (int zdrop : {0, 5, 100}) {
    KswParams p;
    p.zdrop = zdrop;
    std::vector<ExtendJob> jobs;
    for (const auto& j : pool.jobs)
      if (ec.prec == Precision::k16bit || fits_8bit(j, p)) jobs.push_back(j);
    const auto expect = scalar_reference(jobs, p);
    const BswEngine engine = get_engine(ec.isa, ec.prec);
    std::vector<KswResult> got(jobs.size());
    for (std::size_t pos = 0; pos < jobs.size(); pos += static_cast<std::size_t>(engine.width)) {
      const int n = static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(engine.width), jobs.size() - pos));
      engine.run(&jobs[pos], &got[pos], n, p, nullptr);
    }
    for (std::size_t i = 0; i < jobs.size(); ++i)
      ASSERT_EQ(got[i], expect[i]) << engine.name << " zdrop=" << zdrop << " job " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, BswEngineTest,
    ::testing::Values(EngineCase{util::Isa::kScalar, Precision::k8bit, "scalar8"},
                      EngineCase{util::Isa::kScalar, Precision::k16bit, "scalar16"},
                      EngineCase{util::Isa::kAvx2, Precision::k8bit, "avx2_8"},
                      EngineCase{util::Isa::kAvx2, Precision::k16bit, "avx2_16"},
                      EngineCase{util::Isa::kAvx512, Precision::k8bit, "avx512_8"},
                      EngineCase{util::Isa::kAvx512, Precision::k16bit, "avx512_16"}),
    [](const ::testing::TestParamInfo<EngineCase>& info) {
      return info.param.label;
    });

TEST(BswBatch, ResultsIndependentOfSortingAndIsa) {
  JobPool pool(500, 1234);
  const KswParams p;
  const auto expect = scalar_reference(pool.jobs, p);

  for (bool sort : {false, true}) {
    for (util::Isa isa : {util::Isa::kScalar, util::Isa::kAvx2, util::Isa::kAvx512}) {
      BswBatchOptions opt;
      opt.sort_by_length = sort;
      opt.isa = isa;
      std::vector<KswResult> got;
      BswBatchStats stats;
      extend_batch(pool.jobs, got, p, opt, &stats);
      ASSERT_EQ(got.size(), expect.size());
      for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], expect[i])
            << "sort=" << sort << " isa=" << util::isa_name(isa) << " job " << i;
      EXPECT_EQ(stats.jobs_8bit + stats.jobs_16bit, pool.jobs.size());
    }
  }
}

TEST(BswBatch, Force16BitMatchesAutoSplit) {
  JobPool pool(200, 555);
  const KswParams p;
  BswBatchOptions a, b;
  b.force_16bit = true;
  std::vector<KswResult> ra, rb;
  extend_batch(pool.jobs, ra, p, a, nullptr);
  extend_batch(pool.jobs, rb, p, b, nullptr);
  EXPECT_EQ(ra, rb);
}

TEST(BswBatch, EmptyBatchIsFine) {
  std::vector<ExtendJob> none;
  std::vector<KswResult> out;
  extend_batch(none, out, KswParams{});
  EXPECT_TRUE(out.empty());
}

TEST(BswBatch, SortingReducesWastedCells) {
  // Structural check behind Table 6: with wildly mixed lengths, sorting
  // must reduce total computed cells (the wasted-lane effect).
  JobPool pool(2000, 99, 5, 200, 0.05);
  const KswParams p;
  auto cells_with = [&](bool sort) {
    auto& ctr = util::tls_counters();
    const auto before = ctr.bsw_cells_total;
    BswBatchOptions opt;
    opt.sort_by_length = sort;
    opt.isa = util::detect_isa();
    std::vector<KswResult> out;
    extend_batch(pool.jobs, out, p, opt, nullptr);
    return ctr.bsw_cells_total - before;
  };
  const auto unsorted = cells_with(false);
  const auto sorted = cells_with(true);
  EXPECT_LT(sorted, unsorted);
}

TEST(Fits8Bit, ThresholdBehaviour) {
  KswParams p;
  std::vector<seq::Code> q(100, 0), t(100, 0);
  ExtendJob j;
  j.query = q.data();
  j.target = t.data();
  j.qlen = j.tlen = 100;
  j.w = 10;
  j.h0 = 50;
  EXPECT_TRUE(fits_8bit(j, p));  // 50 + 100 + 5 < 255
  j.h0 = 200;
  EXPECT_FALSE(fits_8bit(j, p));  // 200 + 100 > 255
}

}  // namespace
}  // namespace mem2::bsw
