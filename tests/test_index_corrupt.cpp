// Index integrity (index/index_io.cpp, v2 container): a bit flip in any
// section — payload or checksum footer — and any truncation must surface
// as corruption_error naming the offending section, before any corrupted
// field is used.  The deprecated v1 format must keep loading for one more
// release.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "index/mem2_index.h"
#include "seq/genome_sim.h"
#include "util/common.h"

namespace mem2::index {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// One section frame of the v2 container, located by walking the file.
struct Section {
  std::string name;
  std::size_t payload_beg = 0;
  std::size_t payload_len = 0;
  std::size_t footer_off = 0;  // the xxhash64 checksum of the payload
};

std::vector<Section> parse_sections(const std::string& bytes) {
  std::vector<Section> out;
  std::size_t pos = 4;  // past the magic
  auto u64 = [&](std::size_t off) {
    std::uint64_t v = 0;
    EXPECT_LE(off + 8, bytes.size());
    std::memcpy(&v, bytes.data() + off, 8);
    return v;
  };
  while (pos < bytes.size()) {
    Section s;
    const auto name_len = static_cast<std::size_t>(u64(pos));
    pos += 8;
    s.name = bytes.substr(pos, name_len);
    pos += name_len;
    s.payload_len = static_cast<std::size_t>(u64(pos));
    pos += 8;
    s.payload_beg = pos;
    s.footer_off = pos + s.payload_len;
    pos = s.footer_off + 8;
    out.push_back(std::move(s));
  }
  return out;
}

struct CorruptFixture {
  Mem2Index index;
  std::string bytes;  // pristine v2 file image, kept in memory

  CorruptFixture() {
    seq::GenomeConfig cfg;
    cfg.contig_lengths = {3000, 1000};
    cfg.seed = 42;
    index = Mem2Index::build(seq::simulate_genome(cfg));

    const std::string path =
        (std::filesystem::temp_directory_path() / "mem2_corrupt_seed.m2i")
            .string();
    save_index(path, index);
    bytes = read_file(path);
    std::remove(path.c_str());
  }
};

const CorruptFixture& fx() {
  static CorruptFixture f;
  return f;
}

/// Writes `bytes` to a scratch .m2i, expects load_index to throw
/// corruption_error naming `section`, and cleans up.
void expect_corrupt(const std::string& bytes, const std::string& section,
                    const char* what) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mem2_corrupt_case.m2i")
          .string();
  write_file(path, bytes);
  try {
    load_index(path);
    FAIL() << what << ": corruption in '" << section << "' went undetected";
  } catch (const corruption_error& e) {
    EXPECT_NE(std::string(e.what()).find("'" + section + "'"),
              std::string::npos)
        << what << ": wrong section in: " << e.what();
  }
  std::remove(path.c_str());
}

TEST(IndexCorruption, FileHasAllSectionsInOrder) {
  const auto sections = parse_sections(fx().bytes);
  ASSERT_EQ(sections.size(), 6u);
  const char* expected[] = {"contigs", "pac",        "ambig",
                            "bwt",     "sampled_sa", "flat_sa"};
  for (std::size_t i = 0; i < sections.size(); ++i) {
    EXPECT_EQ(sections[i].name, expected[i]);
    EXPECT_GT(sections[i].payload_len, 0u);
  }
  EXPECT_EQ(sections.back().footer_off + 8, fx().bytes.size());
}

TEST(IndexCorruption, BitFlipInEachSectionNamesTheSection) {
  const auto sections = parse_sections(fx().bytes);
  for (const auto& sec : sections) {
    std::string mutated = fx().bytes;
    mutated[sec.payload_beg + sec.payload_len / 2] ^= 0x10;
    expect_corrupt(mutated, sec.name, "payload bit flip");
  }
}

TEST(IndexCorruption, BitFlipInChecksumFooterNamesTheSection) {
  const auto sections = parse_sections(fx().bytes);
  for (const auto& sec : sections) {
    std::string mutated = fx().bytes;
    mutated[sec.footer_off + 3] ^= 0x01;
    expect_corrupt(mutated, sec.name, "checksum footer bit flip");
  }
}

TEST(IndexCorruption, TruncationNamesTheSectionItLandsIn) {
  const auto sections = parse_sections(fx().bytes);
  for (const auto& sec : sections) {
    // Cut mid-payload: the section's own read fails.
    expect_corrupt(fx().bytes.substr(0, sec.payload_beg + sec.payload_len / 2),
                   sec.name, "mid-payload truncation");
    // Cut just before the footer: the checksum read fails.
    expect_corrupt(fx().bytes.substr(0, sec.footer_off + 4), sec.name,
                   "mid-footer truncation");
  }
}

TEST(IndexCorruption, LoadedAfterRoundTripStillMatches) {
  // Sanity companion to the negative cases: the untouched image loads and
  // agrees with the in-memory index.
  const std::string path =
      (std::filesystem::temp_directory_path() / "mem2_corrupt_ok.m2i").string();
  write_file(path, fx().bytes);
  const auto loaded = load_index(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.seq_len(), fx().index.seq_len());
  EXPECT_EQ(loaded.fm128().primary(), fx().index.fm128().primary());
  for (idx_t r = 0; r <= fx().index.seq_len(); r += 61)
    ASSERT_EQ(loaded.sa_lookup_flat(r), fx().index.sa_lookup_flat(r));
}

TEST(IndexCorruption, V1FormatStillLoadsWithWarning) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mem2_v1.m2i").string();
  save_index(path, fx().index, /*version=*/1);
  const auto loaded = load_index(path);  // prints a deprecation warning
  std::remove(path.c_str());
  EXPECT_EQ(loaded.seq_len(), fx().index.seq_len());
  EXPECT_EQ(loaded.ref().length(), fx().index.ref().length());
  for (idx_t r = 0; r <= fx().index.seq_len(); r += 61)
    ASSERT_EQ(loaded.sa_lookup_flat(r), fx().index.sa_lookup_flat(r));
}

TEST(IndexCorruption, V2AbsurdLengthFieldRejectedBeforeAllocation) {
  // A corrupt element count must die on the remaining-bytes clamp (named
  // corruption_error), never reach the allocator.  The count here claims
  // 2^60 contigs in a payload of a few hundred bytes.
  const auto sections = parse_sections(fx().bytes);
  ASSERT_EQ(sections[0].name, "contigs");
  std::string mutated = fx().bytes;
  const std::uint64_t huge = std::uint64_t{1} << 60;
  std::memcpy(mutated.data() + sections[0].payload_beg, &huge, 8);
  expect_corrupt(mutated, "contigs", "absurd contig count");
}

TEST(IndexCorruption, V1AbsurdLengthFieldsFailFastAsIoErrors) {
  // Regression: the v1 loader used to size vectors/strings straight from
  // the on-disk length field, so a flipped count meant an absurd
  // allocation attempt before any bounds check.  Lengths are now clamped
  // against the bytes actually remaining in the file.
  const std::string path =
      (std::filesystem::temp_directory_path() / "mem2_v1_absurd.m2i").string();
  save_index(path, fx().index, /*version=*/1);
  const std::string bytes = read_file(path);
  const std::uint64_t huge = std::uint64_t{1} << 60;

  // Contig-table count (u64 right after the 4-byte magic).
  std::string mutated = bytes;
  std::memcpy(mutated.data() + 4, &huge, 8);
  write_file(path, mutated);
  EXPECT_THROW(load_index(path), io_error);

  // First contig-name length (u64 right after the count).
  mutated = bytes;
  std::memcpy(mutated.data() + 12, &huge, 8);
  write_file(path, mutated);
  EXPECT_THROW(load_index(path), io_error);

  std::remove(path.c_str());
}

TEST(IndexCorruption, Cp32RejectsTextsBeyondUint32) {
  // The CP32 occ buckets count in uint32_t; a doubled text at 2^32 chars
  // would silently wrap them.  The boundary itself is fine.
  EXPECT_NO_THROW(OccCp32::check_text_length((idx_t{1} << 32) - 1));
  try {
    OccCp32::check_text_length(idx_t{1} << 32);
    FAIL() << "oversized text accepted";
  } catch (const invariant_error& e) {
    EXPECT_NE(std::string(e.what()).find("4294967295"), std::string::npos)
        << e.what();
  }
}

TEST(IndexCorruption, NonIndexFilesAndUnknownVersionsAreIoErrors) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mem2_notindex.m2i").string();
  write_file(path, "this is not an index file at all");
  EXPECT_THROW(load_index(path), io_error);

  std::string future = fx().bytes;
  future[3] = '\7';  // version far beyond v2
  write_file(path, future);
  EXPECT_THROW(load_index(path), io_error);

  write_file(path, "M2");  // shorter than the magic itself
  EXPECT_THROW(load_index(path), io_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mem2::index
