// align module unit tests: region post-processing (dedup, primary marking,
// mapq), extension context helpers, band-retry predicate, SAM formation
// details (CIGAR spans, NM, strand handling).
#include <gtest/gtest.h>

#include "align/extend.h"
#include "align/region.h"
#include "align/sam_format.h"
#include "seq/genome_sim.h"

namespace mem2::align {
namespace {

AlnReg make_reg(idx_t rb, idx_t re, int qb, int qe, int score) {
  AlnReg r;
  r.rb = rb;
  r.re = re;
  r.qb = qb;
  r.qe = qe;
  r.score = score;
  r.truesc = score;
  r.rid = 0;
  r.w = 100;
  r.seedcov = qe - qb;
  r.seedlen0 = qe - qb;
  return r;
}

TEST(Regions, DedupRemovesNearDuplicates) {
  MemOptions opt;
  std::vector<AlnReg> regs = {
      make_reg(1000, 1100, 0, 100, 95),
      make_reg(1000, 1100, 0, 100, 90),  // exact duplicate region, worse score
      make_reg(5000, 5100, 0, 100, 80),  // different locus: kept
  };
  sort_dedup_regions(regs, opt);
  ASSERT_EQ(regs.size(), 2u);
  EXPECT_EQ(regs[0].score, 95);  // better duplicate survived
  EXPECT_EQ(regs[1].rb, 5000);
}

TEST(Regions, DedupKeepsPartialOverlaps) {
  MemOptions opt;
  std::vector<AlnReg> regs = {
      make_reg(1000, 1100, 0, 100, 95),
      make_reg(1050, 1150, 0, 100, 90),  // 50% reference overlap: below 0.95
  };
  sort_dedup_regions(regs, opt);
  EXPECT_EQ(regs.size(), 2u);
}

TEST(Regions, MarkPrimaryFlagsOverlappingSecondaries) {
  MemOptions opt;
  std::vector<AlnReg> regs = {
      make_reg(5000, 5100, 0, 100, 80),   // will sort second
      make_reg(1000, 1100, 0, 100, 95),   // best: primary
  };
  mark_primary(regs, opt);
  ASSERT_EQ(regs.size(), 2u);
  EXPECT_EQ(regs[0].score, 95);
  EXPECT_EQ(regs[0].secondary, -1);
  EXPECT_EQ(regs[1].secondary, 0);       // overlaps the primary on query
  EXPECT_EQ(regs[0].sub, 80);            // competitor recorded for mapq
}

TEST(Regions, DisjointQueryIntervalsAreBothPrimary) {
  MemOptions opt;
  std::vector<AlnReg> regs = {
      make_reg(1000, 1050, 0, 50, 50),
      make_reg(9000, 9050, 50, 100, 45),  // different query half
  };
  mark_primary(regs, opt);
  EXPECT_EQ(regs[0].secondary, -1);
  EXPECT_EQ(regs[1].secondary, -1);
}

TEST(Mapq, UniqueStrongHitScoresHigh) {
  MemOptions opt;
  AlnReg r = make_reg(1000, 1101, 0, 101, 101);
  EXPECT_GE(approx_mapq(r, opt), 50);
}

TEST(Mapq, CloseCompetitorDropsToZeroish) {
  MemOptions opt;
  AlnReg r = make_reg(1000, 1101, 0, 101, 101);
  r.sub = 100;  // nearly equal second hit
  EXPECT_LE(approx_mapq(r, opt), 5);
  r.sub = r.score;
  EXPECT_EQ(approx_mapq(r, opt), 0);
}

TEST(Mapq, RepetitiveFractionScalesDown) {
  MemOptions opt;
  AlnReg r = make_reg(1000, 1101, 0, 101, 101);
  const int clean = approx_mapq(r, opt);
  r.frac_rep = 0.9f;
  EXPECT_LT(approx_mapq(r, opt), clean / 2);
}

TEST(Mapq, SuboptimalCountPenalty) {
  MemOptions opt;
  // sub close enough that the base mapq is below the 60 cap, so the
  // sub_n penalty is visible.
  AlnReg r = make_reg(1000, 1101, 0, 101, 101);
  r.sub = 95;
  const int base = approx_mapq(r, opt);
  ASSERT_LT(base, 60);
  r.sub_n = 5;
  EXPECT_LT(approx_mapq(r, opt), base);
}

TEST(BandRetry, MatchesBwaCondition) {
  // retry iff score changed AND max_off >= 3/4 of the band.
  EXPECT_FALSE(band_retry_needed(50, 50, 100, 100));   // unchanged score
  EXPECT_FALSE(band_retry_needed(60, 50, 10, 100));    // small offset
  EXPECT_TRUE(band_retry_needed(60, 50, 75, 100));     // 75 >= 50+25
  EXPECT_FALSE(band_retry_needed(60, 50, 74, 100));
}

TEST(EditDistance, CountsSubsAndGaps) {
  const auto q = seq::encode("ACGTACGT");
  auto t = seq::encode("ACGAACGT");
  bsw::Cigar cig = {{'M', 8}};
  EXPECT_EQ(edit_distance(cig, q.data(), t.data()), 1);

  const auto q2 = seq::encode("ACGTAACGT");  // 1-base insertion
  bsw::Cigar cig2 = {{'M', 4}, {'I', 1}, {'M', 4}};
  const auto t2 = seq::encode("ACGTACGT");
  EXPECT_EQ(edit_distance(cig2, q2.data(), t2.data()), 1);

  bsw::Cigar cig3 = {{'M', 4}, {'D', 2}, {'M', 4}};
  const auto q3 = seq::encode("ACGTACGT");
  const auto t3 = seq::encode("ACGTGGACGT");
  EXPECT_EQ(edit_distance(cig3, q3.data(), t3.data()), 2);
}

struct ExtendFixture {
  index::Mem2Index index;
  MemOptions opt;

  ExtendFixture() {
    seq::GenomeConfig g;
    g.seed = 71;
    g.contig_lengths = {50000};
    g.repeat_fraction = 0;
    index = index::Mem2Index::build(seq::simulate_genome(g));
  }
};

TEST(ChainRef, WindowCoversSeedsAndClampsToContig) {
  ExtendFixture fx;
  std::vector<seq::Code> q(100, 0), q_rev(100, 0);
  ExtendContext ctx{fx.opt, fx.index, q, q_rev};

  chain::Chain c;
  c.rid = 0;
  c.seeds = {{1000, 10, 50, 50}};
  const ChainRef cref = make_chain_ref(ctx, c);
  EXPECT_LE(cref.rmax0, 1000);
  EXPECT_GE(cref.rmax1, 1050);
  EXPECT_GE(cref.rmax0, 0);
  EXPECT_LE(cref.rmax1, fx.index.l_pac());
  EXPECT_EQ(cref.rseq.size(), static_cast<std::size_t>(cref.rmax1 - cref.rmax0));
  // Reversal is a plain reverse.
  for (std::size_t i = 0; i < cref.rseq.size(); ++i)
    ASSERT_EQ(cref.rseq_rev[i], cref.rseq[cref.rseq.size() - 1 - i]);
}

TEST(ChainRef, ReverseStrandSeedStaysOnReverseHalf) {
  ExtendFixture fx;
  std::vector<seq::Code> q(100, 0), q_rev(100, 0);
  ExtendContext ctx{fx.opt, fx.index, q, q_rev};
  const idx_t L = fx.index.l_pac();

  chain::Chain c;
  c.rid = 0;
  c.seeds = {{L + 1000, 10, 50, 50}};
  const ChainRef cref = make_chain_ref(ctx, c);
  EXPECT_GE(cref.rmax0, L);  // clamped to the reverse half
  EXPECT_LE(cref.rmax1, 2 * L);
}

TEST(ExtendJobs, LeftJobIsReversedPrefix) {
  ExtendFixture fx;
  auto q = fx.index.fetch(2000, 2100);
  std::vector<seq::Code> q_rev(q.rbegin(), q.rend());
  ExtendContext ctx{fx.opt, fx.index, q, q_rev};

  chain::Chain c;
  c.rid = 0;
  c.seeds = {{2030, 30, 40, 40}};  // query[30,70) at ref 2030
  const ChainRef cref = make_chain_ref(ctx, c);
  const auto job = make_left_job(ctx, cref, c.seeds[0], fx.opt.w);
  ASSERT_EQ(job.qlen, 30);
  // job.query[0] must be query[29], job.query[29] == query[0].
  EXPECT_EQ(job.query[0], q[29]);
  EXPECT_EQ(job.query[29], q[0]);
  ASSERT_EQ(job.tlen, static_cast<int>(2030 - cref.rmax0));
  // job.target[0] must be the reference base just left of the seed.
  EXPECT_EQ(job.target[0], fx.index.fetch(2029, 2030)[0]);
  EXPECT_EQ(job.h0, 40 * fx.opt.ksw.a);
}

TEST(ExtendJobs, RightJobIsSuffixWithLeftScore) {
  ExtendFixture fx;
  auto q = fx.index.fetch(2000, 2100);
  std::vector<seq::Code> q_rev(q.rbegin(), q.rend());
  ExtendContext ctx{fx.opt, fx.index, q, q_rev};

  chain::Chain c;
  c.rid = 0;
  c.seeds = {{2030, 30, 40, 40}};
  const ChainRef cref = make_chain_ref(ctx, c);
  const auto job = make_right_job(ctx, cref, c.seeds[0], fx.opt.w, 77);
  ASSERT_EQ(job.qlen, 30);  // 100 - (30+40)
  EXPECT_EQ(job.query[0], q[70]);
  EXPECT_EQ(job.h0, 77);
  EXPECT_EQ(job.target[0], fx.index.fetch(2070, 2071)[0]);
}

TEST(ProcessChains, PerfectSeedYieldsFullLengthRegion) {
  ExtendFixture fx;
  auto q = fx.index.fetch(3000, 3100);
  std::vector<seq::Code> q_rev(q.rbegin(), q.rend());
  ExtendContext ctx{fx.opt, fx.index, q, q_rev};

  chain::Chain c;
  c.rid = 0;
  c.frac_rep = 0;
  c.seeds = {{3040, 40, 30, 30}};  // middle seed; both flanks perfect
  ScalarSource source(fx.opt.ksw);
  std::vector<AlnReg> regs;
  process_chains(ctx, {&c, 1}, source, regs);
  ASSERT_EQ(regs.size(), 1u);
  EXPECT_EQ(regs[0].qb, 0);
  EXPECT_EQ(regs[0].qe, 100);
  EXPECT_EQ(regs[0].rb, 3000);
  EXPECT_EQ(regs[0].re, 3100);
  EXPECT_EQ(regs[0].score, 100 * fx.opt.ksw.a);
}

TEST(ProcessChains, ContainedSeedSkipped) {
  ExtendFixture fx;
  auto q = fx.index.fetch(3000, 3100);
  std::vector<seq::Code> q_rev(q.rbegin(), q.rend());
  ExtendContext ctx{fx.opt, fx.index, q, q_rev};

  // Two seeds of the same chain on the same diagonal; after the first
  // (longer) is extended to the full read, the second is contained and has
  // no same-length competitor -> skipped (one region only).
  chain::Chain c;
  c.rid = 0;
  c.seeds = {{3020, 20, 60, 60}, {3030, 30, 20, 20}};
  ScalarSource source(fx.opt.ksw);
  std::vector<AlnReg> regs;
  process_chains(ctx, {&c, 1}, source, regs);
  EXPECT_EQ(regs.size(), 1u);
}

}  // namespace
}  // namespace mem2::align
