// Paired-end determinism: the SAM byte stream — and the paired-end
// counters — must be identical across thread counts, pipeline workers,
// submit chunkings and batch sizes.  The insert-size prior is estimated
// once from a fixed submission-order prefix, rescue job pools are spliced
// in pair order, and every batch is pair-independent given the prior, so
// nothing in the paired path may depend on scheduling.
#include <gtest/gtest.h>

#include "align/aligner.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"

namespace mem2::align {
namespace {

struct Fixture {
  index::Mem2Index index;
  std::vector<seq::Read> reads;

  Fixture() {
    seq::GenomeConfig g;
    g.seed = 98765;
    g.contig_lengths = {100000, 50000};
    g.repeat_fraction = 0.3;  // repeats -> multi-chain reads -> rescue churn
    index = index::Mem2Index::build(seq::simulate_genome(g));

    seq::PairSimConfig p;
    p.seed = 1234;
    p.num_pairs = 300;
    p.read_length = 101;
    p.insert_mean = 320;
    p.insert_std = 35;
    p.damage_fraction = 0.3;  // exercise the rescue rounds
    reads = seq::simulate_pairs(index.ref(), p);
  }

  DriverOptions base_options() const {
    DriverOptions opt;
    opt.mode = Mode::kBatch;
    opt.paired = true;
    opt.batch_size = 64;
    opt.pe.stat_pairs = 128;  // well inside the dataset
    return opt;
  }
};

struct RunOut {
  std::vector<std::string> sam;
  util::SwCounters counters;
};

/// Align through the streaming session, submitting in `chunk` read chunks.
RunOut run_paired(const Fixture& fx, DriverOptions opt, std::size_t chunk_reads) {
  Aligner aligner(fx.index, opt);
  EXPECT_TRUE(aligner.ok()) << aligner.status().message();
  CollectSamSink sink;
  Stream stream = aligner.open(sink);
  std::span<const seq::Read> rest(fx.reads);
  while (!rest.empty()) {
    const std::size_t n = std::min(chunk_reads, rest.size());
    EXPECT_TRUE(stream.submit(rest.first(n)).ok());
    rest = rest.subspan(n);
  }
  EXPECT_TRUE(stream.finish().ok());
  RunOut run;
  run.counters = stream.stats().counters;
  for (const auto& rec : sink.records()) run.sam.push_back(rec.to_line());
  return run;
}

TEST(PairDeterminism, IdenticalAcrossThreadCounts) {
  Fixture fx;
  RunOut ref;
  for (int threads : {1, 2, 8}) {
    DriverOptions opt = fx.base_options();
    opt.threads = threads;
    opt.pipeline_workers = 1;  // isolate the intra-batch threading knob
    RunOut run = run_paired(fx, opt, fx.reads.size());
    ASSERT_GT(run.counters.pe_proper_pairs, 0u);
    ASSERT_GT(run.counters.pe_rescue_jobs, 0u);  // rescue actually exercised
    if (threads == 1) {
      ref = std::move(run);
      continue;
    }
    ASSERT_EQ(run.sam, ref.sam) << "threads=" << threads;
    EXPECT_EQ(run.counters.pe_rescue_windows, ref.counters.pe_rescue_windows);
    EXPECT_EQ(run.counters.pe_rescue_jobs, ref.counters.pe_rescue_jobs);
    EXPECT_EQ(run.counters.pe_rescue_hits, ref.counters.pe_rescue_hits);
    EXPECT_EQ(run.counters.pe_rescued_pairs, ref.counters.pe_rescued_pairs);
    EXPECT_EQ(run.counters.pe_proper_pairs, ref.counters.pe_proper_pairs);
  }
}

TEST(PairDeterminism, IdenticalAcrossWorkersChunksAndBatches) {
  Fixture fx;
  const RunOut ref = run_paired(fx, fx.base_options(), fx.reads.size());
  ASSERT_GT(ref.counters.pe_proper_pairs, 0u);

  // Submit chunk sizes, including odd ones that split pairs across calls.
  for (std::size_t chunk : {2ul, 7ul, 100ul}) {
    const RunOut run = run_paired(fx, fx.base_options(), chunk);
    ASSERT_EQ(run.sam, ref.sam) << "chunk=" << chunk;
  }
  // Batch sizes (even, as paired mode requires).
  for (int batch : {32, 150, 1024}) {
    DriverOptions opt = fx.base_options();
    opt.batch_size = batch;
    const RunOut run = run_paired(fx, opt, fx.reads.size());
    ASSERT_EQ(run.sam, ref.sam) << "batch=" << batch;
  }
  // Concurrent pipeline workers with the ordered writer.
  for (int workers : {2, 4}) {
    DriverOptions opt = fx.base_options();
    opt.pipeline_workers = workers;
    const RunOut run = run_paired(fx, opt, 64);
    ASSERT_EQ(run.sam, ref.sam) << "workers=" << workers;
    EXPECT_EQ(run.counters.pe_proper_pairs, ref.counters.pe_proper_pairs);
  }
  // BSW-round threads (rescue pools are block-spliced, so invariant too).
  for (int bsw : {2, 5}) {
    DriverOptions opt = fx.base_options();
    opt.bsw_threads = bsw;
    const RunOut run = run_paired(fx, opt, fx.reads.size());
    ASSERT_EQ(run.sam, ref.sam) << "bsw_threads=" << bsw;
  }
}

TEST(PairDeterminism, RescueSkipOffIsInvariantAndCountPreserving) {
  // With skipping disabled every window is scanned (the pre-skip
  // behavior): output must still be invariant across threads, chunkings
  // and batch sizes, and enabling skipping may drop windows but must not
  // change proper-pair or rescued-pair counts.
  Fixture fx;
  DriverOptions off = fx.base_options();
  off.pe.rescue_skip = false;
  const RunOut ref = run_paired(fx, off, fx.reads.size());
  ASSERT_GT(ref.counters.pe_rescue_jobs, 0u);
  EXPECT_EQ(ref.counters.pe_rescue_win_skipped, 0u);

  for (int threads : {2, 8}) {
    DriverOptions opt = off;
    opt.threads = threads;
    opt.pipeline_workers = 1;
    const RunOut run = run_paired(fx, opt, fx.reads.size());
    ASSERT_EQ(run.sam, ref.sam) << "skip off, threads=" << threads;
  }
  for (std::size_t chunk : {7ul, 64ul}) {
    const RunOut run = run_paired(fx, off, chunk);
    ASSERT_EQ(run.sam, ref.sam) << "skip off, chunk=" << chunk;
  }
  {
    DriverOptions opt = off;
    opt.batch_size = 150;
    const RunOut run = run_paired(fx, opt, fx.reads.size());
    ASSERT_EQ(run.sam, ref.sam) << "skip off, batch=150";
  }

  const RunOut on = run_paired(fx, fx.base_options(), fx.reads.size());
  EXPECT_EQ(on.counters.pe_proper_pairs, ref.counters.pe_proper_pairs);
  EXPECT_EQ(on.counters.pe_rescued_pairs, ref.counters.pe_rescued_pairs);
  EXPECT_LE(on.counters.pe_rescue_windows, ref.counters.pe_rescue_windows);
  EXPECT_LE(on.counters.pe_rescue_jobs, ref.counters.pe_rescue_jobs);
}

}  // namespace
}  // namespace mem2::align
