// Thread-count determinism of the batch driver: the pooled BSW rounds are
// enumerated AND executed in parallel, yet the SAM output and the
// extensions-computed count must be identical for any thread count — the
// scatter-by-original-index design makes the result order-independent, and
// block-ordered splicing makes the job pool itself invariant.
#include <gtest/gtest.h>

#include "align/driver.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"

namespace mem2::align {
namespace {

struct Fixture {
  index::Mem2Index index;
  std::vector<seq::Read> reads;

  Fixture() {
    seq::GenomeConfig g;
    g.seed = 31337;
    g.contig_lengths = {90000, 45000};
    g.repeat_fraction = 0.3;  // repeats -> multi-chain reads -> many BSW jobs
    index = index::Mem2Index::build(seq::simulate_genome(g));

    seq::ReadSimConfig r;
    r.seed = 7777;
    r.num_reads = 250;
    r.read_length = 101;
    reads = seq::simulate_reads(index.ref(), r);
  }
};

std::vector<std::string> sam_lines(const std::vector<io::SamRecord>& recs) {
  std::vector<std::string> lines;
  lines.reserve(recs.size());
  for (const auto& r : recs) lines.push_back(r.to_line());
  return lines;
}

TEST(BatchDeterminism, IdenticalSamAndStatsAcrossThreadCounts) {
  Fixture fx;
  std::vector<std::string> ref_sam;
  std::uint64_t ref_computed = 0, ref_used = 0;
  for (int threads : {1, 2, 8}) {
    DriverOptions opt;
    opt.mode = Mode::kBatch;
    opt.threads = threads;
    opt.batch_size = 64;  // several batches, ragged tail
    DriverStats stats;
    const auto sam = sam_lines(align_reads(fx.index, fx.reads, opt, &stats));
    ASSERT_GT(stats.extensions_computed, 0u);
    if (threads == 1) {
      ref_sam = sam;
      ref_computed = stats.extensions_computed;
      ref_used = stats.extensions_used;
      continue;
    }
    ASSERT_EQ(sam, ref_sam) << "threads=" << threads;
    EXPECT_EQ(stats.extensions_computed, ref_computed) << "threads=" << threads;
    EXPECT_EQ(stats.extensions_used, ref_used) << "threads=" << threads;
  }
}

TEST(BatchDeterminism, BswThreadKnobIndependentOfPipelineThreads) {
  Fixture fx;
  DriverOptions base;
  base.mode = Mode::kBatch;
  base.threads = 1;
  const auto expect = sam_lines(align_reads(fx.index, fx.reads, base));

  for (int bsw_threads : {2, 5}) {
    DriverOptions opt = base;
    opt.bsw_threads = bsw_threads;  // BSW rounds parallel, rest serial
    EXPECT_EQ(opt.effective_bsw_threads(), bsw_threads);
    ASSERT_EQ(sam_lines(align_reads(fx.index, fx.reads, opt)), expect)
        << "bsw_threads=" << bsw_threads;
  }

  DriverOptions follow = base;
  follow.threads = 4;  // bsw_threads=0 follows `threads`
  EXPECT_EQ(follow.effective_bsw_threads(), 4);
  ASSERT_EQ(sam_lines(align_reads(fx.index, fx.reads, follow)), expect);
}

TEST(BatchDeterminism, CountersInvariantAcrossBswThreadCounts) {
  // The executor reduces worker-thread software counters onto the calling
  // thread, so BSW cell/pair totals match the serial path exactly.
  Fixture fx;
  std::uint64_t ref_pairs = 0, ref_cells = 0;
  for (int bsw_threads : {1, 4}) {
    DriverOptions opt;
    opt.mode = Mode::kBatch;
    opt.threads = 1;
    opt.bsw_threads = bsw_threads;
    DriverStats stats;
    align_reads(fx.index, fx.reads, opt, &stats);
    if (bsw_threads == 1) {
      ref_pairs = stats.counters.bsw_pairs;
      ref_cells = stats.counters.bsw_cells_total;
      ASSERT_GT(ref_pairs, 0u);
      continue;
    }
    EXPECT_EQ(stats.counters.bsw_pairs, ref_pairs);
    EXPECT_EQ(stats.counters.bsw_cells_total, ref_cells);
  }
}

}  // namespace
}  // namespace mem2::align
