// End-to-end pipeline tests — the paper's headline correctness property:
// the optimized (batch/SIMD/flat-SA/prefetch) driver produces output
// IDENTICAL to the baseline (read-at-a-time/scalar/compressed) driver; and
// both actually map simulated reads back to where they came from.
#include <gtest/gtest.h>

#include <sstream>

#include "align/driver.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"

namespace mem2::align {
namespace {

struct PipelineFixture {
  index::Mem2Index index;
  std::vector<seq::Read> reads;

  PipelineFixture(std::int64_t genome_len, std::int64_t n_reads, int read_len,
                  std::uint64_t seed, double repeat_fraction = 0.15) {
    seq::GenomeConfig g;
    g.seed = seed;
    g.contig_lengths = {genome_len * 2 / 3, genome_len / 3};
    g.repeat_fraction = repeat_fraction;
    index = index::Mem2Index::build(seq::simulate_genome(g));

    seq::ReadSimConfig r;
    r.seed = seed * 31 + 7;
    r.num_reads = n_reads;
    r.read_length = read_len;
    reads = seq::simulate_reads(index.ref(), r);
  }
};

std::vector<std::string> sam_lines(const std::vector<io::SamRecord>& recs) {
  std::vector<std::string> lines;
  lines.reserve(recs.size());
  for (const auto& r : recs) lines.push_back(r.to_line());
  return lines;
}

TEST(Pipeline, BaselineAndBatchProduceIdenticalSam) {
  PipelineFixture fx(120000, 300, 101, 5);

  DriverOptions base;
  base.mode = Mode::kBaseline;
  DriverOptions batch;
  batch.mode = Mode::kBatch;
  batch.batch_size = 64;  // multiple batches

  DriverStats s_base, s_batch;
  const auto sam_base = align_reads(fx.index, fx.reads, base, &s_base);
  const auto sam_batch = align_reads(fx.index, fx.reads, batch, &s_batch);

  ASSERT_EQ(sam_base.size(), sam_batch.size());
  const auto lines_base = sam_lines(sam_base);
  const auto lines_batch = sam_lines(sam_batch);
  for (std::size_t i = 0; i < lines_base.size(); ++i)
    ASSERT_EQ(lines_base[i], lines_batch[i]) << "record " << i;

  // The batch driver must have done extra (wasted) extensions — the paper's
  // ~14% effect — but never fewer than it used.
  EXPECT_GE(s_batch.extensions_computed, s_batch.extensions_used);
  EXPECT_GT(s_batch.extensions_used, 0u);
  EXPECT_EQ(s_base.extensions_computed, s_base.extensions_used);
}

TEST(Pipeline, IdenticalAcrossBatchSizes) {
  PipelineFixture fx(60000, 120, 76, 9);
  DriverOptions a, b;
  a.mode = b.mode = Mode::kBatch;
  a.batch_size = 17;  // ragged batches
  b.batch_size = 1024;
  const auto sam_a = sam_lines(align_reads(fx.index, fx.reads, a));
  const auto sam_b = sam_lines(align_reads(fx.index, fx.reads, b));
  ASSERT_EQ(sam_a, sam_b);
}

TEST(Pipeline, IdenticalAcrossIsaAndSorting) {
  PipelineFixture fx(60000, 100, 101, 11);
  std::vector<std::string> reference;
  for (util::Isa isa : {util::Isa::kScalar, util::Isa::kAvx2, util::Isa::kAvx512}) {
    for (bool sort : {false, true}) {
      DriverOptions opt;
      opt.mode = Mode::kBatch;
      opt.bsw.isa = isa;
      opt.bsw.sort_by_length = sort;
      const auto sam = sam_lines(align_reads(fx.index, fx.reads, opt));
      if (reference.empty())
        reference = sam;
      else
        ASSERT_EQ(sam, reference) << util::isa_name(isa) << " sort=" << sort;
    }
  }
}

TEST(Pipeline, IdenticalWithAndWithoutPrefetch) {
  PipelineFixture fx(50000, 80, 151, 13);
  DriverOptions on, off;
  on.mode = off.mode = Mode::kBatch;
  off.prefetch = false;
  ASSERT_EQ(sam_lines(align_reads(fx.index, fx.reads, on)),
            sam_lines(align_reads(fx.index, fx.reads, off)));
}

TEST(Pipeline, IdenticalAcrossThreadCounts) {
  PipelineFixture fx(50000, 100, 101, 15);
  DriverOptions one, four;
  one.mode = four.mode = Mode::kBatch;
  one.threads = 1;
  four.threads = 4;
  ASSERT_EQ(sam_lines(align_reads(fx.index, fx.reads, one)),
            sam_lines(align_reads(fx.index, fx.reads, four)));

  DriverOptions b1 = one, b4 = four;
  b1.mode = b4.mode = Mode::kBaseline;
  ASSERT_EQ(sam_lines(align_reads(fx.index, fx.reads, b1)),
            sam_lines(align_reads(fx.index, fx.reads, b4)));
}

// Mapping accuracy: most error-bearing simulated reads must map back to
// their true origin (within a small tolerance for indel placement).
class MappingAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(MappingAccuracy, PrimaryAlignmentsHitTruth) {
  const int read_len = GetParam();
  PipelineFixture fx(150000, 250, read_len, 17u + static_cast<unsigned>(read_len));
  DriverOptions opt;
  opt.mode = Mode::kBatch;
  DriverStats stats;
  const auto sam = align_reads(fx.index, fx.reads, opt, &stats);

  int mapped = 0, correct = 0, primaries = 0;
  for (const auto& rec : sam) {
    if (rec.flag & (io::kFlagSecondary | io::kFlagSupplementary)) continue;
    ++primaries;
    if (rec.flag & io::kFlagUnmapped) continue;
    ++mapped;
    const auto truth = seq::parse_truth(rec.qname);
    ASSERT_TRUE(truth.valid);
    if (rec.rname == truth.contig && std::abs((rec.pos - 1) - truth.pos) <= 20 &&
        ((rec.flag & io::kFlagReverse) != 0) == truth.reverse)
      ++correct;
  }
  EXPECT_EQ(primaries, 250);
  EXPECT_GT(mapped, 240);                         // nearly all map
  EXPECT_GT(correct, static_cast<int>(mapped * 0.95));  // and to the right place
}

INSTANTIATE_TEST_SUITE_P(ReadLengths, MappingAccuracy, ::testing::Values(76, 101, 151));

TEST(Pipeline, UnmappedForForeignReads) {
  PipelineFixture fx(40000, 1, 101, 19);
  // Random reads not drawn from the reference.
  seq::Read junk;
  junk.name = "junk";
  junk.bases = std::string(101, 'A');
  for (std::size_t i = 0; i < junk.bases.size(); i += 2) junk.bases[i] = 'C';
  junk.qual = std::string(101, 'I');
  DriverOptions opt;
  const auto sam = align_reads(fx.index, {junk}, opt);
  ASSERT_EQ(sam.size(), 1u);
  // An alternating AC read may accidentally hit a tandem repeat; accept
  // either unmapped or a mapped record, but the record must be well formed.
  EXPECT_EQ(sam[0].qname, "junk");
}

TEST(Pipeline, SamRecordsAreWellFormed) {
  PipelineFixture fx(60000, 60, 101, 23);
  DriverOptions opt;
  const auto sam = align_reads(fx.index, fx.reads, opt);
  for (const auto& rec : sam) {
    if (rec.flag & io::kFlagUnmapped) continue;
    // CIGAR query span must equal SEQ length.
    int span = 0, num = 0;
    for (char c : rec.cigar) {
      if (std::isdigit(static_cast<unsigned char>(c))) {
        num = num * 10 + (c - '0');
      } else {
        if (c == 'M' || c == 'I' || c == 'S') span += num;
        num = 0;
      }
    }
    EXPECT_EQ(span, static_cast<int>(rec.seq.size())) << rec.to_line();
    EXPECT_GE(rec.mapq, 0);
    EXPECT_LE(rec.mapq, 60);
    EXPECT_GE(rec.pos, 1);
  }
}

TEST(Pipeline, HeaderContainsContigsAndProgram) {
  PipelineFixture fx(30000, 1, 76, 29);
  DriverOptions opt;
  const auto hdr = sam_header_for(fx.index, opt);
  EXPECT_NE(hdr.find("@SQ\tSN:chr1"), std::string::npos);
  EXPECT_NE(hdr.find("@SQ\tSN:chr2"), std::string::npos);
  EXPECT_NE(hdr.find("@PG\tID:mem2"), std::string::npos);
}

}  // namespace
}  // namespace mem2::align
