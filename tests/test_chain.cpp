// Chaining: merge rules, containment, strand/contig boundary rejection,
// weights and the overlap filter.
#include <gtest/gtest.h>

#include "chain/chain.h"
#include "seq/genome_sim.h"

namespace mem2::chain {
namespace {

seq::Reference two_contig_ref() {
  seq::Reference ref;
  ref.add_contig("chr1", std::string(1000, 'A'));
  ref.add_contig("chr2", std::string(500, 'C'));
  return ref;
}

TEST(IntervalRid, ForwardStrand) {
  const auto ref = two_contig_ref();
  const idx_t l_pac = ref.length();  // 1500
  EXPECT_EQ(interval_rid(ref, l_pac, 0, 50), 0);
  EXPECT_EQ(interval_rid(ref, l_pac, 990, 10), 0);
  EXPECT_EQ(interval_rid(ref, l_pac, 995, 10), -1);  // crosses chr1/chr2
  EXPECT_EQ(interval_rid(ref, l_pac, 1000, 10), 1);
}

TEST(IntervalRid, ReverseStrandAndBoundary) {
  const auto ref = two_contig_ref();
  const idx_t l_pac = ref.length();
  // Doubled coordinate 2*1500-10 = 2990 maps to forward [0,10) of chr1.
  EXPECT_EQ(interval_rid(ref, l_pac, 2990, 10), 0);
  // Reverse-strand interval covering the chr boundary mirror.
  EXPECT_EQ(interval_rid(ref, l_pac, 1995, 10), -1);
  // Crossing the strand boundary itself.
  EXPECT_EQ(interval_rid(ref, l_pac, 1495, 10), -1);
}

ChainOptions default_opt() { return ChainOptions{}; }

TEST(BuildChains, CollinearSeedsMerge) {
  const auto ref = two_contig_ref();
  const idx_t l_pac = ref.length();
  // Two seeds on the same diagonal, close together -> one chain.
  std::vector<Seed> seeds = {{100, 0, 30, 30}, {140, 40, 30, 30}};
  const auto chains = build_chains(ref, l_pac, seeds, 100, default_opt(), 0.0);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].seeds.size(), 2u);
  EXPECT_EQ(chains[0].pos, 100);
}

TEST(BuildChains, FarSeedsSplit) {
  const auto ref = two_contig_ref();
  std::vector<Seed> seeds = {{10, 0, 30, 30}, {700, 40, 30, 30}};
  // Gap 690 on reference vs 40 on query: diagonal difference 650 > w.
  const auto chains = build_chains(ref, ref.length(), seeds, 100, default_opt(), 0.0);
  EXPECT_EQ(chains.size(), 2u);
}

TEST(BuildChains, ContainedSeedAbsorbedWithoutGrowth) {
  const auto ref = two_contig_ref();
  std::vector<Seed> seeds = {{100, 0, 60, 60}, {110, 10, 20, 20}};
  const auto chains = build_chains(ref, ref.length(), seeds, 100, default_opt(), 0.0);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].seeds.size(), 1u);  // contained: not appended
}

TEST(BuildChains, BoundaryCrossingSeedDropped) {
  const auto ref = two_contig_ref();
  std::vector<Seed> seeds = {{995, 0, 10, 10}};  // crosses chr1/chr2
  const auto chains = build_chains(ref, ref.length(), seeds, 50, default_opt(), 0.0);
  EXPECT_TRUE(chains.empty());
}

TEST(BuildChains, OppositeStrandsNeverChain) {
  const auto ref = two_contig_ref();
  const idx_t l_pac = ref.length();
  // Forward seed then reverse-strand seed with compatible offsets.
  std::vector<Seed> seeds = {{100, 0, 30, 30}, {2 * l_pac - 200, 40, 30, 30}};
  const auto chains = build_chains(ref, l_pac, seeds, 100, default_opt(), 0.0);
  EXPECT_EQ(chains.size(), 2u);
}

TEST(ChainWeight, MinOfQueryAndReferenceCoverage) {
  Chain c;
  c.seeds = {{100, 0, 30, 30}, {130, 10, 30, 30}};  // query [0,60) ovlp, ref [100,160)
  // Query coverage: [0,30)+[10,40) -> 40; ref: [100,130)+[130,160) -> 60.
  EXPECT_EQ(chain_weight(c), 40);
}

TEST(FilterChains, DropsDominatedOverlappingChain) {
  // bwa semantics: a dominated chain is dropped, EXCEPT that the first
  // chain shadowed by each kept chain survives with kept==1 so mapq can see
  // the competition.  With two dominated chains, only the first survives.
  ChainOptions opt;
  Chain big, small1, small2;
  big.seeds = {{100, 0, 80, 80}};
  small1.seeds = {{5000, 2, 19, 19}};   // dominated, first shadow -> kept
  small2.seeds = {{9000, 3, 19, 19}};   // dominated, second shadow -> dropped
  std::vector<Chain> chains = {small1, small2, big};
  filter_chains(chains, opt);
  ASSERT_EQ(chains.size(), 2u);
  EXPECT_EQ(chains[0].seeds[0].len, 80);
  EXPECT_EQ(chains[0].kept, 3);
  EXPECT_EQ(chains[1].kept, 1);  // shadow kept for mapq accounting
}

TEST(FilterChains, KeepsNonOverlappingChains) {
  ChainOptions opt;
  Chain a, b;
  a.seeds = {{100, 0, 40, 40}};
  b.seeds = {{5000, 60, 40, 40}};  // disjoint query intervals
  std::vector<Chain> chains = {a, b};
  filter_chains(chains, opt);
  EXPECT_EQ(chains.size(), 2u);
}

TEST(FilterChains, ComparableWeightsBothKept) {
  ChainOptions opt;
  Chain a, b;
  a.seeds = {{100, 0, 50, 50}};
  b.seeds = {{9000, 0, 45, 45}};  // overlapping but within drop_ratio
  std::vector<Chain> chains = {a, b};
  filter_chains(chains, opt);
  ASSERT_EQ(chains.size(), 2u);
  EXPECT_EQ(chains[0].weight, 50);  // sorted by weight desc
  EXPECT_EQ(chains[1].weight, 45);
  EXPECT_EQ(chains[1].kept, 2);  // kept despite overlap
}

TEST(SeedsFromSmems, SamplesCappedByMaxOcc) {
  ChainOptions opt;
  opt.max_occ = 4;
  std::vector<smem::Smem> smems(1);
  smems[0].bi = {100, 200, 10};  // 10 occurrences
  smems[0].qb = 0;
  smems[0].qe = 25;
  int calls = 0;
  const auto seeds = seeds_from_smems(smems, opt, [&](idx_t row) {
    ++calls;
    return row * 7;  // fake SAL
  });
  EXPECT_EQ(seeds.size(), 4u);  // capped
  EXPECT_EQ(calls, 4);
  // Stepped sampling: rows 100, 102, 104, 106 (step = 10/4 = 2).
  EXPECT_EQ(seeds[0].rbeg, 700);
  EXPECT_EQ(seeds[1].rbeg, 714);
  EXPECT_EQ(seeds[0].len, 25);
}

TEST(RepetitiveFraction, UnionOfHighOccIntervals) {
  std::vector<smem::Smem> smems(3);
  smems[0].bi.s = 1000;  // repetitive
  smems[0].qb = 0;
  smems[0].qe = 40;
  smems[1].bi.s = 2;  // unique: ignored
  smems[1].qb = 30;
  smems[1].qe = 80;
  smems[2].bi.s = 600;  // repetitive, overlaps smems[0]
  smems[2].qb = 20;
  smems[2].qe = 60;
  EXPECT_DOUBLE_EQ(repetitive_fraction(smems, 100, 500), 0.6);
}

}  // namespace
}  // namespace mem2::chain
