// BswExecutor contract: bit-identical to the serial extend_batch path for
// any thread count, on synthetic pools and on jobs harvested from a real
// pipeline run; persistent workspace stops growing after the first batch.
#include <gtest/gtest.h>

#include "bsw/bsw_executor.h"
#include "job_harvest.h"
#include "seq/dna.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"
#include "util/rng.h"

namespace mem2::bsw {
namespace {

// Random extension jobs shaped like chain2aln inputs (see test_bsw_simd).
struct JobPool {
  std::vector<std::vector<seq::Code>> queries, targets;
  std::vector<ExtendJob> jobs;

  JobPool(int n, std::uint64_t seed, int min_len = 5, int max_len = 150,
          double mutate = 0.08) {
    util::Xoshiro256ss rng(seed);
    for (int i = 0; i < n; ++i) {
      const int qlen = min_len + static_cast<int>(rng.below(
                                     static_cast<std::uint64_t>(max_len - min_len + 1)));
      std::vector<seq::Code> q(static_cast<std::size_t>(qlen));
      for (auto& c : q) c = static_cast<seq::Code>(rng.below(4));
      std::vector<seq::Code> t;
      for (const auto c : q) {
        if (rng.chance(mutate / 4)) continue;
        t.push_back(rng.chance(mutate) ? static_cast<seq::Code>(rng.below(4)) : c);
      }
      if (t.empty()) t.push_back(0);
      queries.push_back(std::move(q));
      targets.push_back(std::move(t));
    }
    for (int i = 0; i < n; ++i) {
      ExtendJob j;
      j.query = queries[static_cast<std::size_t>(i)].data();
      j.qlen = static_cast<int>(queries[static_cast<std::size_t>(i)].size());
      j.target = targets[static_cast<std::size_t>(i)].data();
      j.tlen = static_cast<int>(targets[static_cast<std::size_t>(i)].size());
      j.h0 = 1 + static_cast<int>(rng.below(60));
      j.w = 5 + static_cast<int>(rng.below(100));
      jobs.push_back(j);
    }
  }
};

TEST(BswExecutor, MatchesExtendBatchAcrossThreadCounts) {
  JobPool pool(700, 2024);
  const KswParams p;

  std::vector<KswResult> expect;
  BswBatchStats serial_stats;
  extend_batch(pool.jobs, expect, p, {}, &serial_stats);

  for (int threads : {1, 2, 3, 8}) {
    BswExecutor ex(threads);
    std::vector<KswResult> got;
    BswBatchStats stats;
    ex.run(pool.jobs, got, p, {}, &stats);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(got[i], expect[i]) << "threads=" << threads << " job " << i;
    // Integer stats are thread-count invariant: same split, same chunking.
    EXPECT_EQ(stats.jobs_8bit, serial_stats.jobs_8bit) << threads;
    EXPECT_EQ(stats.jobs_16bit, serial_stats.jobs_16bit) << threads;
    EXPECT_EQ(stats.chunks, serial_stats.chunks) << threads;
  }
}

TEST(BswExecutor, MatchesAcrossSortForceAndIsaOptions) {
  JobPool pool(400, 77);
  const KswParams p;
  for (bool sort : {false, true}) {
    for (bool force16 : {false, true}) {
      BswBatchOptions opt;
      opt.sort_by_length = sort;
      opt.force_16bit = force16;
      std::vector<KswResult> expect;
      extend_batch(pool.jobs, expect, p, opt, nullptr);
      BswExecutor ex(4);
      std::vector<KswResult> got;
      ex.run(pool.jobs, got, p, opt, nullptr);
      ASSERT_EQ(got, expect) << "sort=" << sort << " force16=" << force16;
    }
  }
}

TEST(BswExecutor, MatchesExtendBatchOnHarvestedJobs) {
  // Jobs intercepted from a real pipeline run over a simulated genome — the
  // same shape of inputs the batch driver pools.
  seq::GenomeConfig g;
  g.seed = 99;
  g.contig_lengths = {80000, 40000};
  g.repeat_fraction = 0.3;
  const auto index = index::Mem2Index::build(seq::simulate_genome(g));
  seq::ReadSimConfig r;
  r.seed = 424242;
  r.num_reads = 150;
  r.read_length = 101;
  const auto reads = seq::simulate_reads(index.ref(), r);

  align::MemOptions mopt;
  auto harvested = bench::harvest_bsw_jobs(index, reads, mopt);
  ASSERT_GT(harvested.jobs.size(), 100u);

  std::vector<KswResult> expect;
  extend_batch(harvested.jobs, expect, mopt.ksw, {}, nullptr);
  for (int threads : {1, 2, 8}) {
    BswExecutor ex(threads);
    std::vector<KswResult> got;
    ex.run(harvested.jobs, got, mopt.ksw, {}, nullptr);
    ASSERT_EQ(got, expect) << "threads=" << threads;
  }
}

TEST(BswExecutor, WorkspaceStopsGrowingInSteadyState) {
  JobPool pool(600, 5150);
  const KswParams p;
  BswExecutor ex(2);
  std::vector<KswResult> out;
  out.reserve(pool.jobs.size());
  ex.run(pool.jobs, out, p, {}, nullptr);
  const std::size_t after_first = ex.workspace_bytes();
  EXPECT_GT(after_first, 0u);
  for (int rep = 0; rep < 3; ++rep) ex.run(pool.jobs, out, p, {}, nullptr);
  EXPECT_EQ(ex.workspace_bytes(), after_first);
}

TEST(BswExecutor, EmptyBatchAndThreadClamp) {
  BswExecutor ex(0);  // clamped to 1
  EXPECT_EQ(ex.threads(), 1);
  std::vector<ExtendJob> none;
  std::vector<KswResult> out(3);
  ex.run(none, out, KswParams{}, {}, nullptr);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace mem2::bsw
