// io module: FASTA/FASTQ round trips and error handling, SAM formatting,
// index serialization round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "index/mem2_index.h"
#include "io/fasta.h"
#include "io/fastq.h"
#include "io/sam.h"
#include "seq/genome_sim.h"

namespace mem2::io {
namespace {

TEST(Fasta, ParsesMultiRecordWithWrapping) {
  std::istringstream in(">chr1 a comment\nACGT\nACGT\n>chr2\nTT\n");
  const auto recs = read_fasta(in);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].name, "chr1");
  EXPECT_EQ(recs[0].comment, "a comment");
  EXPECT_EQ(recs[0].sequence, "ACGTACGT");
  EXPECT_EQ(recs[1].name, "chr2");
  EXPECT_EQ(recs[1].sequence, "TT");
}

TEST(Fasta, HandlesCrLfAndBlankLines) {
  std::istringstream in(">a\r\nAC\r\n\r\nGT\r\n");
  const auto recs = read_fasta(in);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].sequence, "ACGT");
}

TEST(Fasta, RejectsDataBeforeHeader) {
  std::istringstream in("ACGT\n>a\nACGT\n");
  EXPECT_THROW(read_fasta(in), io_error);
}

TEST(Fasta, WriteReadRoundTrip) {
  std::vector<FastaRecord> recs = {{"x", "", std::string(150, 'A')},
                                   {"y", "note", "ACGTACGT"}};
  std::ostringstream out;
  write_fasta(out, recs, 70);
  std::istringstream in(out.str());
  const auto back = read_fasta(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].sequence, recs[0].sequence);
  EXPECT_EQ(back[1].sequence, recs[1].sequence);
  EXPECT_EQ(back[1].comment, "note");
}

TEST(Fastq, ParsesAndValidates) {
  std::istringstream in("@r1 extra\nACGT\n+\nIIII\n@r2\nTT\n+r2\nII\n");
  const auto reads = read_fastq(in);
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].name, "r1");
  EXPECT_EQ(reads[0].bases, "ACGT");
  EXPECT_EQ(reads[0].qual, "IIII");
}

TEST(Fastq, RejectsMalformedRecords) {
  {
    std::istringstream in("@r1\nACGT\n+\nIII\n");  // qual too short
    EXPECT_THROW(read_fastq(in), io_error);
  }
  {
    std::istringstream in("@r1\nACGT\nIIII\n");  // missing '+'
    EXPECT_THROW(read_fastq(in), io_error);
  }
  {
    std::istringstream in("r1\nACGT\n+\nIIII\n");  // missing '@'
    EXPECT_THROW(read_fastq(in), io_error);
  }
  {
    std::istringstream in("@r1\nACGT\n+\n");  // truncated
    EXPECT_THROW(read_fastq(in), io_error);
  }
}

TEST(Fastq, WriteReadRoundTrip) {
  std::vector<seq::Read> reads = {{"a", "ACGT", "IIII"}, {"b", "T", "#"}};
  std::ostringstream out;
  write_fastq(out, reads);
  std::istringstream in(out.str());
  const auto back = read_fastq(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].bases, "ACGT");
  EXPECT_EQ(back[1].qual, "#");
}

namespace {

std::string write_temp_fastq(const std::string& name,
                             const std::vector<seq::Read>& reads) {
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  write_fastq_file(path, reads);
  return path;
}

seq::Read make_read(const std::string& name, const std::string& bases) {
  return {name, bases, std::string(bases.size(), 'I')};
}

}  // namespace

TEST(PairedFastq, PairsTwoFilesAndInterleaved) {
  const std::vector<seq::Read> r1 = {make_read("a", "ACGT"), make_read("b", "GGTT")};
  const std::vector<seq::Read> r2 = {make_read("a", "TTAA"), make_read("b", "CCAA")};
  const auto p1 = write_temp_fastq("mem2_pe_r1.fq", r1);
  const auto p2 = write_temp_fastq("mem2_pe_r2.fq", r2);

  PairedFastqStream two(p1, p2);
  std::vector<seq::Read> chunk;
  ASSERT_EQ(two.next_chunk(chunk, 8), 2u);
  ASSERT_EQ(chunk.size(), 4u);
  EXPECT_EQ(chunk[0].bases, "ACGT");  // mates adjacent: R1, R2, R1, R2
  EXPECT_EQ(chunk[1].bases, "TTAA");
  EXPECT_EQ(chunk[2].bases, "GGTT");
  EXPECT_EQ(chunk[3].bases, "CCAA");
  EXPECT_EQ(two.pairs_parsed(), 2u);

  // Interleaved single file yields the same stream.
  const auto pil = write_temp_fastq(
      "mem2_pe_il.fq", {r1[0], r2[0], r1[1], r2[1]});
  PairedFastqStream il(pil);
  std::vector<seq::Read> ichunk;
  ASSERT_EQ(il.next_chunk(ichunk, 8), 2u);
  for (std::size_t i = 0; i < chunk.size(); ++i)
    EXPECT_EQ(ichunk[i].bases, chunk[i].bases);

  std::remove(p1.c_str());
  std::remove(p2.c_str());
  std::remove(pil.c_str());
}

TEST(PairedFastq, RejectsMismatchedReadCounts) {
  const auto p1 = write_temp_fastq(
      "mem2_pe_long.fq", {make_read("a", "ACGT"), make_read("b", "GGTT")});
  const auto p2 = write_temp_fastq("mem2_pe_short.fq", {make_read("a", "TTAA")});

  PairedFastqStream stream(p1, p2);
  seq::Read a, b;
  ASSERT_TRUE(stream.next_pair(a, b));
  EXPECT_THROW(stream.next_pair(a, b), io_error);

  // Interleaved file ending mid-pair is equally fatal.
  const auto pil = write_temp_fastq("mem2_pe_odd.fq", {make_read("a", "ACGT")});
  PairedFastqStream il(pil);
  EXPECT_THROW(il.next_pair(a, b), io_error);

  std::remove(p1.c_str());
  std::remove(p2.c_str());
  std::remove(pil.c_str());
}

TEST(Sam, RecordFormatting) {
  SamRecord r;
  r.qname = "read1";
  r.flag = kFlagReverse;
  r.rname = "chr1";
  r.pos = 100;
  r.mapq = 60;
  r.cigar = "10M1I90M";
  r.seq = "ACGT";
  r.qual = "IIII";
  r.tags = {"NM:i:1", "AS:i:95"};
  EXPECT_EQ(r.to_line(),
            "read1\t16\tchr1\t100\t60\t10M1I90M\t*\t0\t0\tACGT\tIIII\tNM:i:1\tAS:i:95");
}

TEST(Sam, HeaderListsContigs) {
  seq::Reference ref;
  ref.add_contig("chr1", "ACGTACGT");
  ref.add_contig("chr2", "TTTT");
  const auto hdr = sam_header(ref, "@PG\tID:mem2");
  EXPECT_NE(hdr.find("@SQ\tSN:chr1\tLN:8"), std::string::npos);
  EXPECT_NE(hdr.find("@SQ\tSN:chr2\tLN:4"), std::string::npos);
  EXPECT_NE(hdr.find("@PG\tID:mem2"), std::string::npos);
}

TEST(IndexIo, SaveLoadRoundTrip) {
  seq::GenomeConfig cfg;
  cfg.contig_lengths = {4000, 1000};
  cfg.seed = 77;
  auto index = index::Mem2Index::build(seq::simulate_genome(cfg));

  const std::string path =
      (std::filesystem::temp_directory_path() / "mem2_test.m2i").string();
  index::save_index(path, index);
  const auto loaded = index::load_index(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.ref().length(), index.ref().length());
  ASSERT_EQ(loaded.ref().contigs().size(), 2u);
  EXPECT_EQ(loaded.ref().contigs()[1].name, index.ref().contigs()[1].name);
  for (idx_t i = 0; i < index.ref().length(); ++i)
    ASSERT_EQ(loaded.ref().base(i), index.ref().base(i));

  EXPECT_EQ(loaded.fm128().primary(), index.fm128().primary());
  EXPECT_EQ(loaded.fm128().seq_len(), index.fm128().seq_len());
  for (int c = 0; c <= 4; ++c)
    EXPECT_EQ(loaded.fm128().cum(c), index.fm128().cum(c));

  // Spot-check SAL equality on both paths.
  for (idx_t r = 0; r <= index.seq_len(); r += 97) {
    ASSERT_EQ(loaded.sa_lookup_flat(r), index.sa_lookup_flat(r));
    ASSERT_EQ(loaded.sa_lookup_baseline(r), index.sa_lookup_baseline(r));
  }
}

}  // namespace
}  // namespace mem2::io
