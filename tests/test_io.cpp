// io module: FASTA/FASTQ round trips and error handling, SAM formatting,
// index serialization round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "index/mem2_index.h"
#include "io/fasta.h"
#include "io/fastq.h"
#include "io/sam.h"
#include "seq/genome_sim.h"

namespace mem2::io {
namespace {

TEST(Fasta, ParsesMultiRecordWithWrapping) {
  std::istringstream in(">chr1 a comment\nACGT\nACGT\n>chr2\nTT\n");
  const auto recs = read_fasta(in);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].name, "chr1");
  EXPECT_EQ(recs[0].comment, "a comment");
  EXPECT_EQ(recs[0].sequence, "ACGTACGT");
  EXPECT_EQ(recs[1].name, "chr2");
  EXPECT_EQ(recs[1].sequence, "TT");
}

TEST(Fasta, HandlesCrLfAndBlankLines) {
  std::istringstream in(">a\r\nAC\r\n\r\nGT\r\n");
  const auto recs = read_fasta(in);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].sequence, "ACGT");
}

TEST(Fasta, RejectsDataBeforeHeader) {
  std::istringstream in("ACGT\n>a\nACGT\n");
  EXPECT_THROW(read_fasta(in), io_error);
}

TEST(Fasta, WriteReadRoundTrip) {
  std::vector<FastaRecord> recs = {{"x", "", std::string(150, 'A')},
                                   {"y", "note", "ACGTACGT"}};
  std::ostringstream out;
  write_fasta(out, recs, 70);
  std::istringstream in(out.str());
  const auto back = read_fasta(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].sequence, recs[0].sequence);
  EXPECT_EQ(back[1].sequence, recs[1].sequence);
  EXPECT_EQ(back[1].comment, "note");
}

TEST(Fastq, ParsesAndValidates) {
  std::istringstream in("@r1 extra\nACGT\n+\nIIII\n@r2\nTT\n+r2\nII\n");
  const auto reads = read_fastq(in);
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].name, "r1");
  EXPECT_EQ(reads[0].bases, "ACGT");
  EXPECT_EQ(reads[0].qual, "IIII");
}

TEST(Fastq, RejectsMalformedRecords) {
  {
    std::istringstream in("@r1\nACGT\n+\nIII\n");  // qual too short
    EXPECT_THROW(read_fastq(in), io_error);
  }
  {
    std::istringstream in("@r1\nACGT\nIIII\n");  // missing '+'
    EXPECT_THROW(read_fastq(in), io_error);
  }
  {
    std::istringstream in("r1\nACGT\n+\nIIII\n");  // missing '@'
    EXPECT_THROW(read_fastq(in), io_error);
  }
  {
    std::istringstream in("@r1\nACGT\n+\n");  // truncated
    EXPECT_THROW(read_fastq(in), io_error);
  }
}

// The malformed-record corpus: each entry is a damaged stream holding (at
// most) the good reads r_good.  Strict mode must throw on the first damaged
// record; skip mode must recover exactly the good ones and count the rest.
struct MalformedCase {
  const char* label;
  const char* text;
  std::vector<std::string> good;   // names recovered under kSkip
  std::uint64_t skipped;           // records_skipped under kSkip
};

const std::vector<MalformedCase>& malformed_corpus() {
  static const std::vector<MalformedCase> cases = {
      {"truncated mid-record (no quality)",
       "@r1\nACGT\n+\nIIII\n@r2\nACGT\n+\n", {"r1"}, 1},
      // The damaged record swallows @r2 as its '+' line, so r2's remains
      // are part of the skip; resync lands on @r3.
      {"truncated record swallows the next header",
       "@r1\nACGT\n@r2\nTTTT\n+\nIIII\n@r3\nGGGG\n+\nIIII\n", {"r3"}, 1},
      {"missing '+' line",
       "@r1\nACGT\nIIII\n@r2\nTTTT\n+\nIIII\n", {"r2"}, 1},
      {"quality/sequence length mismatch",
       "@r1\nACGT\n+\nIII\n@r2\nTTTT\n+\nIIII\n", {"r2"}, 1},
      {"garbage before first header",
       "not fastq\nat all\n@r1\nACGT\n+\nIIII\n", {"r1"}, 1},
      {"two damaged records in a row",
       "@r1\nACGT\n+\nIII\n@r2\nTT\nII\n@r3\nGGGG\n+\nIIII\n", {"r3"}, 2},
      {"empty read name", "@\nACGT\n+\nIIII\n@r2\nTTTT\n+\nIIII\n", {"r2"}, 1},
  };
  return cases;
}

TEST(Fastq, MalformedCorpusStrictThrows) {
  for (const auto& c : malformed_corpus()) {
    std::istringstream in(c.text);
    EXPECT_THROW(read_fastq(in), io_error) << c.label;
  }
}

TEST(Fastq, MalformedCorpusSkipRecoversGoodReads) {
  for (const auto& c : malformed_corpus()) {
    std::istringstream in(c.text);
    FastqStream stream(in, FastqPolicy::kSkip);
    std::vector<std::string> names;
    seq::Read r;
    while (stream.next_read(r)) names.push_back(r.name);
    EXPECT_EQ(names, c.good) << c.label;
    EXPECT_EQ(stream.records_skipped(), c.skipped) << c.label;
    EXPECT_EQ(stream.reads_parsed(), c.good.size()) << c.label;
  }
}

TEST(Fastq, CrLfAndEmptyInputsAreCleanInBothPolicies) {
  for (const FastqPolicy policy : {FastqPolicy::kStrict, FastqPolicy::kSkip}) {
    {
      std::istringstream in("@r1\r\nACGT\r\n+\r\nIIII\r\n");
      FastqStream stream(in, policy);
      seq::Read r;
      ASSERT_TRUE(stream.next_read(r));
      EXPECT_EQ(r.bases, "ACGT");
      EXPECT_EQ(r.qual, "IIII");
      EXPECT_FALSE(stream.next_read(r));
      EXPECT_EQ(stream.records_skipped(), 0u);
    }
    {
      std::istringstream in("");  // empty file: EOF, not an error
      FastqStream stream(in, policy);
      seq::Read r;
      EXPECT_FALSE(stream.next_read(r));
      EXPECT_EQ(stream.reads_parsed(), 0u);
      EXPECT_EQ(stream.records_skipped(), 0u);
    }
  }
}

TEST(Fastq, WriteReadRoundTrip) {
  std::vector<seq::Read> reads = {{"a", "ACGT", "IIII"}, {"b", "T", "#"}};
  std::ostringstream out;
  write_fastq(out, reads);
  std::istringstream in(out.str());
  const auto back = read_fastq(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].bases, "ACGT");
  EXPECT_EQ(back[1].qual, "#");
}

namespace {

std::string write_temp_fastq(const std::string& name,
                             const std::vector<seq::Read>& reads) {
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  write_fastq_file(path, reads);
  return path;
}

seq::Read make_read(const std::string& name, const std::string& bases) {
  return {name, bases, std::string(bases.size(), 'I')};
}

}  // namespace

TEST(PairedFastq, PairsTwoFilesAndInterleaved) {
  const std::vector<seq::Read> r1 = {make_read("a", "ACGT"), make_read("b", "GGTT")};
  const std::vector<seq::Read> r2 = {make_read("a", "TTAA"), make_read("b", "CCAA")};
  const auto p1 = write_temp_fastq("mem2_pe_r1.fq", r1);
  const auto p2 = write_temp_fastq("mem2_pe_r2.fq", r2);

  PairedFastqStream two(p1, p2);
  std::vector<seq::Read> chunk;
  ASSERT_EQ(two.next_chunk(chunk, 8), 2u);
  ASSERT_EQ(chunk.size(), 4u);
  EXPECT_EQ(chunk[0].bases, "ACGT");  // mates adjacent: R1, R2, R1, R2
  EXPECT_EQ(chunk[1].bases, "TTAA");
  EXPECT_EQ(chunk[2].bases, "GGTT");
  EXPECT_EQ(chunk[3].bases, "CCAA");
  EXPECT_EQ(two.pairs_parsed(), 2u);

  // Interleaved single file yields the same stream.
  const auto pil = write_temp_fastq(
      "mem2_pe_il.fq", {r1[0], r2[0], r1[1], r2[1]});
  PairedFastqStream il(pil);
  std::vector<seq::Read> ichunk;
  ASSERT_EQ(il.next_chunk(ichunk, 8), 2u);
  for (std::size_t i = 0; i < chunk.size(); ++i)
    EXPECT_EQ(ichunk[i].bases, chunk[i].bases);

  std::remove(p1.c_str());
  std::remove(p2.c_str());
  std::remove(pil.c_str());
}

TEST(PairedFastq, RejectsMismatchedReadCounts) {
  const auto p1 = write_temp_fastq(
      "mem2_pe_long.fq", {make_read("a", "ACGT"), make_read("b", "GGTT")});
  const auto p2 = write_temp_fastq("mem2_pe_short.fq", {make_read("a", "TTAA")});

  PairedFastqStream stream(p1, p2);
  seq::Read a, b;
  ASSERT_TRUE(stream.next_pair(a, b));
  EXPECT_THROW(stream.next_pair(a, b), io_error);

  // Interleaved file ending mid-pair is equally fatal.
  const auto pil = write_temp_fastq("mem2_pe_odd.fq", {make_read("a", "ACGT")});
  PairedFastqStream il(pil);
  EXPECT_THROW(il.next_pair(a, b), io_error);

  std::remove(p1.c_str());
  std::remove(p2.c_str());
  std::remove(pil.c_str());
}

namespace {

std::string write_temp_text(const std::string& name, const std::string& text) {
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  std::ofstream out(path, std::ios::trunc);
  out << text;
  EXPECT_TRUE(out.good());
  return path;
}

}  // namespace

TEST(PairedFastq, SkipPolicyDropsExactlyTheDamagedPair) {
  // R2's record b is damaged; ordinal re-alignment must drop only pair b —
  // pairs c and d keep their own mates (no off-by-one shift).
  const auto p1 = write_temp_fastq(
      "mem2_pe_skip_r1.fq", {make_read("a", "ACGT"), make_read("b", "GGTT"),
                             make_read("c", "CCCC"), make_read("d", "AAAA")});
  const auto p2 = write_temp_text("mem2_pe_skip_r2.fq",
                                  "@a\nTTAA\n+\nIIII\n"
                                  "@b\nCCAA\n+\nIII\n"  // length mismatch
                                  "@c\nGGGG\n+\nIIII\n"
                                  "@d\nAACC\n+\nIIII\n");
  PairedFastqStream stream(p1, p2, FastqPolicy::kSkip);
  seq::Read r1, r2;
  std::vector<std::string> pairs;
  while (stream.next_pair(r1, r2)) {
    EXPECT_EQ(r1.name, r2.name);  // mates stayed aligned
    pairs.push_back(r1.name);
  }
  EXPECT_EQ(pairs, (std::vector<std::string>{"a", "c", "d"}));
  EXPECT_EQ(stream.records_skipped(), 1u);
  EXPECT_EQ(stream.pairs_dropped(), 1u);
  EXPECT_EQ(stream.pairs_parsed(), 3u);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(PairedFastq, SkipPolicyDrainsWhenOneSideEndsShort) {
  const auto p1 = write_temp_fastq(
      "mem2_pe_tail_r1.fq", {make_read("a", "ACGT"), make_read("b", "GGTT")});
  const auto p2 = write_temp_text("mem2_pe_tail_r2.fq",
                                  "@a\nTTAA\n+\nIIII\n"
                                  "@b\nCCAA\n+\n");  // truncated final record
  PairedFastqStream stream(p1, p2, FastqPolicy::kSkip);
  seq::Read r1, r2;
  ASSERT_TRUE(stream.next_pair(r1, r2));
  EXPECT_EQ(r1.name, "a");
  EXPECT_FALSE(stream.next_pair(r1, r2));  // no throw, unlike kStrict
  EXPECT_EQ(stream.records_skipped(), 1u);
  EXPECT_EQ(stream.pairs_dropped(), 1u);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(PairedFastq, SkipPolicyInterleavedKeepsSlotParity) {
  // Interleaved layout: a damaged R2 slot drops its pair; the following
  // pair's R1/R2 slots re-pair by ordinal parity.
  const auto pil = write_temp_text("mem2_pe_skip_il.fq",
                                   "@a1\nACGT\n+\nIIII\n"
                                   "@a2\nTTAA\n+\nIIII\n"
                                   "@b1\nGGTT\n+\nIIII\n"
                                   "@b2\nCCAA\nIIII\n"  // missing '+'
                                   "@c1\nCCCC\n+\nIIII\n"
                                   "@c2\nGGGG\n+\nIIII\n");
  PairedFastqStream stream(pil, FastqPolicy::kSkip);
  seq::Read r1, r2;
  std::vector<std::string> pairs;
  while (stream.next_pair(r1, r2)) pairs.push_back(r1.name + "/" + r2.name);
  EXPECT_EQ(pairs, (std::vector<std::string>{"a1/a2", "c1/c2"}));
  EXPECT_EQ(stream.records_skipped(), 1u);
  EXPECT_EQ(stream.pairs_dropped(), 1u);
  EXPECT_EQ(stream.pairs_parsed(), 2u);
  std::remove(pil.c_str());
}

TEST(Sam, RecordFormatting) {
  SamRecord r;
  r.qname = "read1";
  r.flag = kFlagReverse;
  r.rname = "chr1";
  r.pos = 100;
  r.mapq = 60;
  r.cigar = "10M1I90M";
  r.seq = "ACGT";
  r.qual = "IIII";
  r.tags = {"NM:i:1", "AS:i:95"};
  EXPECT_EQ(r.to_line(),
            "read1\t16\tchr1\t100\t60\t10M1I90M\t*\t0\t0\tACGT\tIIII\tNM:i:1\tAS:i:95");
}

TEST(Sam, HeaderListsContigs) {
  seq::Reference ref;
  ref.add_contig("chr1", "ACGTACGT");
  ref.add_contig("chr2", "TTTT");
  const auto hdr = sam_header(ref, "@PG\tID:mem2");
  EXPECT_NE(hdr.find("@SQ\tSN:chr1\tLN:8"), std::string::npos);
  EXPECT_NE(hdr.find("@SQ\tSN:chr2\tLN:4"), std::string::npos);
  EXPECT_NE(hdr.find("@PG\tID:mem2"), std::string::npos);
}

TEST(IndexIo, SaveLoadRoundTrip) {
  seq::GenomeConfig cfg;
  cfg.contig_lengths = {4000, 1000};
  cfg.seed = 77;
  auto index = index::Mem2Index::build(seq::simulate_genome(cfg));

  const std::string path =
      (std::filesystem::temp_directory_path() / "mem2_test.m2i").string();
  index::save_index(path, index);
  const auto loaded = index::load_index(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.ref().length(), index.ref().length());
  ASSERT_EQ(loaded.ref().contigs().size(), 2u);
  EXPECT_EQ(loaded.ref().contigs()[1].name, index.ref().contigs()[1].name);
  for (idx_t i = 0; i < index.ref().length(); ++i)
    ASSERT_EQ(loaded.ref().base(i), index.ref().base(i));

  EXPECT_EQ(loaded.fm128().primary(), index.fm128().primary());
  EXPECT_EQ(loaded.fm128().seq_len(), index.fm128().seq_len());
  for (int c = 0; c <= 4; ++c)
    EXPECT_EQ(loaded.fm128().cum(c), index.fm128().cum(c));

  // Spot-check SAL equality on both paths.
  for (idx_t r = 0; r <= index.seq_len(); r += 97) {
    ASSERT_EQ(loaded.sa_lookup_flat(r), index.sa_lookup_flat(r));
    ASSERT_EQ(loaded.sa_lookup_baseline(r), index.sa_lookup_baseline(r));
  }
}

}  // namespace
}  // namespace mem2::io
