// util module: arena allocator, radix sort, RNG determinism, ISA dispatch,
// stage timers.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "util/arena.h"
#include "util/big_alloc.h"
#include "util/checksum.h"
#include "util/cpu_features.h"
#include "util/radix_sort.h"
#include "util/rng.h"
#include "util/sw_counters.h"
#include "util/timer.h"

namespace mem2::util {
namespace {

TEST(Arena, AllocatesDistinctWritableBlocks) {
  Arena arena(1 << 12);
  auto* a = arena.allocate_array<int>(100);
  auto* b = arena.allocate_array<int>(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  for (int i = 0; i < 100; ++i) {
    a[i] = i;
    b[i] = -i;
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a[i], i);
    EXPECT_EQ(b[i], -i);
  }
}

TEST(Arena, RespectsAlignment) {
  Arena arena;
  for (std::size_t align : {1u, 2u, 8u, 64u, 4096u}) {
    void* p = arena.allocate(13, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u) << align;
  }
}

TEST(Arena, ResetReusesMemoryWithoutSystemAllocations) {
  Arena arena(1 << 16);
  arena.allocate(1 << 15);
  arena.allocate(1 << 15);
  const auto allocs_before = arena.system_allocations();
  const auto reserved = arena.bytes_reserved();
  for (int batch = 0; batch < 50; ++batch) {
    arena.reset();
    arena.allocate(1 << 15);
    arena.allocate(1 << 15);
  }
  // The paper's point (§3.2): after warm-up, batches must not touch the
  // system allocator.
  EXPECT_EQ(arena.system_allocations(), allocs_before);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena arena(1 << 10);
  auto* p = arena.allocate_array<char>(1 << 20);
  std::memset(p, 0xab, 1 << 20);
  EXPECT_GE(arena.bytes_reserved(), std::size_t{1} << 20);
}

TEST(Arena, RejectsBadAlignment) {
  Arena arena;
  EXPECT_THROW(arena.allocate(8, 3), invariant_error);
}

TEST(ArenaAllocator, WorksWithStdVector) {
  Arena arena;
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(RadixSort, SortsIndicesStably) {
  std::vector<std::uint32_t> keys = {5, 3, 5, 1, 9, 3, 0};
  std::vector<std::uint32_t> perm = {0, 1, 2, 3, 4, 5, 6};
  radix_sort_indices(keys, perm);
  const std::vector<std::uint32_t> expect = {6, 3, 1, 5, 0, 2, 4};
  EXPECT_EQ(perm, expect);  // stability: 1 before 5 (keys 3), 0 before 2 (keys 5)
}

class RadixSortRandom : public ::testing::TestWithParam<int> {};

TEST_P(RadixSortRandom, MatchesStdStableSort) {
  Xoshiro256ss rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = rng.below(5000);
  std::vector<std::uint32_t> keys(n);
  const std::uint32_t key_range =
      GetParam() % 2 ? 300u : 0xffffffffu;  // short keys vs full width
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.below(key_range + 1ull));
  std::vector<std::uint32_t> perm(n), expect(n);
  for (std::uint32_t i = 0; i < n; ++i) perm[i] = expect[i] = i;
  std::stable_sort(expect.begin(), expect.end(),
                   [&](std::uint32_t a, std::uint32_t b) { return keys[a] < keys[b]; });
  radix_sort_indices(keys, perm);
  EXPECT_EQ(perm, expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RadixSortRandom, ::testing::Range(0, 12));

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256ss a(123), b(123);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a(), b());
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256ss rng(9);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
  }
}

TEST(Rng, UniformCoversUnitInterval) {
  Xoshiro256ss rng(4);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(CpuFeatures, ParseRoundTrips) {
  EXPECT_EQ(parse_isa("scalar"), Isa::kScalar);
  EXPECT_EQ(parse_isa("AVX2"), Isa::kAvx2);
  EXPECT_EQ(parse_isa("avx512"), Isa::kAvx512);
  EXPECT_THROW(parse_isa("sse9"), std::invalid_argument);
}

TEST(CpuFeatures, CapBoundsDispatch) {
  const Isa detected = detect_isa();
  set_isa_cap(Isa::kScalar);
  EXPECT_EQ(dispatch_isa(), Isa::kScalar);
  set_isa_cap(Isa::kAvx512);
  EXPECT_EQ(dispatch_isa(), detected);
}

TEST(StageTimes, AccumulatesAndTotals) {
  StageTimes t;
  t[Stage::kSmem] = 1.0;
  t[Stage::kBsw] = 2.5;
  StageTimes u;
  u[Stage::kSmem] = 0.5;
  t += u;
  EXPECT_DOUBLE_EQ(t[Stage::kSmem], 1.5);
  EXPECT_DOUBLE_EQ(t.total(), 4.0);
  EXPECT_EQ(stage_name(Stage::kSal), "SAL");
}

TEST(SwCounters, AggregationAndReset) {
  SwCounters a, b;
  a.occ_bucket_loads = 5;
  b.occ_bucket_loads = 7;
  b.bsw_cells_total = 11;
  a += b;
  EXPECT_EQ(a.occ_bucket_loads, 12u);
  EXPECT_EQ(a.bsw_cells_total, 11u);
  a.reset();
  EXPECT_EQ(a.occ_bucket_loads, 0u);
  EXPECT_NE(a.summary().find("occ_bucket_loads=0"), std::string::npos);
}

TEST(SwCounters, Subtraction) {
  SwCounters a, b;
  a.occ_bucket_loads = 12;
  a.smems_found = 4;
  b.occ_bucket_loads = 5;
  const SwCounters d = a - b;
  EXPECT_EQ(d.occ_bucket_loads, 7u);
  EXPECT_EQ(d.smems_found, 4u);
}

TEST(CounterCapture, TakeReturnsDeltaAndRestoresBaseline) {
  // A worker thread serving session A must not leak A's counts into
  // session B's capture when it picks up B's batch next: take() yields
  // only the work done inside the capture scope and puts the thread's
  // prior tally back.
  tls_counters().reset();
  tls_counters().occ_bucket_loads = 5;
  {
    CounterCapture capture;
    EXPECT_EQ(tls_counters().occ_bucket_loads, 0u);  // scope starts clean
    tls_counters().occ_bucket_loads += 7;
    tls_counters().bsw_pairs += 3;
    const SwCounters delta = capture.take();
    EXPECT_EQ(delta.occ_bucket_loads, 7u);
    EXPECT_EQ(delta.bsw_pairs, 3u);
  }
  // Baseline restored: the 5 pre-existing loads survive, the 7 do not.
  EXPECT_EQ(tls_counters().occ_bucket_loads, 5u);
  EXPECT_EQ(tls_counters().bsw_pairs, 0u);

  // Nested captures: the inner take() must not disturb the outer delta.
  {
    CounterCapture outer;
    tls_counters().smems_found += 2;
    {
      CounterCapture inner;
      tls_counters().smems_found += 9;
      EXPECT_EQ(inner.take().smems_found, 9u);
    }
    EXPECT_EQ(outer.take().smems_found, 2u);
  }
  EXPECT_EQ(tls_counters().occ_bucket_loads, 5u);
  tls_counters().reset();
}

TEST(CounterCapture, DestructorWithoutTakeRestoresBaseline) {
  tls_counters().reset();
  tls_counters().occ_bucket_loads = 2;
  {
    CounterCapture capture;
    tls_counters().occ_bucket_loads += 100;  // abandoned (e.g. error path)
  }
  EXPECT_EQ(tls_counters().occ_bucket_loads, 2u);
  tls_counters().reset();
}

// ---------------------------------------------------------------------------
// util::Xxh64Stream — the streaming index writer/reader hash must agree
// with the one-shot implementation for every length class (empty, sub-tail,
// sub-stripe, stripe-exact, long) and every chunking of the same input.

TEST(Xxh64Stream, MatchesOneShotAcrossLengths) {
  Xoshiro256ss rng(4242);
  std::vector<unsigned char> data(1024);
  for (auto& b : data) b = static_cast<unsigned char>(rng.below(256));
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                          std::size_t{7}, std::size_t{8}, std::size_t{31},
                          std::size_t{32}, std::size_t{33}, std::size_t{64},
                          std::size_t{100}, std::size_t{1024}}) {
    Xxh64Stream h;
    h.update(data.data(), len);
    EXPECT_EQ(h.digest(), xxhash64(data.data(), len)) << "len=" << len;
  }
}

TEST(Xxh64Stream, ChunkingDoesNotChangeTheDigest) {
  Xoshiro256ss rng(515151);
  std::vector<unsigned char> data(4096);
  for (auto& b : data) b = static_cast<unsigned char>(rng.below(256));
  const std::uint64_t expect = xxhash64(data.data(), data.size());
  for (std::size_t chunk : {std::size_t{1}, std::size_t{5}, std::size_t{31},
                            std::size_t{32}, std::size_t{33}, std::size_t{1000}}) {
    Xxh64Stream h;
    for (std::size_t off = 0; off < data.size(); off += chunk)
      h.update(data.data() + off, std::min(chunk, data.size() - off));
    EXPECT_EQ(h.digest(), expect) << "chunk=" << chunk;
  }
  // Digest is observable mid-stream without perturbing later updates.
  Xxh64Stream h;
  h.update(data.data(), 40);
  EXPECT_EQ(h.digest(), xxhash64(data.data(), 40));
  h.update(data.data() + 40, data.size() - 40);
  EXPECT_EQ(h.digest(), expect);
}

// ---------------------------------------------------------------------------
// util::BigAllocator — the mmap-backed allocator behind the occ tables and
// the flat SA.

TEST(BigAllocator, VectorRoundTripAcrossTheMmapThreshold) {
  // Small (operator new path) and large (mmap path) allocations must both
  // store/load correctly and survive growth across the threshold.
  BigVector<std::uint32_t> v;
  for (std::uint32_t i = 0; i < 100; ++i) v.push_back(i * 7);
  v.resize((std::size_t{8} << 20) / sizeof(std::uint32_t));  // 8 MiB: mmap'd
  for (std::size_t i = 0; i < 100; ++i)
    ASSERT_EQ(v[i], static_cast<std::uint32_t>(i * 7));
  v[v.size() - 1] = 0xdeadbeef;
  EXPECT_EQ(v[v.size() - 1], 0xdeadbeefu);
}

TEST(BigAllocator, LargeAllocationsAreSuitablyAligned) {
  BigVector<std::uint64_t> v((std::size_t{8} << 20) / sizeof(std::uint64_t));
  // mmap returns page-aligned memory; anything the occ tables need (64-byte
  // cache lines) follows.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 4096, 0u);
}

TEST(BigAllocator, RssProbesReportSomethingPlausible) {
  EXPECT_GT(current_rss_bytes(), 0u);
  EXPECT_GE(peak_rss_bytes(), current_rss_bytes() / 2);  // HWM >= a floor
  // prefault_pages on a fresh mapping must not crash and leaves the pages
  // readable.
  BigVector<unsigned char> v(std::size_t{4} << 20);
  prefault_pages(v.data(), v.size());
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(v[v.size() - 1], 0);
}

}  // namespace
}  // namespace mem2::util
