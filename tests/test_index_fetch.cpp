// Mem2Index coordinate semantics: strand-aware fetch over the doubled
// coordinate space, and pipeline behaviour on reads containing N bases.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "align/driver.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"

namespace mem2::index {
namespace {

TEST(IndexFetch, ForwardMatchesReference) {
  const auto idx = Mem2Index::build(seq::random_genome(5000, 3));
  const auto got = idx.fetch(100, 150);
  for (int i = 0; i < 50; ++i)
    ASSERT_EQ(got[static_cast<std::size_t>(i)], idx.ref().base(100 + i));
}

TEST(IndexFetch, ReverseHalfIsReverseComplement) {
  const auto idx = Mem2Index::build(seq::random_genome(5000, 4));
  const idx_t L = idx.l_pac();
  // Doubled coordinate L+k corresponds to forward position 2L-1-(L+k)=L-1-k,
  // complemented.
  const auto got = idx.fetch(L + 10, L + 40);
  for (int i = 0; i < 30; ++i)
    ASSERT_EQ(got[static_cast<std::size_t>(i)],
              seq::complement(idx.ref().base(L - 1 - (10 + i))));
}

TEST(IndexFetch, RejectsStrandCrossing) {
  const auto idx = Mem2Index::build(seq::random_genome(2000, 5));
  const idx_t L = idx.l_pac();
  EXPECT_THROW(idx.fetch(L - 5, L + 5), mem2::invariant_error);
  EXPECT_THROW(idx.fetch(-1, 5), mem2::invariant_error);
}

TEST(IndexFetch, DoubledTextContainsBothStrandsOfEveryWindow) {
  // Property: any window of the forward strand occurs revcomp'ed in the
  // reverse half at the mirrored coordinates.
  const auto idx = Mem2Index::build(seq::random_genome(3000, 6));
  const idx_t L = idx.l_pac();
  for (idx_t b : {idx_t{0}, idx_t{123}, L - 60}) {
    const auto fwd = idx.fetch(b, b + 50);
    auto mirrored = idx.fetch(2 * L - (b + 50), 2 * L - b);
    ASSERT_EQ(mirrored, seq::reverse_complement(fwd)) << "b=" << b;
  }
}

TEST(AmbiguousReads, PipelineHandlesNs) {
  const auto idx = Mem2Index::build(seq::random_genome(100000, 7));
  seq::ReadSimConfig rc;
  rc.num_reads = 50;
  rc.read_length = 101;
  rc.seed = 9;
  auto reads = seq::simulate_reads(idx.ref(), rc);
  // Inject N runs into every read.
  for (auto& r : reads) {
    r.bases[10] = 'N';
    r.bases[50] = 'N';
    r.bases[51] = 'N';
  }
  align::DriverOptions batch, base;
  batch.mode = align::Mode::kBatch;
  base.mode = align::Mode::kBaseline;
  const auto sam_a = align::align_reads(idx, reads, batch);
  const auto sam_b = align::align_reads(idx, reads, base);
  ASSERT_EQ(sam_a.size(), sam_b.size());
  int mapped = 0;
  for (std::size_t i = 0; i < sam_a.size(); ++i) {
    ASSERT_EQ(sam_a[i].to_line(), sam_b[i].to_line());
    if (!(sam_a[i].flag & io::kFlagUnmapped)) ++mapped;
  }
  EXPECT_GT(mapped, 40);  // Ns should not prevent mapping
}

TEST(AmbiguousReads, AllNReadIsUnmapped) {
  const auto idx = Mem2Index::build(seq::random_genome(50000, 8));
  seq::Read r;
  r.name = "allN";
  r.bases = std::string(101, 'N');
  r.qual = std::string(101, '#');
  align::DriverOptions opt;
  const auto sam = align::align_reads(idx, {r}, opt);
  ASSERT_EQ(sam.size(), 1u);
  EXPECT_TRUE(sam[0].flag & io::kFlagUnmapped);
}

TEST(LargeIndex, SixtyFourMbpBuildSaveLoadAlignRoundTrip) {
  // Chromosome-scale smoke: a 64 Mbp multi-contig reference through the
  // parallel SA-IS build, the streaming v2 writer/reader, and an alignment
  // pass on the reloaded index.  Skippable where minutes matter (the
  // sanitizer CI job sets MEM2_SKIP_LARGE_TESTS).
  if (std::getenv("MEM2_SKIP_LARGE_TESTS"))
    GTEST_SKIP() << "MEM2_SKIP_LARGE_TESTS set";

  seq::GenomeConfig cfg;
  cfg.seed = 64646464;
  cfg.contig_lengths = {30'000'000, 20'000'000, 14'000'000};
  IndexBuildOptions opt;
  opt.threads = 2;
  const auto idx = Mem2Index::build(seq::simulate_genome(cfg), opt);
  ASSERT_EQ(idx.l_pac(), 64'000'000);
  ASSERT_TRUE(idx.has_flat_sa());

  const std::string path =
      (std::filesystem::temp_directory_path() / "mem2_large_roundtrip.m2i")
          .string();
  save_index(path, idx);
  const auto loaded = load_index(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.seq_len(), idx.seq_len());
  EXPECT_EQ(loaded.fm128().primary(), idx.fm128().primary());
  // Spot-check both SAL structures across the whole row space.
  for (idx_t r = 0; r <= idx.seq_len(); r += idx.seq_len() / 997)
    ASSERT_EQ(loaded.sa_lookup_flat(r), idx.sa_lookup_flat(r)) << "row " << r;
  for (idx_t r = 1; r <= idx.seq_len(); r += idx.seq_len() / 97)
    ASSERT_EQ(loaded.sa_lookup_baseline(r), idx.sa_lookup_flat(r));

  // Alignment over the reloaded index: simulated reads must map back.
  seq::ReadSimConfig rc;
  rc.num_reads = 200;
  rc.read_length = 101;
  rc.seed = 11;
  const auto reads = seq::simulate_reads(loaded.ref(), rc);
  align::DriverOptions dopt;
  const auto sam = align::align_reads(loaded, reads, dopt);
  int mapped = 0;
  for (const auto& rec : sam)
    if (!(rec.flag & io::kFlagUnmapped)) ++mapped;
  EXPECT_GT(mapped, 180);
}

}  // namespace
}  // namespace mem2::index
