// Deadlines, cancellation and graceful degradation (ISSUE: resilience
// layer).  Everything time-dependent runs on an injected util::FakeClock /
// FakeSleeper, so these tests assert deadline behavior deterministically:
// no real sleeps decide an outcome, only explicit advance() calls.
//
//   - util::with_retry: bounded attempts, geometric capped backoff,
//     non-transient errors rethrow immediately.
//   - Stream::cancel(): a submit() blocked on back-pressure unblocks, the
//     in-flight batch aborts at a stage boundary, and the SAM written so
//     far is a byte-identical prefix of the full run at a batch boundary.
//   - Admission queueing: FIFO order, bounded queue, deadline timeouts and
//     queue-wait metrics.
//   - The serve watchdog cancels exactly the stalled session
//     (kDeadlineExceeded) while siblings stay byte-identical to solo.
//   - Transient sam.write faults are absorbed by the sink retry policy
//     (byte-identical output); exhausted retries surface kIoError.
//   - AlignService::shutdown(grace): drains, then cancels stragglers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "align/aligner.h"
#include "seq/genome_sim.h"
#include "seq/read_sim.h"
#include "serve/align_service.h"
#include "util/clock.h"
#include "util/fault_injector.h"
#include "util/retry.h"

namespace mem2 {
namespace {

using align::ErrorCode;
using std::chrono::milliseconds;

struct ResilienceFixture {
  index::Mem2Index index;
  std::vector<std::vector<seq::Read>> sets;  // 4 distinct SE read sets

  ResilienceFixture() {
    seq::GenomeConfig g;
    g.seed = 20260808;
    g.contig_lengths = {50000};
    g.repeat_fraction = 0.2;
    index = index::Mem2Index::build(seq::simulate_genome(g));
    for (unsigned s = 0; s < 4; ++s) {
      seq::ReadSimConfig r;
      r.seed = 700 + s;
      r.num_reads = 120;
      r.read_length = 101;
      r.name_prefix = "res" + std::to_string(s) + "_";
      sets.push_back(seq::simulate_reads(index.ref(), r));
    }
  }
};

const ResilienceFixture& fx() {
  static ResilienceFixture f;
  return f;
}

struct ArmedFault {
  explicit ArmedFault(const std::string& spec) {
    EXPECT_TRUE(util::FaultInjector::instance().arm(spec)) << spec;
  }
  ~ArmedFault() { util::FaultInjector::instance().disarm(); }
};

align::DriverOptions stream_options(int batch = 32, int queue_depth = 4) {
  align::DriverOptions opt;
  opt.mode = align::Mode::kBatch;
  opt.batch_size = batch;
  opt.queue_depth = queue_depth;
  opt.threads = 1;
  return opt;
}

std::string solo_sam(const std::vector<seq::Read>& reads,
                     const align::DriverOptions& opt) {
  std::ostringstream os;
  align::OstreamSamSink sink(os);
  const align::Aligner aligner(fx().index, opt);
  EXPECT_TRUE(aligner.ok()) << aligner.status().to_string();
  EXPECT_TRUE(aligner.align(reads, sink).ok());
  return os.str();
}

/// Submit `reads` in `chunk`-sized pieces; returns the first non-ok submit
/// status, or the finish status.  Works for both stream flavors.
template <class StreamT>
align::Status drive(StreamT& stream, const std::vector<seq::Read>& reads,
                    std::size_t chunk) {
  for (std::size_t i = 0; i < reads.size(); i += chunk) {
    const std::size_t end = std::min(reads.size(), i + chunk);
    std::vector<seq::Read> piece(reads.begin() + static_cast<std::ptrdiff_t>(i),
                                 reads.begin() + static_cast<std::ptrdiff_t>(end));
    if (auto st = stream.submit(std::move(piece)); !st.ok()) return st;
  }
  return stream.finish();
}

/// Bounded real-time poll for cross-thread conditions the FakeClock cannot
/// drive (e.g. "the injected stall has engaged").  Never decides a deadline
/// outcome — only sequencing.
template <class Pred>
bool poll_for(Pred&& pred, int timeout_ms = 10000) {
  for (int i = 0; i < timeout_ms && !pred(); ++i)
    std::this_thread::sleep_for(milliseconds(1));
  return pred();
}

// ---------------------------------------------------------------------------
// util::with_retry

struct Transient {
  int fail_first;  // throw io_error on the first N attempts
  int calls = 0;
  void operator()(int) {
    if (++calls <= fail_first) throw io_error("transient");
  }
};

bool is_io(const std::exception& e) {
  return dynamic_cast<const io_error*>(&e) != nullptr;
}

TEST(Retry, FirstAttemptSuccessDoesNotSleep) {
  util::FakeSleeper sleeper;
  util::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.sleeper = &sleeper;
  Transient op{0};
  EXPECT_EQ(util::with_retry(policy, op, is_io), 1);
  EXPECT_TRUE(sleeper.slept().empty());
}

TEST(Retry, GeometricBackoffUntilRecovery) {
  util::FakeSleeper sleeper;
  util::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = milliseconds(2);
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = milliseconds(100);
  policy.sleeper = &sleeper;
  Transient op{2};  // attempts 1 and 2 fail, 3 succeeds
  EXPECT_EQ(util::with_retry(policy, op, is_io), 3);
  const auto slept = sleeper.slept();
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_EQ(slept[0], milliseconds(2));
  EXPECT_EQ(slept[1], milliseconds(4));
}

TEST(Retry, BackoffIsCappedAtMax) {
  util::FakeSleeper sleeper;
  util::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = milliseconds(40);
  policy.backoff_multiplier = 4.0;
  policy.max_backoff = milliseconds(100);
  policy.sleeper = &sleeper;
  Transient op{10};
  EXPECT_THROW(util::with_retry(policy, op, is_io), io_error);
  const auto slept = sleeper.slept();
  ASSERT_EQ(slept.size(), 3u);  // attempts 1-3 failed and backed off; 4 threw
  EXPECT_EQ(slept[0], milliseconds(40));
  EXPECT_EQ(slept[1], milliseconds(100));  // 160 capped
  EXPECT_EQ(slept[2], milliseconds(100));
}

TEST(Retry, FirstSleepIsClampedWhenInitialExceedsMax) {
  // Regression: the first sleep used initial_backoff unclamped, so a
  // policy with initial_backoff > max_backoff overslept its own cap once.
  util::FakeSleeper sleeper;
  util::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = milliseconds(500);
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = milliseconds(100);
  policy.sleeper = &sleeper;
  Transient op{10};
  EXPECT_THROW(util::with_retry(policy, op, is_io), io_error);
  const auto slept = sleeper.slept();
  ASSERT_EQ(slept.size(), 3u);
  EXPECT_EQ(slept[0], milliseconds(100));  // clamped before the first sleep
  EXPECT_EQ(slept[1], milliseconds(100));
  EXPECT_EQ(slept[2], milliseconds(100));
}

TEST(Retry, NonTransientErrorRethrowsImmediately) {
  util::FakeSleeper sleeper;
  util::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.sleeper = &sleeper;
  int calls = 0;
  EXPECT_THROW(util::with_retry(
                   policy,
                   [&](int) {
                     ++calls;
                     throw invariant_error("permanent");
                   },
                   is_io),
               invariant_error);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeper.slept().empty());
}

TEST(Retry, DefaultPolicyIsSingleAttempt) {
  util::RetryPolicy policy;  // max_attempts = 1: today's fail-stop behavior
  EXPECT_FALSE(policy.enabled());
  int calls = 0;
  EXPECT_THROW(util::with_retry(
                   policy,
                   [&](int) {
                     ++calls;
                     throw io_error("x");
                   },
                   is_io),
               io_error);
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------------------
// Status taxonomy for the new codes

TEST(Resilience, DeadlineAndCancelledStatusCodes) {
  const auto dl = align::Status::deadline_exceeded("too slow");
  EXPECT_EQ(dl.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(dl.to_string(), "[deadline-exceeded]: too slow");
  const auto ca = align::Status::cancelled("stop");
  EXPECT_EQ(ca.code(), ErrorCode::kCancelled);
  EXPECT_EQ(ca.to_string(), "[cancelled]: stop");
  // cancelled_error maps onto kCancelled, round-trip through throw_status.
  const auto mapped =
      align::Status::from_exception(cancelled_error("batch cancelled"));
  EXPECT_EQ(mapped.code(), ErrorCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation (standalone Stream)

TEST(Resilience, CancelUnblocksSubmitAndLeavesBatchBoundaryPrefix) {
  // queue_depth=1, one worker, third batch wedges on the injected stall:
  // batches 1-2 emit, the producer blocks on back-pressure, cancel() must
  // unblock it and leave the SAM a byte-identical prefix of the solo run.
  const auto opt = stream_options(32, 1);
  const std::string full = solo_sam(fx().sets[0], opt);

  ArmedFault fault("align.worker.stall:3");
  std::ostringstream os;
  align::OstreamSamSink sink(os);
  const align::Aligner aligner(fx().index, opt);
  ASSERT_TRUE(aligner.ok());
  align::Stream stream = aligner.open(sink);

  align::Status client_st;
  std::thread client(
      [&] { client_st = drive(stream, fx().sets[0], 30); });

  // Batch 3 has engaged the stall (batches 1-2 are already emitted: one
  // worker processes in order).
  ASSERT_TRUE(poll_for([] {
    return util::FaultInjector::instance().hits("align.worker.stall") >= 3;
  }));
  stream.cancel();
  client.join();  // must return: cancel() wakes the blocked producer

  EXPECT_EQ(client_st.code(), ErrorCode::kCancelled);
  EXPECT_EQ(stream.finish().code(), ErrorCode::kCancelled);
  EXPECT_NE(stream.status().message().find("cancelled by caller"),
            std::string::npos);

  const std::string prefix = os.str();
  EXPECT_EQ(sink.records_written(), 64u);  // exactly batches 1 and 2
  ASSERT_LT(prefix.size(), full.size());
  EXPECT_EQ(full.compare(0, prefix.size(), prefix), 0)
      << "cancelled output is not a byte-identical prefix";
}

TEST(Resilience, ServiceStreamCancelIsIsolatedFromSiblings) {
  const auto opt = stream_options();
  const std::string expected = solo_sam(fx().sets[1], opt);

  serve::ServeOptions sopt;
  sopt.workers = 2;
  serve::AlignService service(fx().index, sopt);
  ASSERT_TRUE(service.ok());

  ArmedFault fault("align.worker.stall:1");
  std::ostringstream victim_out, sibling_out;
  align::OstreamSamSink victim_sink(victim_out), sibling_sink(sibling_out);
  serve::ServiceStream victim = service.open(opt, victim_sink);
  ASSERT_TRUE(victim.ok());

  align::Status victim_st;
  std::thread victim_client(
      [&] { victim_st = drive(victim, fx().sets[0], 25); });
  ASSERT_TRUE(poll_for([] {
    return util::FaultInjector::instance().hits("align.worker.stall") >= 1;
  }));

  // A sibling opened and driven while the victim is wedged is untouched.
  serve::ServiceStream sibling = service.open(opt, sibling_sink);
  ASSERT_TRUE(sibling.ok());
  EXPECT_TRUE(drive(sibling, fx().sets[1], 17).ok());
  EXPECT_EQ(sibling_out.str(), expected);

  victim.cancel();
  victim_client.join();
  EXPECT_EQ(victim_st.code(), ErrorCode::kCancelled);
  EXPECT_EQ(victim.finish().code(), ErrorCode::kCancelled);
  const auto m = service.metrics();
  EXPECT_EQ(m.streams_completed, 1u);
  EXPECT_EQ(m.streams_failed, 1u);
}

// ---------------------------------------------------------------------------
// Admission queueing (FIFO, bounded, deadline on a FakeClock)

TEST(Resilience, AdmissionQueueIsFifoBoundedAndTimesOut) {
  util::FakeClock clock;
  serve::ServeOptions sopt;
  sopt.workers = 1;
  sopt.max_streams = 1;
  sopt.admission_timeout_ms = 500;
  sopt.max_pending_opens = 2;
  sopt.clock = &clock;
  serve::AlignService service(fx().index, sopt);
  ASSERT_TRUE(service.ok());

  const auto opt = stream_options();
  align::CollectSamSink sa, sb, sc, sd;
  serve::ServiceStream a = service.open(opt, sa);
  ASSERT_TRUE(a.ok());

  // B then C queue behind the capacity held by A (strict FIFO).
  serve::ServiceStream b, c;
  std::atomic<bool> b_done{false}, c_done{false};
  std::thread tb([&] {
    b = service.open(opt, sb);
    b_done.store(true);
  });
  ASSERT_TRUE(poll_for([&] { return service.metrics().pending_opens == 1; }));
  std::thread tc([&] {
    c = service.open(opt, sc);
    c_done.store(true);
  });
  ASSERT_TRUE(poll_for([&] { return service.metrics().pending_opens == 2; }));

  // The queue is bounded: a third waiter is refused fast, not enqueued.
  serve::ServiceStream d = service.open(opt, sd);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(d.status().message().find("admission queue full"),
            std::string::npos);

  // Capacity frees -> B (the front of the line) is admitted; C keeps
  // waiting.  No fake-time has passed, so nothing may time out.
  EXPECT_TRUE(drive(a, fx().sets[0], 40).ok());
  ASSERT_TRUE(poll_for([&] { return b_done.load(); }));
  tb.join();
  EXPECT_TRUE(b.ok()) << b.status().to_string();
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(c_done.load()) << "C overtook B or timed out on real time";

  // Virtual time passes the deadline -> C times out with the documented
  // retry guidance.
  clock.advance(milliseconds(600));
  ASSERT_TRUE(poll_for([&] { return c_done.load(); }));
  tc.join();
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(c.status().message().find("admission timed out after 500ms"),
            std::string::npos);
  EXPECT_NE(c.status().message().find("retry after a stream finishes"),
            std::string::npos);

  EXPECT_TRUE(drive(b, fx().sets[1], 40).ok());
  const auto m = service.metrics();
  EXPECT_EQ(m.streams_opened, 2u);
  EXPECT_EQ(m.streams_queued, 2u);
  EXPECT_EQ(m.streams_timed_out, 1u);
  EXPECT_EQ(m.streams_rejected, 2u);  // D (queue full) + C (timeout)
  EXPECT_EQ(m.pending_opens, 0);
  ASSERT_EQ(m.admission_wait.count(), 2u);  // B and C went via queue
  EXPECT_GE(m.admission_wait_p99(), m.admission_wait_p50());
  EXPECT_NE(m.summary().find("timed_out=1"), std::string::npos);
}

TEST(Resilience, FailFastAdmissionMessageMentionsQueueing) {
  serve::ServeOptions sopt;
  sopt.workers = 1;
  sopt.max_streams = 1;  // admission_timeout_ms stays 0: fail-fast
  serve::AlignService service(fx().index, sopt);
  align::CollectSamSink s1, s2;
  const auto opt = stream_options();
  serve::ServiceStream a = service.open(opt, s1);
  ASSERT_TRUE(a.ok());
  serve::ServiceStream b = service.open(opt, s2);
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(b.status().message().find("admission_timeout_ms"),
            std::string::npos);
  EXPECT_NE(b.status().message().find("retry after a stream finishes"),
            std::string::npos);
  EXPECT_TRUE(a.finish().ok());
}

// ---------------------------------------------------------------------------
// Watchdog

TEST(Resilience, WatchdogCancelsExactlyTheStalledSession) {
  util::FakeClock clock;
  serve::ServeOptions sopt;
  sopt.workers = 2;
  sopt.batch_stall_ms = 500;
  sopt.clock = &clock;
  serve::AlignService service(fx().index, sopt);
  ASSERT_TRUE(service.ok());

  const auto opt = stream_options();
  ArmedFault fault("align.worker.stall:1");

  // The victim wedges on its first batch; its producer eventually parks on
  // back-pressure.
  std::ostringstream victim_out;
  align::OstreamSamSink victim_sink(victim_out);
  serve::ServiceStream victim = service.open(opt, victim_sink);
  ASSERT_TRUE(victim.ok());
  align::Status victim_st;
  std::thread victim_client(
      [&] { victim_st = drive(victim, fx().sets[0], 20); });
  ASSERT_TRUE(poll_for([] {
    return util::FaultInjector::instance().hits("align.worker.stall") >= 1;
  }));

  // Three siblings run to completion while the victim is wedged.  Virtual
  // time is frozen, so the watchdog cannot misfire on anyone.
  std::string expected[3];
  std::ostringstream sib_out[3];
  std::vector<std::unique_ptr<align::OstreamSamSink>> sib_sinks;
  std::vector<serve::ServiceStream> sibs;
  for (int s = 0; s < 3; ++s) {
    expected[s] = solo_sam(fx().sets[static_cast<std::size_t>(s) + 1], opt);
    sib_sinks.push_back(std::make_unique<align::OstreamSamSink>(sib_out[s]));
    sibs.push_back(service.open(opt, *sib_sinks.back()));
    ASSERT_TRUE(sibs.back().ok());
  }
  {
    std::vector<std::thread> clients;
    for (int s = 0; s < 3; ++s)
      clients.emplace_back([&, s] {
        EXPECT_TRUE(drive(sibs[static_cast<std::size_t>(s)],
                          fx().sets[static_cast<std::size_t>(s) + 1],
                          9 + 4 * static_cast<std::size_t>(s))
                        .ok());
      });
    for (auto& cth : clients) cth.join();
  }
  for (int s = 0; s < 3; ++s)
    EXPECT_EQ(sib_out[s].str(), expected[s]) << "sibling " << s;
  EXPECT_EQ(victim.status().code(), ErrorCode::kOk)
      << "watchdog fired with no virtual time elapsed";

  // Now the stall exceeds batch_stall_ms in virtual time: the watchdog must
  // cancel the victim — and only the victim — with kDeadlineExceeded.
  clock.advance(milliseconds(600));
  victim_client.join();
  EXPECT_EQ(victim_st.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_NE(victim_st.message().find("watchdog"), std::string::npos);
  EXPECT_EQ(victim.finish().code(), ErrorCode::kDeadlineExceeded);

  const auto m = service.metrics();
  EXPECT_EQ(m.streams_cancelled, 1u);
  EXPECT_EQ(m.streams_completed, 3u);
  EXPECT_EQ(m.streams_failed, 1u);
}

// ---------------------------------------------------------------------------
// Transient sink-write retry

TEST(Resilience, TransientSamWriteIsAbsorbedByRetry) {
  const auto base = stream_options();
  const std::string expected = solo_sam(fx().sets[0], base);

  util::FakeSleeper sleeper;
  align::DriverOptions opt = base;
  opt.sink_retry.max_attempts = 3;
  opt.sink_retry.initial_backoff = milliseconds(1);
  opt.sink_retry.backoff_multiplier = 2.0;
  opt.sink_retry.sleeper = &sleeper;

  // Write passes 2 and 3 fail, pass 4 succeeds: the second batch needs two
  // retries and the output must still be byte-identical.
  ArmedFault fault("sam.write:2-3");
  std::ostringstream os;
  align::OstreamSamSink sink(os);
  const align::Aligner aligner(fx().index, opt);
  ASSERT_TRUE(aligner.ok());
  align::Stream stream = aligner.open(sink);
  EXPECT_TRUE(drive(stream, fx().sets[0], 30).ok())
      << stream.status().to_string();

  EXPECT_EQ(os.str(), expected)
      << "retried batch did not reach the output exactly once";
  EXPECT_EQ(stream.metrics().write_retries, 2u);
  const auto slept = sleeper.slept();
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_EQ(slept[0], milliseconds(1));
  EXPECT_EQ(slept[1], milliseconds(2));
}

TEST(Resilience, ExhaustedWriteRetriesSurfaceIoError) {
  align::DriverOptions opt = stream_options();
  opt.sink_retry.max_attempts = 3;
  opt.sink_retry.initial_backoff = milliseconds(0);

  // Passes 2..9 all fail: batch 2's three attempts (passes 2, 3, 4) are
  // exhausted and the stream fails with the last io_error, sink left at the
  // batch-1 boundary.
  const std::string full = solo_sam(fx().sets[0], stream_options());
  ArmedFault fault("sam.write:2-9");
  std::ostringstream os;
  align::OstreamSamSink sink(os);
  const align::Aligner aligner(fx().index, opt);
  ASSERT_TRUE(aligner.ok());
  align::Stream stream = aligner.open(sink);
  const auto st = drive(stream, fx().sets[0], 30);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kIoError);
  EXPECT_EQ(st.stage(), "sam-emit");

  EXPECT_EQ(sink.records_written(), 32u);  // batch 1 only
  const std::string prefix = os.str();
  EXPECT_EQ(full.compare(0, prefix.size(), prefix), 0);
}

TEST(Resilience, RetryPolicyIsValidated) {
  align::DriverOptions opt = stream_options();
  opt.sink_retry.max_attempts = 0;
  EXPECT_FALSE(align::validate_driver_options(opt).ok());
  opt = stream_options();
  opt.sink_retry.backoff_multiplier = 0.5;
  EXPECT_FALSE(align::validate_driver_options(opt).ok());
  opt = stream_options();
  opt.sink_retry.initial_backoff = milliseconds(-1);
  EXPECT_FALSE(align::validate_driver_options(opt).ok());
}

// ---------------------------------------------------------------------------
// Graceful shutdown

TEST(Resilience, ShutdownDrainsThenCancelsStragglers) {
  // A clean service shuts down ok() and refuses new opens.
  {
    serve::ServeOptions sopt;
    sopt.workers = 1;
    serve::AlignService service(fx().index, sopt);
    align::CollectSamSink sink;
    serve::ServiceStream s = service.open(stream_options(), sink);
    EXPECT_TRUE(drive(s, fx().sets[0], 40).ok());
    EXPECT_TRUE(service.shutdown(milliseconds(0)).ok());
    align::CollectSamSink sink2;
    serve::ServiceStream late = service.open(stream_options(), sink2);
    EXPECT_FALSE(late.ok());
    EXPECT_EQ(late.status().code(), ErrorCode::kInvalidArgument);
  }

  // A wedged straggler: zero grace -> shutdown cancels it, reports
  // kDeadlineExceeded, and never deadlocks (the join below is the proof).
  serve::ServeOptions sopt;
  sopt.workers = 1;
  serve::AlignService service(fx().index, sopt);
  ArmedFault fault("align.worker.stall:1");
  align::CollectSamSink sink;
  serve::ServiceStream victim = service.open(stream_options(32, 1), sink);
  ASSERT_TRUE(victim.ok());
  align::Status victim_st;
  std::thread client([&] { victim_st = drive(victim, fx().sets[0], 20); });
  ASSERT_TRUE(poll_for([] {
    return util::FaultInjector::instance().hits("align.worker.stall") >= 1;
  }));

  const auto st = service.shutdown(milliseconds(0));
  EXPECT_EQ(st.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_NE(st.message().find("cancelled 1"), std::string::npos);
  client.join();
  EXPECT_EQ(victim_st.code(), ErrorCode::kCancelled);
  EXPECT_NE(victim_st.message().find("service shutdown"), std::string::npos);
  EXPECT_EQ(victim.finish().code(), ErrorCode::kCancelled);
  EXPECT_EQ(service.metrics().streams_cancelled, 1u);
}

TEST(Resilience, ServeOptionValidationForResilienceKnobs) {
  serve::ServeOptions bad;
  bad.admission_timeout_ms = -1;
  EXPECT_FALSE(serve::validate_serve_options(bad).ok());
  bad = serve::ServeOptions{};
  bad.max_pending_opens = -1;
  EXPECT_FALSE(serve::validate_serve_options(bad).ok());
  bad = serve::ServeOptions{};
  bad.batch_stall_ms = -1;
  EXPECT_FALSE(serve::validate_serve_options(bad).ok());
  EXPECT_TRUE(serve::validate_serve_options(serve::ServeOptions{}).ok());
}

}  // namespace
}  // namespace mem2
