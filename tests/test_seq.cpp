// seq module: codec round trips, reverse complement involution, packed
// reference coordinates, genome/read simulator properties.
#include <gtest/gtest.h>

#include "seq/dna.h"
#include "seq/genome_sim.h"
#include "seq/pack.h"
#include "seq/read_sim.h"
#include "util/rng.h"

namespace mem2::seq {
namespace {

TEST(Dna, EncodeDecodeRoundTrip) {
  const std::string s = "ACGTacgtNnXacg";
  const auto codes = encode(s);
  EXPECT_EQ(decode(codes), "ACGTACGTNNNACG");
}

TEST(Dna, ComplementPairs) {
  EXPECT_EQ(complement(kA), kT);
  EXPECT_EQ(complement(kT), kA);
  EXPECT_EQ(complement(kC), kG);
  EXPECT_EQ(complement(kG), kC);
  EXPECT_EQ(complement(kAmbig), kAmbig);
}

TEST(Dna, ReverseComplementIsInvolution) {
  util::Xoshiro256ss rng(2);
  for (int t = 0; t < 50; ++t) {
    std::vector<Code> s(rng.below(200));
    for (auto& c : s) c = static_cast<Code>(rng.below(5));
    EXPECT_EQ(reverse_complement(reverse_complement(s)), s);
  }
}

TEST(Dna, ReverseComplementInplaceMatchesCopy) {
  util::Xoshiro256ss rng(3);
  for (int t = 0; t < 50; ++t) {
    std::vector<Code> s(rng.below(99));  // odd and even lengths
    for (auto& c : s) c = static_cast<Code>(rng.below(4));
    auto expect = reverse_complement(s);
    auto inplace = s;
    reverse_complement_inplace(inplace);
    EXPECT_EQ(inplace, expect);
  }
}

TEST(Dna, ReverseComplementAscii) {
  EXPECT_EQ(reverse_complement_ascii("ACGT"), "ACGT");
  EXPECT_EQ(reverse_complement_ascii("AACGTN"), "NACGTT");
}

TEST(PackedSequence, StoresAndExtracts) {
  PackedSequence p;
  std::vector<Code> ref;
  util::Xoshiro256ss rng(4);
  for (int i = 0; i < 1000; ++i) {
    const Code c = static_cast<Code>(rng.below(4));
    ref.push_back(c);
    p.push_back(c);
  }
  ASSERT_EQ(p.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(p[i], ref[i]);
  EXPECT_EQ(p.extract(100, 200), std::vector<Code>(ref.begin() + 100, ref.begin() + 200));
}

TEST(PackedSequence, RejectsAmbiguousCodes) {
  PackedSequence p;
  EXPECT_THROW(p.push_back(kAmbig), mem2::invariant_error);
}

TEST(Reference, CoordinateTranslation) {
  Reference ref;
  ref.add_contig("chr1", "ACGTACGTAC");  // len 10
  ref.add_contig("chr2", "TTTTT");       // len 5
  EXPECT_EQ(ref.length(), 15);
  auto [c0, p0] = ref.locate(0);
  EXPECT_EQ(c0, 0);
  EXPECT_EQ(p0, 0);
  auto [c1, p1] = ref.locate(9);
  EXPECT_EQ(c1, 0);
  EXPECT_EQ(p1, 9);
  auto [c2, p2] = ref.locate(10);
  EXPECT_EQ(c2, 1);
  EXPECT_EQ(p2, 0);
  EXPECT_TRUE(ref.within_one_contig(3, 10));
  EXPECT_FALSE(ref.within_one_contig(8, 12));
  EXPECT_THROW(ref.locate(15), mem2::invariant_error);
}

TEST(Reference, AmbiguousBasesReplacedAndRecorded) {
  Reference ref;
  ref.add_contig("c", "ACGNNNNNACG");
  ASSERT_EQ(ref.ambiguous().size(), 1u);
  EXPECT_EQ(ref.ambiguous()[0].begin, 3);
  EXPECT_EQ(ref.ambiguous()[0].end, 8);
  for (idx_t i = 0; i < ref.length(); ++i) EXPECT_LT(ref.base(i), 4);
}

TEST(GenomeSim, DeterministicAndSized) {
  GenomeConfig cfg;
  cfg.seed = 99;
  cfg.contig_lengths = {10000, 5000};
  const auto a = simulate_genome(cfg);
  const auto b = simulate_genome(cfg);
  ASSERT_EQ(a.length(), 15000);
  ASSERT_EQ(a.contigs().size(), 2u);
  for (idx_t i = 0; i < a.length(); ++i) ASSERT_EQ(a.base(i), b.base(i));
}

TEST(GenomeSim, GcContentRoughlyRespected) {
  GenomeConfig cfg;
  cfg.contig_lengths = {200000};
  cfg.gc_content = 0.6;
  cfg.repeat_fraction = 0;
  cfg.tandem_fraction = 0;
  const auto ref = simulate_genome(cfg);
  std::int64_t gc = 0;
  for (idx_t i = 0; i < ref.length(); ++i)
    gc += ref.base(i) == kC || ref.base(i) == kG;
  const double frac = static_cast<double>(gc) / static_cast<double>(ref.length());
  EXPECT_NEAR(frac, 0.6, 0.01);
}

TEST(GenomeSim, RepeatsCreateDuplicatedKmers) {
  GenomeConfig cfg;
  cfg.contig_lengths = {100000};
  cfg.repeat_fraction = 0.3;
  cfg.repeat_divergence = 0.0;  // exact copies -> guaranteed duplicates
  const auto ref = simulate_genome(cfg);
  // Sample a window inside a repeat element copy and expect >1 occurrence
  // somewhere.  Cheap proxy: count 32-mers occurring twice via hashing.
  std::vector<std::uint64_t> kmers;
  std::uint64_t h = 0;
  for (idx_t i = 0; i < ref.length(); ++i) {
    h = (h << 2 | ref.base(i)) & ((std::uint64_t{1} << 62) - 1);
    if (i >= 31) kmers.push_back(h);
  }
  std::sort(kmers.begin(), kmers.end());
  std::size_t dups = 0;
  for (std::size_t i = 1; i < kmers.size(); ++i) dups += kmers[i] == kmers[i - 1];
  EXPECT_GT(dups, 100u);
}

TEST(ReadSim, ProducesRequestedReads) {
  const auto ref = random_genome(50000, 5);
  ReadSimConfig cfg;
  cfg.num_reads = 500;
  cfg.read_length = 101;
  const auto reads = simulate_reads(ref, cfg);
  ASSERT_EQ(reads.size(), 500u);
  for (const auto& r : reads) {
    ASSERT_EQ(r.bases.size(), 101u);
    ASSERT_EQ(r.qual.size(), 101u);
    const auto truth = parse_truth(r.name);
    ASSERT_TRUE(truth.valid) << r.name;
    EXPECT_EQ(truth.contig, "chr1");
    EXPECT_GE(truth.pos, 0);
  }
}

TEST(ReadSim, ErrorFreeReadsMatchReference) {
  const auto ref = random_genome(20000, 6);
  ReadSimConfig cfg;
  cfg.num_reads = 50;
  cfg.read_length = 80;
  cfg.substitution_rate = 0;
  cfg.insertion_rate = 0;
  cfg.deletion_rate = 0;
  const auto reads = simulate_reads(ref, cfg);
  for (const auto& r : reads) {
    const auto truth = parse_truth(r.name);
    auto expect = ref.slice(truth.pos, truth.pos + cfg.read_length);
    if (truth.reverse) {
      // Read came from an oversized template; the first read_length bases
      // of revcomp(template) are the revcomp of the template's tail.
      auto tpl = ref.slice(truth.pos, truth.pos + cfg.read_length + 16);
      reverse_complement_inplace(tpl);
      expect.assign(tpl.begin(), tpl.begin() + cfg.read_length);
    }
    EXPECT_EQ(r.bases, decode(expect)) << r.name;
  }
}

TEST(ReadSim, PaperDatasetsMatchTable3Shapes) {
  const auto sets = paper_datasets(1.0);
  ASSERT_EQ(sets.size(), 5u);
  EXPECT_EQ(sets[0].read_length, 151);
  EXPECT_EQ(sets[2].read_length, 76);
  EXPECT_EQ(sets[3].read_length, 101);
  // D3..D5 have 2.5x the reads of D1/D2 (Table 3 ratio).
  EXPECT_EQ(sets[2].num_reads, sets[0].num_reads * 5 / 2);
}

TEST(ReadSim, TruthParserRejectsForeignNames) {
  EXPECT_FALSE(parse_truth("SRR123.456").valid);
  EXPECT_FALSE(parse_truth("r_1:chr1:oops:+").valid);
  const auto t = parse_truth("D1_7:chr2:1234:-");
  ASSERT_TRUE(t.valid);
  EXPECT_EQ(t.contig, "chr2");
  EXPECT_EQ(t.pos, 1234);
  EXPECT_TRUE(t.reverse);
}

}  // namespace
}  // namespace mem2::seq
