// Rolling-hash rescue scan (pair/rescue_scan.h): RescueScanner must emit
// exactly the anchor set of the reference nested memcmp scan — same
// anchors, same order, same first-per-diagonal and max_anchors saturation
// behavior, same exact-run annotations — for any k, table size, ambiguous
// bases, window edges and probe-cap saturation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pair/rescue_scan.h"
#include "util/rng.h"

namespace mem2::pair {
namespace {

std::vector<seq::Code> random_codes(util::Xoshiro256ss& rng, int len,
                                    double n_prob) {
  std::vector<seq::Code> v(static_cast<std::size_t>(len));
  for (auto& c : v)
    c = rng.chance(n_prob) ? seq::kAmbig
                           : static_cast<seq::Code>(rng.below(4));
  return v;
}

std::vector<RescueAnchor> reference(std::span<const seq::Code> seq,
                                    std::span<const seq::Code> win, int k,
                                    int max_anchors) {
  std::vector<RescueAnchor> out(kMaxRescueAnchors);
  out.resize(static_cast<std::size_t>(
      scan_rescue_anchors(seq, win, k, max_anchors, out.data())));
  return out;
}

std::vector<RescueAnchor> rolling(std::span<const seq::Code> seq,
                                  std::span<const seq::Code> win, int k,
                                  int max_anchors, int hash_bits) {
  RescueScanner scanner;
  scanner.build(seq, k, hash_bits);
  std::vector<RescueAnchor> out(kMaxRescueAnchors);
  out.resize(static_cast<std::size_t>(
      scanner.scan(win, max_anchors, out.data())));
  return out;
}

void expect_same(std::span<const seq::Code> seq, std::span<const seq::Code> win,
                 int k, int max_anchors, int hash_bits,
                 const std::string& what) {
  const auto ref = reference(seq, win, k, max_anchors);
  const auto got = rolling(seq, win, k, max_anchors, hash_bits);
  ASSERT_EQ(got.size(), ref.size()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(got[i].qbeg, ref[i].qbeg) << what << " anchor " << i;
    EXPECT_EQ(got[i].tbeg, ref[i].tbeg) << what << " anchor " << i;
    EXPECT_EQ(got[i].len, ref[i].len) << what << " anchor " << i;
    EXPECT_EQ(got[i].exact_run, ref[i].exact_run) << what << " anchor " << i;
  }
}

TEST(RescueScan, MatchesReferenceOnRandomInputs) {
  util::Xoshiro256ss rng(20260727);
  int windows_with_anchors = 0;
  for (int iter = 0; iter < 400; ++iter) {
    const int k = 4 + static_cast<int>(rng.below(14));          // 4..17
    const int l_seq = static_cast<int>(rng.below(180));         // 0..179
    const int l_win = static_cast<int>(rng.below(500));         // 0..499
    const double n_prob = iter % 3 == 0 ? 0.05 : 0.0;
    const int max_anchors = 1 + static_cast<int>(rng.below(kMaxRescueAnchors));
    const int hash_bits = 1 + static_cast<int>(rng.below(kMaxRescueHashBits));
    auto seq = random_codes(rng, l_seq, n_prob);
    auto win = random_codes(rng, l_win, n_prob);
    // Plant mate fragments in the window so anchors actually occur: copy a
    // few random substrings of seq to random window offsets.
    for (int plant = 0; plant < 3 && l_seq >= k && l_win >= k; ++plant) {
      const int frag = k + static_cast<int>(rng.below(
                               static_cast<std::uint64_t>(l_seq - k + 1)));
      const int from = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(l_seq - frag + 1)));
      if (frag > l_win) continue;
      const int to = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(l_win - frag + 1)));
      std::copy(seq.begin() + from, seq.begin() + from + frag,
                win.begin() + to);
    }
    const auto ref = reference(seq, win, k, max_anchors);
    windows_with_anchors += !ref.empty();
    expect_same(seq, win, k, max_anchors, hash_bits,
                "iter " + std::to_string(iter) + " k=" + std::to_string(k));
  }
  // The planting must make the comparison non-vacuous.
  EXPECT_GT(windows_with_anchors, 100);
}

TEST(RescueScan, AnchorsAtWindowEdges) {
  util::Xoshiro256ss rng(7);
  const int k = 11;
  auto seq = random_codes(rng, 101, 0.0);
  // Window starts and ends exactly on probe matches.
  std::vector<seq::Code> win = random_codes(rng, 300, 0.0);
  std::copy(seq.begin(), seq.begin() + k, win.begin());                // t = 0
  std::copy(seq.begin() + k, seq.begin() + 2 * k, win.end() - k);      // t = l_win - k
  const auto ref = reference(seq, win, k, kMaxRescueAnchors);
  ASSERT_GE(ref.size(), 2u);
  EXPECT_EQ(ref.front().tbeg, 0);
  EXPECT_EQ(ref.back().tbeg, static_cast<int>(win.size()) - k);
  for (int bits : {1, 7, kMaxRescueHashBits})
    expect_same(seq, win, k, kMaxRescueAnchors, bits,
                "edges bits=" + std::to_string(bits));
  // A window exactly k long.
  std::vector<seq::Code> tiny(seq.begin(), seq.begin() + k);
  expect_same(seq, tiny, k, kMaxRescueAnchors, 7, "window == k");
  EXPECT_EQ(reference(seq, tiny, k, kMaxRescueAnchors).size(), 1u);
}

TEST(RescueScan, MaxAnchorSaturationStopsAtSamePoint) {
  // A tandem-repeat window where every offset of the repeated probe
  // matches: both scans must cut off at the same saturation anchor.
  util::Xoshiro256ss rng(99);
  const int k = 8;
  auto seq = random_codes(rng, 64, 0.0);
  std::vector<seq::Code> win;
  for (int copies = 0; copies < 40; ++copies)
    win.insert(win.end(), seq.begin(), seq.begin() + k);
  for (int max_anchors : {1, 2, kMaxRescueAnchors, kMaxRescueAnchors + 5}) {
    const auto ref = reference(seq, win, k, max_anchors);
    EXPECT_EQ(static_cast<int>(ref.size()),
              std::min(max_anchors, kMaxRescueAnchors));
    expect_same(seq, win, k, max_anchors, 7,
                "saturation max=" + std::to_string(max_anchors));
  }
}

TEST(RescueScan, AmbiguousBasesNeverAnchor) {
  const int k = 6;
  // seq = one clean probe then one probe with an N (skipped at build).
  std::vector<seq::Code> seq = {0, 1, 2, 3, 0, 1,
                                2, 3, seq::kAmbig, 0, 1, 2};
  // Window contains both probes verbatim: only the clean one may anchor.
  std::vector<seq::Code> win;
  win.insert(win.end(), seq.begin() + 6, seq.begin() + 12);
  win.insert(win.end(), seq.begin(), seq.begin() + 6);
  const auto ref = reference(seq, win, k, kMaxRescueAnchors);
  ASSERT_EQ(ref.size(), 1u);
  EXPECT_EQ(ref[0].qbeg, 0);
  EXPECT_EQ(ref[0].tbeg, 6);
  expect_same(seq, win, k, kMaxRescueAnchors, 7, "ambiguous probes");

  // An N inside the window terminates exact runs but never matches.
  std::vector<seq::Code> win2(seq.begin(), seq.begin() + 6);
  win2.push_back(seq::kAmbig);
  win2.insert(win2.end(), seq.begin(), seq.begin() + 6);
  expect_same(seq, win2, k, kMaxRescueAnchors, 7, "ambiguous window");
}

TEST(RescueScan, ProbeCapIsBoundedAndShared) {
  // 600 bases at k = 4 offers 150 candidate probes; both scans must cap at
  // kMaxRescueProbes and still agree.
  util::Xoshiro256ss rng(4242);
  const int k = 4;
  auto seq = random_codes(rng, 600, 0.0);
  RescueScanner scanner;
  scanner.build(seq, k, 7);
  EXPECT_EQ(scanner.probe_count(), kMaxRescueProbes);
  static_assert(kMaxRescueProbes >= kMaxRescueAnchors,
                "probe cap must not undercut the anchor bound");

  // An all-N window (no incidental 4-mer matches) with planted matches for
  // probes on both sides of the cap: probe 10 (inside) and the k-mer at
  // query offset kMaxRescueProbes * k (beyond the cap — the reference must
  // ignore it too).
  std::vector<seq::Code> win(400, seq::kAmbig);
  std::copy(seq.begin() + 10 * k, seq.begin() + 11 * k, win.begin() + 50);
  std::copy(seq.begin() + kMaxRescueProbes * k,
            seq.begin() + (kMaxRescueProbes + 1) * k, win.begin() + 100);
  const auto ref = reference(seq, win, k, kMaxRescueAnchors);
  bool saw_capped_probe = false;
  for (const auto& an : ref) {
    EXPECT_LT(an.qbeg, kMaxRescueProbes * k) << "probe beyond the cap anchored";
    saw_capped_probe |= an.qbeg == 10 * k;
  }
  EXPECT_TRUE(saw_capped_probe);
  expect_same(seq, win, k, kMaxRescueAnchors, 7, "probe cap");
}

TEST(RescueScan, ExactRunAnnotations) {
  const int k = 5;
  // seq: 15 bases; window embeds bases [5, 10) with 3 matching bases on the
  // left and 2 on the right, then a mismatch on each side.
  util::Xoshiro256ss rng(1);
  auto seq = random_codes(rng, 15, 0.0);
  std::vector<seq::Code> win(20, seq::kAmbig);
  for (int j = 0; j < 3; ++j) win[static_cast<std::size_t>(4 + j)] = seq[static_cast<std::size_t>(2 + j)];
  for (int j = 0; j < k; ++j) win[static_cast<std::size_t>(7 + j)] = seq[static_cast<std::size_t>(5 + j)];
  for (int j = 0; j < 2; ++j) win[static_cast<std::size_t>(12 + j)] = seq[static_cast<std::size_t>(10 + j)];
  const auto ref = reference(seq, win, k, kMaxRescueAnchors);
  ASSERT_EQ(ref.size(), 1u);
  EXPECT_EQ(ref[0].qbeg, 5);
  EXPECT_EQ(ref[0].tbeg, 7);
  EXPECT_EQ(ref[0].exact_run, k + 3 + 2);
  expect_same(seq, win, k, kMaxRescueAnchors, 7, "exact runs");
}

TEST(RescueScan, DegenerateInputs) {
  util::Xoshiro256ss rng(3);
  auto seq = random_codes(rng, 30, 0.0);
  auto win = random_codes(rng, 30, 0.0);
  RescueAnchor out[kMaxRescueAnchors];
  RescueScanner scanner;
  // k longer than the sequence, empty windows, k = 0.
  scanner.build(seq, 40, 7);
  EXPECT_EQ(scanner.probe_count(), 0);
  EXPECT_EQ(scanner.scan(win, kMaxRescueAnchors, out), 0);
  EXPECT_EQ(scan_rescue_anchors(seq, win, 40, kMaxRescueAnchors, out), 0);
  scanner.build(seq, 0, 7);
  EXPECT_EQ(scanner.scan(win, kMaxRescueAnchors, out), 0);
  EXPECT_EQ(scan_rescue_anchors(seq, win, 0, kMaxRescueAnchors, out), 0);
  scanner.build(seq, 11, 7);
  EXPECT_EQ(scanner.scan(std::span<const seq::Code>(), kMaxRescueAnchors, out), 0);
  // Window shorter than k.
  std::vector<seq::Code> shorty(seq.begin(), seq.begin() + 5);
  EXPECT_EQ(scanner.scan(shorty, kMaxRescueAnchors, out), 0);
  EXPECT_EQ(scan_rescue_anchors(seq, shorty, 11, kMaxRescueAnchors, out), 0);
  // All-ambiguous sequence has no probes.
  std::vector<seq::Code> ns(60, seq::kAmbig);
  scanner.build(ns, 11, 7);
  EXPECT_EQ(scanner.probe_count(), 0);
  EXPECT_EQ(scanner.scan(win, kMaxRescueAnchors, out), 0);
}

TEST(RescueScan, FingerprintDistinguishesContent) {
  util::Xoshiro256ss rng(8);
  auto a = random_codes(rng, 200, 0.0);
  auto b = a;
  EXPECT_EQ(window_fingerprint(a), window_fingerprint(b));
  b[100] = static_cast<seq::Code>((b[100] + 1) & 3);
  EXPECT_NE(window_fingerprint(a), window_fingerprint(b));
  // Length participates: a prefix is not the same fingerprint.
  std::vector<seq::Code> prefix(a.begin(), a.end() - 1);
  EXPECT_NE(window_fingerprint(a), window_fingerprint(prefix));
}

}  // namespace
}  // namespace mem2::pair
